// Real threaded engine: end-to-end completion, payload integrity, live
// concurrency updates, rate limiting, and clean shutdown.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>

#include "transfer/engine.hpp"

namespace automdt::transfer {
namespace {

EngineConfig small_config() {
  EngineConfig c;
  c.max_threads = 4;
  c.chunk_bytes = 64 * 1024;
  c.sender_buffer_bytes = 1.0 * kMiB;
  c.receiver_buffer_bytes = 1.0 * kMiB;
  return c;
}

TEST(ChunkChecksum, StableAndSensitive) {
  std::vector<std::byte> a = {std::byte{1}, std::byte{2}, std::byte{3}};
  std::vector<std::byte> b = a;
  EXPECT_EQ(chunk_checksum(a), chunk_checksum(b));
  b[1] = std::byte{9};
  EXPECT_NE(chunk_checksum(a), chunk_checksum(b));
  EXPECT_NE(chunk_checksum({}), 0u);
}

TEST(TransferSession, CompletesAndVerifies) {
  TransferSession s(small_config(), std::vector<double>(8, 512.0 * 1024));
  s.start({2, 2, 2});
  ASSERT_TRUE(s.wait_finished(20.0));
  const TransferStats st = s.stats();
  EXPECT_TRUE(st.finished);
  EXPECT_DOUBLE_EQ(st.bytes_written, 8 * 512.0 * 1024);
  EXPECT_DOUBLE_EQ(st.bytes_read, st.bytes_written);
  EXPECT_DOUBLE_EQ(st.bytes_sent, st.bytes_written);
  EXPECT_EQ(st.verify_failures, 0u);
  EXPECT_EQ(st.chunks_written, 8u * 8u);  // 512 KiB / 64 KiB = 8 chunks/file
}

TEST(TransferSession, HandlesUnevenFileSizes) {
  // Sizes that do not divide evenly into chunks.
  TransferSession s(small_config(), {100.0, 65537.0, 200000.0});
  s.start({1, 1, 1});
  ASSERT_TRUE(s.wait_finished(20.0));
  EXPECT_DOUBLE_EQ(s.stats().bytes_written, 100.0 + 65537.0 + 200000.0);
  EXPECT_EQ(s.stats().verify_failures, 0u);
}

TEST(TransferSession, EmptyDatasetFinishesImmediately) {
  TransferSession s(small_config(), {});
  s.start({1, 1, 1});
  EXPECT_TRUE(s.wait_finished(1.0));
  EXPECT_DOUBLE_EQ(s.stats().bytes_written, 0.0);
}

TEST(TransferSession, LiveConcurrencyUpdate) {
  EngineConfig cfg = small_config();
  cfg.max_threads = 6;
  TransferSession s(cfg, std::vector<double>(40, 256.0 * 1024));
  s.start({1, 1, 1});
  s.set_concurrency({6, 6, 6});
  EXPECT_EQ(s.concurrency(), (ConcurrencyTuple{6, 6, 6}));
  s.set_concurrency({100, 0, 3});  // clamped
  EXPECT_EQ(s.concurrency(), (ConcurrencyTuple{6, 1, 3}));
  ASSERT_TRUE(s.wait_finished(30.0));
  EXPECT_EQ(s.stats().verify_failures, 0u);
}

TEST(TransferSession, NetworkThrottleBoundsRate) {
  EngineConfig cfg = small_config();
  // 2 MB/s aggregate network cap.
  cfg.network.aggregate_bytes_per_s = 2.0 * 1024 * 1024;
  const double total = 2.0 * kMiB;
  TransferSession s(cfg, {total});
  const auto t0 = std::chrono::steady_clock::now();
  s.start({2, 2, 2});
  ASSERT_TRUE(s.wait_finished(30.0));
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // 2 MiB at 2 MiB/s (minus initial burst allowance) >= ~0.6 s.
  EXPECT_GT(dt, 0.5);
}

TEST(TransferSession, PerThreadThrottleScalesWithConcurrency) {
  EngineConfig cfg = small_config();
  cfg.read.per_thread_bytes_per_s = 1.0 * 1024 * 1024;
  TransferSession s(cfg, {3.0 * kMiB});
  // With 3 read threads the bucket refills at 3 MB/s.
  s.start({3, 4, 4});
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(s.wait_finished(30.0));
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(dt, 5.0);
  EXPECT_GT(dt, 0.4);
}

TEST(TransferSession, StopIsIdempotentAndAborts) {
  TransferSession s(small_config(), std::vector<double>(1000, 1.0 * kMiB));
  s.start({4, 4, 4});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  s.stop();
  s.stop();  // no crash
  EXPECT_FALSE(s.stats().finished);
}

TEST(TransferSession, StatsMonotoneDuringRun) {
  EngineConfig cfg = small_config();
  cfg.network.aggregate_bytes_per_s = 4.0 * 1024 * 1024;
  TransferSession s(cfg, std::vector<double>(16, 512.0 * 1024));
  s.start({2, 2, 2});
  double last_written = 0.0;
  for (int i = 0; i < 10; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const TransferStats st = s.stats();
    EXPECT_GE(st.bytes_read, st.bytes_sent);
    EXPECT_GE(st.bytes_sent, st.bytes_written);
    EXPECT_GE(st.bytes_written, last_written);
    last_written = st.bytes_written;
    if (st.finished) break;
  }
  s.stop();
}

TEST(TransferSession, StatsComeFromOneRegistrySnapshot) {
  // The tearing fix: every stats() call is one registry pass with a
  // generation stamp, and registration order guarantees the pipeline
  // invariant bytes_written <= bytes_sent <= bytes_read in every snapshot.
  EngineConfig cfg = small_config();
  cfg.network.aggregate_bytes_per_s = 6.0 * 1024 * 1024;
  TransferSession s(cfg, std::vector<double>(16, 512.0 * 1024));
  s.start({2, 2, 2});
  std::uint64_t last_generation = 0;
  for (int i = 0; i < 20; ++i) {
    const TransferStats st = s.stats();
    EXPECT_GT(st.generation, last_generation);
    last_generation = st.generation;
    EXPECT_LE(st.bytes_written, st.bytes_sent);
    EXPECT_LE(st.bytes_sent, st.bytes_read);
    if (st.finished) {
      // finished is sampled first: once it is set, totals are final.
      EXPECT_DOUBLE_EQ(st.bytes_written, 16 * 512.0 * 1024);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(s.wait_finished(20.0));
}

TEST(TransferSession, TraceSpansRecordedAndMonotone) {
  if (!telemetry::kTraceCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  EngineConfig cfg = small_config();
  cfg.telemetry.sample_every = 1;  // trace every chunk
  TransferSession s(cfg, std::vector<double>(8, 256.0 * 1024));
  s.start({2, 2, 2});
  ASSERT_TRUE(s.wait_finished(20.0));

  const telemetry::MetricsSnapshot snap = s.telemetry_snapshot();
  // Every stage histogram saw samples...
  EXPECT_GT(snap.value_or("read.service_ns.count"), 0.0);
  EXPECT_GT(snap.value_or("sender_queue.wait_ns.count"), 0.0);
  EXPECT_GT(snap.value_or("network.service_ns.count"), 0.0);
  EXPECT_GT(snap.value_or("receiver_queue.wait_ns.count"), 0.0);
  EXPECT_GT(snap.value_or("write.service_ns.count"), 0.0);
  // ...and timestamps never ran backwards (steady clock, one process).
  EXPECT_DOUBLE_EQ(snap.value_or("trace.clock_skew"), 0.0);
}

TEST(TransferSession, TelemetryDisabledStillCountsBytes) {
  EngineConfig cfg = small_config();
  cfg.telemetry.enabled = false;  // runtime off: no spans, counters intact
  TransferSession s(cfg, std::vector<double>(4, 256.0 * 1024));
  s.start({2, 2, 2});
  ASSERT_TRUE(s.wait_finished(20.0));
  const telemetry::MetricsSnapshot snap = s.telemetry_snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("write.bytes"), 4 * 256.0 * 1024);
  EXPECT_DOUBLE_EQ(snap.value_or("read.service_ns.count"), 0.0);
  EXPECT_DOUBLE_EQ(snap.value_or("write.service_ns.count"), 0.0);
}

TEST(TransferSession, TelemetrySnapshotExposesQueueGauges) {
  TransferSession s(small_config(), std::vector<double>(4, 128.0 * 1024));
  s.start({1, 1, 1});
  ASSERT_TRUE(s.wait_finished(20.0));
  const telemetry::MetricsSnapshot snap = s.telemetry_snapshot();
  for (const char* name :
       {"engine.finished", "read.bytes", "network.bytes", "write.bytes",
        "sender_queue.capacity", "receiver_queue.capacity",
        "engine.concurrency_read", "pool.payload_hits"}) {
    EXPECT_TRUE(snap.has(name)) << name;
  }
  EXPECT_DOUBLE_EQ(snap.value_or("engine.finished"), 1.0);
  EXPECT_GT(snap.value_or("sender_queue.capacity"), 0.0);
}

TEST(TransferSession, BoundedStagingQueues) {
  EngineConfig cfg = small_config();
  cfg.sender_buffer_bytes = 4 * 64.0 * 1024;  // 4 chunks
  // Block the network almost completely so readers fill the buffer.
  cfg.network.aggregate_bytes_per_s = 1.0;
  TransferSession s(cfg, std::vector<double>(100, 64.0 * 1024));
  s.start({4, 1, 1});
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_LE(s.stats().sender_queue_chunks, 4u);
  s.stop();
}

}  // namespace
}  // namespace automdt::transfer
