// Real threaded engine: end-to-end completion, payload integrity, live
// concurrency updates, rate limiting, and clean shutdown.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "transfer/engine.hpp"

namespace automdt::transfer {
namespace {

EngineConfig small_config() {
  EngineConfig c;
  c.max_threads = 4;
  c.chunk_bytes = 64 * 1024;
  c.sender_buffer_bytes = 1.0 * kMiB;
  c.receiver_buffer_bytes = 1.0 * kMiB;
  return c;
}

TEST(ChunkChecksum, StableAndSensitive) {
  std::vector<std::byte> a = {std::byte{1}, std::byte{2}, std::byte{3}};
  std::vector<std::byte> b = a;
  EXPECT_EQ(chunk_checksum(a), chunk_checksum(b));
  b[1] = std::byte{9};
  EXPECT_NE(chunk_checksum(a), chunk_checksum(b));
  EXPECT_NE(chunk_checksum({}), 0u);
}

TEST(TransferSession, CompletesAndVerifies) {
  TransferSession s(small_config(), std::vector<double>(8, 512.0 * 1024));
  s.start({2, 2, 2});
  ASSERT_TRUE(s.wait_finished(20.0));
  const TransferStats st = s.stats();
  EXPECT_TRUE(st.finished);
  EXPECT_DOUBLE_EQ(st.bytes_written, 8 * 512.0 * 1024);
  EXPECT_DOUBLE_EQ(st.bytes_read, st.bytes_written);
  EXPECT_DOUBLE_EQ(st.bytes_sent, st.bytes_written);
  EXPECT_EQ(st.verify_failures, 0u);
  EXPECT_EQ(st.chunks_written, 8u * 8u);  // 512 KiB / 64 KiB = 8 chunks/file
}

TEST(TransferSession, HandlesUnevenFileSizes) {
  // Sizes that do not divide evenly into chunks.
  TransferSession s(small_config(), {100.0, 65537.0, 200000.0});
  s.start({1, 1, 1});
  ASSERT_TRUE(s.wait_finished(20.0));
  EXPECT_DOUBLE_EQ(s.stats().bytes_written, 100.0 + 65537.0 + 200000.0);
  EXPECT_EQ(s.stats().verify_failures, 0u);
}

TEST(TransferSession, EmptyDatasetFinishesImmediately) {
  TransferSession s(small_config(), {});
  s.start({1, 1, 1});
  EXPECT_TRUE(s.wait_finished(1.0));
  EXPECT_DOUBLE_EQ(s.stats().bytes_written, 0.0);
}

TEST(TransferSession, LiveConcurrencyUpdate) {
  EngineConfig cfg = small_config();
  cfg.max_threads = 6;
  TransferSession s(cfg, std::vector<double>(40, 256.0 * 1024));
  s.start({1, 1, 1});
  s.set_concurrency({6, 6, 6});
  EXPECT_EQ(s.concurrency(), (ConcurrencyTuple{6, 6, 6}));
  s.set_concurrency({100, 0, 3});  // clamped
  EXPECT_EQ(s.concurrency(), (ConcurrencyTuple{6, 1, 3}));
  ASSERT_TRUE(s.wait_finished(30.0));
  EXPECT_EQ(s.stats().verify_failures, 0u);
}

TEST(TransferSession, NetworkThrottleBoundsRate) {
  EngineConfig cfg = small_config();
  // 2 MB/s aggregate network cap.
  cfg.network.aggregate_bytes_per_s = 2.0 * 1024 * 1024;
  const double total = 2.0 * kMiB;
  TransferSession s(cfg, {total});
  const auto t0 = std::chrono::steady_clock::now();
  s.start({2, 2, 2});
  ASSERT_TRUE(s.wait_finished(30.0));
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // 2 MiB at 2 MiB/s (minus initial burst allowance) >= ~0.6 s.
  EXPECT_GT(dt, 0.5);
}

TEST(TransferSession, PerThreadThrottleScalesWithConcurrency) {
  EngineConfig cfg = small_config();
  cfg.read.per_thread_bytes_per_s = 1.0 * 1024 * 1024;
  TransferSession s(cfg, {3.0 * kMiB});
  // With 3 read threads the bucket refills at 3 MB/s.
  s.start({3, 4, 4});
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(s.wait_finished(30.0));
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(dt, 5.0);
  EXPECT_GT(dt, 0.4);
}

TEST(TransferSession, StopIsIdempotentAndAborts) {
  TransferSession s(small_config(), std::vector<double>(1000, 1.0 * kMiB));
  s.start({4, 4, 4});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  s.stop();
  s.stop();  // no crash
  EXPECT_FALSE(s.stats().finished);
}

TEST(TransferSession, StatsMonotoneDuringRun) {
  EngineConfig cfg = small_config();
  cfg.network.aggregate_bytes_per_s = 4.0 * 1024 * 1024;
  TransferSession s(cfg, std::vector<double>(16, 512.0 * 1024));
  s.start({2, 2, 2});
  double last_written = 0.0;
  for (int i = 0; i < 10; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const TransferStats st = s.stats();
    EXPECT_GE(st.bytes_read, st.bytes_sent);
    EXPECT_GE(st.bytes_sent, st.bytes_written);
    EXPECT_GE(st.bytes_written, last_written);
    last_written = st.bytes_written;
    if (st.finished) break;
  }
  s.stop();
}

TEST(TransferSession, BoundedStagingQueues) {
  EngineConfig cfg = small_config();
  cfg.sender_buffer_bytes = 4 * 64.0 * 1024;  // 4 chunks
  // Block the network almost completely so readers fill the buffer.
  cfg.network.aggregate_bytes_per_s = 1.0;
  TransferSession s(cfg, std::vector<double>(100, 64.0 * 1024));
  s.start({4, 1, 1});
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_LE(s.stats().sender_queue_chunks, 4u);
  s.stop();
}

}  // namespace
}  // namespace automdt::transfer
