// TimeSeriesRecorder: cadence, ring wraparound, CSV/JSON export.
#include "telemetry/recorder.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"

namespace automdt::telemetry {
namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

TEST(TelemetryRecorder, ManualSamplingFillsRows) {
  MetricsRegistry registry;
  Counter* c = registry.counter("events");
  TimeSeriesRecorder recorder(registry, {.interval_s = 1.0, .capacity = 8});
  c->add(3);
  recorder.sample_at(0.0);
  c->add(4);
  recorder.sample_at(1.0);

  ASSERT_EQ(recorder.rows(), 2u);
  EXPECT_EQ(recorder.total_samples(), 2u);
  const auto series = recorder.series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].time_s, 0.0);
  ASSERT_EQ(series[0].samples.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].samples[0].value, 3.0);
  EXPECT_DOUBLE_EQ(series[1].samples[0].value, 7.0);
}

TEST(TelemetryRecorder, RingWrapsKeepingNewestRows) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("step");
  TimeSeriesRecorder recorder(registry, {.interval_s = 1.0, .capacity = 4});
  for (int i = 0; i < 10; ++i) {
    g->set(static_cast<double>(i));
    recorder.sample_at(static_cast<double>(i));
  }
  EXPECT_EQ(recorder.rows(), 4u);
  EXPECT_EQ(recorder.total_samples(), 10u);
  const auto series = recorder.series();
  ASSERT_EQ(series.size(), 4u);
  // Oldest-first order, rows 6..9 survive.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(series[static_cast<std::size_t>(i)].time_s,
                     static_cast<double>(6 + i));
    EXPECT_DOUBLE_EQ(series[static_cast<std::size_t>(i)].samples[0].value,
                     static_cast<double>(6 + i));
  }
}

TEST(TelemetryRecorder, BackgroundCadenceProducesRows) {
  MetricsRegistry registry;
  registry.counter("ticks");
  TimeSeriesRecorder recorder(registry,
                              {.interval_s = 0.02, .capacity = 256});
  recorder.start();
  recorder.start();  // idempotent
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (recorder.rows() < 3 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  recorder.stop();
  recorder.stop();  // idempotent
  EXPECT_GE(recorder.rows(), 3u);
  const std::size_t frozen = recorder.rows();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(recorder.rows(), frozen);  // stop() really stops sampling
  // Timestamps are strictly increasing.
  const auto series = recorder.series();
  for (std::size_t i = 1; i < series.size(); ++i)
    EXPECT_GT(series[i].time_s, series[i - 1].time_s);
}

TEST(TelemetryRecorder, CsvColumnsFollowRegistrationOrder) {
  MetricsRegistry registry;
  Gauge* b = registry.gauge("beta");
  Gauge* a = registry.gauge("alpha");  // registered second, column second
  TimeSeriesRecorder recorder(registry, {.interval_s = 1.0, .capacity = 4});
  b->set(1.5);
  a->set(2.5);
  recorder.sample_at(0.0);
  b->set(3.0);
  a->set(4.0);
  recorder.sample_at(2.0);

  std::ostringstream os;
  recorder.write_csv(os);
  const auto lines = split_lines(os.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "time_s,beta,alpha");
  EXPECT_EQ(lines[1], "0,1.5,2.5");
  EXPECT_EQ(lines[2], "2,3,4");
}

TEST(TelemetryRecorder, JsonExportHasRowsAndMetrics) {
  MetricsRegistry registry;
  registry.counter("n")->add(12);
  TimeSeriesRecorder recorder(registry, {.interval_s = 0.5, .capacity = 4});
  recorder.sample_at(1.0);
  std::ostringstream os;
  recorder.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"interval_s\":0.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"time_s\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"n\":12"), std::string::npos) << json;
}

TEST(TelemetryRecorder, HistogramMetricsFlattenIntoColumns) {
  MetricsRegistry registry;
  LogLinearHistogram* h = registry.histogram("lat");
  TimeSeriesRecorder recorder(registry, {.interval_s = 1.0, .capacity = 4});
  h->record(10);
  h->record(20);
  recorder.sample_at(0.0);
  std::ostringstream os;
  recorder.write_csv(os);
  const auto lines = split_lines(os.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "time_s,lat.count,lat.mean,lat.p50,lat.p90,lat.p99,lat.max");
}

}  // namespace
}  // namespace automdt::telemetry
