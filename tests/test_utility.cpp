#include <gtest/gtest.h>

#include <cmath>

#include "common/utility.hpp"

namespace automdt {
namespace {

TEST(Utility, StageUtilityFormula) {
  UtilityParams p{1.02};
  EXPECT_NEAR(stage_utility(1000.0, 10, p), 1000.0 / std::pow(1.02, 10),
              1e-9);
}

TEST(Utility, ZeroThroughputZeroUtility) {
  EXPECT_DOUBLE_EQ(stage_utility(0.0, 5), 0.0);
}

TEST(Utility, MoreThreadsSameThroughputIsWorse) {
  EXPECT_GT(stage_utility(500.0, 5), stage_utility(500.0, 10));
}

TEST(Utility, TotalIsSumOfStages) {
  StageThroughputs t{100.0, 200.0, 300.0};
  ConcurrencyTuple n{1, 2, 3};
  UtilityParams p{1.02};
  EXPECT_NEAR(total_utility(t, n, p),
              stage_utility(100.0, 1, p) + stage_utility(200.0, 2, p) +
                  stage_utility(300.0, 3, p),
              1e-9);
}

TEST(Utility, HigherKPenalizesThreadsMore) {
  UtilityParams lo{1.01}, hi{1.10};
  EXPECT_GT(stage_utility(1000.0, 20, lo), stage_utility(1000.0, 20, hi));
}

// Along the "linear scaling up to the bottleneck" model t(n) = min(n*tpt, b),
// the utility maximum sits at the paper's ideal thread count ceil(b / tpt):
// adding threads past saturation only adds penalty, and below saturation the
// throughput gain (factor (n+1)/n) dominates the small k^-1 penalty.
TEST(Utility, MaximumAtIdealThreadCount) {
  UtilityParams p{1.02};
  const double tpt = 80.0, b = 1000.0;
  const int ideal = static_cast<int>(std::ceil(b / tpt));  // 13
  auto utility_at = [&](int n) {
    return stage_utility(std::min(n * tpt, b), n, p);
  };
  double best = -1.0;
  int best_n = 0;
  for (int n = 1; n <= 30; ++n) {
    if (utility_at(n) > best) {
      best = utility_at(n);
      best_n = n;
    }
  }
  EXPECT_EQ(best_n, ideal);
}

TEST(Utility, TheoreticalMaxRewardFormula) {
  UtilityParams p{1.02};
  StageTriple ideal{12.5, 6.25, 5.0};
  const double b = 1000.0;
  const double expected = b * (std::pow(1.02, -12.5) + std::pow(1.02, -6.25) +
                               std::pow(1.02, -5.0));
  EXPECT_NEAR(theoretical_max_reward(b, ideal, p), expected, 1e-9);
}

TEST(Utility, RmaxBoundsAchievableUtility) {
  // With t_i = b and n_i = n_i* exactly, U == R_max; any extra threads or
  // throughput below b gives less.
  UtilityParams p{1.02};
  StageTriple ideal{10.0, 5.0, 4.0};
  const double b = 500.0;
  const double rmax = theoretical_max_reward(b, ideal, p);
  StageThroughputs t{b, b, b};
  ConcurrencyTuple n{10, 5, 4};
  EXPECT_NEAR(total_utility(t, n, p), rmax, 1e-9);
  ConcurrencyTuple over{15, 8, 6};
  EXPECT_LT(total_utility(t, over, p), rmax);
}

}  // namespace
}  // namespace automdt
