#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "common/checksum.hpp"
#include "net/stream_pool.hpp"

namespace automdt::net {
namespace {

std::vector<std::byte> pattern(std::size_t n) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::byte>(static_cast<std::uint8_t>(i * 31 + 7));
  return out;
}

TEST(FrameCodec, RoundTripsEveryTypeAndSize) {
  for (const FrameType type :
       {FrameType::kChunk, FrameType::kRpc, FrameType::kStreamHello,
        FrameType::kStreamPark, FrameType::kPing}) {
    for (const std::size_t size : {0ul, 1ul, 17ul, 4096ul}) {
      Frame in{type, pattern(size)};
      const auto encoded = encode_frame(in);
      ASSERT_EQ(encoded.size(), kFrameHeaderBytes + size);
      Frame out;
      const DecodeResult r = decode_frame(encoded.data(), encoded.size(), out);
      ASSERT_EQ(r.error, FrameError::kNone);
      EXPECT_EQ(r.consumed, encoded.size());
      EXPECT_EQ(out.type, type);
      EXPECT_EQ(out.payload, in.payload);
    }
  }
}

TEST(FrameCodec, RejectsBadMagic) {
  auto encoded = encode_frame({FrameType::kPing, pattern(8)});
  encoded[0] ^= std::byte{0xFF};
  Frame out;
  EXPECT_EQ(decode_frame(encoded.data(), encoded.size(), out).error,
            FrameError::kBadMagic);
}

TEST(FrameCodec, RejectsBadVersion) {
  auto encoded = encode_frame({FrameType::kPing, pattern(8)});
  encoded[4] ^= std::byte{0xFF};  // version lives at offset 4
  Frame out;
  EXPECT_EQ(decode_frame(encoded.data(), encoded.size(), out).error,
            FrameError::kBadVersion);
}

TEST(FrameCodec, RejectsCorruptedPayload) {
  auto encoded = encode_frame({FrameType::kChunk, pattern(64)});
  encoded[kFrameHeaderBytes + 10] ^= std::byte{0x01};
  Frame out;
  EXPECT_EQ(decode_frame(encoded.data(), encoded.size(), out).error,
            FrameError::kChecksumMismatch);
}

TEST(FrameCodec, RejectsOversizedDeclaredLength) {
  auto encoded = encode_frame({FrameType::kChunk, pattern(64)});
  Frame out;
  EXPECT_EQ(decode_frame(encoded.data(), encoded.size(), out,
                         /*max_payload_bytes=*/32)
                .error,
            FrameError::kOversized);
}

TEST(FrameCodec, TruncatedBufferAsksForMoreData) {
  const auto encoded = encode_frame({FrameType::kChunk, pattern(64)});
  Frame out;
  for (const std::size_t cut : {0ul, kFrameHeaderBytes - 1, kFrameHeaderBytes,
                                encoded.size() - 1}) {
    const DecodeResult r = decode_frame(encoded.data(), cut, out);
    EXPECT_EQ(r.error, FrameError::kNeedMoreData) << "cut at " << cut;
    EXPECT_EQ(r.consumed, 0u);
  }
}

TEST(FrameSocketIo, RoundTripsOverSocketPairIncludingLargeFrames) {
  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  // 1 MiB payload forces multiple partial reads/writes through the
  // EINTR/EAGAIN loops.
  const auto big = pattern(1u << 20);
  std::thread writer([&] {
    FrameWriter w(a);
    ASSERT_EQ(w.write(FrameType::kChunk, big, 5.0), SocketStatus::kOk);
    ASSERT_EQ(w.write(FrameType::kPing, {}, 5.0), SocketStatus::kOk);
    a.shutdown_both();
  });
  FrameReader reader(b);
  Frame frame;
  ASSERT_EQ(reader.read(frame, 5.0), FrameError::kNone);
  EXPECT_EQ(frame.type, FrameType::kChunk);
  EXPECT_EQ(frame.payload, big);
  ASSERT_EQ(reader.read(frame, 5.0), FrameError::kNone);
  EXPECT_EQ(frame.type, FrameType::kPing);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_EQ(reader.read(frame, 5.0), FrameError::kClosed);
  writer.join();
}

TEST(FrameSocketIo, ScatterWriteMatchesSingleBufferEncoding) {
  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  const auto head = pattern(28);
  const auto body = pattern(512);
  std::thread writer([&] {
    FrameWriter w(a);
    ASSERT_EQ(w.write_scatter(FrameType::kChunk, head, body.data(),
                              body.size(), 5.0),
              SocketStatus::kOk);
  });
  FrameReader reader(b);
  Frame frame;
  ASSERT_EQ(reader.read(frame, 5.0), FrameError::kNone);
  std::vector<std::byte> expected = head;
  expected.insert(expected.end(), body.begin(), body.end());
  EXPECT_EQ(frame.payload, expected);
  writer.join();
}

TEST(FrameSocketIo, ReaderReportsTruncationOnMidFrameEof) {
  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  const auto encoded = encode_frame({FrameType::kChunk, pattern(256)});
  ASSERT_EQ(a.write_all(encoded.data(), encoded.size() / 2, 5.0),
            SocketStatus::kOk);
  a.shutdown_both();
  a.close();
  FrameReader reader(b);
  Frame frame;
  EXPECT_EQ(reader.read(frame, 5.0), FrameError::kTruncated);
}

TEST(FrameSocketIo, ScatterBatchIsWireIdenticalToSequentialWrites) {
  // A coalesced batch must put exactly the same bytes on the wire as N
  // individual sends — the receiver has no batching awareness at all.
  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  const auto head0 = pattern(28);
  const auto head1 = pattern(28);
  const auto body0 = pattern(512);
  const auto body1 = pattern(64);
  std::thread writer([&] {
    FrameWriter w(a);
    const ScatterSegment segments[] = {
        {head0.data(), head0.size(), body0.data(), body0.size()},
        {head1.data(), head1.size(), body1.data(), body1.size()},
        {head0.data(), head0.size(), nullptr, 0},  // header-only chunk
    };
    ASSERT_EQ(w.write_scatter_batch(FrameType::kChunk, segments, 3, 5.0),
              SocketStatus::kOk);
    a.shutdown_both();
  });
  FrameReader reader(b);  // plain reader: proves wire compatibility
  Frame frame;
  const std::vector<const std::vector<std::byte>*> heads = {&head0, &head1,
                                                            &head0};
  const std::vector<const std::vector<std::byte>*> bodies = {&body0, &body1,
                                                             nullptr};
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(reader.read(frame, 5.0), FrameError::kNone) << "frame " << i;
    EXPECT_EQ(frame.type, FrameType::kChunk);
    std::vector<std::byte> expected = *heads[i];
    if (bodies[i])
      expected.insert(expected.end(), bodies[i]->begin(), bodies[i]->end());
    EXPECT_EQ(frame.payload, expected) << "frame " << i;
  }
  EXPECT_EQ(reader.read(frame, 5.0), FrameError::kClosed);
  writer.join();
}

TEST(FrameSocketIo, BufferedReaderDecodesBackToBackFramesFromOneRead) {
  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  // Pre-encode several frames into one contiguous blob and push it with a
  // single write so the reader's first recv picks up all of them.
  std::vector<std::byte> blob;
  const int kFrames = 5;
  for (int i = 0; i < kFrames; ++i) {
    const auto encoded =
        encode_frame({FrameType::kChunk, pattern(100 + 37 * i)});
    blob.insert(blob.end(), encoded.begin(), encoded.end());
  }
  ASSERT_EQ(a.write_all(blob.data(), blob.size(), 5.0), SocketStatus::kOk);
  a.shutdown_both();
  BufferedFrameReader reader(b);
  Frame frame;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_EQ(reader.read(frame, 5.0), FrameError::kNone) << "frame " << i;
    EXPECT_EQ(frame.payload, pattern(100 + 37 * i)) << "frame " << i;
  }
  EXPECT_EQ(reader.read(frame, 5.0), FrameError::kClosed);
}

TEST(FrameSocketIo, BufferedReaderHandlesFramesSplitAcrossReads) {
  // Dribble a multi-frame blob a few bytes at a time: the buffered reader
  // must reassemble frames across arbitrarily misaligned recv boundaries.
  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  std::vector<std::byte> blob;
  for (const std::size_t size : {0ul, 300ul, 1ul, 4096ul}) {
    const auto encoded = encode_frame({FrameType::kChunk, pattern(size)});
    blob.insert(blob.end(), encoded.begin(), encoded.end());
  }
  std::thread writer([&] {
    for (std::size_t off = 0; off < blob.size(); off += 7) {
      const std::size_t n = std::min<std::size_t>(7, blob.size() - off);
      ASSERT_EQ(a.write_all(blob.data() + off, n, 5.0), SocketStatus::kOk);
    }
    a.shutdown_both();
  });
  BufferedFrameReader reader(b);
  Frame frame;
  for (const std::size_t size : {0ul, 300ul, 1ul, 4096ul}) {
    ASSERT_EQ(reader.read(frame, 5.0), FrameError::kNone);
    EXPECT_EQ(frame.payload, pattern(size));
  }
  EXPECT_EQ(reader.read(frame, 5.0), FrameError::kClosed);
  writer.join();
}

TEST(FrameSocketIo, BufferedReaderReportsTruncationOnMidFrameEof) {
  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  const auto encoded = encode_frame({FrameType::kChunk, pattern(256)});
  ASSERT_EQ(a.write_all(encoded.data(), encoded.size() / 2, 5.0),
            SocketStatus::kOk);
  a.shutdown_both();
  a.close();
  BufferedFrameReader reader(b);
  Frame frame;
  EXPECT_EQ(reader.read(frame, 5.0), FrameError::kTruncated);
}

TEST(FrameSocketIo, BufferedReaderRoundTripsScatterBatch) {
  // The production pairing: coalesced gathered writes on one end, the
  // buffered decoder on the other.
  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  const auto head = pattern(28);
  const auto body = pattern(2048);
  std::thread writer([&] {
    FrameWriter w(a);
    std::vector<ScatterSegment> segments(
        16, ScatterSegment{head.data(), head.size(), body.data(), body.size()});
    ASSERT_EQ(w.write_scatter_batch(FrameType::kChunk, segments.data(),
                                    segments.size(), 5.0),
              SocketStatus::kOk);
    a.shutdown_both();
  });
  BufferedFrameReader reader(b);
  Frame frame;
  std::vector<std::byte> expected = head;
  expected.insert(expected.end(), body.begin(), body.end());
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(reader.read(frame, 5.0), FrameError::kNone) << "frame " << i;
    EXPECT_EQ(frame.payload, expected);
  }
  EXPECT_EQ(reader.read(frame, 5.0), FrameError::kClosed);
  writer.join();
}

TEST(WireChunkCodec, RoundTrips) {
  WireChunk in;
  in.file_id = 42;
  in.offset = 7 * 256 * 1024;
  in.size = 1000;
  in.checksum = 0xDEADBEEFCAFEF00DULL;
  in.payload = pattern(1000);
  std::vector<std::byte> encoded;
  encode_wire_chunk(in, encoded);
  encoded.insert(encoded.end(), in.payload.begin(), in.payload.end());
  WireChunk out;
  ASSERT_TRUE(decode_wire_chunk(encoded.data(), encoded.size(), out));
  EXPECT_EQ(out.file_id, in.file_id);
  EXPECT_EQ(out.offset, in.offset);
  EXPECT_EQ(out.size, in.size);
  EXPECT_EQ(out.checksum, in.checksum);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(FrameCodec, FlagBitsRoundTripAndStayOutOfType) {
  Frame in{FrameType::kChunk, pattern(64)};
  in.flags = kFrameFlagTraced;
  const auto encoded = encode_frame(in);
  Frame out;
  const DecodeResult r = decode_frame(encoded.data(), encoded.size(), out);
  ASSERT_EQ(r.error, FrameError::kNone);
  EXPECT_EQ(out.type, FrameType::kChunk);  // flag split out, not a new type
  EXPECT_EQ(out.flags, kFrameFlagTraced);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(FrameCodec, NoFlagsIsByteIdenticalToDefaultEncoding) {
  // The wire format with the trace flag off must be bit-for-bit what it was
  // before flags existed: Frame{type, payload} (flags defaulted) and an
  // explicit flags=0 encode to identical bytes, and decode with flags == 0.
  Frame plain{FrameType::kChunk, pattern(128)};
  Frame explicit_zero{FrameType::kChunk, pattern(128)};
  explicit_zero.flags = 0;
  EXPECT_EQ(encode_frame(plain), encode_frame(explicit_zero));
  Frame out;
  const auto encoded = encode_frame(plain);
  ASSERT_EQ(decode_frame(encoded.data(), encoded.size(), out).error,
            FrameError::kNone);
  EXPECT_EQ(out.flags, 0u);
}

TEST(FrameSocketIo, WriterCarriesFlagsPerFrameInScatterBatches) {
  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  const auto head = pattern(28);
  const auto traced_head = pattern(44);
  const auto body = pattern(256);
  std::thread writer([&] {
    FrameWriter w(a);
    ScatterSegment segments[] = {
        {head.data(), head.size(), body.data(), body.size(), 0},
        {traced_head.data(), traced_head.size(), body.data(), body.size(),
         kFrameFlagTraced},
    };
    ASSERT_EQ(w.write_scatter_batch(FrameType::kChunk, segments, 2, 5.0),
              SocketStatus::kOk);
    a.shutdown_both();
  });
  BufferedFrameReader reader(b);
  Frame frame;
  ASSERT_EQ(reader.read(frame, 5.0), FrameError::kNone);
  EXPECT_EQ(frame.flags, 0u);
  ASSERT_EQ(reader.read(frame, 5.0), FrameError::kNone);
  EXPECT_EQ(frame.type, FrameType::kChunk);
  EXPECT_EQ(frame.flags, kFrameFlagTraced);
  EXPECT_EQ(frame.payload.size(), traced_head.size() + body.size());
  writer.join();
}

TEST(WireChunkCodec, TracedHeaderRoundTripsStamps) {
  WireChunk in;
  in.file_id = 3;
  in.offset = 512 * 1024;
  in.size = 777;
  in.checksum = 0x1234;
  in.trace_origin_ns = 111'222'333'444ull;
  in.trace_send_ns = 111'222'999'000ull;
  in.payload = pattern(777);
  std::vector<std::byte> encoded;
  encode_wire_chunk(in, encoded, /*traced=*/true);
  EXPECT_EQ(encoded.size(), kWireChunkTracedHeaderBytes);
  encoded.insert(encoded.end(), in.payload.begin(), in.payload.end());
  WireChunk out;
  ASSERT_TRUE(
      decode_wire_chunk(encoded.data(), encoded.size(), out, /*traced=*/true));
  EXPECT_EQ(out.trace_origin_ns, in.trace_origin_ns);
  EXPECT_EQ(out.trace_send_ns, in.trace_send_ns);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(WireChunkCodec, UntracedEncodingIsByteIdenticalWithStampsSet) {
  // Stamps on the in-memory chunk must not leak into the wire bytes unless
  // the traced extension is explicitly requested.
  WireChunk stamped;
  stamped.file_id = 9;
  stamped.size = 0;
  stamped.trace_origin_ns = 42;
  stamped.trace_send_ns = 43;
  WireChunk clean;
  clean.file_id = 9;
  clean.size = 0;
  std::vector<std::byte> a, b;
  encode_wire_chunk(stamped, a);
  encode_wire_chunk(clean, b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), kWireChunkHeaderBytes);
  // And an untraced decode never invents stamps.
  WireChunk out;
  out.trace_origin_ns = 1;
  out.trace_send_ns = 1;
  ASSERT_TRUE(decode_wire_chunk(a.data(), a.size(), out));
  EXPECT_EQ(out.trace_origin_ns, 0u);
  EXPECT_EQ(out.trace_send_ns, 0u);
}

TEST(WireChunkCodec, TracedDecodeRejectsShortHeader) {
  WireChunk in;
  in.size = 0;
  std::vector<std::byte> encoded;
  encode_wire_chunk(in, encoded, /*traced=*/true);
  WireChunk out;
  EXPECT_FALSE(decode_wire_chunk(encoded.data(),
                                 kWireChunkTracedHeaderBytes - 1, out,
                                 /*traced=*/true));
  // A plain header is too short for a traced decode.
  std::vector<std::byte> plain;
  encode_wire_chunk(in, plain);
  EXPECT_FALSE(
      decode_wire_chunk(plain.data(), plain.size(), out, /*traced=*/true));
}

TEST(FrameCodec, UncheckedFlagSkipsChecksumVerification) {
  // kFrameFlagUnchecked marks payloads that never transit user space on the
  // sender (sendfile fast path): the header carries checksum 0 and the
  // decoder must not verify. Corrupt a byte and require the frame to still
  // decode — delivery, not integrity, is the contract on this path.
  Frame in{FrameType::kChunk, pattern(64)};
  in.flags = kFrameFlagUnchecked;
  auto encoded = encode_frame(in);
  encoded[kFrameHeaderBytes + 3] ^= std::byte{0x55};
  Frame out;
  const DecodeResult r = decode_frame(encoded.data(), encoded.size(), out);
  ASSERT_EQ(r.error, FrameError::kNone);
  EXPECT_EQ(out.type, FrameType::kChunk);
  EXPECT_EQ(out.flags & kFrameFlagUnchecked, kFrameFlagUnchecked);
  // The same corruption without the flag is caught.
  Frame checked{FrameType::kChunk, pattern(64)};
  auto strict = encode_frame(checked);
  strict[kFrameHeaderBytes + 3] ^= std::byte{0x55};
  EXPECT_EQ(decode_frame(strict.data(), strict.size(), out).error,
            FrameError::kChecksumMismatch);
}

TEST(FrameCodec, ParseFrameHeaderValidatesWithoutPayload) {
  Frame in{FrameType::kChunk, pattern(300)};
  in.flags = kFrameFlagTraced;
  const auto encoded = encode_frame(in);
  FrameHeaderView view;
  // Short of a full header: ask for more data.
  EXPECT_EQ(parse_frame_header(encoded.data(), kFrameHeaderBytes - 1, view),
            FrameError::kNeedMoreData);
  // Exactly the header, zero payload bytes present: the whole point of the
  // seam is that validation never touches the payload.
  ASSERT_EQ(parse_frame_header(encoded.data(), kFrameHeaderBytes, view),
            FrameError::kNone);
  EXPECT_EQ(view.type, FrameType::kChunk);
  EXPECT_EQ(view.flags, kFrameFlagTraced);
  EXPECT_EQ(view.length, 300u);
  EXPECT_NE(view.checksum, 0u);  // caller verifies against in-place bytes
  // Header-level validation still applies.
  auto bad = encoded;
  bad[0] ^= std::byte{0xFF};
  EXPECT_EQ(parse_frame_header(bad.data(), bad.size(), view),
            FrameError::kBadMagic);
  EXPECT_EQ(parse_frame_header(encoded.data(), encoded.size(), view,
                               /*max_payload_bytes=*/128),
            FrameError::kOversized);
}

TEST(FrameSocketIo, BuildScatterBatchDescribesExactWireBytes) {
  // build_scatter_batch is what the io_uring sender submits (one WRITEV SQE
  // over the returned iovecs); flattening those iovecs must yield the exact
  // bytes the canonical codec produces, or the two backends diverge on the
  // wire.
  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  FrameWriter w(a);
  const auto head0 = pattern(28);
  const auto head1 = pattern(44);
  const auto body = pattern(512);
  const ScatterSegment segments[] = {
      {head0.data(), head0.size(), body.data(), body.size(), 0},
      {head1.data(), head1.size(), body.data(), body.size(),
       kFrameFlagTraced},
      {head0.data(), head0.size(), nullptr, 0, 0},  // header-only chunk
  };
  std::vector<iovec> iov;
  const std::size_t total =
      w.build_scatter_batch(FrameType::kChunk, segments, 3, iov);
  std::vector<std::byte> flat;
  for (const iovec& v : iov) {
    const auto* base = static_cast<const std::byte*>(v.iov_base);
    flat.insert(flat.end(), base, base + v.iov_len);
  }
  ASSERT_EQ(flat.size(), total);
  std::vector<std::byte> expected;
  for (const ScatterSegment& seg : segments) {
    Frame frame{FrameType::kChunk, {}};
    frame.flags = seg.flags;
    frame.payload.assign(seg.head, seg.head + seg.head_size);
    if (seg.body_size > 0)
      frame.payload.insert(frame.payload.end(), seg.body,
                           seg.body + seg.body_size);
    const auto encoded = encode_frame(frame);
    expected.insert(expected.end(), encoded.begin(), encoded.end());
  }
  EXPECT_EQ(flat, expected);
}

TEST(WireChunkCodec, RejectsShortAndOverlongInputs) {
  WireChunk out;
  std::vector<std::byte> tiny(kWireChunkHeaderBytes - 1);
  EXPECT_FALSE(decode_wire_chunk(tiny.data(), tiny.size(), out));
  // Payload longer than the declared chunk size is malformed.
  WireChunk in;
  in.size = 4;
  in.payload = pattern(64);
  std::vector<std::byte> encoded;
  encode_wire_chunk(in, encoded);
  encoded.insert(encoded.end(), in.payload.begin(), in.payload.end());
  EXPECT_FALSE(decode_wire_chunk(encoded.data(), encoded.size(), out));
}

TEST(FrameCodec, SessionIdRoundTripsWithHeaderExtension) {
  Frame in{FrameType::kChunk, pattern(96)};
  in.session_id = 0xA1B2C3D4u;
  const auto encoded = encode_frame(in);
  ASSERT_EQ(encoded.size(),
            kFrameHeaderBytes + kFrameSessionExtBytes + in.payload.size());
  Frame out;
  const DecodeResult r = decode_frame(encoded.data(), encoded.size(), out);
  ASSERT_EQ(r.error, FrameError::kNone);
  EXPECT_EQ(r.consumed, encoded.size());
  EXPECT_EQ(out.type, FrameType::kChunk);
  EXPECT_EQ(out.session_id, in.session_id);
  EXPECT_NE(out.flags & kFrameFlagSession, 0);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(FrameCodec, ChecksumCoversSessionId) {
  // The checksum chain covers the 4 id bytes followed by the payload, so a
  // flipped id bit must fail validation like corrupted data would.
  Frame in{FrameType::kChunk, pattern(64)};
  in.session_id = 7;
  auto encoded = encode_frame(in);
  encoded[kFrameHeaderBytes + 1] ^= std::byte{0x01};  // inside the id ext
  Frame out;
  EXPECT_EQ(decode_frame(encoded.data(), encoded.size(), out).error,
            FrameError::kChecksumMismatch);
}

TEST(FrameCodec, ZeroSessionIdStaysByteIdenticalToLegacyEncoding) {
  // session_id == 0 without the flag must keep the pre-session wire format
  // bit-for-bit, so single-session deployments see unchanged bytes.
  Frame plain{FrameType::kChunk, pattern(128)};
  Frame zero_session{FrameType::kChunk, pattern(128)};
  zero_session.session_id = 0;
  EXPECT_EQ(encode_frame(plain), encode_frame(zero_session));
  Frame out;
  const auto encoded = encode_frame(zero_session);
  ASSERT_EQ(decode_frame(encoded.data(), encoded.size(), out).error,
            FrameError::kNone);
  EXPECT_EQ(out.session_id, 0u);
  EXPECT_EQ(out.flags & kFrameFlagSession, 0);
}

TEST(FrameCodec, TruncatedSessionExtensionAsksForMoreData) {
  Frame in{FrameType::kPing, pattern(16)};
  in.session_id = 42;
  const auto encoded = encode_frame(in);
  // Cut mid-extension: the fixed header parses but the id bytes are missing.
  for (std::size_t size = kFrameHeaderBytes;
       size < kFrameHeaderBytes + kFrameSessionExtBytes; ++size) {
    Frame out;
    EXPECT_EQ(decode_frame(encoded.data(), size, out).error,
              FrameError::kNeedMoreData);
    FrameHeaderView hdr;
    EXPECT_EQ(parse_frame_header(encoded.data(), size, hdr),
              FrameError::kNeedMoreData);
  }
}

TEST(FrameCodec, ParseFrameHeaderReportsSessionSeed) {
  Frame in{FrameType::kChunk, pattern(48)};
  in.session_id = 99;
  const auto encoded = encode_frame(in);
  FrameHeaderView hdr;
  ASSERT_EQ(parse_frame_header(encoded.data(), encoded.size(), hdr),
            FrameError::kNone);
  EXPECT_EQ(hdr.session_id, 99u);
  EXPECT_EQ(hdr.header_bytes, kFrameHeaderBytes + kFrameSessionExtBytes);
  EXPECT_EQ(hdr.length, in.payload.size());
  // The reported seed must verify the payload where it sits (the zero-copy
  // receive path's contract).
  EXPECT_EQ(fnv1a(encoded.data() + hdr.header_bytes, hdr.length,
                  hdr.checksum_seed),
            hdr.checksum);
}

TEST(FrameSocketIo, ScatterBatchCarriesPerFrameSessionIds) {
  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  const auto head = pattern(28);
  const auto body = pattern(256);
  std::thread writer([&] {
    FrameWriter w(a);
    ScatterSegment segments[] = {
        {head.data(), head.size(), body.data(), body.size(), 0, 0},
        {head.data(), head.size(), body.data(), body.size(), 0, 31},
        {head.data(), head.size(), body.data(), body.size(), 0, 17},
    };
    ASSERT_EQ(w.write_scatter_batch(FrameType::kChunk, segments, 3, 5.0),
              SocketStatus::kOk);
    a.shutdown_both();
  });
  BufferedFrameReader reader(b);
  Frame frame;
  ASSERT_EQ(reader.read(frame, 5.0), FrameError::kNone);
  EXPECT_EQ(frame.session_id, 0u);
  ASSERT_EQ(reader.read(frame, 5.0), FrameError::kNone);
  EXPECT_EQ(frame.session_id, 31u);
  ASSERT_EQ(reader.read(frame, 5.0), FrameError::kNone);
  EXPECT_EQ(frame.session_id, 17u);
  EXPECT_EQ(frame.payload.size(), head.size() + body.size());
  writer.join();
}

}  // namespace
}  // namespace automdt::net
