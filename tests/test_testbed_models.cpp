#include <gtest/gtest.h>

#include "common/units.hpp"
#include "testbed/models.hpp"

namespace automdt::testbed {
namespace {

TEST(StorageModel, LinearScalingBelowCaps) {
  StorageConfig cfg;
  cfg.per_thread_mbps = 100.0;
  cfg.aggregate_mbps = 10000.0;
  cfg.contention_knee = 64;
  cfg.per_file_overhead_s = 0.0;
  StorageModel m(cfg);
  EXPECT_DOUBLE_EQ(m.rate_mbps(1, 1e9), 100.0);
  EXPECT_DOUBLE_EQ(m.rate_mbps(8, 1e9), 800.0);
}

TEST(StorageModel, AggregateCapBinds) {
  StorageConfig cfg;
  cfg.per_thread_mbps = 500.0;
  cfg.aggregate_mbps = 1000.0;
  cfg.contention_knee = 64;
  cfg.per_file_overhead_s = 0.0;
  StorageModel m(cfg);
  EXPECT_DOUBLE_EQ(m.rate_mbps(10, 1e9), 1000.0);
}

TEST(StorageModel, ContentionDegradesPastKnee) {
  StorageConfig cfg;
  cfg.per_thread_mbps = 100.0;
  cfg.aggregate_mbps = 1000.0;
  cfg.contention_knee = 10;
  cfg.contention_factor = 0.05;
  cfg.per_file_overhead_s = 0.0;
  StorageModel m(cfg);
  const double at_knee = m.rate_mbps(10, 1e9);
  const double past_knee = m.rate_mbps(30, 1e9);
  EXPECT_DOUBLE_EQ(at_knee, 1000.0);
  EXPECT_LT(past_knee, at_knee);
  // Over-subscription actively hurts: 30 threads worse than 10.
  EXPECT_NEAR(past_knee, 1000.0 / 2.0, 1.0);  // 1/(1+0.05*20) = 0.5
}

TEST(StorageModel, ZeroThreadsZeroRate) {
  StorageModel m(StorageConfig{});
  EXPECT_DOUBLE_EQ(m.rate_mbps(0, 1e9), 0.0);
}

TEST(StorageModel, SmallFilesPayOverhead) {
  StorageConfig cfg;
  cfg.per_thread_mbps = 800.0;  // 100 MB/s
  cfg.aggregate_mbps = 100000.0;
  cfg.contention_knee = 64;
  cfg.per_file_overhead_s = 0.01;
  StorageModel m(cfg);
  const double big = m.rate_mbps(1, 1.0 * kGB);     // overhead negligible
  const double small = m.rate_mbps(1, 100.0 * kKB); // overhead dominates
  EXPECT_NEAR(big, 800.0, 10.0);
  EXPECT_LT(small, big / 5.0);
}

TEST(LinkModel, SteadyStateMatchesThrottles) {
  LinkConfig cfg;
  cfg.per_stream_mbps = 75.0;
  cfg.aggregate_mbps = 1000.0;
  cfg.contention_knee = 64;
  LinkModel m(cfg);
  EXPECT_DOUBLE_EQ(m.steady_rate_mbps(4), 300.0);
  EXPECT_DOUBLE_EQ(m.steady_rate_mbps(20), 1000.0);  // capped
  EXPECT_DOUBLE_EQ(m.steady_rate_mbps(0), 0.0);
}

TEST(LinkModel, BackgroundTrafficStealsBandwidth) {
  LinkConfig cfg;
  cfg.per_stream_mbps = 200.0;
  cfg.aggregate_mbps = 1000.0;
  cfg.background_mbps = 400.0;
  cfg.contention_knee = 64;
  LinkModel m(cfg);
  EXPECT_DOUBLE_EQ(m.steady_rate_mbps(10), 600.0);
}

TEST(LinkModel, RampApproachesSteadyState) {
  LinkConfig cfg;
  cfg.per_stream_mbps = 100.0;
  cfg.aggregate_mbps = 10000.0;
  cfg.rtt_ms = 50.0;
  cfg.jitter = 0.0;
  cfg.contention_knee = 64;
  LinkModel m(cfg);
  Rng rng(1);
  // Right after requesting 10 streams the rate must be well below steady.
  const double first = m.rate_mbps(10, 0.05, 1e12, rng);
  EXPECT_LT(first, 500.0);
  // After ~20 RTT-equivalents it converges.
  double rate = 0.0;
  for (int i = 0; i < 40; ++i) rate = m.rate_mbps(10, 0.1, 1e12, rng);
  EXPECT_NEAR(rate, 1000.0, 20.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.effective_streams(), 0.0);
}

TEST(LinkModel, RampDownToo) {
  LinkConfig cfg;
  cfg.per_stream_mbps = 100.0;
  cfg.aggregate_mbps = 10000.0;
  cfg.rtt_ms = 20.0;
  cfg.contention_knee = 64;
  LinkModel m(cfg);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) m.rate_mbps(20, 0.1, 1e12, rng);
  const double high = m.effective_streams();
  for (int i = 0; i < 100; ++i) m.rate_mbps(2, 0.1, 1e12, rng);
  EXPECT_LT(m.effective_streams(), high);
  EXPECT_NEAR(m.effective_streams(), 2.0, 0.2);
}

TEST(LinkModel, JitterPerturbsRate) {
  LinkConfig cfg;
  cfg.per_stream_mbps = 100.0;
  cfg.aggregate_mbps = 10000.0;
  cfg.jitter = 0.1;
  cfg.rtt_ms = 1.0;
  cfg.contention_knee = 64;
  LinkModel m(cfg);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) m.rate_mbps(5, 0.1, 1e12, rng);  // ramp done
  const double a = m.rate_mbps(5, 0.1, 1e12, rng);
  const double b = m.rate_mbps(5, 0.1, 1e12, rng);
  EXPECT_NE(a, b);
  EXPECT_GT(a, 0.0);
}

TEST(LinkModel, PerFileOverheadSlowsSmallFiles) {
  LinkConfig cfg;
  cfg.per_stream_mbps = 800.0;  // 100 MB/s
  cfg.aggregate_mbps = 100000.0;
  cfg.contention_knee = 64;
  cfg.per_file_overhead_s = 0.1;
  LinkModel m(cfg);
  const double big = m.steady_rate_mbps(1, 10.0 * kGB);
  const double small = m.steady_rate_mbps(1, 10.0 * kMB);
  EXPECT_NEAR(big, 800.0, 10.0);
  // 10 MB at 100 MB/s = 0.1 s streaming + 0.1 s overhead -> half the rate.
  EXPECT_NEAR(small, 400.0, 20.0);
}

TEST(StagingBuffer, FillDrainClamped) {
  StagingBuffer buf(100.0);
  EXPECT_DOUBLE_EQ(buf.fill(60.0), 60.0);
  EXPECT_DOUBLE_EQ(buf.fill(60.0), 40.0);  // only 40 fits
  EXPECT_DOUBLE_EQ(buf.used(), 100.0);
  EXPECT_DOUBLE_EQ(buf.free_space(), 0.0);
  EXPECT_DOUBLE_EQ(buf.drain(30.0), 30.0);
  EXPECT_DOUBLE_EQ(buf.drain(1000.0), 70.0);  // only 70 left
  EXPECT_DOUBLE_EQ(buf.used(), 0.0);
  buf.fill(10.0);
  buf.reset();
  EXPECT_DOUBLE_EQ(buf.used(), 0.0);
}

}  // namespace
}  // namespace automdt::testbed
