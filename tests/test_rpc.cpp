#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "transfer/rpc.hpp"

namespace automdt::transfer {
namespace {

TEST(RpcPipe, ZeroLatencyImmediateDelivery) {
  RpcPipe pipe(0.0);
  pipe.send(ConcurrencyUpdate{{3, 4, 5}});
  const auto msg = pipe.try_receive();
  ASSERT_TRUE(msg.has_value());
  const auto* update = std::get_if<ConcurrencyUpdate>(&*msg);
  ASSERT_NE(update, nullptr);
  EXPECT_EQ(update->tuple, (ConcurrencyTuple{3, 4, 5}));
}

TEST(RpcPipe, LatencyDelaysDelivery) {
  RpcPipe pipe(0.05);
  pipe.send(BufferStatusRequest{42});
  EXPECT_FALSE(pipe.try_receive().has_value());  // not deliverable yet
  const auto t0 = std::chrono::steady_clock::now();
  const auto msg = pipe.receive();  // blocks until delivery time
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(msg.has_value());
  EXPECT_GE(dt, 0.03);
  EXPECT_EQ(std::get<BufferStatusRequest>(*msg).request_id, 42u);
}

TEST(RpcPipe, FifoOrder) {
  RpcPipe pipe(0.0);
  for (std::uint64_t i = 0; i < 5; ++i) pipe.send(BufferStatusRequest{i});
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto msg = pipe.receive();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get<BufferStatusRequest>(*msg).request_id, i);
  }
}

TEST(RpcPipe, CloseWakesReceiver) {
  RpcPipe pipe(0.0);
  std::thread t([&] { EXPECT_FALSE(pipe.receive().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pipe.close();
  t.join();
  EXPECT_TRUE(pipe.closed());
}

TEST(RpcPipe, SendAfterCloseDropped) {
  RpcPipe pipe(0.0);
  pipe.close();
  pipe.send(Shutdown{});
  EXPECT_EQ(pipe.pending(), 0u);
}

TEST(RpcChannel, DuplexRequestResponse) {
  RpcChannel channel(0.0);
  // Sender asks for buffer status.
  channel.sender_send(BufferStatusRequest{7});
  // Receiver services the request.
  const auto req = channel.receiver_receive();
  ASSERT_TRUE(req.has_value());
  const auto request_id = std::get<BufferStatusRequest>(*req).request_id;
  channel.receiver_send(
      BufferStatusResponse{request_id, 1000.0, 24.0, 3.5});
  // Sender sees the response.
  const auto resp = channel.sender_receive();
  ASSERT_TRUE(resp.has_value());
  const auto& r = std::get<BufferStatusResponse>(*resp);
  EXPECT_EQ(r.request_id, 7u);
  EXPECT_DOUBLE_EQ(r.free_bytes, 1000.0);
  EXPECT_DOUBLE_EQ(r.used_bytes, 24.0);
}

TEST(RpcChannel, DirectionsAreIndependent) {
  RpcChannel channel(0.0);
  channel.sender_send(ConcurrencyUpdate{{1, 2, 3}});
  // Nothing travels backwards.
  EXPECT_FALSE(channel.sender_try_receive().has_value());
  EXPECT_TRUE(channel.receiver_try_receive().has_value());
}

TEST(RpcChannel, ThreadedPingPong) {
  RpcChannel channel(0.001);
  constexpr int kRounds = 50;
  std::thread receiver([&] {
    while (auto msg = channel.receiver_receive()) {
      if (std::holds_alternative<Shutdown>(*msg)) break;
      const auto& req = std::get<BufferStatusRequest>(*msg);
      channel.receiver_send(BufferStatusResponse{req.request_id, 1.0, 2.0,
                                                 0.0});
    }
  });
  for (std::uint64_t i = 0; i < kRounds; ++i) {
    channel.sender_send(BufferStatusRequest{i});
    const auto resp = channel.sender_receive();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(std::get<BufferStatusResponse>(*resp).request_id, i);
  }
  channel.sender_send(Shutdown{});
  receiver.join();
}

TEST(RpcChannel, ThroughputReportVariant) {
  RpcChannel channel(0.0);
  channel.receiver_send(ThroughputReport{{10.0, 20.0, 30.0}, 1.0});
  const auto msg = channel.sender_receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_DOUBLE_EQ(std::get<ThroughputReport>(*msg).throughput_mbps.write,
                   30.0);
}

}  // namespace
}  // namespace automdt::transfer
