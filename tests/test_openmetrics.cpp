// OpenMetrics exposition: pinned golden output (same discipline as
// test_trace_export.cpp — byte-exact text, not substring spot checks), name
// mapping, label lifting + escaping, and histogram bucket-boundary
// rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/openmetrics.hpp"

namespace automdt::telemetry {
namespace {

/// The uptime sample is the single non-deterministic line; replace its value
/// so the rest of the scrape can be compared byte-exactly.
std::string normalize_uptime(std::string text) {
  const std::string prefix = "\nautomdt_uptime_seconds ";
  const std::size_t at = text.find(prefix);
  if (at == std::string::npos) return text;
  const std::size_t eol = text.find('\n', at + prefix.size());
  text.replace(at + prefix.size(), eol - at - prefix.size(), "<uptime>");
  return text;
}

TEST(OpenMetrics, GoldenRegistryRendering) {
  MetricsRegistry registry;
  registry.counter("read.bytes")->add(1024);
  registry.gauge("queue.occupancy")->set(0.5);
  registry.register_callback("engine.finished", [] { return 1.0; });
  registry.counter("session.7.bytes_ok")->add(42);
  registry.counter("tenant.acme.rejects")->add(2);
  LogLinearHistogram* hist = registry.histogram("read.latency_ns");
  hist->record(5);
  hist->record(7);
  hist->record(5);

  const std::string expected =
      "# TYPE automdt_uptime_seconds gauge\n"
      "automdt_uptime_seconds <uptime>\n"
      "# TYPE automdt_read_bytes counter\n"
      "automdt_read_bytes_total 1024\n"
      "# TYPE automdt_queue_occupancy gauge\n"
      "automdt_queue_occupancy 0.5\n"
      "# TYPE automdt_engine_finished gauge\n"
      "automdt_engine_finished 1\n"
      "# TYPE automdt_session_bytes_ok counter\n"
      "automdt_session_bytes_ok_total{session=\"7\"} 42\n"
      "# TYPE automdt_tenant_rejects counter\n"
      "automdt_tenant_rejects_total{tenant=\"acme\"} 2\n"
      "# TYPE automdt_read_latency_ns histogram\n"
      "automdt_read_latency_ns_bucket{le=\"5\"} 2\n"
      "automdt_read_latency_ns_bucket{le=\"7\"} 3\n"
      "automdt_read_latency_ns_bucket{le=\"+Inf\"} 3\n"
      "automdt_read_latency_ns_sum 17\n"
      "automdt_read_latency_ns_count 3\n"
      "# EOF\n";
  EXPECT_EQ(normalize_uptime(render_openmetrics(registry)), expected);
}

TEST(OpenMetrics, LabelVariantsGroupUnderOneTypeLine) {
  MetricsRegistry registry;
  registry.counter("session.1.bytes_ok")->add(10);
  registry.counter("session.2.bytes_ok")->add(20);
  const std::string expected =
      "# TYPE automdt_uptime_seconds gauge\n"
      "automdt_uptime_seconds <uptime>\n"
      "# TYPE automdt_session_bytes_ok counter\n"
      "automdt_session_bytes_ok_total{session=\"1\"} 10\n"
      "automdt_session_bytes_ok_total{session=\"2\"} 20\n"
      "# EOF\n";
  EXPECT_EQ(normalize_uptime(render_openmetrics(registry)), expected);
}

TEST(OpenMetrics, NameMappingLiftsSessionAndTenantLabels) {
  OpenMetricsName plain = openmetrics_name("read.bytes");
  EXPECT_EQ(plain.family, "automdt_read_bytes");
  EXPECT_TRUE(plain.label_key.empty());

  OpenMetricsName session = openmetrics_name("session.7.bytes_ok");
  EXPECT_EQ(session.family, "automdt_session_bytes_ok");
  EXPECT_EQ(session.label_key, "session");
  EXPECT_EQ(session.label_value, "7");

  OpenMetricsName tenant = openmetrics_name("tenant.acme.throttle_defers");
  EXPECT_EQ(tenant.family, "automdt_tenant_throttle_defers");
  EXPECT_EQ(tenant.label_key, "tenant");
  EXPECT_EQ(tenant.label_value, "acme");

  // Invalid name characters sanitize to '_'.
  EXPECT_EQ(openmetrics_name("io.backend-mode").family,
            "automdt_io_backend_mode");

  // Two-component session names have no metric part to lift; they stay
  // plain (sanitized) families rather than producing an empty name.
  EXPECT_TRUE(openmetrics_name("session.7").label_key.empty());
  EXPECT_EQ(openmetrics_name("session.7").family, "automdt_session_7");
}

TEST(OpenMetrics, LabelValuesEscapePerExpositionFormat) {
  EXPECT_EQ(openmetrics_escape_label("plain"), "plain");
  EXPECT_EQ(openmetrics_escape_label("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(openmetrics_escape_label("line\nbreak"), "line\\nbreak");

  // End to end: a hostile tenant name renders as a correctly escaped label.
  MetricsRegistry registry;
  registry.counter("tenant.a\"b\\c.rejects")->add(1);
  const std::string text = render_openmetrics(registry);
  EXPECT_NE(
      text.find("automdt_tenant_rejects_total{tenant=\"a\\\"b\\\\c\"} 1\n"),
      std::string::npos);
}

TEST(OpenMetrics, HistogramBucketBoundariesUseExactIntegerUppers) {
  // Below the first log-linear range every value is its own bucket; beyond
  // it widths double, so 64 and 65 share the [64,65] bucket and 100 lands
  // in [100,101]. The rendered `le` must be the histogram's exact integer
  // upper bound, cumulative across non-empty buckets.
  MetricsRegistry registry;
  LogLinearHistogram* hist = registry.histogram("net.batch");
  hist->record(63);
  hist->record(64);
  hist->record(65);
  hist->record(100);
  const std::string text = render_openmetrics(registry);
  EXPECT_NE(text.find("automdt_net_batch_bucket{le=\"63\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("automdt_net_batch_bucket{le=\"65\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("automdt_net_batch_bucket{le=\"101\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("automdt_net_batch_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("automdt_net_batch_sum 292\n"), std::string::npos);
  EXPECT_NE(text.find("automdt_net_batch_count 4\n"), std::string::npos);
  // No empty bucket between 65 and 100 leaked into the exposition.
  EXPECT_EQ(text.find("le=\"67\""), std::string::npos);
}

TEST(OpenMetrics, NonFiniteGaugesRenderSpecNames) {
  MetricsRegistry registry;
  registry.gauge("a.nan")->set(std::nan(""));
  registry.gauge("b.inf")->set(HUGE_VAL);
  const std::string text = render_openmetrics(registry);
  EXPECT_NE(text.find("automdt_a_nan NaN\n"), std::string::npos);
  EXPECT_NE(text.find("automdt_b_inf +Inf\n"), std::string::npos);
}

TEST(OpenMetrics, EmptyRegistryStillEndsWithEof) {
  MetricsRegistry registry;
  const std::string text = render_openmetrics(registry);
  EXPECT_EQ(text.find("# TYPE automdt_uptime_seconds gauge"), 0u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

}  // namespace
}  // namespace automdt::telemetry
