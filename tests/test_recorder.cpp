#include <gtest/gtest.h>

#include <sstream>

#include "testbed/recorder.hpp"

namespace automdt::testbed {
namespace {

TimePoint point(double t, int nr, int nn, int nw, double tw = 0.0) {
  TimePoint p;
  p.time_s = t;
  p.threads = {nr, nn, nw};
  p.throughput_mbps = {0.0, 0.0, tw};
  return p;
}

TEST(Recorder, TimeToReachSimple) {
  TimeSeriesRecorder r;
  for (int t = 0; t < 10; ++t) r.add(point(t, t + 1, 1, 1));
  // read reaches 5 at t=4 and stays (monotone ramp).
  const auto t = r.time_to_reach(Stage::kRead, 5);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 4.0);
}

TEST(Recorder, TimeToReachRequiresHold) {
  TimeSeriesRecorder r;
  // Spikes to 10 at t=2 but immediately falls back; only from t=6 does it
  // hold.
  r.add(point(0, 1, 1, 1));
  r.add(point(1, 1, 1, 1));
  r.add(point(2, 10, 1, 1));
  r.add(point(3, 2, 1, 1));
  r.add(point(4, 2, 1, 1));
  r.add(point(5, 2, 1, 1));
  for (int t = 6; t < 12; ++t) r.add(point(t, 10, 1, 1));
  const auto t = r.time_to_reach(Stage::kRead, 10, 0, 3.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 6.0);
}

TEST(Recorder, TimeToReachSlack) {
  TimeSeriesRecorder r;
  for (int t = 0; t < 8; ++t) r.add(point(t, 12, 1, 1));
  EXPECT_FALSE(r.time_to_reach(Stage::kRead, 13).has_value());
  EXPECT_TRUE(r.time_to_reach(Stage::kRead, 13, 1).has_value());
}

TEST(Recorder, TimeToThroughput) {
  TimeSeriesRecorder r;
  for (int t = 0; t < 10; ++t) r.add(point(t, 1, 1, 1, 100.0 * t));
  const auto t = r.time_to_throughput(1000.0, 0.9);  // needs 900 Mbps
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 9.0);
  EXPECT_FALSE(r.time_to_throughput(2000.0).has_value());
}

TEST(Recorder, MeanThroughputWindow) {
  TimeSeriesRecorder r;
  for (int t = 0; t < 10; ++t) r.add(point(t, 1, 1, 1, 100.0));
  EXPECT_DOUBLE_EQ(r.mean_throughput(Stage::kWrite, 0.0, 10.0), 100.0);
  EXPECT_DOUBLE_EQ(r.mean_throughput(Stage::kWrite, 20.0, 30.0), 0.0);
}

TEST(Recorder, ConcurrencyStddevMeasuresStability) {
  TimeSeriesRecorder stable, unstable;
  for (int t = 0; t < 20; ++t) {
    stable.add(point(t, 10, 1, 1));
    unstable.add(point(t, t % 2 ? 5 : 15, 1, 1));
  }
  EXPECT_DOUBLE_EQ(stable.concurrency_stddev(Stage::kRead, 0.0, 20.0), 0.0);
  EXPECT_GT(unstable.concurrency_stddev(Stage::kRead, 0.0, 20.0), 4.0);
}

TEST(Recorder, CsvRoundTripHeader) {
  TimeSeriesRecorder r;
  r.add(point(1.5, 2, 3, 4, 55.5));
  std::ostringstream os;
  r.write_csv(os);
  EXPECT_NE(os.str().find("time_s,n_read,n_network,n_write"),
            std::string::npos);
  EXPECT_NE(os.str().find("1.5,2,3,4"), std::string::npos);
}

TEST(Recorder, EmptyBehaviour) {
  TimeSeriesRecorder r;
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.time_to_reach(Stage::kRead, 1).has_value());
  EXPECT_FALSE(r.time_to_throughput(1.0).has_value());
  EXPECT_DOUBLE_EQ(r.mean_throughput(Stage::kWrite, 0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace automdt::testbed
