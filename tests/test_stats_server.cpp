// StatsServer / StatsClient: kStatsSnapshot round-trip over a real socket.
#include "telemetry/stats_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>

#include "telemetry/metrics.hpp"
#include "transfer/rpc_messages.hpp"

namespace automdt::telemetry {
namespace {

TEST(StatsServer, SnapshotMessageRoundTripPreservesOrderAndValues) {
  MetricsRegistry registry;
  registry.counter("write.bytes")->add(4096);
  registry.counter("read.bytes")->add(8192);
  registry.gauge("queue.occupancy")->set(0.75);

  const MetricsSnapshot snap = registry.snapshot();
  const transfer::StatsSnapshotResponse msg = snapshot_to_message(snap, 17);
  EXPECT_EQ(msg.request_id, 17u);
  EXPECT_EQ(msg.generation, snap.generation);
  ASSERT_EQ(msg.metrics.size(), snap.samples.size());

  const MetricsSnapshot back = message_to_snapshot(msg);
  EXPECT_EQ(back.generation, snap.generation);
  EXPECT_DOUBLE_EQ(back.uptime_s, snap.uptime_s);
  ASSERT_EQ(back.samples.size(), snap.samples.size());
  for (std::size_t i = 0; i < snap.samples.size(); ++i) {
    EXPECT_EQ(back.samples[i].name, snap.samples[i].name);
    EXPECT_DOUBLE_EQ(back.samples[i].value, snap.samples[i].value);
  }
  EXPECT_DOUBLE_EQ(back.value_or("write.bytes"), 4096.0);
  EXPECT_DOUBLE_EQ(back.value_or("queue.occupancy"), 0.75);
}

TEST(StatsServer, ClientPollRoundTrip) {
  MetricsRegistry registry;
  Counter* bytes = registry.counter("read.bytes");
  bytes->add(1000);

  StatsServer server({}, [&registry] { return registry.snapshot(); });
  ASSERT_TRUE(server.start());
  ASSERT_NE(server.port(), 0);

  auto client = StatsClient::connect("127.0.0.1", server.port());
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->connected());

  auto first = client->poll(5.0);
  ASSERT_TRUE(first.has_value());
  MetricsSnapshot s1 = message_to_snapshot(*first);
  EXPECT_DOUBLE_EQ(s1.value_or("read.bytes"), 1000.0);

  // Live state flows through: a second poll sees the updated counter and a
  // larger generation.
  bytes->add(24);
  auto second = client->poll(5.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_GT(second->generation, first->generation);
  MetricsSnapshot s2 = message_to_snapshot(*second);
  EXPECT_DOUBLE_EQ(s2.value_or("read.bytes"), 1024.0);

  EXPECT_GE(server.requests_served(), 2u);
  EXPECT_GE(server.connections_accepted(), 1u);
  server.stop();
  server.stop();  // idempotent
}

TEST(StatsServer, MultipleClientsServedConcurrently) {
  MetricsRegistry registry;
  registry.counter("n")->add(7);
  StatsServer server({}, [&registry] { return registry.snapshot(); });
  ASSERT_TRUE(server.start());

  auto a = StatsClient::connect("127.0.0.1", server.port());
  auto b = StatsClient::connect("127.0.0.1", server.port());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  auto ra = a->poll(5.0);
  auto rb = b->poll(5.0);
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_DOUBLE_EQ(message_to_snapshot(*ra).value_or("n"), 7.0);
  EXPECT_DOUBLE_EQ(message_to_snapshot(*rb).value_or("n"), 7.0);
  EXPECT_GE(server.connections_accepted(), 2u);
  server.stop();
}

TEST(StatsServer, PollAfterServerStopTimesOut) {
  MetricsRegistry registry;
  StatsServer server({}, [&registry] { return registry.snapshot(); });
  ASSERT_TRUE(server.start());
  auto client = StatsClient::connect("127.0.0.1", server.port());
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->poll(5.0).has_value());
  server.stop();
  // The connection is gone; poll must return nullopt, not wedge.
  EXPECT_FALSE(client->poll(0.5).has_value());
}

TEST(StatsServer, SourceCallbackRunsPerRequest) {
  std::atomic<int> calls{0};
  StatsServer server({}, [&calls] {
    calls.fetch_add(1);
    MetricsSnapshot snap;
    snap.generation = 42;
    snap.samples.push_back({"constant", 3.0});
    return snap;
  });
  ASSERT_TRUE(server.start());
  auto client = StatsClient::connect("127.0.0.1", server.port());
  ASSERT_NE(client, nullptr);
  auto resp = client->poll(5.0);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->generation, 42u);
  EXPECT_DOUBLE_EQ(message_to_snapshot(*resp).value_or("constant"), 3.0);
  EXPECT_EQ(calls.load(), 1);
  server.stop();
}

}  // namespace
}  // namespace automdt::telemetry
