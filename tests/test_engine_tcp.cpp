// Integration tests for the Tcp network backend: a full TransferSession
// whose chunks genuinely traverse loopback sockets, with the frame codec
// validating every transfer and the writer re-verifying payload checksums on
// the far side.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "common/logging.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/trace_export.hpp"
#include "transfer/engine.hpp"

namespace automdt::transfer {
namespace {

EngineConfig tcp_config() {
  EngineConfig c;
  c.backend = NetworkBackend::kTcp;
  c.max_threads = 4;
  c.chunk_bytes = 64 * 1024;
  c.sender_buffer_bytes = 1.0 * kMiB;
  c.receiver_buffer_bytes = 1.0 * kMiB;
  return c;
}

std::vector<double> dataset(int files, double bytes_each) {
  return std::vector<double>(static_cast<std::size_t>(files), bytes_each);
}

/// Poll `predicate` until it holds or `timeout_s` elapses.
bool eventually(double timeout_s, const std::function<bool()>& predicate) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

TEST(TcpBackend, CompletesAndVerifiesEveryChunkAcrossLoopback) {
  const auto files = dataset(8, 384.0 * 1024);  // 3 MiB, 48 chunks
  TransferSession session(tcp_config(), files);
  session.start({4, 4, 4});
  ASSERT_TRUE(session.wait_finished(30.0));
  const TransferStats stats = session.stats();
  EXPECT_EQ(stats.bytes_written, session.total_bytes());
  EXPECT_EQ(stats.chunks_written, 48u);
  EXPECT_EQ(stats.verify_failures, 0u);   // payload checksums on the far side
  EXPECT_EQ(stats.net_frame_errors, 0u);  // frame checksums en route
  EXPECT_EQ(stats.net_send_failures, 0u);
  EXPECT_GT(stats.net_streams_open, 0);
}

TEST(TcpBackend, SessionIdStampedFramesCompleteAndVerify) {
  // EngineConfig::session_id threads the serve-plane header extension
  // through every data frame; the transfer must behave identically.
  EngineConfig config = tcp_config();
  config.session_id = 7;
  const auto files = dataset(4, 256.0 * 1024);  // 1 MiB, 16 chunks
  TransferSession session(config, files);
  session.start({4, 4, 4});
  ASSERT_TRUE(session.wait_finished(30.0));
  const TransferStats stats = session.stats();
  EXPECT_EQ(stats.bytes_written, session.total_bytes());
  EXPECT_EQ(stats.chunks_written, 16u);
  EXPECT_EQ(stats.verify_failures, 0u);
  EXPECT_EQ(stats.net_frame_errors, 0u);
}

TEST(TcpBackend, FinalCountersMatchInProcessBackend) {
  const auto files = dataset(6, 256.0 * 1024);
  EngineConfig in_process = tcp_config();
  in_process.backend = NetworkBackend::kInProcess;

  TransferSession tcp_session(tcp_config(), files);
  tcp_session.start({2, 2, 2});
  ASSERT_TRUE(tcp_session.wait_finished(30.0));

  TransferSession local_session(in_process, files);
  local_session.start({2, 2, 2});
  ASSERT_TRUE(local_session.wait_finished(30.0));

  const TransferStats a = tcp_session.stats();
  const TransferStats b = local_session.stats();
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.chunks_written, b.chunks_written);
  EXPECT_EQ(a.verify_failures, 0u);
  EXPECT_EQ(b.verify_failures, 0u);
}

TEST(TcpBackend, ConcurrencyRetuneIsObservedAsParkedStreamsOnReceiver) {
  EngineConfig config = tcp_config();
  // Slow the network stage so the transfer outlives several retunes.
  config.network.aggregate_bytes_per_s = 2.0 * 1024 * 1024;
  const auto files = dataset(64, 256.0 * 1024);  // 16 MiB at 2 MiB/s
  TransferSession session(config, files);
  session.start({4, 4, 4});

  // All four network workers should open their own stream.
  ASSERT_TRUE(eventually(10.0, [&] {
    return session.stats().net_streams_active >= 4;
  })) << "active=" << session.stats().net_streams_active;

  // Lower n_n mid-transfer: the receiver must see three streams park.
  session.set_concurrency({4, 1, 4});
  ASSERT_TRUE(eventually(10.0, [&] {
    const TransferStats s = session.stats();
    return s.net_streams_active == 1 && s.net_streams_parked == 3;
  })) << "active=" << session.stats().net_streams_active
      << " parked=" << session.stats().net_streams_parked;

  // Raise it again: parked streams resume without reconnecting.
  const auto opened_before = session.stats().net_streams_open;
  session.set_concurrency({4, 3, 4});
  ASSERT_TRUE(eventually(10.0, [&] {
    return session.stats().net_streams_active >= 3;
  }));
  EXPECT_EQ(session.stats().net_streams_open, opened_before);

  session.stop();
}

TEST(TcpBackend, RecyclesPayloadBuffersThroughThePool) {
  const auto files = dataset(8, 256.0 * 1024);
  TransferSession session(tcp_config(), files);
  session.start({2, 2, 2});
  ASSERT_TRUE(session.wait_finished(30.0));
  const TransferStats stats = session.stats();
  // Once the pipeline is primed, writers feed payloads back to the readers
  // and the receiver-side decoders; the pool must be doing real work.
  EXPECT_GT(stats.payload_pool_hits, 0u);
  EXPECT_LT(stats.payload_pool_misses,
            stats.payload_pool_hits + stats.payload_pool_misses);
}

TEST(TcpBackend, HeaderOnlyChunksTraverseWithoutPayloads) {
  EngineConfig config = tcp_config();
  config.fill_payload = false;
  config.verify_payload = false;
  const auto files = dataset(4, 256.0 * 1024);
  TransferSession session(config, files);
  session.start({2, 2, 2});
  ASSERT_TRUE(session.wait_finished(30.0));
  const TransferStats stats = session.stats();
  EXPECT_EQ(stats.bytes_written, session.total_bytes());
  EXPECT_EQ(stats.net_frame_errors, 0u);
}

TEST(TcpBackend, RetuneUnderLoadCompletesAndVerifies) {
  // set_concurrency hammered while chunks traverse real sockets: the
  // transfer must still complete with every checksum intact and the stream
  // gauges must end consistent.
  EngineConfig config = tcp_config();
  TransferSession session(config, dataset(48, 256.0 * 1024));
  session.start({1, 1, 1});
  std::atomic<bool> done{false};
  std::thread tuner([&] {
    int i = 0;
    while (!done.load()) {
      session.set_concurrency({1 + i % 4, 1 + (i / 2) % 4, 1 + (i / 3) % 4});
      ++i;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  const bool finished = session.wait_finished(60.0);
  done.store(true);
  tuner.join();
  ASSERT_TRUE(finished);
  const TransferStats stats = session.stats();
  EXPECT_EQ(stats.bytes_written, session.total_bytes());
  EXPECT_EQ(stats.verify_failures, 0u);
  EXPECT_EQ(stats.net_frame_errors, 0u);
}

TEST(TcpBackend, CoalescesFramesIntoGatheredWrites) {
  // Throttle the writers so chunks pool in the sender queue; network
  // workers must then drain several per gathered write.
  EngineConfig config = tcp_config();
  config.write.aggregate_bytes_per_s = 4.0 * 1024 * 1024;
  TransferSession session(config, dataset(32, 256.0 * 1024));  // 8 MiB
  session.start({4, 2, 1});
  ASSERT_TRUE(session.wait_finished(60.0));
  const TransferStats stats = session.stats();
  EXPECT_EQ(stats.verify_failures, 0u);
  EXPECT_EQ(stats.net_frame_errors, 0u);
  ASSERT_GT(stats.net_batch_writes, 0u);
  EXPECT_EQ(stats.net_chunks_coalesced, 128u);  // every chunk went through
  // Average batch > 1 chunk: coalescing actually happened.
  EXPECT_LT(stats.net_batch_writes, stats.net_chunks_coalesced);
}

TEST(TcpBackend, CoalescingDisabledStillCompletes) {
  EngineConfig config = tcp_config();
  config.tcp.max_coalesced_bytes = 0;  // one chunk per write
  TransferSession session(config, dataset(8, 256.0 * 1024));
  session.start({2, 2, 2});
  ASSERT_TRUE(session.wait_finished(30.0));
  const TransferStats stats = session.stats();
  EXPECT_EQ(stats.bytes_written, session.total_bytes());
  EXPECT_EQ(stats.verify_failures, 0u);
  EXPECT_EQ(stats.net_chunks_coalesced, stats.net_batch_writes);
}

TEST(TcpBackend, SocketBufferAndNodelayOptionsApply) {
  EngineConfig config = tcp_config();
  config.tcp.send_buffer_bytes = 256 * 1024;
  config.tcp.recv_buffer_bytes = 256 * 1024;
  config.tcp.no_delay = true;
  TransferSession session(config, dataset(8, 256.0 * 1024));
  session.start({2, 2, 2});
  ASSERT_TRUE(session.wait_finished(30.0));
  EXPECT_EQ(session.stats().verify_failures, 0u);
}

TEST(TcpBackend, WireStampFillsEndToEndAndWireHistograms) {
  EngineConfig config = tcp_config();
  config.telemetry.sample_every = 1;  // stamp every chunk
  config.telemetry.wire_stamp = true;
  TransferSession session(config, dataset(4, 256.0 * 1024));
  session.start({2, 2, 2});
  ASSERT_TRUE(session.wait_finished(30.0));
  const auto snap = session.telemetry_snapshot();
  // Stamps crossed the wire: the receiver correlated sender send-time with
  // local arrival (wire) and reader origin with write completion (e2e).
  EXPECT_GT(snap.value_or("trace.wire_ns.count"), 0.0);
  EXPECT_GT(snap.value_or("trace.e2e_ns.count"), 0.0);
  // Single process, one clock: e2e spans at least the write-service time.
  EXPECT_GE(snap.value_or("trace.e2e_ns.p50"),
            snap.value_or("write.service_ns.p50"));
}

TEST(TcpBackend, WireStampOffLeavesCrossHostHistogramsEmpty) {
  EngineConfig config = tcp_config();
  config.telemetry.sample_every = 1;
  config.telemetry.wire_stamp = false;  // default: receiver re-stamps
  TransferSession session(config, dataset(4, 256.0 * 1024));
  session.start({2, 2, 2});
  ASSERT_TRUE(session.wait_finished(30.0));
  const auto snap = session.telemetry_snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("trace.wire_ns.count"), 0.0);
  EXPECT_DOUBLE_EQ(snap.value_or("trace.e2e_ns.count"), 0.0);
  // Local per-stage tracing still works without the wire extension.
  EXPECT_GT(snap.value_or("write.service_ns.count"), 0.0);
}

TEST(TcpBackend, ExportedTraceCorrelatesSenderAndReceiverSpansPerChunk) {
  telemetry::TraceExporter exporter;
  EngineConfig config = tcp_config();
  config.telemetry.sample_every = 1;
  config.telemetry.wire_stamp = true;
  config.telemetry.exporter = &exporter;
  TransferSession session(config, dataset(2, 128.0 * 1024));
  session.start({2, 2, 2});
  ASSERT_TRUE(session.wait_finished(30.0));
  session.stop();

  std::ostringstream os;
  exporter.write_chrome_json(os);
  const std::string json = os.str();

  // Every event line for one chunk id, keyed by span name -> (ts, dur).
  const auto spans_for = [&json](const std::string& id) {
    std::map<std::string, std::pair<double, double>> spans;
    std::istringstream lines(json);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.find("\"chunk\":\"" + id + "\"") == std::string::npos) continue;
      const auto name_at = line.find("\"name\":\"") + 8;
      const std::string name = line.substr(name_at, line.find('"', name_at) -
                                                        name_at);
      double ts = -1.0, dur = -1.0;
      const auto ts_at = line.find("\"ts\":");
      if (ts_at != std::string::npos) ts = std::stod(line.substr(ts_at + 5));
      const auto dur_at = line.find("\"dur\":");
      if (dur_at != std::string::npos)
        dur = std::stod(line.substr(dur_at + 6));
      spans[name] = {ts, dur};
    }
    return spans;
  };

  // Chunk f0:0 exists in any dataset and sample_every=1 guarantees it was
  // traced end to end.
  const auto spans = spans_for("f0:0");
  ASSERT_TRUE(spans.count("read")) << json;
  ASSERT_TRUE(spans.count("network")) << json;
  ASSERT_TRUE(spans.count("write")) << json;
  ASSERT_TRUE(spans.count("chunk.e2e")) << json;

  const auto& [read_ts, read_dur] = spans.at("read");
  const auto& [net_ts, net_dur] = spans.at("network");
  const auto& [write_ts, write_dur] = spans.at("write");
  const auto& [e2e_ts, e2e_dur] = spans.at("chunk.e2e");
  (void)net_dur;
  // Correlated timeline: the stages happen in pipeline order (same steady
  // clock on both "hosts" here, so ordering is exact, not just bounded).
  EXPECT_LE(read_ts, net_ts);
  EXPECT_LE(net_ts, write_ts + 1e-3);
  // The end-to-end span starts at the read origin and covers each stage.
  EXPECT_DOUBLE_EQ(e2e_ts, read_ts);
  EXPECT_GE(e2e_dur, read_dur);
  EXPECT_GE(e2e_dur, write_dur);
  EXPECT_GE(e2e_dur + 1e-3, (write_ts + write_dur) - read_ts);
}

TEST(TcpBackend, InjectedReaderStallTripsWatchdogExactlyOnce) {
  EngineConfig config = tcp_config();
  config.fault.reader_stall_after_chunks = 4;
  config.fault.reader_stall_s = 0.6;
  // One reader: the stall freezes the whole read stage, which is the
  // "pipeline wedged short of completion" signature the watchdog detects.
  TransferSession session(config, dataset(8, 128.0 * 1024));

  telemetry::FlightRecorderConfig fr;
  fr.out_dir = ::testing::TempDir();
  fr.prefix = "engine-stall";
  telemetry::FlightRecorder recorder(fr, &session.registry(), nullptr);
  telemetry::PipelineWatchdog watchdog(
      {0.02, 0.15},
      [&session]() -> std::optional<std::uint64_t> {
        const TransferStats s = session.stats();
        if (s.finished) return std::nullopt;
        return static_cast<std::uint64_t>(s.bytes_written);
      },
      &recorder);
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kOff);
  watchdog.start();
  session.start({1, 2, 2});
  ASSERT_TRUE(session.wait_finished(30.0));  // stall resolves, completes
  watchdog.stop();
  set_log_level(prev);

  EXPECT_EQ(session.stats().verify_failures, 0u);
  EXPECT_EQ(session.stats().bytes_written, session.total_bytes());
  EXPECT_EQ(watchdog.stalls_detected(), 1u);
  EXPECT_EQ(recorder.dumps(), 1u);
  EXPECT_FALSE(recorder.last_path().empty());
}

TEST(TcpBackend, StopMidTransferJoinsCleanly) {
  EngineConfig config = tcp_config();
  config.network.aggregate_bytes_per_s = 1.0 * 1024 * 1024;
  const auto files = dataset(64, 256.0 * 1024);
  auto session = std::make_unique<TransferSession>(config, files);
  session->start({4, 4, 4});
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  session->stop();   // must not hang on blocked socket I/O
  session.reset();   // destructor is idempotent
  SUCCEED();
}

}  // namespace
}  // namespace automdt::transfer
