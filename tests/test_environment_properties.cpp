// Parameterized property sweep over every testbed preset: invariants that
// must hold regardless of scenario — conservation, throughput bounds,
// determinism, observation sanity, and completion under the oracle tuple.
#include <gtest/gtest.h>

#include "optimizers/runner.hpp"
#include "optimizers/static_controller.hpp"
#include "testbed/presets.hpp"

namespace automdt::testbed {
namespace {

struct PresetCase {
  const char* id;
  ScenarioPreset (*make)();
};

class EnvironmentProperties : public ::testing::TestWithParam<PresetCase> {};

TEST_P(EnvironmentProperties, ConservationAndBounds) {
  const ScenarioPreset preset = GetParam().make();
  EmulatedEnvironment env(preset.config, Dataset::infinite());
  Rng rng(101);
  env.reset(rng);

  const double max_possible =
      std::max({preset.config.source_storage.aggregate_mbps,
                preset.config.link.aggregate_mbps,
                preset.config.dest_storage.aggregate_mbps});

  Rng action_rng(7);
  for (int t = 0; t < 40; ++t) {
    const ConcurrencyTuple action{
        action_rng.uniform_int(1, preset.config.max_threads),
        action_rng.uniform_int(1, preset.config.max_threads),
        action_rng.uniform_int(1, preset.config.max_threads)};
    const EnvStep out = env.step(action);

    // Throughputs bounded by physics (generous jitter allowance).
    for (Stage s : kAllStages) {
      EXPECT_GE(out.throughputs_mbps[s], 0.0);
      EXPECT_LE(out.throughputs_mbps[s], max_possible * 1.3)
          << GetParam().id << " stage " << stage_name(s);
    }

    // Pipeline ordering and buffer accounting.
    EXPECT_GE(env.bytes_read(), env.bytes_sent() - 1.0);
    EXPECT_GE(env.bytes_sent(), env.bytes_written() - 1.0);
    EXPECT_GE(env.sender_buffer_used(), -1e-6);
    EXPECT_LE(env.sender_buffer_used(),
              preset.config.sender_buffer_bytes + 1e-6);
    EXPECT_GE(env.receiver_buffer_used(), -1e-6);
    EXPECT_LE(env.receiver_buffer_used(),
              preset.config.receiver_buffer_bytes + 1e-6);

    // Observation features stay in sane ranges.
    ASSERT_EQ(out.observation.size(), kObservationSize);
    for (double v : out.observation) {
      EXPECT_GE(v, -0.01);
      EXPECT_LE(v, 2.0);
    }
    EXPECT_GE(out.reward, 0.0);
  }
}

TEST_P(EnvironmentProperties, DeterministicUnderSeed) {
  const ScenarioPreset preset = GetParam().make();
  EmulatedEnvironment a(preset.config, Dataset::infinite());
  EmulatedEnvironment b(preset.config, Dataset::infinite());
  Rng ra(55), rb(55);
  a.reset(ra);
  b.reset(rb);
  for (int t = 0; t < 15; ++t) {
    const EnvStep sa = a.step({6, 6, 6});
    const EnvStep sb = b.step({6, 6, 6});
    ASSERT_EQ(sa.observation, sb.observation) << GetParam().id;
  }
}

TEST_P(EnvironmentProperties, OracleTupleCompletesTransfer) {
  const ScenarioPreset preset = GetParam().make();
  // Size the dataset to ~60 bottleneck-seconds so every preset finishes fast.
  const double bottleneck =
      std::min({preset.config.source_storage.aggregate_mbps,
                preset.config.link.aggregate_mbps,
                preset.config.dest_storage.aggregate_mbps});
  const double bytes = mbps(bottleneck) * 60.0;
  EmulatedEnvironment env(preset.config, Dataset::uniform(4, bytes / 4.0));
  optimizers::FixedController oracle(preset.expected_optimal, "Oracle");
  Rng rng(77);
  const auto res = optimizers::run_transfer(env, oracle, rng, {1200.0});
  EXPECT_TRUE(res.completed) << GetParam().id;
  // The oracle tuple should achieve a healthy fraction of the bottleneck.
  EXPECT_GT(res.average_throughput_mbps, bottleneck * 0.4) << GetParam().id;
}

TEST_P(EnvironmentProperties, MoreBandwidthNeverSlower) {
  const ScenarioPreset preset = GetParam().make();
  TestbedConfig boosted = preset.config;
  boosted.link.aggregate_mbps *= 2.0;
  boosted.source_storage.aggregate_mbps *= 2.0;
  boosted.dest_storage.aggregate_mbps *= 2.0;
  boosted.link.jitter = 0.0;
  boosted.storage_jitter = 0.0;
  boosted.link.background_sigma_mbps = 0.0;
  TestbedConfig base = preset.config;
  base.link.jitter = 0.0;
  base.storage_jitter = 0.0;
  base.link.background_sigma_mbps = 0.0;

  const Dataset data = Dataset::uniform(2, 200.0 * kMB);
  optimizers::FixedController oracle(preset.expected_optimal, "Oracle");

  EmulatedEnvironment env_base(base, data);
  EmulatedEnvironment env_boost(boosted, data);
  Rng r1(3), r2(3);
  const auto res_base = optimizers::run_transfer(env_base, oracle, r1,
                                                 {3600.0});
  const auto res_boost = optimizers::run_transfer(env_boost, oracle, r2,
                                                  {3600.0});
  ASSERT_TRUE(res_base.completed);
  ASSERT_TRUE(res_boost.completed);
  EXPECT_LE(res_boost.completion_time_s, res_base.completion_time_s * 1.01)
      << GetParam().id;
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, EnvironmentProperties,
    ::testing::Values(PresetCase{"fabric", &fabric_ncsa_tacc},
                      PresetCase{"cloudlab", &cloudlab_1g},
                      PresetCase{"read", &bottleneck_read},
                      PresetCase{"network", &bottleneck_network},
                      PresetCase{"write", &bottleneck_write}),
    [](const ::testing::TestParamInfo<PresetCase>& info) {
      return info.param.id;
    });

}  // namespace
}  // namespace automdt::testbed
