// Unit and property tests for the Algorithm-1 discrete-event simulator.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "sim/dynamics_simulator.hpp"

namespace automdt::sim {
namespace {

SimScenario basic_scenario() {
  SimScenario s;
  s.sender_capacity = 1.0 * kGiB;
  s.receiver_capacity = 1.0 * kGiB;
  s.tpt_mbps = {100.0, 100.0, 100.0};
  s.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
  return s;
}

TEST(DynamicsSimulator, ThroughputBoundedByPerThreadRate) {
  SimScenario s = basic_scenario();
  DynamicsSimulator sim(s);
  // 1 thread each: at most 100 Mbps per stage.
  const SimStepResult r = sim.step({1, 1, 1});
  EXPECT_LE(r.throughput_mbps.read, 100.0 * 1.001);
  EXPECT_LE(r.throughput_mbps.network, 100.0 * 1.001);
  EXPECT_LE(r.throughput_mbps.write, 100.0 * 1.001);
  EXPECT_GT(r.throughput_mbps.read, 50.0);  // empty buffer: reads should fly
}

TEST(DynamicsSimulator, ThroughputBoundedByAggregateBandwidth) {
  SimScenario s = basic_scenario();
  DynamicsSimulator sim(s);
  // 30 threads x 100 Mbps = 3000 linear, but cap is 1000.
  for (int i = 0; i < 5; ++i) {
    const SimStepResult r = sim.step({30, 30, 30});
    EXPECT_LE(r.throughput_mbps.read, 1000.0 * 1.001);
    EXPECT_LE(r.throughput_mbps.network, 1000.0 * 1.001);
    EXPECT_LE(r.throughput_mbps.write, 1000.0 * 1.001);
  }
}

TEST(DynamicsSimulator, ConservationOfBytes) {
  SimScenario s = basic_scenario();
  DynamicsSimulator sim(s);
  double read_total = 0.0, net_total = 0.0, write_total = 0.0;
  for (int i = 0; i < 20; ++i) {
    const SimStepResult r = sim.step({5, 3, 2});
    read_total += mbps(r.throughput_mbps.read) * s.step_duration_s;
    net_total += mbps(r.throughput_mbps.network) * s.step_duration_s;
    write_total += mbps(r.throughput_mbps.write) * s.step_duration_s;
  }
  // bytes read = sender buffer + bytes sent (allow small normalization slack
  // from tasks finishing past the interval boundary).
  const double slack = 4 * s.effective_chunk_bytes() * 30;
  EXPECT_NEAR(read_total, sim.sender_used() + net_total, slack);
  EXPECT_NEAR(net_total, sim.receiver_used() + write_total, slack);
  // Data never appears from nowhere.
  EXPECT_GE(read_total + slack, net_total);
  EXPECT_GE(net_total + slack, write_total);
}

TEST(DynamicsSimulator, WriteBlockedUntilDataArrives) {
  SimScenario s = basic_scenario();
  DynamicsSimulator sim(s);
  sim.reset_buffers(0.0, 0.0);
  // First step: writes can only move what the pipeline delivers this step.
  const SimStepResult r = sim.step({1, 1, 30});
  EXPECT_LE(r.throughput_mbps.write, r.throughput_mbps.network * 1.05 + 1.0);
}

TEST(DynamicsSimulator, ReadStallsWhenBufferFull) {
  SimScenario s = basic_scenario();
  s.sender_capacity = 32.0 * kMiB;  // tiny staging buffer
  DynamicsSimulator sim(s);
  // Massive read concurrency, minimal drain: reads must throttle to the
  // network drain rate once the buffer fills.
  double last_read = 0.0;
  for (int i = 0; i < 5; ++i) last_read = sim.step({30, 1, 1}).throughput_mbps.read;
  EXPECT_LE(last_read, 100.0 * 1.5);  // ~network per-thread rate, not 1000
  EXPECT_NEAR(sim.sender_used(), 32.0 * kMiB, 2.0 * s.effective_chunk_bytes());
}

TEST(DynamicsSimulator, BufferStatePersistsAcrossSteps) {
  SimScenario s = basic_scenario();
  DynamicsSimulator sim(s);
  sim.step({10, 1, 1});
  const double used_after_one = sim.sender_used();
  EXPECT_GT(used_after_one, 0.0);
  sim.step({1, 10, 10});  // drain
  EXPECT_LT(sim.sender_used(), used_after_one);
}

TEST(DynamicsSimulator, ResetBuffersClamps) {
  DynamicsSimulator sim(basic_scenario());
  sim.reset_buffers(1e18, -5.0);
  EXPECT_DOUBLE_EQ(sim.sender_used(), sim.scenario().sender_capacity);
  EXPECT_DOUBLE_EQ(sim.receiver_used(), 0.0);
}

TEST(DynamicsSimulator, RewardMatchesUtilityOfReportedThroughputs) {
  SimScenario s = basic_scenario();
  DynamicsSimulator sim(s);
  const ConcurrencyTuple n{4, 4, 4};
  const SimStepResult r = sim.step(n);
  EXPECT_NEAR(r.reward, total_utility(r.throughput_mbps, n, s.utility), 1e-9);
}

TEST(DynamicsSimulator, ActionsClampedToMaxThreads) {
  SimScenario s = basic_scenario();
  s.max_threads = 8;
  DynamicsSimulator sim(s);
  // 100 threads requested -> clamped to 8 -> at most 800 Mbps.
  const SimStepResult r = sim.step({100, 100, 100});
  EXPECT_LE(r.throughput_mbps.read, 8 * 100.0 * 1.001);
}

TEST(DynamicsSimulator, DeterministicGivenSameState) {
  SimScenario s = basic_scenario();
  DynamicsSimulator a(s), b(s);
  for (int i = 0; i < 10; ++i) {
    const SimStepResult ra = a.step({7, 5, 3});
    const SimStepResult rb = b.step({7, 5, 3});
    EXPECT_EQ(ra.throughput_mbps, rb.throughput_mbps);
    EXPECT_DOUBLE_EQ(ra.reward, rb.reward);
  }
}

TEST(DynamicsSimulator, FreePlusUsedEqualsCapacity) {
  SimScenario s = basic_scenario();
  DynamicsSimulator sim(s);
  const SimStepResult r = sim.step({6, 2, 1});
  EXPECT_DOUBLE_EQ(r.sender_used_bytes + r.sender_free_bytes,
                   s.sender_capacity);
  EXPECT_DOUBLE_EQ(r.receiver_used_bytes + r.receiver_free_bytes,
                   s.receiver_capacity);
}

TEST(DynamicsSimulator, EventCountReasonable) {
  SimScenario s = basic_scenario();
  DynamicsSimulator sim(s);
  const SimStepResult r = sim.step({10, 10, 10});
  EXPECT_GT(r.events_processed, 30);       // every thread ran at least once
  EXPECT_LT(r.events_processed, 200000);   // and the step stayed cheap
}

// ---- Property sweep: steady-state throughput ~ min(n*tpt, B) at the
// bottleneck stage across a grid of scenarios. ----

struct SweepParam {
  double tpt_r, tpt_n, tpt_w;  // Mbps per thread
  int n_r, n_n, n_w;
};

class SimulatorSteadyState : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SimulatorSteadyState, EndToEndRateMatchesFluidModel) {
  const SweepParam p = GetParam();
  SimScenario s;
  s.sender_capacity = 2.0 * kGiB;
  s.receiver_capacity = 2.0 * kGiB;
  s.tpt_mbps = {p.tpt_r, p.tpt_n, p.tpt_w};
  s.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
  DynamicsSimulator sim(s);

  const ConcurrencyTuple n{p.n_r, p.n_n, p.n_w};
  auto stage_cap = [&](Stage st) {
    return std::min(n[st] * s.tpt_mbps[st], s.bandwidth_mbps[st]);
  };
  const double expected_e2e = std::min(
      {stage_cap(Stage::kRead), stage_cap(Stage::kNetwork),
       stage_cap(Stage::kWrite)});

  // Run to steady state; the write rate is the end-to-end rate.
  double write_rate = 0.0;
  for (int i = 0; i < 30; ++i) write_rate = sim.step(n).throughput_mbps.write;
  EXPECT_NEAR(write_rate, expected_e2e, expected_e2e * 0.10 + 5.0)
      << "n=" << n.to_string();
}

TEST(DynamicsSimulator, QueueCapacityStaysBoundedByLargestTuple) {
  // step() reserves n.total() event slots up front, so repeated stepping must
  // never grow the queue beyond what the largest tuple needed — the hot loop
  // stays reallocation-free.
  DynamicsSimulator sim(basic_scenario());
  const ConcurrencyTuple big{8, 8, 8};
  sim.step(big);
  const std::size_t cap = sim.queue_capacity();
  EXPECT_GE(cap, static_cast<std::size_t>(big.total()));
  for (int i = 0; i < 50; ++i) sim.step(big);
  for (int i = 0; i < 50; ++i) sim.step({2, 3, 4});
  EXPECT_EQ(sim.queue_capacity(), cap);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimulatorSteadyState,
    ::testing::Values(
        SweepParam{100, 100, 100, 4, 4, 4},    // balanced, below caps
        SweepParam{80, 160, 200, 13, 7, 5},    // paper read-bottleneck ideal
        SweepParam{205, 75, 195, 5, 14, 5},    // paper network-bottleneck
        SweepParam{200, 150, 70, 5, 7, 15},    // paper write-bottleneck
        SweepParam{100, 100, 100, 30, 30, 30}, // everything at aggregate cap
        SweepParam{50, 400, 400, 2, 2, 2},     // read-starved pipeline
        SweepParam{400, 400, 50, 3, 3, 3},     // write-limited pipeline
        SweepParam{250, 250, 250, 1, 1, 1}));  // single threads

}  // namespace
}  // namespace automdt::sim
