#include <gtest/gtest.h>

#include "nn/matrix.hpp"

namespace automdt::nn {
namespace {

TEST(Matrix, ConstructAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (double v : m.data()) EXPECT_DOUBLE_EQ(v, 1.5);
  m.zero();
  EXPECT_DOUBLE_EQ(m.sum(), 0.0);
}

TEST(Matrix, FromInitializerList) {
  Matrix m = Matrix::from({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, RowAndColumnVectors) {
  const double vals[] = {1.0, 2.0, 3.0};
  Matrix r = Matrix::row(vals);
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 3u);
  Matrix c = Matrix::column(vals);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c(2, 0), 3.0);
}

TEST(Matrix, ElementwiseOps) {
  Matrix a = Matrix::from({{1, 2}, {3, 4}});
  Matrix b = Matrix::from({{10, 20}, {30, 40}});
  EXPECT_EQ(a + b, Matrix::from({{11, 22}, {33, 44}}));
  EXPECT_EQ(b - a, Matrix::from({{9, 18}, {27, 36}}));
  EXPECT_EQ(a * 2.0, Matrix::from({{2, 4}, {6, 8}}));
  EXPECT_EQ(hadamard(a, b), Matrix::from({{10, 40}, {90, 160}}));
}

TEST(Matrix, Matmul) {
  Matrix a = Matrix::from({{1, 2, 3}, {4, 5, 6}});
  Matrix b = Matrix::from({{7, 8}, {9, 10}, {11, 12}});
  EXPECT_EQ(matmul(a, b), Matrix::from({{58, 64}, {139, 154}}));
}

TEST(Matrix, MatmulIdentity) {
  Matrix a = Matrix::from({{1, 2}, {3, 4}});
  EXPECT_EQ(matmul(a, Matrix::identity(2)), a);
  EXPECT_EQ(matmul(Matrix::identity(2), a), a);
}

TEST(Matrix, MatmulTnMatchesExplicitTranspose) {
  Matrix a = Matrix::from({{1, 2}, {3, 4}, {5, 6}});  // 3x2
  Matrix b = Matrix::from({{7, 8, 9}, {10, 11, 12}, {13, 14, 15}});  // 3x3
  EXPECT_EQ(matmul_tn(a, b), matmul(a.transposed(), b));
}

TEST(Matrix, MatmulNtMatchesExplicitTranspose) {
  Matrix a = Matrix::from({{1, 2, 3}, {4, 5, 6}});  // 2x3
  Matrix b = Matrix::from({{7, 8, 9}, {10, 11, 12}});  // 2x3
  EXPECT_EQ(matmul_nt(a, b), matmul(a, b.transposed()));
}

TEST(Matrix, Transposed) {
  Matrix a = Matrix::from({{1, 2, 3}, {4, 5, 6}});
  Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, Reductions) {
  Matrix a = Matrix::from({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(a.sum(), 10.0);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_EQ(a.row_sums(), Matrix::from({{3}, {7}}));
  EXPECT_EQ(a.col_sums(), Matrix::from({{4, 6}}));
}

TEST(Matrix, Map) {
  Matrix a = Matrix::from({{1, -2}});
  Matrix b = a.map([](double v) { return v * v; });
  EXPECT_EQ(b, Matrix::from({{1, 4}}));
}

TEST(Matrix, NormAndDiff) {
  Matrix a = Matrix::from({{3, 4}});
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  Matrix b = Matrix::from({{3, 4.5}});
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
}

TEST(Matrix, EmptyMatrix) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_DOUBLE_EQ(m.sum(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

}  // namespace
}  // namespace automdt::nn
