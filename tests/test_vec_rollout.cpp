// Vectorized rollout collection and training determinism: results must
// depend only on (seed, num_envs) — never on the thread-pool size.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "rl/networks.hpp"
#include "rl/ppo_agent.hpp"
#include "rl/rollout.hpp"
#include "sim/simulator_env.hpp"

namespace automdt::rl {
namespace {

sim::SimScenario tiny_scenario() {
  sim::SimScenario s;
  s.sender_capacity = 1.0 * kGiB;
  s.receiver_capacity = 1.0 * kGiB;
  s.tpt_mbps = {50.0, 200.0, 200.0};
  s.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
  s.max_threads = 20;
  return s;
}

VecEnv make_vec(std::size_t n, std::uint64_t seed) {
  std::vector<std::unique_ptr<Env>> envs;
  for (std::size_t i = 0; i < n; ++i)
    envs.push_back(std::make_unique<sim::SimulatorEnv>(tiny_scenario()));
  return VecEnv(std::move(envs), seed);
}

PpoConfig tiny_config() {
  PpoConfig c = PpoConfig::fast_defaults();
  c.hidden_dim = 16;
  c.max_episodes = 12;
  c.episodes_per_batch = 4;
  c.stagnation_episodes = 1000;  // never stop early in these tests
  return c;
}

struct PoolGuard {
  ~PoolGuard() { set_global_thread_pool_size(0); }
};

// One full collection pass; returns (episode rewards, memory) for comparison.
struct Collected {
  std::vector<double> rewards;
  std::vector<double> step_rewards;
  nn::Matrix states;
  nn::Matrix actions;
  nn::Matrix log_probs;
};

Collected collect_with_pool(int pool_size) {
  ThreadPool pool(pool_size);
  VecEnv envs = make_vec(4, /*seed=*/123);
  Rng net_rng(5);
  PolicyNetwork policy(kObservationSize, 3, tiny_config(), net_rng);
  RolloutMemory memory;
  Collected out;
  out.rewards = collect_episodes(envs, policy, /*steps=*/10, /*r_max=*/100.0,
                                 envs.max_threads(), pool, memory);
  out.step_rewards = memory.rewards();
  out.states = memory.states_matrix();
  out.actions = memory.actions_matrix();
  out.log_probs = memory.log_probs_column();
  return out;
}

void expect_identical(const nn::Matrix& a, const nn::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) ASSERT_EQ(a(i, j), b(i, j));
}

TEST(VecEnv, StreamsAreIndependentOfEachOther) {
  VecEnv a = make_vec(4, 42);
  VecEnv b = make_vec(8, 42);
  // Env i's stream must not depend on how many envs exist beside it.
  for (std::size_t i = 0; i < 4; ++i) {
    Rng& ra = a.rng(i);
    Rng& rb = b.rng(i);
    for (int k = 0; k < 16; ++k) ASSERT_EQ(ra.uniform(), rb.uniform());
  }
}

TEST(CollectEpisodes, IdenticalAcrossPoolSizes) {
  PoolGuard guard;
  set_global_thread_pool_size(1);
  const Collected serial = collect_with_pool(1);
  set_global_thread_pool_size(4);
  const Collected parallel = collect_with_pool(4);

  ASSERT_EQ(serial.rewards.size(), parallel.rewards.size());
  for (std::size_t i = 0; i < serial.rewards.size(); ++i)
    ASSERT_EQ(serial.rewards[i], parallel.rewards[i]) << "env " << i;
  ASSERT_EQ(serial.step_rewards, parallel.step_rewards);
  expect_identical(serial.states, parallel.states);
  expect_identical(serial.actions, parallel.actions);
  expect_identical(serial.log_probs, parallel.log_probs);
}

TEST(CollectEpisodes, FillsOneEpisodePerEnv) {
  PoolGuard guard;
  set_global_thread_pool_size(2);
  const Collected c = collect_with_pool(2);
  ASSERT_EQ(c.rewards.size(), 4u);
  // The simulator env never terminates early, so every env contributes
  // exactly `steps` transitions, appended in env order.
  EXPECT_EQ(c.step_rewards.size(), 4u * 10u);
}

TEST(PpoAgentVec, TrainingIdenticalForAnyThreadCount) {
  PoolGuard guard;
  const double r_max =
      sim::SimulatorEnv(tiny_scenario()).theoretical_max_reward();

  auto train_with_threads = [&](int num_threads) {
    PpoConfig cfg = tiny_config();
    cfg.num_threads = num_threads;
    cfg.num_envs = 2;
    PpoAgent agent(kObservationSize, tiny_scenario().max_threads, cfg);
    VecEnv envs = make_vec(2, cfg.seed);
    return agent.train(envs, r_max);
  };

  const TrainResult serial = train_with_threads(1);
  const TrainResult parallel = train_with_threads(3);

  ASSERT_EQ(serial.episodes_run, parallel.episodes_run);
  ASSERT_EQ(serial.episode_rewards.size(), parallel.episode_rewards.size());
  for (std::size_t i = 0; i < serial.episode_rewards.size(); ++i)
    ASSERT_EQ(serial.episode_rewards[i], parallel.episode_rewards[i])
        << "episode " << i;
  EXPECT_EQ(serial.best_reward, parallel.best_reward);
}

TEST(PpoAgentVec, VectorizedPathLearnsASensiblePolicy) {
  PoolGuard guard;
  // Not a convergence test (budget is tiny) — just that the vectorized loop
  // runs end to end, batches updates, and produces finite rewards.
  PpoConfig cfg = tiny_config();
  cfg.max_episodes = 16;
  cfg.num_envs = 4;
  PpoAgent agent(kObservationSize, tiny_scenario().max_threads, cfg);
  VecEnv envs = make_vec(4, cfg.seed);
  const double r_max =
      sim::SimulatorEnv(tiny_scenario()).theoretical_max_reward();
  const TrainResult r = agent.train(envs, r_max);
  EXPECT_EQ(r.episodes_run, 16);
  for (double v : r.episode_rewards) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.5);  // normalized rewards live around [0, 1]
  }
}

}  // namespace
}  // namespace automdt::rl
