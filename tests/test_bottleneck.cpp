// BottleneckAttributor: classification rule unit tests on synthetic clock
// samples, plus the ISSUE's acceptance check — the ONLINE attributor watching
// a real throttled TransferSession must name the same bottleneck stage that
// the probe's OFFLINE sweep derives for the matching Fig. 5 preset.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "probe/explorer.hpp"
#include "probe/probe_log.hpp"
#include "sim/simulator_env.hpp"
#include "telemetry/bottleneck.hpp"
#include "transfer/engine.hpp"

namespace automdt::telemetry {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000ull;

StageSample make_stage(double busy_s, double up_s, double down_s,
                       double throttle_s = 0.0, std::uint64_t bytes = 0) {
  StageSample s;
  s.clocks.busy_ns = static_cast<std::uint64_t>(busy_s * kSecond);
  s.clocks.blocked_upstream_ns = static_cast<std::uint64_t>(up_s * kSecond);
  s.clocks.blocked_downstream_ns =
      static_cast<std::uint64_t>(down_s * kSecond);
  s.throttle_ns = static_cast<std::uint64_t>(throttle_s * kSecond);
  s.bytes = bytes;
  return s;
}

BottleneckAttributor::Config immediate() {
  BottleneckAttributor::Config c;
  c.min_interval_s = 0.0;
  return c;
}

TEST(BottleneckAttributor, ClassifiesBusyDominantStage) {
  BottleneckAttributor attr(immediate());
  PipelineSample p;
  p.stages[0] = make_stage(0.9, 0.0, 0.1);  // read: almost always working
  p.stages[1] = make_stage(0.2, 0.8, 0.0);  // network: starved
  p.stages[2] = make_stage(0.1, 0.9, 0.0);  // write: starved
  ASSERT_TRUE(attr.update(p, kSecond));
  const Attribution a = attr.attribution();
  EXPECT_EQ(a.bottleneck, 0);
  EXPECT_NEAR(a.stages[0].busy_frac, 0.9, 1e-9);
  EXPECT_NEAR(a.stages[1].starved_frac, 0.8, 1e-9);
  EXPECT_NEAR(a.stages[1].blocked_frac, 1.0 - a.stages[1].busy_frac, 1e-9);
}

TEST(BottleneckAttributor, ThrottleWaitCountsAsSelfNotBackpressure) {
  // An emulated-rate stage books its token-bucket waits as blocked-downstream
  // with a matching throttle_ns; the rule must fold that back into self so a
  // throttled-but-constraining stage is still the bottleneck.
  BottleneckAttributor attr(immediate());
  PipelineSample p;
  p.stages[0] = make_stage(0.1, 0.0, 0.9, /*throttle_s=*/0.9);
  p.stages[1] = make_stage(0.3, 0.7, 0.0);
  p.stages[2] = make_stage(0.2, 0.8, 0.0);
  ASSERT_TRUE(attr.update(p, kSecond));
  const Attribution a = attr.attribution();
  EXPECT_EQ(a.bottleneck, 0);
  EXPECT_NEAR(a.stages[0].busy_frac, 1.0, 1e-9);
  EXPECT_NEAR(a.stages[0].backpressure_frac, 0.0, 1e-9);
}

TEST(BottleneckAttributor, BackpressureWithoutThrottleIsNotSelf) {
  BottleneckAttributor attr(immediate());
  PipelineSample p;
  p.stages[0] = make_stage(0.2, 0.0, 0.8);  // read backed up behind network
  p.stages[1] = make_stage(0.95, 0.05, 0.0);
  p.stages[2] = make_stage(0.2, 0.8, 0.0);
  ASSERT_TRUE(attr.update(p, kSecond));
  const Attribution a = attr.attribution();
  EXPECT_EQ(a.bottleneck, 1);
  EXPECT_NEAR(a.stages[0].backpressure_frac, 0.8, 1e-9);
}

TEST(BottleneckAttributor, ParkedTimeIsExcludedFromDenominator) {
  // Gated workers (concurrency below max_threads) are deliberately idle;
  // 10 worker-seconds of parked time must not dilute a 1-second busy stage.
  BottleneckAttributor attr(immediate());
  PipelineSample p;
  p.stages[0] = make_stage(1.0, 0.0, 0.0);
  p.stages[0].clocks.parked_ns = 10 * kSecond;
  p.stages[1] = make_stage(0.3, 0.7, 0.0);
  p.stages[2] = make_stage(0.3, 0.7, 0.0);
  ASSERT_TRUE(attr.update(p, kSecond));
  const Attribution a = attr.attribution();
  EXPECT_EQ(a.bottleneck, 0);
  EXPECT_NEAR(a.stages[0].busy_frac, 1.0, 1e-9);
  EXPECT_NEAR(a.stages[0].active_s, 1.0, 1e-9);
}

TEST(BottleneckAttributor, EffectiveBandwidthIsBytesOverSelfSeconds) {
  BottleneckAttributor attr(immediate());
  PipelineSample p;
  // 125 MB over 1 busy worker-second = 1000 Mbit/s.
  p.stages[0] = make_stage(1.0, 0.0, 0.0, 0.0, 125'000'000ull);
  p.stages[1] = make_stage(0.5, 0.5, 0.0, 0.0, 125'000'000ull);
  p.stages[2] = make_stage(0.5, 0.5, 0.0, 0.0, 125'000'000ull);
  ASSERT_TRUE(attr.update(p, kSecond));
  const Attribution a = attr.attribution();
  EXPECT_NEAR(a.stages[0].eff_mbps, 1000.0, 1.0);
  EXPECT_NEAR(a.stages[1].eff_mbps, 2000.0, 2.0);
}

TEST(BottleneckAttributor, RateLimitKeepsPreviousWindow) {
  BottleneckAttributor::Config c;
  c.min_interval_s = 1000.0;  // nothing after the first update recomputes
  BottleneckAttributor attr(c);
  PipelineSample p;
  p.stages[0] = make_stage(0.9, 0.1, 0.0);
  p.stages[1] = make_stage(0.2, 0.8, 0.0);
  p.stages[2] = make_stage(0.2, 0.8, 0.0);
  ASSERT_TRUE(attr.update(p, kSecond));
  EXPECT_EQ(attr.attribution().bottleneck, 0);

  PipelineSample q;  // totals that would flip the verdict to write
  q.stages[0] = make_stage(1.0, 1.0, 0.0);
  q.stages[1] = make_stage(0.4, 1.6, 0.0);
  q.stages[2] = make_stage(2.1, 0.9, 0.0);
  EXPECT_FALSE(attr.update(q, 2 * kSecond));
  EXPECT_EQ(attr.attribution().bottleneck, 0);  // unchanged inside interval
}

TEST(BottleneckAttributor, AttributesTheDeltaWindowNotTheCumulativeRun) {
  BottleneckAttributor attr(immediate());
  PipelineSample p;  // first second: read-bound
  p.stages[0] = make_stage(1.0, 0.0, 0.0);
  p.stages[1] = make_stage(0.1, 0.9, 0.0);
  p.stages[2] = make_stage(0.1, 0.9, 0.0);
  ASSERT_TRUE(attr.update(p, kSecond));
  ASSERT_EQ(attr.attribution().bottleneck, 0);

  // Second second: write becomes the constraint. Cumulatively read still has
  // more busy time (1.1 vs 1.05 worker-seconds); only a delta window names
  // write.
  PipelineSample q;
  q.stages[0] = make_stage(1.1, 0.0, 0.9);
  q.stages[1] = make_stage(0.2, 1.0, 0.8);
  q.stages[2] = make_stage(1.05, 0.95, 0.0);
  ASSERT_TRUE(attr.update(q, 2 * kSecond));
  const Attribution a = attr.attribution();
  EXPECT_EQ(a.bottleneck, 2);
  EXPECT_NEAR(a.window_s, 1.0, 1e-9);
  EXPECT_NEAR(a.stages[2].busy_frac, 0.95, 1e-9);
}

TEST(BottleneckAttributor, InactivePipelineIsNotClassifiable) {
  BottleneckAttributor attr(immediate());
  EXPECT_TRUE(attr.describe().empty());  // no window computed yet
  PipelineSample p;
  for (auto& s : p.stages) s.clocks.parked_ns = kSecond;  // all parked
  attr.update(p, kSecond);
  EXPECT_EQ(attr.attribution().bottleneck, -1);
  EXPECT_NE(attr.describe().find("unclassified"), std::string::npos);
}

TEST(BottleneckAttributor, DescribeNamesStagesAndEvidence) {
  BottleneckAttributor attr(immediate());
  PipelineSample p;
  p.stages[0] = make_stage(0.2, 0.8, 0.0);
  p.stages[1] = make_stage(0.9, 0.1, 0.0);
  p.stages[2] = make_stage(0.3, 0.0, 0.7);
  ASSERT_TRUE(attr.update(p, kSecond));
  const std::string text = attr.describe();
  EXPECT_NE(text.find("network"), std::string::npos);
  EXPECT_NE(text.find("read"), std::string::npos);
  EXPECT_NE(text.find("write"), std::string::npos);
  EXPECT_STREQ(BottleneckAttributor::stage_label(0), "read");
  EXPECT_STREQ(BottleneckAttributor::stage_label(1), "network");
  EXPECT_STREQ(BottleneckAttributor::stage_label(2), "write");
}

// ---------------------------------------------------------------------------
// Acceptance: online attribution vs the probe's offline ground truth on the
// three Fig. 5 presets. The probe sweeps the emulated link and reports
// per-thread stage rates; its weakest stage is the offline bottleneck. The
// engine runs a REAL threaded transfer throttled to the same rate ratios; the
// live attributor must name that same stage.
// ---------------------------------------------------------------------------

struct PresetCase {
  const char* name;
  double rates_mbps[3];  // per-connection read / network / write
  int expected_stage;
};

int probe_offline_bottleneck(const PresetCase& preset) {
  sim::SimScenario scenario;
  scenario.sender_capacity = 2.0 * kGiB;
  scenario.receiver_capacity = 2.0 * kGiB;
  scenario.tpt_mbps = {preset.rates_mbps[0], preset.rates_mbps[1],
                       preset.rates_mbps[2]};
  scenario.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
  sim::SimulatorEnv env(scenario);
  probe::Explorer explorer({600, 5, true});
  Rng rng(7);
  const probe::LinkEstimates e =
      probe::LinkEstimates::from_log(explorer.run(env, rng));
  const double tpt[3] = {e.tpt_mbps.read, e.tpt_mbps.network,
                         e.tpt_mbps.write};
  int weakest = 0;
  for (int s = 1; s < 3; ++s)
    if (tpt[s] < tpt[weakest]) weakest = s;
  return weakest;
}

int engine_online_bottleneck(const PresetCase& preset) {
  using transfer::EngineConfig;
  using transfer::TransferSession;
  EngineConfig cfg;
  cfg.max_threads = 2;
  cfg.chunk_bytes = 64 * 1024;
  cfg.sender_buffer_bytes = 256.0 * 1024;
  cfg.receiver_buffer_bytes = 256.0 * 1024;
  // Same rate *ratios* as the preset, scaled so the run takes ~5 s:
  // 1 "Mbps" -> 12.5 KB/s per thread. The run must be long enough that the
  // token buckets' 0.25 s burst transient (where every stage looks
  // self-limited) is dominated by steady-state queue backpressure.
  cfg.read.per_thread_bytes_per_s = preset.rates_mbps[0] * 12'500.0;
  cfg.network.per_thread_bytes_per_s = preset.rates_mbps[1] * 12'500.0;
  cfg.write.per_thread_bytes_per_s = preset.rates_mbps[2] * 12'500.0;
  TransferSession session(cfg, std::vector<double>(40, 256.0 * 1024));
  session.start({2, 2, 2});
  EXPECT_TRUE(session.wait_finished(60.0));
  const MetricsSnapshot snap = session.telemetry_snapshot();
  return static_cast<int>(snap.value_or("pipeline.bottleneck", -1.0));
}

TEST(BottleneckAttributor, OnlineAgreesWithProbeOfflineAcrossPresets) {
  const PresetCase presets[] = {
      {"bottleneck_read", {80.0, 160.0, 200.0}, 0},
      {"bottleneck_network", {205.0, 75.0, 195.0}, 1},
      {"bottleneck_write", {200.0, 150.0, 70.0}, 2},
  };
  for (const PresetCase& preset : presets) {
    SCOPED_TRACE(preset.name);
    const int offline = probe_offline_bottleneck(preset);
    EXPECT_EQ(offline, preset.expected_stage);
    const int online = engine_online_bottleneck(preset);
    EXPECT_EQ(online, offline);
  }
}

}  // namespace
}  // namespace automdt::telemetry
