#include <gtest/gtest.h>

#include "testbed/models.hpp"
#include "testbed/workloads.hpp"

namespace automdt::testbed {
namespace {

TEST(Workloads, GenomicsRunShape) {
  Rng rng(1);
  const Dataset d = genomics_run(rng, 8);
  // 8 lanes x (lane file + index + QC).
  EXPECT_EQ(d.file_count(), 24u);
  EXPECT_NEAR(d.total_bytes(), 700.0 * kGB, 50.0 * kGB);
  // The big lane files dominate.
  int huge = 0;
  for (double f : d.files())
    if (f > 50.0 * kGB) ++huge;
  EXPECT_EQ(huge, 8);
}

TEST(Workloads, SkySurveyUniformish) {
  Rng rng(2);
  const Dataset d = sky_survey_night(rng, 500);
  EXPECT_EQ(d.file_count(), 500u);
  for (double f : d.files()) {
    EXPECT_GE(f, 85.0 * kMB);
    EXPECT_LE(f, 115.0 * kMB);
  }
}

TEST(Workloads, DetectorSnapshotsBoundedTail) {
  Rng rng(3);
  const Dataset d = detector_snapshots(rng, 100.0 * kGB);
  EXPECT_GE(d.total_bytes(), 100.0 * kGB);
  for (double f : d.files()) {
    EXPECT_GE(f, 100.0 * kMB * 0.999);
    EXPECT_LE(f, 10.0 * kGB * 1.001);
  }
}

TEST(Workloads, ClimateModelBimodal) {
  Rng rng(4);
  const Dataset d = climate_model(rng, 6);
  int history = 0, diagnostics = 0;
  for (double f : d.files()) {
    if (f > 10.0 * kGB) ++history;
    if (f < 100.0 * kMB) ++diagnostics;
  }
  EXPECT_EQ(history, 6);
  EXPECT_GE(diagnostics, 6 * 30);
  // Small files dominate the count, large files the bytes.
  EXPECT_GT(d.total_bytes(), 6 * 20.0 * kGB);
  EXPECT_LT(d.mean_file_bytes(), 5.0 * kGB);
}

TEST(Workloads, DeterministicPerSeed) {
  Rng r1(7), r2(7);
  EXPECT_EQ(genomics_run(r1).files(), genomics_run(r2).files());
}

TEST(Dataset, FromFiles) {
  const Dataset d = Dataset::from_files("x", {1.0, 2.0, 3.0});
  EXPECT_EQ(d.file_count(), 3u);
  EXPECT_DOUBLE_EQ(d.total_bytes(), 6.0);
  EXPECT_DOUBLE_EQ(d.mean_file_bytes(), 2.0);
  EXPECT_EQ(d.name(), "x");
}

TEST(BackgroundTrace, ParseValid) {
  const auto trace = parse_background_trace(
      "time_s,mbps\n"
      "0,1000\n"
      "# midday burst\n"
      "60, 4000\n"
      "120,500\n");
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace[1].first, 60.0);
  EXPECT_DOUBLE_EQ(trace[1].second, 4000.0);
}

TEST(BackgroundTrace, RejectsNonMonotonic) {
  EXPECT_THROW(parse_background_trace("0,1\n10,2\n5,3\n"),
               std::invalid_argument);
}

TEST(BackgroundTrace, RejectsGarbage) {
  EXPECT_THROW(parse_background_trace("0,1\npotato\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_background_trace("0,1\n10,-5\n"),
               std::invalid_argument);
}

TEST(BackgroundTrace, DrivesLinkModel) {
  LinkConfig cfg;
  cfg.per_stream_mbps = 1000.0;
  cfg.aggregate_mbps = 10000.0;
  cfg.rtt_ms = 1.0;  // near-instant ramp
  cfg.contention_knee = 64;
  cfg.background_trace = parse_background_trace("0,0\n100,8000\n200,0\n");
  LinkModel m(cfg);
  Rng rng(1);
  // t < 100: no background -> full rate.
  double rate = 0.0;
  for (int i = 0; i < 50; ++i) rate = m.rate_mbps(20, 1.0, 1e12, rng);
  EXPECT_NEAR(rate, 10000.0, 100.0);
  // 100 <= t < 200: 8000 Mbps of background -> 2000 left.
  for (int i = 0; i < 60; ++i) rate = m.rate_mbps(20, 1.0, 1e12, rng);
  EXPECT_NEAR(rate, 2000.0, 100.0);
}

}  // namespace
}  // namespace automdt::testbed
