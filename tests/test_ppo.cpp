// PPO agent behaviour: learning on the dynamics simulator, the convergence
// criterion, the production action path, and checkpointing.
#include <gtest/gtest.h>

#include "rl/discrete_ppo_agent.hpp"
#include "rl/ppo_agent.hpp"
#include "sim/simulator_env.hpp"

namespace automdt::rl {
namespace {

sim::SimScenario tiny_scenario() {
  // Asymmetric: ideal = <20, 5, 5>, so the mid-range starting bias (~10
  // threads everywhere) under-provisions read and over-provisions the rest —
  // there is genuine learning signal in both directions.
  sim::SimScenario s;
  s.sender_capacity = 1.0 * kGiB;
  s.receiver_capacity = 1.0 * kGiB;
  s.tpt_mbps = {50.0, 200.0, 200.0};
  s.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
  s.max_threads = 20;
  return s;
}

PpoConfig test_config() {
  PpoConfig c = PpoConfig::fast_defaults();
  c.hidden_dim = 48;
  c.max_episodes = 2500;
  c.stagnation_episodes = 400;
  return c;
}

TEST(ActionToTuple, RoundsAndClamps) {
  nn::Matrix a = nn::Matrix::from({{2.4, 7.6, -3.0}});
  EXPECT_EQ(action_to_tuple(a, 30), (ConcurrencyTuple{2, 8, 1}));
  nn::Matrix b = nn::Matrix::from({{99.0, 0.49, 30.5}});
  EXPECT_EQ(action_to_tuple(b, 30), (ConcurrencyTuple{30, 1, 30}));
}

TEST(PpoAgent, LearningImprovesReward) {
  sim::SimulatorEnv env(tiny_scenario());
  PpoAgent agent(kObservationSize, env.max_threads(), test_config());
  const TrainResult r = agent.train(env, env.theoretical_max_reward());
  ASSERT_GE(r.episodes_run, 100);

  // Mean of the last 50 episodes should beat the first 50 substantially.
  auto mean_over = [&](std::size_t from, std::size_t to) {
    double s = 0.0;
    for (std::size_t i = from; i < to; ++i) s += r.episode_rewards[i];
    return s / static_cast<double>(to - from);
  };
  const double early = mean_over(0, 50);
  const double late = mean_over(r.episode_rewards.size() - 50,
                                r.episode_rewards.size());
  EXPECT_GT(late, early + 0.04);
  EXPECT_GT(r.best_reward, 0.7);
}

TEST(PpoAgent, ActClampsToThreadRange) {
  PpoConfig cfg = PpoConfig::fast_defaults();
  PpoAgent agent(kObservationSize, 12, cfg);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const ConcurrencyTuple t =
        agent.act(std::vector<double>(kObservationSize, rng.uniform()), rng);
    EXPECT_GE(t.read, 1);
    EXPECT_LE(t.read, 12);
    EXPECT_GE(t.network, 1);
    EXPECT_LE(t.network, 12);
    EXPECT_GE(t.write, 1);
    EXPECT_LE(t.write, 12);
  }
}

TEST(PpoAgent, DeterministicActIsRepeatable) {
  PpoAgent agent(kObservationSize, 20, PpoConfig::fast_defaults());
  const std::vector<double> s(kObservationSize, 0.3);
  Rng r1(1), r2(2);
  EXPECT_EQ(agent.act(s, r1, true), agent.act(s, r2, true));
}

TEST(PpoAgent, CheckpointRoundTripPreservesPolicy) {
  sim::SimulatorEnv env(tiny_scenario());
  PpoConfig cfg = test_config();
  cfg.max_episodes = 100;
  PpoAgent trained(kObservationSize, env.max_threads(), cfg);
  trained.train(env, env.theoretical_max_reward());

  PpoAgent fresh(kObservationSize, env.max_threads(), cfg);
  fresh.load_state_dict(trained.state_dict());

  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    std::vector<double> s(kObservationSize);
    for (auto& v : s) v = rng.uniform();
    Rng ra(9), rb(9);
    EXPECT_EQ(trained.act(s, ra, true), fresh.act(s, rb, true));
  }
}

TEST(PpoAgent, TrainingIsDeterministicGivenSeed) {
  PpoConfig cfg = PpoConfig::fast_defaults();
  cfg.max_episodes = 60;
  cfg.seed = 77;
  sim::SimulatorEnv e1(tiny_scenario()), e2(tiny_scenario());
  PpoAgent a1(kObservationSize, 20, cfg), a2(kObservationSize, 20, cfg);
  const TrainResult r1 = a1.train(e1, e1.theoretical_max_reward());
  const TrainResult r2 = a2.train(e2, e2.theoretical_max_reward());
  ASSERT_EQ(r1.episode_rewards.size(), r2.episode_rewards.size());
  for (std::size_t i = 0; i < r1.episode_rewards.size(); ++i)
    EXPECT_DOUBLE_EQ(r1.episode_rewards[i], r2.episode_rewards[i]);
}

TEST(PpoAgent, EarlyStopViaCallback) {
  sim::SimulatorEnv env(tiny_scenario());
  PpoAgent agent(kObservationSize, env.max_threads(),
                 PpoConfig::fast_defaults());
  const TrainResult r = agent.train(
      env, env.theoretical_max_reward(),
      [](int episode, double) { return episode < 19; });
  EXPECT_EQ(r.episodes_run, 20);
}

TEST(PpoAgent, FineTuneRunsRequestedEpisodes) {
  sim::SimulatorEnv env(tiny_scenario());
  PpoAgent agent(kObservationSize, env.max_threads(),
                 PpoConfig::fast_defaults());
  const TrainResult r = agent.fine_tune(env, env.theoretical_max_reward(), 30);
  EXPECT_EQ(r.episodes_run, 30);
  EXPECT_FALSE(r.converged);  // fine-tune ignores the convergence criterion
}

TEST(PpoAgent, RewardsAreNormalizedByRmax) {
  sim::SimulatorEnv env(tiny_scenario());
  PpoAgent agent(kObservationSize, env.max_threads(),
                 PpoConfig::fast_defaults());
  const TrainResult r = agent.train(env, env.theoretical_max_reward());
  for (double rew : r.episode_rewards) {
    EXPECT_GE(rew, 0.0);
    EXPECT_LE(rew, 1.6);  // transients can briefly exceed 1, never wildly
  }
}

TEST(DiscretePpoAgent, RunsAndActsInRange) {
  sim::SimulatorEnv env(tiny_scenario());
  PpoConfig cfg = PpoConfig::fast_defaults();
  cfg.max_episodes = 80;
  DiscretePpoAgent agent(kObservationSize, env.max_threads(), cfg);
  const TrainResult r = agent.train(env, env.theoretical_max_reward());
  EXPECT_EQ(r.episodes_run, 80);
  Rng rng(4);
  const ConcurrencyTuple t =
      agent.act(std::vector<double>(kObservationSize, 0.5), rng);
  EXPECT_GE(t.read, 1);
  EXPECT_LE(t.max_component(), env.max_threads());
}

}  // namespace
}  // namespace automdt::rl
