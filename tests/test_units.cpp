#include <gtest/gtest.h>

#include "common/units.hpp"

namespace automdt {
namespace {

TEST(Units, MbpsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_mbps(mbps(100.0)), 100.0);
  EXPECT_DOUBLE_EQ(to_mbps(mbps(0.0)), 0.0);
  EXPECT_DOUBLE_EQ(to_mbps(mbps(25000.0)), 25000.0);
}

TEST(Units, GbpsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_gbps(gbps(1.0)), 1.0);
  EXPECT_DOUBLE_EQ(to_gbps(gbps(400.0)), 400.0);
}

TEST(Units, MbpsGbpsConsistent) {
  EXPECT_DOUBLE_EQ(mbps(1000.0), gbps(1.0));
  EXPECT_DOUBLE_EQ(to_mbps(gbps(1.0)), 1000.0);
}

TEST(Units, OneMbpsIsEighthOfMegabytePerSecond) {
  EXPECT_DOUBLE_EQ(mbps(8.0), 1e6);  // 8 Mbit/s == 1 MB/s
}

TEST(Units, BinaryConstants) {
  EXPECT_DOUBLE_EQ(kMiB, 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(kGiB, 1024.0 * kMiB);
  EXPECT_DOUBLE_EQ(kTiB, 1024.0 * kGiB);
  EXPECT_DOUBLE_EQ(kGB, 1e9);
  EXPECT_DOUBLE_EQ(kTB, 1e12);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512.0), "512 B");
  EXPECT_EQ(format_bytes(1024.0), "1.00 KiB");
  EXPECT_EQ(format_bytes(1.5 * kMiB), "1.50 MiB");
  EXPECT_EQ(format_bytes(2.25 * kGiB), "2.25 GiB");
  EXPECT_EQ(format_bytes(1.0 * kTiB), "1.00 TiB");
}

TEST(Units, FormatRate) {
  EXPECT_EQ(format_rate(mbps(1.0)), "1.00 Mbps");
  EXPECT_EQ(format_rate(gbps(25.0)), "25.00 Gbps");
  EXPECT_EQ(format_rate(125.0), "1.00 Kbps");  // 125 B/s = 1000 bit/s
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(format_duration(45.2), "45.2 s");
  EXPECT_EQ(format_duration(62.0), "1m 02.0s");
  EXPECT_EQ(format_duration(3723.0), "1h 02m 03s");
}

}  // namespace
}  // namespace automdt
