// Chrome trace-event export (telemetry/trace_export.hpp): track/pid/tid
// assignment, the golden serialized form, and the structural invariants the
// viewer relies on (metadata-before-spans, rebased timestamps, correlated
// chunk ids).
#include "telemetry/trace_export.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

namespace automdt::telemetry {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size()))
    ++n;
  return n;
}

TEST(TraceExporter, TracksDedupeAndAssignPidTid) {
  TraceExporter exporter;
  const int a = exporter.track("sender", "read");
  const int b = exporter.track("sender", "network");
  const int c = exporter.track("receiver", "write");
  const int a2 = exporter.track("sender", "read");
  EXPECT_EQ(a, a2);  // same (process, thread) pair: same track
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);

  std::ostringstream os;
  exporter.write_chrome_json(os);
  const std::string json = os.str();
  // Two distinct processes; sender has two threads.
  EXPECT_NE(json.find("\"pid\":1,\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1,\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2,\"tid\":1"), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"process_name\""), 3u);
  EXPECT_EQ(count_occurrences(json, "\"thread_name\""), 3u);
}

// Golden serialization: fixed inputs must produce this exact document. If
// this changes, chrome://tracing / Perfetto compatibility must be re-checked
// by hand before updating the expectation.
TEST(TraceExporter, GoldenChromeJson) {
  TraceExporter exporter;
  const int trk = exporter.track("sender", "read");
  exporter.emit(trk, "chunk.read", /*start_ns=*/2'000, /*duration_ns=*/1'500,
                "f0:0");
  exporter.emit(trk, "chunk.read", /*start_ns=*/5'250, /*duration_ns=*/250,
                "f0:65536", "\"bytes\":65536");
  exporter.instant(trk, "stall", /*ts_ns=*/7'000);

  std::ostringstream os;
  exporter.write_chrome_json(os);
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"sender\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"read\"}},\n"
      "{\"name\":\"chunk.read\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
      "\"ts\":0.000,\"dur\":1.500,\"args\":{\"chunk\":\"f0:0\"}},\n"
      "{\"name\":\"chunk.read\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
      "\"ts\":3.250,\"dur\":0.250,"
      "\"args\":{\"chunk\":\"f0:65536\",\"bytes\":65536}},\n"
      "{\"name\":\"stall\",\"ph\":\"i\",\"pid\":1,\"tid\":1,"
      "\"ts\":5.000,\"s\":\"t\"}\n"
      "]}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(TraceExporter, TimestampsRebaseOntoEarliestEvent) {
  TraceExporter exporter;
  const int trk = exporter.track("p", "t");
  // Realistic steady-clock magnitudes: hours of uptime in ns.
  const std::uint64_t base = 7'200'000'000'000ull;
  exporter.emit(trk, "late", base + 10'000'000, 1'000);
  exporter.emit(trk, "early", base, 2'000);

  std::ostringstream os;
  exporter.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"name\":\"early\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
                      "\"ts\":0.000"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"late\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
                      "\"ts\":10000.000"),
            std::string::npos);
}

TEST(TraceExporter, BoundedBufferDropsAndCounts) {
  TraceExporter exporter(/*max_events=*/4);
  const int trk = exporter.track("p", "t");
  for (int i = 0; i < 10; ++i) exporter.emit(trk, "e", 100 + i, 1);
  EXPECT_EQ(exporter.events(), 4u);
  EXPECT_EQ(exporter.dropped(), 6u);

  // The document still serializes cleanly with exactly 4 span events.
  std::ostringstream os;
  exporter.write_chrome_json(os);
  EXPECT_EQ(count_occurrences(os.str(), "\"ph\":\"X\""), 4u);
}

TEST(TraceExporter, InvalidTrackIsIgnored) {
  TraceExporter exporter;
  exporter.emit(-1, "nope", 0, 1);
  exporter.emit(99, "nope", 0, 1);
  EXPECT_EQ(exporter.events(), 0u);
}

TEST(TraceExporter, NamesAndIdsAreJsonEscaped) {
  TraceExporter exporter;
  const int trk = exporter.track("pro\"cess", "thr\\ead");
  exporter.emit(trk, "na\"me", 0, 1, "id\"1");
  std::ostringstream os;
  exporter.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("pro\\\"cess"), std::string::npos);
  EXPECT_NE(json.find("thr\\\\ead"), std::string::npos);
  EXPECT_NE(json.find("na\\\"me"), std::string::npos);
  EXPECT_NE(json.find("id\\\"1"), std::string::npos);
}

TEST(TraceExporter, WriteFileRoundTrip) {
  TraceExporter exporter;
  const int trk = exporter.track("p", "t");
  exporter.emit(trk, "e", 1'000, 500);
  const std::string path = ::testing::TempDir() + "automdt_trace_test.json";
  ASSERT_TRUE(exporter.write_file(path));
  std::ifstream f(path);
  std::stringstream contents;
  contents << f.rdbuf();
  std::ostringstream direct;
  exporter.write_chrome_json(direct);
  EXPECT_EQ(contents.str(), direct.str());
  EXPECT_FALSE(exporter.write_file("/nonexistent-dir/x/y/trace.json"));
}

}  // namespace
}  // namespace automdt::telemetry
