#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace automdt {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int v = rng.uniform_int(1, 30);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 30);
    saw_lo |= v == 1;
    saw_hi |= v == 30;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMoments) {
  Rng rng(42);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, NormalWithParams) {
  Rng rng(42);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(123);
  Rng child = a.split();
  // Child should not reproduce the parent's subsequent outputs.
  Rng b(123);
  b.split();
  EXPECT_EQ(a.next_u64(), b.next_u64());  // parents stay in sync
  int equal = 0;
  for (int i = 0; i < 50; ++i)
    if (child.next_u64() == a.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, LogNormalMedian) {
  Rng rng(21);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(rng.log_normal(100.0, 0.5));
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], 100.0, 3.0);
}

TEST(Rng, WorksWithStdDistributions) {
  Rng rng(99);
  // Satisfies UniformRandomBitGenerator.
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace automdt
