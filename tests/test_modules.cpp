#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/grad_check.hpp"
#include "nn/module.hpp"

namespace automdt::nn {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (double& v : m.data()) v = rng.uniform(-1.0, 1.0);
  return m;
}

TEST(Linear, ShapesAndBias) {
  Rng rng(1);
  Linear lin(4, 3, rng, "l");
  EXPECT_EQ(lin.in_features(), 4u);
  EXPECT_EQ(lin.out_features(), 3u);
  Tensor x = Tensor::constant(Matrix(2, 4, 0.0));
  Tensor y = lin.forward(x);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 3u);
  // Zero input -> output equals (zero-initialized) bias.
  for (double v : y.value().data()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Linear, ParameterRegistry) {
  Rng rng(1);
  Linear lin(4, 3, rng, "mylin");
  auto params = lin.parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0]->name(), "mylin.weight");
  EXPECT_EQ(params[1]->name(), "mylin.bias");
  EXPECT_EQ(lin.parameter_count(), 4u * 3u + 3u);
}

TEST(Linear, GradCheck) {
  Rng rng(5);
  Linear lin(3, 2, rng, "l");
  const Tensor x = Tensor::constant(random_matrix(4, 3, rng));
  const GradCheckResult r = check_gradients(
      lin.parameters(), [&] { return sum(square(lin.forward(x))); });
  EXPECT_TRUE(r.ok(1e-5)) << r.max_rel_error;
}

TEST(LayerNorm, NormalizesRows) {
  Rng rng(2);
  LayerNorm ln(6, "ln");
  const Tensor x = Tensor::constant(random_matrix(3, 6, rng));
  const Tensor out = ln.forward(x);
  const Matrix& y = out.value();
  for (std::size_t i = 0; i < y.rows(); ++i) {
    double mean = 0.0, var = 0.0;
    for (std::size_t j = 0; j < y.cols(); ++j) mean += y(i, j);
    mean /= y.cols();
    for (std::size_t j = 0; j < y.cols(); ++j)
      var += (y(i, j) - mean) * (y(i, j) - mean);
    var /= y.cols();
    EXPECT_NEAR(mean, 0.0, 1e-9);   // gamma=1, beta=0 initially
    EXPECT_NEAR(var, 1.0, 1e-3);    // up to the eps term
  }
}

TEST(ResidualBlock, PreservesShapeAndRegistersParams) {
  Rng rng(3);
  ResidualBlock block(8, Activation::kRelu, rng, "rb");
  EXPECT_EQ(block.parameters().size(), 8u);  // 2 linears + 2 layernorms
  const Tensor x = Tensor::constant(random_matrix(5, 8, rng));
  Tensor y = block.forward(x);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 8u);
}

TEST(ResidualBlock, GradCheckTanh) {
  Rng rng(4);
  ResidualBlock block(4, Activation::kTanh, rng, "rb");
  const Tensor x = Tensor::constant(random_matrix(3, 4, rng));
  const GradCheckResult r = check_gradients(
      block.parameters(), [&] { return mean(square(block.forward(x))); },
      1e-6);
  EXPECT_TRUE(r.ok(1e-4)) << r.max_rel_error;
}

TEST(ResidualMlp, ArchitectureMatchesPaper) {
  Rng rng(6);
  // 3 residual blocks, each 2 linears + 2 layernorms (8 params) + embed (2).
  ResidualMlp mlp(8, 16, 3, Activation::kRelu, rng, "m");
  EXPECT_EQ(mlp.parameters().size(), 2u + 3u * 8u);
  EXPECT_EQ(mlp.hidden_dim(), 16u);
  const Tensor x = Tensor::constant(random_matrix(2, 8, rng));
  Tensor y = mlp.forward(x);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 16u);
}

TEST(ResidualMlp, GradFlowsToAllParameters) {
  Rng rng(7);
  ResidualMlp mlp(4, 8, 2, Activation::kRelu, rng, "m");
  const Tensor x = Tensor::constant(random_matrix(6, 4, rng));
  mlp.zero_grad();
  sum(square(mlp.forward(x))).backward();
  int nonzero_params = 0;
  for (Parameter* p : mlp.parameters()) {
    double norm = 0.0;
    for (double g : p->grad().data()) norm += g * g;
    if (norm > 0.0) ++nonzero_params;
  }
  // All parameters should receive gradient (ReLU may zero a few elements but
  // not an entire parameter).
  EXPECT_EQ(nonzero_params, static_cast<int>(mlp.parameters().size()));
}

TEST(Module, GradNormAndZeroGrad) {
  Rng rng(8);
  Linear lin(2, 2, rng, "l");
  const Tensor x = Tensor::constant(random_matrix(3, 2, rng));
  sum(square(lin.forward(x))).backward();
  EXPECT_GT(lin.grad_norm(), 0.0);
  lin.zero_grad();
  EXPECT_DOUBLE_EQ(lin.grad_norm(), 0.0);
}

TEST(Init, XavierBounds) {
  Rng rng(9);
  const Matrix w = xavier_uniform(100, 50, rng);
  const double bound = std::sqrt(6.0 / 150.0);
  EXPECT_LE(w.max(), bound);
  EXPECT_GE(w.min(), -bound);
}

TEST(Init, KaimingVariance) {
  Rng rng(10);
  const Matrix w = kaiming_normal(256, 256, rng);
  double var = 0.0;
  for (double v : w.data()) var += v * v;
  var /= static_cast<double>(w.size());
  EXPECT_NEAR(var, 2.0 / 256.0, 2.0 / 256.0 * 0.2);
}

}  // namespace
}  // namespace automdt::nn
