#include <gtest/gtest.h>

#include <sstream>

#include "probe/explorer.hpp"
#include "probe/scenario_factory.hpp"
#include "sim/simulator_env.hpp"

namespace automdt::probe {
namespace {

using sim::SimScenario;
using sim::SimulatorEnv;

SimScenario bottleneck_scenario() {
  SimScenario s;
  s.sender_capacity = 2.0 * kGiB;
  s.receiver_capacity = 2.0 * kGiB;
  s.tpt_mbps = {80.0, 160.0, 200.0};
  s.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
  return s;
}

TEST(LinkEstimates, FromLogComputesPaperFormulas) {
  ProbeLog log;
  log.add({0.0, {10, 5, 4}, {800.0, 500.0, 600.0}});
  log.add({1.0, {20, 10, 8}, {900.0, 950.0, 800.0}});
  const LinkEstimates e = LinkEstimates::from_log(log, {1.02});
  // B_i = max T_i
  EXPECT_DOUBLE_EQ(e.bandwidth_mbps.read, 900.0);
  EXPECT_DOUBLE_EQ(e.bandwidth_mbps.network, 950.0);
  EXPECT_DOUBLE_EQ(e.bandwidth_mbps.write, 800.0);
  // TPT_i = max T_i / n_i
  EXPECT_DOUBLE_EQ(e.tpt_mbps.read, 80.0);     // 800/10 > 900/20
  EXPECT_DOUBLE_EQ(e.tpt_mbps.network, 100.0); // 500/5 > 950/10
  EXPECT_DOUBLE_EQ(e.tpt_mbps.write, 150.0);   // 600/4 > 800/8
  // b = min B_i
  EXPECT_DOUBLE_EQ(e.bottleneck_mbps, 800.0);
  // n* = b / TPT
  EXPECT_DOUBLE_EQ(e.ideal_threads.read, 10.0);
  EXPECT_DOUBLE_EQ(e.ideal_threads.network, 8.0);
  EXPECT_NEAR(e.ideal_threads.write, 800.0 / 150.0, 1e-12);
  EXPECT_EQ(e.ideal_threads_rounded(), (ConcurrencyTuple{10, 8, 6}));
  EXPECT_GT(e.r_max, 0.0);
}

TEST(LinkEstimates, EmptyLogThrows) {
  EXPECT_THROW(LinkEstimates::from_log(ProbeLog{}), std::invalid_argument);
}

TEST(LinkEstimates, NonPositiveThreadsThrow) {
  ProbeLog log;
  log.add({0.0, {0, 1, 1}, {1.0, 1.0, 1.0}});
  EXPECT_THROW(LinkEstimates::from_log(log), std::invalid_argument);
}

TEST(Explorer, ProducesRequestedSampleCount) {
  SimulatorEnv env(bottleneck_scenario());
  ExplorerOptions opt;
  opt.duration_steps = 100;
  opt.hold_steps = 5;
  opt.skip_transient = true;
  Explorer explorer(opt);
  Rng rng(1);
  const ProbeLog log = explorer.run(env, rng);
  // One sample per step except the redraw steps (100 / 5 = 20 skipped).
  EXPECT_EQ(log.size(), 80u);
}

TEST(Explorer, RecoversBottleneckWithinTolerance) {
  SimulatorEnv env(bottleneck_scenario());
  Explorer explorer({600, 5, true});
  Rng rng(7);
  const ProbeLog log = explorer.run(env, rng);
  const LinkEstimates e = LinkEstimates::from_log(log);
  // True stage caps are 1000 each; exploration should find >= 85% of them.
  EXPECT_GT(e.bandwidth_mbps.read, 850.0);
  EXPECT_GT(e.bandwidth_mbps.network, 850.0);
  EXPECT_GT(e.bandwidth_mbps.write, 850.0);
  EXPECT_LE(e.bandwidth_mbps.read, 1001.0);
  // Per-thread estimates should approach the configured TPTs from below.
  EXPECT_NEAR(e.tpt_mbps.read, 80.0, 12.0);
  EXPECT_NEAR(e.tpt_mbps.network, 160.0, 24.0);
  EXPECT_NEAR(e.tpt_mbps.write, 200.0, 30.0);
  // And the derived ideal thread counts should be near <13, 7, 5>.
  const ConcurrencyTuple ideal = e.ideal_threads_rounded();
  EXPECT_NEAR(ideal.read, 13, 2);
  EXPECT_NEAR(ideal.network, 7, 2);
  EXPECT_NEAR(ideal.write, 5, 2);
}

TEST(Explorer, DeterministicGivenSeed) {
  SimulatorEnv e1(bottleneck_scenario()), e2(bottleneck_scenario());
  Explorer explorer({50, 5, true});
  Rng r1(3), r2(3);
  const ProbeLog l1 = explorer.run(e1, r1);
  const ProbeLog l2 = explorer.run(e2, r2);
  ASSERT_EQ(l1.size(), l2.size());
  for (std::size_t i = 0; i < l1.size(); ++i) {
    EXPECT_EQ(l1.samples()[i].threads, l2.samples()[i].threads);
    EXPECT_EQ(l1.samples()[i].throughput_mbps, l2.samples()[i].throughput_mbps);
  }
}

TEST(ProbeLog, CsvOutput) {
  ProbeLog log;
  log.add({0.0, {1, 2, 3}, {10.0, 20.0, 30.0}});
  std::ostringstream os;
  log.write_csv(os);
  EXPECT_NE(os.str().find("time_s,n_read"), std::string::npos);
  EXPECT_NE(os.str().find("0,1,2,3,10,20,30"), std::string::npos);
}

TEST(ProbeLog, RecorderBackedCsvMatchesLegacyFormat) {
  // write_csv now routes through telemetry::TimeSeriesRecorder; the output
  // must stay byte-identical to the original formatter so existing parsers
  // (plots, EXPERIMENTS.md pipelines) keep working.
  ProbeLog log;
  log.add({0.0, {1, 2, 3}, {10.0, 20.0, 30.0}});
  log.add({1.5, {4, 5, 6}, {123.456, 0.25, 1e4}});
  log.add({2.0, {10, 10, 10}, {999.875, 500.0, 0.0}});
  std::ostringstream current, legacy;
  log.write_csv(current);
  log.write_csv_legacy(legacy);
  EXPECT_EQ(current.str(), legacy.str());
}

TEST(ProbeLog, EmptyLogStillWritesFullHeader) {
  ProbeLog log;
  std::ostringstream current, legacy;
  log.write_csv(current);
  log.write_csv_legacy(legacy);
  EXPECT_EQ(current.str(), legacy.str());
  EXPECT_EQ(current.str(),
            "time_s,n_read,n_network,n_write,"
            "t_read_mbps,t_network_mbps,t_write_mbps\n");
}

TEST(ScenarioFactory, CarriesEstimatesIntoScenario) {
  ProbeLog log;
  log.add({0.0, {10, 5, 4}, {800.0, 500.0, 600.0}});
  const LinkEstimates e = LinkEstimates::from_log(log);
  BufferSpec buffers{4.0 * kGiB, 8.0 * kGiB};
  const sim::SimScenario s = make_scenario(e, buffers, 25, {1.05});
  EXPECT_DOUBLE_EQ(s.sender_capacity, 4.0 * kGiB);
  EXPECT_DOUBLE_EQ(s.receiver_capacity, 8.0 * kGiB);
  EXPECT_EQ(s.tpt_mbps, e.tpt_mbps);
  EXPECT_EQ(s.bandwidth_mbps, e.bandwidth_mbps);
  EXPECT_EQ(s.max_threads, 25);
  EXPECT_DOUBLE_EQ(s.utility.k, 1.05);
}

TEST(LinkEstimates, StreamOutput) {
  ProbeLog log;
  log.add({0.0, {2, 2, 2}, {100.0, 100.0, 100.0}});
  std::ostringstream os;
  os << LinkEstimates::from_log(log);
  EXPECT_NE(os.str().find("LinkEstimates{"), std::string::npos);
  EXPECT_NE(os.str().find("R_max="), std::string::npos);
}

}  // namespace
}  // namespace automdt::probe
