#include "net/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/socket.hpp"

namespace automdt::net {
namespace {

using transfer::BufferStatusRequest;
using transfer::BufferStatusResponse;
using transfer::ConcurrencyUpdate;
using transfer::RpcMessage;
using transfer::Shutdown;
using transfer::StatsSnapshotRequest;
using transfer::StatsSnapshotResponse;
using transfer::ThroughputReport;

std::optional<RpcMessage> round_trip(const RpcMessage& in) {
  std::vector<std::byte> encoded;
  encode_rpc_message(in, encoded);
  return decode_rpc_message(encoded.data(), encoded.size());
}

TEST(RpcCodec, RoundTripsEveryMessageType) {
  auto out = round_trip(BufferStatusRequest{77});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<BufferStatusRequest>(*out).request_id, 77u);

  out = round_trip(BufferStatusResponse{9, 1.5e9, 2.25e8, 12.75});
  ASSERT_TRUE(out.has_value());
  const auto& resp = std::get<BufferStatusResponse>(*out);
  EXPECT_EQ(resp.request_id, 9u);
  EXPECT_DOUBLE_EQ(resp.free_bytes, 1.5e9);
  EXPECT_DOUBLE_EQ(resp.used_bytes, 2.25e8);
  EXPECT_DOUBLE_EQ(resp.measured_at_s, 12.75);

  out = round_trip(ConcurrencyUpdate{{3, 5, 7}});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<ConcurrencyUpdate>(*out).tuple,
            (ConcurrencyTuple{3, 5, 7}));

  ThroughputReport report;
  report.throughput_mbps = {100.0, 250.5, 75.25};
  report.interval_s = 0.2;
  out = round_trip(report);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<ThroughputReport>(*out).throughput_mbps,
            report.throughput_mbps);

  out = round_trip(StatsSnapshotRequest{31});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<StatsSnapshotRequest>(*out).request_id, 31u);

  StatsSnapshotResponse stats;
  stats.request_id = 31;
  stats.generation = 12;
  stats.uptime_s = 3.5;
  stats.metrics = {{"read.bytes", 1048576.0},
                   {"queue.occupancy", 0.625},
                   {"", -7.0}};  // empty name survives the wire
  out = round_trip(stats);
  ASSERT_TRUE(out.has_value());
  const auto& decoded = std::get<StatsSnapshotResponse>(*out);
  EXPECT_EQ(decoded.request_id, 31u);
  EXPECT_EQ(decoded.generation, 12u);
  EXPECT_DOUBLE_EQ(decoded.uptime_s, 3.5);
  ASSERT_EQ(decoded.metrics.size(), 3u);
  EXPECT_EQ(decoded.metrics[0].name, "read.bytes");
  EXPECT_DOUBLE_EQ(decoded.metrics[0].value, 1048576.0);
  EXPECT_EQ(decoded.metrics[1].name, "queue.occupancy");
  EXPECT_DOUBLE_EQ(decoded.metrics[1].value, 0.625);
  EXPECT_EQ(decoded.metrics[2].name, "");
  EXPECT_DOUBLE_EQ(decoded.metrics[2].value, -7.0);

  out = round_trip(Shutdown{});
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(std::holds_alternative<Shutdown>(*out));
}

TEST(RpcCodec, RoundTripsClockSyncMessages) {
  auto out = round_trip(transfer::ClockSyncRequest{55, 987'654'321'000ull});
  ASSERT_TRUE(out.has_value());
  const auto& req = std::get<transfer::ClockSyncRequest>(*out);
  EXPECT_EQ(req.request_id, 55u);
  EXPECT_EQ(req.t0_ns, 987'654'321'000ull);

  transfer::ClockSyncResponse in;
  in.request_id = 55;
  in.t0_ns = 987'654'321'000ull;
  in.t1_ns = 987'654'400'000ull;
  in.t2_ns = 987'654'410'000ull;
  out = round_trip(in);
  ASSERT_TRUE(out.has_value());
  const auto& resp = std::get<transfer::ClockSyncResponse>(*out);
  EXPECT_EQ(resp.request_id, in.request_id);
  EXPECT_EQ(resp.t0_ns, in.t0_ns);
  EXPECT_EQ(resp.t1_ns, in.t1_ns);
  EXPECT_EQ(resp.t2_ns, in.t2_ns);
}

TEST(RpcCodec, RejectsTruncatedClockSyncMessages) {
  std::vector<std::byte> encoded;
  encode_rpc_message(transfer::ClockSyncRequest{1, 2}, encoded);
  for (std::size_t n = 0; n < encoded.size(); ++n)
    EXPECT_FALSE(decode_rpc_message(encoded.data(), n).has_value()) << n;
  encoded.clear();
  encode_rpc_message(transfer::ClockSyncResponse{1, 2, 3, 4}, encoded);
  for (std::size_t n = 0; n < encoded.size(); ++n)
    EXPECT_FALSE(decode_rpc_message(encoded.data(), n).has_value()) << n;
}

TEST(RpcCodec, RejectsTruncatedStatsSnapshot) {
  StatsSnapshotResponse stats;
  stats.request_id = 1;
  stats.metrics = {{"a", 1.0}, {"bb", 2.0}};
  std::vector<std::byte> encoded;
  encode_rpc_message(stats, encoded);
  // Any truncation point must be rejected, never read out of bounds.
  for (std::size_t n = 0; n < encoded.size(); ++n)
    EXPECT_FALSE(decode_rpc_message(encoded.data(), n).has_value()) << n;
}

TEST(RpcCodec, RejectsMalformedBuffers) {
  EXPECT_FALSE(decode_rpc_message(nullptr, 0).has_value());
  const std::byte bad_tag[] = {std::byte{0xEE}};
  EXPECT_FALSE(decode_rpc_message(bad_tag, 1).has_value());
  // Truncated response body.
  std::vector<std::byte> encoded;
  encode_rpc_message(BufferStatusResponse{1, 2.0, 3.0, 4.0}, encoded);
  EXPECT_FALSE(
      decode_rpc_message(encoded.data(), encoded.size() - 1).has_value());
}

struct TransportPair {
  std::unique_ptr<TcpTransport> sender;
  std::unique_ptr<TcpTransport> receiver;
};

TransportPair make_loopback_pair(double delivery_delay_s = 0.0) {
  auto listener = Listener::open("127.0.0.1", 0);
  EXPECT_TRUE(listener.has_value());
  TcpTransportConfig config;
  config.delivery_delay_s = delivery_delay_s;
  TransportPair pair;
  pair.sender = TcpTransport::connect("127.0.0.1", listener->port(), {},
                                      config);
  EXPECT_NE(pair.sender, nullptr);
  auto accepted = listener->accept(2.0);
  EXPECT_TRUE(accepted.has_value());
  pair.receiver = TcpTransport::adopt(std::move(*accepted), config);
  EXPECT_NE(pair.receiver, nullptr);
  return pair;
}

TEST(TcpTransport, RequestResponseOverLoopback) {
  auto pair = make_loopback_pair();
  pair.sender->send(BufferStatusRequest{11});
  auto request = pair.receiver->receive();
  ASSERT_TRUE(request.has_value());
  ASSERT_TRUE(std::holds_alternative<BufferStatusRequest>(*request));
  pair.receiver->send(BufferStatusResponse{
      std::get<BufferStatusRequest>(*request).request_id, 123.0, 456.0, 0.0});
  auto response = pair.sender->receive();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(std::get<BufferStatusResponse>(*response).request_id, 11u);
  EXPECT_DOUBLE_EQ(std::get<BufferStatusResponse>(*response).free_bytes,
                   123.0);
}

TEST(TcpTransport, DeliveryDelayPreservesStalenessSemantics) {
  auto pair = make_loopback_pair(/*delivery_delay_s=*/0.15);
  pair.sender->send(BufferStatusRequest{1});
  // The frame crosses loopback in microseconds, but must not be deliverable
  // before the configured delay — the same contract RpcPipe enforces.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(pair.receiver->try_receive().has_value());
  const auto t0 = std::chrono::steady_clock::now();
  auto message = pair.receiver->receive();
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(message.has_value());
  EXPECT_GE(waited, 0.05);  // blocked until the delay expired
}

TEST(TcpTransport, CloseUnblocksAPendingReceive) {
  auto pair = make_loopback_pair();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pair.receiver->close();
  });
  EXPECT_FALSE(pair.receiver->receive().has_value());
  closer.join();
}

TEST(TcpTransport, PeerDisconnectDrainsThenCloses) {
  auto pair = make_loopback_pair();
  pair.sender->send(ConcurrencyUpdate{{2, 2, 2}});
  pair.sender->send(Shutdown{});
  // Give the frames time to land in the receiver's inbox before the peer
  // goes away; then the receiver must still drain both messages.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  pair.sender->close();
  auto first = pair.receiver->receive();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(std::holds_alternative<ConcurrencyUpdate>(*first));
  auto second = pair.receiver->receive();
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(std::holds_alternative<Shutdown>(*second));
  EXPECT_FALSE(pair.receiver->receive().has_value());
}

TEST(TcpTransport, SendAfterCloseIsDropped) {
  auto pair = make_loopback_pair();
  pair.sender->close();
  pair.sender->send(BufferStatusRequest{5});  // must not crash or block
  SUCCEED();
}

}  // namespace
}  // namespace automdt::net
