#include <gtest/gtest.h>

#include "testbed/environment.hpp"
#include "testbed/presets.hpp"

namespace automdt::testbed {
namespace {

TestbedConfig deterministic_1g() {
  TestbedConfig c = bottleneck_read().config;
  c.link.jitter = 0.0;
  c.storage_jitter = 0.0;
  return c;
}

TEST(EmulatedEnvironment, CompletesFiniteDataset) {
  // 1 GB over a ~1 Gbps-capable pipeline at ideal threads: ~10 s virtual.
  EmulatedEnvironment env(deterministic_1g(), Dataset::uniform(1, 1.0 * kGB));
  Rng rng(1);
  env.reset(rng);
  bool done = false;
  for (int t = 0; t < 300 && !done; ++t) done = env.step({13, 7, 5}).done;
  EXPECT_TRUE(done);
  EXPECT_TRUE(env.finished());
  EXPECT_NEAR(env.bytes_written(), 1.0 * kGB, 1.0);
  EXPECT_GT(env.virtual_time_s(), 5.0);
  EXPECT_LT(env.virtual_time_s(), 60.0);
}

TEST(EmulatedEnvironment, ConservationAtEveryStep) {
  EmulatedEnvironment env(deterministic_1g(), Dataset::uniform(4, 256.0 * kMB));
  Rng rng(2);
  env.reset(rng);
  for (int t = 0; t < 30; ++t) {
    env.step({10, 10, 10});
    // Pipeline ordering invariants.
    EXPECT_GE(env.bytes_read(), env.bytes_sent());
    EXPECT_GE(env.bytes_sent(), env.bytes_written());
    // Buffers hold exactly the in-flight difference.
    EXPECT_NEAR(env.sender_buffer_used(), env.bytes_read() - env.bytes_sent(),
                1.0);
    EXPECT_NEAR(env.receiver_buffer_used(),
                env.bytes_sent() - env.bytes_written(), 1.0);
    // Never read more than the dataset holds.
    EXPECT_LE(env.bytes_read(), env.total_bytes() + 1.0);
  }
}

TEST(EmulatedEnvironment, ThroughputRespectsThrottles) {
  // Read throttle 80 Mbps/thread on the read-bottleneck preset.
  EmulatedEnvironment env(deterministic_1g(), Dataset::infinite());
  Rng rng(3);
  env.reset(rng);
  for (int i = 0; i < 5; ++i) env.step({1, 7, 5});
  const EnvStep out = env.step({1, 7, 5});
  EXPECT_LE(out.throughputs_mbps.read, 80.0 * 1.05);
  EXPECT_GT(out.throughputs_mbps.read, 40.0);
}

TEST(EmulatedEnvironment, MonolithicOverSubscriptionHurts) {
  // 30 threads everywhere degrades storage efficiency past the knee (24):
  // steady-state end-to-end rate must be lower than at the ideal tuple.
  EmulatedEnvironment ideal_env(deterministic_1g(), Dataset::infinite());
  EmulatedEnvironment mono_env(deterministic_1g(), Dataset::infinite());
  Rng rng(4);
  ideal_env.reset(rng);
  mono_env.reset(rng);
  double ideal_rate = 0.0, mono_rate = 0.0;
  for (int i = 0; i < 30; ++i) {
    ideal_rate = ideal_env.step({13, 7, 5}).throughputs_mbps.write;
    mono_rate = mono_env.step({30, 30, 30}).throughputs_mbps.write;
  }
  EXPECT_GT(ideal_rate, mono_rate * 1.05);
}

TEST(EmulatedEnvironment, DoneExactlyOnceAndSticky) {
  EmulatedEnvironment env(deterministic_1g(),
                          Dataset::uniform(1, 100.0 * kMB));
  Rng rng(5);
  env.reset(rng);
  int done_at = -1;
  for (int t = 0; t < 120; ++t) {
    if (env.step({13, 7, 5}).done) {
      done_at = t;
      break;
    }
  }
  ASSERT_GE(done_at, 0);
  EXPECT_TRUE(env.finished());
  // No further progress after completion.
  const double written = env.bytes_written();
  env.step({13, 7, 5});
  EXPECT_DOUBLE_EQ(env.bytes_written(), written);
}

TEST(EmulatedEnvironment, ResetClearsProgress) {
  EmulatedEnvironment env(deterministic_1g(), Dataset::uniform(1, 50.0 * kMB));
  Rng rng(6);
  env.reset(rng);
  for (int i = 0; i < 5; ++i) env.step({5, 5, 5});
  EXPECT_GT(env.bytes_read(), 0.0);
  env.reset(rng);
  EXPECT_DOUBLE_EQ(env.bytes_read(), 0.0);
  EXPECT_DOUBLE_EQ(env.virtual_time_s(), 0.0);
  EXPECT_DOUBLE_EQ(env.sender_buffer_used(), 0.0);
}

TEST(EmulatedEnvironment, AverageThroughputConsistent) {
  EmulatedEnvironment env(deterministic_1g(), Dataset::uniform(2, 200.0 * kMB));
  Rng rng(7);
  env.reset(rng);
  while (!env.finished()) env.step({13, 7, 5});
  EXPECT_NEAR(env.average_throughput_mbps(),
              to_mbps(env.bytes_written() / env.virtual_time_s()), 1e-6);
}

TEST(EmulatedEnvironment, ObservationScaleOverride) {
  EmulatedEnvironment env(deterministic_1g(), Dataset::infinite());
  ObservationScale custom;
  custom.max_threads = 10;
  custom.rate_scale_mbps = 100.0;
  custom.sender_capacity = 1.0;
  custom.receiver_capacity = 1.0;
  env.set_observation_scale(custom);
  Rng rng(8);
  env.reset(rng);
  const EnvStep out = env.step({5, 5, 5});
  EXPECT_DOUBLE_EQ(out.observation[0], 0.5);  // 5 / 10
}

TEST(EmulatedEnvironment, JitterMakesRunsDiffer) {
  TestbedConfig cfg = bottleneck_read().config;  // has jitter
  EmulatedEnvironment e1(cfg, Dataset::infinite());
  EmulatedEnvironment e2(cfg, Dataset::infinite());
  Rng r1(10), r2(20);  // different seeds
  e1.reset(r1);
  e2.reset(r2);
  double t1 = 0, t2 = 0;
  for (int i = 0; i < 5; ++i) {
    t1 = e1.step({10, 10, 10}).throughputs_mbps.write;
    t2 = e2.step({10, 10, 10}).throughputs_mbps.write;
  }
  EXPECT_NE(t1, t2);
}

TEST(EmulatedEnvironment, DeterministicUnderSameSeed) {
  TestbedConfig cfg = bottleneck_read().config;
  EmulatedEnvironment e1(cfg, Dataset::infinite());
  EmulatedEnvironment e2(cfg, Dataset::infinite());
  Rng r1(42), r2(42);
  e1.reset(r1);
  e2.reset(r2);
  for (int i = 0; i < 10; ++i) {
    const EnvStep s1 = e1.step({8, 6, 4});
    const EnvStep s2 = e2.step({8, 6, 4});
    EXPECT_EQ(s1.observation, s2.observation);
  }
}

TEST(EmulatedEnvironment, MidTransferRetuneMovesBottleneck) {
  EmulatedEnvironment env(deterministic_1g(), Dataset::infinite());
  Rng rng(12);
  env.reset(rng);
  // Warm up at the read-bottleneck optimum.
  double rate_before = 0.0;
  for (int i = 0; i < 20; ++i)
    rate_before = env.step({13, 7, 5}).throughputs_mbps.write;
  EXPECT_GT(rate_before, 900.0);

  // Move the bottleneck to the write stage; same tuple now starves writes.
  env.set_per_thread_rates({200.0, 150.0, 70.0});
  double rate_after = 0.0;
  for (int i = 0; i < 40; ++i)
    rate_after = env.step({13, 7, 5}).throughputs_mbps.write;
  EXPECT_LT(rate_after, 500.0);  // 5 write threads x 70 Mbps = 350

  // The new optimum recovers the rate without a reset.
  double rate_recovered = 0.0;
  for (int i = 0; i < 40; ++i)
    rate_recovered = env.step({5, 7, 15}).throughputs_mbps.write;
  EXPECT_GT(rate_recovered, 900.0);
}

TEST(Presets, ExpectedOptimaMatchPaper) {
  EXPECT_EQ(bottleneck_read().expected_optimal, (ConcurrencyTuple{13, 7, 5}));
  EXPECT_EQ(bottleneck_network().expected_optimal,
            (ConcurrencyTuple{5, 14, 5}));
  EXPECT_EQ(bottleneck_write().expected_optimal, (ConcurrencyTuple{5, 7, 15}));
  EXPECT_EQ(fig5_presets().size(), 3u);
}

TEST(Presets, FabricSaturatesAroundTwentyStreams) {
  ScenarioPreset p = fabric_ncsa_tacc();
  p.config.link.jitter = 0.0;
  p.config.storage_jitter = 0.0;
  EmulatedEnvironment env(p.config, Dataset::infinite());
  Rng rng(11);
  env.reset(rng);
  double rate = 0.0;
  for (int i = 0; i < 30; ++i)
    rate = env.step(p.expected_optimal).throughputs_mbps.write;
  // ~25 Gbps-class link: the optimal tuple should deliver >= 20 Gbps.
  EXPECT_GT(rate, 20000.0);
}

}  // namespace
}  // namespace automdt::testbed
