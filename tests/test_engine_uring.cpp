// Engine-level coverage for the io_uring backend seam (DESIGN.md §12):
// graceful fallback when the kernel can't deliver, A/B equivalence of final
// counters across {syscall, uring} x {lock-free, mutex} over a real TCP
// loopback, real-file roundtrips whose sink bytes must equal the source
// bytes, the sendfile kernel fast path, and the lease-lifecycle poison
// canary that turns a use-after-release into checksum failures.
#include <gtest/gtest.h>
#include <stdlib.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "net/uring.hpp"
#include "transfer/engine.hpp"

namespace automdt::transfer {
namespace {

EngineConfig tcp_config() {
  EngineConfig c;
  c.backend = NetworkBackend::kTcp;
  c.max_threads = 4;
  c.chunk_bytes = 64 * 1024;
  c.sender_buffer_bytes = 1.0 * kMiB;
  c.receiver_buffer_bytes = 1.0 * kMiB;
  return c;
}

/// Scoped env override (restores on destruction).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = ::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

/// Source/sink directory pair under the system temp dir, wiped afterwards.
class TempDirs {
 public:
  explicit TempDirs(const char* tag) {
    root_ = std::filesystem::temp_directory_path() /
            (std::string("automdt_engine_uring_") + tag);
    std::filesystem::create_directories(root_ / "src");
    std::filesystem::create_directories(root_ / "dst");
  }
  ~TempDirs() {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }
  std::string source() const { return (root_ / "src").string(); }
  std::string sink() const { return (root_ / "dst").string(); }

 private:
  std::filesystem::path root_;
};

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

/// The session names its endpoint files automdt_src_<f>.dat /
/// automdt_sink_<f>.out; compare every pair byte-for-byte.
void expect_sinks_match_sources(const TempDirs& dirs, int files) {
  for (int f = 0; f < files; ++f) {
    const auto src =
        slurp(dirs.source() + "/automdt_src_" + std::to_string(f) + ".dat");
    const auto dst =
        slurp(dirs.sink() + "/automdt_sink_" + std::to_string(f) + ".out");
    ASSERT_FALSE(src.empty()) << "missing source " << f;
    EXPECT_EQ(src, dst) << "file " << f << " corrupted in transit";
  }
}

TEST(EngineUring, RequestOnIncapableKernelFallsBackGracefully) {
  // AUTOMDT_DISABLE_URING simulates a kernel without io_uring: the uring
  // request must degrade to the syscall backend (gauge 0, fallback counted)
  // and the transfer must still complete and verify.
  ScopedEnv disable("AUTOMDT_DISABLE_URING", "1");
  EngineConfig cfg = tcp_config();
  cfg.io_backend = IoBackend::kUring;
  TransferSession s(cfg, std::vector<double>(8, 256.0 * 1024));
  s.start({2, 2, 2});
  ASSERT_TRUE(s.wait_finished(30.0));
  const TransferStats stats = s.stats();
  EXPECT_EQ(stats.io_backend_uring, 0);
  EXPECT_GE(stats.io_backend_fallbacks, 1u);
  EXPECT_EQ(stats.verify_failures, 0u);
  EXPECT_EQ(stats.bytes_written, s.total_bytes());
}

TEST(EngineUring, EndToEndTcpWithVerificationOnLeasedPath) {
  if (!net::UringRing::available()) GTEST_SKIP() << "io_uring unavailable";
  EngineConfig cfg = tcp_config();
  cfg.io_backend = IoBackend::kUring;
  TransferSession s(cfg, std::vector<double>(16, 256.0 * 1024));  // 64 chunks
  s.start({4, 4, 4});
  ASSERT_TRUE(s.wait_finished(30.0));
  const TransferStats stats = s.stats();
  EXPECT_EQ(stats.io_backend_uring, 1);
  EXPECT_EQ(stats.io_backend_fallbacks, 0u);
  EXPECT_EQ(stats.verify_failures, 0u);
  EXPECT_EQ(stats.chunks_written, 64u);
  EXPECT_EQ(stats.bytes_written, s.total_bytes());
  // The zero-copy contract: the syscall baseline copies every payload at
  // least twice (send assembly + recv slicing); the leased path must do far
  // better than that. Block-boundary respills keep it from being exactly 0.
  EXPECT_LT(stats.payload_copies, stats.chunks_written);
}

TEST(EngineUring, BackendMatrixAgreesOnFinalCounters) {
  // {syscall, uring} x {lock-free, mutex} over TCP: identical datasets must
  // land identical byte/chunk counters — the backends may differ in HOW they
  // move bytes, never in WHAT arrives.
  if (!net::UringRing::available()) GTEST_SKIP() << "io_uring unavailable";
  const std::vector<double> files(12, 192.0 * 1024);
  std::vector<TransferStats> results;
  for (const IoBackend backend : {IoBackend::kSyscall, IoBackend::kUring}) {
    for (const bool lock_free : {true, false}) {
      EngineConfig cfg = tcp_config();
      cfg.io_backend = backend;
      cfg.lock_free_staging = lock_free;
      TransferSession s(cfg, files);
      s.start({3, 3, 3});
      ASSERT_TRUE(s.wait_finished(30.0))
          << "backend=" << static_cast<int>(backend)
          << " lock_free=" << lock_free;
      results.push_back(s.stats());
    }
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].bytes_read, results[0].bytes_read) << "config " << i;
    EXPECT_EQ(results[i].bytes_sent, results[0].bytes_sent) << "config " << i;
    EXPECT_EQ(results[i].bytes_written, results[0].bytes_written)
        << "config " << i;
    EXPECT_EQ(results[i].chunks_written, results[0].chunks_written)
        << "config " << i;
  }
  for (const TransferStats& r : results) EXPECT_EQ(r.verify_failures, 0u);
}

TEST(EngineUring, FileRoundTripSinkMatchesSourceOnBothBackends) {
  // Real storage endpoints: readers pread() out of pattern-filled source
  // files, writers pwrite() into sinks. Whatever the io backend, the sink
  // bytes ARE the acceptance test.
  const int kFiles = 4;
  for (const IoBackend backend : {IoBackend::kSyscall, IoBackend::kUring}) {
    if (backend == IoBackend::kUring && !net::UringRing::available())
      continue;  // covered by the fallback test instead
    TempDirs dirs(backend == IoBackend::kUring ? "file_uring" : "file_sys");
    EngineConfig cfg = tcp_config();
    cfg.io_backend = backend;
    cfg.file_io.source_dir = dirs.source();
    cfg.file_io.sink_dir = dirs.sink();
    TransferSession s(cfg, std::vector<double>(kFiles, 160.0 * 1024));
    s.start({2, 2, 2});
    ASSERT_TRUE(s.wait_finished(30.0));
    EXPECT_EQ(s.stats().verify_failures, 0u);
    EXPECT_EQ(s.stats().bytes_written, s.total_bytes());
    expect_sinks_match_sources(dirs, kFiles);
  }
}

TEST(EngineUring, SendfileFastPathDeliversIdenticalFiles) {
  // sendfile short-circuits sender user space entirely (frames go out
  // unchecked), so end-to-end file identity is the only meaningful check —
  // and exactly the one that would catch a bad offset or length.
  const int kFiles = 3;
  TempDirs dirs("sendfile");
  EngineConfig cfg = tcp_config();
  cfg.tcp.sendfile = true;
  cfg.verify_payload = false;  // sendfile gate: no checksum trailers
  cfg.file_io.source_dir = dirs.source();
  cfg.file_io.sink_dir = dirs.sink();
  TransferSession s(cfg, std::vector<double>(kFiles, 224.0 * 1024));
  s.start({2, 2, 2});
  ASSERT_TRUE(s.wait_finished(30.0));
  EXPECT_EQ(s.stats().bytes_written, s.total_bytes());
  EXPECT_EQ(s.stats().net_frame_errors, 0u);
  expect_sinks_match_sources(dirs, kFiles);
}

TEST(EngineUring, LeaseLifecyclePoisonCanaryStaysClean) {
  // debug_poison_leases scribbles 0xDD over every recycled arena block. If
  // any stage used a payload after releasing its lease, the writer-side
  // checksum verification would flip — in a plain build, no ASan needed.
  // Heap-fallback leases (tiny arenas force them here) are genuinely freed,
  // so under ASan the same run doubles as a use-after-free canary.
  EngineConfig cfg = tcp_config();
  cfg.debug_poison_leases = true;
  cfg.sender_buffer_bytes = 4.0 * cfg.chunk_bytes;  // heavy block churn
  cfg.receiver_buffer_bytes = 4.0 * cfg.chunk_bytes;
  for (const IoBackend backend : {IoBackend::kSyscall, IoBackend::kUring}) {
    if (backend == IoBackend::kUring && !net::UringRing::available())
      continue;
    cfg.io_backend = backend;
    TransferSession s(cfg, std::vector<double>(24, 128.0 * 1024));
    s.start({3, 3, 3});
    ASSERT_TRUE(s.wait_finished(30.0));
    EXPECT_EQ(s.stats().verify_failures, 0u)
        << "use-after-release detected on backend "
        << static_cast<int>(backend);
    EXPECT_EQ(s.stats().bytes_written, s.total_bytes());
  }
}

TEST(EngineUring, InProcessBackendAlsoHonoursUringForStorage) {
  // The io-backend seam is orthogonal to the network backend: with the
  // in-process network and file endpoints, storage reads/writes still go
  // through the ring when requested.
  if (!net::UringRing::available()) GTEST_SKIP() << "io_uring unavailable";
  const int kFiles = 3;
  TempDirs dirs("inproc");
  EngineConfig cfg = tcp_config();
  cfg.backend = NetworkBackend::kInProcess;
  cfg.io_backend = IoBackend::kUring;
  cfg.file_io.source_dir = dirs.source();
  cfg.file_io.sink_dir = dirs.sink();
  TransferSession s(cfg, std::vector<double>(kFiles, 192.0 * 1024));
  s.start({2, 2, 2});
  ASSERT_TRUE(s.wait_finished(30.0));
  EXPECT_EQ(s.stats().io_backend_uring, 1);
  EXPECT_EQ(s.stats().verify_failures, 0u);
  expect_sinks_match_sources(dirs, kFiles);
}

}  // namespace
}  // namespace automdt::transfer
