#include <gtest/gtest.h>

#include <cmath>

#include <cmath>

#include "nn/adam.hpp"

namespace automdt::nn {
namespace {

TEST(Adam, MinimizesQuadratic) {
  // f(w) = sum((w - 3)^2): optimum at w = 3.
  Parameter w("w", Matrix(1, 4, 0.0));
  AdamConfig cfg;
  cfg.lr = 0.1;
  Adam opt({&w}, cfg);
  for (int i = 0; i < 500; ++i) {
    w.zero_grad();
    const Tensor target = Tensor::constant(Matrix(1, 4, 3.0));
    sum(square(sub(w.tensor(), target))).backward();
    opt.step();
  }
  for (double v : w.value().data()) EXPECT_NEAR(v, 3.0, 1e-3);
}

TEST(Adam, StepZeroesGradients) {
  Parameter w("w", Matrix(1, 2, 1.0));
  Adam opt({&w});
  sum(square(w.tensor())).backward();
  EXPECT_GT(std::fabs(w.grad()(0, 0)), 0.0);
  opt.step();
  EXPECT_DOUBLE_EQ(w.grad()(0, 0), 0.0);
  EXPECT_EQ(opt.step_count(), 1u);
}

TEST(Adam, FirstStepMagnitudeIsLr) {
  // Adam's bias-corrected first step is ~lr * sign(grad).
  Parameter w("w", Matrix(1, 1, 0.0));
  AdamConfig cfg;
  cfg.lr = 0.01;
  Adam opt({&w}, cfg);
  w.grad()(0, 0) = 123.0;  // arbitrary positive gradient
  opt.step();
  EXPECT_NEAR(w.value()(0, 0), -0.01, 1e-6);
}

TEST(Adam, GradientClippingBoundsUpdate) {
  Parameter a("a", Matrix(1, 1, 0.0));
  Parameter b("b", Matrix(1, 1, 0.0));
  AdamConfig cfg;
  cfg.max_grad_norm = 1.0;
  Adam opt({&a, &b}, cfg);
  a.grad()(0, 0) = 30.0;
  b.grad()(0, 0) = 40.0;  // global norm 50 -> scaled by 1/50
  // Inspect clipping through the resulting moments: first step is
  // lr * mhat / (sqrt(vhat) + eps) which only depends on the clipped grads.
  opt.step();
  // Both moved, and in proportion to the clipped (not raw) gradients'
  // signs. Exact magnitudes are Adam-normalized; just require boundedness.
  EXPECT_LT(std::fabs(a.value()(0, 0)), cfg.lr * 1.01);
  EXPECT_LT(std::fabs(b.value()(0, 0)), cfg.lr * 1.01);
}

TEST(Adam, ZeroGradWithoutStep) {
  Parameter w("w", Matrix(1, 1, 0.0));
  Adam opt({&w});
  w.grad()(0, 0) = 5.0;
  opt.zero_grad();
  EXPECT_DOUBLE_EQ(w.grad()(0, 0), 0.0);
  EXPECT_EQ(opt.step_count(), 0u);
}

TEST(Adam, SetLr) {
  Parameter w("w", Matrix(1, 1, 0.0));
  Adam opt({&w});
  opt.set_lr(0.5);
  EXPECT_DOUBLE_EQ(opt.config().lr, 0.5);
}

TEST(Adam, RosenbrockMakesProgress) {
  // Harder non-convex check: f(x,y) = (1-x)^2 + 100(y - x^2)^2.
  Parameter w("w", Matrix::from({{-1.0, 1.0}}));
  AdamConfig cfg;
  cfg.lr = 0.02;
  Adam opt({&w}, cfg);
  auto loss = [&] {
    Tensor t = w.tensor();
    Tensor x = row_gather(t, {0});
    // Manually split: use row_gather twice on a 1x2 via transpose trick is
    // awkward; compute with full-tensor ops instead.
    (void)x;
    const Tensor one = Tensor::constant(Matrix(1, 1, 1.0));
    // x = w[0,0], y = w[0,1] via masks:
    const Tensor mx = Tensor::constant(Matrix::from({{1.0, 0.0}}));
    const Tensor my = Tensor::constant(Matrix::from({{0.0, 1.0}}));
    Tensor xs = sum(mul(t, mx));
    Tensor ys = sum(mul(t, my));
    Tensor t1 = square(sub(one, xs));
    Tensor t2 = scale(square(sub(ys, square(xs))), 100.0);
    return add(t1, t2);
  };
  const double initial = loss().scalar();
  for (int i = 0; i < 2000; ++i) {
    w.zero_grad();
    loss().backward();
    opt.step();
  }
  EXPECT_LT(loss().scalar(), initial * 0.01);
}

}  // namespace
}  // namespace automdt::nn
