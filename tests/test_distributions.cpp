#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "nn/distributions.hpp"
#include "nn/grad_check.hpp"
#include "nn/module.hpp"

namespace automdt::nn {
namespace {

double gaussian_logpdf(double x, double mu, double sigma) {
  const double z = (x - mu) / sigma;
  return -0.5 * z * z - std::log(sigma) - 0.5 * std::log(2.0 * std::numbers::pi);
}

TEST(DiagonalGaussian, LogProbMatchesClosedForm) {
  Tensor mean = Tensor::constant(Matrix::from({{1.0, -2.0}, {0.5, 3.0}}));
  Tensor log_std = Tensor::constant(Matrix::from({{0.2, -0.5}}));
  DiagonalGaussian d(mean, log_std);
  Matrix actions = Matrix::from({{1.5, -2.5}, {0.0, 2.0}});
  const Matrix lp = d.log_prob(actions).value();
  ASSERT_EQ(lp.rows(), 2u);
  ASSERT_EQ(lp.cols(), 1u);
  for (std::size_t i = 0; i < 2; ++i) {
    double expected = 0.0;
    for (std::size_t j = 0; j < 2; ++j) {
      expected += gaussian_logpdf(actions(i, j), mean.value()(i, j),
                                  std::exp(log_std.value()(0, j)));
    }
    EXPECT_NEAR(lp(i, 0), expected, 1e-12);
  }
}

TEST(DiagonalGaussian, EntropyClosedForm) {
  Tensor mean = Tensor::constant(Matrix(1, 3, 0.0));
  Tensor log_std = Tensor::constant(Matrix::from({{0.0, 0.5, -1.0}}));
  DiagonalGaussian d(mean, log_std);
  const double expected =
      3 * (0.5 + 0.5 * std::log(2.0 * std::numbers::pi)) + (0.0 + 0.5 - 1.0);
  EXPECT_NEAR(d.entropy().scalar(), expected, 1e-12);
}

TEST(DiagonalGaussian, EntropyIncreasesWithStd) {
  Tensor mean = Tensor::constant(Matrix(1, 2, 0.0));
  DiagonalGaussian narrow(mean, Tensor::constant(Matrix(1, 2, -1.0)));
  DiagonalGaussian wide(mean, Tensor::constant(Matrix(1, 2, 1.0)));
  EXPECT_GT(wide.entropy().scalar(), narrow.entropy().scalar());
}

TEST(DiagonalGaussian, SampleMoments) {
  Tensor mean = Tensor::constant(Matrix::from({{5.0, -3.0}}));
  Tensor log_std = Tensor::constant(Matrix::from({{std::log(2.0),
                                                   std::log(0.5)}}));
  DiagonalGaussian d(mean, log_std);
  Rng rng(77);
  double s0 = 0, s1 = 0, sq0 = 0, sq1 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const Matrix a = d.sample(rng);
    s0 += a(0, 0);
    s1 += a(0, 1);
    sq0 += a(0, 0) * a(0, 0);
    sq1 += a(0, 1) * a(0, 1);
  }
  EXPECT_NEAR(s0 / n, 5.0, 0.05);
  EXPECT_NEAR(s1 / n, -3.0, 0.02);
  EXPECT_NEAR(sq0 / n - 25.0, 4.0, 0.15);   // var = 2^2
  EXPECT_NEAR(sq1 / n - 9.0, 0.25, 0.02);   // var = 0.5^2
}

TEST(DiagonalGaussian, ModeIsMean) {
  Tensor mean = Tensor::constant(Matrix::from({{1.0, 2.0}}));
  DiagonalGaussian d(mean, Tensor::constant(Matrix(1, 2, 0.0)));
  EXPECT_EQ(d.mode(), mean.value());
}

TEST(DiagonalGaussian, LogProbGradWrtMeanAndStd) {
  Rng rng(5);
  Parameter mean("m", Matrix::from({{0.3, -0.7}, {1.0, 0.1}}));
  Parameter log_std("s", Matrix::from({{0.1, -0.2}}));
  Matrix actions = Matrix::from({{0.5, -1.0}, {0.8, 0.4}});
  const GradCheckResult r = check_gradients(
      {&mean, &log_std},
      [&] {
        DiagonalGaussian d(mean.tensor(), log_std.tensor());
        return sum(d.log_prob(actions));
      });
  EXPECT_TRUE(r.ok(1e-5)) << r.max_rel_error;
}

TEST(MultiCategorical, LogProbMatchesLogSoftmax) {
  Tensor logits = Tensor::constant(Matrix::from({{1.0, 2.0, 0.0}}));
  MultiCategorical d({logits});
  const double lp = d.log_prob({{1}}).value()(0, 0);
  const double denom =
      std::log(std::exp(1.0) + std::exp(2.0) + std::exp(0.0));
  EXPECT_NEAR(lp, 2.0 - denom, 1e-12);
}

TEST(MultiCategorical, HeadsSumInLogProb) {
  Tensor l1 = Tensor::constant(Matrix::from({{0.0, 1.0}}));
  Tensor l2 = Tensor::constant(Matrix::from({{2.0, 0.0}}));
  MultiCategorical joint({l1, l2});
  MultiCategorical h1({l1}), h2({l2});
  EXPECT_NEAR(joint.log_prob({{0}, {1}}).value()(0, 0),
              h1.log_prob({{0}}).value()(0, 0) +
                  h2.log_prob({{1}}).value()(0, 0),
              1e-12);
}

TEST(MultiCategorical, EntropyUniformIsLogN) {
  Tensor logits = Tensor::constant(Matrix(1, 8, 0.0));  // uniform over 8
  MultiCategorical d({logits});
  EXPECT_NEAR(d.entropy().scalar(), std::log(8.0), 1e-12);
}

TEST(MultiCategorical, SampleFrequencies) {
  // p = softmax([0, log 3]) = [0.25, 0.75]
  Tensor logits = Tensor::constant(Matrix::from({{0.0, std::log(3.0)}}));
  MultiCategorical d({logits});
  Rng rng(4);
  int ones = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) ones += d.sample(rng)[0][0];
  EXPECT_NEAR(ones / static_cast<double>(n), 0.75, 0.01);
}

TEST(MultiCategorical, ModeIsArgmax) {
  Tensor logits = Tensor::constant(Matrix::from({{0.1, 5.0, -2.0},
                                                 {3.0, 0.0, 0.0}}));
  MultiCategorical d({logits});
  const auto m = d.mode();
  EXPECT_EQ(m[0][0], 1);
  EXPECT_EQ(m[0][1], 0);
}

TEST(MultiCategorical, LogProbGrad) {
  Parameter logits("l", Matrix::from({{0.2, -0.4, 0.9}, {1.0, 0.0, -1.0}}));
  const std::vector<std::vector<int>> actions = {{2, 0}};
  const GradCheckResult r = check_gradients(
      {&logits},
      [&] {
        MultiCategorical d({logits.tensor()});
        return sum(d.log_prob(actions));
      });
  EXPECT_TRUE(r.ok(1e-5)) << r.max_rel_error;
}

TEST(MultiCategorical, EntropyGrad) {
  Parameter logits("l", Matrix::from({{0.5, -0.3, 0.1}}));
  const GradCheckResult r = check_gradients(
      {&logits},
      [&] {
        MultiCategorical d({logits.tensor()});
        return d.entropy();
      },
      1e-6);
  EXPECT_TRUE(r.ok(1e-4)) << r.max_rel_error;
}

}  // namespace
}  // namespace automdt::nn
