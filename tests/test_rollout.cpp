#include <gtest/gtest.h>

#include "rl/rollout.hpp"

namespace automdt::rl {
namespace {

TEST(RolloutMemory, StoresAndStacks) {
  RolloutMemory m;
  m.add({0.1, 0.2}, {1.0, 2.0, 3.0}, 0.5, -1.2);
  m.add({0.3, 0.4}, {4.0, 5.0, 6.0}, 0.7, -0.8);
  EXPECT_EQ(m.size(), 2u);

  const nn::Matrix s = m.states_matrix();
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_DOUBLE_EQ(s(1, 0), 0.3);

  const nn::Matrix a = m.actions_matrix();
  EXPECT_DOUBLE_EQ(a(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 4.0);

  const nn::Matrix lp = m.log_probs_column();
  EXPECT_DOUBLE_EQ(lp(0, 0), -1.2);
  EXPECT_DOUBLE_EQ(lp(1, 0), -0.8);
}

TEST(RolloutMemory, DiscountedReturns) {
  RolloutMemory m;
  for (double r : {1.0, 2.0, 3.0}) m.add({0.0}, {0, 0, 0}, r, 0.0);
  const nn::Matrix g = m.discounted_returns(0.5);
  // G2 = 3, G1 = 2 + 0.5*3 = 3.5, G0 = 1 + 0.5*3.5 = 2.75
  EXPECT_DOUBLE_EQ(g(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 3.5);
  EXPECT_DOUBLE_EQ(g(0, 0), 2.75);
}

TEST(RolloutMemory, ReturnsRestartAtEpisodeBoundaries) {
  RolloutMemory m;
  m.add({0.0}, {0, 0, 0}, 1.0, 0.0);
  m.add({0.0}, {0, 0, 0}, 2.0, 0.0);
  m.end_episode();
  m.add({0.0}, {0, 0, 0}, 10.0, 0.0);
  m.add({0.0}, {0, 0, 0}, 20.0, 0.0);
  m.end_episode();
  const nn::Matrix g = m.discounted_returns(0.5);
  // Second episode: G3 = 20, G2 = 10 + 0.5*20 = 20
  EXPECT_DOUBLE_EQ(g(3, 0), 20.0);
  EXPECT_DOUBLE_EQ(g(2, 0), 20.0);
  // First episode must NOT see the second's rewards: G1 = 2, G0 = 1 + 0.5*2.
  EXPECT_DOUBLE_EQ(g(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(g(0, 0), 2.0);
}

TEST(RolloutMemory, MeanReward) {
  RolloutMemory m;
  EXPECT_DOUBLE_EQ(m.mean_reward(), 0.0);
  m.add({0.0}, {0, 0, 0}, 1.0, 0.0);
  m.add({0.0}, {0, 0, 0}, 3.0, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_reward(), 2.0);
}

TEST(RolloutMemory, ClearResetsEverything) {
  RolloutMemory m;
  m.add({0.0}, {0, 0, 0}, 1.0, 0.0);
  m.end_episode();
  m.clear();
  EXPECT_TRUE(m.empty());
  m.add({0.0}, {0, 0, 0}, 4.0, 0.0);
  const nn::Matrix g = m.discounted_returns(0.9);
  EXPECT_DOUBLE_EQ(g(0, 0), 4.0);  // no stale boundaries
}

TEST(RolloutMemory, DiscreteActionsPerHead) {
  RolloutMemory m;
  m.add_discrete({0.0}, {1, 2, 3}, 0.0, 0.0);
  m.add_discrete({0.0}, {4, 5, 6}, 0.0, 0.0);
  const auto heads = m.action_indices_per_head();
  ASSERT_EQ(heads.size(), 3u);
  EXPECT_EQ(heads[0], (std::vector<int>{1, 4}));
  EXPECT_EQ(heads[1], (std::vector<int>{2, 5}));
  EXPECT_EQ(heads[2], (std::vector<int>{3, 6}));
}

}  // namespace
}  // namespace automdt::rl
