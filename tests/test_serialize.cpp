#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.hpp"
#include "nn/module.hpp"
#include "nn/serialize.hpp"

namespace automdt::nn {
namespace {

TEST(Serialize, BufferRoundTrip) {
  StateDict state;
  state.emplace("a", Matrix::from({{1.0, 2.0}, {3.0, 4.0}}));
  state.emplace("b.weight", Matrix(3, 1, -0.5));
  const auto bytes = serialize_state_dict(state);
  const StateDict back = deserialize_state_dict(bytes);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.at("a"), state.at("a"));
  EXPECT_EQ(back.at("b.weight"), state.at("b.weight"));
}

TEST(Serialize, EmptyDict) {
  const auto bytes = serialize_state_dict({});
  EXPECT_TRUE(deserialize_state_dict(bytes).empty());
}

TEST(Serialize, BadMagicRejected) {
  std::vector<char> bytes = {'N', 'O', 'P', 'E', 0, 0, 0, 0};
  EXPECT_THROW(deserialize_state_dict(bytes), std::runtime_error);
}

TEST(Serialize, TruncatedRejected) {
  StateDict state;
  state.emplace("w", Matrix(4, 4, 1.0));
  auto bytes = serialize_state_dict(state);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(deserialize_state_dict(bytes), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "automdt_ckpt_test.bin")
          .string();
  StateDict state;
  state.emplace("x", Matrix::from({{3.14, 2.71}}));
  ASSERT_TRUE(save_state_dict(state, path));
  const StateDict back = load_state_dict_file(path);
  EXPECT_EQ(back.at("x"), state.at("x"));
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_state_dict_file("/nonexistent/path/ckpt.bin"),
               std::runtime_error);
}

TEST(Serialize, ModuleStateDictRoundTrip) {
  Rng rng(1);
  Linear a(3, 2, rng, "lin");
  Linear b(3, 2, rng, "lin");  // different init
  EXPECT_NE(a.parameters()[0]->value(), b.parameters()[0]->value());
  load_state_dict(b, state_dict(a));
  EXPECT_EQ(a.parameters()[0]->value(), b.parameters()[0]->value());
  EXPECT_EQ(a.parameters()[1]->value(), b.parameters()[1]->value());
}

TEST(Serialize, MissingParameterThrows) {
  Rng rng(1);
  Linear lin(2, 2, rng, "lin");
  StateDict incomplete;
  incomplete.emplace("lin.weight", Matrix(2, 2, 0.0));
  EXPECT_THROW(load_state_dict(lin, incomplete), std::runtime_error);
}

TEST(Serialize, ShapeMismatchThrows) {
  Rng rng(1);
  Linear lin(2, 2, rng, "lin");
  StateDict bad = state_dict(lin);
  bad.at("lin.weight") = Matrix(3, 3, 0.0);
  EXPECT_THROW(load_state_dict(lin, bad), std::runtime_error);
}

TEST(Serialize, ExtraEntriesIgnoredOnLoad) {
  Rng rng(1);
  Linear lin(2, 2, rng, "lin");
  StateDict state = state_dict(lin);
  state.emplace("meta.extra", Matrix(1, 1, 42.0));
  EXPECT_NO_THROW(load_state_dict(lin, state));
}

}  // namespace
}  // namespace automdt::nn
