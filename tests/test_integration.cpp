// Cross-module integration: the paper's qualitative claims at test scale.
// These use reduced training budgets; the full-shape reproduction lives in
// bench/ (which EXPERIMENTS.md records).
#include <gtest/gtest.h>

#include "core/automdt.hpp"
#include "optimizers/marlin_controller.hpp"
#include "optimizers/runner.hpp"
#include "optimizers/static_controller.hpp"
#include "testbed/presets.hpp"

namespace automdt {
namespace {

using core::AutoMdt;
using core::PipelineConfig;
using optimizers::run_transfer;
using testbed::Dataset;
using testbed::EmulatedEnvironment;

// Shared trained agent: training once keeps the suite fast.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineConfig cfg;
    cfg.ppo = rl::PpoConfig::fast_defaults();
    cfg.ppo.hidden_dim = 48;
    cfg.ppo.policy_blocks = 2;
    cfg.ppo.max_episodes = 2500;
    cfg.ppo.stagnation_episodes = 400;
    cfg.max_threads = 30;

    sim::SimScenario s;
    const auto preset = testbed::bottleneck_read();
    s.sender_capacity = preset.config.sender_buffer_bytes;
    s.receiver_capacity = preset.config.receiver_buffer_bytes;
    s.tpt_mbps = {80.0, 160.0, 200.0};
    s.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
    s.max_threads = 30;
    mdt_ = new AutoMdt(AutoMdt::train_on_scenario(s, cfg, &training_));
  }
  static void TearDownTestSuite() {
    delete mdt_;
    mdt_ = nullptr;
  }

  static AutoMdt* mdt_;
  static rl::TrainResult training_;
};

AutoMdt* IntegrationTest::mdt_ = nullptr;
rl::TrainResult IntegrationTest::training_;

TEST_F(IntegrationTest, TrainingReachedUsefulReward) {
  EXPECT_GT(training_.best_reward, 0.75);
}

TEST_F(IntegrationTest, AutoMdtBeatsGlobusStaticOnBottleneck) {
  const auto preset = testbed::bottleneck_read();
  const Dataset data = Dataset::uniform(2, 500.0 * kMB);

  EmulatedEnvironment env_a(preset.config, data);
  mdt_->align_environment(env_a);
  auto automdt_ctrl = mdt_->make_controller();
  Rng ra(1);
  const auto res_a = run_transfer(env_a, *automdt_ctrl, ra, {600.0});

  EmulatedEnvironment env_g(preset.config, data);
  optimizers::GlobusStaticController globus;
  Rng rg(1);
  const auto res_g = run_transfer(env_g, globus, rg, {600.0});

  ASSERT_TRUE(res_a.completed);
  ASSERT_TRUE(res_g.completed);
  // Globus's 32 network streams over-subscribe the 1 Gbps path while its 4
  // read threads (80 Mbps each) starve the pipeline; AutoMDT must finish
  // substantially sooner.
  EXPECT_LT(res_a.completion_time_s, res_g.completion_time_s * 0.8);
}

TEST_F(IntegrationTest, AutoMdtIdentifiesReadBottleneck) {
  const auto preset = testbed::bottleneck_read();
  EmulatedEnvironment env(preset.config, Dataset::infinite());
  mdt_->align_environment(env);
  auto ctrl = mdt_->make_controller(/*deterministic=*/true);

  Rng rng(2);
  EnvStep last;
  last.observation = env.reset(rng);
  ctrl->reset(rng);
  ConcurrencyTuple tuple = ctrl->initial_action();
  for (int t = 0; t < 30; ++t) {
    last = env.step(tuple);
    tuple = ctrl->decide(last, tuple);
  }
  // Read is the bottleneck stage (ideal 13): the read concurrency should be
  // the highest of the three and in the right neighbourhood.
  EXPECT_GE(tuple.read, 10);
  EXPECT_GE(tuple.read, tuple.network);
  EXPECT_GE(tuple.read, tuple.write);
}

TEST_F(IntegrationTest, AutoMdtConvergesFasterThanMarlin) {
  const auto preset = testbed::bottleneck_read();
  const Dataset data = Dataset::uniform(30, 1.0 * kGB);

  EmulatedEnvironment env_a(preset.config, data);
  mdt_->align_environment(env_a);
  auto actrl = mdt_->make_controller();
  Rng ra(3);
  const auto res_a = run_transfer(env_a, *actrl, ra, {1200.0});

  EmulatedEnvironment env_m(preset.config, data);
  optimizers::MarlinController marlin;
  Rng rm(3);
  const auto res_m = run_transfer(env_m, marlin, rm, {1200.0});

  // Time to reach (near) the bottleneck stage's required concurrency.
  const auto t_a = res_a.series.time_to_reach(Stage::kRead, 12, 1);
  const auto t_m = res_m.series.time_to_reach(Stage::kRead, 12, 1);
  ASSERT_TRUE(t_a.has_value());
  if (t_m.has_value()) {
    EXPECT_LT(*t_a, *t_m);
  }
  // And it should finish no later (generous slack for emulator noise).
  ASSERT_TRUE(res_a.completed);
  if (res_m.completed) {
    EXPECT_LE(res_a.completion_time_s, res_m.completion_time_s * 1.10);
  }
}

TEST_F(IntegrationTest, CheckpointedAgentReproducesBehaviour) {
  const std::string path = "/tmp/automdt_integration.ckpt";
  ASSERT_TRUE(mdt_->save(path));
  PipelineConfig cfg;
  cfg.ppo = rl::PpoConfig::fast_defaults();
  cfg.ppo.hidden_dim = 48;
  cfg.ppo.policy_blocks = 2;
  const AutoMdt loaded = AutoMdt::load(path, cfg);
  std::remove(path.c_str());

  Rng r1(5), r2(5);
  const std::vector<double> s(kObservationSize, 0.6);
  EXPECT_EQ(mdt_->agent()->act(s, r1, true), loaded.agent()->act(s, r2, true));
}

}  // namespace
}  // namespace automdt
