// UringRing coverage (net/uring.hpp): the capability probe and its env
// override, batched file I/O through one io_uring_enter, fixed-buffer reads
// over a registered ArenaPool, and — the wire-identity satellite at net
// level — a prep_writev submission of build_scatter_batch iovecs producing
// byte-identical output to the syscall write_scatter_batch path.
//
// Every kernel-touching test GTEST_SKIPs when io_uring is unavailable, so
// the suite stays green on kernels without it (the engine falls back there
// too; test_engine_uring.cpp covers that seam).
#include "net/uring.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <stdlib.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer_pool.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace automdt::net {
namespace {

std::vector<std::byte> pattern(std::size_t n) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::byte>(static_cast<std::uint8_t>(i * 31 + 7));
  return out;
}

// Scoped env override, restoring the prior value on destruction so the
// DISABLE probe test cannot poison later tests in the same process.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = ::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

// A unique temp file path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const char* tag) {
    path_ = (std::filesystem::temp_directory_path() /
             (std::string("automdt_uring_") + tag + ".dat"))
                .string();
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Uring, DisableEnvForcesUnavailable) {
  // AUTOMDT_DISABLE_URING is re-read on every available() call — this is the
  // knob CI uses to exercise the graceful-fallback path on capable kernels.
  ScopedEnv disable("AUTOMDT_DISABLE_URING", "1");
  EXPECT_FALSE(UringRing::available());
}

TEST(Uring, DisableEnvZeroMeansEnabled) {
  // "0" is explicitly non-disabling; the result is then just the kernel
  // probe, whatever it says on this machine.
  ScopedEnv disable("AUTOMDT_DISABLE_URING", "0");
  const bool probe = UringRing::available();
  ScopedEnv off("AUTOMDT_DISABLE_URING", "");
  EXPECT_EQ(UringRing::available(), probe);
}

TEST(Uring, CreateReturnsNullWhenUnavailable) {
  ScopedEnv disable("AUTOMDT_DISABLE_URING", "1");
  EXPECT_EQ(UringRing::create(8), nullptr);
}

TEST(Uring, BatchedFileWriteThenReadRoundTrips) {
  if (!UringRing::available()) GTEST_SKIP() << "io_uring unavailable";
  auto ring = UringRing::create(8);
  ASSERT_NE(ring, nullptr);
  EXPECT_GE(ring->sq_entries(), 8u);

  TempFile file("rw");
  const int fd = ::open(file.path().c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);

  // Batch of 4 writes at distinct offsets -> ONE io_uring_enter.
  const auto data = pattern(4096);
  const std::uint64_t enters_before = ring->enters();
  for (std::uint64_t i = 0; i < 4; ++i)
    ASSERT_TRUE(ring->prep_write(fd, data.data() + i * 1024, 1024, i * 1024,
                                 /*user_data=*/i));
  std::vector<UringRing::Completion> cqes;
  ASSERT_EQ(ring->submit_and_wait(4, cqes), 4);
  EXPECT_EQ(ring->enters() - enters_before, 1u);
  for (const auto& cqe : cqes) {
    EXPECT_EQ(cqe.res, 1024);
    EXPECT_LT(cqe.user_data, 4u);
  }

  // Read the whole file back through the ring and compare.
  std::vector<std::byte> back(4096);
  for (std::uint64_t i = 0; i < 4; ++i)
    ASSERT_TRUE(ring->prep_read(fd, back.data() + i * 1024, 1024, i * 1024,
                                /*user_data=*/i));
  ASSERT_EQ(ring->submit_and_wait(4, cqes), 4);
  EXPECT_EQ(back, data);
  ::close(fd);
}

TEST(Uring, FixedBufferReadThroughRegisteredArena) {
  if (!UringRing::available()) GTEST_SKIP() << "io_uring unavailable";
  auto ring = UringRing::create(8);
  ASSERT_NE(ring, nullptr);

  ArenaPool arena(2048, 2);
  ASSERT_TRUE(
      ring->register_buffers(arena.registered_iovecs(),
                             static_cast<unsigned>(arena.block_count())));
  EXPECT_TRUE(ring->buffers_registered());

  TempFile file("fixed");
  const auto data = pattern(2048);
  const int fd = ::open(file.path().c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::pwrite(fd, data.data(), data.size(), 0),
            static_cast<ssize_t>(data.size()));

  BufferLease lease = arena.acquire();
  ASSERT_TRUE(lease.valid());
  ASSERT_NE(lease.registered_index(), BufferLease::kUnregistered);
  ASSERT_TRUE(ring->prep_read_fixed(fd, lease.data(), 2048, 0,
                                    lease.registered_index(),
                                    /*user_data=*/7));
  std::vector<UringRing::Completion> cqes;
  ASSERT_EQ(ring->submit_and_wait(1, cqes), 1);
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_EQ(cqes[0].user_data, 7u);
  ASSERT_EQ(cqes[0].res, 2048);
  EXPECT_EQ(std::memcmp(lease.data(), data.data(), data.size()), 0);
  ::close(fd);
}

TEST(Uring, PrepFailsWhenSqFullAndRecoversAfterSubmit) {
  if (!UringRing::available()) GTEST_SKIP() << "io_uring unavailable";
  auto ring = UringRing::create(4);
  ASSERT_NE(ring, nullptr);
  const unsigned slots = ring->sq_entries();

  TempFile file("full");
  const int fd = ::open(file.path().c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  const auto data = pattern(64);
  for (unsigned i = 0; i < slots; ++i)
    ASSERT_TRUE(ring->prep_write(fd, data.data(), 64, i * 64, i));
  // SQ is full: the next prep must refuse instead of clobbering.
  EXPECT_FALSE(ring->prep_write(fd, data.data(), 64, slots * 64, slots));
  std::vector<UringRing::Completion> cqes;
  ASSERT_EQ(ring->submit_and_wait(slots, cqes),
            static_cast<int>(slots));
  // Slots free again after the reap.
  EXPECT_TRUE(ring->prep_write(fd, data.data(), 64, slots * 64, slots));
  ASSERT_EQ(ring->submit_and_wait(1, cqes), 1);
  ::close(fd);
}

TEST(Uring, WritevScatterBatchIsWireIdenticalToSyscallPath) {
  // The uring sender's actual submission shape: build_scatter_batch fills
  // the iovec list, one WRITEV SQE ships it. The receiving side must see
  // byte-for-byte what the syscall writer would have sent — decoded here by
  // the stock BufferedFrameReader with zero batching awareness.
  if (!UringRing::available()) GTEST_SKIP() << "io_uring unavailable";
  auto ring = UringRing::create(4);
  ASSERT_NE(ring, nullptr);

  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  const auto head0 = pattern(28);
  const auto head1 = pattern(44);
  const auto body = pattern(512);
  const ScatterSegment segments[] = {
      {head0.data(), head0.size(), body.data(), body.size(), 0},
      {head1.data(), head1.size(), body.data(), body.size(), kFrameFlagTraced},
  };

  FrameWriter w(a);
  std::vector<iovec> iov;
  const std::size_t total =
      w.build_scatter_batch(FrameType::kChunk, segments, 2, iov);
  std::thread sender([&] {
    ASSERT_TRUE(ring->prep_writev(a.fd(), iov.data(),
                                  static_cast<unsigned>(iov.size()),
                                  /*user_data=*/1));
    std::vector<UringRing::Completion> cqes;
    ASSERT_EQ(ring->submit_and_wait(1, cqes), 1);
    ASSERT_EQ(cqes[0].res, static_cast<std::int32_t>(total));
    a.shutdown_both();
  });

  BufferedFrameReader reader(b);
  Frame frame;
  ASSERT_EQ(reader.read(frame, 5.0), FrameError::kNone);
  EXPECT_EQ(frame.flags, 0u);
  std::vector<std::byte> expected = head0;
  expected.insert(expected.end(), body.begin(), body.end());
  EXPECT_EQ(frame.payload, expected);
  ASSERT_EQ(reader.read(frame, 5.0), FrameError::kNone);
  EXPECT_EQ(frame.flags, kFrameFlagTraced);
  expected = head1;
  expected.insert(expected.end(), body.begin(), body.end());
  EXPECT_EQ(frame.payload, expected);
  EXPECT_EQ(reader.read(frame, 5.0), FrameError::kClosed);
  sender.join();
}

TEST(Uring, MultishotDisableEnvForcesUnavailable) {
  // AUTOMDT_DISABLE_URING_MULTISHOT is re-read per call, the CI knob for
  // exercising the single-shot fallback on kernels that do have multishot.
  ScopedEnv disable("AUTOMDT_DISABLE_URING_MULTISHOT", "1");
  EXPECT_FALSE(UringRing::multishot_available());
}

TEST(Uring, MultishotImpliesAvailable) {
  if (UringRing::multishot_available()) EXPECT_TRUE(UringRing::available());
  // Disabling the base capability must take the multishot plane with it.
  ScopedEnv disable("AUTOMDT_DISABLE_URING", "1");
  EXPECT_FALSE(UringRing::multishot_available());
}

TEST(Uring, MultishotRecvDrawsFromProvidedBuffers) {
  if (!UringRing::multishot_available())
    GTEST_SKIP() << "multishot io_uring unavailable";
  auto ring = UringRing::create(8);
  ASSERT_NE(ring, nullptr);
  ASSERT_FALSE(ring->buf_ring_ready());
  ASSERT_TRUE(ring->setup_buf_ring(/*entries=*/4, /*bgid=*/7));
  ASSERT_TRUE(ring->buf_ring_ready());
  std::vector<std::vector<std::byte>> bufs(2, std::vector<std::byte>(4096));
  ring->provide_buffer(bufs[0].data(), 4096, 0);
  ring->provide_buffer(bufs[1].data(), 4096, 1);

  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  ASSERT_TRUE(ring->prep_recv_multishot(a.fd(), /*user_data=*/42));

  const auto expect = pattern(1000);
  ASSERT_EQ(b.write_all(expect.data(), expect.size(), 2.0), SocketStatus::kOk);

  // One armed SQE, one completion per filled buffer: the CQE names the
  // buffer id in its flags and the bytes sit exactly where we provided.
  std::vector<UringRing::Completion> cqes;
  std::size_t got = 0;
  while (got < expect.size()) {
    ASSERT_GT(ring->submit_and_wait(1, cqes), 0);
    for (const UringRing::Completion& c : cqes) {
      ASSERT_EQ(c.user_data, 42u);
      ASSERT_GT(c.res, 0) << "recv completion failed: " << c.res;
      ASSERT_NE(c.flags & UringRing::kCqeFlagBuffer, 0u);
      const unsigned bid = c.flags >> UringRing::kCqeBufferShift;
      ASSERT_LT(bid, bufs.size());
      ASSERT_LE(got + static_cast<std::size_t>(c.res), expect.size());
      EXPECT_EQ(std::memcmp(bufs[bid].data(), expect.data() + got,
                            static_cast<std::size_t>(c.res)),
                0);
      got += static_cast<std::size_t>(c.res);
    }
  }
  EXPECT_EQ(got, expect.size());
}

TEST(Uring, MultishotAcceptYieldsOneCompletionPerConnection) {
  if (!UringRing::multishot_available())
    GTEST_SKIP() << "multishot io_uring unavailable";
  auto listener = Listener::open("127.0.0.1", 0);
  ASSERT_TRUE(listener.has_value());
  auto ring = UringRing::create(8);
  ASSERT_NE(ring, nullptr);
  ASSERT_TRUE(ring->prep_accept_multishot(listener->fd(), /*user_data=*/9));

  Connector connector;
  auto c1 = connector.connect("127.0.0.1", listener->port());
  ASSERT_TRUE(c1.has_value());
  auto c2 = connector.connect("127.0.0.1", listener->port());
  ASSERT_TRUE(c2.has_value());

  std::vector<UringRing::Completion> cqes;
  int accepted = 0;
  while (accepted < 2) {
    ASSERT_GT(ring->submit_and_wait(1, cqes), 0);
    for (const UringRing::Completion& c : cqes) {
      ASSERT_EQ(c.user_data, 9u);
      ASSERT_GE(c.res, 0) << "accept completion failed: " << c.res;
      ::close(c.res);  // we only care that the fd arrived
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 2);
}

}  // namespace
}  // namespace automdt::net
