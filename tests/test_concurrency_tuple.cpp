#include <gtest/gtest.h>

#include "common/concurrency_tuple.hpp"

namespace automdt {
namespace {

TEST(ConcurrencyTuple, IndexingMatchesFields) {
  ConcurrencyTuple t{3, 7, 11};
  EXPECT_EQ(t[Stage::kRead], 3);
  EXPECT_EQ(t[Stage::kNetwork], 7);
  EXPECT_EQ(t[Stage::kWrite], 11);
  t[Stage::kNetwork] = 20;
  EXPECT_EQ(t.network, 20);
}

TEST(ConcurrencyTuple, ClampedBothSides) {
  ConcurrencyTuple t{0, 50, 15};
  const ConcurrencyTuple c = t.clamped(1, 30);
  EXPECT_EQ(c, (ConcurrencyTuple{1, 30, 15}));
}

TEST(ConcurrencyTuple, TotalAndMax) {
  ConcurrencyTuple t{2, 3, 4};
  EXPECT_EQ(t.total(), 9);
  EXPECT_EQ(t.max_component(), 4);
}

TEST(ConcurrencyTuple, ToString) {
  EXPECT_EQ((ConcurrencyTuple{1, 2, 3}).to_string(), "<1,2,3>");
}

TEST(ConcurrencyTuple, Equality) {
  EXPECT_EQ((ConcurrencyTuple{1, 2, 3}), (ConcurrencyTuple{1, 2, 3}));
  EXPECT_NE((ConcurrencyTuple{1, 2, 3}), (ConcurrencyTuple{1, 2, 4}));
}

TEST(StageThroughputs, IndexingAndMin) {
  StageThroughputs t{100.0, 50.0, 75.0};
  EXPECT_DOUBLE_EQ(t[Stage::kRead], 100.0);
  EXPECT_DOUBLE_EQ(t[Stage::kNetwork], 50.0);
  EXPECT_DOUBLE_EQ(t[Stage::kWrite], 75.0);
  EXPECT_DOUBLE_EQ(t.min_component(), 50.0);
}

TEST(Stage, NamesAndOrder) {
  EXPECT_STREQ(stage_name(Stage::kRead), "read");
  EXPECT_STREQ(stage_name(Stage::kNetwork), "network");
  EXPECT_STREQ(stage_name(Stage::kWrite), "write");
  EXPECT_EQ(kAllStages.size(), 3u);
  EXPECT_EQ(kAllStages[0], Stage::kRead);
  EXPECT_EQ(kAllStages[2], Stage::kWrite);
}

}  // namespace
}  // namespace automdt
