#include <gtest/gtest.h>

#include "transfer/real_env.hpp"

namespace automdt::transfer {
namespace {

RealEnvConfig small_env() {
  RealEnvConfig c;
  c.engine.max_threads = 4;
  c.engine.chunk_bytes = 64 * 1024;
  c.engine.sender_buffer_bytes = 1.0 * kMiB;
  c.engine.receiver_buffer_bytes = 1.0 * kMiB;
  c.engine.network.aggregate_bytes_per_s = 8.0 * 1024 * 1024;  // 8 MB/s
  c.file_sizes_bytes.assign(6, 512.0 * 1024);                  // 3 MiB total
  c.probe_interval_s = 0.1;
  return c;
}

TEST(RealTransferEnv, ObservationShape) {
  RealTransferEnv env(small_env());
  Rng rng(1);
  const auto obs = env.reset(rng);
  EXPECT_EQ(obs.size(), kObservationSize);
  EXPECT_EQ(env.max_threads(), 4);
}

TEST(RealTransferEnv, StepsReportProgressAndFinish) {
  RealTransferEnv env(small_env());
  Rng rng(2);
  env.reset(rng);
  bool done = false;
  double total_reported = 0.0;
  for (int i = 0; i < 100 && !done; ++i) {
    const EnvStep out = env.step({4, 4, 4});
    done = out.done;
    total_reported += mbps(out.throughputs_mbps.write) * 0.1;
    EXPECT_GE(out.reward, 0.0);
  }
  EXPECT_TRUE(done);
  // ~3 MiB should have been observed through the write probe (loose bounds:
  // wall-clock scheduling noise).
  EXPECT_GT(total_reported, 1.0 * kMiB);
}

TEST(RealTransferEnv, ResetRestartsTransfer) {
  RealTransferEnv env(small_env());
  Rng rng(3);
  env.reset(rng);
  for (int i = 0; i < 3; ++i) env.step({4, 4, 4});
  env.reset(rng);
  // After reset a fresh session exists and is unfinished.
  const EnvStep out = env.step({1, 1, 1});
  EXPECT_FALSE(out.done);
}

TEST(RealTransferEnv, RewardUsesUtility) {
  RealEnvConfig cfg = small_env();
  cfg.utility.k = 1.5;  // aggressive penalty so the effect is visible
  RealTransferEnv env(cfg);
  Rng rng(4);
  env.reset(rng);
  const EnvStep out = env.step({4, 4, 4});
  EXPECT_NEAR(out.reward,
              total_utility(out.throughputs_mbps, {4, 4, 4}, cfg.utility),
              1e-9);
}

}  // namespace
}  // namespace automdt::transfer
