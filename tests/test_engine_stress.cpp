// Failure injection and stress for the threaded engine: aborts while
// blocked, concurrent retuning, degenerate datasets, and clean teardown
// under every interleaving we can provoke on 2 cores.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/rng.hpp"
#include "transfer/engine.hpp"

namespace automdt::transfer {
namespace {

EngineConfig tiny() {
  EngineConfig c;
  c.max_threads = 4;
  c.chunk_bytes = 32 * 1024;
  c.sender_buffer_bytes = 128.0 * 1024;
  c.receiver_buffer_bytes = 128.0 * 1024;
  return c;
}

TEST(EngineStress, StopWhileReadersBlockedOnFullBuffer) {
  EngineConfig cfg = tiny();
  cfg.network.aggregate_bytes_per_s = 1.0;  // network effectively frozen
  TransferSession s(cfg, std::vector<double>(64, 64.0 * 1024));
  s.start({4, 4, 4});
  // Give readers time to fill the sender queue and block on push.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  s.stop();  // must not deadlock
  SUCCEED();
}

TEST(EngineStress, StopWhileWritersStarved) {
  EngineConfig cfg = tiny();
  cfg.read.aggregate_bytes_per_s = 1.0;  // nothing ever arrives
  TransferSession s(cfg, std::vector<double>(8, 64.0 * 1024));
  s.start({1, 4, 4});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  s.stop();
  SUCCEED();
}

TEST(EngineStress, DestructorAbortsRunningTransfer) {
  // Rely on ~TransferSession for cleanup — no explicit stop().
  auto s = std::make_unique<TransferSession>(
      tiny(), std::vector<double>(256, 256.0 * 1024));
  s->start({4, 4, 4});
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  s.reset();  // must join cleanly
  SUCCEED();
}

TEST(EngineStress, ConcurrentRetuningWhileTransferring) {
  TransferSession s(tiny(), std::vector<double>(64, 128.0 * 1024));
  s.start({1, 1, 1});
  std::atomic<bool> done{false};
  std::thread tuner([&] {
    Rng rng(1);
    while (!done.load()) {
      s.set_concurrency({rng.uniform_int(1, 4), rng.uniform_int(1, 4),
                         rng.uniform_int(1, 4)});
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const bool finished = s.wait_finished(30.0);
  done.store(true);
  tuner.join();
  EXPECT_TRUE(finished);
  EXPECT_EQ(s.stats().verify_failures, 0u);
}

TEST(EngineStress, ConcurrentRetuningWhileTransferringMutexBaseline) {
  // The original mutex staging queues stay selectable (the hot-path bench's
  // baseline); retuning under load must behave identically there.
  EngineConfig cfg = tiny();
  cfg.lock_free_staging = false;
  TransferSession s(cfg, std::vector<double>(64, 128.0 * 1024));
  s.start({1, 1, 1});
  std::atomic<bool> done{false};
  std::thread tuner([&] {
    Rng rng(2);
    while (!done.load()) {
      s.set_concurrency({rng.uniform_int(1, 4), rng.uniform_int(1, 4),
                         rng.uniform_int(1, 4)});
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const bool finished = s.wait_finished(30.0);
  done.store(true);
  tuner.join();
  EXPECT_TRUE(finished);
  EXPECT_EQ(s.stats().verify_failures, 0u);
}

TEST(EngineStress, RingQueueStallCountersExported) {
  // A tiny staging buffer forces producers to stall against consumers; the
  // counters must surface that through stats() on the lock-free path.
  EngineConfig cfg = tiny();
  cfg.sender_buffer_bytes = 2.0 * cfg.chunk_bytes;
  cfg.receiver_buffer_bytes = 2.0 * cfg.chunk_bytes;
  TransferSession s(cfg, std::vector<double>(128, 64.0 * 1024));
  s.start({4, 1, 1});
  ASSERT_TRUE(s.wait_finished(30.0));
  const TransferStats stats = s.stats();
  const auto& snd = stats.sender_queue_counters;
  const auto& rcv = stats.receiver_queue_counters;
  EXPECT_GT(snd.push_stalls + snd.pop_stalls + rcv.push_stalls +
                rcv.pop_stalls,
            0u);
  EXPECT_EQ(stats.verify_failures, 0u);
}

TEST(EngineStress, LockFreeAndMutexBaselineAgreeOnFinalCounters) {
  const std::vector<double> files(32, 96.0 * 1024);
  EngineConfig ring_cfg = tiny();
  EngineConfig mutex_cfg = tiny();
  mutex_cfg.lock_free_staging = false;

  TransferSession ring_session(ring_cfg, files);
  ring_session.start({3, 3, 3});
  ASSERT_TRUE(ring_session.wait_finished(30.0));

  TransferSession mutex_session(mutex_cfg, files);
  mutex_session.start({3, 3, 3});
  ASSERT_TRUE(mutex_session.wait_finished(30.0));

  const TransferStats a = ring_session.stats();
  const TransferStats b = mutex_session.stats();
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.chunks_written, b.chunks_written);
  EXPECT_EQ(a.verify_failures, 0u);
  EXPECT_EQ(b.verify_failures, 0u);
  // The mutex baseline has no ring, so its counters must be all-zero.
  EXPECT_EQ(b.sender_queue_counters.push_parks, 0u);
  EXPECT_EQ(b.receiver_queue_counters.pop_parks, 0u);
}

TEST(EngineStress, SingleByteFiles) {
  TransferSession s(tiny(), std::vector<double>(32, 1.0));
  s.start({2, 2, 2});
  ASSERT_TRUE(s.wait_finished(10.0));
  EXPECT_DOUBLE_EQ(s.stats().bytes_written, 32.0);
  EXPECT_EQ(s.stats().chunks_written, 32u);
  EXPECT_EQ(s.stats().verify_failures, 0u);
}

TEST(EngineStress, ManyTinyFilesComplete) {
  TransferSession s(tiny(), std::vector<double>(500, 3000.0));
  s.start({4, 4, 4});
  ASSERT_TRUE(s.wait_finished(30.0));
  EXPECT_DOUBLE_EQ(s.stats().bytes_written, 500 * 3000.0);
}

TEST(EngineStress, RepeatedStartStopCycles) {
  for (int i = 0; i < 10; ++i) {
    TransferSession s(tiny(), std::vector<double>(16, 64.0 * 1024));
    s.start({2, 2, 2});
    if (i % 2 == 0) {
      s.wait_finished(10.0);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    s.stop();
  }
  SUCCEED();
}

TEST(EngineStress, NoPayloadModeSkipsVerification) {
  EngineConfig cfg = tiny();
  cfg.fill_payload = false;
  cfg.verify_payload = false;
  TransferSession s(cfg, std::vector<double>(16, 128.0 * 1024));
  s.start({2, 2, 2});
  ASSERT_TRUE(s.wait_finished(10.0));
  EXPECT_EQ(s.stats().verify_failures, 0u);
  EXPECT_DOUBLE_EQ(s.stats().bytes_written, 16 * 128.0 * 1024);
}

}  // namespace
}  // namespace automdt::transfer
