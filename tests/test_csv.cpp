#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hpp"

namespace automdt {
namespace {

TEST(CsvEscape, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, CommaQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuoteDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(Table, CsvOutput) {
  Table t({"name", "value"}, 1);
  t.add_row({std::string("x"), 1.25});
  t.add_row({std::string("y, z"), 2.0});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "name,value\nx,1.2\n\"y, z\",2.0\n");
}

TEST(Table, PrintAligned) {
  Table t({"a", "bbbb"}, 0);
  t.add_row({std::string("wide-cell"), static_cast<long long>(7)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header and row present, separators drawn.
  EXPECT_NE(out.find("| a         | bbbb |"), std::string::npos);
  EXPECT_NE(out.find("| wide-cell | 7    |"), std::string::npos);
  EXPECT_NE(out.find("+-----------+------+"), std::string::npos);
}

TEST(Table, IntegerCells) {
  Table t({"n"});
  t.add_row({static_cast<long long>(42)});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "n\n42\n");
}

TEST(Table, PrecisionApplied) {
  Table t({"v"}, 3);
  t.add_row({3.14159});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "v\n3.142\n");
}

TEST(Table, RowCount) {
  Table t({"v"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({1.0}).add_row({2.0});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace automdt
