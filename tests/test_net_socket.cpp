#include "net/socket.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace automdt::net {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

TEST(Listener, BindsEphemeralPortAndReportsIt) {
  auto listener = Listener::open("127.0.0.1", 0);
  ASSERT_TRUE(listener.has_value());
  EXPECT_NE(listener->port(), 0);
}

TEST(Listener, AcceptTimesOutWithoutPendingConnection) {
  auto listener = Listener::open("127.0.0.1", 0);
  ASSERT_TRUE(listener.has_value());
  const auto t0 = Clock::now();
  EXPECT_FALSE(listener->accept(0.1).has_value());
  EXPECT_GE(seconds_since(t0), 0.08);
}

TEST(Connector, ConnectsToListeningPort) {
  auto listener = Listener::open("127.0.0.1", 0);
  ASSERT_TRUE(listener.has_value());
  Connector connector;
  auto socket = connector.connect("127.0.0.1", listener->port());
  ASSERT_TRUE(socket.has_value());
  EXPECT_EQ(connector.attempts_made(), 1);
  auto accepted = listener->accept(1.0);
  ASSERT_TRUE(accepted.has_value());
}

TEST(Connector, RefusedConnectionRetriesWithExponentialBackoff) {
  // Grab an ephemeral port, then free it: connects are refused immediately.
  std::uint16_t dead_port;
  {
    auto listener = Listener::open("127.0.0.1", 0);
    ASSERT_TRUE(listener.has_value());
    dead_port = listener->port();
  }
  ConnectorConfig config;
  config.max_attempts = 3;
  config.initial_backoff_s = 0.05;
  config.backoff_multiplier = 2.0;
  Connector connector(config);
  const auto t0 = Clock::now();
  EXPECT_FALSE(connector.connect("127.0.0.1", dead_port).has_value());
  // Two sleeps between three attempts: 0.05 + 0.10.
  EXPECT_GE(seconds_since(t0), 0.14);
  EXPECT_EQ(connector.attempts_made(), 3);
  EXPECT_EQ(connector.last_status(), SocketStatus::kError);
}

TEST(Connector, TimesOutAgainstAListenerThatNeverAccepts) {
  // A backlog-1 listener that never accepts: once the backlog is full the
  // kernel drops further SYNs and the handshake can only time out.
  auto listener = Listener::open("127.0.0.1", 0, /*backlog=*/1);
  ASSERT_TRUE(listener.has_value());
  std::vector<Socket> fillers;
  Connector filler_connector(
      {.connect_timeout_s = 0.2, .max_attempts = 1});
  for (int i = 0; i < 4; ++i) {
    auto s = filler_connector.connect("127.0.0.1", listener->port());
    if (s) fillers.push_back(std::move(*s));
  }
  ConnectorConfig config;
  config.connect_timeout_s = 0.2;
  config.max_attempts = 2;
  config.initial_backoff_s = 0.02;
  Connector connector(config);
  const auto t0 = Clock::now();
  const auto result = connector.connect("127.0.0.1", listener->port());
  if (!result) {
    EXPECT_EQ(connector.last_status(), SocketStatus::kTimeout);
    EXPECT_GE(seconds_since(t0), 0.2);
  }
  // (If the kernel still completed the handshake, the connect legitimately
  // succeeds — the timeout path is then covered by the read-timeout test.)
}

TEST(Socket, ReadTimesOutWhenPeerStaysSilent) {
  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  std::byte buf[16];
  const auto t0 = Clock::now();
  EXPECT_EQ(a.read_exact(buf, sizeof(buf), 0.1), SocketStatus::kTimeout);
  EXPECT_GE(seconds_since(t0), 0.08);
}

TEST(Socket, ReadSeesOrderlyEofAsClosed) {
  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  b.shutdown_both();
  std::byte buf[4];
  EXPECT_EQ(a.read_exact(buf, sizeof(buf), 1.0), SocketStatus::kClosed);
}

TEST(Socket, PartialMessageThenEofIsAnError) {
  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  const std::byte half[2] = {std::byte{1}, std::byte{2}};
  ASSERT_EQ(b.write_all(half, sizeof(half), 1.0), SocketStatus::kOk);
  b.shutdown_both();
  std::byte buf[4];
  EXPECT_EQ(a.read_exact(buf, sizeof(buf), 1.0), SocketStatus::kError);
}

TEST(Socket, ShutdownWakesABlockedReader) {
  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    a.shutdown_both();
  });
  std::byte buf[4];
  const auto t0 = Clock::now();
  EXPECT_EQ(a.read_exact(buf, sizeof(buf), 5.0), SocketStatus::kClosed);
  EXPECT_LT(seconds_since(t0), 4.0);
  waker.join();
}

TEST(Socket, LargeWriteSurvivesSmallSocketBuffers) {
  Socket a, b;
  ASSERT_TRUE(Socket::make_pair(a, b));
  const std::size_t size = 4u << 20;  // well past any default buffer
  std::vector<std::byte> out(size, std::byte{0x5A});
  std::thread reader([&] {
    std::vector<std::byte> in(size);
    ASSERT_EQ(b.read_exact(in.data(), in.size(), 10.0), SocketStatus::kOk);
    EXPECT_EQ(in, out);
  });
  EXPECT_EQ(a.write_all(out.data(), out.size(), 10.0), SocketStatus::kOk);
  reader.join();
}

}  // namespace
}  // namespace automdt::net
