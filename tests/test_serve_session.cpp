#include "serve/session.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"

namespace automdt::serve {
namespace {

SessionOpenRequest open_request(const std::string& tenant = "",
                                std::uint64_t expected_bytes = 0) {
  SessionOpenRequest open;
  open.client_token = 0xFEEDBEEFu;
  open.expected_bytes = expected_bytes;
  open.chunk_bytes = 64 * 1024;
  open.tenant = tenant;
  return open;
}

TEST(ServeCodec, OpenRoundTrips) {
  SessionOpenRequest in = open_request("acme", 1 << 20);
  const auto encoded = encode_session_open(in);
  SessionOpenRequest out;
  ASSERT_TRUE(decode_session_open(encoded.data(), encoded.size(), out));
  EXPECT_EQ(out.client_token, in.client_token);
  EXPECT_EQ(out.expected_bytes, in.expected_bytes);
  EXPECT_EQ(out.chunk_bytes, in.chunk_bytes);
  EXPECT_EQ(out.tenant, in.tenant);
}

TEST(ServeCodec, OpenRoundTripsEmptyTenant) {
  SessionOpenRequest in = open_request("");
  const auto encoded = encode_session_open(in);
  SessionOpenRequest out;
  ASSERT_TRUE(decode_session_open(encoded.data(), encoded.size(), out));
  EXPECT_EQ(out.tenant, "");
}

TEST(ServeCodec, AcceptRejectFinalRoundTrip) {
  SessionAccept accept{123, 7};
  const auto ea = encode_session_accept(accept);
  SessionAccept accept_out;
  ASSERT_TRUE(decode_session_accept(ea.data(), ea.size(), accept_out));
  EXPECT_EQ(accept_out.client_token, 123u);
  EXPECT_EQ(accept_out.session_id, 7u);

  SessionReject reject{123, RejectReason::kAtCapacity, "server full"};
  const auto er = encode_session_reject(reject);
  SessionReject reject_out;
  ASSERT_TRUE(decode_session_reject(er.data(), er.size(), reject_out));
  EXPECT_EQ(reject_out.client_token, 123u);
  EXPECT_EQ(reject_out.reason, RejectReason::kAtCapacity);
  EXPECT_EQ(reject_out.message, "server full");

  SessionFinalStats final_stats{1 << 20, 16, 1};
  const auto ef = encode_session_final(final_stats);
  SessionFinalStats final_out;
  ASSERT_TRUE(decode_session_final(ef.data(), ef.size(), final_out));
  EXPECT_EQ(final_out.bytes_ok, final_stats.bytes_ok);
  EXPECT_EQ(final_out.chunks_ok, final_stats.chunks_ok);
  EXPECT_EQ(final_out.verify_failures, final_stats.verify_failures);
}

TEST(ServeCodec, TruncatedPayloadsDecodeFalse) {
  const auto encoded = encode_session_open(open_request("acme"));
  SessionOpenRequest open_out;
  for (std::size_t size = 0; size < 24; ++size)
    EXPECT_FALSE(decode_session_open(encoded.data(), size, open_out));
  SessionAccept accept_out;
  EXPECT_FALSE(decode_session_accept(encoded.data(), 11, accept_out));
  SessionFinalStats final_out;
  EXPECT_FALSE(decode_session_final(encoded.data(), 23, final_out));
}

TEST(ServeTenant, BufferQuotaReservesAndReleases) {
  telemetry::MetricsRegistry registry;
  TenantQuota quota;
  quota.max_buffer_bytes = 1000;
  TenantState tenant("acme", quota, registry);
  EXPECT_TRUE(tenant.try_reserve_buffer(600));
  EXPECT_TRUE(tenant.try_reserve_buffer(400));
  EXPECT_FALSE(tenant.try_reserve_buffer(1));  // quota exhausted
  tenant.release_buffer(400);
  EXPECT_TRUE(tenant.try_reserve_buffer(300));
  EXPECT_EQ(tenant.buffer_bytes(), 900u);
}

TEST(ServeTenant, ZeroBufferQuotaIsUnlimited) {
  telemetry::MetricsRegistry registry;
  TenantState tenant("acme", TenantQuota{}, registry);
  EXPECT_TRUE(tenant.try_reserve_buffer(1ull << 40));
}

TEST(ServeTenant, SessionCountQuota) {
  telemetry::MetricsRegistry registry;
  TenantQuota quota;
  quota.max_sessions = 2;
  TenantState tenant("acme", quota, registry);
  EXPECT_TRUE(tenant.try_add_session());
  EXPECT_TRUE(tenant.try_add_session());
  EXPECT_FALSE(tenant.try_add_session());
  tenant.remove_session();
  EXPECT_TRUE(tenant.try_add_session());
  EXPECT_EQ(tenant.sessions(), 2);
}

TEST(ServeTenant, TableCreatesOnDemandAndMapsEmptyToDefault) {
  telemetry::MetricsRegistry registry;
  TenantTable table(TenantQuota{}, registry);
  TenantState* a = table.get_or_create("acme");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, table.get_or_create("acme"));  // stable pointer
  EXPECT_EQ(a, table.find("acme"));
  EXPECT_EQ(table.get_or_create(""), table.get_or_create("default"));
  EXPECT_EQ(table.list().size(), 2u);
}

TEST(ServeTenant, ConfigureOverridesDefaultQuota) {
  telemetry::MetricsRegistry registry;
  TenantQuota dflt;
  dflt.max_sessions = 100;
  TenantTable table(dflt, registry);
  TenantQuota tight;
  tight.max_sessions = 1;
  TenantState* t = table.configure("vip", tight);
  EXPECT_EQ(t->quota().max_sessions, 1);
  EXPECT_EQ(table.get_or_create("other")->quota().max_sessions, 100);
}

TEST(ServeRegistry, AdmitAssignsMonotonicIdsAndCounts) {
  telemetry::MetricsRegistry registry;
  TenantTable tenants(TenantQuota{}, registry);
  SessionRegistry sessions(8);
  TenantState* tenant = tenants.get_or_create("acme");
  auto a = sessions.admit(open_request("acme"), tenant, registry);
  auto b = sessions.admit(open_request("acme"), tenant, registry);
  ASSERT_NE(a.session, nullptr);
  ASSERT_NE(b.session, nullptr);
  EXPECT_LT(a.session->id(), b.session->id());
  EXPECT_EQ(sessions.live(), 2u);
  EXPECT_EQ(sessions.admitted_total(), 2u);
  EXPECT_EQ(tenant->sessions(), 2);
  EXPECT_EQ(sessions.get(a.session->id()), a.session);
}

TEST(ServeRegistry, RejectsAtGlobalCapacity) {
  telemetry::MetricsRegistry registry;
  TenantTable tenants(TenantQuota{}, registry);
  SessionRegistry sessions(2);
  TenantState* tenant = tenants.get_or_create("acme");
  ASSERT_NE(sessions.admit(open_request(), tenant, registry).session, nullptr);
  ASSERT_NE(sessions.admit(open_request(), tenant, registry).session, nullptr);
  auto rejected = sessions.admit(open_request(), tenant, registry);
  EXPECT_EQ(rejected.session, nullptr);
  EXPECT_EQ(rejected.reason, RejectReason::kAtCapacity);
  EXPECT_EQ(tenant->sessions(), 2);  // the reject did not leak a slot
}

TEST(ServeRegistry, RejectsOverTenantSessionQuota) {
  telemetry::MetricsRegistry registry;
  TenantQuota quota;
  quota.max_sessions = 1;
  TenantTable tenants(quota, registry);
  SessionRegistry sessions(8);
  TenantState* tenant = tenants.get_or_create("acme");
  ASSERT_NE(sessions.admit(open_request(), tenant, registry).session, nullptr);
  auto rejected = sessions.admit(open_request(), tenant, registry);
  EXPECT_EQ(rejected.session, nullptr);
  EXPECT_EQ(rejected.reason, RejectReason::kTenantSessions);
  EXPECT_EQ(sessions.live(), 1u);  // global slot not leaked either
}

TEST(ServeRegistry, RemoveFreesSlotAndTenantCount) {
  telemetry::MetricsRegistry registry;
  TenantQuota quota;
  quota.max_sessions = 1;
  TenantTable tenants(quota, registry);
  SessionRegistry sessions(1);
  TenantState* tenant = tenants.get_or_create("acme");
  auto a = sessions.admit(open_request(), tenant, registry);
  ASSERT_NE(a.session, nullptr);
  sessions.remove(a.session->id());
  EXPECT_EQ(sessions.live(), 0u);
  EXPECT_EQ(tenant->sessions(), 0);
  EXPECT_EQ(sessions.get(a.session->id()), nullptr);
  // Both the global and the tenant slot are reusable.
  EXPECT_NE(sessions.admit(open_request(), tenant, registry).session, nullptr);
}

TEST(ServeLifecycle, StatesProgressAndFinalizeClaimsOnce) {
  telemetry::MetricsRegistry registry;
  TenantTable tenants(TenantQuota{}, registry);
  SessionRegistry sessions(4);
  auto admitted = sessions.admit(open_request("acme"),
                                 tenants.get_or_create("acme"), registry);
  ASSERT_NE(admitted.session, nullptr);
  ServeSession& s = *admitted.session;
  EXPECT_EQ(s.state(), SessionLifecycle::kAdmitted);
  s.mark_active();
  EXPECT_EQ(s.state(), SessionLifecycle::kActive);
  s.set_state(SessionLifecycle::kDraining);
  s.mark_active();  // a late chunk must not resurrect a draining session
  EXPECT_EQ(s.state(), SessionLifecycle::kDraining);
  EXPECT_TRUE(s.claim_finalize());
  EXPECT_FALSE(s.claim_finalize());  // exactly once
}

TEST(ServeLifecycle, InflightAccountingDrainsToZero) {
  telemetry::MetricsRegistry registry;
  TenantTable tenants(TenantQuota{}, registry);
  SessionRegistry sessions(4);
  auto admitted = sessions.admit(open_request(),
                                 tenants.get_or_create(""), registry);
  ServeSession& s = *admitted.session;
  s.add_inflight(100);
  s.add_inflight(200);
  EXPECT_EQ(s.inflight_chunks(), 2u);
  EXPECT_EQ(s.inflight_bytes(), 300u);
  EXPECT_EQ(s.release_inflight(100), 1u);
  EXPECT_EQ(s.release_inflight(200), 0u);
  EXPECT_EQ(s.inflight_bytes(), 0u);
}

TEST(ServeLifecycle, CountersLandInRegistryUnderSessionId) {
  telemetry::MetricsRegistry registry;
  TenantTable tenants(TenantQuota{}, registry);
  SessionRegistry sessions(4);
  auto admitted = sessions.admit(open_request("acme"),
                                 tenants.get_or_create("acme"), registry);
  ServeSession& s = *admitted.session;
  s.bytes_ok.add(4096);
  s.chunks_ok.add(1);
  const auto snapshot = registry.snapshot();
  const std::string prefix = "session." + std::to_string(s.id()) + ".";
  EXPECT_TRUE(snapshot.has(prefix + "bytes_ok"));
  EXPECT_EQ(snapshot.value_or(prefix + "bytes_ok"), 4096.0);
  EXPECT_EQ(snapshot.value_or(prefix + "chunks_ok"), 1.0);
  const SessionFinalStats stats = s.final_stats();
  EXPECT_EQ(stats.bytes_ok, 4096u);
  EXPECT_EQ(stats.chunks_ok, 1u);
}

TEST(ServeTenant, ConcurrentReserveNeverExceedsQuotaByMoreThanOneChunk) {
  // The relaxed fetch_add/undo pattern may transiently overshoot but must
  // never admit more than the quota once settled: hammer it from 4 threads
  // and check the final accounting is exact.
  telemetry::MetricsRegistry registry;
  TenantQuota quota;
  quota.max_buffer_bytes = 1 << 20;
  TenantState tenant("acme", quota, registry);
  std::atomic<std::uint64_t> reserved{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        if (tenant.try_reserve_buffer(4096)) {
          reserved.fetch_add(4096);
          tenant.release_buffer(4096);
          reserved.fetch_sub(4096);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tenant.buffer_bytes(), 0u);
}

}  // namespace
}  // namespace automdt::serve
