// StageClock / StageClockSet: lazy-transition state accounting, idle-slot
// semantics, set aggregation, and single-writer / multi-reader safety (the
// tsan job runs this suite).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "telemetry/stage_clock.hpp"

namespace automdt::telemetry {
namespace {

void spin_for_ms(int ms) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(StageClock, IdleSlotContributesNothing) {
  StageClock clock;
  StageClockTotals totals;
  clock.read_into(totals, now_ns());
  EXPECT_EQ(totals.busy_ns, 0u);
  EXPECT_EQ(totals.blocked_upstream_ns, 0u);
  EXPECT_EQ(totals.blocked_downstream_ns, 0u);
  EXPECT_EQ(totals.parked_ns, 0u);
}

TEST(StageClock, BusyAccruesImplicitlyWithoutTransitions) {
  // The hot-path contract: a worker that never blocks performs no enter()
  // calls, yet readers still see its busy time as now - since.
  StageClock clock;
  clock.start();
  spin_for_ms(5);
  StageClockTotals totals;
  clock.read_into(totals, now_ns());
  EXPECT_GT(totals.busy_ns, 1'000'000u);  // >= 1 ms of the 5 we spun
  EXPECT_EQ(totals.blocked_upstream_ns, 0u);
  EXPECT_EQ(totals.blocked_downstream_ns, 0u);
  EXPECT_EQ(totals.parked_ns, 0u);
}

TEST(StageClock, EnterCreditsOutgoingStateExactly) {
  StageClock clock;
  clock.start();
  const std::uint64_t t0 = clock.enter(WorkerState::kBlockedDownstream);
  spin_for_ms(2);
  const std::uint64_t t1 = clock.enter(WorkerState::kBusy);
  ASSERT_GE(t1, t0);
  // Reading "as of t1" excludes the in-progress busy interval, so the
  // blocked-downstream total is exactly the returned-span difference.
  StageClockTotals totals;
  clock.read_into(totals, t1);
  EXPECT_EQ(totals.blocked_downstream_ns, t1 - t0);
  EXPECT_GT(totals.busy_ns, 0u);  // start() -> first enter()
  EXPECT_EQ(totals.parked_ns, 0u);
}

TEST(StageClock, EnterBeforeStartBeginsAccounting) {
  StageClock clock;
  clock.enter(WorkerState::kParked);
  spin_for_ms(2);
  StageClockTotals totals;
  clock.read_into(totals, now_ns());
  EXPECT_GT(totals.parked_ns, 0u);
  EXPECT_EQ(totals.busy_ns, 0u);
}

TEST(StageClock, StateReflectsLastTransition) {
  StageClock clock;
  clock.start();
  EXPECT_EQ(clock.state(), WorkerState::kBusy);
  clock.enter(WorkerState::kBlockedUpstream);
  EXPECT_EQ(clock.state(), WorkerState::kBlockedUpstream);
  EXPECT_STREQ(to_string(clock.state()), "blocked-upstream");
  EXPECT_STREQ(to_string(WorkerState::kBlockedDownstream),
               "blocked-downstream");
  EXPECT_STREQ(to_string(WorkerState::kParked), "parked");
  EXPECT_STREQ(to_string(WorkerState::kBusy), "busy");
}

TEST(StageClockSet, SumsStartedSlotsAndIgnoresIdleOnes) {
  StageClockSet set(4);
  ASSERT_EQ(set.size(), 4u);
  set.slot(0).start();
  set.slot(1).start();
  set.slot(1).enter(WorkerState::kBlockedUpstream);
  spin_for_ms(3);
  // Slots 2 and 3 were never started: a pre-sized pool of workers that never
  // ran must not dilute the aggregate.
  const StageClockTotals totals = set.totals();
  EXPECT_GT(totals.busy_ns, 0u);              // slot 0 (implicit) + slot 1
  EXPECT_GT(totals.blocked_upstream_ns, 0u);  // slot 1 in-progress
  EXPECT_EQ(totals.parked_ns, 0u);

  StageClockTotals idle;
  set.slot(2).read_into(idle, now_ns());
  EXPECT_EQ(idle.busy_ns + idle.blocked_upstream_ns +
                idle.blocked_downstream_ns + idle.parked_ns,
            0u);
}

TEST(StageClockTotals, StateNsSelectsTheMatchingField) {
  StageClockTotals t;
  t.busy_ns = 1;
  t.blocked_upstream_ns = 2;
  t.blocked_downstream_ns = 3;
  t.parked_ns = 4;
  EXPECT_EQ(t.state_ns(WorkerState::kBusy), 1u);
  EXPECT_EQ(t.state_ns(WorkerState::kBlockedUpstream), 2u);
  EXPECT_EQ(t.state_ns(WorkerState::kBlockedDownstream), 3u);
  EXPECT_EQ(t.state_ns(WorkerState::kParked), 4u);
}

TEST(StageClock, ConcurrentReadersNeverTearOrCrash) {
  // Single owner cycling states at full speed while two aggregators read.
  // Run under tsan this proves the relaxed-atomics discipline; the totals
  // assertion proves readers see monotone, plausible sums.
  StageClockSet set(2);
  std::atomic<bool> stop{false};
  const std::uint64_t wall_t0 = now_ns();

  std::thread owner([&] {
    StageClock& clock = set.slot(0);
    clock.start();
    const WorkerState cycle[] = {
        WorkerState::kBusy, WorkerState::kBlockedUpstream,
        WorkerState::kBlockedDownstream, WorkerState::kParked};
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      clock.enter(cycle[i++ % 4]);
    }
  });

  std::atomic<std::uint64_t> reads{0};
  std::thread readers[2];
  for (auto& r : readers) {
    r = std::thread([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const StageClockTotals t = set.totals();
        // A reader must never observe more accumulated time than has
        // elapsed since before the owner started (plus generous slack for
        // the in-progress interval rounding).
        const std::uint64_t sum = t.busy_ns + t.blocked_upstream_ns +
                                  t.blocked_downstream_ns + t.parked_ns;
        ASSERT_LE(sum, (now_ns() - wall_t0) + 1'000'000u);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_relaxed);
  owner.join();
  for (auto& r : readers) r.join();
  EXPECT_GT(reads.load(), 0u);

  const StageClockTotals final_totals = set.totals();
  const std::uint64_t sum =
      final_totals.busy_ns + final_totals.blocked_upstream_ns +
      final_totals.blocked_downstream_ns + final_totals.parked_ns;
  EXPECT_GT(sum, 0u);
}

}  // namespace
}  // namespace automdt::telemetry
