// Receiver-side zero-copy ingest coverage (net/stream_pool.hpp): the
// multishot provided-buffer reader reassembling frames across completion
// boundaries (deterministic mid-header and mid-payload splits included), the
// splice socket→file seam delivering pre-persisted chunks, and the env-forced
// fallbacks for both — AUTOMDT_DISABLE_SPLICE keeps payloads in userspace,
// AUTOMDT_DISABLE_URING_MULTISHOT drops readers to the single-shot leased
// loop. Kernel-dependent tests GTEST_SKIP when the capability is absent, so
// the suite stays green everywhere (the paths themselves degrade the same
// way).
#include <fcntl.h>
#include <gtest/gtest.h>
#include <stdlib.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/checksum.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/stream_pool.hpp"
#include "net/uring.hpp"

namespace automdt::net {
namespace {

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 7) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::byte>(static_cast<std::uint8_t>(i * 31 + seed));
  return out;
}

// Generous default: these tests move hundreds of KiB over loopback on what
// may be a single oversubscribed core, and a pass never waits the full
// deadline anyway.
template <typename Pred>
bool wait_for(Pred pred, double timeout_s = 30.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = ::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

class TempFile {
 public:
  explicit TempFile(const char* tag) {
    path_ = (std::filesystem::temp_directory_path() /
             (std::string("automdt_recv_") + tag + ".dat"))
                .string();
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Payloads collected by offset, copied out of the (possibly leased) chunk
/// before the handler returns so arena blocks recycle promptly.
struct Collector {
  std::mutex mutex;
  std::map<std::uint64_t, std::vector<std::byte>> by_offset;
  std::atomic<int> count{0};
  std::atomic<int> persisted{0};

  bool take(WireChunk&& chunk) {
    {
      std::lock_guard lock(mutex);
      by_offset.emplace(
          chunk.offset,
          std::vector<std::byte>(chunk.payload_data(),
                                 chunk.payload_data() + chunk.payload_size()));
    }
    if (chunk.persisted) persisted.fetch_add(1);
    count.fetch_add(1);
    return true;
  }
};

TEST(RecvPath, MultishotReassemblesFramesAcrossProvidedBuffers) {
  if (!UringRing::multishot_available())
    GTEST_SKIP() << "multishot io_uring unavailable";
  // Blocks far smaller than the traffic: completions cut frames at every
  // offset, so header- and payload-straddles both occur many times over.
  ArenaPool arena(4096, 64);
  Collector got;
  StreamAcceptorConfig config;
  config.lease_pool = &arena;
  config.use_uring = true;
  StreamAcceptor acceptor(config,
                          [&](WireChunk&& chunk) { return got.take(std::move(chunk)); });
  ASSERT_TRUE(acceptor.start());

  StreamPool pool(
      {.host = "127.0.0.1", .port = acceptor.port(), .max_streams = 1});
  pool.set_active(1);
  constexpr int kChunks = 200;
  std::map<std::uint64_t, std::vector<std::byte>> sent;
  for (int i = 0; i < kChunks; ++i) {
    WireChunk chunk;
    chunk.offset = static_cast<std::uint64_t>(i) * 10000;
    chunk.payload = pattern(1000 + (static_cast<std::size_t>(i) * 137) % 3000,
                            static_cast<std::uint8_t>(i));
    chunk.size = static_cast<std::uint32_t>(chunk.payload.size());
    chunk.checksum = fnv1a(chunk.payload);
    sent.emplace(chunk.offset, chunk.payload);
    ASSERT_TRUE(pool.send_chunk(0, chunk));
  }
  ASSERT_TRUE(wait_for([&] { return got.count.load() == kChunks; }))
      << "received " << got.count.load() << " of " << kChunks
      << " frame_errors " << acceptor.frame_errors() << " multishot "
      << acceptor.multishot_streams() << " open " << acceptor.streams_open();
  // The stream is still open here, so the gauge proves the multishot plane
  // actually engaged rather than silently falling back.
  EXPECT_EQ(acceptor.multishot_streams(), 1);
  EXPECT_EQ(acceptor.uring_streams(), 1);
  pool.close();
  acceptor.stop();

  EXPECT_EQ(acceptor.frame_errors(), 0u);
  EXPECT_EQ(acceptor.chunks_received(), static_cast<std::uint64_t>(kChunks));
  ASSERT_EQ(got.by_offset.size(), sent.size());
  for (const auto& [offset, payload] : sent) {
    const auto it = got.by_offset.find(offset);
    ASSERT_NE(it, got.by_offset.end()) << "offset " << offset;
    EXPECT_EQ(it->second, payload) << "offset " << offset;
  }
  EXPECT_EQ(acceptor.multishot_streams(), 0);
}

TEST(RecvPath, MultishotCarryCompletesMidHeaderAndMidPayloadSplits) {
  if (!UringRing::multishot_available())
    GTEST_SKIP() << "multishot io_uring unavailable";
  ArenaPool arena(4096, 32);
  Collector got;
  StreamAcceptorConfig config;
  config.lease_pool = &arena;
  config.use_uring = true;
  StreamAcceptor acceptor(config,
                          [&](WireChunk&& chunk) { return got.take(std::move(chunk)); });
  ASSERT_TRUE(acceptor.start());

  Connector connector;
  auto socket = connector.connect("127.0.0.1", acceptor.port());
  ASSERT_TRUE(socket.has_value());

  // Build one chunk frame by hand: wire meta + payload as the frame body.
  WireChunk chunk;
  chunk.offset = 4242;
  const std::vector<std::byte> payload = pattern(600);
  chunk.size = static_cast<std::uint32_t>(payload.size());
  chunk.checksum = fnv1a(payload);
  std::vector<std::byte> body;
  encode_wire_chunk(chunk, body);
  body.insert(body.end(), payload.begin(), payload.end());
  Frame frame;
  frame.type = FrameType::kChunk;
  frame.payload = body;
  const std::vector<std::byte> bytes = encode_frame(frame);

  // Dribble the frame in three writes with pauses, so the reader sees three
  // separate completions: 7 bytes (mid-HEADER split), then up to the middle
  // of the payload (mid-PAYLOAD split), then the rest. Each boundary forces
  // the carry-reassembly path deterministically.
  const std::size_t cuts[2] = {7, bytes.size() / 2};
  ASSERT_EQ(socket->write_all(bytes.data(), cuts[0], 2.0), SocketStatus::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(socket->write_all(bytes.data() + cuts[0], cuts[1] - cuts[0], 2.0),
            SocketStatus::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(
      socket->write_all(bytes.data() + cuts[1], bytes.size() - cuts[1], 2.0),
      SocketStatus::kOk);

  ASSERT_TRUE(wait_for([&] { return got.count.load() == 1; }));
  socket->shutdown_both();
  acceptor.stop();

  EXPECT_EQ(acceptor.frame_errors(), 0u);
  ASSERT_EQ(got.by_offset.count(4242), 1u);
  EXPECT_EQ(got.by_offset.at(4242), payload);
  // The split frame went through the copied carry path, never zero-copy.
  EXPECT_GT(acceptor.payload_copies(), 0u);
}

TEST(RecvPath, SpliceDeliversPayloadStraightToSink) {
  // Splice rides the single-shot leased reader; it needs no io_uring at all.
  ArenaPool arena(16 * 1024, 32);
  TempFile sink("splice_sink");
  const int sink_fd =
      ::open(sink.path().c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(sink_fd, 0);
  Collector got;
  StreamAcceptorConfig config;
  config.lease_pool = &arena;
  config.splice_sink = [sink_fd](std::uint64_t, std::uint64_t,
                                 std::uint32_t) { return sink_fd; };
  StreamAcceptor acceptor(config,
                          [&](WireChunk&& chunk) { return got.take(std::move(chunk)); });
  ASSERT_TRUE(acceptor.start());

  // Source file holding one 256 KiB chunk — far larger than a receive block,
  // so the frame can never complete in-block and the splice seam must engage.
  const std::vector<std::byte> data = pattern(256 * 1024);
  TempFile src("splice_src");
  const int src_fd =
      ::open(src.path().c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(src_fd, 0);
  ASSERT_EQ(::pwrite(src_fd, data.data(), data.size(), 0),
            static_cast<ssize_t>(data.size()));

  StreamPool pool(
      {.host = "127.0.0.1", .port = acceptor.port(), .max_streams = 1});
  pool.set_active(1);
  WireChunk meta;
  meta.file_id = 0;
  meta.offset = 0;
  meta.size = static_cast<std::uint32_t>(data.size());
  ASSERT_TRUE(pool.send_chunk_file(0, meta, src_fd));

  ASSERT_TRUE(wait_for([&] { return got.count.load() == 1; }));
  pool.close();
  acceptor.stop();

  EXPECT_EQ(acceptor.frame_errors(), 0u);
  EXPECT_GE(acceptor.splices(), 1u);
  EXPECT_EQ(got.persisted.load(), 1);
  // The delivered chunk carries no payload bytes; they are already on disk.
  EXPECT_TRUE(got.by_offset.at(0).empty());
  std::vector<std::byte> on_disk(data.size());
  ASSERT_EQ(::pread(sink_fd, on_disk.data(), on_disk.size(), 0),
            static_cast<ssize_t>(on_disk.size()));
  EXPECT_EQ(on_disk, data);
  ::close(src_fd);
  ::close(sink_fd);
}

TEST(RecvPath, SpliceDisabledEnvDeliversInUserspace) {
  ScopedEnv disable("AUTOMDT_DISABLE_SPLICE", "1");
  ArenaPool arena(16 * 1024, 32);
  TempFile sink("splice_off_sink");
  const int sink_fd =
      ::open(sink.path().c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(sink_fd, 0);
  Collector got;
  StreamAcceptorConfig config;
  config.lease_pool = &arena;
  config.splice_sink = [sink_fd](std::uint64_t, std::uint64_t,
                                 std::uint32_t) { return sink_fd; };
  StreamAcceptor acceptor(config,
                          [&](WireChunk&& chunk) { return got.take(std::move(chunk)); });
  ASSERT_TRUE(acceptor.start());

  const std::vector<std::byte> data = pattern(256 * 1024);
  TempFile src("splice_off_src");
  const int src_fd =
      ::open(src.path().c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(src_fd, 0);
  ASSERT_EQ(::pwrite(src_fd, data.data(), data.size(), 0),
            static_cast<ssize_t>(data.size()));

  StreamPool pool(
      {.host = "127.0.0.1", .port = acceptor.port(), .max_streams = 1});
  pool.set_active(1);
  WireChunk meta;
  meta.file_id = 0;
  meta.offset = 0;
  meta.size = static_cast<std::uint32_t>(data.size());
  ASSERT_TRUE(pool.send_chunk_file(0, meta, src_fd));

  ASSERT_TRUE(wait_for([&] { return got.count.load() == 1; }));
  pool.close();
  acceptor.stop();

  // Same traffic, forced fallback: nothing spliced, nothing persisted — the
  // payload arrives in userspace intact and the sink file stays untouched.
  EXPECT_EQ(acceptor.frame_errors(), 0u);
  EXPECT_EQ(acceptor.splices(), 0u);
  EXPECT_EQ(got.persisted.load(), 0);
  EXPECT_EQ(got.by_offset.at(0), data);
  ::close(src_fd);
  ::close(sink_fd);
}

TEST(RecvPath, MultishotDisabledEnvFallsBackToLeasedReader) {
  ScopedEnv disable("AUTOMDT_DISABLE_URING_MULTISHOT", "1");
  ArenaPool arena(16 * 1024, 32);
  Collector got;
  StreamAcceptorConfig config;
  config.lease_pool = &arena;
  config.use_uring = true;
  StreamAcceptor acceptor(config,
                          [&](WireChunk&& chunk) { return got.take(std::move(chunk)); });
  ASSERT_TRUE(acceptor.start());

  StreamPool pool(
      {.host = "127.0.0.1", .port = acceptor.port(), .max_streams = 1});
  pool.set_active(1);
  constexpr int kChunks = 50;
  std::map<std::uint64_t, std::vector<std::byte>> sent;
  for (int i = 0; i < kChunks; ++i) {
    WireChunk chunk;
    chunk.offset = static_cast<std::uint64_t>(i) * 8192;
    chunk.payload = pattern(4096, static_cast<std::uint8_t>(i));
    chunk.size = static_cast<std::uint32_t>(chunk.payload.size());
    chunk.checksum = fnv1a(chunk.payload);
    sent.emplace(chunk.offset, chunk.payload);
    ASSERT_TRUE(pool.send_chunk(0, chunk));
  }
  ASSERT_TRUE(wait_for([&] { return got.count.load() == kChunks; }));
  EXPECT_EQ(acceptor.multishot_streams(), 0);  // fallback took this stream
  pool.close();
  acceptor.stop();

  EXPECT_EQ(acceptor.frame_errors(), 0u);
  ASSERT_EQ(got.by_offset.size(), sent.size());
  for (const auto& [offset, payload] : sent)
    EXPECT_EQ(got.by_offset.at(offset), payload) << "offset " << offset;
}

}  // namespace
}  // namespace automdt::net
