// End-to-end serve-plane tests: many concurrent sessions over loopback
// through a fixed worker pool, quota/rate backpressure, drain-on-teardown,
// legacy (flagless) interop, and stall attribution.
#include "serve/session_server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/checksum.hpp"
#include "net/stream_pool.hpp"
#include "serve/session_client.hpp"
#include "telemetry/clock_sync.hpp"

namespace automdt::serve {
namespace {

using namespace std::chrono_literals;

std::size_t count_threads() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/task"))
    ++n;
  return n;
}

/// Spin until `pred` holds or `deadline` elapses; true iff it held.
template <typename Pred>
bool wait_for(Pred pred, std::chrono::milliseconds deadline = 5000ms) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

TEST(ServeServer, ManySessionsOnFixedWorkerPool) {
  SessionServerConfig config;
  config.max_sessions = 64;
  config.worker_threads = 3;
  SessionServer server(std::move(config));
  ASSERT_TRUE(server.start());
  const std::size_t threads_idle = count_threads();

  auto client = SessionClient::connect("127.0.0.1", server.port());
  ASSERT_NE(client, nullptr);

  // Acceptance floor: >= 32 concurrent sessions, one fixed pool.
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 32; ++i) {
    auto open = client->open(i % 2 == 0 ? "acme" : "beta");
    ASSERT_TRUE(open.ok()) << open.message;
    ids.push_back(open.session_id);
  }
  EXPECT_EQ(server.registry().live(), 32u);

  constexpr std::size_t kChunk = 16 * 1024;
  for (int round = 0; round < 3; ++round)
    for (std::uint32_t id : ids)
      ASSERT_TRUE(client->send_pattern_chunk(
          id, static_cast<std::uint64_t>(round) * kChunk, kChunk));

  // The whole point of the event-driven plane: thread count must not follow
  // session count. (Other tests in the process may start/stop threads, so
  // compare against the server's own post-start baseline.)
  EXPECT_EQ(count_threads(), threads_idle);

  std::uint64_t total_bytes = 0;
  for (std::uint32_t id : ids) {
    auto stats = client->close_session(id);
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->chunks_ok, 3u);
    EXPECT_EQ(stats->verify_failures, 0u);
    total_bytes += stats->bytes_ok;
  }
  EXPECT_EQ(total_bytes, 32ull * 3 * kChunk);
  EXPECT_TRUE(wait_for([&] { return server.registry().live() == 0; }));
  server.stop();
}

TEST(ServeServer, RejectsOpensAtCapacityUntilSlotFrees) {
  SessionServerConfig config;
  config.max_sessions = 2;
  SessionServer server(std::move(config));
  ASSERT_TRUE(server.start());
  auto client = SessionClient::connect("127.0.0.1", server.port());
  ASSERT_NE(client, nullptr);

  auto a = client->open("acme");
  auto b = client->open("acme");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto rejected = client->open("acme");
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.reason, RejectReason::kAtCapacity);

  ASSERT_TRUE(client->close_session(a.session_id).has_value());
  ASSERT_TRUE(wait_for([&] { return server.registry().live() == 1; }));
  EXPECT_TRUE(client->open("acme").ok());  // the slot came back
  server.stop();
}

TEST(ServeServer, EnforcesTenantSessionQuota) {
  SessionServerConfig config;
  SessionServer server(std::move(config));
  TenantQuota one;
  one.max_sessions = 1;
  server.configure_tenant("small", one);
  ASSERT_TRUE(server.start());
  auto client = SessionClient::connect("127.0.0.1", server.port());
  ASSERT_NE(client, nullptr);

  ASSERT_TRUE(client->open("small").ok());
  auto rejected = client->open("small");
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.reason, RejectReason::kTenantSessions);
  // Another tenant is unaffected by small's quota.
  EXPECT_TRUE(client->open("roomy").ok());
  EXPECT_GE(server.tenants().find("small")->rejects.value(), 1u);
  server.stop();
}

TEST(ServeServer, RateQuotaDefersWithoutDropping) {
  SessionServerConfig config;
  SessionServer server(std::move(config));
  TenantQuota slow;
  slow.rate_bytes_per_s = 256.0 * 1024;  // burst = 256 KiB, then ~256 KiB/s
  server.configure_tenant("slow", slow);
  ASSERT_TRUE(server.start());
  auto client = SessionClient::connect("127.0.0.1", server.port());
  ASSERT_NE(client, nullptr);

  auto open = client->open("slow");
  ASSERT_TRUE(open.ok());
  constexpr std::size_t kChunk = 64 * 1024;
  constexpr int kChunks = 8;  // 512 KiB total: ~1s beyond the burst
  for (int i = 0; i < kChunks; ++i)
    ASSERT_TRUE(client->send_pattern_chunk(
        open.session_id, static_cast<std::uint64_t>(i) * kChunk, kChunk));
  auto stats = client->close_session(open.session_id);
  ASSERT_TRUE(stats.has_value());
  // Backpressure, not loss: every chunk arrived and verified...
  EXPECT_EQ(stats->chunks_ok, static_cast<std::uint64_t>(kChunks));
  EXPECT_EQ(stats->verify_failures, 0u);
  // ...and the bucket actually deferred some of them.
  EXPECT_GE(server.tenants().find("slow")->throttle_defers.value(), 1u);
  server.stop();
}

TEST(ServeServer, BufferQuotaDefersWithoutDropping) {
  SessionServerConfig config;
  config.worker_threads = 1;
  SessionServer server(std::move(config));
  TenantQuota tight;
  tight.max_buffer_bytes = 64 * 1024;  // one chunk in flight at a time
  server.configure_tenant("tight", tight);
  ASSERT_TRUE(server.start());
  auto client = SessionClient::connect("127.0.0.1", server.port());
  ASSERT_NE(client, nullptr);

  auto open = client->open("tight");
  ASSERT_TRUE(open.ok());
  constexpr std::size_t kChunk = 64 * 1024;
  for (int i = 0; i < 16; ++i)
    ASSERT_TRUE(client->send_pattern_chunk(
        open.session_id, static_cast<std::uint64_t>(i) * kChunk, kChunk));
  auto stats = client->close_session(open.session_id);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->chunks_ok, 16u);
  EXPECT_EQ(stats->verify_failures, 0u);
  TenantState* tenant = server.tenants().find("tight");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->buffer_bytes(), 0u);  // every reservation released
  server.stop();
}

TEST(ServeServer, AbruptDisconnectDrainsWithoutLeakingArenaBlocks) {
  SessionServerConfig config;
  config.arena_block_bytes = 64 * 1024;
  config.arena_blocks = 8;
  SessionServer server(std::move(config));
  ASSERT_TRUE(server.start());
  ASSERT_NE(server.arena(), nullptr);
  const std::size_t blocks_total = server.arena()->blocks_free();

  {
    auto client = SessionClient::connect("127.0.0.1", server.port());
    ASSERT_NE(client, nullptr);
    auto open = client->open("acme");
    ASSERT_TRUE(open.ok());
    for (int i = 0; i < 12; ++i)
      ASSERT_TRUE(client->send_pattern_chunk(
          open.session_id, static_cast<std::uint64_t>(i) * 32 * 1024,
          32 * 1024));
    // Destroy the client mid-transfer: no close handshake, the socket just
    // dies under the server.
  }

  // The orphaned session must drain (workers finish what was admitted, the
  // rest is discarded with the connection) and give every arena block back.
  EXPECT_TRUE(wait_for([&] { return server.registry().live() == 0; }));
  EXPECT_TRUE(
      wait_for([&] { return server.arena()->blocks_free() == blocks_total; }));
  server.stop();
}

TEST(ServeServer, LegacyFlaglessConnectionBindsImplicitSession) {
  // An unmodified pre-session peer: raw kChunk frames with no session
  // extension. The server must serve it as one implicit default-tenant
  // session rather than rejecting the old wire format.
  SessionServerConfig config;
  SessionServer server(std::move(config));
  ASSERT_TRUE(server.start());

  net::Connector connector{net::ConnectorConfig{}};
  auto socket = connector.connect("127.0.0.1", server.port());
  ASSERT_TRUE(socket.has_value());
  net::FrameWriter writer(*socket);

  std::vector<std::byte> payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::byte>(i * 13 + 5);
  net::WireChunk chunk;
  chunk.file_id = 1;
  chunk.offset = 0;
  chunk.size = static_cast<std::uint32_t>(payload.size());
  chunk.checksum = fnv1a(payload.data(), payload.size());
  std::vector<std::byte> wire;
  net::encode_wire_chunk(chunk, wire);
  wire.insert(wire.end(), payload.begin(), payload.end());
  ASSERT_EQ(writer.write(net::FrameType::kChunk, wire, 5.0),
            net::SocketStatus::kOk);

  EXPECT_TRUE(wait_for([&] { return server.total_chunks_ok() == 1; }));
  EXPECT_EQ(server.total_bytes_ok(), payload.size());
  EXPECT_EQ(server.registry().live(), 1u);  // the implicit session
  TenantState* dflt = server.tenants().find("default");
  ASSERT_NE(dflt, nullptr);
  EXPECT_EQ(dflt->sessions(), 1);

  socket->shutdown_both();
  EXPECT_TRUE(wait_for([&] { return server.registry().live() == 0; }));
  server.stop();
}

TEST(ServeServer, GracefulCloseWaitsForInflightChunks) {
  // Teardown mid-transfer: the close ack must not arrive until the stalled
  // in-flight chunk finished, and its bytes must be in the final stats.
  SessionServerConfig config;
  config.inject_worker_stall_s = 0.6;
  config.stall_session_id = 1;
  SessionServer server(std::move(config));
  ASSERT_TRUE(server.start());
  auto client = SessionClient::connect("127.0.0.1", server.port());
  ASSERT_NE(client, nullptr);

  auto open = client->open("acme");
  ASSERT_TRUE(open.ok());
  ASSERT_EQ(open.session_id, 1u);  // the id the stall hook targets
  ASSERT_TRUE(client->send_pattern_chunk(open.session_id, 0, 8192));
  const auto t0 = std::chrono::steady_clock::now();
  auto stats = client->close_session(open.session_id);
  const auto waited = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->chunks_ok, 1u);
  EXPECT_EQ(stats->bytes_ok, 8192u);
  EXPECT_GE(waited, 200ms);  // close really waited on the stalled worker
  server.stop();
}

TEST(ServeServer, StallReportNamesTheStalledSession) {
  SessionServerConfig config;
  config.inject_worker_stall_s = 1.5;
  config.stall_session_id = 1;
  SessionServer server(std::move(config));
  ASSERT_TRUE(server.start());
  auto client = SessionClient::connect("127.0.0.1", server.port());
  ASSERT_NE(client, nullptr);

  auto stalled = client->open("acme");
  ASSERT_TRUE(stalled.ok());
  ASSERT_EQ(stalled.session_id, 1u);
  auto healthy = client->open("beta");
  ASSERT_TRUE(healthy.ok());
  ASSERT_TRUE(client->send_pattern_chunk(stalled.session_id, 0, 4096));

  // While the worker sits in the injected stall the session holds in-flight
  // work, so the watchdog context must name it (and its tenant).
  ASSERT_TRUE(wait_for(
      [&] { return server.stall_report().find("session 1") !=
                   std::string::npos; },
      1000ms))
      << server.stall_report();
  EXPECT_NE(server.stall_report().find("acme"), std::string::npos);
  // Progress gauge reports a value while work is in flight...
  EXPECT_TRUE(server.watchdog_progress().has_value());
  ASSERT_TRUE(client->close_session(stalled.session_id).has_value());
  // ...and goes idle (nullopt) once nothing is in flight, so the watchdog
  // arms only under load.
  EXPECT_TRUE(wait_for([&] { return !server.watchdog_progress().has_value(); }));
  EXPECT_EQ(server.stall_report(), "");
  server.stop();
}

TEST(ServeServer, ClockSyncPublishesOverServeConnection) {
  SessionServerConfig config;
  SessionServer server(std::move(config));
  ASSERT_TRUE(server.start());
  auto client = SessionClient::connect("127.0.0.1", server.port());
  ASSERT_NE(client, nullptr);
  telemetry::ClockModel model;
  EXPECT_FALSE(model.synced());
  ASSERT_TRUE(client->sync_clock(model));
  EXPECT_TRUE(model.synced());
  server.stop();
}

TEST(ServeServer, StatsSnapshotExportsPerSessionCounters) {
  SessionServerConfig config;
  SessionServer server(std::move(config));
  ASSERT_TRUE(server.start());
  auto client = SessionClient::connect("127.0.0.1", server.port());
  ASSERT_NE(client, nullptr);

  auto open = client->open("acme");
  ASSERT_TRUE(open.ok());
  ASSERT_TRUE(client->send_pattern_chunk(open.session_id, 0, 4096));
  const std::string prefix =
      "session." + std::to_string(open.session_id) + ".";
  ASSERT_TRUE(wait_for([&] {
    auto stats = client->query_stats();
    if (!stats) return false;
    for (const auto& metric : stats->metrics)
      if (metric.name == prefix + "chunks_ok" && metric.value == 1.0)
        return true;
    return false;
  }));
  server.stop();
}

TEST(ServeServer, PingAndMultipleClients) {
  SessionServerConfig config;
  SessionServer server(std::move(config));
  ASSERT_TRUE(server.start());
  auto a = SessionClient::connect("127.0.0.1", server.port());
  auto b = SessionClient::connect("127.0.0.1", server.port());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(a->ping());
  EXPECT_TRUE(b->ping());
  auto open_a = a->open("acme");
  auto open_b = b->open("acme");
  ASSERT_TRUE(open_a.ok());
  ASSERT_TRUE(open_b.ok());
  EXPECT_NE(open_a.session_id, open_b.session_id);
  EXPECT_EQ(server.connections(), 2);
  ASSERT_TRUE(a->send_pattern_chunk(open_a.session_id, 0, 1024));
  ASSERT_TRUE(b->send_pattern_chunk(open_b.session_id, 0, 2048));
  auto stats_a = a->close_session(open_a.session_id);
  auto stats_b = b->close_session(open_b.session_id);
  ASSERT_TRUE(stats_a.has_value());
  ASSERT_TRUE(stats_b.has_value());
  EXPECT_EQ(stats_a->bytes_ok, 1024u);
  EXPECT_EQ(stats_b->bytes_ok, 2048u);
  server.stop();
}

TEST(ServeServer, ShardedLoopsPreserveAdmissionSemantics) {
  SessionServerConfig config;
  config.event_loops = 2;
  config.worker_threads = 3;
  config.max_sessions = 64;
  SessionServer server(std::move(config));
  TenantQuota slow;
  slow.rate_bytes_per_s = 256.0 * 1024;
  server.configure_tenant("slow", slow);
  ASSERT_TRUE(server.start());
  const std::size_t threads_idle = count_threads();

  // Eight tenants on eight connections: each connection is pinned to the
  // shard its tenant hashes to, so with two loops both shards carry traffic
  // (the expected routed count is computed with the server's own hash, which
  // makes the assertion deterministic rather than probabilistic).
  std::vector<std::unique_ptr<SessionClient>> clients;
  std::vector<std::vector<std::uint32_t>> ids;
  std::uint64_t expect_routed = 0;
  for (int c = 0; c < 8; ++c) {
    const std::string tenant = "tenant" + std::to_string(c);
    if (fnv1a(tenant.data(), tenant.size()) % 2 != 0) ++expect_routed;
    auto client = SessionClient::connect("127.0.0.1", server.port());
    ASSERT_NE(client, nullptr);
    ids.emplace_back();
    for (int s = 0; s < 4; ++s) {
      auto open = client->open(tenant);
      ASSERT_TRUE(open.ok()) << open.message;
      ids.back().push_back(open.session_id);
    }
    clients.push_back(std::move(client));
  }
  EXPECT_EQ(server.registry().live(), 32u);
  EXPECT_GE(expect_routed, 1u);  // hash spread: at least one conn moved

  constexpr std::size_t kChunk = 16 * 1024;
  for (int round = 0; round < 3; ++round)
    for (std::size_t c = 0; c < clients.size(); ++c)
      for (std::uint32_t id : ids[c])
        ASSERT_TRUE(clients[c]->send_pattern_chunk(
            id, static_cast<std::uint64_t>(round) * kChunk, kChunk));

  // Sharding must not reintroduce thread-per-connection: two loops + the
  // fixed pool, measured against the server's own post-start baseline.
  EXPECT_EQ(count_threads(), threads_idle);

  for (std::size_t c = 0; c < clients.size(); ++c) {
    for (std::uint32_t id : ids[c]) {
      auto stats = clients[c]->close_session(id);
      ASSERT_TRUE(stats.has_value());
      EXPECT_EQ(stats->chunks_ok, 3u);
      EXPECT_EQ(stats->verify_failures, 0u);
      EXPECT_EQ(stats->bytes_ok, 3u * kChunk);
    }
  }
  EXPECT_EQ(server.metrics().counter("serve.conns_routed")->value(),
            expect_routed);

  // Rate-quota semantics are byte-for-byte those of the single-loop plane:
  // the shared bucket defers, nothing drops.
  auto slow_client = SessionClient::connect("127.0.0.1", server.port());
  ASSERT_NE(slow_client, nullptr);
  auto open = slow_client->open("slow");
  ASSERT_TRUE(open.ok());
  constexpr std::size_t kBig = 64 * 1024;
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(slow_client->send_pattern_chunk(
        open.session_id, static_cast<std::uint64_t>(i) * kBig, kBig));
  auto stats = slow_client->close_session(open.session_id);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->chunks_ok, 8u);
  EXPECT_EQ(stats->verify_failures, 0u);
  EXPECT_GE(server.tenants().find("slow")->throttle_defers.value(), 1u);
  server.stop();
}

TEST(ServeServer, RejectsOpenWhoseChunkBytesCannotPassAdmission) {
  SessionServerConfig config;
  SessionServer server(std::move(config));
  TenantQuota slow;
  slow.rate_bytes_per_s = 64.0 * 1024;  // bucket burst == 64 KiB
  server.configure_tenant("slow", slow);
  TenantQuota tight;
  tight.max_buffer_bytes = 32 * 1024;
  server.configure_tenant("tight", tight);
  ASSERT_TRUE(server.start());
  auto client = SessionClient::connect("127.0.0.1", server.port());
  ASSERT_NE(client, nullptr);

  // Boundary: a chunk exactly equal to the burst can pass admission (the
  // full bucket holds it), one byte more never can — reject at open instead
  // of wedging the session's first chunk forever.
  auto at_burst = client->open("slow", 0, 64 * 1024);
  EXPECT_TRUE(at_burst.ok()) << at_burst.message;
  auto over_burst = client->open("slow", 0, 64 * 1024 + 1);
  EXPECT_FALSE(over_burst.ok());
  EXPECT_EQ(over_burst.reason, RejectReason::kQuotaTooSmall);

  // Same clamp against the buffer quota.
  auto at_buffer = client->open("tight", 0, 32 * 1024);
  EXPECT_TRUE(at_buffer.ok()) << at_buffer.message;
  auto over_buffer = client->open("tight", 0, 32 * 1024 + 1);
  EXPECT_FALSE(over_buffer.ok());
  EXPECT_EQ(over_buffer.reason, RejectReason::kQuotaTooSmall);

  // No advisory chunk size => nothing to clamp (bytes gate at admission).
  EXPECT_TRUE(client->open("slow").ok());
  EXPECT_GE(server.tenants().find("slow")->rejects.value(), 1u);
  EXPECT_GE(server.tenants().find("tight")->rejects.value(), 1u);
  server.stop();
}

}  // namespace
}  // namespace automdt::serve
