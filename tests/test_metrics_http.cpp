// MetricsHttpServer: a raw TCP client speaking minimal HTTP/1.1 against the
// /metrics endpoint — status codes, OpenMetrics content type, body framing —
// plus the ISSUE's concurrent-scrape case: hammering /metrics while a real
// TransferSession is moving bytes must always yield complete, EOF-terminated
// scrapes.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/metrics_http.hpp"
#include "telemetry/openmetrics.hpp"
#include "transfer/engine.hpp"

namespace automdt::telemetry {
namespace {

/// One-shot HTTP exchange: send `request` verbatim, read to connection close.
std::string http_exchange(std::uint16_t port, const std::string& request) {
  net::Connector connector;
  auto socket = connector.connect("127.0.0.1", port);
  if (!socket.has_value()) return "";
  if (socket->write_all(request.data(), request.size(), 5.0) !=
      net::SocketStatus::kOk)
    return "";
  std::string response;
  char buf[4096];
  for (;;) {
    std::size_t received = 0;
    const auto status = socket->read_some(buf, sizeof(buf), 5.0, &received);
    if (status != net::SocketStatus::kOk || received == 0) break;
    response.append(buf, received);
  }
  return response;
}

std::string get(std::uint16_t port, const std::string& path) {
  return http_exchange(port, "GET " + path +
                                 " HTTP/1.1\r\nHost: localhost\r\n"
                                 "Connection: close\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

MetricsHttpServerConfig loopback_config() {
  MetricsHttpServerConfig config;
  config.host = "127.0.0.1";
  config.port = 0;
  return config;
}

TEST(MetricsHttpServer, ServesRenderedBodyWithOpenMetricsContentType) {
  MetricsRegistry registry;
  registry.counter("read.bytes")->add(7);
  MetricsHttpServer server(loopback_config(),
                           [&] { return render_openmetrics(registry); });
  ASSERT_TRUE(server.start());
  ASSERT_NE(server.port(), 0);

  const std::string response = get(server.port(), "/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(response.find("Content-Type: application/openmetrics-text; "
                          "version=1.0.0; charset=utf-8\r\n"),
            std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);

  const std::string body = body_of(response);
  EXPECT_NE(body.find("automdt_read_bytes_total 7\n"), std::string::npos);
  EXPECT_EQ(body.substr(body.size() - 6), "# EOF\n");
  // Content-Length must frame the body exactly.
  EXPECT_NE(response.find("Content-Length: " + std::to_string(body.size()) +
                          "\r\n"),
            std::string::npos);
  EXPECT_EQ(server.requests_served(), 1u);
  server.stop();
}

TEST(MetricsHttpServer, QueryStringAndUnknownPathsAndMethods) {
  MetricsHttpServer server(loopback_config(), [] { return "# EOF\n"; });
  ASSERT_TRUE(server.start());

  EXPECT_EQ(get(server.port(), "/metrics?x=1").rfind("HTTP/1.1 200", 0), 0u);
  EXPECT_EQ(get(server.port(), "/").rfind("HTTP/1.1 404", 0), 0u);
  EXPECT_EQ(get(server.port(), "/metricsX").rfind("HTTP/1.1 404", 0), 0u);
  EXPECT_EQ(http_exchange(server.port(),
                          "POST /metrics HTTP/1.1\r\n"
                          "Content-Length: 0\r\n\r\n")
                .rfind("HTTP/1.1 405", 0),
            0u);
  server.stop();
}

TEST(MetricsHttpServer, NullRenderServesBareEof) {
  MetricsHttpServer server(loopback_config(), nullptr);
  ASSERT_TRUE(server.start());
  EXPECT_EQ(body_of(get(server.port(), "/metrics")), "# EOF\n");
  server.stop();
}

TEST(MetricsHttpServer, StopIsIdempotentAndRestartable) {
  MetricsHttpServer server(loopback_config(), [] { return "# EOF\n"; });
  ASSERT_TRUE(server.start());
  const std::uint16_t first_port = server.port();
  EXPECT_NE(first_port, 0);
  server.stop();
  server.stop();  // no crash
  ASSERT_TRUE(server.start());
  EXPECT_EQ(body_of(get(server.port(), "/metrics")), "# EOF\n");
  server.stop();
}

TEST(MetricsHttpServer, ConcurrentScrapesDuringLiveTransferStayComplete) {
  // Serve a real engine registry and scrape it from several clients while
  // the pipeline runs: every response must be a 200 with a complete,
  // EOF-terminated OpenMetrics body containing the stage-clock gauges, and
  // the transfer itself must finish clean despite the snapshot storm.
  transfer::EngineConfig cfg;
  cfg.max_threads = 4;
  cfg.chunk_bytes = 64 * 1024;
  cfg.sender_buffer_bytes = 1.0 * kMiB;
  cfg.receiver_buffer_bytes = 1.0 * kMiB;
  transfer::TransferSession session(
      cfg, std::vector<double>(64, 512.0 * 1024));
  MetricsHttpServer server(
      loopback_config(), [&] { return render_openmetrics(session.registry()); });
  ASSERT_TRUE(server.start());

  session.start({2, 2, 2});

  std::atomic<int> good{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        const std::string response = get(server.port(), "/metrics");
        if (response.rfind("HTTP/1.1 200 OK\r\n", 0) != 0) continue;
        const std::string body = body_of(response);
        if (body.size() < 6 || body.substr(body.size() - 6) != "# EOF\n")
          continue;
        if (body.find("# TYPE automdt_stage_read_busy_ns gauge") ==
            std::string::npos)
          continue;
        if (body.find("automdt_pipeline_bottleneck") == std::string::npos)
          continue;
        good.fetch_add(1);
      }
    });
  }
  for (std::thread& s : scrapers) s.join();
  EXPECT_EQ(good.load(), 3 * 8);

  ASSERT_TRUE(session.wait_finished(30.0));
  EXPECT_EQ(session.stats().verify_failures, 0u);
  EXPECT_GE(server.requests_served(), 24u);
  server.stop();
}

}  // namespace
}  // namespace automdt::telemetry
