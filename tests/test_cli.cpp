// End-to-end tests of the `automdt` CLI binary: list presets, explore,
// train -> checkpoint -> transfer -> info, bad-input handling. The binary
// path is injected by CMake (AUTOMDT_CLI_PATH).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#ifndef AUTOMDT_CLI_PATH
#error "AUTOMDT_CLI_PATH must be defined by the build"
#endif

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_cli(const std::string& args) {
  const std::string cmd = std::string(AUTOMDT_CLI_PATH) + " " + args + " 2>&1";
  std::array<char, 4096> buffer;
  CommandResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) return result;
  while (std::fgets(buffer.data(), buffer.size(), pipe))
    result.output += buffer.data();
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Cli, NoArgsPrintsUsage) {
  const CommandResult r = run_cli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const CommandResult r = run_cli("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(Cli, ListPresets) {
  const CommandResult r = run_cli("list-presets");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("fabric"), std::string::npos);
  EXPECT_NE(r.output.find("<13,7,5>"), std::string::npos);
}

TEST(Cli, ExploreReportsEstimates) {
  const CommandResult r = run_cli("explore --preset network --steps 150");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("LinkEstimates{"), std::string::npos);
  EXPECT_NE(r.output.find("R_max="), std::string::npos);
}

TEST(Cli, UnknownPresetFails) {
  const CommandResult r = run_cli("explore --preset mars");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("unknown preset"), std::string::npos);
}

TEST(Cli, TrainTransferInfoPipeline) {
  const std::string ckpt = temp_path("automdt_cli_test.ckpt");
  // Tiny budget: this verifies plumbing, not policy quality.
  const CommandResult train = run_cli(
      "train --preset read --episodes 150 --out " + ckpt);
  ASSERT_EQ(train.exit_code, 0) << train.output;
  EXPECT_NE(train.output.find("checkpoint written"), std::string::npos);

  const CommandResult info = run_cli("info --ckpt " + ckpt);
  EXPECT_EQ(info.exit_code, 0);
  EXPECT_NE(info.output.find("policy.mean_head.weight"), std::string::npos);
  EXPECT_NE(info.output.find("total parameters"), std::string::npos);

  const CommandResult transfer = run_cli(
      "transfer --preset read --ckpt " + ckpt +
      " --files 2 --size-mb 100 --deterministic");
  EXPECT_EQ(transfer.exit_code, 0) << transfer.output;
  EXPECT_NE(transfer.output.find("completed"), std::string::npos);
  std::remove(ckpt.c_str());
}

TEST(Cli, TransferWithBaselineController) {
  const CommandResult r = run_cli(
      "transfer --preset read --controller oracle --files 2 --size-mb 100");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("Oracle"), std::string::npos);
}

TEST(Cli, TransferAutoMdtWithoutCkptFails) {
  const CommandResult r = run_cli("transfer --preset read --files 1");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("--ckpt"), std::string::npos);
}

CommandResult run_shell(const std::string& script) {
  std::array<char, 4096> buffer;
  CommandResult result;
  FILE* pipe = popen(("( " + script + " ) 2>&1").c_str(), "r");
  if (!pipe) return result;
  while (std::fgets(buffer.data(), buffer.size(), pipe))
    result.output += buffer.data();
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

TEST(Cli, ServeAndMonitorOnceRoundTrip) {
  // serve in the background on a fixed port, then monitor --once must print
  // one JSON registry snapshot from the live transfer.
  const std::string bin = AUTOMDT_CLI_PATH;
  const CommandResult r = run_shell(
      bin +
      " serve --files 2 --size-mb 4 --duration 8 --telemetry-port 28641"
      " >/dev/null & srv=$!; sleep 1; " +
      bin + " monitor --port 28641 --once; rc=$?; wait $srv; exit $rc");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"generation\":"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"metrics\":{"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"read.bytes\":"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"write.service_ns.p99\":"), std::string::npos)
      << r.output;
}

TEST(Cli, MonitorFailsCleanlyWithoutServer) {
  const CommandResult r = run_cli("monitor --port 28649 --once");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("cannot connect"), std::string::npos) << r.output;
}

TEST(Cli, TrainWritesTelemetryCsv) {
  const std::string ckpt = temp_path("automdt_cli_telemetry.ckpt");
  const std::string csv = temp_path("automdt_cli_telemetry.csv");
  const CommandResult r = run_cli(
      "train --preset read --episodes 150 --out " + ckpt +
      " --telemetry-csv " + csv);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("training telemetry written"), std::string::npos);
  std::FILE* f = std::fopen(csv.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::array<char, 4096> line{};
  ASSERT_NE(std::fgets(line.data(), line.size(), f), nullptr);
  const std::string header = line.data();
  EXPECT_NE(header.find("ppo.episode_reward"), std::string::npos) << header;
  EXPECT_NE(header.find("ppo.approx_kl"), std::string::npos) << header;
  EXPECT_NE(header.find("ppo.clip_fraction"), std::string::npos) << header;
  // At least one data row followed the header.
  EXPECT_NE(std::fgets(line.data(), line.size(), f), nullptr);
  std::fclose(f);
  std::remove(ckpt.c_str());
  std::remove(csv.c_str());
}

TEST(Cli, TransferWritesChromeTrace) {
  const std::string trace = temp_path("automdt_cli_transfer_trace.json");
  const CommandResult r = run_cli(
      "transfer --preset read --controller oracle --files 2 --size-mb 100"
      " --trace-out " + trace);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("trace written to"), std::string::npos) << r.output;
  std::FILE* f = std::fopen(trace.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  std::array<char, 4096> buf{};
  while (std::fgets(buf.data(), buf.size(), f)) contents += buf.data();
  std::fclose(f);
  EXPECT_NE(contents.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(contents.find("\"name\":\"step\""), std::string::npos);
  EXPECT_NE(contents.find("\"name\":\"decide\""), std::string::npos);
  EXPECT_NE(contents.find("\"optimizer\""), std::string::npos);
  std::remove(trace.c_str());
}

TEST(Cli, ServeWritesTraceAndInjectedStallDumpsFlightRecorder) {
  // The acceptance path: a real loopback-TCP serve window with tracing on
  // and one injected reader stall. It must produce (a) a Chrome trace with
  // wire-stamped sender/receiver spans, and (b) exactly one watchdog dump.
  const std::string bin = AUTOMDT_CLI_PATH;
  const std::string trace = temp_path("automdt_cli_serve_trace.json");
  const std::string flight_dir = temp_path("automdt_cli_flight");
  run_shell("rm -rf " + flight_dir + " && mkdir -p " + flight_dir);
  const CommandResult r = run_shell(
      bin +
      // duration < stall-seconds: exactly one transfer (the 2 s stall pins
      // it past the deadline), hence exactly one watchdog dump.
      " serve --files 2 --size-mb 4 --duration 2 --telemetry-port 28653"
      " --telemetry-sample 8 --trace-out " + trace +
      " --flight-dir " + flight_dir +
      " --inject-reader-stall 8 --stall-seconds 2 --watchdog-seconds 0.5");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("trace written to"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("watchdog:"), std::string::npos) << r.output;

  std::FILE* f = std::fopen(trace.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  std::array<char, 4096> buf{};
  while (std::fgets(buf.data(), buf.size(), f)) contents += buf.data();
  std::fclose(f);
  // Correlated tracks from both pipeline ends, with chunk-id span args.
  EXPECT_NE(contents.find("\"sender\""), std::string::npos);
  EXPECT_NE(contents.find("\"receiver\""), std::string::npos);
  EXPECT_NE(contents.find("\"chunk\":\"f"), std::string::npos);

  // Exactly one flight-recorder dump, containing snapshot + journal tail.
  const CommandResult ls = run_shell("ls " + flight_dir);
  int dumps = 0;
  for (std::size_t at = ls.output.find("automdt-flight-");
       at != std::string::npos;
       at = ls.output.find("automdt-flight-", at + 1))
    ++dumps;
  EXPECT_EQ(dumps, 1) << ls.output;
  const CommandResult dump = run_shell("cat " + flight_dir + "/*.log");
  EXPECT_NE(dump.output.find("pipeline stall"), std::string::npos)
      << dump.output;
  EXPECT_NE(dump.output.find("metrics snapshot"), std::string::npos);
  EXPECT_NE(dump.output.find("event journal tail"), std::string::npos);
  run_shell("rm -rf " + flight_dir);
  std::remove(trace.c_str());
}

TEST(Cli, ConfigOverrideApplied) {
  const std::string conf = temp_path("automdt_cli_test.conf");
  {
    std::FILE* f = std::fopen(conf.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("max_threads = 9\n", f);
    std::fclose(f);
  }
  // Exploration under a 9-thread cap still works.
  const CommandResult r =
      run_cli("explore --preset read --steps 100 --config " + conf);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::remove(conf.c_str());
}

TEST(Cli, BadConfigKeyRejected) {
  const std::string conf = temp_path("automdt_cli_bad.conf");
  {
    std::FILE* f = std::fopen(conf.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("link.per_stream_mpbs = 5\n", f);  // typo
    std::fclose(f);
  }
  const CommandResult r =
      run_cli("explore --preset read --config " + conf);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("unknown config key"), std::string::npos);
  std::remove(conf.c_str());
}

}  // namespace
