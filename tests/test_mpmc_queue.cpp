#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/mpmc_queue.hpp"

namespace automdt {
namespace {

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(MpmcQueue, TryPushRespectsCapacity) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(MpmcQueue, TryPopOnEmpty) {
  MpmcQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, CloseDrainsThenReturnsNullopt) {
  MpmcQueue<int> q(4);
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));  // rejected after close
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, CloseWakesBlockedPopper) {
  MpmcQueue<int> q(1);
  std::thread t([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  t.join();
}

TEST(MpmcQueue, CloseWakesBlockedPusher) {
  MpmcQueue<int> q(1);
  q.push(1);
  std::thread t([&] { EXPECT_FALSE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  t.join();
}

TEST(MpmcQueue, StressAllItemsDeliveredOnce) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 2000;
  MpmcQueue<int> q(16);
  std::atomic<long long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push(p * kPerProducer + i));
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum.fetch_add(*v);
        received.fetch_add(1);
      }
    });
  }
  // Join producers (first kProducers threads), then close.
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(MpmcQueue, MoveOnlyPayload) {
  MpmcQueue<std::unique_ptr<int>> q(2);
  q.push(std::make_unique<int>(5));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

}  // namespace
}  // namespace automdt
