// Gradient checks for every autodiff op against central finite differences.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"
#include "nn/grad_check.hpp"
#include "nn/module.hpp"
#include "nn/tensor.hpp"

namespace automdt::nn {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng,
                     double lo = -1.0, double hi = 1.0) {
  Matrix m(r, c);
  for (double& v : m.data()) v = rng.uniform(lo, hi);
  return m;
}

// Run a gradient check for a loss built from one leaf parameter.
void expect_grad_ok(Parameter& p,
                    const std::function<Tensor(const Tensor&)>& f,
                    double tol = 1e-6) {
  const GradCheckResult r = check_gradients(
      {&p}, [&] { return f(p.tensor()); });
  EXPECT_TRUE(r.ok(tol)) << "max_rel_error=" << r.max_rel_error
                         << " max_abs_error=" << r.max_abs_error;
}

class AutodiffTest : public ::testing::Test {
 protected:
  Rng rng_{2024};
};

TEST_F(AutodiffTest, AddGrad) {
  Parameter p("p", random_matrix(3, 4, rng_));
  const Tensor other = Tensor::constant(random_matrix(3, 4, rng_));
  expect_grad_ok(p, [&](const Tensor& t) { return sum(add(t, other)); });
}

TEST_F(AutodiffTest, SubGradBothSides) {
  Parameter p("p", random_matrix(2, 3, rng_));
  const Tensor c = Tensor::constant(random_matrix(2, 3, rng_));
  expect_grad_ok(p, [&](const Tensor& t) { return sum(sub(t, c)); });
  expect_grad_ok(p, [&](const Tensor& t) { return sum(sub(c, t)); });
}

TEST_F(AutodiffTest, MulGrad) {
  Parameter p("p", random_matrix(3, 3, rng_));
  const Tensor c = Tensor::constant(random_matrix(3, 3, rng_));
  expect_grad_ok(p, [&](const Tensor& t) { return sum(mul(t, c)); });
  // Self-product (grad flows through both operands of the same node).
  expect_grad_ok(p, [&](const Tensor& t) { return sum(mul(t, t)); });
}

TEST_F(AutodiffTest, ScaleAndNegAndAddScalar) {
  Parameter p("p", random_matrix(2, 2, rng_));
  expect_grad_ok(p, [&](const Tensor& t) { return sum(scale(t, -2.5)); });
  expect_grad_ok(p, [&](const Tensor& t) { return sum(neg(t)); });
  expect_grad_ok(p, [&](const Tensor& t) { return sum(add_scalar(t, 3.0)); });
}

TEST_F(AutodiffTest, RowBroadcastGrads) {
  Parameter a("a", random_matrix(4, 3, rng_));
  Parameter b("b", random_matrix(1, 3, rng_));
  const GradCheckResult r = check_gradients(
      {&a, &b},
      [&] { return sum(mul_row_broadcast(
                add_row_broadcast(a.tensor(), b.tensor()), b.tensor())); });
  EXPECT_TRUE(r.ok()) << r.max_rel_error;
}

TEST_F(AutodiffTest, TanhGrad) {
  Parameter p("p", random_matrix(3, 3, rng_, -2.0, 2.0));
  expect_grad_ok(p, [&](const Tensor& t) { return sum(tanh_op(t)); });
}

TEST_F(AutodiffTest, ReluGrad) {
  // Keep inputs away from the kink at 0.
  Matrix m = random_matrix(3, 3, rng_);
  for (double& v : m.data()) v += (v >= 0 ? 0.5 : -0.5);
  Parameter p("p", m);
  expect_grad_ok(p, [&](const Tensor& t) { return sum(relu(t)); });
}

TEST_F(AutodiffTest, ExpLogSquareGrads) {
  Parameter p("p", random_matrix(2, 3, rng_, 0.2, 2.0));
  expect_grad_ok(p, [&](const Tensor& t) { return sum(exp_op(t)); });
  expect_grad_ok(p, [&](const Tensor& t) { return sum(log_op(t)); }, 1e-5);
  expect_grad_ok(p, [&](const Tensor& t) { return sum(square(t)); });
}

TEST_F(AutodiffTest, ClampGradZeroOutside) {
  Matrix m = Matrix::from({{-2.0, 0.5, 3.0}});
  Parameter p("p", m);
  Tensor loss = sum(clamp(p.tensor(), -1.0, 1.0));
  p.zero_grad();
  loss.backward();
  EXPECT_DOUBLE_EQ(p.grad()(0, 0), 0.0);  // below lo
  EXPECT_DOUBLE_EQ(p.grad()(0, 1), 1.0);  // inside
  EXPECT_DOUBLE_EQ(p.grad()(0, 2), 0.0);  // above hi
}

TEST_F(AutodiffTest, MinEwGradRoutesToSmaller) {
  Parameter a("a", Matrix::from({{1.0, 5.0}}));
  Parameter b("b", Matrix::from({{2.0, 3.0}}));
  Tensor loss = sum(min_ew(a.tensor(), b.tensor()));
  a.zero_grad();
  b.zero_grad();
  loss.backward();
  EXPECT_DOUBLE_EQ(a.grad()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.grad()(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(b.grad()(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(b.grad()(0, 1), 1.0);
}

TEST_F(AutodiffTest, ReductionGrads) {
  Parameter p("p", random_matrix(3, 4, rng_));
  expect_grad_ok(p, [&](const Tensor& t) { return mean(t); });
  expect_grad_ok(p, [&](const Tensor& t) { return sum(mul(row_sum(t),
                                                          row_sum(t))); });
}

TEST_F(AutodiffTest, MatmulGradBothSides) {
  Parameter a("a", random_matrix(3, 4, rng_));
  Parameter b("b", random_matrix(4, 2, rng_));
  const GradCheckResult r = check_gradients(
      {&a, &b}, [&] { return sum(nn::matmul(a.tensor(), b.tensor())); });
  EXPECT_TRUE(r.ok()) << r.max_rel_error;
}

TEST_F(AutodiffTest, LayerNormGradAllInputs) {
  Parameter x("x", random_matrix(4, 6, rng_));
  Parameter gamma("g", random_matrix(1, 6, rng_, 0.5, 1.5));
  Parameter beta("b", random_matrix(1, 6, rng_));
  const GradCheckResult r = check_gradients(
      {&x, &gamma, &beta},
      [&] {
        // Weighted sum so the gradient is not uniform across elements.
        Rng wrng(7);
        const Tensor w = Tensor::constant(random_matrix(4, 6, wrng));
        return sum(mul(layer_norm(x.tensor(), gamma.tensor(), beta.tensor()),
                       w));
      },
      1e-5);
  EXPECT_TRUE(r.ok(1e-4)) << r.max_rel_error;
}

TEST_F(AutodiffTest, LogSoftmaxGrad) {
  Parameter p("p", random_matrix(3, 5, rng_, -2.0, 2.0));
  const Tensor w = Tensor::constant(random_matrix(3, 5, rng_));
  expect_grad_ok(p, [&](const Tensor& t) {
    return sum(mul(log_softmax(t), w));
  }, 1e-5);
}

TEST_F(AutodiffTest, LogSoftmaxRowsSumToOne) {
  Rng rng(3);
  Tensor t = Tensor::constant(random_matrix(4, 6, rng, -3.0, 3.0));
  const Tensor out = log_softmax(t);
  const Matrix& ls = out.value();
  for (std::size_t i = 0; i < ls.rows(); ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < ls.cols(); ++j) total += std::exp(ls(i, j));
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST_F(AutodiffTest, RowGatherGrad) {
  Parameter p("p", random_matrix(4, 5, rng_));
  const std::vector<int> idx = {0, 4, 2, 2};
  expect_grad_ok(p, [&](const Tensor& t) { return sum(row_gather(t, idx)); });
}

TEST_F(AutodiffTest, DetachCutsGradient) {
  Parameter p("p", Matrix::from({{2.0}}));
  Tensor loss = sum(mul(detach(p.tensor()), p.tensor()));
  p.zero_grad();
  loss.backward();
  // d/dp [c * p] = c = 2, not 2p = 4.
  EXPECT_DOUBLE_EQ(p.grad()(0, 0), 2.0);
}

TEST_F(AutodiffTest, GradsAccumulateAcrossBackwardCalls) {
  Parameter p("p", Matrix::from({{1.0}}));
  sum(scale(p.tensor(), 3.0)).backward();
  sum(scale(p.tensor(), 3.0)).backward();
  EXPECT_DOUBLE_EQ(p.grad()(0, 0), 6.0);
  p.zero_grad();
  EXPECT_DOUBLE_EQ(p.grad()(0, 0), 0.0);
}

TEST_F(AutodiffTest, DiamondGraphGradient) {
  // f = sum((t + t) * t) = sum(2 t^2) -> df/dt = 4t.
  Parameter p("p", Matrix::from({{3.0}}));
  Tensor t = p.tensor();
  sum(mul(add(t, t), t)).backward();
  EXPECT_DOUBLE_EQ(p.grad()(0, 0), 12.0);
}

TEST_F(AutodiffTest, ConstantGraphIsPruned) {
  Tensor a = Tensor::constant(Matrix::from({{1.0, 2.0}}));
  Tensor b = tanh_op(scale(a, 2.0));
  EXPECT_FALSE(b.requires_grad());
  EXPECT_TRUE(b.node()->inputs.empty());  // tape pruned for constants
}

TEST_F(AutodiffTest, DeepChainGradient) {
  // 40 tanh layers deep — exercises the iterative topo sort.
  Parameter p("p", Matrix::from({{0.3}}));
  const GradCheckResult r = check_gradients({&p}, [&] {
    Tensor t = p.tensor();
    for (int i = 0; i < 40; ++i) t = tanh_op(scale(t, 1.1));
    return sum(t);
  }, 1e-7);
  EXPECT_TRUE(r.ok(1e-4)) << r.max_rel_error;
}

}  // namespace
}  // namespace automdt::nn
