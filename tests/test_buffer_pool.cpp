#include "common/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace automdt {
namespace {

TEST(BufferPool, FirstAcquireIsAMissThenRecycles) {
  BufferPool pool(4);
  auto buf = pool.acquire(1024);
  EXPECT_EQ(buf.size(), 1024u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 0u);
  pool.release(std::move(buf));
  EXPECT_EQ(pool.pooled(), 1u);
  auto again = pool.acquire(512);
  EXPECT_EQ(again.size(), 512u);
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPool, AcquireResizesRecycledBufferUpward) {
  BufferPool pool(4);
  pool.release(std::vector<std::byte>(16));
  auto buf = pool.acquire(4096);
  EXPECT_EQ(buf.size(), 4096u);
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPool, ReleaseBeyondCapIsDropped) {
  BufferPool pool(2);
  for (int i = 0; i < 5; ++i) pool.release(std::vector<std::byte>(64));
  EXPECT_EQ(pool.pooled(), 2u);
}

TEST(BufferPool, SetMaxBuffersShrinksSurplus) {
  BufferPool pool(8);
  for (int i = 0; i < 8; ++i) pool.release(std::vector<std::byte>(64));
  ASSERT_EQ(pool.pooled(), 8u);
  pool.set_max_buffers(3);
  EXPECT_EQ(pool.pooled(), 3u);
  pool.set_max_buffers(0);
  EXPECT_EQ(pool.pooled(), 0u);
  pool.release(std::vector<std::byte>(64));
  EXPECT_EQ(pool.pooled(), 0u);  // cap of zero disables pooling entirely
}

TEST(BufferPool, ConcurrentAcquireReleaseStaysConsistent) {
  BufferPool pool(64);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        auto buf = pool.acquire(256);
        ASSERT_EQ(buf.size(), 256u);
        pool.release(std::move(buf));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(pool.hits() + pool.misses(), 2000u);
  EXPECT_LE(pool.pooled(), 64u);
}

TEST(ArenaLease, AcquireHandsOutWholeBlocksAndRecyclesOnReset) {
  ArenaPool pool(4096, 2);
  EXPECT_EQ(pool.blocks_free(), 2u);
  BufferLease a = pool.acquire();
  ASSERT_TRUE(a.valid());
  EXPECT_EQ(a.size(), 4096u);
  EXPECT_EQ(pool.blocks_free(), 1u);
  a.reset();
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(pool.blocks_free(), 2u);
  EXPECT_EQ(pool.heap_fallbacks(), 0u);
}

TEST(ArenaLease, MoveTransfersOwnershipWithoutRecycling) {
  ArenaPool pool(256, 1);
  BufferLease a = pool.acquire();
  std::byte* data = a.data();
  BufferLease b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): the contract
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(pool.blocks_free(), 0u);  // still owned, not recycled
  b.reset();
  EXPECT_EQ(pool.blocks_free(), 1u);
}

TEST(ArenaLease, SubspanKeepsBlockAliveAfterParentReset) {
  // subspan() is the one sanctioned aliasing: the receiver carves per-chunk
  // payload views out of a recv block, and the block must survive until the
  // LAST view drops — even if the whole-block lease goes first.
  ArenaPool pool(1024, 1);
  BufferLease block = pool.acquire();
  block.data()[100] = std::byte{0xAB};
  BufferLease view = block.subspan(100, 16);
  ASSERT_TRUE(view.valid());
  EXPECT_EQ(view.size(), 16u);
  block.reset();
  EXPECT_EQ(pool.blocks_free(), 0u);  // the view still pins the block
  EXPECT_EQ(view.data()[0], std::byte{0xAB});
  view.reset();
  EXPECT_EQ(pool.blocks_free(), 1u);
}

TEST(ArenaLease, SubspanOutOfRangeIsNull) {
  ArenaPool pool(64, 1);
  BufferLease block = pool.acquire();
  EXPECT_FALSE(block.subspan(60, 8).valid());
  EXPECT_TRUE(block.subspan(60, 4).valid());
}

TEST(ArenaLease, TruncateOnlyShrinks) {
  ArenaPool pool(512, 1);
  BufferLease lease = pool.acquire();
  lease.truncate(100);
  EXPECT_EQ(lease.size(), 100u);
  lease.truncate(400);  // growing back is not allowed
  EXPECT_EQ(lease.size(), 100u);
}

TEST(ArenaLease, ExhaustionFallsBackToHeapBlocks) {
  // Heap-fallback blocks are genuinely freed on release (not recycled), so
  // any use-after-release on this path is an ASan-visible bug — that is the
  // lease-lifecycle canary the debug builds rely on. They are also invisible
  // to io_uring buffer registration, hence kUnregistered.
  ArenaPool pool(128, 1);
  BufferLease a = pool.acquire();
  BufferLease b = pool.acquire();  // arena empty -> heap
  ASSERT_TRUE(b.valid());
  EXPECT_EQ(b.size(), 128u);
  EXPECT_EQ(pool.heap_fallbacks(), 1u);
  EXPECT_NE(a.registered_index(), BufferLease::kUnregistered);
  EXPECT_EQ(b.registered_index(), BufferLease::kUnregistered);
  b.data()[0] = std::byte{1};
  b.reset();  // delete[] under ASan: any stale view would trip it here
  a.reset();
  EXPECT_EQ(pool.blocks_free(), 1u);
}

TEST(ArenaLease, RegisteredIovecsDescribeEveryBlock) {
  ArenaPool pool(256, 3);
  const iovec* iov = pool.registered_iovecs();
  for (std::size_t i = 0; i < pool.block_count(); ++i) {
    EXPECT_EQ(iov[i].iov_len, 256u);
    ASSERT_NE(iov[i].iov_base, nullptr);
  }
  // A lease's registered_index addresses its own block in the table.
  BufferLease lease = pool.acquire();
  const std::uint32_t idx = lease.registered_index();
  ASSERT_LT(idx, pool.block_count());
  EXPECT_EQ(iov[idx].iov_base, lease.data());
}

TEST(ArenaLease, PoisonOnReleaseScribblesRecycledBlocks) {
  // The plain-build (non-ASan) canary: a stage that reads a payload after
  // releasing its lease sees 0xDD garbage, which the engine's checksum
  // verification then flags. Prove the scribble actually happens.
  ArenaPool pool(64, 1, /*poison_on_release=*/true);
  BufferLease a = pool.acquire();
  a.data()[0] = std::byte{0x42};
  a.reset();
  BufferLease again = pool.acquire();
  EXPECT_EQ(again.data()[0], std::byte{0xDD});
}

TEST(ArenaLease, ConcurrentAcquireReleaseKeepsFreeListConsistent) {
  ArenaPool pool(256, 8);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        BufferLease lease = pool.acquire();
        lease.data()[0] = std::byte{static_cast<unsigned char>(i)};
        BufferLease view = lease.subspan(0, 1);
        lease.reset();
        view.reset();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(pool.blocks_free(), 8u);
  EXPECT_EQ(pool.acquires(), 2000u);
}

}  // namespace
}  // namespace automdt
