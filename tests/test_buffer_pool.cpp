#include "common/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace automdt {
namespace {

TEST(BufferPool, FirstAcquireIsAMissThenRecycles) {
  BufferPool pool(4);
  auto buf = pool.acquire(1024);
  EXPECT_EQ(buf.size(), 1024u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 0u);
  pool.release(std::move(buf));
  EXPECT_EQ(pool.pooled(), 1u);
  auto again = pool.acquire(512);
  EXPECT_EQ(again.size(), 512u);
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPool, AcquireResizesRecycledBufferUpward) {
  BufferPool pool(4);
  pool.release(std::vector<std::byte>(16));
  auto buf = pool.acquire(4096);
  EXPECT_EQ(buf.size(), 4096u);
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPool, ReleaseBeyondCapIsDropped) {
  BufferPool pool(2);
  for (int i = 0; i < 5; ++i) pool.release(std::vector<std::byte>(64));
  EXPECT_EQ(pool.pooled(), 2u);
}

TEST(BufferPool, SetMaxBuffersShrinksSurplus) {
  BufferPool pool(8);
  for (int i = 0; i < 8; ++i) pool.release(std::vector<std::byte>(64));
  ASSERT_EQ(pool.pooled(), 8u);
  pool.set_max_buffers(3);
  EXPECT_EQ(pool.pooled(), 3u);
  pool.set_max_buffers(0);
  EXPECT_EQ(pool.pooled(), 0u);
  pool.release(std::vector<std::byte>(64));
  EXPECT_EQ(pool.pooled(), 0u);  // cap of zero disables pooling entirely
}

TEST(BufferPool, ConcurrentAcquireReleaseStaysConsistent) {
  BufferPool pool(64);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        auto buf = pool.acquire(256);
        ASSERT_EQ(buf.size(), 256u);
        pool.release(std::move(buf));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(pool.hits() + pool.misses(), 2000u);
  EXPECT_LE(pool.pooled(), 64u);
}

}  // namespace
}  // namespace automdt
