#include <gtest/gtest.h>

#include "rl/networks.hpp"

namespace automdt::rl {
namespace {

PpoConfig small_config() {
  PpoConfig c = PpoConfig::fast_defaults();
  c.hidden_dim = 16;
  return c;
}

TEST(PolicyNetwork, OutputShapes) {
  Rng rng(1);
  PolicyNetwork net(8, 3, small_config(), rng);
  nn::Tensor states = nn::Tensor::constant(nn::Matrix(5, 8, 0.1));
  const nn::DiagonalGaussian dist = net.forward(states);
  EXPECT_EQ(dist.mean().rows(), 5u);
  EXPECT_EQ(dist.mean().cols(), 3u);
  EXPECT_EQ(dist.log_std().rows(), 1u);
  EXPECT_EQ(dist.log_std().cols(), 3u);
}

TEST(PolicyNetwork, LogStdClamped) {
  Rng rng(2);
  PpoConfig cfg = small_config();
  cfg.log_std_init = 100.0;  // way past the clamp
  cfg.log_std_max = 1.5;
  PolicyNetwork net(8, 3, cfg, rng);
  const nn::DiagonalGaussian dist = net.forward_one(std::vector<double>(8, 0.0));
  for (double v : dist.log_std().value().data()) EXPECT_DOUBLE_EQ(v, 1.5);
}

TEST(PolicyNetwork, MeanBiasShiftsActions) {
  Rng rng(3);
  PolicyNetwork net(8, 3, small_config(), rng);
  const std::vector<double> s(8, 0.0);
  net.set_mean_bias(15.0);
  const nn::DiagonalGaussian d = net.forward_one(s);
  const nn::Matrix mode = d.mode();
  for (double v : mode.data()) EXPECT_NEAR(v, 15.0, 3.0);
}

TEST(PolicyNetwork, DifferentStatesDifferentMeans) {
  Rng rng(4);
  PolicyNetwork net(8, 3, small_config(), rng);
  nn::DiagonalGaussian a = net.forward_one(std::vector<double>(8, 0.0));
  nn::DiagonalGaussian b = net.forward_one(std::vector<double>(8, 1.0));
  EXPECT_NE(a.mode(), b.mode());
}

TEST(ValueNetwork, ScalarOutput) {
  Rng rng(5);
  ValueNetwork net(8, small_config(), rng);
  nn::Tensor states = nn::Tensor::constant(nn::Matrix(4, 8, 0.2));
  const nn::Tensor v = net.forward(states);
  EXPECT_EQ(v.rows(), 4u);
  EXPECT_EQ(v.cols(), 1u);
  EXPECT_DOUBLE_EQ(net.value_of(std::vector<double>(8, 0.2)), v.value()(0, 0));
}

TEST(DiscretePolicyNetwork, HeadsAndClasses) {
  Rng rng(6);
  DiscretePolicyNetwork net(8, 30, small_config(), rng);
  EXPECT_EQ(net.classes_per_head(), 30);
  const nn::MultiCategorical dist =
      net.forward_one(std::vector<double>(8, 0.0));
  EXPECT_EQ(dist.head_count(), 3u);
  Rng srng(1);
  const auto idx = dist.sample(srng);
  for (int h = 0; h < 3; ++h) {
    EXPECT_GE(idx[h][0], 0);
    EXPECT_LT(idx[h][0], 30);
  }
}

TEST(Networks, ParameterNamesAreUnique) {
  Rng rng(7);
  PolicyNetwork p(8, 3, small_config(), rng);
  ValueNetwork v(8, small_config(), rng);
  std::set<std::string> names;
  for (auto* param : p.parameters()) names.insert(param->name());
  for (auto* param : v.parameters()) names.insert(param->name());
  EXPECT_EQ(names.size(), p.parameters().size() + v.parameters().size());
}

}  // namespace
}  // namespace automdt::rl
