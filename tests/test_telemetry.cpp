// Metrics registry, histogram, and trace-span primitives.
#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "telemetry/trace.hpp"

namespace automdt::telemetry {
namespace {

TEST(TelemetryCounter, AddReturnsPostAddValue) {
  Counter c;
  EXPECT_EQ(c.add(), 1u);
  EXPECT_EQ(c.add(41), 42u);
  EXPECT_EQ(c.value(), 42u);
  c.sub(2);
  EXPECT_EQ(c.value(), 40u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(TelemetryRegistry, FindOrCreateReturnsSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.counter("read.bytes");
  Counter* b = registry.counter("read.bytes");
  EXPECT_EQ(a, b);
  Gauge* g1 = registry.gauge("occupancy");
  Gauge* g2 = registry.gauge("occupancy");
  EXPECT_EQ(g1, g2);
  LogLinearHistogram* h1 = registry.histogram("latency");
  LogLinearHistogram* h2 = registry.histogram("latency");
  EXPECT_EQ(h1, h2);
  // 1 counter + 1 gauge + 1 histogram.
  EXPECT_EQ(registry.metric_count(), 3u);
}

TEST(TelemetryRegistry, SnapshotInRegistrationOrderWithGeneration) {
  MetricsRegistry registry;
  registry.counter("z.second")->add(2);
  registry.counter("a.first")->add(1);
  registry.register_callback("m.callback", [] { return 7.5; });

  MetricsSnapshot s1 = registry.snapshot();
  ASSERT_EQ(s1.samples.size(), 3u);
  // Registration order, not name order.
  EXPECT_EQ(s1.samples[0].name, "z.second");
  EXPECT_EQ(s1.samples[1].name, "a.first");
  EXPECT_EQ(s1.samples[2].name, "m.callback");
  EXPECT_DOUBLE_EQ(s1.value_or("m.callback"), 7.5);
  EXPECT_TRUE(s1.has("a.first"));
  EXPECT_FALSE(s1.has("missing"));
  EXPECT_DOUBLE_EQ(s1.value_or("missing", -1.0), -1.0);

  MetricsSnapshot s2 = registry.snapshot();
  EXPECT_EQ(s2.generation, s1.generation + 1);
  EXPECT_GE(s2.uptime_s, s1.uptime_s);
}

TEST(TelemetryRegistry, ConcurrentWritersNeverLoseCounts) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry] {
      // find-or-create raced across threads on purpose.
      Counter* c = registry.counter("shared.counter");
      LogLinearHistogram* h = registry.histogram("shared.hist");
      Gauge* g = registry.gauge("shared.gauge");
      for (int i = 0; i < kPerThread; ++i) {
        c->add();
        h->record(static_cast<std::uint64_t>(i));
        g->set(static_cast<double>(i));
        if (i % 1024 == 0) (void)registry.snapshot();  // concurrent sampling
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(registry.counter("shared.counter")->value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.histogram("shared.hist")->snapshot().count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(TelemetryRegistry, ResetZeroesOwnedMetrics) {
  MetricsRegistry registry;
  registry.counter("c")->add(5);
  registry.gauge("g")->set(3.5);
  registry.histogram("h")->record(100);
  registry.reset();
  EXPECT_EQ(registry.counter("c")->value(), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("g")->value(), 0.0);
  EXPECT_EQ(registry.histogram("h")->snapshot().count, 0u);
}

TEST(TelemetryHistogram, ExactBelowSubBucketCount) {
  // Values below 2^kSubBucketBits land in singleton buckets: recorded value
  // and reported bucket bound agree exactly.
  for (std::uint64_t v : {0u, 1u, 5u, 31u}) {
    const std::size_t idx = LogLinearHistogram::bucket_index(v);
    EXPECT_EQ(LogLinearHistogram::bucket_lower(idx), v) << v;
    EXPECT_EQ(LogLinearHistogram::bucket_upper(idx), v) << v;
  }
}

TEST(TelemetryHistogram, BucketBoundariesArePowerOfTwoEdges) {
  // At each octave boundary the bucket index jumps to a new group of
  // kSubBucketCount linear sub-buckets; check exact edges around 2^6.
  const std::size_t idx63 = LogLinearHistogram::bucket_index(63);
  const std::size_t idx64 = LogLinearHistogram::bucket_index(64);
  EXPECT_EQ(idx64, idx63 + 1);
  EXPECT_EQ(LogLinearHistogram::bucket_lower(idx64), 64u);
  // 64..127 is covered by 32 sub-buckets of width 2: 64 and 65 share one.
  EXPECT_EQ(LogLinearHistogram::bucket_index(65), idx64);
  EXPECT_EQ(LogLinearHistogram::bucket_upper(idx64), 65u);
  EXPECT_EQ(LogLinearHistogram::bucket_index(66), idx64 + 1);
}

TEST(TelemetryHistogram, RelativeErrorBounded) {
  // Log-linear with 5 sub-bucket bits: bucket_upper overestimates the true
  // value by at most 2^-5 relative.
  for (std::uint64_t v = 1; v < (1ull << 40); v = v * 3 + 7) {
    const std::size_t idx = LogLinearHistogram::bucket_index(v);
    const std::uint64_t lo = LogLinearHistogram::bucket_lower(idx);
    const std::uint64_t hi = LogLinearHistogram::bucket_upper(idx);
    ASSERT_LE(lo, v);
    ASSERT_GE(hi, v);
    EXPECT_LE(static_cast<double>(hi - lo), static_cast<double>(v) / 32.0 + 1.0)
        << v;
  }
}

TEST(TelemetryHistogram, PercentilesAndMean) {
  LogLinearHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  // p50 must land within bucket error of 500, p99 within error of 990.
  EXPECT_NEAR(snap.percentile(50.0), 500.0, 500.0 / 16.0);
  EXPECT_NEAR(snap.percentile(99.0), 990.0, 990.0 / 16.0);
  EXPECT_GE(snap.max_value(), 1000u);
  EXPECT_NEAR(snap.mean(), 500.5, 1e-9);  // sum is tracked exactly
  // Degenerate cases.
  LogLinearHistogram empty;
  EXPECT_DOUBLE_EQ(empty.snapshot().percentile(50.0), 0.0);
  EXPECT_EQ(empty.snapshot().count, 0u);
}

TEST(TelemetryJson, SnapshotJsonIsWellFormed) {
  MetricsRegistry registry;
  registry.counter("read.bytes")->add(1024);
  registry.gauge("ratio")->set(0.25);
  std::ostringstream os;
  write_snapshot_json(os, registry.snapshot());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"generation\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"read.bytes\":1024"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ratio\":0.25"), std::string::npos) << json;
}

TEST(TelemetryJson, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
}

TEST(TraceSampler, ZeroOffOneAlways) {
  TraceSampler off(0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(off.should_sample());
  TraceSampler always(1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(always.should_sample());
  TraceSampler tenth(10);
  int sampled = 0;
  for (int i = 0; i < 1000; ++i) sampled += tenth.should_sample() ? 1 : 0;
  EXPECT_EQ(sampled, 100);
}

TEST(TraceSpan, NegativeSpansCountSkewInsteadOfWrapping) {
  Counter skew;
  EXPECT_EQ(span_ns(100, 250, &skew), 150u);
  EXPECT_EQ(skew.value(), 0u);
  EXPECT_EQ(span_ns(250, 100, &skew), 0u);
  EXPECT_EQ(skew.value(), 1u);
}

}  // namespace
}  // namespace automdt::telemetry
