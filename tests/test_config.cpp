#include <gtest/gtest.h>

#include "common/config.hpp"

namespace automdt {
namespace {

TEST(Config, ParseBasics) {
  const Config c = Config::parse(
      "# comment line\n"
      "link.aggregate_mbps = 25000\n"
      "name= fabric\n"
      "  spaced.key   =   spaced value  \n"
      "\n"
      "flag = true ; trailing comment\n");
  EXPECT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c.get_double("link.aggregate_mbps"), 25000.0);
  EXPECT_EQ(c.get_string("name"), "fabric");
  EXPECT_EQ(c.get_string("spaced.key"), "spaced value");
  EXPECT_TRUE(c.get_bool("flag"));
}

TEST(Config, SyntaxErrorsThrow) {
  EXPECT_THROW(Config::parse("not an assignment\n"), ConfigError);
  EXPECT_THROW(Config::parse("= valuewithoutkey\n"), ConfigError);
}

TEST(Config, MissingKeyThrows) {
  const Config c = Config::parse("a = 1\n");
  EXPECT_THROW(c.get_string("b"), ConfigError);
  EXPECT_THROW(c.get_double("b"), ConfigError);
}

TEST(Config, FallbackValues) {
  const Config c = Config::parse("a = 1\n");
  EXPECT_EQ(c.get_string("b", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(c.get_double("b", 2.5), 2.5);
  EXPECT_EQ(c.get_int("b", 7), 7);
  EXPECT_TRUE(c.get_bool("b", true));
}

TEST(Config, TypeParseErrors) {
  const Config c = Config::parse("x = hello\ny = 1.5\n");
  EXPECT_THROW(c.get_double("x"), ConfigError);
  EXPECT_THROW(c.get_int("y"), ConfigError);  // 1.5 is not an integer
  EXPECT_THROW(c.get_bool("x"), ConfigError);
}

TEST(Config, BoolSpellings) {
  const Config c = Config::parse(
      "a = TRUE\nb = off\nc = 1\nd = No\n");
  EXPECT_TRUE(c.get_bool("a"));
  EXPECT_FALSE(c.get_bool("b"));
  EXPECT_TRUE(c.get_bool("c"));
  EXPECT_FALSE(c.get_bool("d"));
}

TEST(Config, SettersAndRoundTrip) {
  Config c;
  c.set("alpha", 1.5);
  c.set("beta", static_cast<long long>(3));
  c.set("gamma", "text");
  const Config back = Config::parse(c.to_string());
  EXPECT_DOUBLE_EQ(back.get_double("alpha"), 1.5);
  EXPECT_EQ(back.get_int("beta"), 3);
  EXPECT_EQ(back.get_string("gamma"), "text");
}

TEST(Config, PrefixQuery) {
  const Config c = Config::parse("link.a = 1\nlink.b = 2\nppo.lr = 3\n");
  const auto link_keys = c.keys_with_prefix("link.");
  EXPECT_EQ(link_keys.size(), 2u);
  EXPECT_EQ(c.keys().size(), 3u);
}

TEST(Config, MergeOverrides) {
  Config base = Config::parse("a = 1\nb = 2\n");
  const Config over = Config::parse("b = 20\nc = 30\n");
  base.merge(over);
  EXPECT_EQ(base.get_int("a"), 1);
  EXPECT_EQ(base.get_int("b"), 20);
  EXPECT_EQ(base.get_int("c"), 30);
}

TEST(Config, LoadMissingFileThrows) {
  EXPECT_THROW(Config::load("/nonexistent/automdt.conf"), ConfigError);
}

}  // namespace
}  // namespace automdt
