// Lock-free event journal (telemetry/journal.hpp): ring semantics, the
// LOG_* sink bridge, and the N-thread concurrent-logging regression the
// seqlock-per-slot design exists for.
#include "telemetry/journal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"

namespace automdt::telemetry {
namespace {

TEST(Journal, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventJournal(0).capacity(), 64u);
  EXPECT_EQ(EventJournal(64).capacity(), 64u);
  EXPECT_EQ(EventJournal(65).capacity(), 128u);
  EXPECT_EQ(EventJournal(1000).capacity(), 1024u);
}

TEST(Journal, TailReturnsEventsInAppendOrder) {
  EventJournal journal(64);
  journal.append(LogLevel::kInfo, "first");
  journal.append(LogLevel::kWarn, "second");
  journal.append(LogLevel::kError, "third");

  const auto events = journal.tail(10);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].text, "first");
  EXPECT_EQ(events[0].level, LogLevel::kInfo);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_EQ(events[2].text, "third");
  EXPECT_LE(events[0].t_ns, events[2].t_ns);
  EXPECT_EQ(journal.appended(), 3u);
  EXPECT_EQ(journal.dropped(), 0u);
}

TEST(Journal, OverwritesOldestAndKeepsTheMostRecent) {
  EventJournal journal(64);
  for (int i = 0; i < 200; ++i)
    journal.append(LogLevel::kInfo, "event " + std::to_string(i));

  const auto events = journal.tail(1000);
  ASSERT_EQ(events.size(), 64u);  // ring capacity, oldest lapped away
  EXPECT_EQ(events.front().seq, 136u);
  EXPECT_EQ(events.back().seq, 199u);
  EXPECT_EQ(events.back().text, "event 199");
  EXPECT_EQ(journal.appended(), 200u);
}

TEST(Journal, TailTrimsToRequestedCount) {
  EventJournal journal(64);
  for (int i = 0; i < 10; ++i)
    journal.append(LogLevel::kInfo, std::to_string(i));
  const auto events = journal.tail(3);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].text, "7");  // the *last* 3, oldest first
  EXPECT_EQ(events[2].text, "9");
}

TEST(Journal, LongTextIsTruncatedNotCorrupted) {
  EventJournal journal(64);
  const std::string longline(4 * EventJournal::kTextBytes, 'x');
  journal.append(LogLevel::kInfo, longline);
  const auto events = journal.tail(1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].text.size(), EventJournal::kTextBytes - 1);
  EXPECT_EQ(events[0].text, longline.substr(0, EventJournal::kTextBytes - 1));
}

TEST(Journal, DumpFormatsTailWithLevelsAndDropCount) {
  EventJournal journal(64);
  journal.append(LogLevel::kWarn, "something odd");
  journal.append(LogLevel::kError, "something bad");
  std::ostringstream os;
  journal.dump(os, 10);
  const std::string text = os.str();
  EXPECT_NE(text.find("WARN"), std::string::npos);
  EXPECT_NE(text.find("ERROR"), std::string::npos);
  EXPECT_NE(text.find("something bad"), std::string::npos);
}

TEST(Journal, BridgesLogMacrosWhileInstalled) {
  EventJournal journal(64);
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kError);  // keep stderr quiet; kError still passes
  install_log_journal(&journal);
  LOG_ERROR("through the bridge " << 42);
  install_log_journal(nullptr);
  LOG_ERROR("after detach");  // must NOT land in the journal
  set_log_level(prev);

  const auto events = journal.tail(10);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].text, "through the bridge 42");
  EXPECT_EQ(events[0].level, LogLevel::kError);
}

// The concurrent-logging regression: many threads hammering LOG_* through
// the installed sink must never lose accounting (appended + nothing torn)
// and every surviving event must be byte-identical to something a writer
// actually wrote. Run under TSan in CI (debug-tsan job).
TEST(JournalConcurrency, ManyThreadsLoggingConcurrently) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  EventJournal journal(1024);
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kOff);  // macro path: below threshold, direct append
  install_log_journal(&journal);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        journal.append(LogLevel::kInfo,
                       "worker " + std::to_string(t) + " line " +
                           std::to_string(i) + " padding-padding-padding");
      }
    });
  }
  for (auto& th : threads) th.join();
  install_log_journal(nullptr);
  set_log_level(prev);

  EXPECT_EQ(journal.appended(), kThreads * kPerThread);
  const auto events = journal.tail(2048);
  // With all writers joined every slot is stable, so the sweep returns the
  // whole ring (a slot could in principle have had every one of its ~15
  // writes collide-and-drop, hence >=).
  EXPECT_LE(events.size(), journal.capacity());
  ASSERT_GE(events.size() + journal.dropped(), journal.capacity());

  std::set<std::uint64_t> seqs;
  for (const auto& e : events) {
    // No torn text: every event must parse back to "worker T line I ...".
    int t = -1, i = -1;
    ASSERT_EQ(std::sscanf(e.text.c_str(), "worker %d line %d", &t, &i), 2)
        << "torn text: " << e.text;
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, kPerThread);
    EXPECT_TRUE(seqs.insert(e.seq).second) << "duplicate seq " << e.seq;
  }
  // Sorted by sequence, i.e. global append order.
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const JournalEvent& a, const JournalEvent& b) {
                               return a.seq < b.seq;
                             }));
}

// Same shape but through the LOG_* macros with a live threshold — the path
// the engine's workers actually take when a sink is installed.
TEST(JournalConcurrency, LogMacrosFromManyThreads) {
  constexpr int kThreads = 6;
  constexpr int kPerThread = 500;
  EventJournal journal(4096);
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kError);
  install_log_journal(&journal);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        LOG_ERROR("");  // empty: stderr stays clean, sink still invoked
        (void)t;
      }
    });
  }
  for (auto& th : threads) th.join();
  install_log_journal(nullptr);
  set_log_level(prev);

  EXPECT_EQ(journal.appended(), kThreads * kPerThread);
  EXPECT_EQ(journal.tail(4096).size(),
            kThreads * kPerThread - journal.dropped());
}

}  // namespace
}  // namespace automdt::telemetry
