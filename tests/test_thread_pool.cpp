#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace automdt {
namespace {

TEST(ThreadPool, StartsAndStopsCleanly) {
  for (int i = 0; i < 8; ++i) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
  }
}

TEST(ThreadPool, SizeOneSpawnsNoWorkersAndRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  int calls = 0;
  pool.parallel_for(0, 100, 10, [&](std::size_t lo, std::size_t hi) {
    ++calls;  // single inline invocation, no synchronization needed
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
  EXPECT_GE(ThreadPool::resolve_threads(-5), 1);
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  // Odd grain so the last chunk is a partial one.
  pool.parallel_for(0, kN, 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ChunksNeverExceedGrain) {
  ThreadPool pool(4);
  std::atomic<bool> ok{true};
  pool.parallel_for(3, 1003, 16, [&](std::size_t lo, std::size_t hi) {
    if (hi <= lo || hi - lo > 16) ok.store(false);
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  pool.parallel_for(7, 3, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SmallRangeRunsOnCaller) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 4, 8, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_FALSE(ThreadPool::on_worker_thread());
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 4u);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000, 1,
                        [&](std::size_t lo, std::size_t) {
                          if (lo == 500) throw std::runtime_error("boom");
                        }),
      std::runtime_error);

  // The pool must survive a cancelled region and run the next one fully.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(0, 100, 3, [&](std::size_t lo, std::size_t hi) {
    std::size_t s = 0;
    for (std::size_t i = lo; i < hi; ++i) s += i;
    sum.fetch_add(s);
  });
  EXPECT_EQ(sum.load(), 99u * 100u / 2u);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 64, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // Inner region from (possibly) a worker thread: must run inline.
      pool.parallel_for(0, 10, 2, [&](std::size_t ilo, std::size_t ihi) {
        total.fetch_add(ihi - ilo, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 64u * 10u);
}

TEST(ThreadPool, ConcurrentRegionsSerializeCorrectly) {
  // Two threads hammering the same pool: regions must not interleave state.
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  std::thread other([&] {
    for (int r = 0; r < 50; ++r)
      pool.parallel_for(0, 200, 9, [&](std::size_t lo, std::size_t hi) {
        total.fetch_add(hi - lo, std::memory_order_relaxed);
      });
  });
  for (int r = 0; r < 50; ++r)
    pool.parallel_for(0, 200, 9, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(hi - lo, std::memory_order_relaxed);
    });
  other.join();
  EXPECT_EQ(total.load(), 2u * 50u * 200u);
}

TEST(ThreadPool, GlobalPoolResizes) {
  set_global_thread_pool_size(3);
  EXPECT_EQ(global_thread_pool().size(), 3);
  set_global_thread_pool_size(1);
  EXPECT_EQ(global_thread_pool().size(), 1);
  set_global_thread_pool_size(0);  // restore the hardware default
  EXPECT_GE(global_thread_pool().size(), 1);
}

}  // namespace
}  // namespace automdt
