#include <gtest/gtest.h>

#include "core/config_bindings.hpp"
#include "testbed/presets.hpp"

namespace automdt::core {
namespace {

TEST(ConfigBindings, TestbedOverridesApplied) {
  const Config c = Config::parse(
      "link.per_stream_mbps = 500\n"
      "link.aggregate_mbps = 9000\n"
      "source.per_thread_mbps = 321\n"
      "dest.contention_knee = 7\n"
      "buffers.sender_gib = 2\n"
      "max_threads = 12\n"
      "utility.k = 1.05\n");
  const auto base = testbed::fabric_ncsa_tacc().config;
  const auto out = apply_testbed_overrides(base, c);
  EXPECT_DOUBLE_EQ(out.link.per_stream_mbps, 500.0);
  EXPECT_DOUBLE_EQ(out.link.aggregate_mbps, 9000.0);
  EXPECT_DOUBLE_EQ(out.source_storage.per_thread_mbps, 321.0);
  EXPECT_EQ(out.dest_storage.contention_knee, 7);
  EXPECT_DOUBLE_EQ(out.sender_buffer_bytes, 2.0 * kGiB);
  EXPECT_EQ(out.max_threads, 12);
  EXPECT_DOUBLE_EQ(out.utility.k, 1.05);
  // Untouched fields keep the preset values.
  EXPECT_DOUBLE_EQ(out.dest_storage.per_thread_mbps,
                   base.dest_storage.per_thread_mbps);
}

TEST(ConfigBindings, UnknownTestbedKeyRejected) {
  const Config c = Config::parse("link.per_stream_mpbs = 500\n");  // typo
  EXPECT_THROW(
      apply_testbed_overrides(testbed::cloudlab_1g().config, c),
      ConfigError);
}

TEST(ConfigBindings, PpoKeysIgnoredByTestbedBinding) {
  const Config c = Config::parse("ppo.lr = 0.01\n");
  EXPECT_NO_THROW(
      apply_testbed_overrides(testbed::cloudlab_1g().config, c));
}

TEST(ConfigBindings, PpoOverridesApplied) {
  const Config c = Config::parse(
      "ppo.max_episodes = 123\n"
      "ppo.lr = 0.0123\n"
      "ppo.hidden_dim = 96\n"
      "ppo.episodes_per_batch = 2\n"
      "ppo.seed = 99\n");
  const rl::PpoConfig out = apply_ppo_overrides(rl::PpoConfig{}, c);
  EXPECT_EQ(out.max_episodes, 123);
  EXPECT_DOUBLE_EQ(out.lr, 0.0123);
  EXPECT_EQ(out.hidden_dim, 96u);
  EXPECT_EQ(out.episodes_per_batch, 2);
  EXPECT_EQ(out.seed, 99u);
  // Defaults retained elsewhere.
  EXPECT_DOUBLE_EQ(out.clip_epsilon, rl::PpoConfig{}.clip_epsilon);
}

TEST(ConfigBindings, EmptyConfigIsIdentity) {
  const Config c;
  const auto base = testbed::bottleneck_write().config;
  const auto out = apply_testbed_overrides(base, c);
  EXPECT_DOUBLE_EQ(out.link.per_stream_mbps, base.link.per_stream_mbps);
  EXPECT_EQ(out.max_threads, base.max_threads);
}

}  // namespace
}  // namespace automdt::core
