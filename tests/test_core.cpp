// The public facade: full offline pipeline, checkpoint persistence, and the
// production controller path.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/automdt.hpp"
#include "optimizers/runner.hpp"
#include "testbed/presets.hpp"

namespace automdt::core {
namespace {

PipelineConfig tiny_pipeline() {
  PipelineConfig cfg;
  cfg.explorer.duration_steps = 120;
  cfg.ppo = rl::PpoConfig::fast_defaults();
  cfg.ppo.max_episodes = 250;
  cfg.ppo.stagnation_episodes = 60;
  cfg.buffers = {1.0 * kGiB, 1.0 * kGiB};
  cfg.max_threads = 20;
  return cfg;
}

sim::SimScenario tiny_scenario() {
  sim::SimScenario s;
  s.sender_capacity = 1.0 * kGiB;
  s.receiver_capacity = 1.0 * kGiB;
  s.tpt_mbps = {100.0, 100.0, 100.0};
  s.bandwidth_mbps = {400.0, 400.0, 400.0};
  s.max_threads = 20;
  return s;
}

TEST(AutoMdt, TrainOnScenarioProducesUsableAgent) {
  rl::TrainResult training;
  const AutoMdt mdt =
      AutoMdt::train_on_scenario(tiny_scenario(), tiny_pipeline(), &training);
  EXPECT_GT(training.episodes_run, 0);
  EXPECT_GT(mdt.r_max(), 0.0);
  ASSERT_NE(mdt.agent(), nullptr);
  Rng rng(1);
  const ConcurrencyTuple t = mdt.agent()->act(
      std::vector<double>(kObservationSize, 0.5), rng);
  EXPECT_GE(t.read, 1);
  EXPECT_LE(t.max_component(), 20);
}

TEST(AutoMdt, FullOfflinePipelineFromEmulator) {
  testbed::ScenarioPreset p = testbed::bottleneck_read();
  testbed::EmulatedEnvironment env(p.config, testbed::Dataset::infinite());
  PipelineConfig cfg = tiny_pipeline();
  cfg.max_threads = p.config.max_threads;
  cfg.buffers = {p.config.sender_buffer_bytes, p.config.receiver_buffer_bytes};

  OfflineTrainingReport report;
  const AutoMdt mdt = AutoMdt::train_offline(env, cfg, &report);

  // Exploration happened and produced plausible estimates.
  EXPECT_GT(report.probe_log.size(), 50u);
  EXPECT_GT(report.estimates.bottleneck_mbps, 500.0);
  EXPECT_LE(report.estimates.bottleneck_mbps, 1100.0);
  // Scenario carried the estimates.
  EXPECT_EQ(report.scenario.tpt_mbps, report.estimates.tpt_mbps);
  // Training ran.
  EXPECT_GT(report.training.episodes_run, 0);
  EXPECT_GT(mdt.r_max(), 0.0);
}

TEST(AutoMdt, SaveLoadRoundTrip) {
  PipelineConfig cfg = tiny_pipeline();
  cfg.ppo.max_episodes = 60;
  const AutoMdt mdt = AutoMdt::train_on_scenario(tiny_scenario(), cfg);

  const std::string path =
      (std::filesystem::temp_directory_path() / "automdt_core_test.ckpt")
          .string();
  ASSERT_TRUE(mdt.save(path));
  const AutoMdt loaded = AutoMdt::load(path, cfg);
  std::remove(path.c_str());

  EXPECT_DOUBLE_EQ(loaded.r_max(), mdt.r_max());
  EXPECT_EQ(loaded.training_scale().max_threads,
            mdt.training_scale().max_threads);
  EXPECT_DOUBLE_EQ(loaded.training_scale().rate_scale_mbps,
                   mdt.training_scale().rate_scale_mbps);

  // Same deterministic policy behaviour after reload.
  Rng r1(9), r2(9);
  const std::vector<double> s(kObservationSize, 0.4);
  EXPECT_EQ(mdt.agent()->act(s, r1, true), loaded.agent()->act(s, r2, true));
}

TEST(AutoMdt, LoadMissingFileThrows) {
  EXPECT_THROW(AutoMdt::load("/nonexistent/ckpt.bin", tiny_pipeline()),
               std::runtime_error);
}

TEST(AutoMdt, ControllerDrivesTransferToCompletion) {
  PipelineConfig cfg = tiny_pipeline();
  cfg.ppo.max_episodes = 300;
  testbed::ScenarioPreset p = testbed::bottleneck_read();
  cfg.max_threads = p.config.max_threads;

  // Train on a scenario matching the preset's true parameters (as the
  // exploration phase would estimate them).
  sim::SimScenario s;
  s.sender_capacity = p.config.sender_buffer_bytes;
  s.receiver_capacity = p.config.receiver_buffer_bytes;
  s.tpt_mbps = {80.0, 160.0, 200.0};
  s.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
  s.max_threads = p.config.max_threads;
  const AutoMdt mdt = AutoMdt::train_on_scenario(s, cfg);

  testbed::EmulatedEnvironment env(p.config,
                                   testbed::Dataset::uniform(2, 500.0 * kMB));
  mdt.align_environment(env);
  auto controller = mdt.make_controller();
  Rng rng(3);
  const optimizers::RunResult r =
      optimizers::run_transfer(env, *controller, rng, {600.0});
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.average_throughput_mbps, 200.0);  // well above 1-thread floor
}

TEST(AutoMdt, AlignEnvironmentAppliesTrainingScale) {
  const AutoMdt mdt = AutoMdt::train_on_scenario(tiny_scenario(), [] {
    PipelineConfig c = tiny_pipeline();
    c.ppo.max_episodes = 30;
    return c;
  }());
  testbed::ScenarioPreset p = testbed::fabric_ncsa_tacc();
  testbed::EmulatedEnvironment env(p.config, testbed::Dataset::infinite());
  mdt.align_environment(env);
  EXPECT_EQ(env.observation_scale().max_threads,
            mdt.training_scale().max_threads);
  EXPECT_DOUBLE_EQ(env.observation_scale().rate_scale_mbps,
                   mdt.training_scale().rate_scale_mbps);
}

}  // namespace
}  // namespace automdt::core
