#include <gtest/gtest.h>

#include <cmath>

#include "testbed/dataset.hpp"

namespace automdt::testbed {
namespace {

TEST(Dataset, UniformCounts) {
  const Dataset d = Dataset::uniform(10, 5.0 * kMB, "test");
  EXPECT_EQ(d.file_count(), 10u);
  EXPECT_DOUBLE_EQ(d.total_bytes(), 50.0 * kMB);
  EXPECT_DOUBLE_EQ(d.mean_file_bytes(), 5.0 * kMB);
  EXPECT_FALSE(d.is_infinite());
  EXPECT_EQ(d.name(), "test");
}

TEST(Dataset, PaperLargeIsOneTerabyte) {
  const Dataset d = Dataset::paper_large();
  EXPECT_EQ(d.file_count(), 1000u);
  EXPECT_DOUBLE_EQ(d.total_bytes(), 1000.0 * kGB);  // 1 TB
}

TEST(Dataset, PaperFig3IsHundredGigabytes) {
  const Dataset d = Dataset::paper_fig3();
  EXPECT_EQ(d.file_count(), 100u);
  EXPECT_DOUBLE_EQ(d.total_bytes(), 100.0 * kGB);
}

TEST(Dataset, MixedMatchesSpecification) {
  Rng rng(1);
  const Dataset d = Dataset::mixed(rng, 10.0 * kGB, 100.0 * kKB, 2.0 * kGB);
  EXPECT_GE(d.total_bytes(), 10.0 * kGB);
  EXPECT_LT(d.total_bytes(), 12.5 * kGB);  // overshoot < one max file
  for (double f : d.files()) {
    EXPECT_GE(f, 100.0 * kKB * 0.999);
    EXPECT_LE(f, 2.0 * kGB * 1.001);
  }
  // Log-uniform: mean file size far below the max.
  EXPECT_LT(d.mean_file_bytes(), 500.0 * kMB);
}

TEST(Dataset, MixedDeterministicPerSeed) {
  Rng r1(5), r2(5);
  const Dataset a = Dataset::mixed(r1, 1.0 * kGB);
  const Dataset b = Dataset::mixed(r2, 1.0 * kGB);
  ASSERT_EQ(a.file_count(), b.file_count());
  EXPECT_EQ(a.files(), b.files());
}

TEST(Dataset, InfiniteDataset) {
  const Dataset d = Dataset::infinite();
  EXPECT_TRUE(d.is_infinite());
  EXPECT_TRUE(std::isinf(d.total_bytes()));
  EXPECT_EQ(d.file_count(), 0u);
  EXPECT_GT(d.mean_file_bytes(), 0.0);  // nominal value for overhead math
}

}  // namespace
}  // namespace automdt::testbed
