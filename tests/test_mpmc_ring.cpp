// Semantics + stress coverage for the lock-free staging ring
// (common/mpmc_ring.hpp): the blocking shell must match MpmcQueue's
// push/try_push/pop/try_pop/close contract, and the ring must deliver every
// item exactly once under multi-producer/multi-consumer contention.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/mpmc_ring.hpp"

namespace automdt {
namespace {

TEST(MpmcRing, CapacityRoundsUpToPowerOfTwo) {
  MpmcRing<int> r3(3);
  EXPECT_EQ(r3.capacity(), 4u);
  MpmcRing<int> r4(4);
  EXPECT_EQ(r4.capacity(), 4u);
  MpmcRing<int> r1(1);
  EXPECT_EQ(r1.capacity(), 2u);
}

TEST(MpmcRing, TryPushTryPopFifo) {
  MpmcRing<int> r(4);
  int v = 1;
  EXPECT_TRUE(r.try_push(v));
  v = 2;
  EXPECT_TRUE(r.try_push(v));
  EXPECT_EQ(r.size_approx(), 2u);
  int out = 0;
  EXPECT_TRUE(r.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(r.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(r.try_pop(out));
}

TEST(MpmcRing, TryPushFailsWhenFullAndLeavesItemIntact) {
  MpmcRing<std::unique_ptr<int>> r(2);
  auto a = std::make_unique<int>(1);
  auto b = std::make_unique<int>(2);
  auto c = std::make_unique<int>(3);
  EXPECT_TRUE(r.try_push(a));
  EXPECT_TRUE(r.try_push(b));
  EXPECT_FALSE(r.try_push(c));
  ASSERT_NE(c, nullptr);  // failed push must not consume the item
  EXPECT_EQ(*c, 3);
}

TEST(MpmcRing, WrapsAroundManyLaps) {
  MpmcRing<int> r(4);
  for (int lap = 0; lap < 1000; ++lap) {
    int v = lap;
    ASSERT_TRUE(r.try_push(v));
    int out = -1;
    ASSERT_TRUE(r.try_pop(out));
    ASSERT_EQ(out, lap);
  }
}

TEST(MpmcRingQueue, FifoSingleThread) {
  MpmcRingQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(MpmcRingQueue, TryPopOnEmpty) {
  MpmcRingQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcRingQueue, CloseWhileEmptyDrainsImmediately) {
  MpmcRingQueue<int> q(4);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(1));
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcRingQueue, CloseDrainsThenReturnsNullopt) {
  MpmcRingQueue<int> q(4);
  q.push(7);
  q.push(8);
  q.close();
  EXPECT_FALSE(q.push(9));  // rejected after close
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_EQ(q.pop().value(), 8);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcRingQueue, CloseWhileFullWakesBlockedPusherAndDrains) {
  MpmcRingQueue<int> q(2);  // rounds to capacity 2
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  std::thread blocked([&] { EXPECT_FALSE(q.push(3)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  blocked.join();
  // Everything pushed before close() is still drainable.
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcRingQueue, CloseWakesBlockedPopper) {
  MpmcRingQueue<int> q(2);
  std::thread t([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  t.join();
}

TEST(MpmcRingQueue, MoveOnlyPayload) {
  MpmcRingQueue<std::unique_ptr<int>> q(2);
  q.push(std::make_unique<int>(5));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

TEST(MpmcRingQueue, ParkCountersMoveUnderContention) {
  MpmcRingQueue<int> q(2);  // tiny, so pushers stall constantly
  std::thread producer([&] {
    for (int i = 0; i < 5000; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  long long sum = 0;
  int received = 0;
  while (auto v = q.pop()) {
    sum += *v;
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, 5000);
  EXPECT_EQ(sum, 5000LL * 4999 / 2);
  const MpmcRingCounters c = q.counters();
  // With a 2-slot ring one side must have stalled at least once.
  EXPECT_GT(c.push_stalls + c.pop_stalls, 0u);
}

TEST(MpmcRingQueue, ParkedPopperWakesOnPushWithoutTimedBackstop) {
  // The precise futex handshake replaced the 1 ms timed park; if a wakeup
  // were ever lost the popper would now sleep FOREVER, so this test doubles
  // as a lost-wakeup detector (the suite timeout catches a hang). Park the
  // popper for real (long idle), then push once and require delivery.
  MpmcRingQueue<int> q(4);
  std::atomic<bool> got{false};
  std::thread popper([&] {
    int v = 0;
    if (q.pop(v) && v == 42) got.store(true);
  });
  // Long enough that the popper has exhausted its spin budget and parked.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_GT(q.counters().pop_parks, 0u);
  ASSERT_TRUE(q.push(42));
  popper.join();
  EXPECT_TRUE(got.load());
}

TEST(MpmcRingQueue, ParkedPusherWakesOnPop) {
  MpmcRingQueue<int> q(2);
  while (q.try_push(7)) {  // fill to capacity
  }
  std::atomic<bool> pushed{false};
  std::thread pusher([&] {
    if (q.push(99)) pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_GT(q.counters().push_parks, 0u);
  int v = 0;
  ASSERT_TRUE(q.pop(v));  // frees one slot; must wake the parked pusher
  pusher.join();
  EXPECT_TRUE(pushed.load());
}

TEST(MpmcRingQueue, StressAllItemsDeliveredExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  constexpr long long kTotal = kProducers * kPerProducer;
  MpmcRingQueue<int> q(16);
  std::atomic<long long> sum{0};
  std::atomic<int> received{0};
  std::vector<std::atomic<int>> seen(kTotal);
  for (auto& s : seen) s.store(0);

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push(p * kPerProducer + i));
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        seen[static_cast<std::size_t>(*v)].fetch_add(1);
        sum.fetch_add(*v);
        received.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  EXPECT_EQ(received.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
  for (long long i = 0; i < kTotal; ++i)
    ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
}

TEST(MpmcRingQueue, StressMoveOnlyNoLeaksOrDoubleDelivery) {
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 2000;
  MpmcRingQueue<std::unique_ptr<int>> q(8);
  std::atomic<long long> sum{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push(std::make_unique<int>(p * kPerProducer + i)));
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) sum.fetch_add(**v);
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace automdt
