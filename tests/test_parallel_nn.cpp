// Parallel-vs-serial bit-exactness: the blocked/pooled matmul and the pooled
// elementwise Tensor ops must produce *identical* doubles for any global pool
// size (this is the determinism contract the training fast path relies on).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "nn/matrix.hpp"
#include "nn/tensor.hpp"

namespace automdt::nn {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.uniform(-2.0, 2.0);
  return m;
}

void expect_identical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      ASSERT_EQ(a(i, j), b(i, j)) << "(" << i << "," << j << ")";
}

// Restores the hardware-default global pool even when a test fails early.
struct PoolGuard {
  ~PoolGuard() { set_global_thread_pool_size(0); }
};

TEST(ParallelNn, MatmulMatchesSerialBitForBit) {
  PoolGuard guard;
  Rng rng(7);
  // Big enough to clear the parallel threshold (96^3 flops) with awkward,
  // non-multiple-of-block sizes.
  const Matrix a = random_matrix(97, 83, rng);
  const Matrix b = random_matrix(83, 141, rng);

  set_global_thread_pool_size(1);
  const Matrix serial = matmul(a, b);
  set_global_thread_pool_size(4);
  const Matrix parallel = matmul(a, b);
  expect_identical(serial, parallel);
}

TEST(ParallelNn, MatmulTnMatchesSerialBitForBit) {
  PoolGuard guard;
  Rng rng(8);
  const Matrix a = random_matrix(83, 97, rng);   // a^T is 97 x 83
  const Matrix b = random_matrix(83, 141, rng);

  set_global_thread_pool_size(1);
  const Matrix serial = matmul_tn(a, b);
  set_global_thread_pool_size(4);
  const Matrix parallel = matmul_tn(a, b);
  expect_identical(serial, parallel);
}

TEST(ParallelNn, MatmulNtMatchesSerialBitForBit) {
  PoolGuard guard;
  Rng rng(9);
  const Matrix a = random_matrix(97, 83, rng);
  const Matrix b = random_matrix(141, 83, rng);  // b^T is 83 x 141

  set_global_thread_pool_size(1);
  const Matrix serial = matmul_nt(a, b);
  set_global_thread_pool_size(4);
  const Matrix parallel = matmul_nt(a, b);
  expect_identical(serial, parallel);
}

TEST(ParallelNn, SmallMatmulStaysOffThePool) {
  PoolGuard guard;
  // Below the flops threshold the serial kernel must be picked regardless of
  // pool size — act()-latency shapes (1 x d times d x h) stay allocation- and
  // synchronization-free. Equality against the size-1 pool also pins that.
  Rng rng(10);
  const Matrix a = random_matrix(1, 64, rng);
  const Matrix b = random_matrix(64, 64, rng);
  set_global_thread_pool_size(1);
  const Matrix serial = matmul(a, b);
  set_global_thread_pool_size(4);
  const Matrix parallel = matmul(a, b);
  expect_identical(serial, parallel);
}

TEST(ParallelNn, ElementwiseOpsMatchSerialBitForBit) {
  PoolGuard guard;
  Rng rng(11);
  // 90*90 = 8100 elements: above the elementwise parallel threshold.
  const Matrix x = random_matrix(90, 90, rng);

  struct Case {
    const char* name;
    Tensor (*op)(const Tensor&);
  };
  const Case cases[] = {
      {"tanh", [](const Tensor& t) { return tanh_op(t); }},
      {"relu", [](const Tensor& t) { return relu(t); }},
      {"exp", [](const Tensor& t) { return exp_op(t); }},
      {"square", [](const Tensor& t) { return square(t); }},
      {"clamp", [](const Tensor& t) { return clamp(t, -0.5, 0.5); }},
  };

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    set_global_thread_pool_size(1);
    const Tensor vs = Tensor::variable(x);
    const Tensor ys = c.op(vs);
    mean(ys).backward();

    set_global_thread_pool_size(4);
    const Tensor vp = Tensor::variable(x);
    const Tensor yp = c.op(vp);
    mean(yp).backward();

    expect_identical(ys.value(), yp.value());
    expect_identical(vs.grad(), vp.grad());
  }
}

}  // namespace
}  // namespace automdt::nn
