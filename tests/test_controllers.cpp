// Baseline controllers: Marlin's three independent climbers, joint GD's
// probe cycle, the static Globus configuration, and the monolithic knob.
#include <gtest/gtest.h>

#include "optimizers/joint_gd_controller.hpp"
#include "optimizers/marlin_controller.hpp"
#include "optimizers/monolithic_controller.hpp"
#include "optimizers/runner.hpp"
#include "optimizers/static_controller.hpp"
#include "testbed/presets.hpp"

namespace automdt::optimizers {
namespace {

using testbed::Dataset;
using testbed::EmulatedEnvironment;

EnvStep feedback(StageThroughputs t) {
  EnvStep s;
  s.throughputs_mbps = t;
  return s;
}

TEST(GlobusStatic, TupleFromConcurrencyAndParallelism) {
  GlobusStaticController g({4, 8});
  EXPECT_EQ(g.tuple(), (ConcurrencyTuple{4, 32, 4}));
  EXPECT_EQ(g.initial_action(), g.tuple());
  EXPECT_EQ(g.decide(feedback({1, 1, 1}), {9, 9, 9}), g.tuple());
  EXPECT_EQ(g.name(), "Globus");
}

TEST(FixedController, AlwaysReturnsTuple) {
  FixedController f({13, 7, 5}, "Oracle");
  EXPECT_EQ(f.decide(feedback({0, 0, 0}), {1, 1, 1}),
            (ConcurrencyTuple{13, 7, 5}));
  EXPECT_EQ(f.name(), "Oracle");
}

TEST(Marlin, ClimbsWhileUtilityImproves) {
  MarlinConfig cfg;
  cfg.decision_interval = 1;
  MarlinController m(cfg);
  Rng rng(1);
  m.reset(rng);
  ConcurrencyTuple cur = m.initial_action();
  // Feed linear-scaling throughput (always improving utility): all stages
  // should ramp upward monotonically.
  for (int i = 0; i < 8; ++i) {
    const StageThroughputs t{cur.read * 50.0, cur.network * 50.0,
                             cur.write * 50.0};
    const ConcurrencyTuple next = m.decide(feedback(t), cur);
    EXPECT_GE(next.read, cur.read);
    EXPECT_GE(next.network, cur.network);
    EXPECT_GE(next.write, cur.write);
    cur = next;
  }
  EXPECT_GT(cur.read, m.initial_action().read + 4);
}

TEST(Marlin, ReversesWhenUtilityDrops) {
  MarlinConfig cfg;
  cfg.decision_interval = 1;
  MarlinController m(cfg);
  Rng rng(2);
  m.reset(rng);
  ConcurrencyTuple cur{10, 10, 10};
  // First decision bootstraps; feed high utility then a collapse.
  cur = m.decide(feedback({500, 500, 500}), cur);
  const ConcurrencyTuple after_drop = m.decide(feedback({1, 1, 1}), cur);
  // All stages should step back (direction reversed).
  EXPECT_LT(after_drop.read, cur.read);
  EXPECT_LT(after_drop.network, cur.network);
  EXPECT_LT(after_drop.write, cur.write);
}

TEST(Marlin, StagesAreIndependent) {
  MarlinConfig cfg;
  cfg.decision_interval = 1;
  MarlinController m(cfg);
  Rng rng(3);
  m.reset(rng);
  ConcurrencyTuple cur{5, 5, 5};
  cur = m.decide(feedback({100, 100, 100}), cur);
  // Read utility collapses, network/write keep improving.
  const ConcurrencyTuple next =
      m.decide(feedback({0.1, 5000, 5000}), cur);
  EXPECT_LT(next.read, cur.read);
  EXPECT_GT(next.network, cur.network);
  EXPECT_GT(next.write, cur.write);
}

TEST(Marlin, StaysWithinBounds) {
  MarlinConfig cfg;
  cfg.max_threads = 8;
  cfg.decision_interval = 1;
  MarlinController m(cfg);
  Rng rng(4);
  m.reset(rng);
  ConcurrencyTuple cur = m.initial_action();
  for (int i = 0; i < 50; ++i) {
    cur = m.decide(feedback({cur.read * 100.0, cur.network * 100.0,
                             cur.write * 100.0}),
                   cur);
    EXPECT_GE(cur.read, 1);
    EXPECT_LE(cur.read, 8);
  }
}

TEST(Marlin, FindsSingleStageOptimumOnEmulator) {
  // Network-bottleneck preset (<5,14,5>): Marlin should get the network stage
  // into the neighbourhood of 14 within ~60 virtual seconds.
  testbed::ScenarioPreset p = testbed::bottleneck_network();
  EmulatedEnvironment env(p.config, Dataset::infinite());
  MarlinController marlin;
  Rng rng(5);

  EnvStep last;
  last.observation = env.reset(rng);
  marlin.reset(rng);
  ConcurrencyTuple tuple = marlin.initial_action();
  int best_network = 0;
  for (int t = 0; t < 90; ++t) {
    last = env.step(tuple);
    tuple = marlin.decide(last, tuple);
    if (t > 30) best_network = std::max(best_network, tuple.network);
  }
  EXPECT_GE(best_network, 10);  // near 14; hill climbing overshoots/oscillates
}

TEST(JointGd, CyclesThroughProbePhases) {
  JointGdController gd;
  Rng rng(6);
  gd.reset(rng);
  ConcurrencyTuple base = gd.initial_action();
  // Base step feedback -> probe read.
  ConcurrencyTuple p1 = gd.decide(feedback({100, 100, 100}), base);
  EXPECT_EQ(p1, (ConcurrencyTuple{base.read + 1, base.network, base.write}));
  ConcurrencyTuple p2 = gd.decide(feedback({120, 100, 100}), p1);
  EXPECT_EQ(p2, (ConcurrencyTuple{base.read, base.network + 1, base.write}));
  ConcurrencyTuple p3 = gd.decide(feedback({100, 120, 100}), p2);
  EXPECT_EQ(p3, (ConcurrencyTuple{base.read, base.network, base.write + 1}));
  // Update step applies the gradient move.
  ConcurrencyTuple updated = gd.decide(feedback({100, 100, 120}), p3);
  EXPECT_GE(updated.read, base.read);
  EXPECT_GE(updated.network, base.network);
  EXPECT_GE(updated.write, base.write);
}

TEST(JointGd, StepsBounded) {
  JointGdConfig cfg;
  cfg.max_step = 2;
  cfg.lr = 100.0;  // huge gradient scale; steps must still be clamped
  JointGdController gd(cfg);
  Rng rng(7);
  gd.reset(rng);
  ConcurrencyTuple cur = gd.initial_action();
  ConcurrencyTuple prev = cur;
  for (int i = 0; i < 12; ++i) {
    const ConcurrencyTuple next =
        gd.decide(feedback({cur.read * 1000.0, 100, 100}), cur);
    EXPECT_LE(std::abs(next.read - prev.read), 3);  // probe delta + max_step
    prev = cur;
    cur = next;
  }
}

TEST(Monolithic, AllStagesCoupled) {
  MonolithicConfig mcfg;
  mcfg.decision_interval = 1;
  MonolithicController m(mcfg);
  Rng rng(8);
  m.reset(rng);
  ConcurrencyTuple cur = m.initial_action();
  EXPECT_EQ(cur.read, cur.network);
  EXPECT_EQ(cur.network, cur.write);
  for (int i = 0; i < 20; ++i) {
    cur = m.decide(feedback({cur.read * 40.0, cur.read * 40.0,
                             cur.read * 40.0}),
                   cur);
    EXPECT_EQ(cur.read, cur.network);
    EXPECT_EQ(cur.network, cur.write);
    EXPECT_GE(cur.read, 1);
    EXPECT_LE(cur.read, 30);
  }
}

TEST(Runner, CompletesTransferAndRecords) {
  testbed::ScenarioPreset p = testbed::bottleneck_read();
  p.config.link.jitter = 0.0;
  p.config.storage_jitter = 0.0;
  EmulatedEnvironment env(p.config, Dataset::uniform(2, 250.0 * kMB));
  FixedController oracle(p.expected_optimal, "Oracle");
  Rng rng(9);
  const RunResult r = run_transfer(env, oracle, rng, {600.0});
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.completion_time_s, 1.0);
  EXPECT_LT(r.completion_time_s, 120.0);
  EXPECT_GT(r.average_throughput_mbps, 100.0);
  EXPECT_FALSE(r.series.empty());
  EXPECT_EQ(r.series.points().front().threads, p.expected_optimal);
}

TEST(Runner, RespectsTimeCap) {
  testbed::ScenarioPreset p = testbed::bottleneck_read();
  EmulatedEnvironment env(p.config, Dataset::uniform(100, 1.0 * kGB));
  FixedController slow({1, 1, 1}, "Slow");
  Rng rng(10);
  const RunResult r = run_transfer(env, slow, rng, {30.0});
  EXPECT_FALSE(r.completed);
  EXPECT_NEAR(r.completion_time_s, 30.0, 1.5);
}

}  // namespace
}  // namespace automdt::optimizers
