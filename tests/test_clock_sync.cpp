// NTP-style clock-offset estimation between two steady clocks
// (telemetry/clock_sync.hpp): sample arithmetic, the min-RTT filter, and the
// published ClockModel the engine's receiver path reads.
#include "telemetry/clock_sync.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace automdt::telemetry {
namespace {

// Build a sample from ground truth: the responder's clock reads the
// requester's clock plus `offset` (signed), with one-way delays `fwd`/`bwd`
// and responder processing time `proc`, all in ns.
ClockSyncSample make_sample(std::uint64_t t0, std::int64_t offset,
                            std::uint64_t fwd, std::uint64_t bwd,
                            std::uint64_t proc) {
  ClockSyncSample s;
  s.t0_ns = t0;
  s.t1_ns = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(t0 + fwd) + offset);
  s.t2_ns = s.t1_ns + proc;
  s.t3_ns = t0 + fwd + proc + bwd;
  return s;
}

TEST(ClockSyncSample, SymmetricDelayRecoversOffsetExactly) {
  for (const std::int64_t offset : {0ll, 123456789ll, -987654321ll}) {
    const ClockSyncSample s =
        make_sample(1'000'000'000ull, offset, /*fwd=*/40'000, /*bwd=*/40'000,
                    /*proc=*/5'000);
    ASSERT_TRUE(s.valid());
    EXPECT_EQ(s.offset_ns(), offset) << "offset " << offset;
    EXPECT_EQ(s.rtt_ns(), 80'000u);
  }
}

TEST(ClockSyncSample, ResponderClockFarBehindRequester) {
  // The responder's steady clock booted much later: huge negative offset.
  // offset_ns() works through unsigned wraparound, so this must stay exact.
  const std::int64_t offset = -3'600'000'000'000ll;  // -1 hour
  const ClockSyncSample s =
      make_sample(7'200'000'000'000ull, offset, 10'000, 10'000, 1'000);
  EXPECT_EQ(s.offset_ns(), offset);
}

TEST(ClockSyncSample, AsymmetricDelayErrorBoundedByHalfRtt) {
  // fwd != bwd skews the estimate by (fwd - bwd) / 2; the estimator's
  // documented bound is +/- rtt / 2.
  const std::int64_t true_offset = 5'000'000;
  const ClockSyncSample s =
      make_sample(1'000'000ull, true_offset, /*fwd=*/90'000, /*bwd=*/10'000,
                  /*proc=*/0);
  const std::int64_t error = s.offset_ns() - true_offset;
  EXPECT_EQ(error, (90'000 - 10'000) / 2);
  EXPECT_LE(static_cast<std::uint64_t>(error > 0 ? error : -error),
            s.rtt_ns() / 2);
}

TEST(ClockSyncSample, ProcessingTimeIsExcludedFromRtt) {
  const ClockSyncSample s =
      make_sample(0, /*offset=*/0, /*fwd=*/30'000, /*bwd=*/30'000,
                  /*proc=*/500'000);
  EXPECT_EQ(s.rtt_ns(), 60'000u);  // not 560'000
  EXPECT_EQ(s.offset_ns(), 0);
}

TEST(ClockSyncSample, MalformedSamplesAreInvalid) {
  ClockSyncSample backwards;  // response "received" before request sent
  backwards.t0_ns = 100;
  backwards.t1_ns = 100;
  backwards.t2_ns = 100;
  backwards.t3_ns = 50;
  EXPECT_FALSE(backwards.valid());
  EXPECT_EQ(backwards.rtt_ns(), 0u);

  ClockSyncSample negative_proc;
  negative_proc.t0_ns = 100;
  negative_proc.t1_ns = 500;
  negative_proc.t2_ns = 400;  // t2 < t1
  negative_proc.t3_ns = 900;
  EXPECT_FALSE(negative_proc.valid());
  EXPECT_EQ(negative_proc.rtt_ns(), 0u);
}

TEST(ClockSyncEstimator, KeepsMinimumRttSample) {
  ClockSyncEstimator est;
  EXPECT_FALSE(est.valid());

  // Jittery link: same true offset, varying delay symmetry. The tightest
  // (most symmetric) sample must win and pin the estimate.
  const std::int64_t offset = 42'000'000;
  EXPECT_TRUE(est.add(make_sample(0, offset, 400'000, 100'000, 0)));
  const std::int64_t skewed = est.offset_ns();
  EXPECT_NE(skewed, offset);  // asymmetric first sample is off...
  EXPECT_LE(std::abs(skewed - offset),
            static_cast<std::int64_t>(est.error_bound_ns()));  // ...but bounded

  EXPECT_TRUE(est.add(make_sample(1'000'000, offset, 20'000, 20'000, 5'000)));
  EXPECT_EQ(est.offset_ns(), offset);  // symmetric + tighter: exact
  EXPECT_EQ(est.rtt_ns(), 40'000u);
  EXPECT_EQ(est.error_bound_ns(), 20'000u);

  // A looser sample never replaces a tighter one.
  EXPECT_FALSE(est.add(make_sample(2'000'000, offset + 777, 50'000, 50'000, 0)));
  EXPECT_EQ(est.offset_ns(), offset);
  EXPECT_EQ(est.samples(), 3u);
}

TEST(ClockSyncEstimator, RejectsInvalidAndZeroRttSamples) {
  ClockSyncEstimator est;
  ClockSyncSample zero;  // all-zero timestamps: rtt 0
  EXPECT_FALSE(est.add(zero));
  EXPECT_FALSE(est.valid());
  EXPECT_EQ(est.samples(), 0u);
}

TEST(ClockSyncEstimator, ResetStartsAFreshRound) {
  ClockSyncEstimator est;
  ASSERT_TRUE(est.add(make_sample(0, 1'000, 10'000, 10'000, 0)));
  est.reset();
  EXPECT_FALSE(est.valid());
  EXPECT_EQ(est.samples(), 0u);
  // After reset even a looser sample becomes the estimate (drift tracking).
  EXPECT_TRUE(est.add(make_sample(0, 2'000, 500'000, 500'000, 0)));
  EXPECT_EQ(est.offset_ns(), 2'000);
}

TEST(ClockModel, DefaultReadsAsUnsyncedZeroOffset) {
  ClockModel model;
  EXPECT_FALSE(model.synced());
  EXPECT_EQ(model.offset_ns(), 0);
  EXPECT_EQ(model.rtt_ns(), 0u);

  model.publish(-123, 456);
  EXPECT_TRUE(model.synced());
  EXPECT_EQ(model.offset_ns(), -123);
  EXPECT_EQ(model.rtt_ns(), 456u);
}

TEST(ClockModel, UnsignedShiftImplementsSignedCorrection) {
  // The engine shifts remote stamps with `remote + (uint64)offset`; unsigned
  // wraparound must implement the signed add for both offset signs.
  const auto shift = [](std::uint64_t remote, std::int64_t offset) {
    return remote + static_cast<std::uint64_t>(offset);
  };
  EXPECT_EQ(shift(1'000'000, 500), 1'000'500u);
  EXPECT_EQ(shift(1'000'000, -500), 999'500u);
  EXPECT_EQ(shift(1'000'000, -1'000'000), 0u);
}

}  // namespace
}  // namespace automdt::telemetry
