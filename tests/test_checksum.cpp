#include "common/checksum.hpp"

#include <gtest/gtest.h>

#include "transfer/engine.hpp"

namespace automdt {
namespace {

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> out;
  for (; *s; ++s) out.push_back(static_cast<std::byte>(*s));
  return out;
}

TEST(Checksum, MatchesKnownFnv1aVectors) {
  // Reference values from the canonical FNV-1a 64-bit test suite.
  EXPECT_EQ(fnv1a(nullptr, 0), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a(bytes_of("a")), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(fnv1a(bytes_of("foobar")), 0x85944171F73967E8ULL);
}

TEST(Checksum, SeedChainingEqualsOneShot) {
  const auto data = bytes_of("split across two buffers");
  const std::size_t cut = 7;
  const std::uint64_t chained =
      fnv1a(data.data() + cut, data.size() - cut, fnv1a(data.data(), cut));
  EXPECT_EQ(chained, fnv1a(data));
}

TEST(Checksum, ChunkChecksumIsSharedImplementation) {
  const auto payload = bytes_of("engine payload");
  EXPECT_EQ(transfer::chunk_checksum(payload), fnv1a(payload));
}

TEST(Checksum, SensitiveToEveryByte) {
  auto payload = bytes_of("abcdefgh");
  const std::uint64_t base = fnv1a(payload);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    auto flipped = payload;
    flipped[i] ^= std::byte{0x01};
    EXPECT_NE(fnv1a(flipped), base) << "byte " << i;
  }
}

}  // namespace
}  // namespace automdt
