#include <gtest/gtest.h>

#include <string_view>

#include "optimizers/marlin_controller.hpp"
#include "transfer/dtn_pair.hpp"

namespace automdt::transfer {
namespace {

DtnPairConfig small_pair(NetworkBackend backend = NetworkBackend::kInProcess) {
  DtnPairConfig c;
  c.backend = backend;
  c.engine.max_threads = 4;
  c.engine.chunk_bytes = 64 * 1024;
  c.engine.sender_buffer_bytes = 1.0 * kMiB;
  c.engine.receiver_buffer_bytes = 1.0 * kMiB;
  c.engine.network.aggregate_bytes_per_s = 8.0 * 1024 * 1024;
  c.file_sizes_bytes.assign(6, 512.0 * 1024);  // 3 MiB
  c.probe_interval_s = 0.1;
  c.rpc_latency_s = 0.01;
  return c;
}

/// Both control-plane backends must satisfy the same contract: the suite
/// runs once over the in-process channel and once over real TCP sockets.
class DtnPairBackends : public ::testing::TestWithParam<NetworkBackend> {};

INSTANTIATE_TEST_SUITE_P(Backends, DtnPairBackends,
                         ::testing::Values(NetworkBackend::kInProcess,
                                           NetworkBackend::kTcp),
                         [](const auto& info) {
                           return info.param == NetworkBackend::kTcp
                                      ? "Tcp"
                                      : "InProcess";
                         });

TEST_P(DtnPairBackends, CompletesTransferThroughRpcControlPlane) {
  DtnPairEnv env(small_pair(GetParam()));
  Rng rng(1);
  env.reset(rng);
  bool done = false;
  for (int i = 0; i < 120 && !done; ++i) done = env.step({4, 4, 4}).done;
  EXPECT_TRUE(done);
  // The observation pipeline exercised the RPC channel, and the receiver
  // agent saw the pushed concurrency updates.
  EXPECT_GT(env.rpc_responses(), 0u);
  EXPECT_GT(env.concurrency_updates(), 0u);
}

TEST_P(DtnPairBackends, ObservationUsesRpcReportedReceiverState) {
  DtnPairConfig cfg = small_pair(GetParam());
  // Choke the writers so the receiver buffer visibly fills.
  cfg.engine.write.aggregate_bytes_per_s = 1024.0;  // ~1 KB/s
  cfg.file_sizes_bytes.assign(64, 256.0 * 1024);
  DtnPairEnv env(cfg);
  Rng rng(2);
  auto obs = env.reset(rng);
  const double initial_free = obs[7];
  double later_free = initial_free;
  for (int i = 0; i < 10; ++i) later_free = env.step({4, 4, 1}).observation[7];
  // Receiver free-space feature must have dropped (reported over RPC).
  EXPECT_LT(later_free, initial_free);
  EXPECT_GT(env.rpc_responses(), 3u);
}

TEST_P(DtnPairBackends, StatsSnapshotRpcReportsLiveRegistry) {
  DtnPairEnv env(small_pair(GetParam()));
  Rng rng(5);
  env.reset(rng);
  for (int i = 0; i < 3; ++i) env.step({4, 4, 4});

  auto first = env.query_stats_snapshot(5.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_GT(first->generation, 0u);
  EXPECT_FALSE(first->metrics.empty());
  auto value_of = [](const StatsSnapshotResponse& r, std::string_view name) {
    for (const auto& m : r.metrics)
      if (m.name == name) return m.value;
    return -1.0;
  };
  // The dump is the full engine registry: per-stage counters present and
  // consistent with the pipeline invariant.
  const double bytes_read = value_of(*first, "read.bytes");
  const double bytes_written = value_of(*first, "write.bytes");
  EXPECT_GT(bytes_read, 0.0);
  EXPECT_GE(bytes_read, bytes_written);
  EXPECT_GE(bytes_written, 0.0);

  // Run the transfer to completion; a later snapshot shows progress and a
  // strictly larger generation.
  bool done = false;
  for (int i = 0; i < 120 && !done; ++i) done = env.step({4, 4, 4}).done;
  ASSERT_TRUE(done);
  auto second = env.query_stats_snapshot(5.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_GT(second->generation, first->generation);
  EXPECT_DOUBLE_EQ(value_of(*second, "write.bytes"), 6 * 512.0 * 1024);
  EXPECT_DOUBLE_EQ(value_of(*second, "engine.finished"), 1.0);
}

TEST_P(DtnPairBackends, ClockSyncEstimatesLoopbackOffsetWithinBound) {
  DtnPairConfig cfg = small_pair(GetParam());
  cfg.clock_sync_samples = 4;
  DtnPairEnv env(cfg);
  Rng rng(7);
  env.reset(rng);  // reset() runs the initial sync round

  ASSERT_GE(env.clock_syncs(), 1u);
  const telemetry::ClockModel& clock = env.clock();
  ASSERT_TRUE(clock.synced());
  // Both agents share one process and one steady clock: the true offset is
  // exactly 0, so the estimate must sit inside the +/- rtt/2 error bound.
  const std::int64_t offset = clock.offset_ns();
  const std::uint64_t magnitude =
      static_cast<std::uint64_t>(offset >= 0 ? offset : -offset);
  EXPECT_GT(clock.rtt_ns(), 0u);
  EXPECT_LE(magnitude, clock.rtt_ns() / 2 + 1);

  // An explicit re-sync keeps working after the pipeline has been running.
  EXPECT_TRUE(env.sync_clock(5.0));
  EXPECT_GE(env.clock_syncs(), 2u);
}

TEST_P(DtnPairBackends, ClockSyncCanBeDisabled) {
  DtnPairConfig cfg = small_pair(GetParam());
  cfg.clock_sync_samples = 0;
  DtnPairEnv env(cfg);
  Rng rng(8);
  env.reset(rng);
  env.step({2, 2, 2});
  EXPECT_EQ(env.clock_syncs(), 0u);
  EXPECT_FALSE(env.clock().synced());
}

TEST_P(DtnPairBackends, PeriodicReSyncHappensDuringStepping) {
  DtnPairConfig cfg = small_pair(GetParam());
  cfg.clock_sync_samples = 2;
  cfg.clock_sync_interval_s = 0.001;  // elapses within any 0.1 s probe step
  DtnPairEnv env(cfg);
  Rng rng(9);
  env.reset(rng);
  const std::uint64_t after_reset = env.clock_syncs();
  for (int i = 0; i < 3; ++i) env.step({2, 2, 2});
  EXPECT_GT(env.clock_syncs(), after_reset);
}

TEST(DtnPairEnv, TcpBackendMovesChunksOverRealStreams) {
  DtnPairEnv env(small_pair(NetworkBackend::kTcp));
  Rng rng(7);
  env.reset(rng);
  bool done = false;
  for (int i = 0; i < 120 && !done; ++i) done = env.step({4, 4, 4}).done;
  ASSERT_TRUE(done);
  ASSERT_NE(env.session(), nullptr);
  const TransferStats stats = env.session()->stats();
  EXPECT_GT(stats.net_streams_open, 0);
  EXPECT_EQ(stats.net_frame_errors, 0u);
  EXPECT_EQ(stats.verify_failures, 0u);
}

TEST(DtnPairEnv, WorksWithController) {
  DtnPairEnv env(small_pair());
  optimizers::MarlinConfig mcfg;
  mcfg.max_threads = 4;
  mcfg.decision_interval = 1;
  optimizers::MarlinController marlin(mcfg);
  Rng rng(3);
  EnvStep last;
  last.observation = env.reset(rng);
  marlin.reset(rng);
  ConcurrencyTuple tuple = marlin.initial_action();
  bool done = false;
  for (int i = 0; i < 120 && !done; ++i) {
    last = env.step(tuple);
    done = last.done;
    tuple = marlin.decide(last, tuple);
  }
  EXPECT_TRUE(done);
}

TEST(DtnPairEnv, ResetRestartsCleanly) {
  DtnPairEnv env(small_pair());
  Rng rng(4);
  env.reset(rng);
  for (int i = 0; i < 3; ++i) env.step({4, 4, 4});
  env.reset(rng);
  const EnvStep out = env.step({2, 2, 2});
  EXPECT_FALSE(out.done);
}

}  // namespace
}  // namespace automdt::transfer
