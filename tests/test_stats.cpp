#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace automdt {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    (i < 20 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(Ewma, FirstValuePassesThrough) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  EXPECT_DOUBLE_EQ(e.update(10.0), 10.0);
  EXPECT_TRUE(e.initialized());
}

TEST(Ewma, Smooths) {
  Ewma e(0.5);
  e.update(0.0);
  EXPECT_DOUBLE_EQ(e.update(10.0), 5.0);
  EXPECT_DOUBLE_EQ(e.update(10.0), 7.5);
}

TEST(Ewma, AlphaOneTracksExactly) {
  Ewma e(1.0);
  e.update(1.0);
  EXPECT_DOUBLE_EQ(e.update(42.0), 42.0);
}

TEST(SlidingWindow, EvictsOldest) {
  SlidingWindow w(3);
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.add(10.0);  // evicts 1.0
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.max(), 10.0);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
}

TEST(SlidingWindow, EmptyIsZero) {
  SlidingWindow w(5);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.max(), 0.0);
  EXPECT_FALSE(w.full());
}

TEST(Percentile, Median) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, Extremes) {
  std::vector<double> v = {5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, Interpolates) {
  // sorted: 0, 10 -> p75 = 7.5
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 75.0), 7.5);
}

TEST(Percentile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

}  // namespace
}  // namespace automdt
