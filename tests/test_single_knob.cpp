#include <gtest/gtest.h>

#include "rl/single_knob_agent.hpp"
#include "sim/simulator_env.hpp"

namespace automdt::rl {
namespace {

sim::SimScenario scenario() {
  sim::SimScenario s;
  s.sender_capacity = 1.0 * kGiB;
  s.receiver_capacity = 1.0 * kGiB;
  s.tpt_mbps = {80.0, 160.0, 200.0};
  s.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
  s.max_threads = 20;
  return s;
}

TEST(SingleKnobPpoAgent, ActionsAreCoupledAndClamped) {
  PpoConfig cfg = PpoConfig::fast_defaults();
  SingleKnobPpoAgent agent(kObservationSize, 12, cfg);
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const ConcurrencyTuple t =
        agent.act(std::vector<double>(kObservationSize, rng.uniform()), rng);
    EXPECT_EQ(t.read, t.network);
    EXPECT_EQ(t.network, t.write);
    EXPECT_GE(t.read, 1);
    EXPECT_LE(t.read, 12);
  }
}

TEST(SingleKnobPpoAgent, LearnsOnSimulator) {
  PpoConfig cfg = PpoConfig::fast_defaults();
  cfg.hidden_dim = 48;
  cfg.max_episodes = 1500;
  cfg.stagnation_episodes = 300;
  sim::SimulatorEnv env(scenario());
  SingleKnobPpoAgent agent(kObservationSize, env.max_threads(), cfg);
  const TrainResult r = agent.train(env, env.theoretical_max_reward());
  EXPECT_GT(r.best_reward, 0.5);
  EXPECT_GT(r.episodes_run, 100);
}

TEST(SingleKnobPpoAgent, WorseUtilityThanModularOptimum) {
  // With the coupled constraint, even the *best possible* single knob (13)
  // yields lower utility than the modular optimum <13,7,5> — the structural
  // gap the modular architecture exists to close.
  const sim::SimScenario s = scenario();
  const UtilityParams k = s.utility;
  const double modular = total_utility({1000, 1000, 1000}, {13, 7, 5}, k);
  double best_monolithic = 0.0;
  for (int n = 1; n <= s.max_threads; ++n) {
    const StageThroughputs t{std::min(n * 80.0, 1000.0),
                             std::min(n * 160.0, 1000.0),
                             std::min(n * 200.0, 1000.0)};
    best_monolithic =
        std::max(best_monolithic, total_utility(t, {n, n, n}, k));
  }
  EXPECT_GT(modular, best_monolithic * 1.02);
}

TEST(SingleKnobPpoAgent, DeterministicActRepeatable) {
  SingleKnobPpoAgent agent(kObservationSize, 20, PpoConfig::fast_defaults());
  const std::vector<double> s(kObservationSize, 0.4);
  Rng r1(1), r2(2);
  EXPECT_EQ(agent.act(s, r1, true), agent.act(s, r2, true));
}

}  // namespace
}  // namespace automdt::rl
