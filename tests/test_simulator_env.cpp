#include <gtest/gtest.h>

#include "sim/simulator_env.hpp"

namespace automdt::sim {
namespace {

SimScenario scenario() {
  SimScenario s;
  s.sender_capacity = 1.0 * kGiB;
  s.receiver_capacity = 2.0 * kGiB;
  s.tpt_mbps = {80.0, 160.0, 200.0};
  s.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
  s.max_threads = 30;
  return s;
}

TEST(SimulatorEnv, ObservationLayoutAndBounds) {
  SimulatorEnv env(scenario());
  Rng rng(1);
  const auto obs = env.reset(rng);
  ASSERT_EQ(obs.size(), kObservationSize);
  // thread counts scaled by max_threads -> in (0, 1]
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(obs[i], 0.0);
    EXPECT_LE(obs[i], 1.0);
  }
  // throughputs scaled by max bandwidth -> in [0, ~1]
  for (int i = 3; i < 6; ++i) {
    EXPECT_GE(obs[i], 0.0);
    EXPECT_LE(obs[i], 1.1);
  }
  // free-buffer fractions in [0, 1]
  for (int i = 6; i < 8; ++i) {
    EXPECT_GE(obs[i], 0.0);
    EXPECT_LE(obs[i], 1.0);
  }
}

TEST(SimulatorEnv, StepRewardIsUtility) {
  SimulatorEnv env(scenario());
  Rng rng(2);
  env.reset(rng);
  const EnvStep out = env.step({13, 7, 5});
  EXPECT_NEAR(out.reward,
              total_utility(out.throughputs_mbps, {13, 7, 5},
                            env.scenario().utility),
              1e-9);
  EXPECT_FALSE(out.done);  // training env never terminates
}

TEST(SimulatorEnv, ActionsClamped) {
  SimulatorEnv env(scenario());
  Rng rng(3);
  env.reset(rng);
  const EnvStep out = env.step({1000, -5, 7});
  // Clamped to [1, 30]: read at most 30*80 = 2400 capped 1000; network at
  // least 1 thread moves data.
  EXPECT_LE(out.throughputs_mbps.read, 1000.0 * 1.001);
  EXPECT_GE(out.observation[1], 1.0 / 30.0 - 1e-12);
}

TEST(SimulatorEnv, ResetRandomizesInitialState) {
  SimulatorEnv env(scenario());
  Rng rng(4);
  const auto a = env.reset(rng);
  const auto b = env.reset(rng);
  EXPECT_NE(a, b);  // different thread draws / buffer fills
}

TEST(SimulatorEnv, DeterministicUnderSameSeed) {
  SimulatorEnv e1(scenario()), e2(scenario());
  Rng r1(99), r2(99);
  EXPECT_EQ(e1.reset(r1), e2.reset(r2));
  const EnvStep s1 = e1.step({5, 5, 5});
  const EnvStep s2 = e2.step({5, 5, 5});
  EXPECT_EQ(s1.observation, s2.observation);
  EXPECT_DOUBLE_EQ(s1.reward, s2.reward);
}

TEST(SimulatorEnv, TptJitterChangesEpisodes) {
  SimulatorEnvOptions opt;
  opt.tpt_jitter = 0.2;
  SimulatorEnv env(scenario(), opt);
  Rng rng(5);
  env.reset(rng);
  // Saturate read far beyond its per-thread cap: achieved throughput reveals
  // the jittered TPT.
  const double t1 = env.step({1, 30, 30}).throughputs_mbps.read;
  env.reset(rng);
  const double t2 = env.step({1, 30, 30}).throughputs_mbps.read;
  EXPECT_NE(t1, t2);
}

TEST(SimulatorEnv, MaskBufferFeaturesZeroesThem) {
  SimulatorEnvOptions opt;
  opt.mask_buffer_features = true;
  opt.initial_buffer_max_fill = 0.9;
  SimulatorEnv env(scenario(), opt);
  Rng rng(6);
  const auto obs = env.reset(rng);
  EXPECT_DOUBLE_EQ(obs[6], 0.0);
  EXPECT_DOUBLE_EQ(obs[7], 0.0);
  const EnvStep out = env.step({5, 5, 5});
  EXPECT_DOUBLE_EQ(out.observation[6], 0.0);
  EXPECT_DOUBLE_EQ(out.observation[7], 0.0);
}

TEST(SimulatorEnv, TheoreticalMaxRewardMatchesScenario) {
  SimScenario s = scenario();
  SimulatorEnv env(s);
  EXPECT_DOUBLE_EQ(env.theoretical_max_reward(), s.theoretical_max_reward());
  EXPECT_GT(env.theoretical_max_reward(), 0.0);
}

TEST(SimulatorEnv, ScenarioIdealThreads) {
  SimScenario s = scenario();
  const StageTriple ideal = s.ideal_threads();
  EXPECT_NEAR(ideal.read, 12.5, 1e-9);
  EXPECT_NEAR(ideal.network, 6.25, 1e-9);
  EXPECT_NEAR(ideal.write, 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.bottleneck_mbps(), 1000.0);
}

TEST(SimulatorEnv, AutoChunkScalesWithBandwidth) {
  SimScenario slow = scenario();
  SimScenario fast = scenario();
  fast.bandwidth_mbps = {25000.0, 25000.0, 25000.0};
  EXPECT_GT(fast.effective_chunk_bytes(), slow.effective_chunk_bytes());
  // Explicit chunk size wins.
  fast.chunk_bytes = 123456.0;
  EXPECT_DOUBLE_EQ(fast.effective_chunk_bytes(), 123456.0);
}

}  // namespace
}  // namespace automdt::sim
