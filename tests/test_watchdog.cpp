// Flight recorder + pipeline watchdog (telemetry/flight_recorder.hpp):
// dump contents, the exactly-one-dump-per-stall guarantee, re-arming, and
// that healthy or idle pipelines never trip it.
#include "telemetry/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "telemetry/journal.hpp"
#include "telemetry/metrics.hpp"

namespace automdt::telemetry {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void sleep_s(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

WatchdogConfig fast_wd(double poll_s, double stall_s) {
  WatchdogConfig wd;
  wd.poll_interval_s = poll_s;
  wd.stall_after_s = stall_s;
  return wd;
}

TEST(FlightRecorder, DumpContainsReasonSnapshotAndJournalTail) {
  MetricsRegistry registry;
  registry.counter("write.bytes")->add(12345);
  EventJournal journal(64);
  journal.append(LogLevel::kWarn, "reader 3 wedged");

  FlightRecorderConfig config;
  config.out_dir = ::testing::TempDir();
  config.prefix = "wd-test";
  FlightRecorder recorder(config, &registry, &journal);

  const std::string path = recorder.dump("unit test stall");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(recorder.dumps(), 1u);
  EXPECT_EQ(recorder.last_path(), path);
  EXPECT_NE(path.find(::testing::TempDir()), std::string::npos);
  EXPECT_NE(path.find("wd-test-"), std::string::npos);

  const std::string text = slurp(path);
  EXPECT_NE(text.find("reason: unit test stall"), std::string::npos);
  EXPECT_NE(text.find("write.bytes"), std::string::npos);
  EXPECT_NE(text.find("12345"), std::string::npos);
  EXPECT_NE(text.find("reader 3 wedged"), std::string::npos);
  EXPECT_NE(text.find("=== end of dump ==="), std::string::npos);

  // Subsequent dumps land in distinct files (numbered suffix).
  const std::string second = recorder.dump("again");
  EXPECT_NE(second, path);
  EXPECT_EQ(recorder.dumps(), 2u);
}

TEST(FlightRecorder, NullSourcesAreOmittedNotFatal) {
  FlightRecorderConfig config;
  config.out_dir = ::testing::TempDir();
  config.prefix = "wd-null";
  FlightRecorder recorder(config, nullptr, nullptr);
  const std::string path = recorder.dump("no sources");
  ASSERT_FALSE(path.empty());
  const std::string text = slurp(path);
  EXPECT_EQ(text.find("metrics snapshot"), std::string::npos);
  EXPECT_EQ(text.find("event journal"), std::string::npos);
  EXPECT_NE(text.find("reason: no sources"), std::string::npos);
}

TEST(FlightRecorder, UnwritableDirectoryReportsFailure) {
  FlightRecorderConfig config;
  config.out_dir = "/nonexistent-dir/x/y";
  FlightRecorder recorder(config, nullptr, nullptr);
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(recorder.dump("doomed"), "");
  set_log_level(prev);
  EXPECT_EQ(recorder.dumps(), 0u);
}

TEST(Watchdog, StalledProgressDumpsExactlyOnce) {
  FlightRecorderConfig config;
  config.out_dir = ::testing::TempDir();
  config.prefix = "wd-stall";
  FlightRecorder recorder(config, nullptr, nullptr);

  WatchdogConfig wd;
  wd.poll_interval_s = 0.01;
  wd.stall_after_s = 0.05;
  // Work remains (a value), but it never advances: a stall.
  PipelineWatchdog watchdog(
      wd, []() -> std::optional<std::uint64_t> { return 1000; }, &recorder);
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kOff);
  watchdog.start();
  sleep_s(0.5);  // ~10x the stall threshold: still only ONE dump
  watchdog.stop();
  set_log_level(prev);

  EXPECT_EQ(watchdog.stalls_detected(), 1u);
  EXPECT_EQ(recorder.dumps(), 1u);
  const std::string text = slurp(recorder.last_path());
  EXPECT_NE(text.find("pipeline stall"), std::string::npos);
  EXPECT_NE(text.find("1000"), std::string::npos);
}

TEST(Watchdog, HealthyProgressNeverTrips) {
  std::atomic<std::uint64_t> bytes{0};
  PipelineWatchdog watchdog(
      fast_wd(0.01, 0.05),
      [&bytes]() -> std::optional<std::uint64_t> {
        return bytes.fetch_add(1) + 1;  // always advancing
      },
      nullptr);
  watchdog.start();
  sleep_s(0.3);
  watchdog.stop();
  EXPECT_EQ(watchdog.stalls_detected(), 0u);
}

TEST(Watchdog, IdlePipelineNeverTrips) {
  PipelineWatchdog watchdog(
      fast_wd(0.01, 0.05),
      []() -> std::optional<std::uint64_t> { return std::nullopt; }, nullptr);
  watchdog.start();
  sleep_s(0.3);
  watchdog.stop();
  EXPECT_EQ(watchdog.stalls_detected(), 0u);
}

TEST(Watchdog, ReArmsWhenProgressResumes) {
  // Phase 0: stuck at 1. Phase 1: advancing. Phase 2: stuck at 10^6.
  std::atomic<int> phase{0};
  std::atomic<std::uint64_t> counter{0};
  PipelineWatchdog watchdog(
      fast_wd(0.01, 0.05),
      [&]() -> std::optional<std::uint64_t> {
        switch (phase.load()) {
          case 0: return 1;
          case 1: return counter.fetch_add(1) + 2;
          default: return 1'000'000;
        }
      },
      nullptr);
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kOff);
  watchdog.start();
  sleep_s(0.25);
  EXPECT_EQ(watchdog.stalls_detected(), 1u);  // first stall
  phase.store(1);
  sleep_s(0.15);  // progress resumes: watchdog re-arms itself
  phase.store(2);
  sleep_s(0.25);
  watchdog.stop();
  set_log_level(prev);
  EXPECT_EQ(watchdog.stalls_detected(), 2u);  // second stall dumps again
}

TEST(Watchdog, ExplicitRearmAllowsNextDump) {
  FlightRecorderConfig config;
  config.out_dir = ::testing::TempDir();
  config.prefix = "wd-rearm";
  FlightRecorder recorder(config, nullptr, nullptr);
  PipelineWatchdog watchdog(
      fast_wd(0.01, 0.05), []() -> std::optional<std::uint64_t> { return 7; },
      &recorder);
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kOff);
  watchdog.start();
  sleep_s(0.2);
  EXPECT_EQ(recorder.dumps(), 1u);
  watchdog.rearm();  // episode boundary: the same flatline may dump once more
  sleep_s(0.2);
  watchdog.stop();
  set_log_level(prev);
  EXPECT_EQ(recorder.dumps(), 2u);
}

TEST(Watchdog, StartStopAreIdempotent) {
  PipelineWatchdog watchdog(
      fast_wd(0.01, 10.0), []() -> std::optional<std::uint64_t> { return 1; },
      nullptr);
  watchdog.start();
  watchdog.start();
  watchdog.stop();
  watchdog.stop();
  watchdog.start();
  watchdog.stop();
  EXPECT_EQ(watchdog.stalls_detected(), 0u);
}

}  // namespace
}  // namespace automdt::telemetry
