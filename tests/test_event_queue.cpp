#include <gtest/gtest.h>

#include <queue>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"

namespace automdt::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push({3.0, Stage::kRead});
  q.push({1.0, Stage::kWrite});
  q.push({2.0, Stage::kNetwork});
  EXPECT_DOUBLE_EQ(q.pop().time, 1.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 2.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TopDoesNotPop) {
  EventQueue q;
  q.push({5.0, Stage::kRead});
  EXPECT_DOUBLE_EQ(q.top().time, 5.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PreservesStagePayload) {
  EventQueue q;
  q.push({1.0, Stage::kNetwork});
  EXPECT_EQ(q.pop().stage, Stage::kNetwork);
}

TEST(EventQueue, ClearEmpties) {
  EventQueue q;
  q.push({1.0, Stage::kRead});
  q.push({2.0, Stage::kRead});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, RandomizedAgainstStdPriorityQueue) {
  Rng rng(42);
  EventQueue q;
  auto cmp = [](double a, double b) { return a > b; };
  std::priority_queue<double, std::vector<double>, decltype(cmp)> ref(cmp);

  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 500; ++i) {
      const double t = rng.uniform(0.0, 100.0);
      q.push({t, Stage::kRead});
      ref.push(t);
    }
    for (int i = 0; i < 300; ++i) {
      ASSERT_DOUBLE_EQ(q.pop().time, ref.top());
      ref.pop();
    }
  }
  while (!q.empty()) {
    ASSERT_DOUBLE_EQ(q.pop().time, ref.top());
    ref.pop();
  }
  EXPECT_TRUE(ref.empty());
}

TEST(EventQueue, DuplicateTimesAllDelivered) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.push({1.0, Stage::kWrite});
  int n = 0;
  while (!q.empty()) {
    EXPECT_DOUBLE_EQ(q.pop().time, 1.0);
    ++n;
  }
  EXPECT_EQ(n, 10);
}

TEST(EventQueue, ReserveIsVisibleAndPreventsGrowth) {
  EventQueue q;
  q.reserve(64);
  const std::size_t cap = q.capacity();
  EXPECT_GE(cap, 64u);
  for (int i = 0; i < 64; ++i) q.push({static_cast<double>(i), Stage::kRead});
  EXPECT_EQ(q.capacity(), cap);  // no reallocation while within the reserve
}

}  // namespace
}  // namespace automdt::sim
