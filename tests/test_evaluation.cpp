#include <gtest/gtest.h>

#include "rl/evaluation.hpp"
#include "sim/simulator_env.hpp"

namespace automdt::rl {
namespace {

sim::SimScenario scenario() {
  sim::SimScenario s;
  s.sender_capacity = 1.0 * kGiB;
  s.receiver_capacity = 1.0 * kGiB;
  s.tpt_mbps = {80.0, 160.0, 200.0};
  s.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
  s.max_threads = 30;
  return s;
}

TEST(EvaluatePolicy, FixedOptimalPolicyScoresHigh) {
  sim::SimulatorEnv env(scenario());
  Rng rng(1);
  const EvaluationResult r = evaluate_policy(
      env, [](const std::vector<double>&) { return ConcurrencyTuple{13, 7, 5}; },
      env.theoretical_max_reward(), rng);
  EXPECT_GT(r.mean_reward, 0.85);
  EXPECT_EQ(r.settled_tuple, (ConcurrencyTuple{13, 7, 5}));
  EXPECT_NEAR(r.mean_total_threads, 25.0, 1e-9);
  EXPECT_GT(r.mean_throughput_mbps.write, 900.0);
  EXPECT_EQ(r.episodes, 3);
}

TEST(EvaluatePolicy, BadPolicyScoresLow) {
  sim::SimulatorEnv env(scenario());
  Rng rng(2);
  const EvaluationResult r = evaluate_policy(
      env, [](const std::vector<double>&) { return ConcurrencyTuple{1, 1, 1}; },
      env.theoretical_max_reward(), rng);
  EXPECT_LT(r.mean_reward, 0.4);
}

TEST(EvaluatePolicy, CountsAndOptionsRespected) {
  sim::SimulatorEnv env(scenario());
  Rng rng(3);
  EvaluationOptions opt;
  opt.episodes = 2;
  opt.steps_per_episode = 12;
  opt.warmup_steps = 4;
  const EvaluationResult r = evaluate_policy(
      env, [](const std::vector<double>&) { return ConcurrencyTuple{5, 5, 5}; },
      env.theoretical_max_reward(), rng, opt);
  EXPECT_EQ(r.episodes, 2);
  EXPECT_EQ(r.steps, 24);
}

TEST(EvaluatePolicy, ModalTupleWins) {
  sim::SimulatorEnv env(scenario());
  Rng rng(4);
  int call = 0;
  const EvaluationResult r = evaluate_policy(
      env,
      [&call](const std::vector<double>&) {
        ++call;
        // Mostly <10,10,10>, occasionally <4,4,4>.
        return call % 7 == 0 ? ConcurrencyTuple{4, 4, 4}
                             : ConcurrencyTuple{10, 10, 10};
      },
      env.theoretical_max_reward(), rng);
  EXPECT_EQ(r.settled_tuple, (ConcurrencyTuple{10, 10, 10}));
}

}  // namespace
}  // namespace automdt::rl
