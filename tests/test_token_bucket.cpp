#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "transfer/token_bucket.hpp"

namespace automdt::transfer {
namespace {

using Clock = std::chrono::steady_clock;

TEST(TokenBucket, UnlimitedNeverBlocks) {
  TokenBucket b(0.0);
  const auto t0 = Clock::now();
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(b.acquire(1e9));
  EXPECT_LT(std::chrono::duration<double>(Clock::now() - t0).count(), 0.5);
}

TEST(TokenBucket, BurstSatisfiedImmediately) {
  TokenBucket b(1000.0, 5000.0);  // 5 KB burst pre-filled
  const auto t0 = Clock::now();
  EXPECT_TRUE(b.acquire(4000.0));
  EXPECT_LT(std::chrono::duration<double>(Clock::now() - t0).count(), 0.05);
}

TEST(TokenBucket, RateLimitsSustainedFlow) {
  TokenBucket b(100000.0, 1000.0);  // 100 KB/s, 1 KB burst
  const auto t0 = Clock::now();
  double moved = 0.0;
  while (moved < 20000.0) {  // 20 KB at 100 KB/s ~ 0.2 s
    ASSERT_TRUE(b.acquire(1000.0));
    moved += 1000.0;
  }
  const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
  EXPECT_GT(dt, 0.12);
  EXPECT_LT(dt, 0.6);
}

TEST(TokenBucket, TryAcquireNonBlocking) {
  TokenBucket b(100.0, 50.0);
  EXPECT_TRUE(b.try_acquire(50.0));
  EXPECT_FALSE(b.try_acquire(50.0));  // drained; refill is ~instantaneously 0
}

TEST(TokenBucket, SetRateTakesEffect) {
  TokenBucket b(1.0, 1.0);  // glacial
  b.set_rate(1e9);
  EXPECT_DOUBLE_EQ(b.rate(), 1e9);
  const auto t0 = Clock::now();
  EXPECT_TRUE(b.acquire(1e6));
  EXPECT_LT(std::chrono::duration<double>(Clock::now() - t0).count(), 0.5);
}

TEST(TokenBucket, ShutdownWakesWaiter) {
  TokenBucket b(1.0, 1.0);  // will block on any real acquire
  std::thread waiter([&] { EXPECT_FALSE(b.acquire(1e9)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  b.shutdown();
  waiter.join();
  EXPECT_FALSE(b.acquire(1.0));  // stays shut down
  EXPECT_FALSE(b.try_acquire(1.0));
}

TEST(TokenBucket, ConcurrentAcquirersShareRate) {
  TokenBucket b(200000.0, 1000.0);  // 200 KB/s
  std::atomic<double> moved{0.0};
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 10; ++j) {
        if (!b.acquire(1000.0)) return;
        moved.fetch_add(1000.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
  EXPECT_DOUBLE_EQ(moved.load(), 40000.0);
  EXPECT_GT(dt, 0.1);  // 39 KB beyond burst at 200 KB/s
}

TEST(TokenBucket, UnlimitedFastPathIsCheapUnderContention) {
  // The unlimited path must not serialize workers on the mutex: many
  // threads hammering acquire() finish quickly even on one core.
  TokenBucket b(0.0);
  std::vector<std::thread> threads;
  std::atomic<int> granted{0};
  const auto t0 = Clock::now();
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 100000; ++j)
        if (b.acquire(1e6)) granted.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(granted.load(), 400000);
  EXPECT_LT(std::chrono::duration<double>(Clock::now() - t0).count(), 2.0);
}

TEST(TokenBucket, UnlimitedFastPathRespectsShutdown) {
  TokenBucket b(0.0);
  EXPECT_TRUE(b.acquire(1.0));
  b.shutdown();
  EXPECT_FALSE(b.acquire(1.0));
  EXPECT_FALSE(b.try_acquire(1.0));
  EXPECT_FALSE(b.acquire_batch(1.0, 1));
}

TEST(TokenBucket, AcquireBatchMatchesSequentialRate) {
  // 8 grants of 1 KB in one batch must pace like 8 sequential acquires.
  TokenBucket b(100000.0, 1000.0);  // 100 KB/s, 1 KB burst
  const auto t0 = Clock::now();
  double moved = 0.0;
  while (moved < 20000.0) {
    ASSERT_TRUE(b.acquire_batch(8000.0, 8));
    moved += 8000.0;
  }
  const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
  EXPECT_GT(dt, 0.12);
  EXPECT_LT(dt, 0.6);
}

TEST(TokenBucket, AcquireBatchUnlimitedAndDegenerate) {
  TokenBucket unlimited(0.0);
  EXPECT_TRUE(unlimited.acquire_batch(1e9, 64));
  EXPECT_TRUE(unlimited.acquire_batch(0.0, 0));  // empty batch is a no-op
  TokenBucket limited(1000.0, 1000.0);
  EXPECT_TRUE(limited.acquire_batch(0.0, 0));
}

TEST(TokenBucket, BatchShutdownWakesWaiter) {
  TokenBucket b(1.0, 1.0);
  std::thread waiter([&] { EXPECT_FALSE(b.acquire_batch(1e9, 4)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  b.shutdown();
  waiter.join();
}

TEST(TokenBucket, SetRateZeroEnablesFastPathLive) {
  TokenBucket b(1.0, 1.0);  // glacial
  b.set_rate(0.0);          // now unlimited: must never block again
  const auto t0 = Clock::now();
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(b.acquire(1e9));
  EXPECT_LT(std::chrono::duration<double>(Clock::now() - t0).count(), 0.5);
}

}  // namespace
}  // namespace automdt::transfer
