// Shared helpers for the paper-reproduction bench harnesses.
//
// Every bench prints (a) the paper's reported numbers for the experiment and
// (b) the numbers measured on this repository's emulated testbed, so the
// shape comparison EXPERIMENTS.md records is visible directly in the output.
// Absolute values differ from the paper (their substrate was FABRIC/CloudLab
// hardware; ours is the virtual-time emulator) — who wins and by roughly what
// factor is the reproduction target.
#pragma once

#include <cstdio>
#include <string>

#include "common/logging.hpp"
#include "core/automdt.hpp"
#include "optimizers/runner.hpp"
#include "testbed/presets.hpp"

namespace automdt::bench {

/// Training budget used by the bench harnesses: larger than the unit-test
/// configuration, smaller than paper_defaults() (2-core CI budget; DESIGN.md
/// §5). Pass --paper on a bench's command line to use the full published
/// configuration instead.
inline rl::PpoConfig bench_ppo_config(bool paper_scale = false) {
  if (paper_scale) return rl::PpoConfig::paper_defaults();
  rl::PpoConfig c;
  c.hidden_dim = 64;
  c.policy_blocks = 2;
  c.value_blocks = 1;
  c.max_episodes = 6000;
  c.stagnation_episodes = 500;
  return c;
}

inline bool paper_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--paper") return true;
  return false;
}

/// Offline-train an agent for a testbed preset, using the preset's true
/// per-thread rates / bandwidths as the scenario (i.e. assuming a clean
/// exploration phase; bench_training_time exercises the explorer itself).
inline core::AutoMdt train_agent(const testbed::ScenarioPreset& preset,
                                 const StageTriple& tpt_mbps,
                                 const StageTriple& bandwidth_mbps,
                                 const rl::PpoConfig& ppo,
                                 rl::TrainResult* training = nullptr) {
  sim::SimScenario s;
  s.sender_capacity = preset.config.sender_buffer_bytes;
  s.receiver_capacity = preset.config.receiver_buffer_bytes;
  s.tpt_mbps = tpt_mbps;
  s.bandwidth_mbps = bandwidth_mbps;
  s.max_threads = preset.config.max_threads;

  core::PipelineConfig cfg;
  cfg.ppo = ppo;
  cfg.max_threads = preset.config.max_threads;
  return core::AutoMdt::train_on_scenario(s, cfg, training);
}

/// One production transfer run under a controller.
inline optimizers::RunResult run(const testbed::ScenarioPreset& preset,
                                 const testbed::Dataset& dataset,
                                 optimizers::ConcurrencyController& ctrl,
                                 const core::AutoMdt* align_with,
                                 std::uint64_t seed,
                                 double max_time_s = 36000.0) {
  testbed::EmulatedEnvironment env(preset.config, dataset);
  if (align_with) align_with->align_environment(env);
  Rng rng(seed);
  return optimizers::run_transfer(env, ctrl, rng, {max_time_s});
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("--------------------------------------------------------------\n");
  std::printf("Paper reports: %s\n", paper.c_str());
  std::printf("==============================================================\n\n");
}

}  // namespace automdt::bench
