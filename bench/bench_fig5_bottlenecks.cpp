// Fig. 5 reproduction: read / network / write bottleneck scenarios.
//
// Paper (per column):
//   read    (80/160/200 Mbps, optimal <13,7,5>):  AutoMDT reaches 13 streams
//           in ~6 s; Marlin takes 29 s to reach 12; AutoMDT finishes 68 s
//           sooner.
//   network (205/75/195 Mbps, optimal <5,14,5>):  AutoMDT ~3 s to 15; Marlin
//           42 s to 14; finishes 15 s sooner.
//   write   (200/150/70 Mbps, optimal <5,7,15>):  AutoMDT finishes 17 s
//           sooner, with stable concurrency where Marlin fluctuates.
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "optimizers/marlin_controller.hpp"

using namespace automdt;

namespace {

Stage bottleneck_stage(const ConcurrencyTuple& optimal) {
  Stage best = Stage::kRead;
  for (Stage s : kAllStages)
    if (optimal[s] > optimal[best]) best = s;
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  bench::print_header(
      "Fig. 5 — bottleneck scenarios (AutoMDT row 1 vs Marlin row 2)",
      "AutoMDT identifies the bottleneck within seconds and holds stable "
      "concurrency; Marlin needs 29-42 s and keeps fluctuating");

  const StageTriple throttles[3] = {
      {80.0, 160.0, 200.0}, {205.0, 75.0, 195.0}, {200.0, 150.0, 70.0}};
  const char* csv_names[3] = {"read", "network", "write"};
  const rl::PpoConfig ppo =
      bench::bench_ppo_config(bench::paper_flag(argc, argv));

  Table table({"scenario", "tool", "t to bottleneck conc. (s)",
               "bottleneck stddev", "other-stage mean conc.",
               "completion (s)"},
              1);

  const auto presets = testbed::fig5_presets();
  for (std::size_t i = 0; i < presets.size(); ++i) {
    const auto& preset = presets[i];
    std::printf("training agent for %s ...\n", preset.name.c_str());
    const core::AutoMdt mdt = bench::train_agent(
        preset, throttles[i], {1000.0, 1000.0, 1000.0}, ppo);

    const Stage key = bottleneck_stage(preset.expected_optimal);
    const int level = preset.expected_optimal[key] - 1;  // paper-style slack
    const testbed::Dataset dataset = testbed::Dataset::uniform(20, 1.0 * kGB);

    auto evaluate = [&](optimizers::ConcurrencyController& ctrl,
                        const core::AutoMdt* align)
        -> std::pair<optimizers::RunResult, std::vector<Cell>> {
      const auto res = bench::run(preset, dataset, ctrl, align, 42 + i);
      const auto reach = res.series.time_to_reach(key, level, 1);
      const double from = reach ? *reach : 0.0;
      // Mean concurrency of the two non-bottleneck stages after convergence —
      // low values demonstrate "use only what you need".
      double other = 0.0;
      int count = 0;
      for (Stage s : kAllStages) {
        if (s == key) continue;
        for (const auto& p : res.series.points()) {
          if (p.time_s >= from) {
            other += p.threads[s];
            ++count;
          }
        }
      }
      std::vector<Cell> cells = {
          reach ? Cell{*reach} : Cell{std::string("never")},
          res.series.concurrency_stddev(key, from, 1e9),
          count ? other / count : 0.0,
          res.completed ? Cell{res.completion_time_s}
                        : Cell{std::string(">cap")}};
      return {res, cells};
    };

    auto actrl = mdt.make_controller(/*deterministic=*/true);
    auto [res_a, cells_a] = evaluate(*actrl, &mdt);
    optimizers::MarlinController marlin;
    auto [res_m, cells_m] = evaluate(marlin, nullptr);

    table.add_row({preset.name, std::string("AutoMDT"), cells_a[0], cells_a[1],
                   cells_a[2], cells_a[3]});
    table.add_row({preset.name, std::string("Marlin"), cells_m[0], cells_m[1],
                   cells_m[2], cells_m[3]});

    std::ofstream fa(std::string("/tmp/fig5_") + csv_names[i] +
                     "_automdt.csv");
    res_a.series.write_csv(fa);
    std::ofstream fm(std::string("/tmp/fig5_") + csv_names[i] + "_marlin.csv");
    res_m.series.write_csv(fm);
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf("\nper-second traces in /tmp/fig5_<scenario>_<tool>.csv\n");
  return 0;
}
