// §V-A reproduction: offline training cost, including the full pipeline
// (exploration -> estimates -> simulator -> PPO) and the comparison against
// the online-training alternative.
//
// Paper: offline training averages ~45 min (worst case ~60 min) at ~20150
// episodes; fully online training would take ~7 days (each step needs 3-5 s
// of real transfer) and waste ~5.62 PB of traffic on a 100 Gbps link.
#include <chrono>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace automdt;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  bench::print_header(
      "§V-A — offline training cost (simulator) vs online-equivalent",
      "~45 min offline (~20150 episodes); online would be ~7 days and "
      "~5.62 PB of transfers");

  const testbed::ScenarioPreset preset = testbed::bottleneck_read();
  testbed::EmulatedEnvironment explore_env(preset.config,
                                           testbed::Dataset::infinite());

  core::PipelineConfig cfg;
  cfg.ppo = bench::bench_ppo_config(bench::paper_flag(argc, argv));
  cfg.buffers = {preset.config.sender_buffer_bytes,
                 preset.config.receiver_buffer_bytes};
  cfg.max_threads = preset.config.max_threads;

  const auto t0 = std::chrono::steady_clock::now();
  core::OfflineTrainingReport report;
  const core::AutoMdt mdt = core::AutoMdt::train_offline(explore_env, cfg,
                                                         &report);
  (void)mdt;
  const double pipeline_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const int episodes = report.training.episodes_run;
  const long long steps = static_cast<long long>(episodes) *
                          cfg.ppo.steps_per_episode;
  // Paper's accounting: every online step needs ~3 s of stable transfer.
  const double online_seconds = 3.0 * static_cast<double>(steps);
  // Data burned while exploring online at the scenario's bottleneck rate.
  const double online_bytes =
      mbps(report.estimates.bottleneck_mbps) * online_seconds;

  Table table({"quantity", "value"}, 2);
  table.add_row({std::string("exploration steps (virtual s)"),
                 static_cast<long long>(cfg.explorer.duration_steps)});
  table.add_row({std::string("PPO episodes run"),
                 static_cast<long long>(episodes)});
  table.add_row({std::string("best normalized reward"),
                 report.training.best_reward});
  table.add_row({std::string("converged"),
                 std::string(report.training.converged ? "yes" : "no")});
  table.add_row({std::string("offline pipeline wall time (s)"),
                 pipeline_wall});
  table.add_row({std::string("PPO training wall time (s)"),
                 report.training.wall_time_s});
  table.add_row({std::string("online-equivalent time (s)"), online_seconds});
  table.add_row({std::string("online-equivalent time (days)"),
                 online_seconds / 86400.0});
  table.add_row({std::string("online data that would be burned"),
                 format_bytes(online_bytes)});
  table.add_row(
      {std::string("offline speedup over online"),
       online_seconds / std::max(report.training.wall_time_s, 1e-9)});
  table.print(std::cout);

  // ---- serial vs parallel fast path -------------------------------------
  // Same scenario, same seed, reduced episode budget: the only change between
  // the two runs is the thread/env knobs, so the wall-time ratio is the
  // speedup of the parallel offline-training fast path on this machine.
  // (Rewards differ between the rows only because num_envs differs; for a
  // fixed num_envs they are bit-identical at any num_threads.)
  const int kCompareEpisodes = 600;
  auto timed_train = [&](int num_threads, int num_envs) {
    core::PipelineConfig c = cfg;
    c.ppo.max_episodes = kCompareEpisodes;
    c.ppo.stagnation_episodes = kCompareEpisodes;  // run the full budget
    c.ppo.num_threads = num_threads;
    c.ppo.num_envs = num_envs;
    rl::TrainResult r;
    core::AutoMdt::train_on_scenario(report.scenario, c, &r);
    return r;
  };

  std::printf("\nserial vs parallel fast path (%d episodes each):\n",
              kCompareEpisodes);
  const rl::TrainResult serial = timed_train(/*num_threads=*/1,
                                             /*num_envs=*/1);
  const rl::TrainResult parallel = timed_train(/*num_threads=*/0,
                                               /*num_envs=*/4);
  const auto steps_per_sec = [&](const rl::TrainResult& r) {
    return static_cast<double>(r.episodes_run) * cfg.ppo.steps_per_episode /
           std::max(r.wall_time_s, 1e-9);
  };

  Table cmp({"mode", "wall time (s)", "env-steps/s", "best reward"}, 2);
  cmp.add_row({std::string("serial (1 thread, 1 env)"), serial.wall_time_s,
               steps_per_sec(serial), serial.best_reward});
  cmp.add_row({std::string("parallel (all cores, 4 envs)"),
               parallel.wall_time_s, steps_per_sec(parallel),
               parallel.best_reward});
  cmp.print(std::cout);
  std::printf("parallel fast-path speedup: %.2fx (on %u hardware threads)\n",
              serial.wall_time_s / std::max(parallel.wall_time_s, 1e-9),
              std::thread::hardware_concurrency());

  std::printf("\nNote: bench config is width-%zu / %d-episode cap "
              "(2-core budget; pass --paper for the 256-wide, 30000-episode "
              "published configuration — see DESIGN.md §5).\n",
              cfg.ppo.hidden_dim, cfg.ppo.max_episodes);
  return 0;
}
