// §III / Fig. 1 motivation: why joint multivariate gradient descent fails and
// monolithic coupling over-subscribes.
//
// Paper: "Multivariate gradient descent gets stuck in local optima at the
// beginning (increase read, while maintaining steady network and write
// concurrency), and never recovers" — which is why Marlin fell back to three
// independent optimizers and AutoMDT replaced both with a joint RL agent.
// §III also argues a monolithic tool must set ALL stages to the maximum any
// stage needs, wasting end-system resources.
#include <iostream>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "optimizers/joint_gd_controller.hpp"
#include "optimizers/marlin_controller.hpp"
#include "optimizers/monolithic_controller.hpp"
#include "optimizers/static_controller.hpp"

using namespace automdt;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  bench::print_header(
      "§III / Fig. 1 — motivation: joint GD stalls; monolithic "
      "over-subscribes",
      "joint multivariate GD gets stuck near its starting point; monolithic "
      "tools allocate max-stage concurrency to every stage");

  const testbed::ScenarioPreset preset = testbed::bottleneck_read();
  const testbed::Dataset dataset = testbed::Dataset::uniform(20, 1.0 * kGB);

  // Oracle = the paper's ground-truth optimal tuple, held fixed.
  optimizers::FixedController oracle(preset.expected_optimal, "Oracle");
  optimizers::JointGdController joint_gd;
  optimizers::MarlinController marlin;
  optimizers::MonolithicController monolithic;

  Table table({"controller", "completed", "time (s)", "avg rate (Mbps)",
               "mean total threads", "final tuple"},
              1);
  auto eval = [&](optimizers::ConcurrencyController& ctrl) {
    const auto res = bench::run(preset, dataset, ctrl, nullptr, 5, 3600.0);
    double total_threads = 0.0;
    for (const auto& p : res.series.points()) total_threads += p.threads.total();
    table.add_row(
        {ctrl.name(), std::string(res.completed ? "yes" : "no"),
         res.completion_time_s, res.average_throughput_mbps,
         total_threads / static_cast<double>(res.series.points().size()),
         res.series.points().back().threads.to_string()});
    return res;
  };

  eval(oracle);
  const auto res_gd = eval(joint_gd);
  eval(marlin);
  eval(monolithic);
  table.print(std::cout);

  // The §III signature of the joint-GD pathology: read concurrency climbs
  // early (empty buffer), network/write stay pinned low.
  double early_read = 0.0, early_net = 0.0;
  int n = 0;
  for (const auto& p : res_gd.series.points()) {
    if (p.time_s > 60.0) break;
    early_read += p.threads.read;
    early_net += p.threads.network;
    ++n;
  }
  std::printf("\njoint GD first minute: mean read conc. %.1f vs mean network "
              "conc. %.1f\n(paper: buffer transients push reads up while the "
              "actual bottleneck stage lags)\n",
              early_read / n, early_net / n);
  (void)argc;
  (void)argv;
  return 0;
}
