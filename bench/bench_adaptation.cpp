// Dynamic-conditions experiment: the paper's abstract claims AutoMDT can
// "adapt quickly to changing system and network conditions". Mid-transfer we
// retune the per-connection throttles — the bottleneck *moves* from the read
// stage to the write stage — and measure how long each controller needs to
// recover 90% of the new achievable rate.
//
//   phase 1 (0-120 s):   read 80 / network 160 / write 200 (optimum <13,7,5>)
//   phase 2 (120 s-):    read 200 / network 150 / write 70 (optimum <5,7,15>)
//
// The pretrained policy maps the new observations to the new tuple within a
// couple of probe intervals; Marlin has to walk its climbers across ~10
// threads per stage at one 3-second decision per step.
#include <iostream>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "optimizers/marlin_controller.hpp"
#include "optimizers/static_controller.hpp"

using namespace automdt;

namespace {

struct PhaseResult {
  double recovery_time_s = -1.0;  // time after the switch to reach 90% rate
  double mean_rate_after = 0.0;
};

PhaseResult run_with_switch(optimizers::ConcurrencyController& ctrl,
                            const core::AutoMdt* align, std::uint64_t seed) {
  testbed::ScenarioPreset preset = testbed::bottleneck_read();
  preset.config.link.jitter = 0.0;
  preset.config.storage_jitter = 0.0;
  testbed::EmulatedEnvironment env(preset.config, testbed::Dataset::infinite());
  if (align) align->align_environment(env);

  Rng rng(seed);
  EnvStep last;
  last.observation = env.reset(rng);
  ctrl.reset(rng);
  ConcurrencyTuple tuple = ctrl.initial_action();

  constexpr double kSwitchAt = 120.0;
  constexpr double kHorizon = 360.0;
  // Achievable end-to-end after the switch is still ~1000 Mbps; recovery is
  // about re-discovering the *write* bottleneck's thread requirement.
  constexpr double kTarget = 0.9 * 1000.0;

  PhaseResult out;
  int count_after = 0;
  while (env.virtual_time_s() < kHorizon) {
    if (env.virtual_time_s() >= kSwitchAt &&
        env.virtual_time_s() < kSwitchAt + 1.5) {
      env.set_per_thread_rates({200.0, 150.0, 70.0});  // bottleneck moves
    }
    last = env.step(tuple);
    const double t = env.virtual_time_s();
    if (t > kSwitchAt + 5.0) {  // skip the buffer-drain transient
      out.mean_rate_after += last.throughputs_mbps.write;
      ++count_after;
      if (out.recovery_time_s < 0.0 &&
          last.throughputs_mbps.write >= kTarget) {
        out.recovery_time_s = t - kSwitchAt;
      }
    }
    tuple = ctrl.decide(last, tuple);
  }
  if (count_after > 0) out.mean_rate_after /= count_after;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  bench::print_header(
      "Adaptation to changing conditions (bottleneck moves read -> write)",
      "AutoMDT 'can adapt quickly to changing system and network "
      "conditions' (abstract); online optimizers must re-converge");

  // Train on domain-randomized scenarios so the agent has seen varied
  // per-thread rates (the paper's generalization argument for learning
  // dynamics rather than a single operating point).
  const testbed::ScenarioPreset preset = testbed::bottleneck_read();
  rl::PpoConfig ppo = bench::bench_ppo_config(bench::paper_flag(argc, argv));

  sim::SimScenario s;
  s.sender_capacity = preset.config.sender_buffer_bytes;
  s.receiver_capacity = preset.config.receiver_buffer_bytes;
  s.tpt_mbps = {140.0, 140.0, 140.0};  // center of the throttle range
  s.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
  s.max_threads = preset.config.max_threads;

  core::PipelineConfig cfg;
  cfg.ppo = ppo;
  cfg.max_threads = preset.config.max_threads;
  cfg.sim_options.tpt_jitter = 0.5;  // train across 70-210 Mbps per thread
  std::printf("training AutoMDT agent with domain randomization ...\n\n");
  const core::AutoMdt mdt = core::AutoMdt::train_on_scenario(s, cfg);

  Table table({"controller", "recovery to 90% after switch (s)",
               "mean rate after switch (Mbps)"},
              1);
  auto actrl = mdt.make_controller(/*deterministic=*/true);
  const PhaseResult ra = run_with_switch(*actrl, &mdt, 21);
  optimizers::MarlinController marlin;
  const PhaseResult rm = run_with_switch(marlin, nullptr, 21);
  optimizers::GlobusStaticController globus;
  const PhaseResult rg = run_with_switch(globus, nullptr, 21);

  auto row = [&](const std::string& name, const PhaseResult& r) {
    table.add_row({name,
                   r.recovery_time_s >= 0.0 ? Cell{r.recovery_time_s}
                                            : Cell{std::string("never")},
                   r.mean_rate_after});
  };
  row("AutoMDT", ra);
  row("Marlin", rm);
  row("Globus (static)", rg);
  table.print(std::cout);

  std::printf("\nshape check: AutoMDT recovers in %.0f s with the higher "
              "post-switch rate; Marlin's recovery depends on where its "
              "climbers were (over-provisioning cushions it at the cost of "
              "extra threads); the static configuration never adapts.\n",
              ra.recovery_time_s);
  return 0;
}
