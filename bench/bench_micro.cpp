// Microbenchmarks (google-benchmark): the hot paths under the paper-scale
// experiments — the discrete-event queue, one simulator probe step, network
// forward/backward, matmul, and the concurrent primitives of the threaded
// engine.
#include <benchmark/benchmark.h>

#include <thread>

#include "common/mpmc_queue.hpp"
#include "common/observation.hpp"
#include "common/rng.hpp"
#include "nn/module.hpp"
#include "rl/networks.hpp"
#include "sim/dynamics_simulator.hpp"
#include "sim/event_queue.hpp"
#include "transfer/token_bucket.hpp"

namespace {

using namespace automdt;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1.0);
  for (auto _ : state) {
    sim::EventQueue q;
    q.reserve(n);
    for (double t : times) q.push({t, Stage::kRead});
    double acc = 0.0;
    while (!q.empty()) acc += q.pop().time;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SimulatorStep(benchmark::State& state) {
  sim::SimScenario s;
  s.tpt_mbps = {80.0, 160.0, 200.0};
  s.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
  sim::DynamicsSimulator sim(s);
  const int threads = static_cast<int>(state.range(0));
  long long events = 0;
  for (auto _ : state) {
    const auto r = sim.step({threads, threads, threads});
    events += r.events_processed;
    benchmark::DoNotOptimize(r.reward);
  }
  state.SetItemsProcessed(events);
  state.SetLabel("events/iter=" +
                 std::to_string(events / std::max<long long>(1,
                                state.iterations())));
}
BENCHMARK(BM_SimulatorStep)->Arg(5)->Arg(15)->Arg(30);

void BM_MatrixMatmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  nn::Matrix a(n, n), b(n, n);
  for (double& v : a.data()) v = rng.uniform(-1, 1);
  for (double& v : b.data()) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    nn::Matrix c = matmul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatrixMatmul)->Arg(64)->Arg(128)->Arg(256);

void BM_PolicyForward(benchmark::State& state) {
  Rng rng(3);
  rl::PpoConfig cfg;
  cfg.hidden_dim = static_cast<std::size_t>(state.range(0));
  rl::PolicyNetwork net(kObservationSize, 3, cfg, rng);
  nn::Matrix states(10, kObservationSize, 0.3);
  for (auto _ : state) {
    const auto dist = net.forward(nn::Tensor::constant(states));
    benchmark::DoNotOptimize(dist.mean().value().data().data());
  }
}
BENCHMARK(BM_PolicyForward)->Arg(64)->Arg(128)->Arg(256);

void BM_PolicyForwardBackward(benchmark::State& state) {
  Rng rng(4);
  rl::PpoConfig cfg;
  cfg.hidden_dim = static_cast<std::size_t>(state.range(0));
  rl::PolicyNetwork net(kObservationSize, 3, cfg, rng);
  nn::Matrix states(10, kObservationSize, 0.3);
  nn::Matrix actions(10, 3, 5.0);
  for (auto _ : state) {
    net.zero_grad();
    const auto dist = net.forward(nn::Tensor::constant(states));
    sum(dist.log_prob(actions)).backward();
    benchmark::DoNotOptimize(net.grad_norm());
  }
}
BENCHMARK(BM_PolicyForwardBackward)->Arg(64)->Arg(128)->Arg(256);

void BM_MpmcQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    MpmcQueue<int> q(256);
    std::thread producer([&] {
      for (int i = 0; i < 10000; ++i) q.push(i);
      q.close();
    });
    long long acc = 0;
    while (auto v = q.pop()) acc += *v;
    producer.join();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_MpmcQueueThroughput);

void BM_TokenBucketUncontended(benchmark::State& state) {
  transfer::TokenBucket bucket(1e12, 1e12);  // effectively unlimited
  for (auto _ : state) {
    benchmark::DoNotOptimize(bucket.acquire(1024.0));
  }
}
BENCHMARK(BM_TokenBucketUncontended);

void BM_RngNormal(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.normal());
}
BENCHMARK(BM_RngNormal);

}  // namespace

BENCHMARK_MAIN();
