// Microbenchmarks (google-benchmark): the hot paths under the paper-scale
// experiments — the discrete-event queue, one simulator probe step, network
// forward/backward, matmul, and the concurrent primitives of the threaded
// engine.
#include <benchmark/benchmark.h>

#include <memory>
#include <thread>

#include "common/mpmc_queue.hpp"
#include "common/observation.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "nn/module.hpp"
#include "rl/networks.hpp"
#include "rl/rollout.hpp"
#include "sim/dynamics_simulator.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator_env.hpp"
#include "transfer/token_bucket.hpp"

namespace {

using namespace automdt;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1.0);
  for (auto _ : state) {
    sim::EventQueue q;
    q.reserve(n);
    for (double t : times) q.push({t, Stage::kRead});
    double acc = 0.0;
    while (!q.empty()) acc += q.pop().time;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SimulatorStep(benchmark::State& state) {
  sim::SimScenario s;
  s.tpt_mbps = {80.0, 160.0, 200.0};
  s.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
  sim::DynamicsSimulator sim(s);
  const int threads = static_cast<int>(state.range(0));
  long long events = 0;
  for (auto _ : state) {
    const auto r = sim.step({threads, threads, threads});
    events += r.events_processed;
    benchmark::DoNotOptimize(r.reward);
  }
  state.SetItemsProcessed(events);
  state.SetLabel("events/iter=" +
                 std::to_string(events / std::max<long long>(1,
                                state.iterations())) +
                 " queue_cap=" + std::to_string(sim.queue_capacity()));
}
BENCHMARK(BM_SimulatorStep)->Arg(5)->Arg(15)->Arg(30);

void BM_MatrixMatmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  nn::Matrix a(n, n), b(n, n);
  for (double& v : a.data()) v = rng.uniform(-1, 1);
  for (double& v : b.data()) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    nn::Matrix c = matmul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatrixMatmul)->Arg(64)->Arg(128)->Arg(256);

// Same kernel through an explicitly sized global pool: args are
// (matrix size, pool lanes). Lanes=1 is the serial baseline, so the ratio of
// the two rows is the matmul speedup on this machine.
void BM_MatrixMatmulPooled(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  set_global_thread_pool_size(static_cast<int>(state.range(1)));
  Rng rng(2);
  nn::Matrix a(n, n), b(n, n);
  for (double& v : a.data()) v = rng.uniform(-1, 1);
  for (double& v : b.data()) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    nn::Matrix c = matmul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  set_global_thread_pool_size(0);
}
BENCHMARK(BM_MatrixMatmulPooled)
    ->Args({256, 1})->Args({256, 2})->Args({256, 4})
    ->Args({512, 1})->Args({512, 4});

// Dispatch cost of an (almost) empty parallel region — what a 5 µs matmul
// pays to use the pool at all.
void BM_ParallelForOverhead(benchmark::State& state) {
  ThreadPool pool(static_cast<int>(state.range(0)));
  std::vector<double> out(1024, 0.0);
  for (auto _ : state) {
    pool.parallel_for(0, out.size(), 64, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) out[i] += 1.0;
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * out.size());
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(2)->Arg(4);

// Vectorized rollout collection: one round of N concurrent 10-step episodes.
// Args are (num_envs, pool lanes); items processed = simulator events, so
// the rate column reads directly as events/sec.
void BM_VecRolloutCollect(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::SimScenario s;
  s.tpt_mbps = {80.0, 160.0, 200.0};
  s.bandwidth_mbps = {1000.0, 1000.0, 1000.0};

  std::vector<std::unique_ptr<Env>> envs;
  for (std::size_t i = 0; i < n; ++i)
    envs.push_back(std::make_unique<sim::SimulatorEnv>(s));
  rl::VecEnv vec(std::move(envs), /*seed=*/42);

  Rng rng(3);
  rl::PpoConfig cfg;
  cfg.hidden_dim = 64;
  rl::PolicyNetwork policy(kObservationSize, 3, cfg, rng);
  ThreadPool pool(static_cast<int>(state.range(1)));
  const double r_max = sim::SimulatorEnv(s).theoretical_max_reward();

  long long steps = 0;
  for (auto _ : state) {
    rl::RolloutMemory memory;
    const auto rewards = rl::collect_episodes(vec, policy, /*steps=*/10,
                                              r_max, vec.max_threads(), pool,
                                              memory);
    steps += static_cast<long long>(memory.size());
    benchmark::DoNotOptimize(rewards.data());
  }
  state.SetItemsProcessed(steps);
  state.SetLabel("env-steps");
}
BENCHMARK(BM_VecRolloutCollect)
    ->Args({1, 1})->Args({4, 1})->Args({4, 4})->Args({8, 4});

void BM_PolicyForward(benchmark::State& state) {
  Rng rng(3);
  rl::PpoConfig cfg;
  cfg.hidden_dim = static_cast<std::size_t>(state.range(0));
  rl::PolicyNetwork net(kObservationSize, 3, cfg, rng);
  nn::Matrix states(10, kObservationSize, 0.3);
  for (auto _ : state) {
    const auto dist = net.forward(nn::Tensor::constant(states));
    benchmark::DoNotOptimize(dist.mean().value().data().data());
  }
}
BENCHMARK(BM_PolicyForward)->Arg(64)->Arg(128)->Arg(256);

void BM_PolicyForwardBackward(benchmark::State& state) {
  Rng rng(4);
  rl::PpoConfig cfg;
  cfg.hidden_dim = static_cast<std::size_t>(state.range(0));
  rl::PolicyNetwork net(kObservationSize, 3, cfg, rng);
  nn::Matrix states(10, kObservationSize, 0.3);
  nn::Matrix actions(10, 3, 5.0);
  for (auto _ : state) {
    net.zero_grad();
    const auto dist = net.forward(nn::Tensor::constant(states));
    sum(dist.log_prob(actions)).backward();
    benchmark::DoNotOptimize(net.grad_norm());
  }
}
BENCHMARK(BM_PolicyForwardBackward)->Arg(64)->Arg(128)->Arg(256);

void BM_MpmcQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    MpmcQueue<int> q(256);
    std::thread producer([&] {
      for (int i = 0; i < 10000; ++i) q.push(i);
      q.close();
    });
    long long acc = 0;
    while (auto v = q.pop()) acc += *v;
    producer.join();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_MpmcQueueThroughput);

void BM_TokenBucketUncontended(benchmark::State& state) {
  transfer::TokenBucket bucket(1e12, 1e12);  // effectively unlimited
  for (auto _ : state) {
    benchmark::DoNotOptimize(bucket.acquire(1024.0));
  }
}
BENCHMARK(BM_TokenBucketUncontended);

void BM_RngNormal(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.normal());
}
BENCHMARK(BM_RngNormal);

}  // namespace

BENCHMARK_MAIN();
