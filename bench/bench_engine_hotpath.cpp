// Hot-path overhead benchmark for the data plane (DESIGN.md §9).
//
// Small chunks make per-chunk coordination — staging-queue handoff, admission
// control, chunk claiming, frame writes — the dominant cost, so chunks/s here
// is a direct read on data-plane overhead rather than memcpy bandwidth. Each
// ⟨n_r, n_n, n_w⟩ point runs twice: once on the lock-free MPMC ring staging
// queues (the default) and once on the original mutex+deque baseline
// (lock_free_staging = false), for both the in-process and the TCP backend.
// Ring stall/park counters from TransferStats are printed alongside so a
// throughput regression can be attributed to contention, not guessed at.
//
// Numbers are machine-local overhead floors, not WAN claims; EXPERIMENTS.md
// records the run together with the core count printed in the header.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/uring.hpp"
#include "transfer/engine.hpp"

using namespace automdt;
using Clock = std::chrono::steady_clock;

namespace {

struct Sweep {
  int n_r, n_n, n_w;
};

struct Result {
  double chunks_per_s = 0.0;
  transfer::TransferStats stats;
};

/// I/O-backend knobs for the A/B section; the default reproduces the
/// historical hot-path setup (syscall backend, header-only chunks).
struct IoSetup {
  transfer::IoBackend backend = transfer::IoBackend::kSyscall;
  bool fill = false;
  bool sendfile = false;
  std::string source_dir;
  std::string sink_dir;
};

Result run_once(transfer::NetworkBackend backend, bool lock_free,
                const Sweep& sweep, double total_mib,
                std::uint32_t trace_sample_every = 0,
                bool wire_stamp = false, const IoSetup& io = {},
                bool stage_clocks = true) {
  transfer::EngineConfig config;
  config.telemetry.stage_clocks = stage_clocks;
  config.backend = backend;
  config.lock_free_staging = lock_free;
  config.max_threads = 4;
  config.chunk_bytes = 16 * 1024;  // small: coordination dominates
  config.sender_buffer_bytes = 2.0 * kMiB;
  config.receiver_buffer_bytes = 2.0 * kMiB;
  config.fill_payload = io.fill;
  config.verify_payload = false;
  config.io_backend = io.backend;
  config.tcp.sendfile = io.sendfile;
  config.file_io.source_dir = io.source_dir;
  config.file_io.sink_dir = io.sink_dir;
  config.telemetry.sample_every = trace_sample_every;
  config.telemetry.wire_stamp = wire_stamp;
  const std::vector<double> files(32, total_mib * kMiB / 32.0);

  transfer::TransferSession session(config, files);
  const auto t0 = Clock::now();
  session.start({sweep.n_r, sweep.n_n, sweep.n_w});
  session.wait_finished(600.0);
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  Result result;
  result.stats = session.stats();
  result.chunks_per_s =
      static_cast<double>(result.stats.chunks_written) / elapsed;
  return result;
}

void run_point(transfer::NetworkBackend backend, const Sweep& sweep,
               double total_mib) {
  const Result ring = run_once(backend, /*lock_free=*/true, sweep, total_mib);
  const Result mtx = run_once(backend, /*lock_free=*/false, sweep, total_mib);
  const auto& snd = ring.stats.sender_queue_counters;
  const auto& rcv = ring.stats.receiver_queue_counters;
  const double speedup =
      mtx.chunks_per_s > 0.0 ? ring.chunks_per_s / mtx.chunks_per_s : 0.0;
  std::printf(
      "  <%d,%d,%d>  ring %8.0f ck/s  mutex %8.0f ck/s  (x%.2f)  "
      "stalls snd %llu/%llu rcv %llu/%llu  parks %llu\n",
      sweep.n_r, sweep.n_n, sweep.n_w, ring.chunks_per_s, mtx.chunks_per_s,
      speedup, static_cast<unsigned long long>(snd.push_stalls),
      static_cast<unsigned long long>(snd.pop_stalls),
      static_cast<unsigned long long>(rcv.push_stalls),
      static_cast<unsigned long long>(rcv.pop_stalls),
      static_cast<unsigned long long>(snd.push_parks + snd.pop_parks +
                                      rcv.push_parks + rcv.pop_parks));
  if (backend == transfer::NetworkBackend::kTcp &&
      ring.stats.net_batch_writes > 0) {
    std::printf("           coalescing: %llu chunks in %llu writes "
                "(%.1f chunks/write)\n",
                static_cast<unsigned long long>(ring.stats.net_chunks_coalesced),
                static_cast<unsigned long long>(ring.stats.net_batch_writes),
                static_cast<double>(ring.stats.net_chunks_coalesced) /
                    static_cast<double>(ring.stats.net_batch_writes));
  }
}

// Telemetry overhead: the same hot-path point with chunk-lifecycle tracing
// at 0% (sampler off), 1-in-100, and 100% sampling. The acceptance bar for
// default settings (sampling 1/128 ~ 1%) is < 2% chunks/s regression vs
// sampling off; the compiled-out floor needs a -DAUTOMDT_TELEMETRY=OFF
// build of this same binary (EXPERIMENTS.md records both).
void run_telemetry_overhead(double total_mib) {
  std::printf("telemetry overhead, in-process <2,2,2> "
              "(trace spans compiled %s):\n",
              telemetry::kTraceCompiledIn ? "in" : "out");
  const Sweep sweep{2, 2, 2};
  struct Point {
    const char* label;
    std::uint32_t every;
  };
  const Point points[] = {{"off (0%)", 0}, {"1-in-100", 100}, {"all (100%)", 1}};
  double baseline = 0.0;
  for (const Point& p : points) {
    // Median of 3: single runs of this bench jitter a few percent, which
    // would drown the effect being measured.
    double runs[3];
    for (double& r : runs)
      r = run_once(transfer::NetworkBackend::kInProcess, /*lock_free=*/true,
                   sweep, total_mib, p.every)
              .chunks_per_s;
    std::sort(std::begin(runs), std::end(runs));
    const double chunks_per_s = runs[1];
    if (p.every == 0) baseline = chunks_per_s;
    const double delta =
        baseline > 0.0 ? (chunks_per_s / baseline - 1.0) * 100.0 : 0.0;
    std::printf("  sampling %-10s %8.0f ck/s  (%+.1f%% vs off)\n", p.label,
                chunks_per_s, delta);
  }
  std::printf("\n");
}

// Stage-clock overhead (DESIGN.md §14): the same hot-path point with the
// always-on per-worker stage clocks enabled (default) vs compiled to a null
// pointer path (telemetry.stage_clocks = false). Transitions are lazy — a
// worker only touches its clock when an operation actually blocks — so the
// on/off delta bounds what the health plane costs when the pipeline runs
// free. The acceptance bar is "within run-to-run noise"; EXPERIMENTS.md
// records the 1-core caveat alongside the numbers.
void run_stage_clock_overhead(double total_mib) {
  std::printf("stage-clock overhead, in-process <2,2,2> "
              "(per-worker state accounting):\n");
  const Sweep sweep{2, 2, 2};
  struct Point {
    const char* label;
    bool clocks;
  };
  const Point points[] = {{"off", false}, {"on (default)", true}};
  double baseline = 0.0;
  for (const Point& p : points) {
    // Median of 3, same rationale as the telemetry sweep above.
    double runs[3];
    for (double& r : runs)
      r = run_once(transfer::NetworkBackend::kInProcess, /*lock_free=*/true,
                   sweep, total_mib, 0, false, {}, p.clocks)
              .chunks_per_s;
    std::sort(std::begin(runs), std::end(runs));
    const double chunks_per_s = runs[1];
    if (!p.clocks) baseline = chunks_per_s;
    const double delta =
        baseline > 0.0 ? (chunks_per_s / baseline - 1.0) * 100.0 : 0.0;
    std::printf("  stage clocks %-12s %8.0f ck/s  (%+.1f%% vs off)\n",
                p.label, chunks_per_s, delta);
  }
  std::printf("\n");
}

// Wire-stamp overhead: the TCP hot path with the 16-byte trace stamp
// appended to sampled chunk frames at 0% (flag off — byte-identical wire
// format), the 1-in-128 default, and 100% of chunks. Measures the marginal
// cost of the bigger header plus the receiver-side e2e/wire histogram
// updates, on top of local chunk-lifecycle tracing.
void run_wire_stamp_overhead(double total_mib) {
  std::printf("wire-stamp overhead, tcp <2,2,2> (16-byte stamp on sampled "
              "chunk frames):\n");
  const Sweep sweep{2, 2, 2};
  struct Point {
    const char* label;
    std::uint32_t every;
    bool stamp;
  };
  const Point points[] = {{"off (0%)", 0, false},
                          {"1-in-128", 128, true},
                          {"all (100%)", 1, true}};
  double baseline = 0.0;
  for (const Point& p : points) {
    // Median of 3, same rationale as the telemetry sweep above.
    double runs[3];
    for (double& r : runs)
      r = run_once(transfer::NetworkBackend::kTcp, /*lock_free=*/true, sweep,
                   total_mib, p.every, p.stamp)
              .chunks_per_s;
    std::sort(std::begin(runs), std::end(runs));
    const double chunks_per_s = runs[1];
    if (p.every == 0) baseline = chunks_per_s;
    const double delta =
        baseline > 0.0 ? (chunks_per_s / baseline - 1.0) * 100.0 : 0.0;
    std::printf("  wire stamp %-10s %8.0f ck/s  (%+.1f%% vs off)\n", p.label,
                chunks_per_s, delta);
  }
  std::printf("\n");
}

// I/O backend A/B (DESIGN.md §12): the syscall baseline vs the io_uring
// batched/zero-copy backend on the real TCP data plane. On a 1-core CI box
// wall-clock is noise-bound, so the headline columns are the per-chunk
// overhead denominators from the engine counters: sys/ck (io.syscalls_total
// / chunks — storage preads/pwrites + socket sends/recvs/polls + ring
// enters) and cp/ck (io.payload_copies_total / chunks — payload memcpys
// after the payload first exists). The legacy receive path alone costs 2
// copies per chunk; the leased path carves payloads out of the recv block
// in place, so its only copies are the partial-frame respills at block
// boundaries (a per-block, not per-chunk, cost). rsys/ck and rcp/ck are the
// receiver-side slices of the same denominators (io.recv_syscalls_total and
// io.recv_copies_total / chunks): the multishot provided-buffer reader
// should pull both well under the syscall backend's poll+recv, 2-copy
// baseline.
void run_io_backend_ab(double total_mib) {
  const bool uring_available = net::UringRing::available();
  std::printf("io-backend A/B, tcp <2,2,2> (uring %s):\n",
              uring_available ? "available" : "UNAVAILABLE - rows fall back");
  struct Row {
    const char* label;
    IoSetup io;
  };
  // Synthetic payloads (reader fills chunks in memory) isolate the data
  // plane; the file rows add real storage endpoints so batched READ/WRITE
  // SQEs and the sendfile fast path show up in sys/ck.
  std::vector<Row> rows;
  rows.push_back(
      {"syscall mem ", {transfer::IoBackend::kSyscall, true, false, {}, {}}});
  rows.push_back(
      {"uring   mem ", {transfer::IoBackend::kUring, true, false, {}, {}}});
  const std::string dir =
      (std::filesystem::temp_directory_path() / "automdt_bench_io").string();
  std::error_code ec;
  std::filesystem::create_directories(dir + "/src", ec);
  std::filesystem::create_directories(dir + "/dst", ec);
  if (!ec) {
    rows.push_back({"syscall file",
                    {transfer::IoBackend::kSyscall, false, false,
                     dir + "/src", dir + "/dst"}});
    rows.push_back({"uring   file",
                    {transfer::IoBackend::kUring, false, false,
                     dir + "/src", dir + "/dst"}});
    rows.push_back({"sendfile    ",
                    {transfer::IoBackend::kUring, false, true,
                     dir + "/src", dir + "/dst"}});
  }
  const Sweep sweep{2, 2, 2};
  for (const Row& row : rows) {
    // Median of 3 for throughput; the per-chunk counters are deterministic
    // enough that the last run's stats serve for the ratio columns.
    double runs[3];
    Result last;
    for (double& r : runs) {
      last = run_once(transfer::NetworkBackend::kTcp, /*lock_free=*/true,
                      sweep, total_mib, 0, false, row.io);
      r = last.chunks_per_s;
    }
    std::sort(std::begin(runs), std::end(runs));
    const double chunks =
        std::max<double>(1.0, static_cast<double>(last.stats.chunks_written));
    std::printf("  %s  %8.0f ck/s  sys/ck %6.2f  cp/ck %5.2f  "
                "rsys/ck %5.2f  rcp/ck %5.2f  (backend=%s fallbacks=%llu)\n",
                row.label, runs[1],
                static_cast<double>(last.stats.io_syscalls) / chunks,
                static_cast<double>(last.stats.payload_copies) / chunks,
                static_cast<double>(last.stats.recv_syscalls) / chunks,
                static_cast<double>(last.stats.recv_copies) / chunks,
                last.stats.io_backend_uring ? "uring" : "syscall",
                static_cast<unsigned long long>(
                    last.stats.io_backend_fallbacks));
  }
  std::filesystem::remove_all(dir, ec);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  // --quick shrinks the dataset for CI smoke runs.
  double total_mib = 64.0;
  for (int i = 1; i < argc; ++i)
    if (std::string_view(argv[i]) == "--quick") total_mib = 8.0;

  std::printf("bench_engine_hotpath: per-chunk overhead, 16 KiB chunks "
              "(hw threads: %u)\n",
              std::thread::hardware_concurrency());
  std::printf("stalls = failed lock-free attempts (spin/yield); "
              "parks = condvar sleeps\n\n");

  const Sweep sweeps[] = {{1, 1, 1}, {2, 2, 2}, {4, 4, 4}};
  for (const auto backend : {transfer::NetworkBackend::kInProcess,
                             transfer::NetworkBackend::kTcp}) {
    std::printf("%s backend (%.0f MiB):\n",
                backend == transfer::NetworkBackend::kTcp ? "tcp"
                                                          : "in-process",
                total_mib);
    for (const Sweep& sweep : sweeps) run_point(backend, sweep, total_mib);
    std::printf("\n");
  }
  run_io_backend_ab(total_mib);
  run_telemetry_overhead(total_mib);
  run_stage_clock_overhead(total_mib);
  run_wire_stamp_overhead(total_mib);
  return 0;
}
