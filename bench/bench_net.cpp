// Loopback benchmarks for the TCP transport subsystem (DESIGN.md §8).
//
// Measures the transport in isolation — frame round-trip latency, raw
// framed-chunk throughput at 1 and 4 streams, RPC round-trip over
// TcpTransport — and then the full TransferSession running over the Tcp
// backend vs the in-process queue backend, so the end-to-end overhead of
// real sockets + framing + checksums is a single printed ratio.
//
// Numbers are loopback on the build machine, not a WAN claim; EXPERIMENTS.md
// records the run and the core count it was taken on.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/checksum.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/stream_pool.hpp"
#include "net/tcp_transport.hpp"
#include "transfer/engine.hpp"

using namespace automdt;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Frame ping/pong round-trip latency over a loopback TCP connection.
void bench_frame_rtt(int rounds) {
  auto listener = net::Listener::open("127.0.0.1", 0);
  net::Connector connector;
  auto client = connector.connect("127.0.0.1", listener->port());
  auto server = listener->accept(2.0);

  std::thread echo([&] {
    net::FrameReader reader(*server);
    net::FrameWriter writer(*server);
    net::Frame frame;
    while (reader.read(frame, 5.0) == net::FrameError::kNone) {
      if (writer.write(net::FrameType::kPong, frame.payload, 5.0) !=
          net::SocketStatus::kOk)
        break;
    }
  });

  net::FrameReader reader(*client);
  net::FrameWriter writer(*client);
  const std::vector<std::byte> payload(16, std::byte{0x42});
  std::vector<double> rtts_us;
  rtts_us.reserve(static_cast<std::size_t>(rounds));
  net::Frame frame;
  for (int i = 0; i < rounds; ++i) {
    const auto t0 = Clock::now();
    writer.write(net::FrameType::kPing, payload, 5.0);
    reader.read(frame, 5.0);
    rtts_us.push_back(seconds_since(t0) * 1e6);
  }
  client->shutdown_both();
  echo.join();

  std::sort(rtts_us.begin(), rtts_us.end());
  double sum = 0.0;
  for (const double r : rtts_us) sum += r;
  std::printf("frame RTT (16 B, %d rounds): mean %.1f us, p50 %.1f us, "
              "p99 %.1f us\n",
              rounds, sum / rtts_us.size(), rtts_us[rtts_us.size() / 2],
              rtts_us[rtts_us.size() * 99 / 100]);
}

/// Framed-chunk throughput through StreamPool -> StreamAcceptor.
void bench_stream_throughput(int n_streams, std::size_t chunk_bytes,
                             std::size_t total_bytes) {
  std::atomic<std::uint64_t> received{0};
  net::StreamAcceptor acceptor(
      {.host = "127.0.0.1", .port = 0},
      [&](net::WireChunk&& chunk) {
        received.fetch_add(chunk.payload.size(), std::memory_order_relaxed);
        return true;
      });
  if (!acceptor.start()) {
    std::printf("stream throughput: failed to bind acceptor\n");
    return;
  }
  net::StreamPool pool({.host = "127.0.0.1",
                        .port = acceptor.port(),
                        .max_streams = n_streams});
  pool.set_active(n_streams);

  const std::size_t per_stream = total_bytes / n_streams;
  const auto t0 = Clock::now();
  std::vector<std::thread> senders;
  for (int s = 0; s < n_streams; ++s) {
    senders.emplace_back([&, s] {
      net::WireChunk chunk;
      chunk.size = static_cast<std::uint32_t>(chunk_bytes);
      chunk.payload.assign(chunk_bytes, std::byte{0x5A});
      chunk.checksum = fnv1a(chunk.payload);
      for (std::size_t sent = 0; sent < per_stream; sent += chunk_bytes) {
        chunk.offset = sent;
        if (!pool.send_chunk(s, chunk)) break;
      }
    });
  }
  for (auto& t : senders) t.join();
  const std::size_t expected = (per_stream / chunk_bytes) * chunk_bytes *
                               static_cast<std::size_t>(n_streams);
  while (received.load(std::memory_order_relaxed) < expected)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const double elapsed = seconds_since(t0);
  pool.close();
  acceptor.stop();

  const double gbps = static_cast<double>(expected) * 8.0 / elapsed / 1e9;
  std::printf("chunk throughput (%d stream%s, %zu KiB chunks): "
              "%.2f Gbps (%.0f MiB in %.2f s, %llu frame errors)\n",
              n_streams, n_streams == 1 ? "" : "s", chunk_bytes / 1024,
              gbps, static_cast<double>(expected) / kMiB, elapsed,
              static_cast<unsigned long long>(acceptor.frame_errors()));
}

/// Request/response latency over the TcpTransport control channel.
void bench_rpc_rtt(int rounds) {
  auto listener = net::Listener::open("127.0.0.1", 0);
  auto sender = net::TcpTransport::connect("127.0.0.1", listener->port());
  auto accepted = listener->accept(2.0);
  auto receiver = net::TcpTransport::adopt(std::move(*accepted));

  std::thread responder([&] {
    while (auto message = receiver->receive()) {
      if (!std::holds_alternative<transfer::BufferStatusRequest>(*message))
        continue;
      const auto& request = std::get<transfer::BufferStatusRequest>(*message);
      receiver->send(
          transfer::BufferStatusResponse{request.request_id, 1.0, 2.0, 3.0});
    }
  });

  const auto t0 = Clock::now();
  for (int i = 0; i < rounds; ++i) {
    sender->send(transfer::BufferStatusRequest{static_cast<std::uint64_t>(i)});
    sender->receive();
  }
  const double elapsed = seconds_since(t0);
  receiver->close();
  sender->close();
  responder.join();
  std::printf("RPC round-trip (TcpTransport, %d rounds): mean %.1f us\n",
              rounds, elapsed / rounds * 1e6);
}

/// Full TransferSession throughput, Tcp backend vs in-process queues.
double bench_engine(transfer::NetworkBackend backend, double total_mib) {
  transfer::EngineConfig config;
  config.backend = backend;
  config.max_threads = 4;
  config.chunk_bytes = 256 * 1024;
  config.sender_buffer_bytes = 8.0 * kMiB;
  config.receiver_buffer_bytes = 8.0 * kMiB;
  const std::vector<double> files(16, total_mib * kMiB / 16.0);
  transfer::TransferSession session(config, files);
  const auto t0 = Clock::now();
  session.start({4, 4, 4});
  session.wait_finished(600.0);
  const double elapsed = seconds_since(t0);
  const transfer::TransferStats stats = session.stats();
  const double mibps = total_mib / elapsed;
  std::printf("engine end-to-end (%s, %.0f MiB): %.0f MiB/s "
              "(verify failures %llu, frame errors %llu)\n",
              backend == transfer::NetworkBackend::kTcp ? "tcp" : "in-process",
              total_mib, mibps,
              static_cast<unsigned long long>(stats.verify_failures),
              static_cast<unsigned long long>(stats.net_frame_errors));
  return mibps;
}

}  // namespace

int main() {
  std::printf("bench_net: loopback TCP transport benchmarks "
              "(hw threads: %u)\n\n",
              std::thread::hardware_concurrency());
  bench_frame_rtt(2000);
  bench_rpc_rtt(1000);
  bench_stream_throughput(1, 256 * 1024, 256u << 20);
  bench_stream_throughput(4, 256 * 1024, 256u << 20);
  std::printf("\n");
  const double tcp = bench_engine(transfer::NetworkBackend::kTcp, 256.0);
  const double local = bench_engine(transfer::NetworkBackend::kInProcess,
                                    256.0);
  std::printf("tcp/in-process end-to-end ratio: %.2f\n", tcp / local);
  return 0;
}
