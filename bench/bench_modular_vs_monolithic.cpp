// The paper's core thesis, measured directly: joint modular RL (AutoMDT,
// three concurrency values) vs a monolithic single-knob DRL agent in the
// style of Hasibul et al. [17] ("a single concurrency value without
// separating network and I/O tasks", §IV).
//
// §III: "if a sysadmin throttles per-connection speed ... existing tools
// will set the read and write concurrency to 100 (where 8-10 would suffice)
// because the monolithic design couples all components." On the read-
// bottleneck scenario the optimum is <13,7,5> (25 threads total); the
// monolithic optimum is <13,13,13> (39 total) — same throughput, ~55% more
// end-system threads and lower utility.
#include <iostream>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "rl/single_knob_agent.hpp"

using namespace automdt;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  bench::print_header(
      "Modular (3-knob) vs monolithic (1-knob) DRL — the core thesis",
      "monolithic design couples all stages to the most demanding one, "
      "over-subscribing end-system resources (§III); modular reaches the "
      "same throughput on far fewer threads");

  sim::SimScenario scenario;
  scenario.sender_capacity = 4.0 * kGiB;
  scenario.receiver_capacity = 4.0 * kGiB;
  scenario.tpt_mbps = {80.0, 160.0, 200.0};  // optimum <13,7,5>
  scenario.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
  scenario.max_threads = 30;
  const double r_max = scenario.theoretical_max_reward();

  rl::PpoConfig ppo = bench::bench_ppo_config(bench::paper_flag(argc, argv));

  std::printf("training modular (AutoMDT) agent ...\n");
  sim::SimulatorEnv env_m(scenario);
  rl::PpoAgent modular(kObservationSize, scenario.max_threads, ppo);
  const rl::TrainResult rm = modular.train(env_m, r_max);

  std::printf("training monolithic single-knob agent ...\n\n");
  sim::SimulatorEnv env_s(scenario);
  rl::SingleKnobPpoAgent monolithic(kObservationSize, scenario.max_threads,
                                    ppo);
  const rl::TrainResult rs = monolithic.train(env_s, r_max);

  // Deterministic evaluation on the emulated testbed.
  const testbed::ScenarioPreset preset = testbed::bottleneck_read();
  auto evaluate = [&](auto& agent) {
    testbed::EmulatedEnvironment env(preset.config, testbed::Dataset::infinite());
    Rng rng(5);
    std::vector<double> state = env.reset(rng);
    ConcurrencyTuple tuple{1, 1, 1};
    double rate = 0.0;
    double threads = 0.0;
    const int horizon = 60;
    for (int t = 0; t < horizon; ++t) {
      tuple = agent.act(state, rng, /*deterministic=*/true);
      const EnvStep out = env.step(tuple);
      state = out.observation;
      if (t >= horizon / 2) {  // steady-state window
        rate += out.throughputs_mbps.write;
        threads += tuple.total();
      }
    }
    return std::tuple<double, double, ConcurrencyTuple>{
        rate / (horizon / 2), threads / (horizon / 2), tuple};
  };

  const auto [rate_m, threads_m, tuple_m] = evaluate(modular);
  const auto [rate_s, threads_s, tuple_s] = evaluate(monolithic);

  Table table({"agent", "best train reward", "steady rate (Mbps)",
               "mean total threads", "final tuple"},
              2);
  table.add_row({std::string("modular 3-knob (AutoMDT)"), rm.best_reward,
                 rate_m, threads_m, tuple_m.to_string()});
  table.add_row({std::string("monolithic 1-knob ([17]-style)"), rs.best_reward,
                 rate_s, threads_s, tuple_s.to_string()});
  table.print(std::cout);

  std::printf("\nshape check: equal-ish throughput (%.0f vs %.0f Mbps) but "
              "monolithic uses %.0f%% more threads -> the over-subscription "
              "the modular architecture removes.\n",
              rate_m, rate_s,
              (threads_s - threads_m) / std::max(threads_m, 1.0) * 100.0);
  return 0;
}
