// Serve-plane loopback benchmark (DESIGN.md §13).
//
// For N concurrent sessions in {1, 8, 64}: aggregate verified chunk
// throughput, per-session fairness spread (min/max share of the aggregate),
// and the process-wide fd and thread counts while all N sessions are live —
// the last two are the tentpole claim: the event-driven plane holds thread
// count constant as session count grows (fds grow with connections, not
// sessions; here a handful of driver connections carry all N).
//
// Numbers are loopback on the build machine; EXPERIMENTS.md records the run
// and the core count. On 1–2 CI cores the client drivers, event loop, and
// workers all contend for the same cores, so chunks/s across N is a noise
// floor, not a scaling curve — the fairness spread and the flat thread count
// are the signals.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/session_client.hpp"
#include "serve/session_server.hpp"

using namespace automdt;
using Clock = std::chrono::steady_clock;

namespace {

std::size_t proc_count(const char* dir) {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(dir))
    ++n;
  return n;
}

struct RunResult {
  int sessions = 0;
  int loops = 1;
  double chunks_per_s = 0.0;
  double mib_per_s = 0.0;
  std::uint64_t chunks_total = 0;
  double fairness_min = 0.0;  // min per-session share of the ideal 1/N
  double fairness_max = 0.0;  // max share
  std::size_t fds = 0;
  std::size_t threads = 0;
};

RunResult run_sessions(int n_sessions, double duration_s,
                       std::size_t chunk_bytes, int event_loops) {
  serve::SessionServerConfig config;
  config.max_sessions = static_cast<std::size_t>(n_sessions) + 4;
  config.worker_threads = 4;
  config.queue_capacity = 512;
  config.event_loops = event_loops;
  serve::SessionServer server(std::move(config));
  if (!server.start()) {
    std::fprintf(stderr, "bench_serve: server failed to start\n");
    return {};
  }

  const int n_drivers = std::min(4, n_sessions);
  std::vector<std::uint64_t> per_session(
      static_cast<std::size_t>(n_sessions), 0);
  std::vector<std::thread> drivers;
  std::atomic<std::size_t> live_fds{0};
  std::atomic<std::size_t> live_threads{0};
  const auto t0 = Clock::now();
  for (int d = 0; d < n_drivers; ++d) {
    drivers.emplace_back([&, d] {
      auto client = serve::SessionClient::connect("127.0.0.1", server.port());
      if (!client) return;
      std::vector<std::uint32_t> ids;
      std::vector<int> slots;
      // One tenant per driver connection: with sharded loops the tenant
      // hash spreads the driver connections across loops, so the bench
      // exercises cross-shard admission rather than one loop doing it all.
      const std::string tenant = "bench" + std::to_string(d);
      for (int s = d; s < n_sessions; s += n_drivers) {
        auto open = client->open(tenant);
        if (!open.ok()) return;
        ids.push_back(open.session_id);
        slots.push_back(s);
      }
      if (d == 0) {
        // Sample while every session is live and data is about to flow.
        live_fds = proc_count("/proc/self/fd");
        live_threads = proc_count("/proc/self/task");
      }
      std::vector<std::uint64_t> offsets(ids.size(), 0);
      const auto deadline =
          t0 + std::chrono::duration<double>(duration_s);
      while (Clock::now() < deadline) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
          if (!client->send_pattern_chunk(ids[i], offsets[i], chunk_bytes))
            return;
          offsets[i] += chunk_bytes;
        }
      }
      for (std::size_t i = 0; i < ids.size(); ++i) {
        auto stats = client->close_session(ids[i]);
        if (stats)
          per_session[static_cast<std::size_t>(slots[i])] = stats->chunks_ok;
      }
    });
  }
  for (auto& t : drivers) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  server.stop();

  RunResult result;
  result.sessions = n_sessions;
  result.loops = event_loops;
  for (const std::uint64_t c : per_session) result.chunks_total += c;
  result.chunks_per_s = static_cast<double>(result.chunks_total) / elapsed;
  result.mib_per_s = result.chunks_per_s *
                     static_cast<double>(chunk_bytes) / (1024.0 * 1024.0);
  const double ideal = static_cast<double>(result.chunks_total) /
                       static_cast<double>(n_sessions);
  const auto [min_it, max_it] =
      std::minmax_element(per_session.begin(), per_session.end());
  result.fairness_min =
      ideal > 0 ? static_cast<double>(*min_it) / ideal : 0.0;
  result.fairness_max =
      ideal > 0 ? static_cast<double>(*max_it) / ideal : 0.0;
  result.fds = live_fds;
  result.threads = live_threads;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  double duration_s = 2.0;
  std::size_t chunk_bytes = 64 * 1024;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--duration" && i + 1 < argc)
      duration_s = std::stod(argv[++i]);
    else if (arg == "--chunk-kb" && i + 1 < argc)
      chunk_bytes = static_cast<std::size_t>(std::stoul(argv[++i])) * 1024;
  }

  std::printf("serve-plane loopback: 4 workers, sharded event loops, "
              "%.1f s per point, %zu KiB chunks\n\n",
              duration_s, chunk_bytes / 1024);
  std::printf("%6s %9s %12s %10s %12s %18s %6s %8s\n", "loops", "sessions",
              "chunks", "chunks/s", "MiB/s", "fairness min/max", "fds",
              "threads");
  for (const int loops : {1, 2}) {
    for (const int n : {1, 8, 64}) {
      const RunResult r = run_sessions(n, duration_s, chunk_bytes, loops);
      std::printf("%6d %9d %12llu %10.0f %12.1f %8.2f / %-7.2f %6zu %8zu\n",
                  r.loops, r.sessions,
                  static_cast<unsigned long long>(r.chunks_total),
                  r.chunks_per_s, r.mib_per_s, r.fairness_min, r.fairness_max,
                  r.fds, r.threads);
    }
  }
  std::printf("\nfairness = per-session chunk count relative to the ideal "
              "1/N share (1.00 = perfectly fair).\n");
  return 0;
}
