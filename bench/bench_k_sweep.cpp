// §IV-B ablation: the utility penalty base k.
//
// Paper: "The value of k is significant as it balances between resource
// usage and throughput ... In a simple sweep across several links (1–25
// Gbps), the sweet spot was just above 1 (specifically 1.02). We therefore
// fix k = 1.02 for all results in this paper."
//
// For each k we train an agent on a 1 Gbps and a 25 Gbps-class scenario and
// measure (a) achieved end-to-end rate and (b) total threads used on the
// production emulator. Small k maximizes rate but wastes threads; large k
// starves throughput; k ~= 1.02 should sit at the knee.
#include <iostream>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace automdt;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  bench::print_header(
      "§IV-B — penalty base k sweep (1 Gbps and 25 Gbps links)",
      "sweet spot just above 1 (k = 1.02): throughput held, threads pruned");

  struct LinkCase {
    const char* label;
    testbed::ScenarioPreset preset;
    StageTriple tpt;
    StageTriple bandwidth;
  };
  const LinkCase cases[] = {
      {"1 Gbps (read bottleneck)", testbed::bottleneck_read(),
       {80.0, 160.0, 200.0}, {1000.0, 1000.0, 1000.0}},
      {"25 Gbps (FABRIC class)", testbed::fabric_ncsa_tacc(),
       {2500.0, 1200.0, 2000.0}, {30000.0, 25000.0, 26000.0}},
  };
  const double ks[] = {1.001, 1.02, 1.08};

  rl::PpoConfig ppo = bench::bench_ppo_config(bench::paper_flag(argc, argv));
  ppo.max_episodes = std::min(ppo.max_episodes, 4000);

  Table table({"link", "k", "avg rate (Mbps)", "mean total threads",
               "rate per thread"},
              2);

  for (const auto& c : cases) {
    for (double k : ks) {
      std::printf("training: %s, k = %.3f ...\n", c.label, k);
      testbed::ScenarioPreset preset = c.preset;
      preset.config.utility.k = k;

      sim::SimScenario s;
      s.sender_capacity = preset.config.sender_buffer_bytes;
      s.receiver_capacity = preset.config.receiver_buffer_bytes;
      s.tpt_mbps = c.tpt;
      s.bandwidth_mbps = c.bandwidth;
      s.max_threads = preset.config.max_threads;
      s.utility.k = k;

      core::PipelineConfig cfg;
      cfg.ppo = ppo;
      cfg.max_threads = preset.config.max_threads;
      const core::AutoMdt mdt = core::AutoMdt::train_on_scenario(s, cfg);

      const testbed::Dataset dataset = testbed::Dataset::uniform(20, 1.0 * kGB);
      auto ctrl = mdt.make_controller(/*deterministic=*/true);
      const auto res = bench::run(preset, dataset, *ctrl, &mdt, 31);

      double threads = 0.0;
      for (const auto& p : res.series.points()) threads += p.threads.total();
      const double mean_threads =
          threads / static_cast<double>(res.series.points().size());
      table.add_row({std::string(c.label), k, res.average_throughput_mbps,
                     mean_threads, res.average_throughput_mbps / mean_threads});
    }
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf("\nshape check: k=1.001 uses the most threads, k=1.08 loses "
              "throughput,\nk=1.02 keeps rate within a few %% of the "
              "aggressive setting on far fewer threads.\n");
  return 0;
}
