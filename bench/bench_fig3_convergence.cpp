// Fig. 3 reproduction: AutoMDT vs Marlin on the FABRIC NCSA->TACC link,
// 100 x 1 GB transfer.
//
// Paper: "Marlin completes the transfer in 74 seconds, whereas AutoMDT takes
// only 44 seconds. AutoMDT reached the required concurrency level of 20 in
// just 7 seconds; Marlin required 62 seconds to reach 14 (8x slower)."
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "optimizers/marlin_controller.hpp"

using namespace automdt;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  bench::print_header(
      "Fig. 3 — AutoMDT vs Marlin convergence (NCSA->TACC, 100 x 1 GB)",
      "completion 44 s vs 74 s (~1.7x); concurrency 20 in 7 s vs 62 s to 14");

  const testbed::ScenarioPreset preset = testbed::fabric_ncsa_tacc();
  std::printf("training AutoMDT agent for %s ...\n\n", preset.name.c_str());
  rl::TrainResult training;
  const core::AutoMdt mdt = bench::train_agent(
      preset, {2500.0, 1200.0, 2000.0}, {30000.0, 25000.0, 26000.0},
      bench::bench_ppo_config(bench::paper_flag(argc, argv)), &training);

  const testbed::Dataset dataset = testbed::Dataset::paper_fig3();
  const int required_level = preset.expected_optimal.network;  // ~21 streams

  Table table({"tool", "completion (s)", "avg rate (Gbps)",
               "t to reach net>=" + std::to_string(required_level - 2) + " (s)",
               "net stddev after conv"},
              1);
  testbed::TimeSeriesRecorder automdt_series, marlin_series;

  // Aggregate over a few seeds; the paper's figure is a single run but the
  // emulator's jitter makes the average more informative.
  double a_total = 0.0, m_total = 0.0;
  int runs = 3;
  for (int seed = 0; seed < runs; ++seed) {
    auto actrl = mdt.make_controller(/*deterministic=*/true);
    const auto res_a = bench::run(preset, dataset, *actrl, &mdt, 100 + seed);
    optimizers::MarlinController marlin;
    const auto res_m = bench::run(preset, dataset, marlin, nullptr, 100 + seed);
    a_total += res_a.completion_time_s;
    m_total += res_m.completion_time_s;
    if (seed == 0) {
      automdt_series = res_a.series;
      marlin_series = res_m.series;
    }
  }

  auto add_row = [&](const std::string& name,
                     const testbed::TimeSeriesRecorder& s, double mean_time) {
    const auto reach = s.time_to_reach(Stage::kNetwork, required_level - 2, 0);
    const double conv_from = reach ? *reach : 0.0;
    table.add_row(
        {name, mean_time,
         s.mean_throughput(Stage::kWrite, conv_from, 1e9) / 1000.0,
         reach ? Cell{*reach} : Cell{std::string("never")},
         s.concurrency_stddev(Stage::kNetwork, conv_from, 1e9)});
  };
  add_row("AutoMDT", automdt_series, a_total / runs);
  add_row("Marlin", marlin_series, m_total / runs);
  table.print(std::cout);

  std::printf("\nMeasured ratio (Marlin/AutoMDT completion): %.2fx "
              "(paper: ~1.7x)\n",
              m_total / a_total);

  // Emit the time series behind the figure.
  std::ofstream f_a("/tmp/fig3_automdt.csv"), f_m("/tmp/fig3_marlin.csv");
  automdt_series.write_csv(f_a);
  marlin_series.write_csv(f_m);
  std::printf("time series written to /tmp/fig3_automdt.csv and "
              "/tmp/fig3_marlin.csv\n");
  return 0;
}
