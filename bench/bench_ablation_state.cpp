// §IV-D.1 ablation: does the agent really need the buffer-occupancy
// features?
//
// Paper: "if we only consider concurrent thread counts and the corresponding
// throughput, the agent may get confused because the same state can yield
// different rewards due to the dynamic nature of the memory buffer ... we
// found that the most important information is the available buffer space at
// both the sender and the receiver ends."
//
// Same scenario, same budget, two agents: full 8-feature state vs the state
// with the two buffer features masked to zero. Averaged over seeds.
#include <iostream>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"

using namespace automdt;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  bench::print_header(
      "§IV-D.1 — state-space ablation (buffer features masked)",
      "buffer occupancy at both ends is 'the most important information'; "
      "without it the same (threads, throughput) state yields different "
      "rewards and the agent trains worse");

  sim::SimScenario scenario;
  scenario.sender_capacity = 2.0 * kGiB;
  scenario.receiver_capacity = 2.0 * kGiB;
  scenario.tpt_mbps = {80.0, 160.0, 200.0};
  scenario.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
  scenario.max_threads = 30;
  const double r_max = scenario.theoretical_max_reward();

  rl::PpoConfig ppo = bench::bench_ppo_config(bench::paper_flag(argc, argv));
  ppo.max_episodes = std::min(ppo.max_episodes, 4000);
  ppo.stagnation_episodes = 1000000;  // fixed budget: compare final quality

  // Heavier randomization of initial buffer fill makes the aliasing the
  // paper describes bite: identical (threads, throughput) observations with
  // very different buffer states and therefore different returns.
  sim::SimulatorEnvOptions base_options;
  base_options.initial_buffer_max_fill = 1.0;

  const int seeds = 3;
  RunningStats full_best, masked_best, full_tail, masked_tail;
  auto tail_mean = [](const std::vector<double>& r) {
    double s = 0.0;
    const std::size_t from = r.size() > 300 ? r.size() - 300 : 0;
    for (std::size_t i = from; i < r.size(); ++i) s += r[i];
    return s / static_cast<double>(r.size() - from);
  };

  for (int seed = 0; seed < seeds; ++seed) {
    ppo.seed = 1000 + seed;

    sim::SimulatorEnvOptions full_opt = base_options;
    sim::SimulatorEnv full_env(scenario, full_opt);
    rl::PpoAgent full_agent(kObservationSize, scenario.max_threads, ppo);
    const auto rf = full_agent.train(full_env, r_max);
    full_best.add(rf.best_reward);
    full_tail.add(tail_mean(rf.episode_rewards));

    sim::SimulatorEnvOptions masked_opt = base_options;
    masked_opt.mask_buffer_features = true;
    sim::SimulatorEnv masked_env(scenario, masked_opt);
    rl::PpoAgent masked_agent(kObservationSize, scenario.max_threads, ppo);
    const auto rm = masked_agent.train(masked_env, r_max);
    masked_best.add(rm.best_reward);
    masked_tail.add(tail_mean(rm.episode_rewards));
    std::printf("seed %d: full best %.3f tail %.3f | masked best %.3f "
                "tail %.3f\n",
                seed, rf.best_reward, tail_mean(rf.episode_rewards),
                rm.best_reward, tail_mean(rm.episode_rewards));
  }

  Table table({"state space", "best reward (mean over seeds)",
               "last-300-episode mean"},
              3);
  table.add_row({std::string("full (with buffer features)"), full_best.mean(),
                 full_tail.mean()});
  table.add_row({std::string("masked (no buffer features)"),
                 masked_best.mean(), masked_tail.mean()});
  std::printf("\n");
  table.print(std::cout);
  std::printf("\nshape check: full-state agent %s the masked agent "
              "(paper predicts better training with buffer features).\n",
              full_tail.mean() > masked_tail.mean() ? "beats" : "does NOT beat");
  return 0;
}
