// Fig. 4 reproduction: discrete vs continuous action space for the PPO agent.
//
// Paper: "the discrete action space failed miserably ... we settled with
// continuous spaces, and used rounding to convert the predicted values to
// integers." Fig. 4 plots a reward trajectory that never converges.
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "rl/discrete_ppo_agent.hpp"

using namespace automdt;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  bench::print_header(
      "Fig. 4 — PPO action-space ablation (continuous vs discrete)",
      "discrete action space fails to converge; continuous converges "
      "(~20150 episodes at paper scale)");

  sim::SimScenario scenario;
  scenario.sender_capacity = 4.0 * kGiB;
  scenario.receiver_capacity = 4.0 * kGiB;
  scenario.tpt_mbps = {80.0, 160.0, 200.0};
  scenario.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
  scenario.max_threads = 30;
  const double r_max = scenario.theoretical_max_reward();

  rl::PpoConfig cfg = bench::bench_ppo_config(bench::paper_flag(argc, argv));
  // Algorithm 2 literally: one update per episode (no cross-episode
  // batching). This is the regime in which the paper observed the discrete
  // agent failing.
  cfg.episodes_per_batch = 1;
  const int episodes = cfg.max_episodes;

  auto moving_best = [](const std::vector<double>& rewards, std::size_t w) {
    std::vector<double> out;
    double acc = 0.0;
    for (std::size_t i = 0; i < rewards.size(); ++i) {
      acc += rewards[i];
      if (i >= w) acc -= rewards[i - w];
      out.push_back(acc / std::min(i + 1, w));
    }
    return out;
  };

  std::printf("training CONTINUOUS agent (%d episode cap) ...\n", episodes);
  sim::SimulatorEnv cont_env(scenario);
  rl::PpoAgent continuous(kObservationSize, scenario.max_threads, cfg);
  const rl::TrainResult rc = continuous.train(cont_env, r_max);

  std::printf("training DISCRETE agent (%d episode cap) ...\n\n", episodes);
  sim::SimulatorEnv disc_env(scenario);
  rl::DiscretePpoAgent discrete(kObservationSize, scenario.max_threads, cfg);
  const rl::TrainResult rd = discrete.train(disc_env, r_max);

  Table table({"action space", "episodes", "best reward (of R_max)",
               "reached 0.9 R_max at", "converged"},
              3);
  auto row = [&](const char* name, const rl::TrainResult& r) {
    table.add_row({std::string(name), static_cast<long long>(r.episodes_run),
                   r.best_reward,
                   r.convergence_episode >= 0
                       ? Cell{static_cast<long long>(r.convergence_episode)}
                       : Cell{std::string("never")},
                   std::string(r.converged ? "yes" : "no")});
  };
  row("continuous (paper design)", rc);
  row("discrete (ablation)", rd);
  table.print(std::cout);

  // Reward trajectories (smoothed) — the data behind Fig. 4.
  const auto smooth_c = moving_best(rc.episode_rewards, 50);
  const auto smooth_d = moving_best(rd.episode_rewards, 50);
  std::ofstream f("/tmp/fig4_reward_curves.csv");
  f << "episode,continuous,discrete\n";
  const std::size_t n = std::max(smooth_c.size(), smooth_d.size());
  for (std::size_t i = 0; i < n; i += 10) {
    f << i << ',' << (i < smooth_c.size() ? smooth_c[i] : smooth_c.back())
      << ',' << (i < smooth_d.size() ? smooth_d[i] : smooth_d.back()) << '\n';
  }
  std::printf("\nreward curves written to /tmp/fig4_reward_curves.csv\n");
  if (rc.best_reward > rd.best_reward + 0.02) {
    std::printf("shape check: continuous (%.3f) clearly beats discrete "
                "(%.3f) — matches the paper's Fig. 4.\n",
                rc.best_reward, rd.best_reward);
  } else {
    std::printf(
        "shape check: continuous %.3f vs discrete %.3f — the paper's "
        "'discrete fails miserably' result does NOT reproduce here: with "
        "this repository's trainer the 3x%d-way categorical heads learn "
        "the same scenario competently. Recorded as a deviation in "
        "EXPERIMENTS.md (the paper attributes the failure to needing a "
        "more complex state space for discrete actions, citing [17]; our "
        "8-feature state appears sufficient).\n",
        rc.best_reward, rd.best_reward, scenario.max_threads);
  }
  return 0;
}
