// §V-C reproduction: online fine-tuning after offline training.
//
// Paper: fine-tuning the offline model online for 120 episodes (~2 hours)
// changed almost nothing — "the fine-tuned model used 1% less concurrency
// while achieving the same transfer speed", so fine-tuning was dropped from
// the design. This bench measures the same delta on the emulator.
#include <iostream>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace automdt;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  bench::print_header(
      "§V-C — online fine-tuning ablation",
      "120 online episodes give ~1% lower concurrency at the same speed "
      "(improvement negligible; excluded from the design)");

  const testbed::ScenarioPreset preset = testbed::bottleneck_network();
  rl::TrainResult training;
  const core::AutoMdt mdt = bench::train_agent(
      preset, {205.0, 75.0, 195.0}, {1000.0, 1000.0, 1000.0},
      bench::bench_ppo_config(bench::paper_flag(argc, argv)), &training);

  // Measure the offline policy.
  const testbed::Dataset dataset = testbed::Dataset::uniform(20, 1.0 * kGB);
  auto measure = [&](const core::AutoMdt& agent) {
    auto ctrl = agent.make_controller(/*deterministic=*/true);
    const auto res = bench::run(preset, dataset, *ctrl, &agent, 17);
    double threads = 0.0;
    for (const auto& p : res.series.points()) threads += p.threads.total();
    return std::pair<double, double>{
        res.average_throughput_mbps,
        threads / static_cast<double>(res.series.points().size())};
  };
  const auto [offline_rate, offline_threads] = measure(mdt);

  // Fine-tune ONLINE: further episodes against the emulated testbed itself
  // (not the simulator), exactly the paper's §V-C procedure.
  std::printf("fine-tuning online for 120 episodes ...\n\n");
  testbed::EmulatedEnvironment online_env(preset.config,
                                          testbed::Dataset::infinite());
  mdt.align_environment(online_env);
  mdt.agent()->fine_tune(online_env, mdt.r_max(), 120);
  const auto [tuned_rate, tuned_threads] = measure(mdt);

  Table table({"model", "avg rate (Mbps)", "mean total threads"}, 1);
  table.add_row({std::string("offline only"), offline_rate, offline_threads});
  table.add_row({std::string("offline + 120 ep online"), tuned_rate,
                 tuned_threads});
  table.print(std::cout);

  const double rate_delta = (tuned_rate - offline_rate) / offline_rate * 100.0;
  const double thread_delta =
      (tuned_threads - offline_threads) / offline_threads * 100.0;
  std::printf("\nspeed delta: %+.1f%%, concurrency delta: %+.1f%% "
              "(paper: ~0%% speed, ~-1%% concurrency)\n",
              rate_delta, thread_delta);
  std::printf("conclusion %s the paper: fine-tuning is %s\n",
              std::abs(rate_delta) < 8.0 ? "matches" : "differs from",
              std::abs(rate_delta) < 8.0 ? "negligible" : "significant here");
  return 0;
}
