// Table I reproduction: end-to-end transfer speed, Globus vs Marlin vs
// AutoMDT, on 1 TB datasets over the FABRIC NCSA->TACC-class link.
//
// Paper (Mbps):
//   Dataset A (Large, 1 TB): Globus 3652.2 | Marlin 18066.8 | AutoMDT 23988.0
//   Dataset B (Mixed, 1 TB): Globus 2325.9 | Marlin 13721.5 | AutoMDT 16915.8
//   => AutoMDT is 6.57x / 7.28x Globus and 1.33x / 1.23x Marlin.
#include <iostream>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "optimizers/marlin_controller.hpp"
#include "optimizers/static_controller.hpp"

using namespace automdt;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  bench::print_header(
      "Table I — end-to-end transfer speed (1 TB, NCSA->TACC class link)",
      "A: 3652 / 18067 / 23988 Mbps; B: 2326 / 13722 / 16916 Mbps "
      "(Globus / Marlin / AutoMDT)");

  const testbed::ScenarioPreset preset = testbed::fabric_ncsa_tacc();
  std::printf("training AutoMDT agent ...\n");
  const core::AutoMdt mdt = bench::train_agent(
      preset, {2500.0, 1200.0, 2000.0}, {30000.0, 25000.0, 26000.0},
      bench::bench_ppo_config(bench::paper_flag(argc, argv)));

  Rng dataset_rng(2025);
  struct Row {
    std::string dataset;
    testbed::Dataset data;
  } rows[] = {
      {"A (Large)", testbed::Dataset::paper_large()},
      {"B (Mixed)", testbed::Dataset::mixed(dataset_rng, 1.0 * kTB)},
  };

  Table table({"Dataset", "Total Size", "Globus", "Marlin", "AutoMDT",
               "AutoMDT/Globus", "AutoMDT/Marlin"},
              1);
  // The paper repeats runs across a week and averages; we average seeds.
  const int repeats = 2;
  for (auto& r : rows) {
    std::printf("transferring %s (%zu files, %s) ...\n", r.dataset.c_str(),
                r.data.file_count(), format_bytes(r.data.total_bytes()).c_str());
    double globus_rate = 0.0, marlin_rate = 0.0, automdt_rate = 0.0;
    for (int seed = 0; seed < repeats; ++seed) {
      optimizers::GlobusStaticController globus;  // concurrency 4, parallelism 8
      globus_rate +=
          bench::run(preset, r.data, globus, nullptr, 7 + seed)
              .average_throughput_mbps;
      optimizers::MarlinController marlin;
      marlin_rate +=
          bench::run(preset, r.data, marlin, nullptr, 7 + seed)
              .average_throughput_mbps;
      auto actrl = mdt.make_controller(/*deterministic=*/true);
      automdt_rate +=
          bench::run(preset, r.data, *actrl, &mdt, 7 + seed)
              .average_throughput_mbps;
    }
    globus_rate /= repeats;
    marlin_rate /= repeats;
    automdt_rate /= repeats;
    table.add_row({r.dataset, std::string("1 TB"), globus_rate, marlin_rate,
                   automdt_rate, automdt_rate / globus_rate,
                   automdt_rate / marlin_rate});
  }

  std::printf("\nEND-TO-END TRANSFER SPEED COMPARISON (Mbps, avg of %d runs)\n",
              repeats);
  table.print(std::cout);
  std::printf("\nshape check vs paper: AutoMDT > Marlin >> Globus, with "
              "Dataset B slower than A for every tool.\n");
  return 0;
}
