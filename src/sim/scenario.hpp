// Simulator scenario: the handful of measured quantities the paper's
// exploration phase (§IV-A) feeds into the offline trainer — per-thread
// throughputs, aggregate stage bandwidths, and staging-buffer capacities.
#pragma once

#include <algorithm>

#include "common/concurrency_tuple.hpp"
#include "common/units.hpp"
#include "common/utility.hpp"

namespace automdt::sim {

struct SimScenario {
  /// Staging ("tmpfs") buffer capacities at sender and receiver DTNs, bytes.
  double sender_capacity = 8.0 * kGiB;
  double receiver_capacity = 8.0 * kGiB;

  /// Per-thread throughput for each stage (TPT_i), Mbps.
  StageTriple tpt_mbps{100.0, 100.0, 100.0};

  /// Aggregate per-stage bandwidth caps (B_i), Mbps. A stage with n threads
  /// achieves min(n * TPT_i, B_i).
  StageTriple bandwidth_mbps{1000.0, 1000.0, 1000.0};

  /// Work quantum: bytes one task (one thread wake-up) moves. 0 (default)
  /// auto-scales so the fastest stage completes ~200 tasks per simulated
  /// second — fine enough that throughput is not quantized by task
  /// granularity, coarse enough that a step costs only a few hundred events.
  double chunk_bytes = 0.0;

  /// Resolved work quantum (explicit value, or the auto-scaled one).
  double effective_chunk_bytes() const {
    if (chunk_bytes > 0.0) return chunk_bytes;
    const double fastest = std::max(
        {bandwidth_mbps.read, bandwidth_mbps.network, bandwidth_mbps.write});
    return std::max(64.0 * kKiB, mbps(fastest) * step_duration_s / 200.0);
  }

  /// Retry delay when a task finds its buffer full/empty (the ε a blocked
  /// task waits before being re-queued).
  double retry_epsilon_s = 0.01;

  /// Small ε added after a completed task (Algorithm 1 line 24).
  double post_task_epsilon_s = 1e-4;

  /// Simulated wall time per step (T_end); the paper probes every second.
  double step_duration_s = 1.0;

  /// Upper clamp for per-stage thread counts (n_max).
  int max_threads = 30;

  UtilityParams utility{};

  /// Ideal per-stage thread counts assuming near-linear scaling (§IV-A):
  /// n_i* = b / TPT_i with b = min_i B_i.
  StageTriple ideal_threads() const {
    const double b = bandwidth_mbps.min_component();
    return {b / tpt_mbps.read, b / tpt_mbps.network, b / tpt_mbps.write};
  }

  /// End-to-end bottleneck b = min(B_r, B_n, B_w), Mbps.
  double bottleneck_mbps() const { return bandwidth_mbps.min_component(); }

  /// R_max = b(k^-nr* + k^-nn* + k^-nw*) — the PPO convergence target.
  double theoretical_max_reward() const {
    return ::automdt::theoretical_max_reward(bottleneck_mbps(), ideal_threads(),
                                             utility);
  }
};

}  // namespace automdt::sim
