#include "sim/simulator_env.hpp"

#include <algorithm>

namespace automdt::sim {

SimulatorEnv::SimulatorEnv(SimScenario scenario, SimulatorEnvOptions options)
    : base_scenario_(scenario), options_(options), sim_(scenario) {
  scale_.max_threads = scenario.max_threads;
  // Scale throughput features by the largest stage bandwidth so features stay
  // in [0, ~1] regardless of link speed.
  scale_.rate_scale_mbps =
      std::max({scenario.bandwidth_mbps.read, scenario.bandwidth_mbps.network,
                scenario.bandwidth_mbps.write, 1.0});
  scale_.sender_capacity = scenario.sender_capacity;
  scale_.receiver_capacity = scenario.receiver_capacity;
}

std::vector<double> SimulatorEnv::reset(Rng& rng) {
  SimScenario s = base_scenario_;
  if (options_.tpt_jitter > 0.0) {
    for (Stage st : kAllStages) {
      const double f =
          rng.uniform(1.0 - options_.tpt_jitter, 1.0 + options_.tpt_jitter);
      s.tpt_mbps[st] *= f;
    }
  }
  sim_.set_scenario(s);
  sim_.reset_buffers(
      rng.uniform(0.0, options_.initial_buffer_max_fill) * s.sender_capacity,
      rng.uniform(0.0, options_.initial_buffer_max_fill) * s.receiver_capacity);

  last_action_ = ConcurrencyTuple{rng.uniform_int(1, s.max_threads),
                                  rng.uniform_int(1, s.max_threads),
                                  rng.uniform_int(1, s.max_threads)};
  const SimStepResult r = sim_.step(last_action_);
  return observe(r, last_action_);
}

EnvStep SimulatorEnv::step(const ConcurrencyTuple& action) {
  last_action_ = action.clamped(1, base_scenario_.max_threads);
  const SimStepResult r = sim_.step(last_action_);
  EnvStep out;
  out.observation = observe(r, last_action_);
  out.throughputs_mbps = r.throughput_mbps;
  out.reward = r.reward;
  out.done = false;  // infinite-files training environment never terminates
  return out;
}

std::vector<double> SimulatorEnv::observe(const SimStepResult& r,
                                          const ConcurrencyTuple& n) const {
  std::vector<double> obs = build_observation(
      scale_, n, r.throughput_mbps, r.sender_free_bytes,
      r.receiver_free_bytes);
  if (options_.mask_buffer_features) {
    obs[6] = 0.0;
    obs[7] = 0.0;
  }
  return obs;
}

}  // namespace automdt::sim
