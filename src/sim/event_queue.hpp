// Time-ordered event queue for the dynamics simulator (Algorithm 1: "we use
// a priority queue instead of threads; the queue is sorted by time").
//
// A purpose-built binary min-heap over flat storage: events are 16-byte PODs,
// pushes/pops are branch-light sift operations, and there is no per-event
// allocation (Per.14/Per.19) — this queue is the simulator's hot path and is
// covered by bench_micro.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/concurrency_tuple.hpp"

namespace automdt::sim {

/// One scheduled unit of thread work: at `time`, a thread of `stage` runs.
struct Event {
  double time = 0.0;
  Stage stage = Stage::kRead;
};

class EventQueue {
 public:
  EventQueue() = default;

  void reserve(std::size_t n) { heap_.reserve(n); }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  /// Allocated slots — lets callers assert that a reserve() sized from the
  /// max concurrency really prevented mid-simulation growth.
  std::size_t capacity() const { return heap_.capacity(); }
  void clear() { heap_.clear(); }

  void push(Event e) {
    heap_.push_back(e);
    sift_up(heap_.size() - 1);
  }

  const Event& top() const {
    assert(!heap_.empty());
    return heap_.front();
  }

  Event pop() {
    assert(!heap_.empty());
    Event out = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return out;
  }

 private:
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (heap_[parent].time <= heap_[i].time) break;
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = l + 1;
      std::size_t smallest = i;
      if (l < n && heap_[l].time < heap_[smallest].time) smallest = l;
      if (r < n && heap_[r].time < heap_[smallest].time) smallest = r;
      if (smallest == i) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<Event> heap_;
};

}  // namespace automdt::sim
