// I/O–network dynamics simulator (paper §IV-C, Algorithm 1).
//
// Emulates one probe interval (1 virtual second) of the three-stage transfer
// pipeline with a discrete-event loop:
//
//   read tasks    : source FS  -> sender staging buffer   (blocked if full)
//   network tasks : sender buf -> receiver staging buffer (blocked if either
//                                                          end disallows)
//   write tasks   : receiver buf -> destination FS        (blocked if empty)
//
// Each task moves one chunk, taking chunk / TPT_i seconds (TPT capped by the
// stage's fair share of the aggregate bandwidth B_i / n_i). Blocked tasks are
// re-queued after a small ε. Buffer occupancy persists across steps — that
// persistence is precisely the "memory buffer dynamics" the PPO agent must
// learn (a state-action pair yields different rewards at different buffer
// fills, §IV-D.1).
//
// An infinite supply of files is assumed (paper: "an infinite number of files
// are available to be chunked as needed").
#pragma once

#include "common/concurrency_tuple.hpp"
#include "sim/event_queue.hpp"
#include "sim/scenario.hpp"

namespace automdt::sim {

struct SimStepResult {
  StageThroughputs throughput_mbps;  // normalized by per-stage finish times
  double sender_used_bytes = 0.0;    // occupancy after the step
  double receiver_used_bytes = 0.0;
  double sender_free_bytes = 0.0;
  double receiver_free_bytes = 0.0;
  double reward = 0.0;               // U(n, t) with the scenario's k
  long long events_processed = 0;    // diagnostics / bench counter
};

class DynamicsSimulator {
 public:
  explicit DynamicsSimulator(SimScenario scenario);

  /// get_utility(new_threads): simulate one step_duration_s with the given
  /// concurrency tuple and return throughputs + reward (Algorithm 1 l.27-41).
  SimStepResult step(const ConcurrencyTuple& threads);

  /// Reset buffers to given occupancies (episode boundaries).
  void reset_buffers(double sender_used_bytes, double receiver_used_bytes);

  const SimScenario& scenario() const { return scenario_; }
  double sender_used() const { return sender_used_; }
  double receiver_used() const { return receiver_used_; }

  /// Event-queue capacity (diagnostics): step() reserves n.total() slots up
  /// front, so this should stay at the largest tuple seen — no mid-step
  /// reallocation.
  std::size_t queue_capacity() const { return queue_.capacity(); }

  /// Replace the scenario (e.g. domain-randomized per episode). Buffer
  /// occupancies are clamped to the new capacities.
  void set_scenario(const SimScenario& scenario);

 private:
  SimScenario scenario_;
  double sender_used_ = 0.0;
  double receiver_used_ = 0.0;
  EventQueue queue_;
};

}  // namespace automdt::sim
