#include "sim/dynamics_simulator.hpp"

#include <algorithm>
#include <cassert>

#include "common/units.hpp"
#include "common/utility.hpp"

namespace automdt::sim {

DynamicsSimulator::DynamicsSimulator(SimScenario scenario)
    : scenario_(scenario) {
  assert(scenario_.effective_chunk_bytes() > 0.0);
  assert(scenario_.step_duration_s > 0.0);
  assert(scenario_.retry_epsilon_s > 0.0);
}

void DynamicsSimulator::reset_buffers(double sender_used_bytes,
                                      double receiver_used_bytes) {
  sender_used_ = std::clamp(sender_used_bytes, 0.0, scenario_.sender_capacity);
  receiver_used_ =
      std::clamp(receiver_used_bytes, 0.0, scenario_.receiver_capacity);
}

void DynamicsSimulator::set_scenario(const SimScenario& scenario) {
  scenario_ = scenario;
  reset_buffers(sender_used_, receiver_used_);
}

SimStepResult DynamicsSimulator::step(const ConcurrencyTuple& threads_in) {
  const ConcurrencyTuple n = threads_in.clamped(1, scenario_.max_threads);
  const double t_end = scenario_.step_duration_s;
  const double chunk = scenario_.effective_chunk_bytes();

  // Effective per-thread rate in bytes/s: TPT_i capped by the thread's fair
  // share of the aggregate stage bandwidth.
  StageTriple eff_rate;  // bytes/s per thread
  for (Stage s : kAllStages) {
    const double tpt = mbps(scenario_.tpt_mbps[s]);
    const double share = mbps(scenario_.bandwidth_mbps[s]) / n[s];
    eff_rate[s] = std::min(tpt, share);
  }

  // Reset throughput counters; schedule each thread's first task at t = 0.
  StageTriple bytes_moved{0.0, 0.0, 0.0};
  StageTriple finish_time{0.0, 0.0, 0.0};
  queue_.clear();
  queue_.reserve(static_cast<std::size_t>(n.total()));
  for (Stage s : kAllStages)
    for (int i = 0; i < n[s]; ++i) queue_.push({0.0, s});

  long long events = 0;
  while (!queue_.empty()) {
    const Event ev = queue_.pop();
    ++events;

    double moved = 0.0;
    switch (ev.stage) {
      case Stage::kRead: {
        const double space = scenario_.sender_capacity - sender_used_;
        if (space > 0.0) {
          moved = std::min(chunk, space);
          sender_used_ += moved;
        }
        break;
      }
      case Stage::kNetwork: {
        const double space = scenario_.receiver_capacity - receiver_used_;
        if (sender_used_ > 0.0 && space > 0.0) {
          moved = std::min({chunk, sender_used_, space});
          sender_used_ -= moved;
          receiver_used_ += moved;
        }
        break;
      }
      case Stage::kWrite: {
        if (receiver_used_ > 0.0) {
          moved = std::min(chunk, receiver_used_);
          receiver_used_ -= moved;
        }
        break;
      }
    }

    double t_next;
    if (moved > 0.0) {
      const double d_task = moved / eff_rate[ev.stage];
      bytes_moved[ev.stage] += moved;
      finish_time[ev.stage] = std::max(finish_time[ev.stage], ev.time + d_task);
      t_next = ev.time + d_task + scenario_.post_task_epsilon_s;
    } else {
      // Blocked (no data / buffer full): retry after a short delay.
      t_next = ev.time + scenario_.retry_epsilon_s;
    }
    if (t_next < t_end) queue_.push({t_next, ev.stage});
  }

  // "Normalize throughputs by their finish times": a task popped near t_end
  // finishes past it, so the denominator is the later of t_end and the
  // stage's last completion.
  SimStepResult out;
  for (Stage s : kAllStages) {
    const double denom = std::max(t_end, finish_time[s]);
    out.throughput_mbps[s] = to_mbps(bytes_moved[s] / denom);
  }
  out.sender_used_bytes = sender_used_;
  out.receiver_used_bytes = receiver_used_;
  out.sender_free_bytes = scenario_.sender_capacity - sender_used_;
  out.receiver_free_bytes = scenario_.receiver_capacity - receiver_used_;
  out.reward = total_utility(out.throughput_mbps, n, scenario_.utility);
  out.events_processed = events;
  return out;
}

}  // namespace automdt::sim
