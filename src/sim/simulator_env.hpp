// Env adapter over the dynamics simulator — the environment the PPO agent is
// trained in offline.
//
// reset() follows Algorithm 2 ("the optimization environment is reset to test
// the networks with a new state consisting of a new set of randomly
// initialized threads"): it draws random thread counts and random staging
// buffer occupancies, runs one probe step with them, and returns the
// resulting observation. Optional domain randomization jitters the measured
// per-thread throughputs per episode so the learned policy generalizes to
// estimate noise.
#pragma once

#include "common/env.hpp"
#include "common/observation.hpp"
#include "sim/dynamics_simulator.hpp"

namespace automdt::sim {

struct SimulatorEnvOptions {
  /// Randomize initial buffer occupancy at reset (fraction of capacity drawn
  /// uniformly from [0, initial_buffer_max_fill]).
  double initial_buffer_max_fill = 0.5;

  /// Multiplicative jitter applied to TPT_i per episode: each stage's TPT is
  /// scaled by U(1-j, 1+j). 0 disables (paper trains on point estimates).
  double tpt_jitter = 0.0;

  /// Ablation switch (paper §IV-D.1): zero out the two buffer-occupancy
  /// features so the agent only sees thread counts and throughputs — "the
  /// agent may get confused because the same state can yield different
  /// rewards due to the dynamic nature of the memory buffer".
  bool mask_buffer_features = false;
};

class SimulatorEnv final : public Env {
 public:
  SimulatorEnv(SimScenario scenario, SimulatorEnvOptions options = {});

  std::vector<double> reset(Rng& rng) override;
  EnvStep step(const ConcurrencyTuple& action) override;
  int max_threads() const override { return base_scenario_.max_threads; }

  const SimScenario& scenario() const { return sim_.scenario(); }
  const ObservationScale& observation_scale() const { return scale_; }

  /// R_max for the configured (non-jittered) scenario.
  double theoretical_max_reward() const {
    return base_scenario_.theoretical_max_reward();
  }

 private:
  std::vector<double> observe(const SimStepResult& r,
                              const ConcurrencyTuple& n) const;

  SimScenario base_scenario_;
  SimulatorEnvOptions options_;
  DynamicsSimulator sim_;
  ObservationScale scale_;
  ConcurrencyTuple last_action_{1, 1, 1};
};

}  // namespace automdt::sim
