#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace automdt::nn {
namespace {

constexpr char kMagic[4] = {'A', 'M', 'D', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void append(std::vector<char>& out, const T& v) {
  const char* p = reinterpret_cast<const char*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read(const std::vector<char>& in, std::size_t& pos) {
  if (pos + sizeof(T) > in.size())
    throw std::runtime_error("checkpoint truncated");
  T v;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

}  // namespace

StateDict state_dict(Module& module) {
  StateDict out;
  for (Parameter* p : module.parameters()) {
    if (!out.emplace(p->name(), p->value()).second)
      throw std::runtime_error("duplicate parameter name: " + p->name());
  }
  return out;
}

void load_state_dict(Module& module, const StateDict& state) {
  for (Parameter* p : module.parameters()) {
    auto it = state.find(p->name());
    if (it == state.end())
      throw std::runtime_error("checkpoint missing parameter: " + p->name());
    if (!it->second.same_shape(p->value()))
      throw std::runtime_error("shape mismatch for parameter: " + p->name());
    p->mutable_value() = it->second;
  }
}

std::vector<char> serialize_state_dict(const StateDict& state) {
  std::vector<char> out;
  out.insert(out.end(), kMagic, kMagic + 4);
  append(out, kVersion);
  append(out, static_cast<std::uint64_t>(state.size()));
  for (const auto& [name, value] : state) {
    append(out, static_cast<std::uint64_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
    append(out, static_cast<std::uint64_t>(value.rows()));
    append(out, static_cast<std::uint64_t>(value.cols()));
    const char* p = reinterpret_cast<const char*>(value.data().data());
    out.insert(out.end(), p, p + value.size() * sizeof(double));
  }
  return out;
}

StateDict deserialize_state_dict(const std::vector<char>& bytes) {
  std::size_t pos = 0;
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kMagic, 4) != 0)
    throw std::runtime_error("not an AutoMDT checkpoint (bad magic)");
  pos = 4;
  const auto version = read<std::uint32_t>(bytes, pos);
  if (version != kVersion)
    throw std::runtime_error("unsupported checkpoint version " +
                             std::to_string(version));
  const auto count = read<std::uint64_t>(bytes, pos);
  StateDict out;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read<std::uint64_t>(bytes, pos);
    if (pos + name_len > bytes.size())
      throw std::runtime_error("checkpoint truncated");
    std::string name(bytes.data() + pos, name_len);
    pos += name_len;
    const auto rows = read<std::uint64_t>(bytes, pos);
    const auto cols = read<std::uint64_t>(bytes, pos);
    Matrix m(rows, cols);
    const std::size_t nbytes = m.size() * sizeof(double);
    if (pos + nbytes > bytes.size())
      throw std::runtime_error("checkpoint truncated");
    std::memcpy(m.data().data(), bytes.data() + pos, nbytes);
    pos += nbytes;
    out.emplace(std::move(name), std::move(m));
  }
  return out;
}

bool save_state_dict(const StateDict& state, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const auto bytes = serialize_state_dict(state);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(f);
}

StateDict load_state_dict_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw std::runtime_error("cannot open checkpoint: " + path);
  const auto size = static_cast<std::size_t>(f.tellg());
  f.seekg(0);
  std::vector<char> bytes(size);
  f.read(bytes.data(), static_cast<std::streamsize>(size));
  if (!f) throw std::runtime_error("failed reading checkpoint: " + path);
  return deserialize_state_dict(bytes);
}

}  // namespace automdt::nn
