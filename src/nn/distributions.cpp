#include "nn/distributions.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace automdt::nn {
namespace {
constexpr double kHalfLog2Pi = 0.9189385332046727;  // 0.5 * ln(2*pi)
}

DiagonalGaussian::DiagonalGaussian(Tensor mean, Tensor log_std)
    : mean_(std::move(mean)), log_std_(std::move(log_std)) {
  assert(log_std_.rows() == 1 && log_std_.cols() == mean_.cols());
}

Tensor DiagonalGaussian::log_prob(const Matrix& actions) const {
  assert(actions.rows() == mean_.rows() && actions.cols() == mean_.cols());
  // logp(a) = sum_j [ -0.5*((a_j - mu_j)/sigma_j)^2 - log sigma_j - 0.5 ln 2pi ]
  const Tensor a = Tensor::constant(actions);
  const Tensor inv_std = exp_op(neg(log_std_));                 // (1 x k)
  const Tensor z = mul_row_broadcast(sub(a, mean_), inv_std);   // (n x k)
  Tensor per_dim = scale(square(z), -0.5);                      // (n x k)
  // subtract log_std and the constant, broadcast across the batch
  per_dim = add_row_broadcast(per_dim, neg(log_std_));
  per_dim = add_scalar(per_dim, -kHalfLog2Pi);
  return row_sum(per_dim);  // (n x 1)
}

Tensor DiagonalGaussian::entropy() const {
  // H = sum_j (0.5 + 0.5 ln(2 pi) + log sigma_j); independent of the mean.
  return sum(add_scalar(log_std_, 0.5 + kHalfLog2Pi));
}

Matrix DiagonalGaussian::sample(Rng& rng) const {
  const Matrix& mu = mean_.value();
  const Matrix& ls = log_std_.value();
  Matrix out(mu.rows(), mu.cols());
  for (std::size_t i = 0; i < mu.rows(); ++i)
    for (std::size_t j = 0; j < mu.cols(); ++j)
      out(i, j) = rng.normal(mu(i, j), std::exp(ls(0, j)));
  return out;
}

MultiCategorical::MultiCategorical(std::vector<Tensor> logits_per_head)
    : logits_(std::move(logits_per_head)) {
  assert(!logits_.empty());
  log_probs_.reserve(logits_.size());
  for (const Tensor& l : logits_) log_probs_.push_back(log_softmax(l));
}

Tensor MultiCategorical::log_prob(
    const std::vector<std::vector<int>>& actions) const {
  assert(actions.size() == logits_.size());
  Tensor total;
  for (std::size_t h = 0; h < log_probs_.size(); ++h) {
    Tensor lp = row_gather(log_probs_[h], actions[h]);  // (n x 1)
    total = total.defined() ? add(total, lp) : lp;
  }
  return total;
}

Tensor MultiCategorical::entropy() const {
  // H = -sum_c p_c log p_c, per row; summed over heads, mean over batch.
  Tensor total;
  for (const Tensor& lp : log_probs_) {
    const Tensor p = exp_op(lp);
    const Tensor h = neg(row_sum(mul(p, lp)));  // (n x 1)
    total = total.defined() ? add(total, h) : h;
  }
  return mean(total);
}

std::vector<std::vector<int>> MultiCategorical::sample(Rng& rng) const {
  std::vector<std::vector<int>> out(logits_.size());
  for (std::size_t h = 0; h < log_probs_.size(); ++h) {
    const Matrix& lp = log_probs_[h].value();
    out[h].resize(lp.rows());
    for (std::size_t i = 0; i < lp.rows(); ++i) {
      const double u = rng.uniform();
      double cum = 0.0;
      int pick = static_cast<int>(lp.cols()) - 1;
      for (std::size_t j = 0; j < lp.cols(); ++j) {
        cum += std::exp(lp(i, j));
        if (u < cum) {
          pick = static_cast<int>(j);
          break;
        }
      }
      out[h][i] = pick;
    }
  }
  return out;
}

std::vector<std::vector<int>> MultiCategorical::mode() const {
  std::vector<std::vector<int>> out(logits_.size());
  for (std::size_t h = 0; h < logits_.size(); ++h) {
    const Matrix& l = logits_[h].value();
    out[h].resize(l.rows());
    for (std::size_t i = 0; i < l.rows(); ++i) {
      std::size_t best = 0;
      for (std::size_t j = 1; j < l.cols(); ++j)
        if (l(i, j) > l(i, best)) best = j;
      out[h][i] = static_cast<int>(best);
    }
  }
  return out;
}

}  // namespace automdt::nn
