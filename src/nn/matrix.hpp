// Dense row-major matrix of double.
//
// The value type underneath the autodiff tape (tensor.hpp). Kept deliberately
// small: the networks in this library are MLPs of width <= 256. The products
// use a cache-blocked ikj kernel; above a FLOP threshold the output rows are
// split across the global thread pool (common/thread_pool.hpp). Both paths
// accumulate each output element in the same ascending-k order, so serial,
// blocked, and multithreaded products are bit-identical — PPO training is
// reproducible regardless of thread count. Vectors are represented as 1xN or
// Nx1 matrices.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace automdt::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested braces: Matrix::from({{1,2},{3,4}}).
  static Matrix from(std::initializer_list<std::initializer_list<double>> rows);

  /// 1xN row vector from values.
  static Matrix row(std::span<const double> values);

  /// Nx1 column vector from values.
  static Matrix column(std::span<const double> values);

  /// Identity matrix.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }
  std::span<double> row_span(std::size_t r) {
    return std::span<double>(data_).subspan(r * cols_, cols_);
  }
  std::span<const double> row_span(std::size_t r) const {
    return std::span<const double>(data_).subspan(r * cols_, cols_);
  }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(0.0); }

  // Element-wise in-place ops.
  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  // Element-wise binary ops (shapes must match).
  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Hadamard (element-wise) product.
  friend Matrix hadamard(const Matrix& a, const Matrix& b);

  /// Standard matrix product: (r x k) * (k x c) -> (r x c).
  friend Matrix matmul(const Matrix& a, const Matrix& b);

  /// a^T * b without materializing the transpose: (k x r)^T... i.e. computes
  /// transpose(a) * b where a is (k x r), b is (k x c) -> (r x c).
  friend Matrix matmul_tn(const Matrix& a, const Matrix& b);

  /// a * b^T: a is (r x k), b is (c x k) -> (r x c).
  friend Matrix matmul_nt(const Matrix& a, const Matrix& b);

  Matrix transposed() const;

  /// Apply f element-wise, returning a new matrix.
  Matrix map(const std::function<double(double)>& f) const;

  double sum() const;
  double mean() const { return empty() ? 0.0 : sum() / static_cast<double>(size()); }
  double min() const;
  double max() const;

  /// Column vector of per-row sums (rows x 1).
  Matrix row_sums() const;

  /// Row vector of per-column sums (1 x cols).
  Matrix col_sums() const;

  /// Frobenius norm.
  double norm() const;

  /// Max |a - b| over all elements; matrices must have equal shapes.
  friend double max_abs_diff(const Matrix& a, const Matrix& b);

  std::string to_string(int precision = 4) const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace automdt::nn
