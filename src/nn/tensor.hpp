// Reverse-mode automatic differentiation over Matrix values.
//
// A Tensor is a shared handle to a graph Node holding a value, an
// accumulated gradient, and a closure that pushes the node's gradient to its
// inputs. Ops are free functions that build fresh nodes; calling
// Tensor::backward() on a scalar node runs a topological sweep.
//
// The op set is exactly what the AutoMDT PPO agent (policy/value residual
// MLPs, diagonal-Gaussian and categorical heads, clipped-surrogate loss)
// needs — this is a purpose-built tape, not a framework.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.hpp"

namespace automdt::nn {

struct Node {
  Matrix value;
  Matrix grad;  // lazily allocated on first accumulation
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> inputs;
  // Reads this node's grad and accumulates into inputs' grads. Null for leaves
  // and constants.
  std::function<void(Node&)> backward_fn;

  void ensure_grad() {
    if (grad.empty()) grad = Matrix(value.rows(), value.cols());
  }
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  /// Leaf with requires_grad=false (inputs, targets, detached values).
  static Tensor constant(Matrix v);

  /// Leaf with requires_grad=true (parameters).
  static Tensor variable(Matrix v);

  bool defined() const { return node_ != nullptr; }
  const Matrix& value() const { return node_->value; }
  Matrix& grad() const { node_->ensure_grad(); return node_->grad; }
  bool requires_grad() const { return node_ && node_->requires_grad; }
  std::size_t rows() const { return node_->value.rows(); }
  std::size_t cols() const { return node_->value.cols(); }

  /// Value of a 1x1 tensor.
  double scalar() const;

  const std::shared_ptr<Node>& node() const { return node_; }

  /// Backpropagate from this (must be 1x1) node; gradients *accumulate* into
  /// every reachable requires_grad node.
  void backward() const;

  /// Zero this node's gradient buffer.
  void zero_grad() const;

 private:
  std::shared_ptr<Node> node_;
};

// ---- graph construction helper ------------------------------------------

/// Build an op node. If no input requires grad, the result is a plain
/// constant (the tape is pruned eagerly).
Tensor make_op(Matrix value, std::vector<Tensor> inputs,
               std::function<void(Node&)> backward_fn);

// ---- elementwise / arithmetic ---------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);  // Hadamard
Tensor neg(const Tensor& a);
Tensor scale(const Tensor& a, double s);
Tensor add_scalar(const Tensor& a, double s);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return mul(a, b); }
inline Tensor operator*(const Tensor& a, double s) { return scale(a, s); }
inline Tensor operator*(double s, const Tensor& a) { return scale(a, s); }
inline Tensor operator-(const Tensor& a) { return neg(a); }

/// a (n x m) + b (1 x m), b broadcast across rows (bias add).
Tensor add_row_broadcast(const Tensor& a, const Tensor& b);

/// a (n x m) ⊙ b (1 x m), b broadcast across rows.
Tensor mul_row_broadcast(const Tensor& a, const Tensor& b);

// ---- nonlinearities --------------------------------------------------------

Tensor tanh_op(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor exp_op(const Tensor& a);
Tensor log_op(const Tensor& a);  // caller guarantees positive inputs
Tensor square(const Tensor& a);

/// Element-wise clamp; gradient is zero outside [lo, hi] (PyTorch semantics).
Tensor clamp(const Tensor& a, double lo, double hi);

/// Element-wise minimum of two same-shaped tensors (PPO clipped surrogate).
Tensor min_ew(const Tensor& a, const Tensor& b);

// ---- reductions ------------------------------------------------------------

Tensor sum(const Tensor& a);             // -> 1x1
Tensor mean(const Tensor& a);            // -> 1x1
Tensor row_sum(const Tensor& a);         // (n x m) -> (n x 1)

// ---- linear algebra ---------------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b);

// ---- normalization / softmax ------------------------------------------------

/// Per-row layer normalization with learned gamma (1 x m) and beta (1 x m).
Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  double eps = 1e-5);

/// Row-wise log-softmax (numerically stable).
Tensor log_softmax(const Tensor& x);

/// Pick one column per row: out(i,0) = x(i, indices[i]).
Tensor row_gather(const Tensor& x, const std::vector<int>& indices);

// ---- graph utilities --------------------------------------------------------

/// Value-copy with the tape cut (no gradient flows through).
Tensor detach(const Tensor& a);

}  // namespace automdt::nn
