// Neural network modules: parameter registry, Linear, LayerNorm,
// ResidualBlock, and the residual MLP stacks used by the AutoMDT policy and
// value networks (paper §IV-D).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace automdt::nn {

/// A named trainable tensor. The underlying Node persists across forward
/// passes, so gradients accumulate into it until the optimizer clears them.
class Parameter {
 public:
  Parameter(std::string name, Matrix init)
      : name_(std::move(name)), tensor_(Tensor::variable(std::move(init))) {}

  const std::string& name() const { return name_; }
  const Tensor& tensor() const { return tensor_; }
  const Matrix& value() const { return tensor_.value(); }
  Matrix& mutable_value() { return tensor_.node()->value; }
  Matrix& grad() { return tensor_.grad(); }
  void zero_grad() { tensor_.zero_grad(); }

 private:
  std::string name_;
  Tensor tensor_;
};

/// Base class giving modules a flat, ordered parameter list (for the
/// optimizer and the checkpoint format). Child modules register their
/// parameters into the parent's registry with a scoped name prefix.
class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters in registration order (stable across runs).
  std::vector<Parameter*> parameters();

  void zero_grad();

  /// Total number of scalar weights.
  std::size_t parameter_count();

  /// Global gradient L2 norm across all parameters.
  double grad_norm();

 protected:
  Parameter* register_parameter(const std::string& name, Matrix init);
  void register_child(const std::string& prefix, Module& child);

 private:
  std::vector<std::unique_ptr<Parameter>> owned_;
  std::vector<Parameter*> all_;  // owned + children's, in order
};

// ---- weight initialization ---------------------------------------------------

/// Xavier/Glorot uniform: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
Matrix xavier_uniform(std::size_t fan_in, std::size_t fan_out, Rng& rng,
                      double gain = 1.0);

/// Kaiming/He normal for ReLU layers: N(0, sqrt(2/fan_in)).
Matrix kaiming_normal(std::size_t fan_in, std::size_t fan_out, Rng& rng);

// ---- layers -----------------------------------------------------------------

class Linear : public Module {
 public:
  Linear(std::size_t in, std::size_t out, Rng& rng,
         const std::string& name = "linear", double init_gain = 1.0);

  Tensor forward(const Tensor& x) const;
  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_, out_;
  Parameter* weight_;  // (in x out)
  Parameter* bias_;    // (1 x out)
};

class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::size_t dim, const std::string& name = "ln");

  Tensor forward(const Tensor& x) const;

 private:
  Parameter* gamma_;
  Parameter* beta_;
};

enum class Activation { kTanh, kRelu };

Tensor apply_activation(Activation act, const Tensor& x);

/// Paper §IV-D: "two linear transformations interleaved with layer
/// normalization and [ReLU|Tanh] activations, along with a skip connection
/// that adds the input directly to the output."
///
///   out = act( LN2( L2( act( LN1( L1(x) ) ) ) ) + x )
class ResidualBlock : public Module {
 public:
  ResidualBlock(std::size_t dim, Activation act, Rng& rng,
                const std::string& name = "res");

  Tensor forward(const Tensor& x) const;

 private:
  Activation act_;
  std::unique_ptr<Linear> fc1_, fc2_;
  std::unique_ptr<LayerNorm> ln1_, ln2_;
};

/// Input embedding + N residual blocks, the shared trunk of both the policy
/// and value networks: x -> tanh(Linear(x)) -> res blocks.
class ResidualMlp : public Module {
 public:
  ResidualMlp(std::size_t in_dim, std::size_t hidden_dim, std::size_t n_blocks,
              Activation block_act, Rng& rng, const std::string& name = "mlp");

  Tensor forward(const Tensor& x) const;
  std::size_t hidden_dim() const { return hidden_; }

 private:
  std::size_t hidden_;
  std::unique_ptr<Linear> embed_;
  std::vector<std::unique_ptr<ResidualBlock>> blocks_;
};

}  // namespace automdt::nn
