#include "nn/module.hpp"

#include <cassert>
#include <cmath>

namespace automdt::nn {

std::vector<Parameter*> Module::parameters() { return all_; }

void Module::zero_grad() {
  for (Parameter* p : all_) p->zero_grad();
}

std::size_t Module::parameter_count() {
  std::size_t n = 0;
  for (Parameter* p : all_) n += p->value().size();
  return n;
}

double Module::grad_norm() {
  double s = 0.0;
  for (Parameter* p : all_) {
    const Matrix& g = p->grad();
    for (double v : g.data()) s += v * v;
  }
  return std::sqrt(s);
}

Parameter* Module::register_parameter(const std::string& name, Matrix init) {
  owned_.push_back(std::make_unique<Parameter>(name, std::move(init)));
  all_.push_back(owned_.back().get());
  return owned_.back().get();
}

void Module::register_child(const std::string& prefix, Module& child) {
  (void)prefix;  // children already carry scoped names
  for (Parameter* p : child.parameters()) all_.push_back(p);
}

Matrix xavier_uniform(std::size_t fan_in, std::size_t fan_out, Rng& rng,
                      double gain) {
  const double a =
      gain * std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  Matrix m(fan_in, fan_out);
  for (double& v : m.data()) v = rng.uniform(-a, a);
  return m;
}

Matrix kaiming_normal(std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  const double std = std::sqrt(2.0 / static_cast<double>(fan_in));
  Matrix m(fan_in, fan_out);
  for (double& v : m.data()) v = rng.normal(0.0, std);
  return m;
}

Linear::Linear(std::size_t in, std::size_t out, Rng& rng,
               const std::string& name, double init_gain)
    : in_(in), out_(out) {
  weight_ = register_parameter(name + ".weight",
                               xavier_uniform(in, out, rng, init_gain));
  bias_ = register_parameter(name + ".bias", Matrix(1, out));
}

Tensor Linear::forward(const Tensor& x) const {
  assert(x.cols() == in_);
  return add_row_broadcast(matmul(x, weight_->tensor()), bias_->tensor());
}

LayerNorm::LayerNorm(std::size_t dim, const std::string& name) {
  gamma_ = register_parameter(name + ".gamma", Matrix(1, dim, 1.0));
  beta_ = register_parameter(name + ".beta", Matrix(1, dim, 0.0));
}

Tensor LayerNorm::forward(const Tensor& x) const {
  return layer_norm(x, gamma_->tensor(), beta_->tensor());
}

Tensor apply_activation(Activation act, const Tensor& x) {
  switch (act) {
    case Activation::kTanh: return tanh_op(x);
    case Activation::kRelu: return relu(x);
  }
  return x;  // unreachable
}

ResidualBlock::ResidualBlock(std::size_t dim, Activation act, Rng& rng,
                             const std::string& name)
    : act_(act) {
  fc1_ = std::make_unique<Linear>(dim, dim, rng, name + ".fc1");
  ln1_ = std::make_unique<LayerNorm>(dim, name + ".ln1");
  fc2_ = std::make_unique<Linear>(dim, dim, rng, name + ".fc2");
  ln2_ = std::make_unique<LayerNorm>(dim, name + ".ln2");
  register_child(name + ".fc1", *fc1_);
  register_child(name + ".ln1", *ln1_);
  register_child(name + ".fc2", *fc2_);
  register_child(name + ".ln2", *ln2_);
}

Tensor ResidualBlock::forward(const Tensor& x) const {
  Tensor h = apply_activation(act_, ln1_->forward(fc1_->forward(x)));
  h = ln2_->forward(fc2_->forward(h));
  return apply_activation(act_, add(h, x));
}

ResidualMlp::ResidualMlp(std::size_t in_dim, std::size_t hidden_dim,
                         std::size_t n_blocks, Activation block_act, Rng& rng,
                         const std::string& name)
    : hidden_(hidden_dim) {
  embed_ = std::make_unique<Linear>(in_dim, hidden_dim, rng, name + ".embed");
  register_child(name + ".embed", *embed_);
  for (std::size_t i = 0; i < n_blocks; ++i) {
    blocks_.push_back(std::make_unique<ResidualBlock>(
        hidden_dim, block_act, rng, name + ".block" + std::to_string(i)));
    register_child("", *blocks_.back());
  }
}

Tensor ResidualMlp::forward(const Tensor& x) const {
  // Paper: "the input is embedded into a 256-dimensional space using a linear
  // layer followed by a tanh activation", then the residual blocks.
  Tensor h = tanh_op(embed_->forward(x));
  for (const auto& b : blocks_) h = b->forward(h);
  return h;
}

}  // namespace automdt::nn
