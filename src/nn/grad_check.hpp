// Finite-difference gradient checking, used by the nn test suite to verify
// every op's backward pass against central differences.
#pragma once

#include <functional>
#include <vector>

#include "nn/module.hpp"

namespace automdt::nn {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  bool ok(double tol = 1e-6) const { return max_rel_error < tol; }
};

/// `loss_fn` must rebuild the graph from the current parameter values and
/// return a scalar Tensor. Compares analytic gradients against central
/// differences for every element of every parameter.
GradCheckResult check_gradients(
    const std::vector<Parameter*>& params,
    const std::function<Tensor()>& loss_fn, double h = 1e-6);

}  // namespace automdt::nn
