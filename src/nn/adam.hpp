// Adam optimizer (Kingma & Ba) with optional global-norm gradient clipping —
// the update rule the paper's Algorithm 2 uses ("update parameters using Adam
// optimizer").
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace automdt::nn {

struct AdamConfig {
  double lr = 3e-4;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  /// 0 disables clipping; otherwise gradients are rescaled so their global
  /// L2 norm is at most this value before the update.
  double max_grad_norm = 0.0;
};

class Adam {
 public:
  Adam(std::vector<Parameter*> params, AdamConfig config = {});

  /// Apply one update from the accumulated gradients, then zero them.
  void step();

  /// Zero gradients without updating (e.g. after a rejected batch).
  void zero_grad();

  std::size_t step_count() const { return t_; }
  const AdamConfig& config() const { return config_; }
  void set_lr(double lr) { config_.lr = lr; }

 private:
  std::vector<Parameter*> params_;
  AdamConfig config_;
  std::vector<Matrix> m_;  // first-moment estimates
  std::vector<Matrix> v_;  // second-moment estimates
  std::size_t t_ = 0;
};

}  // namespace automdt::nn
