// Checkpoint (de)serialization.
//
// Format: little-endian binary — magic "AMDT", u32 version, u64 entry count,
// then per entry: u64 name length, name bytes, u64 rows, u64 cols,
// rows*cols doubles. Stable across runs so an offline-trained agent can be
// loaded by a production transfer (paper §IV-F "load the best checkpoint").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace automdt::nn {

using StateDict = std::map<std::string, Matrix>;

/// Extract {name -> value} for all parameters of a module.
StateDict state_dict(Module& module);

/// Copy values back into a module's parameters. Throws std::runtime_error if
/// a parameter is missing from `state` or has a mismatched shape.
void load_state_dict(Module& module, const StateDict& state);

/// Serialize to / parse from a byte buffer.
std::vector<char> serialize_state_dict(const StateDict& state);
StateDict deserialize_state_dict(const std::vector<char>& bytes);

/// File variants. save returns false on I/O error; load throws
/// std::runtime_error on missing/corrupt files.
bool save_state_dict(const StateDict& state, const std::string& path);
StateDict load_state_dict_file(const std::string& path);

}  // namespace automdt::nn
