// Probability distributions for the PPO heads.
//
// DiagonalGaussian: the paper's continuous action space — the policy emits a
// per-action mean and a trainable, clamped log-standard-deviation; actions are
// sampled from N(mu, sigma) then rounded to integer thread counts (§IV-F).
//
// Categorical: the discrete action space the paper reports as a failed
// ablation (Fig. 4); we implement it so the negative result is reproducible.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace automdt::nn {

/// Diagonal (independent per-dimension) Gaussian over a batch.
/// `mean` is (n x k); `log_std` is (1 x k), shared across the batch.
class DiagonalGaussian {
 public:
  DiagonalGaussian(Tensor mean, Tensor log_std);

  /// Differentiable log probability of `actions` (n x k) -> (n x 1).
  Tensor log_prob(const Matrix& actions) const;

  /// Differentiable entropy summed over action dimensions -> (1 x 1).
  /// H = sum_j (0.5 + 0.5 ln(2*pi) + log_std_j).
  Tensor entropy() const;

  /// Sample one action per batch row (non-differentiable).
  Matrix sample(Rng& rng) const;

  /// Deterministic action (the mean).
  Matrix mode() const { return mean_.value(); }

  const Tensor& mean() const { return mean_; }
  const Tensor& log_std() const { return log_std_; }

 private:
  Tensor mean_;     // (n x k)
  Tensor log_std_;  // (1 x k)
};

/// Independent categorical distributions per head over a batch.
/// Holds `h` heads, each with logits (n x c); an action is one index per head.
class MultiCategorical {
 public:
  explicit MultiCategorical(std::vector<Tensor> logits_per_head);

  /// Differentiable total log prob of chosen indices; `actions[h]` holds the
  /// per-row index for head h. Result is (n x 1).
  Tensor log_prob(const std::vector<std::vector<int>>& actions) const;

  /// Differentiable entropy summed over heads, mean over batch -> (1 x 1).
  Tensor entropy() const;

  /// Sample an index per head per row.
  std::vector<std::vector<int>> sample(Rng& rng) const;

  /// Argmax indices per head per row.
  std::vector<std::vector<int>> mode() const;

  std::size_t head_count() const { return logits_.size(); }

 private:
  std::vector<Tensor> logits_;       // raw logits, per head
  std::vector<Tensor> log_probs_;    // log_softmax(logits), per head
};

}  // namespace automdt::nn
