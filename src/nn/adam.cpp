#include "nn/adam.hpp"

#include <cmath>

namespace automdt::nn {

Adam::Adam(std::vector<Parameter*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value().rows(), p->value().cols());
    v_.emplace_back(p->value().rows(), p->value().cols());
  }
}

void Adam::step() {
  ++t_;

  if (config_.max_grad_norm > 0.0) {
    double norm_sq = 0.0;
    for (Parameter* p : params_)
      for (double g : p->grad().data()) norm_sq += g * g;
    const double norm = std::sqrt(norm_sq);
    if (norm > config_.max_grad_norm) {
      const double scale = config_.max_grad_norm / norm;
      for (Parameter* p : params_)
        for (double& g : p->grad().data()) g *= scale;
    }
  }

  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));

  for (std::size_t i = 0; i < params_.size(); ++i) {
    Matrix& w = params_[i]->mutable_value();
    const Matrix& g = params_[i]->grad();
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (std::size_t k = 0; k < w.size(); ++k) {
      const double gk = g.data()[k];
      m.data()[k] = config_.beta1 * m.data()[k] + (1.0 - config_.beta1) * gk;
      v.data()[k] = config_.beta2 * v.data()[k] + (1.0 - config_.beta2) * gk * gk;
      const double mhat = m.data()[k] / bc1;
      const double vhat = v.data()[k] / bc2;
      w.data()[k] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }

  zero_grad();
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

}  // namespace automdt::nn
