#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace automdt::nn {

Matrix Matrix::from(std::initializer_list<std::initializer_list<double>> rows) {
  const std::size_t r = rows.size();
  const std::size_t c = r > 0 ? rows.begin()->size() : 0;
  Matrix m(r, c);
  std::size_t i = 0;
  for (const auto& row : rows) {
    assert(row.size() == c);
    std::size_t j = 0;
    for (double v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

Matrix Matrix::row(std::span<const double> values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

Matrix Matrix::column(std::span<const double> values) {
  Matrix m(values.size(), 1);
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  assert(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  assert(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  Matrix out = a;
  for (std::size_t i = 0; i < out.data_.size(); ++i) out.data_[i] *= b.data_[i];
  return out;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  // ikj order: the inner loop streams through contiguous rows of b and out.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* out_row = out.data_.data() + i * out.cols_;
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* b_row = b.data_.data() + k * b.cols_;
      for (std::size_t j = 0; j < b.cols(); ++j) out_row[j] += aik * b_row[j];
    }
  }
  return out;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  // out = a^T * b, a: (k x r), b: (k x c) -> out: (r x c)
  assert(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* a_row = a.data_.data() + k * a.cols_;
    const double* b_row = b.data_.data() + k * b.cols_;
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = a_row[i];
      if (aki == 0.0) continue;
      double* out_row = out.data_.data() + i * out.cols_;
      for (std::size_t j = 0; j < b.cols(); ++j) out_row[j] += aki * b_row[j];
    }
  }
  return out;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  // out = a * b^T, a: (r x k), b: (c x k) -> out: (r x c)
  assert(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* a_row = a.data_.data() + i * a.cols_;
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* b_row = b.data_.data() + j * b.cols_;
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a_row[k] * b_row[k];
      out(i, j) = acc;
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Matrix Matrix::map(const std::function<double(double)>& f) const {
  Matrix out = *this;
  for (double& v : out.data_) v = f(v);
  return out;
}

double Matrix::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::min() const {
  if (empty()) return 0.0;
  return *std::min_element(data_.begin(), data_.end());
}

double Matrix::max() const {
  if (empty()) return 0.0;
  return *std::max_element(data_.begin(), data_.end());
}

Matrix Matrix::row_sums() const {
  Matrix out(rows_, 1);
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += (*this)(i, j);
    out(i, 0) = s;
  }
  return out;
}

Matrix Matrix::col_sums() const {
  Matrix out(1, cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(0, j) += (*this)(i, j);
  return out;
}

double Matrix::norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  return m;
}

std::string Matrix::to_string(int precision) const {
  std::string out = "[";
  char buf[48];
  for (std::size_t i = 0; i < rows_; ++i) {
    out += (i == 0) ? "[" : " [";
    for (std::size_t j = 0; j < cols_; ++j) {
      std::snprintf(buf, sizeof(buf), "%.*g", precision, (*this)(i, j));
      out += buf;
      if (j + 1 < cols_) out += ", ";
    }
    out += "]";
    if (i + 1 < rows_) out += "\n";
  }
  out += "]";
  return out;
}

}  // namespace automdt::nn
