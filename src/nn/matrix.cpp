#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/thread_pool.hpp"

namespace automdt::nn {
namespace {

// Work threshold (multiply-adds) below which a product stays on the calling
// thread: dispatching a pool region costs a few microseconds, which a
// sub-64k-FLOP product finishes in anyway. PPO minibatches (e.g. 40x10 states
// through 128-wide layers, ~650k FLOPs per layer) sit well above it; the
// single-row products behind PpoAgent::act() sit well below, so act() latency
// never pays pool overhead.
constexpr std::size_t kMatmulParallelMinFlops = 64 * 1024;

// Column tile: 128 doubles = 1 KiB of a b/out row per block, so one tile of b
// (tile_k x 1 KiB) stays cache-resident while every row of the range streams
// against it.
constexpr std::size_t kColsPerBlock = 128;

/// Pool to use for a product of `flops` with `rows` parallelizable rows, or
/// nullptr for the serial path.
ThreadPool* matmul_pool(std::size_t flops, std::size_t rows) {
  if (rows < 2 || flops < kMatmulParallelMinFlops) return nullptr;
  ThreadPool& pool = global_thread_pool();
  return pool.size() > 1 ? &pool : nullptr;
}

std::size_t row_grain(std::size_t rows, const ThreadPool& pool) {
  // ~4 chunks per lane keeps the dynamic schedule balanced without
  // fine-grained cursor traffic.
  return std::max<std::size_t>(1, rows / (4 * static_cast<std::size_t>(
                                                  pool.size())));
}

// out rows [r0, r1) of a * b. Per output element the k-summation runs in
// ascending order — exactly the order of the plain ikj loop — so the blocked
// and row-parallel paths are bit-identical to the serial product.
void matmul_rows(const Matrix& a, const Matrix& b, Matrix& out, std::size_t r0,
                 std::size_t r1) {
  const std::size_t kk = a.cols();
  const std::size_t cc = b.cols();
  const double* ad = a.data().data();
  const double* bd = b.data().data();
  double* od = out.data().data();
  for (std::size_t j0 = 0; j0 < cc; j0 += kColsPerBlock) {
    const std::size_t j1 = std::min(j0 + kColsPerBlock, cc);
    for (std::size_t i = r0; i < r1; ++i) {
      const double* a_row = ad + i * kk;
      double* out_row = od + i * cc;
      for (std::size_t k = 0; k < kk; ++k) {
        const double aik = a_row[k];
        if (aik == 0.0) continue;
        const double* b_row = bd + k * cc;
        for (std::size_t j = j0; j < j1; ++j) out_row[j] += aik * b_row[j];
      }
    }
  }
}

// out rows [r0, r1) of a^T * b (out row i = column i of a). Same k-ascending
// accumulation order as the serial loop.
void matmul_tn_rows(const Matrix& a, const Matrix& b, Matrix& out,
                    std::size_t r0, std::size_t r1) {
  const std::size_t cc = b.cols();
  const double* ad = a.data().data();
  const double* bd = b.data().data();
  double* od = out.data().data();
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* a_row = ad + k * a.cols();
    const double* b_row = bd + k * cc;
    for (std::size_t i = r0; i < r1; ++i) {
      const double aki = a_row[i];
      if (aki == 0.0) continue;
      double* out_row = od + i * cc;
      for (std::size_t j = 0; j < cc; ++j) out_row[j] += aki * b_row[j];
    }
  }
}

// out rows [r0, r1) of a * b^T: independent dot products.
void matmul_nt_rows(const Matrix& a, const Matrix& b, Matrix& out,
                    std::size_t r0, std::size_t r1) {
  const std::size_t kk = a.cols();
  const double* ad = a.data().data();
  const double* bd = b.data().data();
  double* od = out.data().data();
  for (std::size_t i = r0; i < r1; ++i) {
    const double* a_row = ad + i * kk;
    double* out_row = od + i * b.rows();
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* b_row = bd + j * kk;
      double acc = 0.0;
      for (std::size_t k = 0; k < kk; ++k) acc += a_row[k] * b_row[k];
      out_row[j] = acc;
    }
  }
}

}  // namespace

Matrix Matrix::from(std::initializer_list<std::initializer_list<double>> rows) {
  const std::size_t r = rows.size();
  const std::size_t c = r > 0 ? rows.begin()->size() : 0;
  Matrix m(r, c);
  std::size_t i = 0;
  for (const auto& row : rows) {
    assert(row.size() == c);
    std::size_t j = 0;
    for (double v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

Matrix Matrix::row(std::span<const double> values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

Matrix Matrix::column(std::span<const double> values) {
  Matrix m(values.size(), 1);
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  assert(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  assert(same_shape(o));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  Matrix out = a;
  for (std::size_t i = 0; i < out.data_.size(); ++i) out.data_[i] *= b.data_[i];
  return out;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  if (ThreadPool* pool =
          matmul_pool(a.rows() * a.cols() * b.cols(), a.rows())) {
    pool->parallel_for(0, a.rows(), row_grain(a.rows(), *pool),
                       [&](std::size_t lo, std::size_t hi) {
                         matmul_rows(a, b, out, lo, hi);
                       });
  } else {
    matmul_rows(a, b, out, 0, a.rows());
  }
  return out;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  // out = a^T * b, a: (k x r), b: (k x c) -> out: (r x c)
  assert(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  if (ThreadPool* pool =
          matmul_pool(a.rows() * a.cols() * b.cols(), a.cols())) {
    pool->parallel_for(0, a.cols(), row_grain(a.cols(), *pool),
                       [&](std::size_t lo, std::size_t hi) {
                         matmul_tn_rows(a, b, out, lo, hi);
                       });
  } else {
    matmul_tn_rows(a, b, out, 0, a.cols());
  }
  return out;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  // out = a * b^T, a: (r x k), b: (c x k) -> out: (r x c)
  assert(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  if (ThreadPool* pool =
          matmul_pool(a.rows() * a.cols() * b.rows(), a.rows())) {
    pool->parallel_for(0, a.rows(), row_grain(a.rows(), *pool),
                       [&](std::size_t lo, std::size_t hi) {
                         matmul_nt_rows(a, b, out, lo, hi);
                       });
  } else {
    matmul_nt_rows(a, b, out, 0, a.rows());
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Matrix Matrix::map(const std::function<double(double)>& f) const {
  Matrix out = *this;
  for (double& v : out.data_) v = f(v);
  return out;
}

double Matrix::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::min() const {
  if (empty()) return 0.0;
  return *std::min_element(data_.begin(), data_.end());
}

double Matrix::max() const {
  if (empty()) return 0.0;
  return *std::max_element(data_.begin(), data_.end());
}

Matrix Matrix::row_sums() const {
  Matrix out(rows_, 1);
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += (*this)(i, j);
    out(i, 0) = s;
  }
  return out;
}

Matrix Matrix::col_sums() const {
  Matrix out(1, cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(0, j) += (*this)(i, j);
  return out;
}

double Matrix::norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  assert(a.same_shape(b));
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  return m;
}

std::string Matrix::to_string(int precision) const {
  std::string out = "[";
  char buf[48];
  for (std::size_t i = 0; i < rows_; ++i) {
    out += (i == 0) ? "[" : " [";
    for (std::size_t j = 0; j < cols_; ++j) {
      std::snprintf(buf, sizeof(buf), "%.*g", precision, (*this)(i, j));
      out += buf;
      if (j + 1 < cols_) out += ", ";
    }
    out += "]";
    if (i + 1 < rows_) out += "\n";
  }
  out += "]";
  return out;
}

}  // namespace automdt::nn
