#include "nn/grad_check.hpp"

#include <algorithm>
#include <cmath>

namespace automdt::nn {

GradCheckResult check_gradients(const std::vector<Parameter*>& params,
                                const std::function<Tensor()>& loss_fn,
                                double h) {
  // Analytic gradients.
  for (Parameter* p : params) p->zero_grad();
  loss_fn().backward();
  std::vector<Matrix> analytic;
  analytic.reserve(params.size());
  for (Parameter* p : params) analytic.push_back(p->grad());

  GradCheckResult result;
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Matrix& w = params[pi]->mutable_value();
    for (std::size_t k = 0; k < w.size(); ++k) {
      const double orig = w.data()[k];
      w.data()[k] = orig + h;
      const double up = loss_fn().scalar();
      w.data()[k] = orig - h;
      const double down = loss_fn().scalar();
      w.data()[k] = orig;
      const double numeric = (up - down) / (2.0 * h);
      const double a = analytic[pi].data()[k];
      const double abs_err = std::fabs(a - numeric);
      const double denom = std::max({std::fabs(a), std::fabs(numeric), 1e-8});
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
    }
  }
  for (Parameter* p : params) p->zero_grad();
  return result;
}

}  // namespace automdt::nn
