#include "nn/tensor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "common/thread_pool.hpp"

namespace automdt::nn {
namespace {

// Elementwise loops fan out across the global pool only above this many
// elements: a pool dispatch costs a few microseconds, which is the serial
// cost of ~thousands of tanh/exp evaluations. Below it (single rows in
// act(), small minibatches) the loop runs inline, so sampling latency is
// untouched. Partitioning never changes results — each index is written
// independently — so the threshold is a pure performance knob.
constexpr std::size_t kElementwiseParallelMin = 4096;

/// Run body(lo, hi) over [0, n), pooled when the workload justifies it.
template <typename Body>
void elementwise_ranges(std::size_t n, Body&& body) {
  if (n >= kElementwiseParallelMin) {
    ThreadPool& pool = global_thread_pool();
    if (pool.size() > 1) {
      const std::size_t grain = std::max<std::size_t>(
          1024, n / (4 * static_cast<std::size_t>(pool.size())));
      pool.parallel_for(0, n, grain, body);
      return;
    }
  }
  body(0, n);
}

}  // namespace

Tensor Tensor::constant(Matrix v) {
  auto n = std::make_shared<Node>();
  n->value = std::move(v);
  n->requires_grad = false;
  return Tensor(std::move(n));
}

Tensor Tensor::variable(Matrix v) {
  auto n = std::make_shared<Node>();
  n->value = std::move(v);
  n->requires_grad = true;
  return Tensor(std::move(n));
}

double Tensor::scalar() const {
  assert(node_ && node_->value.rows() == 1 && node_->value.cols() == 1);
  return node_->value(0, 0);
}

void Tensor::zero_grad() const {
  if (node_) {
    node_->ensure_grad();
    node_->grad.zero();
  }
}

void Tensor::backward() const {
  assert(node_ && node_->value.rows() == 1 && node_->value.cols() == 1 &&
         "backward() requires a scalar root");
  // Topological order via iterative post-order DFS.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [n, idx] = stack.back();
    if (idx < n->inputs.size()) {
      Node* child = n->inputs[idx++].get();
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(n);
      stack.pop_back();
    }
  }
  // Seed and sweep in reverse topological order (root last in `order`).
  node_->ensure_grad();
  node_->grad(0, 0) += 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && n->requires_grad) n->backward_fn(*n);
  }
}

Tensor make_op(Matrix value, std::vector<Tensor> inputs,
               std::function<void(Node&)> backward_fn) {
  const bool needs_grad = std::any_of(
      inputs.begin(), inputs.end(),
      [](const Tensor& t) { return t.requires_grad(); });
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  if (needs_grad) {
    n->requires_grad = true;
    n->inputs.reserve(inputs.size());
    for (auto& t : inputs) n->inputs.push_back(t.node());
    n->backward_fn = std::move(backward_fn);
  }
  return Tensor(std::move(n));
}

namespace {

// Accumulate g into dst's grad if it participates in the tape.
void accum(const std::shared_ptr<Node>& dst, const Matrix& g) {
  if (!dst->requires_grad) return;
  dst->ensure_grad();
  dst->grad += g;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  assert(a.value().same_shape(b.value()));
  return make_op(a.value() + b.value(), {a, b}, [](Node& self) {
    accum(self.inputs[0], self.grad);
    accum(self.inputs[1], self.grad);
  });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  assert(a.value().same_shape(b.value()));
  return make_op(a.value() - b.value(), {a, b}, [](Node& self) {
    accum(self.inputs[0], self.grad);
    Matrix g = self.grad;
    g *= -1.0;
    accum(self.inputs[1], g);
  });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  assert(a.value().same_shape(b.value()));
  return make_op(hadamard(a.value(), b.value()), {a, b}, [](Node& self) {
    accum(self.inputs[0], hadamard(self.grad, self.inputs[1]->value));
    accum(self.inputs[1], hadamard(self.grad, self.inputs[0]->value));
  });
}

Tensor neg(const Tensor& a) { return scale(a, -1.0); }

Tensor scale(const Tensor& a, double s) {
  return make_op(a.value() * s, {a}, [s](Node& self) {
    Matrix g = self.grad;
    g *= s;
    accum(self.inputs[0], g);
  });
}

Tensor add_scalar(const Tensor& a, double s) {
  return make_op(a.value().map([s](double v) { return v + s; }), {a},
                 [](Node& self) { accum(self.inputs[0], self.grad); });
}

Tensor add_row_broadcast(const Tensor& a, const Tensor& b) {
  assert(b.rows() == 1 && b.cols() == a.cols());
  Matrix out = a.value();
  for (std::size_t i = 0; i < out.rows(); ++i)
    for (std::size_t j = 0; j < out.cols(); ++j) out(i, j) += b.value()(0, j);
  return make_op(std::move(out), {a, b}, [](Node& self) {
    accum(self.inputs[0], self.grad);
    accum(self.inputs[1], self.grad.col_sums());
  });
}

Tensor mul_row_broadcast(const Tensor& a, const Tensor& b) {
  assert(b.rows() == 1 && b.cols() == a.cols());
  Matrix out = a.value();
  for (std::size_t i = 0; i < out.rows(); ++i)
    for (std::size_t j = 0; j < out.cols(); ++j) out(i, j) *= b.value()(0, j);
  return make_op(std::move(out), {a, b}, [](Node& self) {
    const Matrix& av = self.inputs[0]->value;
    const Matrix& bv = self.inputs[1]->value;
    Matrix da = self.grad;
    for (std::size_t i = 0; i < da.rows(); ++i)
      for (std::size_t j = 0; j < da.cols(); ++j) da(i, j) *= bv(0, j);
    accum(self.inputs[0], da);
    accum(self.inputs[1], hadamard(self.grad, av).col_sums());
  });
}

Tensor tanh_op(const Tensor& a) {
  const Matrix& x = a.value();
  Matrix y(x.rows(), x.cols());
  elementwise_ranges(x.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      y.data()[i] = std::tanh(x.data()[i]);
  });
  return make_op(std::move(y), {a}, [](Node& self) {
    Matrix g = self.grad;
    const Matrix& y = self.value;
    elementwise_ranges(g.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i)
        g.data()[i] *= 1.0 - y.data()[i] * y.data()[i];
    });
    accum(self.inputs[0], g);
  });
}

Tensor relu(const Tensor& a) {
  const Matrix& x = a.value();
  Matrix y(x.rows(), x.cols());
  elementwise_ranges(x.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const double v = x.data()[i];
      y.data()[i] = v > 0.0 ? v : 0.0;
    }
  });
  return make_op(std::move(y), {a}, [](Node& self) {
    Matrix g = self.grad;
    const Matrix& x = self.inputs[0]->value;
    elementwise_ranges(g.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i)
        if (x.data()[i] <= 0.0) g.data()[i] = 0.0;
    });
    accum(self.inputs[0], g);
  });
}

Tensor exp_op(const Tensor& a) {
  const Matrix& x = a.value();
  Matrix y(x.rows(), x.cols());
  elementwise_ranges(x.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      y.data()[i] = std::exp(x.data()[i]);
  });
  return make_op(std::move(y), {a}, [](Node& self) {
    accum(self.inputs[0], hadamard(self.grad, self.value));
  });
}

Tensor log_op(const Tensor& a) {
  Matrix y = a.value().map([](double v) {
    assert(v > 0.0);
    return std::log(v);
  });
  return make_op(std::move(y), {a}, [](Node& self) {
    Matrix g = self.grad;
    const Matrix& x = self.inputs[0]->value;
    for (std::size_t i = 0; i < g.size(); ++i) g.data()[i] /= x.data()[i];
    accum(self.inputs[0], g);
  });
}

Tensor square(const Tensor& a) {
  const Matrix& x = a.value();
  Matrix y(x.rows(), x.cols());
  elementwise_ranges(x.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const double v = x.data()[i];
      y.data()[i] = v * v;
    }
  });
  return make_op(std::move(y), {a}, [](Node& self) {
    Matrix g = self.grad;
    const Matrix& x = self.inputs[0]->value;
    elementwise_ranges(g.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i)
        g.data()[i] *= 2.0 * x.data()[i];
    });
    accum(self.inputs[0], g);
  });
}

Tensor clamp(const Tensor& a, double lo, double hi) {
  assert(lo <= hi);
  const Matrix& x = a.value();
  Matrix y(x.rows(), x.cols());
  elementwise_ranges(x.size(), [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i)
      y.data()[i] = std::clamp(x.data()[i], lo, hi);
  });
  return make_op(std::move(y), {a}, [lo, hi](Node& self) {
    Matrix g = self.grad;
    const Matrix& x = self.inputs[0]->value;
    elementwise_ranges(g.size(), [&](std::size_t r0, std::size_t r1) {
      for (std::size_t i = r0; i < r1; ++i) {
        const double v = x.data()[i];
        if (v < lo || v > hi) g.data()[i] = 0.0;
      }
    });
    accum(self.inputs[0], g);
  });
}

Tensor min_ew(const Tensor& a, const Tensor& b) {
  assert(a.value().same_shape(b.value()));
  Matrix y = a.value();
  for (std::size_t i = 0; i < y.size(); ++i)
    y.data()[i] = std::min(y.data()[i], b.value().data()[i]);
  return make_op(std::move(y), {a, b}, [](Node& self) {
    const Matrix& av = self.inputs[0]->value;
    const Matrix& bv = self.inputs[1]->value;
    Matrix ga = self.grad;
    Matrix gb = self.grad;
    for (std::size_t i = 0; i < ga.size(); ++i) {
      // Ties route the gradient to `a` (matches torch.minimum's subgradient
      // choice closely enough for optimization purposes).
      if (av.data()[i] <= bv.data()[i]) {
        gb.data()[i] = 0.0;
      } else {
        ga.data()[i] = 0.0;
      }
    }
    accum(self.inputs[0], ga);
    accum(self.inputs[1], gb);
  });
}

Tensor sum(const Tensor& a) {
  Matrix y(1, 1);
  y(0, 0) = a.value().sum();
  return make_op(std::move(y), {a}, [](Node& self) {
    const double g = self.grad(0, 0);
    const Matrix& x = self.inputs[0]->value;
    accum(self.inputs[0], Matrix(x.rows(), x.cols(), g));
  });
}

Tensor mean(const Tensor& a) {
  Matrix y(1, 1);
  y(0, 0) = a.value().mean();
  return make_op(std::move(y), {a}, [](Node& self) {
    const Matrix& x = self.inputs[0]->value;
    const double g = self.grad(0, 0) / static_cast<double>(x.size());
    accum(self.inputs[0], Matrix(x.rows(), x.cols(), g));
  });
}

Tensor row_sum(const Tensor& a) {
  return make_op(a.value().row_sums(), {a}, [](Node& self) {
    const Matrix& x = self.inputs[0]->value;
    Matrix g(x.rows(), x.cols());
    for (std::size_t i = 0; i < x.rows(); ++i)
      for (std::size_t j = 0; j < x.cols(); ++j) g(i, j) = self.grad(i, 0);
    accum(self.inputs[0], g);
  });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  return make_op(matmul(a.value(), b.value()), {a, b}, [](Node& self) {
    const Matrix& av = self.inputs[0]->value;
    const Matrix& bv = self.inputs[1]->value;
    accum(self.inputs[0], matmul_nt(self.grad, bv));  // g * b^T
    accum(self.inputs[1], matmul_tn(av, self.grad));  // a^T * g
  });
}

Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  double eps) {
  const Matrix& xv = x.value();
  const std::size_t n = xv.rows(), m = xv.cols();
  assert(gamma.rows() == 1 && gamma.cols() == m);
  assert(beta.rows() == 1 && beta.cols() == m);

  // Cache per-row mean and inverse stddev for the backward pass.
  auto mu = std::make_shared<std::vector<double>>(n);
  auto inv_std = std::make_shared<std::vector<double>>(n);
  auto xhat = std::make_shared<Matrix>(n, m);

  Matrix y(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < m; ++j) s += xv(i, j);
    const double mean_i = s / static_cast<double>(m);
    double var = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const double d = xv(i, j) - mean_i;
      var += d * d;
    }
    var /= static_cast<double>(m);
    const double is = 1.0 / std::sqrt(var + eps);
    (*mu)[i] = mean_i;
    (*inv_std)[i] = is;
    for (std::size_t j = 0; j < m; ++j) {
      const double xh = (xv(i, j) - mean_i) * is;
      (*xhat)(i, j) = xh;
      y(i, j) = gamma.value()(0, j) * xh + beta.value()(0, j);
    }
  }

  return make_op(std::move(y), {x, gamma, beta},
                 [xhat, inv_std, m](Node& self) {
    const Matrix& g = self.grad;
    const Matrix& gammav = self.inputs[1]->value;
    const std::size_t n = g.rows();
    const double md = static_cast<double>(m);

    // dgamma, dbeta
    Matrix dgamma(1, m), dbeta(1, m);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < m; ++j) {
        dgamma(0, j) += g(i, j) * (*xhat)(i, j);
        dbeta(0, j) += g(i, j);
      }
    accum(self.inputs[1], dgamma);
    accum(self.inputs[2], dbeta);

    // dx: per row, dxhat = g ⊙ gamma;
    // dx = inv_std/m * (m*dxhat - sum(dxhat) - xhat * sum(dxhat ⊙ xhat))
    Matrix dx(n, m);
    for (std::size_t i = 0; i < n; ++i) {
      double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        const double dxh = g(i, j) * gammav(0, j);
        sum_dxhat += dxh;
        sum_dxhat_xhat += dxh * (*xhat)(i, j);
      }
      for (std::size_t j = 0; j < m; ++j) {
        const double dxh = g(i, j) * gammav(0, j);
        dx(i, j) = (*inv_std)[i] / md *
                   (md * dxh - sum_dxhat - (*xhat)(i, j) * sum_dxhat_xhat);
      }
    }
    accum(self.inputs[0], dx);
  });
}

Tensor log_softmax(const Tensor& x) {
  const Matrix& xv = x.value();
  Matrix y(xv.rows(), xv.cols());
  for (std::size_t i = 0; i < xv.rows(); ++i) {
    double mx = xv(i, 0);
    for (std::size_t j = 1; j < xv.cols(); ++j) mx = std::max(mx, xv(i, j));
    double lse = 0.0;
    for (std::size_t j = 0; j < xv.cols(); ++j) lse += std::exp(xv(i, j) - mx);
    lse = mx + std::log(lse);
    for (std::size_t j = 0; j < xv.cols(); ++j) y(i, j) = xv(i, j) - lse;
  }
  return make_op(std::move(y), {x}, [](Node& self) {
    // dx = g - softmax(x) * row_sum(g)
    const Matrix& g = self.grad;
    const Matrix& y = self.value;
    Matrix dx = g;
    for (std::size_t i = 0; i < g.rows(); ++i) {
      double gs = 0.0;
      for (std::size_t j = 0; j < g.cols(); ++j) gs += g(i, j);
      for (std::size_t j = 0; j < g.cols(); ++j)
        dx(i, j) -= std::exp(y(i, j)) * gs;
    }
    accum(self.inputs[0], dx);
  });
}

Tensor row_gather(const Tensor& x, const std::vector<int>& indices) {
  const Matrix& xv = x.value();
  assert(indices.size() == xv.rows());
  Matrix y(xv.rows(), 1);
  for (std::size_t i = 0; i < xv.rows(); ++i) {
    assert(indices[i] >= 0 && static_cast<std::size_t>(indices[i]) < xv.cols());
    y(i, 0) = xv(i, static_cast<std::size_t>(indices[i]));
  }
  return make_op(std::move(y), {x}, [indices](Node& self) {
    const Matrix& x = self.inputs[0]->value;
    Matrix dx(x.rows(), x.cols());
    for (std::size_t i = 0; i < x.rows(); ++i)
      dx(i, static_cast<std::size_t>(indices[i])) = self.grad(i, 0);
    accum(self.inputs[0], dx);
  });
}

Tensor detach(const Tensor& a) { return Tensor::constant(a.value()); }

}  // namespace automdt::nn
