// Fixed-size thread pool with a blocking `parallel_for` primitive.
//
// Built for the offline-training fast path: one pool is created up front
// (global_thread_pool()), and hot loops — blocked matmul row ranges, tensor
// elementwise ops, vectorized simulator rollouts — carve index ranges across
// it. Design constraints, in order:
//
//   * No per-task allocation. A parallel region publishes one shared
//     descriptor (type-erased callable pointer + atomic chunk cursor); workers
//     claim [lo, hi) chunks with fetch_add. Nothing is heap-allocated per
//     call, so a 5 µs region is still worth dispatching.
//   * The caller participates. parallel_for runs chunks on the calling thread
//     too, so a pool of size N uses N threads total, not N+1.
//   * Exceptions propagate. The first exception thrown by any chunk is
//     captured, remaining chunks are cancelled, and it is rethrown from
//     parallel_for on the calling thread.
//   * Nested calls degrade to serial. A parallel_for issued from inside a
//     worker runs inline (no deadlock, no oversubscription).
//
// Determinism contract: parallel_for guarantees each index in [begin, end) is
// visited exactly once, but chunk-to-thread assignment is scheduling
// dependent. Callers that only write disjoint outputs per index (every use in
// this repository) therefore produce bit-identical results for any pool size.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace automdt {

class ThreadPool {
 public:
  /// `threads` is the total parallelism including the calling thread;
  /// <= 0 means std::thread::hardware_concurrency(). A pool of size 1 spawns
  /// no workers and runs every parallel_for inline.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (workers + the calling thread).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Resolve a requested thread count the way the constructor does.
  static int resolve_threads(int threads);

  /// True when the current thread is one of this pool's workers.
  static bool on_worker_thread();

  /// True when the current thread is inside a parallel_for region (as a
  /// worker *or* as the participating caller) — nested calls run inline.
  static bool in_parallel_region();

  /// Invoke body(lo, hi) over disjoint chunks covering [begin, end), each
  /// chunk at most `grain` indices. Blocks until every chunk completed.
  /// `body` must tolerate concurrent invocation on disjoint ranges.
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    Body&& body) {
    if (end <= begin) return;
    if (grain == 0) grain = 1;
    if (workers_.empty() || end - begin <= grain || in_parallel_region()) {
      body(begin, end);
      return;
    }
    using Fn = std::remove_reference_t<Body>;
    RangeTask task;
    task.invoke = [](void* ctx, std::size_t lo, std::size_t hi) {
      (*static_cast<Fn*>(ctx))(lo, hi);
    };
    task.ctx = std::addressof(body);
    run_region(task, begin, end, grain);
  }

 private:
  struct RangeTask {
    void (*invoke)(void* ctx, std::size_t lo, std::size_t hi) = nullptr;
    void* ctx = nullptr;
  };

  void run_region(const RangeTask& task, std::size_t begin, std::size_t end,
                  std::size_t grain);
  /// Claim and run chunks of the current region until the cursor passes
  /// `end` or an error cancels the region.
  void drain_chunks(const RangeTask& task, std::size_t end, std::size_t grain);
  void record_error();
  void worker_loop();

  // One region at a time; concurrent callers queue up here.
  std::mutex region_mutex_;

  // Region descriptor, guarded by mu_ except for the atomic cursor.
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new epoch
  std::condition_variable done_cv_;   // caller waits for workers to drain
  RangeTask task_{};
  std::size_t end_ = 0;
  std::size_t grain_ = 1;
  std::atomic<std::size_t> next_{0};  // chunk cursor
  std::uint64_t epoch_ = 0;
  int active_workers_ = 0;
  std::exception_ptr error_;
  bool shutdown_ = false;

  std::vector<std::thread> workers_;
};

/// Process-wide pool shared by the nn/rl/sim fast paths. Created lazily on
/// first use with the size last requested via set_global_thread_pool_size()
/// (default: hardware concurrency).
ThreadPool& global_thread_pool();

/// Request a global pool size (<= 0 restores the hardware-concurrency
/// default). If the pool already exists with a different size it is torn down
/// and rebuilt; callers must not hold references across this call.
void set_global_thread_pool_size(int threads);

}  // namespace automdt
