// Virtual clock.
//
// All testbed emulation and the training simulator run in *virtual time*: a
// 1 TB transfer that "takes" 400 virtual seconds completes in milliseconds of
// wall time. The clock is a plain accumulator owned by whichever component is
// driving the simulation; components below it receive `now()` as an argument
// rather than holding a clock reference, which keeps them trivially testable.
#pragma once

#include <cassert>

namespace automdt {

class VirtualClock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(double start_s) : now_s_(start_s) {}

  double now() const { return now_s_; }

  void advance(double dt_s) {
    assert(dt_s >= 0.0);
    now_s_ += dt_s;
  }

  void advance_to(double t_s) {
    assert(t_s >= now_s_);
    now_s_ = t_s;
  }

  void reset(double t_s = 0.0) { now_s_ = t_s; }

 private:
  double now_s_ = 0.0;
};

}  // namespace automdt
