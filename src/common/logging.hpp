// Minimal leveled logger.
//
// Benches and examples narrate progress through this; the library itself logs
// sparingly (training milestones, convergence events). Output goes to stderr
// so that the structured results printed by bench harnesses on stdout stay
// machine-parseable.
//
// Sink hook: a process-wide LogSink can be installed with set_log_sink() and
// receives every emitted line in addition to stderr. The telemetry flight
// recorder (telemetry/journal.hpp) uses this to keep a lock-free in-memory
// tail of recent events without the logger depending on telemetry. The sink
// is called outside the stderr lock and must be thread-safe; the installer
// owns its lifetime and must detach (set_log_sink(nullptr)) before
// destroying it.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace automdt {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Thread-safe.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Fixed-width tag for a level ("INFO ", "ERROR", ...).
const char* log_level_tag(LogLevel level);

/// Receives every log line that passes the threshold. Implementations must
/// be thread-safe and must not log (re-entrancy is not guarded).
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(LogLevel level, std::string_view message) = 0;
};

/// Install (or with nullptr, remove) the process-wide extra sink. The caller
/// keeps ownership and must outlive any concurrent logging after install.
void set_log_sink(LogSink* sink);
LogSink* log_sink();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

// Usage: LOG_INFO("trained " << n << " episodes");
#define AUTOMDT_LOG(level, expr)                                 \
  do {                                                           \
    if (static_cast<int>(level) >=                               \
        static_cast<int>(::automdt::log_level())) {              \
      std::ostringstream oss_;                                   \
      oss_ << expr;                                              \
      ::automdt::detail::log_line(level, oss_.str());            \
    }                                                            \
  } while (0)

#define LOG_DEBUG(expr) AUTOMDT_LOG(::automdt::LogLevel::kDebug, expr)
#define LOG_INFO(expr) AUTOMDT_LOG(::automdt::LogLevel::kInfo, expr)
#define LOG_WARN(expr) AUTOMDT_LOG(::automdt::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) AUTOMDT_LOG(::automdt::LogLevel::kError, expr)

}  // namespace automdt
