// Minimal leveled logger.
//
// Benches and examples narrate progress through this; the library itself logs
// sparingly (training milestones, convergence events). Output goes to stderr
// so that the structured results printed by bench harnesses on stdout stay
// machine-parseable.
#pragma once

#include <sstream>
#include <string>

namespace automdt {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Thread-safe.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

// Usage: LOG_INFO("trained " << n << " episodes");
#define AUTOMDT_LOG(level, expr)                                 \
  do {                                                           \
    if (static_cast<int>(level) >=                               \
        static_cast<int>(::automdt::log_level())) {              \
      std::ostringstream oss_;                                   \
      oss_ << expr;                                              \
      ::automdt::detail::log_line(level, oss_.str());            \
    }                                                            \
  } while (0)

#define LOG_DEBUG(expr) AUTOMDT_LOG(::automdt::LogLevel::kDebug, expr)
#define LOG_INFO(expr) AUTOMDT_LOG(::automdt::LogLevel::kInfo, expr)
#define LOG_WARN(expr) AUTOMDT_LOG(::automdt::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) AUTOMDT_LOG(::automdt::LogLevel::kError, expr)

}  // namespace automdt
