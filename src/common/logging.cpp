#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace automdt {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<LogSink*> g_sink{nullptr};
std::mutex g_mutex;

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

const char* log_level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

void set_log_sink(LogSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

LogSink* log_sink() { return g_sink.load(std::memory_order_acquire); }

namespace detail {

void log_line(LogLevel level, const std::string& msg) {
  // The sink first, outside the stderr lock: a lock-free sink (the flight
  // recorder journal) must not serialize behind slow terminal writes.
  if (LogSink* sink = g_sink.load(std::memory_order_acquire)) {
    sink->write(level, msg);
  }
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", log_level_tag(level), msg.c_str());
}

}  // namespace detail
}  // namespace automdt
