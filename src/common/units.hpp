// Units and conversions used throughout AutoMDT.
//
// Internally all data sizes are tracked in *bytes* (as double, so that fluid
// models can move fractional bytes per tick) and all rates in *bytes per
// second*. The paper reports rates in Mbps/Gbps; these helpers convert at the
// boundaries so no module ever multiplies by 8 (or forgets to) inline.
#pragma once

#include <cstdint>
#include <string>

namespace automdt {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * kKiB;
inline constexpr double kGiB = 1024.0 * kMiB;
inline constexpr double kTiB = 1024.0 * kGiB;

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;
inline constexpr double kTB = 1e12;

/// Bytes-per-second from megabits-per-second.
constexpr double mbps(double megabits_per_s) { return megabits_per_s * 1e6 / 8.0; }

/// Bytes-per-second from gigabits-per-second.
constexpr double gbps(double gigabits_per_s) { return gigabits_per_s * 1e9 / 8.0; }

/// Megabits-per-second from bytes-per-second.
constexpr double to_mbps(double bytes_per_s) { return bytes_per_s * 8.0 / 1e6; }

/// Gigabits-per-second from bytes-per-second.
constexpr double to_gbps(double bytes_per_s) { return bytes_per_s * 8.0 / 1e9; }

/// Human-readable size, e.g. "1.50 GiB".
std::string format_bytes(double bytes);

/// Human-readable rate, e.g. "12.3 Gbps".
std::string format_rate(double bytes_per_s);

/// Human-readable duration, e.g. "1h 02m 03s" or "45.2 s".
std::string format_duration(double seconds);

}  // namespace automdt
