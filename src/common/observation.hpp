// The PPO state space (paper §IV-D.1) and its normalization.
//
// "We designed the state space to include the current thread counts,
//  throughputs, and the amount of unused buffer at both the sender and the
//  receiver."  => 8 features:
//    [n_r, n_n, n_w, t_r, t_n, t_w, free_sender, free_receiver]
//
// Both the training simulator and the testbed emulator build observations
// through this one type, guaranteeing the offline-trained agent sees the
// exact feature layout in production (a mismatch here is the classic
// sim-to-real bug).
#pragma once

#include <cstddef>
#include <vector>

#include "common/concurrency_tuple.hpp"

namespace automdt {

inline constexpr std::size_t kObservationSize = 8;

/// Normalization constants, fixed when an environment is constructed.
struct ObservationScale {
  int max_threads = 30;              // thread counts divided by this
  double rate_scale_mbps = 1000.0;   // throughputs (Mbps) divided by this
  double sender_capacity = 1.0;      // buffer bytes divided by capacity
  double receiver_capacity = 1.0;
};

inline std::vector<double> build_observation(const ObservationScale& s,
                                             const ConcurrencyTuple& n,
                                             const StageThroughputs& tpt_mbps,
                                             double sender_free_bytes,
                                             double receiver_free_bytes) {
  const double nt = static_cast<double>(s.max_threads);
  return {
      n.read / nt,
      n.network / nt,
      n.write / nt,
      tpt_mbps.read / s.rate_scale_mbps,
      tpt_mbps.network / s.rate_scale_mbps,
      tpt_mbps.write / s.rate_scale_mbps,
      sender_free_bytes / s.sender_capacity,
      receiver_free_bytes / s.receiver_capacity,
  };
}

}  // namespace automdt
