// One checksum implementation for the whole codebase: 64-bit FNV-1a.
//
// Shared by the transfer engine's payload verification (writers recompute the
// chunk checksum on the far side of the pipeline) and the net layer's frame
// validation (every length-prefixed frame carries an FNV-1a of its payload).
// Hoisted here so the data plane and the wire format can never drift apart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace automdt {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001B3ULL;

/// FNV-1a over `size` raw bytes. `seed` allows incremental hashing: feed the
/// previous result back in to hash a logical message split across buffers.
inline std::uint64_t fnv1a(const void* data, std::size_t size,
                           std::uint64_t seed = kFnv1aOffsetBasis) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnv1aPrime;
  }
  return h;
}

inline std::uint64_t fnv1a(const std::vector<std::byte>& bytes,
                           std::uint64_t seed = kFnv1aOffsetBasis) {
  return fnv1a(bytes.data(), bytes.size(), seed);
}

}  // namespace automdt
