// Flat key=value configuration files.
//
// The CLI and deployment-style examples read scenario / training settings
// from simple text files:
//
//     # comment
//     link.per_stream_mbps = 1200
//     link.aggregate_mbps  = 25000
//     ppo.max_episodes     = 6000
//     dataset.name         = mixed
//
// Dotted keys are just strings; sections are a naming convention, not
// structure. Typed getters parse on access and throw ConfigError on malformed
// values, so a bad config fails loudly at startup rather than silently
// training the wrong agent.
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace automdt {

class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Config {
 public:
  Config() = default;

  /// Parse from text. Throws ConfigError on syntax errors (line reported).
  static Config parse(const std::string& text);

  /// Load from a file. Throws ConfigError if unreadable or malformed.
  static Config load(const std::string& path);

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  std::size_t size() const { return values_.size(); }

  /// Raw string access; throws ConfigError if missing.
  const std::string& get_string(const std::string& key) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

  /// Typed access; throws ConfigError on parse failure.
  double get_double(const std::string& key) const;
  double get_double(const std::string& key, double fallback) const;
  long long get_int(const std::string& key) const;
  long long get_int(const std::string& key, long long fallback) const;
  bool get_bool(const std::string& key) const;
  bool get_bool(const std::string& key, bool fallback) const;

  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, double value);
  void set(const std::string& key, long long value);

  /// All keys, sorted (map order).
  std::vector<std::string> keys() const;

  /// Keys beginning with `prefix` (e.g. "link.").
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  /// Merge `other` over this config (other's values win).
  void merge(const Config& other);

  /// Render back to parseable text.
  std::string to_string() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace automdt
