#include "common/csv.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <fstream>

#include "common/logging.hpp"

namespace automdt {

Table::Table(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {}

Table& Table::add_row(std::vector<Cell> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::cell_text(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  char buf[64];
  if (const auto* d = std::get_if<double>(&c)) {
    std::snprintf(buf, sizeof(buf), "%.*f", precision_, *d);
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%lld", std::get<long long>(c));
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  std::vector<std::vector<std::string>> texts;
  texts.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> t;
    t.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      t.push_back(cell_text(row[i]));
      widths[i] = std::max(widths[i], t.back().size());
    }
    texts.push_back(std::move(t));
  }

  auto print_sep = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << ' ' << cells[i] << std::string(widths[i] - cells[i].size(), ' ')
         << " |";
    }
    os << '\n';
  };

  print_sep();
  print_cells(headers_);
  print_sep();
  for (const auto& t : texts) print_cells(t);
  print_sep();
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    if (i) os << ',';
    os << csv_escape(headers_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(cell_text(row[i]));
    }
    os << '\n';
  }
}

bool Table::save_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    LOG_WARN("failed to open " << path << " for writing");
    return false;
  }
  write_csv(f);
  return static_cast<bool>(f);
}

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace automdt
