#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace automdt {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SlidingWindow::add(double x) {
  values_.push_back(x);
  if (values_.size() > capacity_) values_.pop_front();
}

double SlidingWindow::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double SlidingWindow::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double SlidingWindow::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  assert(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace automdt
