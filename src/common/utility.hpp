// The paper's utility (reward) function, §IV-B:
//
//   U = U_read + U_network + U_write,   U_i(t_i, n_i) = t_i / k^{n_i}
//
// Higher throughput raises utility; each extra thread divides it by k, so for
// every stage there is a global maximum balancing utilization against
// parallelism. k is tunable ("aggressiveness"); the paper sweeps 1-25 Gbps
// links and fixes k = 1.02 for all results.
//
// Throughputs are fed in *megabits per second* (the paper's operating range —
// with byte/s magnitudes the reward would be ~1e8 and k^n negligible in
// comparison, so the scale matters for reward shaping).
#pragma once

#include <cmath>

#include "common/concurrency_tuple.hpp"

namespace automdt {

struct UtilityParams {
  /// Per-thread penalty base; > 1. Paper: 1.02 across all experiments.
  double k = 1.02;
};

/// Single-stage utility U_i = t / k^n (t in Mbps).
inline double stage_utility(double throughput_mbps, int threads,
                            const UtilityParams& p = {}) {
  return throughput_mbps / std::pow(p.k, static_cast<double>(threads));
}

/// Total utility over the three stages.
inline double total_utility(const StageThroughputs& tpt_mbps,
                            const ConcurrencyTuple& n,
                            const UtilityParams& p = {}) {
  return stage_utility(tpt_mbps.read, n.read, p) +
         stage_utility(tpt_mbps.network, n.network, p) +
         stage_utility(tpt_mbps.write, n.write, p);
}

/// Theoretical maximum reward used as the PPO convergence target (§IV-E):
///   R_max = b * (k^{-n_r*} + k^{-n_n*} + k^{-n_w*})
/// with b the end-to-end bottleneck (Mbps) and n_i* the ideal thread counts.
inline double theoretical_max_reward(double bottleneck_mbps,
                                     const StageTriple& ideal_threads,
                                     const UtilityParams& p = {}) {
  return bottleneck_mbps * (std::pow(p.k, -ideal_threads.read) +
                            std::pow(p.k, -ideal_threads.network) +
                            std::pow(p.k, -ideal_threads.write));
}

}  // namespace automdt
