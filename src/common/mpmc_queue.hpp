// Bounded blocking multi-producer multi-consumer queue.
//
// Backs the real threaded transfer engine's staging buffers: reader threads
// push chunks, network threads pop them (and symmetrically at the receiver).
// Closing the queue wakes all waiters so pipelines drain cleanly at the end
// of a transfer (CP.20/CP.42: RAII locks, condition waits with predicates).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace automdt {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks while the queue is full. Returns false iff the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    size_.store(items_.size(), std::memory_order_relaxed);
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push that moves from `item` only on success — a full (or
  /// closed) queue leaves it intact in the caller's hands (mutex twin of
  /// MpmcRingQueue::try_push_inplace).
  bool try_push_inplace(T& item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      size_.store(items_.size(), std::memory_order_relaxed);
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false if full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      size_.store(items_.size(), std::memory_order_relaxed);
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns nullopt iff closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    size_.store(items_.size(), std::memory_order_relaxed);
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard lock(mutex_);
      if (items_.empty()) return std::nullopt;
      out = std::move(items_.front());
      items_.pop_front();
      size_.store(items_.size(), std::memory_order_relaxed);
    }
    not_full_.notify_one();
    return out;
  }

  /// No more pushes accepted; pops drain remaining items then return nullopt.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  /// Approximate (relaxed mirror of the guarded deque size): stats polling
  /// reads this without contending with blocked workers on `mutex_`.
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::atomic<std::size_t> size_{0};
  bool closed_ = false;
};

}  // namespace automdt
