// Core domain types shared by every AutoMDT module: the three-stage
// concurrency tuple and the per-stage throughput sample.
//
// The transfer pipeline has exactly three stages (read -> network -> write),
// so these are fixed-size value types rather than vectors; they are passed
// by value everywhere.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <string>

namespace automdt {

/// Index of a pipeline stage. Order matters: data flows Read -> Network -> Write.
enum class Stage : int { kRead = 0, kNetwork = 1, kWrite = 2 };

inline constexpr std::array<Stage, 3> kAllStages = {Stage::kRead, Stage::kNetwork,
                                                    Stage::kWrite};

/// Short lowercase name ("read" / "network" / "write").
constexpr const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kRead: return "read";
    case Stage::kNetwork: return "network";
    case Stage::kWrite: return "write";
  }
  return "?";
}

/// Concurrency levels (thread counts) for the three pipeline stages.
struct ConcurrencyTuple {
  int read = 1;
  int network = 1;
  int write = 1;

  constexpr int& operator[](Stage s) {
    switch (s) {
      case Stage::kRead: return read;
      case Stage::kNetwork: return network;
      case Stage::kWrite: return write;
    }
    return read;  // unreachable
  }
  constexpr int operator[](Stage s) const {
    switch (s) {
      case Stage::kRead: return read;
      case Stage::kNetwork: return network;
      case Stage::kWrite: return write;
    }
    return read;  // unreachable
  }

  /// Component-wise clamp to [lo, hi]; the paper clamps actions to [1, n_max].
  [[nodiscard]] constexpr ConcurrencyTuple clamped(int lo, int hi) const {
    return {std::clamp(read, lo, hi), std::clamp(network, lo, hi),
            std::clamp(write, lo, hi)};
  }

  constexpr int total() const { return read + network + write; }
  constexpr int max_component() const { return std::max({read, network, write}); }

  friend constexpr bool operator==(const ConcurrencyTuple&,
                                   const ConcurrencyTuple&) = default;

  std::string to_string() const {
    return "<" + std::to_string(read) + "," + std::to_string(network) + "," +
           std::to_string(write) + ">";
  }
};

/// Per-stage throughputs in bytes/second (one probe interval's achievement).
struct StageThroughputs {
  double read = 0.0;
  double network = 0.0;
  double write = 0.0;

  constexpr double& operator[](Stage s) {
    switch (s) {
      case Stage::kRead: return read;
      case Stage::kNetwork: return network;
      case Stage::kWrite: return write;
    }
    return read;  // unreachable
  }
  constexpr double operator[](Stage s) const {
    switch (s) {
      case Stage::kRead: return read;
      case Stage::kNetwork: return network;
      case Stage::kWrite: return write;
    }
    return read;  // unreachable
  }

  constexpr double min_component() const {
    return std::min({read, network, write});
  }

  friend constexpr bool operator==(const StageThroughputs&,
                                   const StageThroughputs&) = default;
};

/// A generic per-stage triple of doubles (bandwidths, per-thread throughputs,
/// ideal thread counts, ...). Distinct from StageThroughputs only in intent.
using StageTriple = StageThroughputs;

}  // namespace automdt
