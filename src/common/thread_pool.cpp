#include "common/thread_pool.hpp"

#include <algorithm>

namespace automdt {
namespace {

thread_local bool t_on_worker = false;
thread_local bool t_caller_in_region = false;

}  // namespace

int ThreadPool::resolve_threads(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::max(1u, hw));
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

bool ThreadPool::in_parallel_region() {
  return t_on_worker || t_caller_in_region;
}

ThreadPool::ThreadPool(int threads) {
  const int lanes = resolve_threads(threads);
  workers_.reserve(static_cast<std::size_t>(lanes - 1));
  for (int i = 1; i < lanes; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::record_error() {
  std::lock_guard lock(mu_);
  if (!error_) error_ = std::current_exception();
  // Cancel the rest of the region: park the cursor past the end.
  next_.store(end_, std::memory_order_relaxed);
}

void ThreadPool::drain_chunks(const RangeTask& task, std::size_t end,
                              std::size_t grain) {
  for (;;) {
    const std::size_t lo = next_.fetch_add(grain, std::memory_order_relaxed);
    if (lo >= end) return;
    const std::size_t hi = std::min(lo + grain, end);
    try {
      task.invoke(task.ctx, lo, hi);
    } catch (...) {
      record_error();
      return;
    }
  }
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  std::uint64_t seen_epoch = 0;
  std::unique_lock lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
    if (shutdown_) return;
    seen_epoch = epoch_;
    const RangeTask task = task_;
    const std::size_t end = end_;
    const std::size_t grain = grain_;
    lock.unlock();

    drain_chunks(task, end, grain);

    lock.lock();
    if (--active_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::run_region(const RangeTask& task, std::size_t begin,
                            std::size_t end, std::size_t grain) {
  std::lock_guard region(region_mutex_);
  {
    std::lock_guard lock(mu_);
    task_ = task;
    end_ = end;
    grain_ = grain;
    error_ = nullptr;
    next_.store(begin, std::memory_order_relaxed);
    active_workers_ = static_cast<int>(workers_.size());
    ++epoch_;
  }
  work_cv_.notify_all();

  // Mark the caller as in-region while it drains: a body that issues another
  // parallel_for must run it inline rather than re-entering region_mutex_.
  t_caller_in_region = true;
  drain_chunks(task, end, grain);
  t_caller_in_region = false;

  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;     // lazily created
int g_pool_request = 0;                 // 0 = hardware concurrency

}  // namespace

ThreadPool& global_thread_pool() {
  std::lock_guard lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(g_pool_request);
  return *g_pool;
}

void set_global_thread_pool_size(int threads) {
  std::lock_guard lock(g_pool_mutex);
  g_pool_request = threads;
  if (g_pool && g_pool->size() != ThreadPool::resolve_threads(threads))
    g_pool.reset();  // rebuilt lazily at the requested size
}

}  // namespace automdt
