// Bounded lock-free MPMC ring (Vyukov-style) plus a blocking shell.
//
// The transfer engine's staging queues sit on the per-chunk hot path: every
// chunk pays one push and one pop on each queue it crosses. The original
// MpmcQueue (common/mpmc_queue.hpp) takes a mutex and a condvar round-trip
// per operation, which at small chunk sizes dominates per-chunk cost and
// drowns the concurrency signal the PPO agent tunes against. This file
// replaces that hot path:
//
//   MpmcRing<T>      — the classic Dmitry Vyukov bounded MPMC queue: one
//                      cell per slot carrying a sequence number; producers
//                      and consumers claim positions with a CAS on their own
//                      cursor and never touch a lock. An operation is two
//                      atomic RMWs + one acquire load in the uncontended
//                      case.
//   MpmcRingQueue<T> — wraps the ring in an adaptive spin-then-park
//                      blocking shell exposing the same
//                      push/try_push/pop/try_pop/close API and
//                      close-then-drain semantics as MpmcQueue, so it is a
//                      drop-in replacement for the engine's staging buffers.
//
// Memory model (DESIGN.md §9): each cell's `seq` is the synchronization
// point. A producer CASes `enqueue_pos_` (relaxed — the CAS only claims a
// ticket), writes the value, then store-releases seq = pos + 1; the consumer
// that load-acquires that seq value observes the completed write. The
// symmetric release on dequeue (seq = pos + mask + 1) hands the empty cell
// back to the producer one lap later. Positions are monotonically increasing
// u64 tickets, so ABA would need 2^64 operations.
//
// Blocking policy: a failed immediate attempt spins with a CPU pause, then
// yields, then parks PRECISELY on a per-direction epoch word with C++20
// std::atomic wait/notify (a futex on Linux). The handshake is the classic
// waiter protocol: register as a waiter (seq_cst RMW), fence, snapshot the
// epoch, re-attempt the operation, and only then sleep until the epoch
// moves. The waking side publishes its ring slot, fences, and bumps+notifies
// the epoch only when it observes waiters — so the uncontended hot path pays
// one relaxed load and the parked path wakes on the next matching operation
// instead of a 1 ms timer tick (the previous design parked on a condvar
// with a timed backstop, which put a millisecond of dead air into every
// lost-wakeup race and a spurious wake every millisecond into every long
// stall). Parks and pre-park stalls are counted and exported through
// TransferStats.
//
// close() semantics match MpmcQueue except for one documented window: a
// push that has passed its closed-check when close() lands may still
// deposit its item. The engine only closes a queue from the producing side
// after the final item (or during teardown, when remaining items are
// dropped wholesale), so the window is unobservable there; callers that
// close from a third thread and need exactly-once delivery must join
// producers first — exactly what every existing test and pipeline does.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace automdt {

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Stall/park counters for one blocking ring queue. A "stall" is an
/// operation that found the ring full/empty and had to spin; a "park" is a
/// stall that exhausted its spin budget and slept on the condvar.
struct MpmcRingCounters {
  std::uint64_t push_stalls = 0;
  std::uint64_t push_parks = 0;
  std::uint64_t pop_stalls = 0;
  std::uint64_t pop_parks = 0;
};

/// Lock-free bounded MPMC ring. Capacity is rounded up to a power of two.
/// try-only API; see MpmcRingQueue for the blocking shell.
template <typename T>
class MpmcRing {
 public:
  explicit MpmcRing(std::size_t min_capacity)
      : capacity_(round_up_pow2(min_capacity)),
        mask_(capacity_ - 1),
        cells_(std::make_unique<Cell[]>(capacity_)) {
    for (std::size_t i = 0; i < capacity_; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  /// Moves from `item` only on success. Returns false iff the ring is full.
  bool try_push(T& item) {
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell.value = std::move(item);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS lost: `pos` was reloaded by compare_exchange; retry there.
      } else if (dif < 0) {
        return false;  // the cell is still occupied from the previous lap
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Returns false iff the ring is empty.
  bool try_pop(T& out) {
    std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::int64_t>(seq) -
                       static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          out = std::move(cell.value);
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // no producer has published this cell yet
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Approximate occupancy (relaxed cursor reads; never locks).
  std::size_t size_approx() const {
    const std::uint64_t tail = dequeue_pos_.load(std::memory_order_relaxed);
    const std::uint64_t head = enqueue_pos_.load(std::memory_order_relaxed);
    return head > tail ? static_cast<std::size_t>(head - tail) : 0;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq;
    T value;
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

  const std::size_t capacity_;
  const std::uint64_t mask_;
  std::unique_ptr<Cell[]> cells_;
  // Producer and consumer cursors on separate cache lines so pushes and
  // pops do not false-share.
  alignas(64) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> dequeue_pos_{0};
};

/// Blocking shell: MpmcQueue-compatible API over MpmcRing. Drop-in for the
/// engine's staging queues; see the file comment for close() semantics.
template <typename T>
class MpmcRingQueue {
 public:
  explicit MpmcRingQueue(std::size_t capacity) : ring_(capacity) {}

  MpmcRingQueue(const MpmcRingQueue&) = delete;
  MpmcRingQueue& operator=(const MpmcRingQueue&) = delete;

  /// Blocks while the ring is full. Returns false iff the queue was closed.
  bool push(T item) {
    if (closed_.load(std::memory_order_acquire)) return false;
    if (ring_.try_push(item)) {
      wake_poppers();
      return true;
    }
    push_stalls_.fetch_add(1, std::memory_order_relaxed);
    int spins = 0;
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) return false;
      if (ring_.try_push(item)) {
        wake_poppers();
        return true;
      }
      if (keep_spinning(spins)) continue;
      spins = 0;
      if (park(push_parks_, push_waiters_, not_full_epoch_,
               [&] { return ring_.try_push(item); })) {
        wake_poppers();
        return true;
      }
    }
  }

  /// Non-blocking push. Returns false if full or closed.
  bool try_push(T item) {
    if (closed_.load(std::memory_order_acquire)) return false;
    if (!ring_.try_push(item)) return false;
    wake_poppers();
    return true;
  }

  /// Non-blocking push that moves from `item` only on success — a full (or
  /// closed) ring leaves it intact in the caller's hands, unlike the
  /// by-value overload which consumes it either way. For producers that
  /// must re-park the item on backpressure (serve-plane chunk admission).
  bool try_push_inplace(T& item) {
    if (closed_.load(std::memory_order_acquire)) return false;
    if (!ring_.try_push(item)) return false;
    wake_poppers();
    return true;
  }

  /// Blocks while the ring is empty. False iff closed *and* drained.
  bool pop(T& out) {
    if (ring_.try_pop(out)) {
      wake_pushers();
      return true;
    }
    pop_stalls_.fetch_add(1, std::memory_order_relaxed);
    int spins = 0;
    for (;;) {
      if (ring_.try_pop(out)) {
        wake_pushers();
        return true;
      }
      if (closed_.load(std::memory_order_acquire)) {
        // One more attempt races the final pre-close push; after that the
        // ring is genuinely drained.
        if (!ring_.try_pop(out)) return false;
        wake_pushers();
        return true;
      }
      if (keep_spinning(spins)) continue;
      spins = 0;
      if (park(pop_parks_, pop_waiters_, not_empty_epoch_,
               [&] { return ring_.try_pop(out); })) {
        wake_pushers();
        return true;
      }
    }
  }

  std::optional<T> pop() {
    T out;
    if (!pop(out)) return std::nullopt;
    return out;
  }

  bool try_pop(T& out) {
    if (!ring_.try_pop(out)) return false;
    wake_pushers();
    return true;
  }

  std::optional<T> try_pop() {
    T out;
    if (!try_pop(out)) return std::nullopt;
    return out;
  }

  /// No more pushes accepted; pops drain remaining items then fail. The
  /// seq_cst store + epoch bumps pair with park()'s registered-then-recheck
  /// sequence: any thread that snapshots an epoch after these bumps must
  /// also observe closed_ and skips the wait entirely.
  void close() {
    closed_.store(true, std::memory_order_seq_cst);
    not_full_epoch_.fetch_add(1, std::memory_order_seq_cst);
    not_empty_epoch_.fetch_add(1, std::memory_order_seq_cst);
    not_full_epoch_.notify_all();
    not_empty_epoch_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Approximate (relaxed) — stats polling must never contend with workers.
  std::size_t size() const { return ring_.size_approx(); }

  std::size_t capacity() const { return ring_.capacity(); }

  MpmcRingCounters counters() const {
    MpmcRingCounters c;
    c.push_stalls = push_stalls_.load(std::memory_order_relaxed);
    c.push_parks = push_parks_.load(std::memory_order_relaxed);
    c.pop_stalls = pop_stalls_.load(std::memory_order_relaxed);
    c.pop_parks = pop_parks_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  static constexpr int kSpinIters = 64;   // cpu_pause() spins
  static constexpr int kYieldIters = 16;  // sched yields after spinning

  /// Pre-park ladder: true while the caller should keep retrying (pause,
  /// then yield); false once the spin budget is exhausted and it is time to
  /// park for real.
  static bool keep_spinning(int& spins) {
    if (spins < kSpinIters) {
      ++spins;
      cpu_pause();
      return true;
    }
    if (spins < kSpinIters + kYieldIters) {
      ++spins;
      std::this_thread::yield();
      return true;
    }
    return false;
  }

  /// Precise park on an epoch word. The waiter handshake that makes this
  /// lost-wakeup-free without any timed backstop:
  ///   1. register   — waiters RMW (seq_cst), so wakers can see us;
  ///   2. fence      — orders the registration against the re-attempt;
  ///   3. snapshot   — read the epoch we will sleep on;
  ///   4. re-attempt — `retry()`; success means a waker freed a slot before
  ///                   seeing our registration, and we must not sleep;
  ///   5. sleep      — epoch.wait(e) blocks until a waker (which saw our
  ///                   registration, because of the paired fences) or
  ///                   close() bumps the epoch.
  /// Returns true iff the operation succeeded inside the park (the caller
  /// then skips its own retry); false means "woken or closed — loop again".
  template <typename Retry>
  bool park(std::atomic<std::uint64_t>& parks, std::atomic<int>& waiters,
            std::atomic<std::uint32_t>& epoch, Retry&& retry) {
    parks.fetch_add(1, std::memory_order_relaxed);
    waiters.fetch_add(1, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::uint32_t e = epoch.load(std::memory_order_seq_cst);
    bool done = retry();
    if (!done && !closed_.load(std::memory_order_seq_cst)) epoch.wait(e);
    waiters.fetch_sub(1, std::memory_order_relaxed);
    return done;
  }

  // Waker side of the handshake: the ring slot was published (release store
  // on the cell seq) before this runs; the fence pairs with park()'s so
  // either we see the waiter's registration here, or the waiter's re-attempt
  // sees our slot. One relaxed-ish load is the whole uncontended cost.
  void wake_poppers() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (pop_waiters_.load(std::memory_order_seq_cst) == 0) return;
    not_empty_epoch_.fetch_add(1, std::memory_order_seq_cst);
    not_empty_epoch_.notify_one();
  }

  void wake_pushers() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (push_waiters_.load(std::memory_order_seq_cst) == 0) return;
    not_full_epoch_.fetch_add(1, std::memory_order_seq_cst);
    not_full_epoch_.notify_one();
  }

  MpmcRing<T> ring_;
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> push_stalls_{0};
  std::atomic<std::uint64_t> push_parks_{0};
  std::atomic<std::uint64_t> pop_stalls_{0};
  std::atomic<std::uint64_t> pop_parks_{0};
  // Park/wake state: per-direction epoch words (futex-backed via C++20
  // atomic wait) on their own cache lines, plus waiter counts gating the
  // notify so uncontended operations never touch the futex.
  alignas(64) std::atomic<std::uint32_t> not_full_epoch_{0};
  alignas(64) std::atomic<std::uint32_t> not_empty_epoch_{0};
  std::atomic<int> push_waiters_{0};
  std::atomic<int> pop_waiters_{0};
};

}  // namespace automdt
