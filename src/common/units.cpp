#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace automdt {

std::string format_bytes(double bytes) {
  char buf[64];
  const double b = std::fabs(bytes);
  if (b >= kTiB) {
    std::snprintf(buf, sizeof(buf), "%.2f TiB", bytes / kTiB);
  } else if (b >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", bytes / kGiB);
  } else if (b >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", bytes / kMiB);
  } else if (b >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", bytes / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

std::string format_rate(double bytes_per_s) {
  char buf[64];
  const double bits = bytes_per_s * 8.0;
  if (bits >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f Gbps", bits / 1e9);
  } else if (bits >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f Mbps", bits / 1e6);
  } else if (bits >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f Kbps", bits / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f bps", bits);
  }
  return buf;
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds >= 3600.0) {
    const int h = static_cast<int>(seconds / 3600.0);
    const int m = static_cast<int>((seconds - h * 3600.0) / 60.0);
    const int s = static_cast<int>(seconds - h * 3600.0 - m * 60.0);
    std::snprintf(buf, sizeof(buf), "%dh %02dm %02ds", h, m, s);
  } else if (seconds >= 60.0) {
    const int m = static_cast<int>(seconds / 60.0);
    const double s = seconds - m * 60.0;
    std::snprintf(buf, sizeof(buf), "%dm %04.1fs", m, s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  }
  return buf;
}

}  // namespace automdt
