// Abstract optimization environment.
//
// Both the offline training simulator (sim::SimulatorEnv) and the virtual
// testbed emulator (testbed::EmulatedEnvironment) implement this, so the PPO
// agent and every baseline controller run unchanged against either — exactly
// the paper's architecture, where the production phase (§IV-F) swaps the
// simulator for the real transfer behind the same interaction loop.
#pragma once

#include <vector>

#include "common/concurrency_tuple.hpp"
#include "common/observation.hpp"
#include "common/rng.hpp"

namespace automdt {

struct EnvStep {
  std::vector<double> observation;
  StageThroughputs throughputs_mbps;  // raw per-stage rates this interval
  double reward = 0.0;                // utility U(n, t)
  bool done = false;                  // dataset finished (emulator only)
};

class Env {
 public:
  virtual ~Env() = default;

  /// Start a new episode; returns the initial observation.
  virtual std::vector<double> reset(Rng& rng) = 0;

  /// Apply a concurrency tuple for one probe interval (~1 virtual second).
  virtual EnvStep step(const ConcurrencyTuple& action) = 0;

  /// Upper clamp for per-stage thread counts (paper: [1, n_max]).
  virtual int max_threads() const = 0;

  virtual std::size_t observation_size() const { return kObservationSize; }
};

}  // namespace automdt
