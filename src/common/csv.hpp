// CSV and fixed-width table output.
//
// Every bench harness emits (a) a human-readable aligned table on stdout that
// mirrors the corresponding paper table/figure, and (b) optionally a CSV file
// so results can be re-plotted. Both come from here so formatting stays
// uniform.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace automdt {

/// A cell is either text or a number (formatted with the table's precision).
using Cell = std::variant<std::string, double, long long>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers, int precision = 2);

  Table& add_row(std::vector<Cell> cells);
  std::size_t row_count() const { return rows_.size(); }

  /// Render as an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Render as CSV (headers + rows).
  void write_csv(std::ostream& os) const;

  /// Write CSV to a file path; returns false (and logs) on I/O failure.
  bool save_csv(const std::string& path) const;

 private:
  std::string cell_text(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_;
};

/// Escape a CSV field (quotes, commas, newlines).
std::string csv_escape(const std::string& field);

}  // namespace automdt
