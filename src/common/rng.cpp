#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace automdt {
namespace {

// SplitMix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is negligible for the small ranges used here (thread counts,
  // file-size classes), and determinism matters more than perfect uniformity.
  return lo + static_cast<int>(next_u64() % range);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::log_normal(double median, double sigma) {
  return median * std::exp(sigma * normal());
}

double Rng::exponential(double rate) {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

Rng Rng::split() { return Rng(next_u64()); }

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_index) {
  // Mix the counter through SplitMix64 before combining so streams 0, 1, 2...
  // land far apart even for adjacent seeds; the Rng constructor runs the
  // combined value through SplitMix64 again to fill the xoshiro state.
  std::uint64_t c = stream_index ^ 0xD1B54A32D192ED03ULL;
  return Rng(seed ^ splitmix64(c));
}

}  // namespace automdt
