// Streaming and batch statistics helpers.
//
// Used by the probe/exploration phase (max-per-thread throughput estimates),
// the bench harnesses (mean/stddev over repeated runs), and the PPO trainer
// (reward tracking, moving averages for convergence plots).
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace automdt {

/// Welford's online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average; alpha in (0, 1], 1 == no smoothing.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.3) : alpha_(alpha) {}

  double update(double x) {
    value_ = initialized_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    initialized_ = true;
    return value_;
  }

  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  void reset() { initialized_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Fixed-capacity window of recent samples with mean/max/min queries. Used by
/// the convergence tracker ("no improvement over the last K episodes").
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity) : capacity_(capacity) {}

  void add(double x);
  std::size_t size() const { return values_.size(); }
  bool full() const { return values_.size() == capacity_; }
  double mean() const;
  double max() const;
  double min() const;
  void clear() { values_.clear(); }

 private:
  std::size_t capacity_;
  std::deque<double> values_;
};

/// Percentile of a sample set (linear interpolation); p in [0, 100].
double percentile(std::vector<double> values, double p);

}  // namespace automdt
