// Deterministic random number generation.
//
// Every stochastic component in the library (simulator scenario draws, PPO
// action sampling, network jitter, dataset generation) takes an explicit
// `Rng&` so that runs are reproducible given a seed, and so that tests can
// pin behaviour. The engine is xoshiro256** — fast, tiny state, and not
// implementation-defined the way std::normal_distribution is across
// standard libraries (we implement our own distributions on top of the raw
// stream for bit-exact reproducibility).
#pragma once

#include <cstdint>
#include <vector>

namespace automdt {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Raw 64 random bits (xoshiro256**).
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface so the engine also works with <random>.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi);

  /// Standard normal via Box–Muller (cached spare value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal such that the *median* of the distribution is `median`.
  double log_normal(double median, double sigma);

  /// Exponential with given rate (mean = 1/rate).
  double exponential(double rate);

  /// True with probability p.
  bool bernoulli(double p);

  /// Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derive an independent child stream (splits the sequence; used to hand
  /// each subsystem its own generator from one master seed).
  Rng split();

  /// Counter-based stream derivation: an independent generator for
  /// (seed, stream_index), without consuming any state from an existing Rng.
  /// Vectorized rollouts give env i the stream (seed, i), so results are
  /// reproducible for a fixed env count regardless of thread scheduling.
  static Rng stream(std::uint64_t seed, std::uint64_t stream_index);

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace automdt
