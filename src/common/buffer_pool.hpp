// Small free-list of byte buffers for hot-path chunk payloads.
//
// The transfer engine moves one std::vector<std::byte> per chunk through the
// pipeline; without reuse, every chunk costs a fresh heap allocation in the
// reader (or, on the TCP backend, the receiver-side frame decoder) and a free
// in the writer. The pool closes that loop: writers release() payloads after
// verification, readers acquire() them back. Bounded so a stalled stage can
// never hoard unbounded memory; overflow buffers are simply freed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace automdt {

class BufferPool {
 public:
  explicit BufferPool(std::size_t max_buffers) : max_buffers_(max_buffers) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Re-bound the pool (e.g. once queue capacities are known). Shrinking
  /// frees surplus pooled buffers.
  void set_max_buffers(std::size_t max_buffers) {
    std::lock_guard lock(mutex_);
    max_buffers_ = max_buffers;
    if (free_.size() > max_buffers_) free_.resize(max_buffers_);
  }

  /// A buffer resized to `size`: recycled if one is pooled, fresh otherwise.
  std::vector<std::byte> acquire(std::size_t size) {
    std::vector<std::byte> buf;
    {
      std::lock_guard lock(mutex_);
      if (!free_.empty()) {
        buf = std::move(free_.back());
        free_.pop_back();
        ++hits_;
      } else {
        ++misses_;
      }
    }
    buf.resize(size);
    return buf;
  }

  /// Return a payload for reuse. Keeps at most max_buffers; extras are freed.
  void release(std::vector<std::byte>&& buf) {
    if (buf.capacity() == 0) return;
    std::lock_guard lock(mutex_);
    if (free_.size() < max_buffers_) free_.push_back(std::move(buf));
  }

  std::size_t pooled() const {
    std::lock_guard lock(mutex_);
    return free_.size();
  }
  std::uint64_t hits() const {
    std::lock_guard lock(mutex_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard lock(mutex_);
    return misses_;
  }
  std::size_t max_buffers() const {
    std::lock_guard lock(mutex_);
    return max_buffers_;
  }

 private:
  std::size_t max_buffers_;
  mutable std::mutex mutex_;
  std::vector<std::vector<std::byte>> free_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace automdt
