// Payload buffer reuse for the hot path: a free-list of heap vectors
// (BufferPool, the original seam) and a registered-buffer arena handing out
// refcounted leases (ArenaPool/BufferLease, the io_uring zero-copy seam).
//
// BufferPool closes the allocate/free loop for the vector-payload path: the
// transfer engine moves one std::vector<std::byte> per chunk through the
// pipeline; writers release() payloads after verification, readers (or the
// TCP receiver's frame decoder) acquire() them back. Bounded so a stalled
// stage can never hoard unbounded memory; overflow buffers are simply freed.
//
// ArenaPool preallocates a fixed set of equally-sized blocks at stable
// addresses — exactly the shape io_uring's IORING_REGISTER_BUFFERS wants —
// and hands each out as a single-owner BufferLease. A lease is a move-only
// view [data, data+size) into one block; the block returns to the free list
// when the last lease on it drops. subspan() is the only way to share a
// block (the TCP receiver carves per-chunk payload views out of one recv
// block); everything else follows strict single-owner hand-off through the
// pipeline (DESIGN.md §12 has the stage-by-stage ownership rules). When the
// arena is exhausted the pool falls back to one-shot heap blocks, which are
// genuinely freed on release — so ASan can catch any use-after-release, the
// lease-lifecycle canary tests rely on it — and optional poison_on_release
// scribbles recycled arena blocks for the same bug class in plain builds.
#pragma once

#include <sys/uio.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace automdt {

class BufferPool {
 public:
  explicit BufferPool(std::size_t max_buffers) : max_buffers_(max_buffers) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Re-bound the pool (e.g. once queue capacities are known). Shrinking
  /// frees surplus pooled buffers.
  void set_max_buffers(std::size_t max_buffers) {
    std::lock_guard lock(mutex_);
    max_buffers_ = max_buffers;
    if (free_.size() > max_buffers_) free_.resize(max_buffers_);
  }

  /// A buffer resized to `size`: recycled if one is pooled, fresh otherwise.
  std::vector<std::byte> acquire(std::size_t size) {
    std::vector<std::byte> buf;
    {
      std::lock_guard lock(mutex_);
      if (!free_.empty()) {
        buf = std::move(free_.back());
        free_.pop_back();
        ++hits_;
      } else {
        ++misses_;
      }
    }
    buf.resize(size);
    return buf;
  }

  /// Return a payload for reuse. Keeps at most max_buffers; extras are freed.
  void release(std::vector<std::byte>&& buf) {
    if (buf.capacity() == 0) return;
    std::lock_guard lock(mutex_);
    if (free_.size() < max_buffers_) free_.push_back(std::move(buf));
  }

  std::size_t pooled() const {
    std::lock_guard lock(mutex_);
    return free_.size();
  }
  std::uint64_t hits() const {
    std::lock_guard lock(mutex_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard lock(mutex_);
    return misses_;
  }
  std::size_t max_buffers() const {
    std::lock_guard lock(mutex_);
    return max_buffers_;
  }

 private:
  std::size_t max_buffers_;
  mutable std::mutex mutex_;
  std::vector<std::vector<std::byte>> free_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

class ArenaPool;

namespace detail {

/// Shared control block behind every BufferLease: one per arena block
/// (embedded in the pool) or one per heap-fallback block (freed with it).
struct ArenaCtrl {
  std::atomic<std::uint32_t> refs{0};
  ArenaPool* pool = nullptr;  // null => heap-fallback block
  std::uint32_t index = 0;    // registered-buffer index within the pool
  std::byte* base = nullptr;
  std::size_t capacity = 0;
};

}  // namespace detail

/// Move-only view of a byte range inside one refcounted arena (or heap-
/// fallback) block. Default-constructed leases are null. The viewed block is
/// recycled (or freed) when the last lease on it is reset/destroyed; any
/// access after that is a bug the heap-fallback path makes ASan-visible and
/// ArenaPool's poison option makes checksum-visible.
class BufferLease {
 public:
  /// registered_index() value for blocks io_uring cannot address as fixed
  /// buffers (heap fallbacks).
  static constexpr std::uint32_t kUnregistered = 0xFFFFFFFFu;

  BufferLease() = default;
  ~BufferLease() { reset(); }

  BufferLease(BufferLease&& other) noexcept
      : ctrl_(other.ctrl_), data_(other.data_), size_(other.size_) {
    other.ctrl_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }

  BufferLease& operator=(BufferLease&& other) noexcept {
    if (this != &other) {
      reset();
      ctrl_ = other.ctrl_;
      data_ = other.data_;
      size_ = other.size_;
      other.ctrl_ = nullptr;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  BufferLease(const BufferLease&) = delete;
  BufferLease& operator=(const BufferLease&) = delete;

  bool valid() const { return ctrl_ != nullptr; }
  explicit operator bool() const { return valid(); }
  std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }

  /// Index of the underlying block in the pool's registered-iovec table
  /// (io_uring buf_index), or kUnregistered for heap-fallback blocks.
  std::uint32_t registered_index() const {
    return ctrl_ != nullptr && ctrl_->pool != nullptr ? ctrl_->index
                                                      : kUnregistered;
  }

  /// The owning arena, or nullptr for heap-fallback blocks and null leases.
  /// A registered_index() is only meaningful against the iovec table of THIS
  /// pool — the writer's storage ring checks identity before WRITE_FIXED.
  ArenaPool* pool() const { return ctrl_ != nullptr ? ctrl_->pool : nullptr; }

  /// Current refcount on the underlying block (approximate under
  /// concurrency). ref_count() == 1 on a held lease means no other view is
  /// alive — the multishot receive loop uses this to decide when a block can
  /// be handed back to the kernel's provided-buffer ring.
  std::uint32_t ref_count() const {
    return ctrl_ != nullptr ? ctrl_->refs.load(std::memory_order_acquire) : 0;
  }

  /// Narrow the view without transferring ownership away: the new lease
  /// shares the block's refcount, so the block outlives every carved view.
  /// This is the ONE sanctioned way to alias a block (receiver-side payload
  /// slicing); pipeline hand-off otherwise moves the single owner.
  BufferLease subspan(std::size_t offset, std::size_t length) const {
    BufferLease view;
    if (ctrl_ == nullptr || offset + length > size_) return view;
    ctrl_->refs.fetch_add(1, std::memory_order_relaxed);
    view.ctrl_ = ctrl_;
    view.data_ = data_ + offset;
    view.size_ = length;
    return view;
  }

  /// Resize the view in place (shrink within the block's capacity; used by
  /// whole-block leases that only filled a prefix).
  void truncate(std::size_t length) {
    if (length < size_) size_ = length;
  }

  void reset();

 private:
  friend class ArenaPool;
  detail::ArenaCtrl* ctrl_ = nullptr;
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Fixed arena of equally-sized blocks at stable addresses, handed out as
/// whole-block BufferLeases. registered_iovecs() describes every block for
/// io_uring buffer registration; blocks keep index == iovec position for the
/// life of the pool. Exhaustion falls back to one-shot heap blocks (counted)
/// so producers never block on the arena itself.
class ArenaPool {
 public:
  ArenaPool(std::size_t block_bytes, std::size_t block_count,
            bool poison_on_release = false)
      : block_bytes_(block_bytes),
        poison_(poison_on_release),
        arena_(std::make_unique<std::byte[]>(block_bytes * block_count)),
        ctrls_(std::make_unique<detail::ArenaCtrl[]>(block_count)),
        block_count_(block_count) {
    iovecs_.reserve(block_count);
    free_.reserve(block_count);
    for (std::size_t i = 0; i < block_count; ++i) {
      detail::ArenaCtrl& c = ctrls_[i];
      c.pool = this;
      c.index = static_cast<std::uint32_t>(i);
      c.base = arena_.get() + i * block_bytes;
      c.capacity = block_bytes;
      iovecs_.push_back({c.base, block_bytes_});
      free_.push_back(c.index);
    }
  }

  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  /// One whole free block as a lease (refcount 1). Falls back to a fresh
  /// heap block of the same size when the arena is exhausted.
  BufferLease acquire() {
    detail::ArenaCtrl* ctrl = nullptr;
    {
      std::lock_guard lock(mutex_);
      ++acquires_;
      if (!free_.empty()) {
        ctrl = &ctrls_[free_.back()];
        free_.pop_back();
      } else {
        ++heap_fallbacks_;
      }
    }
    if (ctrl == nullptr) {
      ctrl = new detail::ArenaCtrl;
      ctrl->base = new std::byte[block_bytes_];
      ctrl->capacity = block_bytes_;
    }
    ctrl->refs.store(1, std::memory_order_relaxed);
    BufferLease lease;
    lease.ctrl_ = ctrl;
    lease.data_ = ctrl->base;
    lease.size_ = ctrl->capacity;
    return lease;
  }

  std::size_t block_bytes() const { return block_bytes_; }
  std::size_t block_count() const { return block_count_; }
  /// Stable iovec table for IORING_REGISTER_BUFFERS; entry i is block i.
  const iovec* registered_iovecs() const { return iovecs_.data(); }

  std::uint64_t acquires() const {
    std::lock_guard lock(mutex_);
    return acquires_;
  }
  std::uint64_t heap_fallbacks() const {
    std::lock_guard lock(mutex_);
    return heap_fallbacks_;
  }
  std::size_t blocks_free() const {
    std::lock_guard lock(mutex_);
    return free_.size();
  }

 private:
  friend class BufferLease;

  void recycle(detail::ArenaCtrl* ctrl) {
    if (poison_) std::memset(ctrl->base, 0xDD, ctrl->capacity);
    std::lock_guard lock(mutex_);
    free_.push_back(ctrl->index);
  }

  const std::size_t block_bytes_;
  const bool poison_;
  std::unique_ptr<std::byte[]> arena_;
  std::unique_ptr<detail::ArenaCtrl[]> ctrls_;
  const std::size_t block_count_;
  std::vector<iovec> iovecs_;
  mutable std::mutex mutex_;
  std::vector<std::uint32_t> free_;
  std::uint64_t acquires_ = 0;
  std::uint64_t heap_fallbacks_ = 0;
};

inline void BufferLease::reset() {
  if (ctrl_ == nullptr) return;
  detail::ArenaCtrl* ctrl = ctrl_;
  ctrl_ = nullptr;
  data_ = nullptr;
  size_ = 0;
  if (ctrl->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (ctrl->pool != nullptr) {
      ctrl->pool->recycle(ctrl);
    } else {
      delete[] ctrl->base;  // heap fallback: really freed => ASan-checkable
      delete ctrl;
    }
  }
}

}  // namespace automdt
