#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace automdt {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments (# or ;) and whitespace.
    const std::size_t comment = line.find_first_of("#;");
    if (comment != std::string::npos) line.resize(comment);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos)
      throw ConfigError("config line " + std::to_string(lineno) +
                        ": expected key = value, got '" + line + "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty())
      throw ConfigError("config line " + std::to_string(lineno) +
                        ": empty key");
    cfg.values_[key] = value;
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw ConfigError("cannot open config file: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse(ss.str());
}

const std::string& Config::get_string(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) throw ConfigError("missing config key: " + key);
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  return it != values_.end() ? it->second : fallback;
}

double Config::get_double(const std::string& key) const {
  const std::string& v = get_string(key);
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0')
    throw ConfigError("config key '" + key + "': not a number: '" + v + "'");
  return out;
}

double Config::get_double(const std::string& key, double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

long long Config::get_int(const std::string& key) const {
  const std::string& v = get_string(key);
  char* end = nullptr;
  const long long out = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0')
    throw ConfigError("config key '" + key + "': not an integer: '" + v +
                      "'");
  return out;
}

long long Config::get_int(const std::string& key, long long fallback) const {
  return has(key) ? get_int(key) : fallback;
}

bool Config::get_bool(const std::string& key) const {
  const std::string v = lower(get_string(key));
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw ConfigError("config key '" + key + "': not a boolean: '" + v + "'");
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  return has(key) ? get_bool(key) : fallback;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

void Config::set(const std::string& key, double value) {
  std::ostringstream ss;
  ss << value;
  values_[key] = ss.str();
}

void Config::set(const std::string& key, long long value) {
  values_[key] = std::to_string(value);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

std::vector<std::string> Config::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    if (k.rfind(prefix, 0) == 0) out.push_back(k);
  }
  return out;
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

std::string Config::to_string() const {
  std::ostringstream ss;
  for (const auto& [k, v] : values_) ss << k << " = " << v << '\n';
  return ss.str();
}

}  // namespace automdt
