#include "optimizers/automdt_controller.hpp"

#include <cassert>

namespace automdt::optimizers {

AutoMdtController::AutoMdtController(std::shared_ptr<rl::PpoAgent> agent,
                                     bool deterministic)
    : agent_(std::move(agent)), deterministic_(deterministic), rng_(1) {
  assert(agent_ != nullptr);
}

void AutoMdtController::reset(Rng& rng) { rng_ = rng.split(); }

ConcurrencyTuple AutoMdtController::decide(const EnvStep& feedback,
                                           const ConcurrencyTuple& current) {
  (void)current;  // the policy maps state -> action directly
  return agent_->act(feedback.observation, rng_, deterministic_);
}

}  // namespace automdt::optimizers
