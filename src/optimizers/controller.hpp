// ConcurrencyController: the strategy interface every optimizer implements —
// AutoMDT's PPO production phase and all the baselines the paper evaluates
// against (Marlin, joint multivariate GD, Globus-static, monolithic).
//
// The contract mirrors a real transfer tool's control loop: once per probe
// interval the controller sees the last interval's feedback (per-stage
// throughputs, buffer observation, reward) and returns the concurrency tuple
// to apply next.
#pragma once

#include <string>

#include "common/env.hpp"

namespace automdt::optimizers {

class ConcurrencyController {
 public:
  virtual ~ConcurrencyController() = default;

  /// Prepare for a fresh transfer.
  virtual void reset(Rng& rng) { (void)rng; }

  /// Tuple to apply during the very first probe interval.
  virtual ConcurrencyTuple initial_action() const { return {1, 1, 1}; }

  /// Given the feedback from the interval that just finished (during which
  /// `current` was applied), choose the next tuple.
  virtual ConcurrencyTuple decide(const EnvStep& feedback,
                                  const ConcurrencyTuple& current) = 0;

  virtual std::string name() const = 0;
};

}  // namespace automdt::optimizers
