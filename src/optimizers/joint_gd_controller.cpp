#include "optimizers/joint_gd_controller.hpp"

#include <algorithm>
#include <cmath>

namespace automdt::optimizers {

JointGdController::JointGdController(JointGdConfig config) : config_(config) {}

void JointGdController::reset(Rng& rng) {
  (void)rng;
  phase_ = Phase::kBase;
  base_ = ConcurrencyTuple{2, 2, 2};
  base_utility_ = 0.0;
}

ConcurrencyTuple JointGdController::decide(const EnvStep& feedback,
                                           const ConcurrencyTuple& current) {
  (void)current;
  const double u = total_utility(feedback.throughputs_mbps,
                                 current, config_.utility);

  auto perturbed = [&](Stage s) {
    ConcurrencyTuple t = base_;
    t[s] = std::min(t[s] + config_.probe_delta, config_.max_threads);
    return t;
  };

  switch (phase_) {
    case Phase::kBase:
      // `u` is the utility of the base tuple; probe read next.
      base_utility_ = u;
      phase_ = Phase::kProbeRead;
      return perturbed(Stage::kRead);

    case Phase::kProbeRead:
      probe_utility_[0] = u;
      phase_ = Phase::kProbeNetwork;
      return perturbed(Stage::kNetwork);

    case Phase::kProbeNetwork:
      probe_utility_[1] = u;
      phase_ = Phase::kProbeWrite;
      return perturbed(Stage::kWrite);

    case Phase::kProbeWrite: {
      probe_utility_[2] = u;
      // Gradient estimate and simultaneous update of all three coordinates.
      for (Stage s : kAllStages) {
        const int i = static_cast<int>(s);
        const double grad =
            (probe_utility_[i] - base_utility_) / config_.probe_delta;
        int step = static_cast<int>(std::lround(config_.lr * grad));
        step = std::clamp(step, -config_.max_step, config_.max_step);
        base_[s] = std::clamp(base_[s] + step, 1, config_.max_threads);
      }
      phase_ = Phase::kBase;
      return base_;
    }
  }
  return base_;  // unreachable
}

}  // namespace automdt::optimizers
