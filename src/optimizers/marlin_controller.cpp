#include "optimizers/marlin_controller.hpp"

#include <algorithm>

namespace automdt::optimizers {

MarlinController::MarlinController(MarlinConfig config) : config_(config) {}

void MarlinController::reset(Rng& rng) {
  (void)rng;
  for (auto& st : stages_) st = StageState{};
  probes_in_window_ = 0;
  throughput_acc_ = StageThroughputs{};
}

int MarlinController::climb(StageState& st, double utility, int n) const {
  if (!st.initialized) {
    st.initialized = true;
    st.prev_utility = utility;
    return std::clamp(n + st.direction * st.step, 1, config_.max_threads);
  }

  const double improved_floor = st.prev_utility * (1.0 + config_.tolerance);
  if (utility > improved_floor) {
    // Keep going; optionally accelerate up to max_step.
    st.step = std::min(st.step + 1, config_.max_step);
  } else {
    // No improvement: reverse and fall back to cautious single steps.
    st.direction = -st.direction;
    st.step = 1;
  }
  st.prev_utility = utility;

  int next = n + st.direction * st.step;
  if (next < 1) {
    next = 1;
    st.direction = +1;
  } else if (next > config_.max_threads) {
    next = config_.max_threads;
    st.direction = -1;
  }
  return next;
}

ConcurrencyTuple MarlinController::decide(const EnvStep& feedback,
                                          const ConcurrencyTuple& current) {
  // Accumulate probes until the metrics window is full; hold the current
  // configuration meanwhile.
  for (Stage s : kAllStages)
    throughput_acc_[s] += feedback.throughputs_mbps[s];
  ++probes_in_window_;
  if (probes_in_window_ < std::max(1, config_.decision_interval))
    return current;

  ConcurrencyTuple next = current;
  for (Stage s : kAllStages) {
    const double mean_throughput =
        throughput_acc_[s] / static_cast<double>(probes_in_window_);
    const double u = stage_utility(mean_throughput, current[s],
                                   config_.utility);
    next[s] = climb(stages_[static_cast<int>(s)], u, current[s]);
  }
  probes_in_window_ = 0;
  throughput_acc_ = StageThroughputs{};
  return next;
}

}  // namespace automdt::optimizers
