// Joint multivariate gradient-descent controller — the approach Marlin tried
// first and abandoned (paper §III): optimize the total utility
// U(n_r, n_n, n_w) with finite-difference gradient ascent over all three
// variables at once.
//
// The controller cycles through a base probe plus one perturbed probe per
// coordinate (4 probe intervals per update), then applies a simultaneous
// step along the estimated gradient. Because early partial derivatives are
// dominated by buffer transients (an empty buffer makes dU/dn_r look great
// and dU/dn_n / dU/dn_w look useless), it chases read concurrency first and
// settles into the paper's described local optimum. bench_motivation measures
// exactly that.
#pragma once

#include "common/utility.hpp"
#include "optimizers/controller.hpp"

namespace automdt::optimizers {

struct JointGdConfig {
  int max_threads = 30;
  /// Finite-difference probe offset (threads).
  int probe_delta = 1;
  /// Gradient step scale: next_i = n_i + round(lr * dU/dn_i), clamped.
  double lr = 0.05;
  /// Largest per-update move per coordinate.
  int max_step = 3;
  UtilityParams utility{};
};

class JointGdController final : public ConcurrencyController {
 public:
  explicit JointGdController(JointGdConfig config = {});

  void reset(Rng& rng) override;
  ConcurrencyTuple initial_action() const override { return {2, 2, 2}; }
  ConcurrencyTuple decide(const EnvStep& feedback,
                          const ConcurrencyTuple& current) override;
  std::string name() const override { return "JointGD"; }

 private:
  enum class Phase { kBase, kProbeRead, kProbeNetwork, kProbeWrite };

  JointGdConfig config_;
  Phase phase_ = Phase::kBase;
  ConcurrencyTuple base_{2, 2, 2};
  double base_utility_ = 0.0;
  double probe_utility_[3] = {0.0, 0.0, 0.0};
};

}  // namespace automdt::optimizers
