// Marlin baseline (Arifuzzaman & Arslan, ICS'23 [3]), as characterized in the
// AutoMDT paper: "Marlin runs three independent gradient descent optimizers
// for separately estimating read, write and network concurrency values."
//
// Each stage hill-climbs its own utility U_i = t_i / k^{n_i} one thread at a
// time, reversing direction when utility drops. Because each optimizer sees
// only its own stage — and stage throughputs are coupled through the staging
// buffers (Fig. 1) — the estimates are misattributed whenever a buffer fills
// or drains, which is exactly the instability the paper ascribes to Marlin:
// slow ascent (~1 thread per probe) punctuated by noise-induced reversals.
#pragma once

#include "common/utility.hpp"
#include "optimizers/controller.hpp"

namespace automdt::optimizers {

struct MarlinConfig {
  int max_threads = 30;
  /// Largest per-probe step; Marlin is conservative (1 = classic ±1 climbing).
  int max_step = 1;
  /// Relative utility improvement below which a move counts as "no better"
  /// and triggers a direction reversal.
  double tolerance = 0.01;
  /// Probe intervals per decision. Online gradient estimation needs stable
  /// metrics: "we have to wait at least 3 to 5 seconds to get stable metrics
  /// for that configuration" (paper §IV). AutoMDT's pretrained policy acts
  /// every interval; Marlin holds each configuration for `decision_interval`
  /// probes and averages the observed utility before moving.
  int decision_interval = 3;
  UtilityParams utility{};
};

class MarlinController final : public ConcurrencyController {
 public:
  explicit MarlinController(MarlinConfig config = {});

  void reset(Rng& rng) override;
  ConcurrencyTuple initial_action() const override { return {2, 2, 2}; }
  ConcurrencyTuple decide(const EnvStep& feedback,
                          const ConcurrencyTuple& current) override;
  std::string name() const override { return "Marlin"; }

 private:
  /// One independent single-variable optimizer.
  struct StageState {
    double prev_utility = -1.0;
    int direction = +1;
    int step = 1;
    bool initialized = false;
  };

  int climb(StageState& st, double utility, int n) const;

  MarlinConfig config_;
  StageState stages_[3];
  // Probe accumulation within the current decision window.
  int probes_in_window_ = 0;
  StageThroughputs throughput_acc_{};
};

}  // namespace automdt::optimizers
