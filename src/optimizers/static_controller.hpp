// Static controllers:
//
// GlobusStaticController — models globus-url-copy with the paper's settings
// (§V-D: "we set the concurrency to 4 and parallelism to 8"): a monolithic
// tool where 4 concurrent files are read/written by 4 I/O workers and fanned
// out over 4 x 8 = 32 TCP streams, fixed for the whole transfer.
//
// FixedController — any hand-picked tuple held constant (useful as an oracle
// upper bound when set to the scenario's known optimum, and in tests).
#pragma once

#include "optimizers/controller.hpp"

namespace automdt::optimizers {

class FixedController final : public ConcurrencyController {
 public:
  FixedController(ConcurrencyTuple tuple, std::string name = "Fixed")
      : tuple_(tuple), name_(std::move(name)) {}

  ConcurrencyTuple initial_action() const override { return tuple_; }
  ConcurrencyTuple decide(const EnvStep&, const ConcurrencyTuple&) override {
    return tuple_;
  }
  std::string name() const override { return name_; }

 private:
  ConcurrencyTuple tuple_;
  std::string name_;
};

struct GlobusConfig {
  int concurrency = 4;  // concurrent files (drives I/O workers)
  int parallelism = 8;  // TCP streams per file
};

class GlobusStaticController final : public ConcurrencyController {
 public:
  explicit GlobusStaticController(GlobusConfig config = {})
      : config_(config) {}

  ConcurrencyTuple initial_action() const override { return tuple(); }
  ConcurrencyTuple decide(const EnvStep&, const ConcurrencyTuple&) override {
    return tuple();
  }
  std::string name() const override { return "Globus"; }

  ConcurrencyTuple tuple() const {
    return {config_.concurrency, config_.concurrency * config_.parallelism,
            config_.concurrency};
  }

 private:
  GlobusConfig config_;
};

}  // namespace automdt::optimizers
