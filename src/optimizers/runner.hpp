// TransferRunner: drives any ConcurrencyController against an emulated
// transfer until the dataset completes (or a wall-clock cap in virtual time),
// recording the per-second series behind every figure in the paper's
// evaluation.
#pragma once

#include "optimizers/controller.hpp"
#include "testbed/environment.hpp"
#include "testbed/recorder.hpp"

namespace automdt::telemetry {
class MetricsRegistry;
class TraceExporter;
}

namespace automdt::optimizers {

struct RunOptions {
  /// Abort the run after this much virtual time even if unfinished.
  double max_time_s = 36000.0;
  /// Optional Chrome-trace span collector: each controller interval emits a
  /// wall-clock "step"/"decide" span pair on an "optimizer" track. Not
  /// owned; must outlive the run.
  telemetry::TraceExporter* exporter = nullptr;
  /// Optional live-metrics sink: each controller interval updates
  /// transfer.{time_s,reward} and per-stage transfer.{threads,
  /// throughput_mbps}.* gauges, so a /metrics endpoint scraped mid-run sees
  /// the emulated transfer progressing. Not owned; must outlive the run.
  telemetry::MetricsRegistry* metrics = nullptr;
};

struct RunResult {
  bool completed = false;
  double completion_time_s = 0.0;       // virtual seconds (= max cap if not)
  double average_throughput_mbps = 0.0; // bytes written / elapsed
  testbed::TimeSeriesRecorder series;
};

/// Run one full transfer of the environment's dataset under `controller`.
RunResult run_transfer(testbed::EmulatedEnvironment& env,
                       ConcurrencyController& controller, Rng& rng,
                       RunOptions options = {});

}  // namespace automdt::optimizers
