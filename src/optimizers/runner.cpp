#include "optimizers/runner.hpp"

#include <optional>
#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/trace_export.hpp"

namespace automdt::optimizers {

namespace {

/// Live-metrics gauges for one run, resolved once so the step loop only does
/// relaxed stores.
struct RunGauges {
  telemetry::Gauge* time_s = nullptr;
  telemetry::Gauge* reward = nullptr;
  telemetry::Gauge* threads[3] = {};
  telemetry::Gauge* throughput[3] = {};

  explicit RunGauges(telemetry::MetricsRegistry& registry) {
    time_s = registry.gauge("transfer.time_s");
    reward = registry.gauge("transfer.reward");
    for (Stage s : kAllStages) {
      const std::string stage = stage_name(s);
      threads[static_cast<int>(s)] =
          registry.gauge("transfer.threads." + stage);
      throughput[static_cast<int>(s)] =
          registry.gauge("transfer.throughput_mbps." + stage);
    }
  }

  void update(const testbed::TimePoint& p) {
    time_s->set(p.time_s);
    reward->set(p.reward);
    for (Stage s : kAllStages) {
      threads[static_cast<int>(s)]->set(p.threads[s]);
      throughput[static_cast<int>(s)]->set(p.throughput_mbps[s]);
    }
  }
};

}  // namespace

RunResult run_transfer(testbed::EmulatedEnvironment& env,
                       ConcurrencyController& controller, Rng& rng,
                       RunOptions options) {
  RunResult result;
  std::optional<RunGauges> gauges;
  if (options.metrics != nullptr) gauges.emplace(*options.metrics);

  EnvStep last;
  last.observation = env.reset(rng);
  controller.reset(rng);

  const int trk = options.exporter
                      ? options.exporter->track("optimizer", "controller")
                      : -1;

  ConcurrencyTuple tuple = controller.initial_action();
  while (env.virtual_time_s() < options.max_time_s) {
    const std::uint64_t step_t0 =
        options.exporter ? telemetry::now_ns() : 0;
    last = env.step(tuple);
    if (options.exporter) {
      options.exporter->emit(trk, "step", step_t0,
                             telemetry::now_ns() - step_t0);
    }

    testbed::TimePoint p;
    p.time_s = env.virtual_time_s();
    p.threads = tuple;
    p.throughput_mbps = last.throughputs_mbps;
    p.reward = last.reward;
    p.sender_buffer_used = env.sender_buffer_used();
    p.receiver_buffer_used = env.receiver_buffer_used();
    result.series.add(p);
    if (gauges.has_value()) gauges->update(p);

    if (last.done) {
      result.completed = true;
      break;
    }
    const std::uint64_t decide_t0 =
        options.exporter ? telemetry::now_ns() : 0;
    tuple = controller.decide(last, tuple);
    if (options.exporter) {
      options.exporter->emit(trk, "decide", decide_t0,
                             telemetry::now_ns() - decide_t0);
    }
  }

  result.completion_time_s = env.virtual_time_s();
  result.average_throughput_mbps = env.average_throughput_mbps();
  return result;
}

}  // namespace automdt::optimizers
