#include "optimizers/runner.hpp"

namespace automdt::optimizers {

RunResult run_transfer(testbed::EmulatedEnvironment& env,
                       ConcurrencyController& controller, Rng& rng,
                       RunOptions options) {
  RunResult result;

  EnvStep last;
  last.observation = env.reset(rng);
  controller.reset(rng);

  ConcurrencyTuple tuple = controller.initial_action();
  while (env.virtual_time_s() < options.max_time_s) {
    last = env.step(tuple);

    testbed::TimePoint p;
    p.time_s = env.virtual_time_s();
    p.threads = tuple;
    p.throughput_mbps = last.throughputs_mbps;
    p.reward = last.reward;
    p.sender_buffer_used = env.sender_buffer_used();
    p.receiver_buffer_used = env.receiver_buffer_used();
    result.series.add(p);

    if (last.done) {
      result.completed = true;
      break;
    }
    tuple = controller.decide(last, tuple);
  }

  result.completion_time_s = env.virtual_time_s();
  result.average_throughput_mbps = env.average_throughput_mbps();
  return result;
}

}  // namespace automdt::optimizers
