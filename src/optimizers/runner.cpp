#include "optimizers/runner.hpp"

#include "telemetry/trace.hpp"
#include "telemetry/trace_export.hpp"

namespace automdt::optimizers {

RunResult run_transfer(testbed::EmulatedEnvironment& env,
                       ConcurrencyController& controller, Rng& rng,
                       RunOptions options) {
  RunResult result;

  EnvStep last;
  last.observation = env.reset(rng);
  controller.reset(rng);

  const int trk = options.exporter
                      ? options.exporter->track("optimizer", "controller")
                      : -1;

  ConcurrencyTuple tuple = controller.initial_action();
  while (env.virtual_time_s() < options.max_time_s) {
    const std::uint64_t step_t0 =
        options.exporter ? telemetry::now_ns() : 0;
    last = env.step(tuple);
    if (options.exporter) {
      options.exporter->emit(trk, "step", step_t0,
                             telemetry::now_ns() - step_t0);
    }

    testbed::TimePoint p;
    p.time_s = env.virtual_time_s();
    p.threads = tuple;
    p.throughput_mbps = last.throughputs_mbps;
    p.reward = last.reward;
    p.sender_buffer_used = env.sender_buffer_used();
    p.receiver_buffer_used = env.receiver_buffer_used();
    result.series.add(p);

    if (last.done) {
      result.completed = true;
      break;
    }
    const std::uint64_t decide_t0 =
        options.exporter ? telemetry::now_ns() : 0;
    tuple = controller.decide(last, tuple);
    if (options.exporter) {
      options.exporter->emit(trk, "decide", decide_t0,
                             telemetry::now_ns() - decide_t0);
    }
  }

  result.completion_time_s = env.virtual_time_s();
  result.average_throughput_mbps = env.average_throughput_mbps();
  return result;
}

}  // namespace automdt::optimizers
