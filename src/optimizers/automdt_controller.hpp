// AutoMDT production-phase controller (paper §IV-F): load the best offline
// checkpoint and re-enter the PPO interaction loop against the real transfer
// — sample from the policy Gaussian, round, clamp to [1, n_max], apply.
//
// The observation must be built with the same normalization the agent was
// trained with; the runner/core pipeline takes care of aligning the
// environment's ObservationScale with the training scale.
#pragma once

#include <memory>

#include "optimizers/controller.hpp"
#include "rl/ppo_agent.hpp"

namespace automdt::optimizers {

class AutoMdtController final : public ConcurrencyController {
 public:
  /// Takes shared ownership of a trained agent.
  explicit AutoMdtController(std::shared_ptr<rl::PpoAgent> agent,
                             bool deterministic = false);

  void reset(Rng& rng) override;
  ConcurrencyTuple decide(const EnvStep& feedback,
                          const ConcurrencyTuple& current) override;
  std::string name() const override { return "AutoMDT"; }

  rl::PpoAgent& agent() { return *agent_; }

 private:
  std::shared_ptr<rl::PpoAgent> agent_;
  bool deterministic_;
  Rng rng_;
};

}  // namespace automdt::optimizers
