// Monolithic adaptive controller: one concurrency knob shared by all three
// stages ("current data transfer tools use socket connection threads for all
// read, write, and transfer operations", §III). It hill-climbs total utility
// with n_r = n_n = n_w = m, so the slowest stage forces over-subscription of
// the others — the behaviour the modular architecture exists to avoid.
#pragma once

#include "common/utility.hpp"
#include "optimizers/controller.hpp"

namespace automdt::optimizers {

struct MonolithicConfig {
  int max_threads = 30;
  double tolerance = 0.01;
  /// Probe intervals per decision (same stable-metrics requirement as every
  /// online optimizer; see MarlinConfig::decision_interval).
  int decision_interval = 3;
  UtilityParams utility{};
};

class MonolithicController final : public ConcurrencyController {
 public:
  explicit MonolithicController(MonolithicConfig config = {})
      : config_(config) {}

  void reset(Rng& rng) override {
    (void)rng;
    level_ = 2;
    direction_ = +1;
    prev_utility_ = -1.0;
    initialized_ = false;
    probes_in_window_ = 0;
    utility_acc_ = 0.0;
  }

  ConcurrencyTuple initial_action() const override { return {2, 2, 2}; }
  ConcurrencyTuple decide(const EnvStep& feedback,
                          const ConcurrencyTuple& current) override;
  std::string name() const override { return "Monolithic"; }

 private:
  MonolithicConfig config_;
  int level_ = 2;
  int direction_ = +1;
  double prev_utility_ = -1.0;
  bool initialized_ = false;
  int probes_in_window_ = 0;
  double utility_acc_ = 0.0;
};

}  // namespace automdt::optimizers
