#include "optimizers/monolithic_controller.hpp"

#include <algorithm>

namespace automdt::optimizers {

ConcurrencyTuple MonolithicController::decide(const EnvStep& feedback,
                                              const ConcurrencyTuple& current) {
  utility_acc_ +=
      total_utility(feedback.throughputs_mbps, current, config_.utility);
  ++probes_in_window_;
  if (probes_in_window_ < std::max(1, config_.decision_interval))
    return current;
  const double u = utility_acc_ / static_cast<double>(probes_in_window_);
  probes_in_window_ = 0;
  utility_acc_ = 0.0;

  if (!initialized_) {
    initialized_ = true;
  } else if (u <= prev_utility_ * (1.0 + config_.tolerance)) {
    direction_ = -direction_;
  }
  prev_utility_ = u;

  level_ = std::clamp(level_ + direction_, 1, config_.max_threads);
  if (level_ == 1) direction_ = +1;
  if (level_ == config_.max_threads) direction_ = -1;
  return {level_, level_, level_};
}

}  // namespace automdt::optimizers
