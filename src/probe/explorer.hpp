// Exploration / logging phase (paper §IV-A): "We begin with a 10-minute
// 'random-threads' run. Every second we record the current thread counts and
// the corresponding per-stage throughputs."
//
// The explorer drives any Env with random concurrency tuples, records one
// sample per probe interval, and hands back the log. In the paper this runs
// against the production transfer for 10 wall minutes; against our
// virtual-time environments it completes in milliseconds.
#pragma once

#include "common/env.hpp"
#include "probe/probe_log.hpp"

namespace automdt::probe {

struct ExplorerOptions {
  /// Total exploration steps (paper: 600 one-second samples = 10 minutes).
  int duration_steps = 600;

  /// Redraw the random thread tuple every this many steps. Holding a tuple
  /// for a few seconds lets the pipeline reach a quasi-steady throughput so
  /// that max T_i / n_i is a clean per-thread estimate.
  int hold_steps = 5;

  /// Discard the first sample after each redraw (buffers still adjusting).
  bool skip_transient = true;
};

class Explorer {
 public:
  explicit Explorer(ExplorerOptions options = {}) : options_(options) {}

  /// Run the random-threads exploration against `env` and return the log.
  ProbeLog run(Env& env, Rng& rng) const;

  const ExplorerOptions& options() const { return options_; }

 private:
  ExplorerOptions options_;
};

}  // namespace automdt::probe
