#include "probe/probe_log.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/recorder.hpp"

namespace automdt::probe {

void ProbeLog::write_csv(std::ostream& os) const {
  // Replay the log through the shared telemetry exporter: gauges registered
  // in the legacy column order, one sample_at() per probe row. Recorder CSV
  // prints doubles with the same default ostream formatting the original
  // formatter used, so the output is byte-identical (see write_csv_legacy).
  if (samples_.empty()) {
    // Recorder columns come from recorded rows; with none, only the legacy
    // formatter knows the schema.
    write_csv_legacy(os);
    return;
  }
  telemetry::MetricsRegistry registry;
  telemetry::Gauge* n_read = registry.gauge("n_read");
  telemetry::Gauge* n_network = registry.gauge("n_network");
  telemetry::Gauge* n_write = registry.gauge("n_write");
  telemetry::Gauge* t_read = registry.gauge("t_read_mbps");
  telemetry::Gauge* t_network = registry.gauge("t_network_mbps");
  telemetry::Gauge* t_write = registry.gauge("t_write_mbps");
  telemetry::RecorderConfig config;
  config.capacity = std::max<std::size_t>(samples_.size(), 1);
  telemetry::TimeSeriesRecorder recorder(registry, config);
  for (const auto& s : samples_) {
    n_read->set(s.threads.read);
    n_network->set(s.threads.network);
    n_write->set(s.threads.write);
    t_read->set(s.throughput_mbps.read);
    t_network->set(s.throughput_mbps.network);
    t_write->set(s.throughput_mbps.write);
    recorder.sample_at(s.time_s);
  }
  recorder.write_csv(os);
}

void ProbeLog::write_csv_legacy(std::ostream& os) const {
  os << "time_s,n_read,n_network,n_write,t_read_mbps,t_network_mbps,"
        "t_write_mbps\n";
  for (const auto& s : samples_) {
    os << s.time_s << ',' << s.threads.read << ',' << s.threads.network << ','
       << s.threads.write << ',' << s.throughput_mbps.read << ','
       << s.throughput_mbps.network << ',' << s.throughput_mbps.write << '\n';
  }
}

LinkEstimates LinkEstimates::from_log(const ProbeLog& log,
                                      const UtilityParams& utility) {
  if (log.empty())
    throw std::invalid_argument("LinkEstimates: empty probe log");

  LinkEstimates e;
  for (const auto& s : log.samples()) {
    for (Stage st : kAllStages) {
      if (s.threads[st] <= 0)
        throw std::invalid_argument(
            "LinkEstimates: non-positive thread count in probe log");
      e.bandwidth_mbps[st] = std::max(e.bandwidth_mbps[st],
                                      s.throughput_mbps[st]);
      e.tpt_mbps[st] =
          std::max(e.tpt_mbps[st], s.throughput_mbps[st] / s.threads[st]);
    }
  }
  e.bottleneck_mbps = e.bandwidth_mbps.min_component();
  for (Stage st : kAllStages) {
    e.ideal_threads[st] =
        e.tpt_mbps[st] > 0.0 ? e.bottleneck_mbps / e.tpt_mbps[st] : 1.0;
  }
  e.r_max = theoretical_max_reward(e.bottleneck_mbps, e.ideal_threads, utility);
  return e;
}

ConcurrencyTuple LinkEstimates::ideal_threads_rounded() const {
  auto up = [](double v) { return std::max(1, static_cast<int>(std::ceil(v))); };
  return {up(ideal_threads.read), up(ideal_threads.network),
          up(ideal_threads.write)};
}

std::ostream& operator<<(std::ostream& os, const LinkEstimates& e) {
  os << "LinkEstimates{B=(" << e.bandwidth_mbps.read << ", "
     << e.bandwidth_mbps.network << ", " << e.bandwidth_mbps.write
     << ") Mbps, TPT=(" << e.tpt_mbps.read << ", " << e.tpt_mbps.network
     << ", " << e.tpt_mbps.write << ") Mbps, b=" << e.bottleneck_mbps
     << " Mbps, n*=(" << e.ideal_threads.read << ", "
     << e.ideal_threads.network << ", " << e.ideal_threads.write
     << "), R_max=" << e.r_max << "}";
  return os;
}

}  // namespace automdt::probe
