#include "probe/explorer.hpp"

namespace automdt::probe {

ProbeLog Explorer::run(Env& env, Rng& rng) const {
  ProbeLog log;
  env.reset(rng);
  const int n_max = env.max_threads();

  ConcurrencyTuple tuple{1, 1, 1};
  for (int step = 0; step < options_.duration_steps; ++step) {
    const bool redraw = step % options_.hold_steps == 0;
    if (redraw) {
      tuple = ConcurrencyTuple{rng.uniform_int(1, n_max),
                               rng.uniform_int(1, n_max),
                               rng.uniform_int(1, n_max)};
    }
    const EnvStep out = env.step(tuple);
    if (redraw && options_.skip_transient) continue;
    log.add(ProbeSample{static_cast<double>(step), tuple,
                        out.throughputs_mbps});
  }
  return log;
}

}  // namespace automdt::probe
