#include "probe/scenario_factory.hpp"

namespace automdt::probe {

sim::SimScenario make_scenario(const LinkEstimates& estimates,
                               const BufferSpec& buffers, int max_threads,
                               const UtilityParams& utility) {
  sim::SimScenario s;
  s.sender_capacity = buffers.sender_capacity_bytes;
  s.receiver_capacity = buffers.receiver_capacity_bytes;
  s.tpt_mbps = estimates.tpt_mbps;
  s.bandwidth_mbps = estimates.bandwidth_mbps;
  s.max_threads = max_threads;
  s.utility = utility;
  return s;
}

}  // namespace automdt::probe
