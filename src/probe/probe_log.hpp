// Probe log: the per-second record the exploration phase (§IV-A) keeps of
// thread counts and achieved stage throughputs, plus the derived link
// estimates (B_i, TPT_i, bottleneck b, ideal thread counts n_i*, R_max).
#pragma once

#include <cstddef>
#include <ostream>
#include <vector>

#include "common/concurrency_tuple.hpp"
#include "common/utility.hpp"

namespace automdt::probe {

struct ProbeSample {
  double time_s = 0.0;
  ConcurrencyTuple threads;
  StageThroughputs throughput_mbps;
};

class ProbeLog {
 public:
  void add(ProbeSample s) { samples_.push_back(s); }
  const std::vector<ProbeSample>& samples() const { return samples_; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  void clear() { samples_.clear(); }

  /// CSV export with the long-standing probe schema
  /// (`time_s,n_read,n_network,n_write,t_read_mbps,t_network_mbps,
  /// t_write_mbps`). Since the telemetry subsystem landed this routes
  /// through a TimeSeriesRecorder — the log is replayed into a throwaway
  /// registry whose gauges are registered in exactly the legacy column
  /// order — so probe logs, bench output, and monitor dumps share one
  /// exporter. Byte-identical to write_csv_legacy().
  void write_csv(std::ostream& os) const;

  /// The original hand-rolled formatter, kept as the compatibility oracle
  /// (a test asserts write_csv() output is identical).
  void write_csv_legacy(std::ostream& os) const;

 private:
  std::vector<ProbeSample> samples_;
};

/// Derived quantities from the exploration log (§IV-A):
///   B_i   = max T_i                  (stage bandwidth, Mbps)
///   TPT_i = max T_i / n_i            (per-thread throughput, Mbps)
///   b     = min(B_r, B_n, B_w)       (end-to-end bottleneck)
///   n_i*  = b / TPT_i                (ideal thread counts)
///   R_max = b * sum_i k^{-n_i*}      (PPO convergence target)
struct LinkEstimates {
  StageTriple bandwidth_mbps{};
  StageTriple tpt_mbps{};
  double bottleneck_mbps = 0.0;
  StageTriple ideal_threads{};
  double r_max = 0.0;

  /// Compute all estimates from a log. Requires a non-empty log with
  /// positive thread counts; throws std::invalid_argument otherwise.
  static LinkEstimates from_log(const ProbeLog& log,
                                const UtilityParams& utility = {});

  /// Ideal thread counts rounded up to integers (what the paper's figures
  /// report, e.g. "optimal TCP stream levels ... are 13, 7, and 5").
  ConcurrencyTuple ideal_threads_rounded() const;
};

std::ostream& operator<<(std::ostream& os, const LinkEstimates& e);

}  // namespace automdt::probe
