// Bridge from measured link estimates to a training-simulator scenario: the
// paper initializes the offline simulator "with the buffer capacities at both
// ends, throughput per thread, bandwidth, and current concurrency values"
// (§IV-C), all of which come from the exploration phase plus a buffer-size
// system call on each DTN.
#pragma once

#include "probe/probe_log.hpp"
#include "sim/scenario.hpp"

namespace automdt::probe {

struct BufferSpec {
  double sender_capacity_bytes = 8.0 * kGiB;
  double receiver_capacity_bytes = 8.0 * kGiB;
};

/// Build a simulator scenario from exploration estimates.
sim::SimScenario make_scenario(const LinkEstimates& estimates,
                               const BufferSpec& buffers,
                               int max_threads = 30,
                               const UtilityParams& utility = {});

}  // namespace automdt::probe
