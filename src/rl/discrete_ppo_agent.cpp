#include "rl/discrete_ppo_agent.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/stats.hpp"

namespace automdt::rl {
namespace {

ConcurrencyTuple indices_to_tuple(const std::array<int, 3>& idx,
                                  int max_threads) {
  // Class c encodes thread count c + 1.
  ConcurrencyTuple t{idx[0] + 1, idx[1] + 1, idx[2] + 1};
  return t.clamped(1, max_threads);
}

}  // namespace

DiscretePpoAgent::DiscretePpoAgent(std::size_t state_dim, int max_threads,
                                   PpoConfig config)
    : config_(config), max_threads_(max_threads), rng_(config.seed) {
  Rng init_rng = rng_.split();
  policy_ = std::make_unique<DiscretePolicyNetwork>(state_dim, max_threads,
                                                    config_, init_rng);
  value_ = std::make_unique<ValueNetwork>(state_dim, config_, init_rng);

  std::vector<nn::Parameter*> params = policy_->parameters();
  for (nn::Parameter* p : value_->parameters()) params.push_back(p);
  nn::AdamConfig adam;
  adam.lr = config_.lr;
  adam.max_grad_norm = config_.max_grad_norm;
  optimizer_ = std::make_unique<nn::Adam>(std::move(params), adam);
}

TrainResult DiscretePpoAgent::train(Env& env, double r_max,
                                    const EpisodeCallback& on_episode) {
  const auto t0 = std::chrono::steady_clock::now();
  TrainResult result;
  result.r_max = r_max;
  result.episode_rewards.reserve(
      static_cast<std::size_t>(config_.max_episodes));

  RolloutMemory memory;
  double best_reward = -1e300;
  int stagnant = 0;
  SlidingWindow reward_window(
      static_cast<std::size_t>(std::max(1, config_.best_window)));

  const int batch = std::max(1, config_.episodes_per_batch);
  for (int episode = 0; episode < config_.max_episodes; ++episode) {
    std::vector<double> state = env.reset(rng_);
    double reward_sum = 0.0;
    int steps = 0;

    for (int m = 0; m < config_.steps_per_episode; ++m) {
      const nn::MultiCategorical dist = policy_->forward_one(state);
      const auto sampled = dist.sample(rng_);  // [head][row]
      const std::array<int, 3> idx = {sampled[0][0], sampled[1][0],
                                      sampled[2][0]};
      const double log_prob =
          dist.log_prob({{idx[0]}, {idx[1]}, {idx[2]}}).value()(0, 0);
      const ConcurrencyTuple tuple = indices_to_tuple(idx, max_threads_);

      const EnvStep out = env.step(tuple);
      const double reward = out.reward / r_max;
      memory.add_discrete(state, idx, reward, log_prob);
      reward_sum += reward;
      ++steps;
      state = out.observation;
      if (out.done) break;
    }
    memory.end_episode();

    if ((episode + 1) % batch == 0) {
      update_networks(memory);
      memory.clear();
    }

    const double episode_reward =
        steps > 0 ? reward_sum / static_cast<double>(steps) : 0.0;
    result.episode_rewards.push_back(episode_reward);
    ++result.episodes_run;

    reward_window.add(episode_reward);
    const double smoothed = reward_window.mean();
    if (smoothed > best_reward) {
      best_reward = smoothed;
      stagnant = 0;
    } else {
      ++stagnant;
    }
    if (result.convergence_episode < 0 &&
        best_reward >= config_.convergence_fraction) {
      result.convergence_episode = episode;
    }
    if (best_reward >= config_.convergence_fraction &&
        stagnant >= config_.stagnation_episodes) {
      result.converged = true;
      break;
    }
    if (on_episode && !on_episode(episode, episode_reward)) break;
  }

  result.best_reward = best_reward;
  result.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

void DiscretePpoAgent::update_networks(const RolloutMemory& memory) {
  if (memory.empty()) return;

  const nn::Tensor states = nn::Tensor::constant(memory.states_matrix());
  const auto action_indices = memory.action_indices_per_head();
  const nn::Tensor old_log_probs =
      nn::Tensor::constant(memory.log_probs_column());
  const nn::Matrix returns = memory.discounted_returns(config_.gamma);
  const nn::Tensor returns_t = nn::Tensor::constant(returns);

  for (int epoch = 0; epoch < config_.update_epochs; ++epoch) {
    const nn::MultiCategorical dist = policy_->forward(states);
    const nn::Tensor new_log_probs = dist.log_prob(action_indices);
    const nn::Tensor values = value_->forward(states);

    nn::Matrix adv = returns;
    adv -= values.value();
    if (config_.normalize_advantages && adv.size() > 1) {
      const double mean = adv.mean();
      double var = 0.0;
      for (double v : adv.data()) var += (v - mean) * (v - mean);
      const double std =
          std::sqrt(var / static_cast<double>(adv.size())) + 1e-8;
      for (double& v : adv.data()) v = (v - mean) / std;
    }
    const nn::Tensor adv_t = nn::Tensor::constant(adv);

    const nn::Tensor ratio = exp_op(sub(new_log_probs, old_log_probs));
    const nn::Tensor surr1 = mul(ratio, adv_t);
    const nn::Tensor surr2 =
        mul(clamp(ratio, 1.0 - config_.clip_epsilon, 1.0 + config_.clip_epsilon),
            adv_t);
    const nn::Tensor actor_loss = neg(mean(min_ew(surr1, surr2)));
    const nn::Tensor critic_loss =
        scale(mean(square(sub(returns_t, values))), 0.5);
    const nn::Tensor entropy = dist.entropy();
    const nn::Tensor loss =
        add(actor_loss, sub(scale(critic_loss, config_.critic_coef),
                            scale(entropy, config_.entropy_coef)));

    optimizer_->zero_grad();
    loss.backward();
    optimizer_->step();
  }
}

ConcurrencyTuple DiscretePpoAgent::act(const std::vector<double>& state,
                                       Rng& rng, bool deterministic) const {
  const nn::MultiCategorical dist = policy_->forward_one(state);
  const auto idx = deterministic ? dist.mode() : dist.sample(rng);
  return indices_to_tuple({idx[0][0], idx[1][0], idx[2][0]}, max_threads_);
}

}  // namespace automdt::rl
