// The AutoMDT PPO agent: offline training (Algorithm 2) and production-phase
// action selection (§IV-F).
//
// Rewards are normalized by R_max inside the trainer so the loss scale is
// link-independent; the convergence criterion becomes "best mean-per-step
// episode reward >= convergence_fraction (0.9)" followed by
// stagnation_episodes with no improvement — exactly the paper's criterion in
// normalized units.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/env.hpp"
#include "nn/adam.hpp"
#include "nn/serialize.hpp"
#include "rl/networks.hpp"
#include "rl/ppo_config.hpp"
#include "rl/rollout.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"

namespace automdt::telemetry {
class TraceExporter;
}

namespace automdt::rl {

struct TrainResult {
  bool converged = false;
  int episodes_run = 0;
  /// First episode whose best reward crossed convergence_fraction * R_max
  /// (-1 if never crossed).
  int convergence_episode = -1;
  double best_reward = 0.0;  // normalized (fraction of R_max)
  double r_max = 0.0;        // the target used for normalization
  std::vector<double> episode_rewards;  // normalized mean-per-step rewards
  double wall_time_s = 0.0;
};

/// Observer invoked after every episode (for live plots / bench recording).
/// Return false to request an early stop.
using EpisodeCallback =
    std::function<bool(int episode, double normalized_reward)>;

class PpoAgent {
 public:
  PpoAgent(std::size_t state_dim, int max_threads, PpoConfig config = {});

  /// Offline training against `env` (Algorithm 2). `r_max` is the theoretical
  /// maximum per-step reward from the exploration phase; rewards are divided
  /// by it. On return the agent holds the *best* checkpoint seen (not the
  /// final weights), matching the paper's "save the best policy".
  TrainResult train(Env& env, double r_max,
                    const EpisodeCallback& on_episode = nullptr);

  /// Vectorized offline training: every round collects envs.size() episodes
  /// concurrently (batched forwards, env steps fanned over the thread pool)
  /// and runs the same Algorithm 2 bookkeeping over them in env order.
  /// Results depend only on (config.seed, envs.size()) — identical for any
  /// PpoConfig::num_threads, which is what the determinism tests pin.
  TrainResult train(VecEnv& envs, double r_max,
                    const EpisodeCallback& on_episode = nullptr);

  /// Production-phase action (§IV-F): sample from the Gaussian (or take the
  /// mean when `deterministic`), round to integers, clamp to [1, n_max].
  ConcurrencyTuple act(const std::vector<double>& state, Rng& rng,
                       bool deterministic = false) const;

  /// Continue training online from the current weights (§V-C fine-tuning).
  TrainResult fine_tune(Env& env, double r_max, int episodes,
                        const EpisodeCallback& on_episode = nullptr);

  /// Attach a telemetry sink: every network update publishes diagnostic
  /// gauges (ppo.approx_kl, ppo.clip_fraction, ppo.entropy,
  /// ppo.episode_reward, ppo.updates) into `registry`, and — if `recorder`
  /// is non-null — takes one recorder sample per update, stamped with the
  /// episode index (virtual time), yielding a per-update training series
  /// exportable as CSV/JSON. Both pointers must outlive the agent; pass
  /// nullptrs to detach.
  void set_telemetry(telemetry::MetricsRegistry* registry,
                     telemetry::TimeSeriesRecorder* recorder = nullptr);

  /// Attach a Chrome-trace span collector: each training phase (rollout
  /// collection, GAE/returns computation, the PPO epoch loop) emits one span
  /// per occurrence onto "trainer" tracks, time-correlated with any engine
  /// chunk spans sharing the exporter. Must outlive the agent; nullptr
  /// detaches.
  void set_trace_exporter(telemetry::TraceExporter* exporter);

  nn::StateDict state_dict();
  void load_state_dict(const nn::StateDict& state);

  PolicyNetwork& policy() { return *policy_; }
  ValueNetwork& value() { return *value_; }
  const PpoConfig& config() const { return config_; }
  int max_threads() const { return max_threads_; }

 private:
  TrainResult run_training(Env& env, double r_max, int max_episodes,
                           bool track_convergence,
                           const EpisodeCallback& on_episode);
  TrainResult run_training_vec(VecEnv& envs, double r_max, int max_episodes,
                               bool track_convergence,
                               const EpisodeCallback& on_episode);
  void update_networks(const RolloutMemory& memory);

  PpoConfig config_;
  int max_threads_;
  Rng rng_;
  std::unique_ptr<PolicyNetwork> policy_;
  std::unique_ptr<ValueNetwork> value_;
  std::unique_ptr<nn::Adam> optimizer_;

  // Optional telemetry sink (set_telemetry); null = no instrumentation.
  telemetry::TimeSeriesRecorder* recorder_ = nullptr;
  // Optional span collector (set_trace_exporter); null = no spans.
  telemetry::TraceExporter* exporter_ = nullptr;
  int trk_rollout_ = -1;
  int trk_update_ = -1;
  telemetry::Gauge* g_approx_kl_ = nullptr;
  telemetry::Gauge* g_clip_fraction_ = nullptr;
  telemetry::Gauge* g_entropy_ = nullptr;
  telemetry::Gauge* g_episode_reward_ = nullptr;
  telemetry::Counter* c_updates_ = nullptr;
};

// action_to_tuple (round-and-clamp a raw action row) lives in rollout.hpp,
// shared with the vectorized collector.

}  // namespace automdt::rl
