#include "rl/networks.hpp"

namespace automdt::rl {

nn::Tensor state_row(const std::vector<double>& state) {
  return nn::Tensor::constant(nn::Matrix::row(state));
}

PolicyNetwork::PolicyNetwork(std::size_t state_dim, std::size_t action_dim,
                             const PpoConfig& config, Rng& rng)
    : action_dim_(action_dim),
      log_std_min_(config.log_std_min),
      log_std_max_(config.log_std_max) {
  trunk_ = std::make_unique<nn::ResidualMlp>(state_dim, config.hidden_dim,
                                             config.policy_blocks,
                                             nn::Activation::kRelu, rng,
                                             "policy.trunk");
  // Small output gain keeps the initial action distribution centered and
  // lets the clamped log-std drive early exploration.
  mean_head_ = std::make_unique<nn::Linear>(config.hidden_dim, action_dim, rng,
                                            "policy.mean_head", 0.1);
  register_child("", *trunk_);
  register_child("", *mean_head_);
  log_std_ = register_parameter(
      "policy.log_std",
      nn::Matrix(1, action_dim, config.log_std_init));
}

nn::DiagonalGaussian PolicyNetwork::forward(const nn::Tensor& states) const {
  // "The output of the residual blocks is processed by a tanh function before
  // being fed into a linear layer to compute the mean of the action
  // distribution."
  nn::Tensor h = tanh_op(trunk_->forward(states));
  nn::Tensor mean = mean_head_->forward(h);
  // "we clamp the trainable log-standard-deviation parameter to a reasonable
  // range and exponentiate it to produce the standard deviation."
  nn::Tensor log_std = clamp(log_std_->tensor(), log_std_min_, log_std_max_);
  return nn::DiagonalGaussian(std::move(mean), std::move(log_std));
}

nn::DiagonalGaussian PolicyNetwork::forward_one(
    const std::vector<double>& state) const {
  return forward(state_row(state));
}

void PolicyNetwork::set_mean_bias(double v) {
  for (nn::Parameter* p : parameters()) {
    if (p->name() == "policy.mean_head.bias") {
      p->mutable_value().fill(v);
      return;
    }
  }
}

ValueNetwork::ValueNetwork(std::size_t state_dim, const PpoConfig& config,
                           Rng& rng) {
  trunk_ = std::make_unique<nn::ResidualMlp>(state_dim, config.hidden_dim,
                                             config.value_blocks,
                                             nn::Activation::kTanh, rng,
                                             "value.trunk");
  head_ = std::make_unique<nn::Linear>(config.hidden_dim, 1, rng,
                                       "value.head", 1.0);
  register_child("", *trunk_);
  register_child("", *head_);
}

nn::Tensor ValueNetwork::forward(const nn::Tensor& states) const {
  return head_->forward(trunk_->forward(states));
}

double ValueNetwork::value_of(const std::vector<double>& state) const {
  return forward(state_row(state)).value()(0, 0);
}

DiscretePolicyNetwork::DiscretePolicyNetwork(std::size_t state_dim,
                                             int classes_per_head,
                                             const PpoConfig& config, Rng& rng)
    : classes_(classes_per_head) {
  trunk_ = std::make_unique<nn::ResidualMlp>(state_dim, config.hidden_dim,
                                             config.policy_blocks,
                                             nn::Activation::kRelu, rng,
                                             "dpolicy.trunk");
  register_child("", *trunk_);
  const char* names[3] = {"dpolicy.head_read", "dpolicy.head_network",
                          "dpolicy.head_write"};
  for (int h = 0; h < 3; ++h) {
    heads_.push_back(std::make_unique<nn::Linear>(
        config.hidden_dim, static_cast<std::size_t>(classes_), rng, names[h],
        0.1));
    register_child("", *heads_.back());
  }
}

nn::MultiCategorical DiscretePolicyNetwork::forward(
    const nn::Tensor& states) const {
  nn::Tensor h = tanh_op(trunk_->forward(states));
  std::vector<nn::Tensor> logits;
  logits.reserve(heads_.size());
  for (const auto& head : heads_) logits.push_back(head->forward(h));
  return nn::MultiCategorical(std::move(logits));
}

nn::MultiCategorical DiscretePolicyNetwork::forward_one(
    const std::vector<double>& state) const {
  return forward(state_row(state));
}

}  // namespace automdt::rl
