#include "rl/rollout.hpp"

#include <cassert>

namespace automdt::rl {

void RolloutMemory::clear() {
  states_.clear();
  actions_.clear();
  action_indices_.clear();
  rewards_.clear();
  log_probs_.clear();
  boundaries_.clear();
}

void RolloutMemory::add(std::vector<double> state, std::array<double, 3> action,
                        double reward, double log_prob) {
  states_.push_back(std::move(state));
  actions_.push_back(action);
  rewards_.push_back(reward);
  log_probs_.push_back(log_prob);
}

void RolloutMemory::add_discrete(std::vector<double> state,
                                 std::array<int, 3> indices, double reward,
                                 double log_prob) {
  states_.push_back(std::move(state));
  action_indices_.push_back(indices);
  rewards_.push_back(reward);
  log_probs_.push_back(log_prob);
}

nn::Matrix RolloutMemory::states_matrix() const {
  assert(!states_.empty());
  const std::size_t dim = states_.front().size();
  nn::Matrix m(states_.size(), dim);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    assert(states_[i].size() == dim);
    for (std::size_t j = 0; j < dim; ++j) m(i, j) = states_[i][j];
  }
  return m;
}

nn::Matrix RolloutMemory::actions_matrix() const {
  nn::Matrix m(actions_.size(), 3);
  for (std::size_t i = 0; i < actions_.size(); ++i)
    for (std::size_t j = 0; j < 3; ++j) m(i, j) = actions_[i][j];
  return m;
}

nn::Matrix RolloutMemory::actions_matrix_1d() const {
  nn::Matrix m(actions_.size(), 1);
  for (std::size_t i = 0; i < actions_.size(); ++i) m(i, 0) = actions_[i][0];
  return m;
}

std::vector<std::vector<int>> RolloutMemory::action_indices_per_head() const {
  std::vector<std::vector<int>> heads(3);
  for (auto& h : heads) h.reserve(action_indices_.size());
  for (const auto& idx : action_indices_)
    for (std::size_t h = 0; h < 3; ++h) heads[h].push_back(idx[h]);
  return heads;
}

nn::Matrix RolloutMemory::log_probs_column() const {
  nn::Matrix m(log_probs_.size(), 1);
  for (std::size_t i = 0; i < log_probs_.size(); ++i) m(i, 0) = log_probs_[i];
  return m;
}

nn::Matrix RolloutMemory::discounted_returns(double gamma) const {
  nn::Matrix g(rewards_.size(), 1);
  double acc = 0.0;
  std::size_t boundary_idx = boundaries_.size();
  for (std::size_t i = rewards_.size(); i-- > 0;) {
    // Restart accumulation when crossing into an earlier episode.
    while (boundary_idx > 0 && boundaries_[boundary_idx - 1] == i + 1) {
      acc = 0.0;
      --boundary_idx;
    }
    acc = rewards_[i] + gamma * acc;
    g(i, 0) = acc;
  }
  return g;
}

double RolloutMemory::mean_reward() const {
  if (rewards_.empty()) return 0.0;
  double s = 0.0;
  for (double r : rewards_) s += r;
  return s / static_cast<double>(rewards_.size());
}

double RolloutMemory::last_episode_mean_reward() const {
  if (rewards_.empty()) return 0.0;
  // Start of the most recent episode: the last boundary at or before the end.
  std::size_t start = 0;
  for (std::size_t b : boundaries_) {
    if (b < rewards_.size()) start = b;
  }
  double s = 0.0;
  for (std::size_t i = start; i < rewards_.size(); ++i) s += rewards_[i];
  return s / static_cast<double>(rewards_.size() - start);
}

}  // namespace automdt::rl
