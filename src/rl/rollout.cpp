#include "rl/rollout.hpp"

#include <cassert>
#include <cmath>

#include "rl/networks.hpp"

namespace automdt::rl {

void RolloutMemory::clear() {
  states_.clear();
  actions_.clear();
  action_indices_.clear();
  rewards_.clear();
  log_probs_.clear();
  boundaries_.clear();
}

void RolloutMemory::add(std::vector<double> state, std::array<double, 3> action,
                        double reward, double log_prob) {
  states_.push_back(std::move(state));
  actions_.push_back(action);
  rewards_.push_back(reward);
  log_probs_.push_back(log_prob);
}

void RolloutMemory::add_discrete(std::vector<double> state,
                                 std::array<int, 3> indices, double reward,
                                 double log_prob) {
  states_.push_back(std::move(state));
  action_indices_.push_back(indices);
  rewards_.push_back(reward);
  log_probs_.push_back(log_prob);
}

nn::Matrix RolloutMemory::states_matrix() const {
  assert(!states_.empty());
  const std::size_t dim = states_.front().size();
  nn::Matrix m(states_.size(), dim);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    assert(states_[i].size() == dim);
    for (std::size_t j = 0; j < dim; ++j) m(i, j) = states_[i][j];
  }
  return m;
}

nn::Matrix RolloutMemory::actions_matrix() const {
  nn::Matrix m(actions_.size(), 3);
  for (std::size_t i = 0; i < actions_.size(); ++i)
    for (std::size_t j = 0; j < 3; ++j) m(i, j) = actions_[i][j];
  return m;
}

nn::Matrix RolloutMemory::actions_matrix_1d() const {
  nn::Matrix m(actions_.size(), 1);
  for (std::size_t i = 0; i < actions_.size(); ++i) m(i, 0) = actions_[i][0];
  return m;
}

std::vector<std::vector<int>> RolloutMemory::action_indices_per_head() const {
  std::vector<std::vector<int>> heads(3);
  for (auto& h : heads) h.reserve(action_indices_.size());
  for (const auto& idx : action_indices_)
    for (std::size_t h = 0; h < 3; ++h) heads[h].push_back(idx[h]);
  return heads;
}

nn::Matrix RolloutMemory::log_probs_column() const {
  nn::Matrix m(log_probs_.size(), 1);
  for (std::size_t i = 0; i < log_probs_.size(); ++i) m(i, 0) = log_probs_[i];
  return m;
}

nn::Matrix RolloutMemory::discounted_returns(double gamma) const {
  nn::Matrix g(rewards_.size(), 1);
  double acc = 0.0;
  std::size_t boundary_idx = boundaries_.size();
  for (std::size_t i = rewards_.size(); i-- > 0;) {
    // Restart accumulation when crossing into an earlier episode.
    while (boundary_idx > 0 && boundaries_[boundary_idx - 1] == i + 1) {
      acc = 0.0;
      --boundary_idx;
    }
    acc = rewards_[i] + gamma * acc;
    g(i, 0) = acc;
  }
  return g;
}

double RolloutMemory::mean_reward() const {
  if (rewards_.empty()) return 0.0;
  double s = 0.0;
  for (double r : rewards_) s += r;
  return s / static_cast<double>(rewards_.size());
}

double RolloutMemory::last_episode_mean_reward() const {
  if (rewards_.empty()) return 0.0;
  // Start of the most recent episode: the last boundary at or before the end.
  std::size_t start = 0;
  for (std::size_t b : boundaries_) {
    if (b < rewards_.size()) start = b;
  }
  double s = 0.0;
  for (std::size_t i = start; i < rewards_.size(); ++i) s += rewards_[i];
  return s / static_cast<double>(rewards_.size() - start);
}

ConcurrencyTuple action_to_tuple(const nn::Matrix& action_row,
                                 int max_threads) {
  auto to_int = [](double v) { return static_cast<int>(std::lround(v)); };
  ConcurrencyTuple t{to_int(action_row(0, 0)), to_int(action_row(0, 1)),
                     to_int(action_row(0, 2))};
  return t.clamped(1, max_threads);
}

VecEnv::VecEnv(std::vector<std::unique_ptr<Env>> envs, std::uint64_t seed)
    : envs_(std::move(envs)) {
  assert(!envs_.empty());
  rngs_.reserve(envs_.size());
  for (std::size_t i = 0; i < envs_.size(); ++i)
    rngs_.push_back(Rng::stream(seed, i));
}

std::vector<double> collect_episodes(VecEnv& envs, const PolicyNetwork& policy,
                                     int steps, double r_max, int max_threads,
                                     ThreadPool& pool, RolloutMemory& memory) {
  const std::size_t n = envs.size();
  const std::size_t dim = envs.observation_size();
  assert(steps > 0 && r_max > 0.0);

  // Reset every env concurrently; each consumes only its own RNG stream.
  std::vector<std::vector<double>> states(n);
  pool.parallel_for(0, n, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      states[i] = envs.env(i).reset(envs.rng(i));
  });

  // Per-env trajectory buffers; appended to `memory` in env order afterwards
  // so episode grouping matches the serial collector's layout.
  struct Trajectory {
    std::vector<std::vector<double>> states;
    std::vector<std::array<double, 3>> actions;
    std::vector<double> rewards;        // normalized by r_max
    std::vector<double> log_probs;
    double reward_sum = 0.0;
  };
  std::vector<Trajectory> traj(n);
  for (Trajectory& t : traj) {
    t.states.reserve(static_cast<std::size_t>(steps));
    t.actions.reserve(static_cast<std::size_t>(steps));
    t.rewards.reserve(static_cast<std::size_t>(steps));
    t.log_probs.reserve(static_cast<std::size_t>(steps));
  }

  std::vector<char> active(n, 1);
  std::vector<ConcurrencyTuple> tuples(n, ConcurrencyTuple{1, 1, 1});
  std::vector<EnvStep> outs(n);
  nn::Matrix batch(n, dim);
  std::size_t live = n;

  for (int m = 0; m < steps && live > 0; ++m) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      std::copy(states[i].begin(), states[i].end(),
                batch.row_span(i).begin());
    }

    // One batched forward for all envs; row i only depends on state row i,
    // so it matches the per-env forward bit for bit.
    const nn::DiagonalGaussian dist =
        policy.forward(nn::Tensor::constant(batch));
    const nn::Matrix& mu = dist.mean().value();
    const nn::Matrix& log_std = dist.log_std().value();

    // Sample per env, in env order, from the env's own stream.
    nn::Matrix raw(n, 3);
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      Rng& rng = envs.rng(i);
      for (std::size_t j = 0; j < 3; ++j)
        raw(i, j) = rng.normal(mu(i, j), std::exp(log_std(0, j)));
    }
    const nn::Matrix log_probs = dist.log_prob(raw).value();  // (n x 1)

    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      tuples[i] = action_to_tuple(nn::Matrix::row(raw.row_span(i)),
                                  max_threads);
    }

    // Fan the env steps out: envs are independent, so any schedule gives the
    // same per-env result.
    pool.parallel_for(0, n, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i)
        if (active[i]) outs[i] = envs.env(i).step(tuples[i]);
    });

    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      Trajectory& t = traj[i];
      const double reward = outs[i].reward / r_max;
      t.states.push_back(states[i]);
      t.actions.push_back({raw(i, 0), raw(i, 1), raw(i, 2)});
      t.rewards.push_back(reward);
      t.log_probs.push_back(log_probs(i, 0));
      t.reward_sum += reward;
      states[i] = outs[i].observation;
      if (outs[i].done) {
        active[i] = 0;
        --live;
      }
    }
  }

  std::vector<double> episode_mean_rewards(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    Trajectory& t = traj[i];
    for (std::size_t m = 0; m < t.rewards.size(); ++m)
      memory.add(std::move(t.states[m]), t.actions[m], t.rewards[m],
                 t.log_probs[m]);
    memory.end_episode();
    if (!t.rewards.empty())
      episode_mean_rewards[i] =
          t.reward_sum / static_cast<double>(t.rewards.size());
  }
  return episode_mean_rewards;
}

}  // namespace automdt::rl
