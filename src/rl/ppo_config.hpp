// PPO hyper-parameters (paper §IV-D/E).
//
// paper_defaults() matches the published setup (256-d residual networks,
// 30000-episode cap, 1000-episode stagnation window). fast_defaults() is a
// scaled configuration for this repository's 2-core CI budget; DESIGN.md §5
// documents the deviation. Benches report which configuration they ran.
#pragma once

#include <cstdint>
#include <cstddef>

namespace automdt::rl {

struct PpoConfig {
  // ---- episode loop (Algorithm 2) ----
  int max_episodes = 6000;        // N
  int steps_per_episode = 10;     // M (paper: "each episode contains ten
                                  // iterations")
  // ---- optimization ----
  double lr = 5e-4;               // alpha, Adam
  double gamma = 0.95;            // discount factor
  double clip_epsilon = 0.2;      // PPO clipping threshold
  // Paper: L = L_actor + L_critic - 0.1 * entropy, against *unnormalized*
  // utility rewards of magnitude ~10^3. We normalize rewards by R_max, so an
  // equivalent exploration pressure needs a far smaller coefficient; 0.1
  // against normalized rewards pins the std at its clamp ceiling and the
  // policy never fine-tunes thread counts.
  double entropy_coef = 0.001;
  double critic_coef = 1.0;       // L_critic already carries the 0.5 MSE factor
  int update_epochs = 4;          // gradient passes over each update batch
  // Episodes collected per PPO update. 1 matches Algorithm 2 literally; the
  // default batches a few episodes so the gradient sees several buffer/thread
  // initializations at once (better signal-to-noise on a 10-step episode).
  int episodes_per_batch = 4;
  double max_grad_norm = 0.5;     // global-norm clip; 0 disables
  bool normalize_advantages = true;

  // ---- network architecture (§IV-D.3/4) ----
  std::size_t hidden_dim = 128;   // paper: 256
  int policy_blocks = 3;          // residual blocks in the actor trunk
  int value_blocks = 2;           // residual blocks in the critic trunk
  double log_std_init = 1.0;      // std ~ 2.7 threads: wide early exploration
  double log_std_min = -2.0;      // clamp range for the trainable log-std
  double log_std_max = 2.0;

  // ---- convergence criterion (§IV-E) ----
  // Episode rewards are normalized by R_max inside the trainer, so the
  // criterion is: best mean-per-step reward >= convergence_fraction, then
  // stagnation_episodes further episodes with no improvement.
  double convergence_fraction = 0.9;
  int stagnation_episodes = 300;  // paper: 1000
  // Episode rewards are compared through a moving average of this many
  // episodes before updating the best checkpoint. The paper tracks the raw
  // episode reward; with randomized buffer initializations that rewards lucky
  // resets (a pre-filled buffer briefly beats the bottleneck), so smoothing
  // picks genuinely better policies. 1 == paper behaviour.
  int best_window = 10;

  // ---- offline fast path (performance only; never changes results) ----
  // Worker threads for the global pool used by blocked matmuls / elementwise
  // ops / vectorized env stepping. 0 = hardware concurrency, 1 = fully
  // serial. Training results are bit-identical for any value.
  int num_threads = 0;
  // Environments stepped concurrently during offline training. 1 keeps the
  // classic serial episode loop; > 1 uses the vectorized collector
  // (rollout.hpp). Results depend on (seed, num_envs) but not num_threads.
  int num_envs = 1;

  std::uint64_t seed = 42;

  /// Faithful to the published configuration.
  static PpoConfig paper_defaults() {
    PpoConfig c;
    c.max_episodes = 30000;
    c.hidden_dim = 256;
    c.stagnation_episodes = 1000;
    return c;
  }

  /// Small/fast configuration for unit tests.
  static PpoConfig fast_defaults() {
    PpoConfig c;
    c.max_episodes = 400;
    c.hidden_dim = 32;
    c.policy_blocks = 1;
    c.value_blocks = 1;
    c.stagnation_episodes = 50;
    return c;
  }
};

}  // namespace automdt::rl
