#include "rl/evaluation.hpp"

#include <map>

namespace automdt::rl {

EvaluationResult evaluate_policy(Env& env, const Policy& policy, double r_max,
                                 Rng& rng, EvaluationOptions options) {
  EvaluationResult out;
  RunningStats reward_stats;
  RunningStats read_tpt, net_tpt, write_tpt, total_threads;
  std::map<std::tuple<int, int, int>, int> tuple_counts;

  for (int ep = 0; ep < options.episodes; ++ep) {
    std::vector<double> state = env.reset(rng);
    for (int step = 0; step < options.steps_per_episode; ++step) {
      const ConcurrencyTuple tuple = policy(state);
      const EnvStep result = env.step(tuple);
      state = result.observation;
      reward_stats.add(result.reward / (r_max > 0.0 ? r_max : 1.0));
      ++out.steps;
      if (step >= options.warmup_steps) {
        read_tpt.add(result.throughputs_mbps.read);
        net_tpt.add(result.throughputs_mbps.network);
        write_tpt.add(result.throughputs_mbps.write);
        total_threads.add(tuple.total());
        ++tuple_counts[{tuple.read, tuple.network, tuple.write}];
      }
      if (result.done) break;
    }
    ++out.episodes;
  }

  out.mean_reward = reward_stats.mean();
  out.reward_stddev = reward_stats.stddev();
  out.mean_throughput_mbps = {read_tpt.mean(), net_tpt.mean(),
                              write_tpt.mean()};
  out.mean_total_threads = total_threads.mean();

  int best_count = 0;
  for (const auto& [tuple, count] : tuple_counts) {
    if (count > best_count) {
      best_count = count;
      out.settled_tuple = {std::get<0>(tuple), std::get<1>(tuple),
                           std::get<2>(tuple)};
    }
  }
  return out;
}

}  // namespace automdt::rl
