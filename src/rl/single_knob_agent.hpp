// Monolithic single-knob DRL baseline (Hasibul et al. [17], the online-DRL
// predecessor the paper's §IV explicitly improves upon: "previous work ...
// applied an online training approach to estimate a single concurrency value
// without separating network and I/O tasks").
//
// Same PPO machinery as the AutoMDT agent, but the policy emits ONE
// concurrency value applied to all three stages: n_r = n_n = n_w = n. The
// modular-vs-monolithic bench measures what the coupling costs — the
// monolithic optimum must cover the most demanding stage, over-subscribing
// the other two.
#pragma once

#include <memory>

#include "common/env.hpp"
#include "nn/adam.hpp"
#include "rl/networks.hpp"
#include "rl/ppo_agent.hpp"  // TrainResult, EpisodeCallback
#include "rl/ppo_config.hpp"
#include "rl/rollout.hpp"

namespace automdt::rl {

class SingleKnobPpoAgent {
 public:
  SingleKnobPpoAgent(std::size_t state_dim, int max_threads,
                     PpoConfig config = {});

  TrainResult train(Env& env, double r_max,
                    const EpisodeCallback& on_episode = nullptr);

  /// Sample (or take the mean of) the scalar action, round, clamp, and
  /// apply it to every stage.
  ConcurrencyTuple act(const std::vector<double>& state, Rng& rng,
                       bool deterministic = false) const;

  PolicyNetwork& policy() { return *policy_; }
  int max_threads() const { return max_threads_; }

 private:
  void update_networks(const RolloutMemory& memory);
  static ConcurrencyTuple coupled(double raw, int max_threads);

  PpoConfig config_;
  int max_threads_;
  Rng rng_;
  std::unique_ptr<PolicyNetwork> policy_;  // action_dim = 1
  std::unique_ptr<ValueNetwork> value_;
  std::unique_ptr<nn::Adam> optimizer_;
};

}  // namespace automdt::rl
