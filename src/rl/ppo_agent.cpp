#include "rl/ppo_agent.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/trace_export.hpp"

namespace automdt::rl {
namespace {

// Algorithm 2's R*/c bookkeeping (windowed; see PpoConfig::best_window),
// shared by the serial and vectorized training loops so the convergence
// criterion cannot drift between them.
struct Algorithm2State {
  explicit Algorithm2State(int best_window)
      : window(static_cast<std::size_t>(std::max(1, best_window))) {}

  /// Returns true when the smoothed reward set a new best (the caller saves
  /// a checkpoint — "Save model").
  bool record(double episode_reward) {
    window.add(episode_reward);
    const double smoothed = window.mean();
    if (smoothed > best_reward) {
      best_reward = smoothed;
      stagnant = 0;
      return true;
    }
    ++stagnant;
    return false;
  }

  double best_reward = -1e300;  // R* in Algorithm 2
  int stagnant = 0;             // c in Algorithm 2
  SlidingWindow window;
};

}  // namespace

PpoAgent::PpoAgent(std::size_t state_dim, int max_threads, PpoConfig config)
    : config_(config), max_threads_(max_threads), rng_(config.seed) {
  // num_threads > 0 pins the pool used by the nn/rollout fast paths;
  // 0 keeps the hardware-concurrency default. Results are unaffected either
  // way (see DESIGN.md, determinism contract) — this is a performance knob.
  if (config_.num_threads > 0) set_global_thread_pool_size(config_.num_threads);
  Rng init_rng = rng_.split();
  policy_ = std::make_unique<PolicyNetwork>(state_dim, 3, config_, init_rng);
  value_ = std::make_unique<ValueNetwork>(state_dim, config_, init_rng);
  // Start exploration mid-range instead of at the clamp floor.
  policy_->set_mean_bias((1.0 + max_threads_) / 2.0);

  std::vector<nn::Parameter*> params = policy_->parameters();
  for (nn::Parameter* p : value_->parameters()) params.push_back(p);
  nn::AdamConfig adam;
  adam.lr = config_.lr;
  adam.max_grad_norm = config_.max_grad_norm;
  optimizer_ = std::make_unique<nn::Adam>(std::move(params), adam);
}

void PpoAgent::set_telemetry(telemetry::MetricsRegistry* registry,
                             telemetry::TimeSeriesRecorder* recorder) {
  recorder_ = registry ? recorder : nullptr;
  if (!registry) {
    g_approx_kl_ = g_clip_fraction_ = g_entropy_ = g_episode_reward_ = nullptr;
    c_updates_ = nullptr;
    return;
  }
  g_episode_reward_ = registry->gauge("ppo.episode_reward");
  g_approx_kl_ = registry->gauge("ppo.approx_kl");
  g_clip_fraction_ = registry->gauge("ppo.clip_fraction");
  g_entropy_ = registry->gauge("ppo.entropy");
  c_updates_ = registry->counter("ppo.updates");
}

void PpoAgent::set_trace_exporter(telemetry::TraceExporter* exporter) {
  exporter_ = exporter;
  if (!exporter_) {
    trk_rollout_ = trk_update_ = -1;
    return;
  }
  trk_rollout_ = exporter_->track("trainer", "rollout");
  trk_update_ = exporter_->track("trainer", "update");
}

TrainResult PpoAgent::train(Env& env, double r_max,
                            const EpisodeCallback& on_episode) {
  return run_training(env, r_max, config_.max_episodes,
                      /*track_convergence=*/true, on_episode);
}

TrainResult PpoAgent::train(VecEnv& envs, double r_max,
                            const EpisodeCallback& on_episode) {
  return run_training_vec(envs, r_max, config_.max_episodes,
                          /*track_convergence=*/true, on_episode);
}

TrainResult PpoAgent::fine_tune(Env& env, double r_max, int episodes,
                                const EpisodeCallback& on_episode) {
  return run_training(env, r_max, episodes, /*track_convergence=*/false,
                      on_episode);
}

TrainResult PpoAgent::run_training(Env& env, double r_max, int max_episodes,
                                   bool track_convergence,
                                   const EpisodeCallback& on_episode) {
  const auto t0 = std::chrono::steady_clock::now();
  TrainResult result;
  result.r_max = r_max;
  result.episode_rewards.reserve(static_cast<std::size_t>(max_episodes));

  RolloutMemory memory;
  nn::StateDict best_checkpoint;
  Algorithm2State algo(config_.best_window);

  const int batch = std::max(1, config_.episodes_per_batch);
  for (int episode = 0; episode < max_episodes; ++episode) {
    std::vector<double> state = env.reset(rng_);
    double reward_sum = 0.0;
    int steps = 0;

    const std::uint64_t rollout_t0 =
        exporter_ ? telemetry::now_ns() : 0;
    for (int m = 0; m < config_.steps_per_episode; ++m) {
      const nn::DiagonalGaussian dist = policy_->forward_one(state);
      const nn::Matrix raw_action = dist.sample(rng_);          // 1 x 3
      const double log_prob = dist.log_prob(raw_action).value()(0, 0);
      const ConcurrencyTuple tuple = action_to_tuple(raw_action, max_threads_);

      const EnvStep out = env.step(tuple);
      const double reward = out.reward / r_max;  // normalized
      memory.add(state,
                 {raw_action(0, 0), raw_action(0, 1), raw_action(0, 2)},
                 reward, log_prob);
      reward_sum += reward;
      ++steps;
      state = out.observation;
      if (out.done) break;
    }
    memory.end_episode();
    if (exporter_) {
      exporter_->emit(trk_rollout_, "rollout",
                      rollout_t0, telemetry::now_ns() - rollout_t0,
                      "ep" + std::to_string(episode));
    }

    const double episode_reward =
        steps > 0 ? reward_sum / static_cast<double>(steps) : 0.0;
    if (g_episode_reward_) g_episode_reward_->set(episode_reward);

    if ((episode + 1) % batch == 0) {
      update_networks(memory);
      memory.clear();
      // One training-series row per update, stamped with the episode index
      // (virtual time) rather than wall time.
      if (recorder_) recorder_->sample_at(static_cast<double>(episode));
    }

    result.episode_rewards.push_back(episode_reward);
    ++result.episodes_run;

    if (algo.record(episode_reward)) best_checkpoint = state_dict();

    if (track_convergence && result.convergence_episode < 0 &&
        algo.best_reward >= config_.convergence_fraction) {
      result.convergence_episode = episode;
      LOG_INFO("PPO reached " << config_.convergence_fraction
                              << " * R_max at episode " << episode);
    }

    if (track_convergence && algo.best_reward >= config_.convergence_fraction &&
        algo.stagnant >= config_.stagnation_episodes) {
      result.converged = true;
      break;
    }

    if (on_episode && !on_episode(episode, episode_reward)) break;
  }

  result.best_reward = algo.best_reward;
  if (!best_checkpoint.empty()) load_state_dict(best_checkpoint);

  result.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

TrainResult PpoAgent::run_training_vec(VecEnv& envs, double r_max,
                                       int max_episodes,
                                       bool track_convergence,
                                       const EpisodeCallback& on_episode) {
  const auto t0 = std::chrono::steady_clock::now();
  TrainResult result;
  result.r_max = r_max;
  result.episode_rewards.reserve(static_cast<std::size_t>(max_episodes));

  ThreadPool& pool = global_thread_pool();
  RolloutMemory memory;
  nn::StateDict best_checkpoint;
  Algorithm2State algo(config_.best_window);

  const int batch = std::max(1, config_.episodes_per_batch);
  int pending_episodes = 0;  // collected since the last network update
  bool stop = false;
  for (int episode = 0; episode < max_episodes && !stop;) {
    // One round: every env runs one episode concurrently under the current
    // policy (on-policy, like synchronized PPO workers).
    const std::uint64_t rollout_t0 = exporter_ ? telemetry::now_ns() : 0;
    const std::vector<double> round_rewards =
        collect_episodes(envs, *policy_, config_.steps_per_episode, r_max,
                         max_threads_, pool, memory);
    if (exporter_) {
      exporter_->emit(trk_rollout_, "rollout",
                      rollout_t0, telemetry::now_ns() - rollout_t0,
                      "ep" + std::to_string(episode));
    }
    pending_episodes += static_cast<int>(round_rewards.size());
    if (!round_rewards.empty() && g_episode_reward_)
      g_episode_reward_->set(round_rewards.back());
    if (pending_episodes >= batch) {
      update_networks(memory);
      memory.clear();
      pending_episodes = 0;
      if (recorder_) recorder_->sample_at(static_cast<double>(episode));
    }

    // Episode bookkeeping in env order, so results depend only on
    // (seed, num_envs) — not on pool scheduling.
    for (std::size_t i = 0;
         i < round_rewards.size() && episode < max_episodes; ++i, ++episode) {
      const double episode_reward = round_rewards[i];
      result.episode_rewards.push_back(episode_reward);
      ++result.episodes_run;

      if (algo.record(episode_reward)) best_checkpoint = state_dict();

      if (track_convergence && result.convergence_episode < 0 &&
          algo.best_reward >= config_.convergence_fraction) {
        result.convergence_episode = episode;
        LOG_INFO("PPO reached " << config_.convergence_fraction
                                << " * R_max at episode " << episode);
      }

      if (track_convergence &&
          algo.best_reward >= config_.convergence_fraction &&
          algo.stagnant >= config_.stagnation_episodes) {
        result.converged = true;
        stop = true;
        break;
      }

      if (on_episode && !on_episode(episode, episode_reward)) {
        stop = true;
        break;
      }
    }
  }

  result.best_reward = algo.best_reward;
  if (!best_checkpoint.empty()) load_state_dict(best_checkpoint);

  result.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

void PpoAgent::update_networks(const RolloutMemory& memory) {
  if (memory.empty()) return;

  // Return/advantage preparation is the "GAE" phase of the trace timeline
  // (this trainer uses discounted-returns advantages; the span name keeps
  // the conventional label).
  const std::uint64_t gae_t0 = exporter_ ? telemetry::now_ns() : 0;
  const nn::Tensor states = nn::Tensor::constant(memory.states_matrix());
  const nn::Matrix actions = memory.actions_matrix();
  const nn::Tensor old_log_probs =
      nn::Tensor::constant(memory.log_probs_column());
  const nn::Matrix returns = memory.discounted_returns(config_.gamma);
  const nn::Tensor returns_t = nn::Tensor::constant(returns);
  const std::uint64_t update_t0 = exporter_ ? telemetry::now_ns() : 0;
  if (exporter_)
    exporter_->emit(trk_update_, "gae", gae_t0, update_t0 - gae_t0);

  for (int epoch = 0; epoch < config_.update_epochs; ++epoch) {
    const nn::DiagonalGaussian dist = policy_->forward(states);
    const nn::Tensor new_log_probs = dist.log_prob(actions);  // (M x 1)
    const nn::Tensor values = value_->forward(states);        // (M x 1)

    // Advantages A_t = G_t - V(s_t); treated as constants for the actor
    // (the critic learns through its own MSE term).
    nn::Matrix adv = returns;
    adv -= values.value();
    if (config_.normalize_advantages && adv.size() > 1) {
      const double mean = adv.mean();
      double var = 0.0;
      for (double v : adv.data()) var += (v - mean) * (v - mean);
      const double std =
          std::sqrt(var / static_cast<double>(adv.size())) + 1e-8;
      for (double& v : adv.data()) v = (v - mean) / std;
    }
    const nn::Tensor adv_t = nn::Tensor::constant(adv);

    // r_t = pi_theta(a|s) / pi_theta_old(a|s)
    const nn::Tensor ratio = exp_op(sub(new_log_probs, old_log_probs));
    const nn::Tensor surr1 = mul(ratio, adv_t);
    const nn::Tensor surr2 =
        mul(clamp(ratio, 1.0 - config_.clip_epsilon, 1.0 + config_.clip_epsilon),
            adv_t);
    const nn::Tensor actor_loss = neg(mean(min_ew(surr1, surr2)));

    // L_critic = 0.5 * MSE(G_t, V(s_t))
    const nn::Tensor critic_loss =
        scale(mean(square(sub(returns_t, values))), 0.5);

    const nn::Tensor entropy = dist.entropy();

    // L = L_actor + L_critic - entropy_coef * entropy
    const nn::Tensor loss =
        add(actor_loss, sub(scale(critic_loss, config_.critic_coef),
                            scale(entropy, config_.entropy_coef)));

    // Update diagnostics (published every epoch; the last epoch's values
    // stand): approx KL = E[log pi_old - log pi_new], clip fraction =
    // P(|r_t - 1| > eps). Standard PPO health signals — a KL spike or a
    // saturated clip fraction is how a diverging update shows up in the
    // monitor before the reward curve does.
    if (g_approx_kl_) {
      const nn::Matrix& new_lp = new_log_probs.value();
      const nn::Matrix& old_lp = old_log_probs.value();
      const nn::Matrix& r = ratio.value();
      double kl_sum = 0.0;
      std::size_t clipped = 0;
      for (std::size_t i = 0; i < r.size(); ++i) {
        kl_sum += old_lp.data()[i] - new_lp.data()[i];
        if (std::abs(r.data()[i] - 1.0) > config_.clip_epsilon) ++clipped;
      }
      const double n = static_cast<double>(std::max<std::size_t>(r.size(), 1));
      g_approx_kl_->set(kl_sum / n);
      g_clip_fraction_->set(static_cast<double>(clipped) / n);
      g_entropy_->set(entropy.value()(0, 0));
    }

    optimizer_->zero_grad();
    loss.backward();
    optimizer_->step();
  }
  if (exporter_) {
    exporter_->emit(trk_update_, "update", update_t0,
                    telemetry::now_ns() - update_t0);
  }
  if (c_updates_) c_updates_->add();
}

ConcurrencyTuple PpoAgent::act(const std::vector<double>& state, Rng& rng,
                               bool deterministic) const {
  const nn::DiagonalGaussian dist = policy_->forward_one(state);
  const nn::Matrix action = deterministic ? dist.mode() : dist.sample(rng);
  return action_to_tuple(action, max_threads_);
}

nn::StateDict PpoAgent::state_dict() {
  nn::StateDict out = nn::state_dict(*policy_);
  nn::StateDict value_state = nn::state_dict(*value_);
  out.insert(value_state.begin(), value_state.end());
  return out;
}

void PpoAgent::load_state_dict(const nn::StateDict& state) {
  nn::load_state_dict(*policy_, state);
  nn::load_state_dict(*value_, state);
}

}  // namespace automdt::rl
