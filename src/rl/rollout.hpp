// Episode memory M (Algorithm 2): stores (s, a, r, log pi_old(a|s)) tuples
// collected during one episode and computes the discounted returns
// G_t = r_t + gamma * G_{t+1}.
//
// Also home to the vectorized collection fast path: VecEnv holds N
// independent Envs (each with a counter-based RNG stream derived from
// (seed, env_index)) and collect_episodes() runs one episode in every env
// concurrently — policy forwards batched as (N x state_dim) through the nn
// layer, env steps fanned out over the thread pool. Results are bit-identical
// for a fixed env count regardless of pool size: per-env randomness comes
// only from that env's own stream, and batched network rows are computed
// independently per row.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/env.hpp"
#include "common/thread_pool.hpp"
#include "nn/matrix.hpp"

namespace automdt::rl {

class RolloutMemory {
 public:
  void clear();
  std::size_t size() const { return rewards_.size(); }
  bool empty() const { return rewards_.empty(); }

  /// Continuous variant: `action` is the raw (pre-rounding) Gaussian sample.
  void add(std::vector<double> state, std::array<double, 3> action,
           double reward, double log_prob);

  /// Discrete variant: per-head category indices.
  void add_discrete(std::vector<double> state, std::array<int, 3> indices,
                    double reward, double log_prob);

  /// Mark the end of an episode. Discounted returns restart at boundaries,
  /// so several episodes can be batched into one PPO update.
  void end_episode() { boundaries_.push_back(rewards_.size()); }

  /// States stacked as an (M x state_dim) matrix.
  nn::Matrix states_matrix() const;

  /// Continuous actions stacked as (M x 3).
  nn::Matrix actions_matrix() const;

  /// First action component only, stacked as (M x 1) — for single-knob
  /// (monolithic) agents that store their scalar action in slot 0.
  nn::Matrix actions_matrix_1d() const;

  /// Discrete action indices, one vector per head (for MultiCategorical).
  std::vector<std::vector<int>> action_indices_per_head() const;

  /// Collection-time log-probabilities as an (M x 1) matrix.
  nn::Matrix log_probs_column() const;

  /// G_t = r_t + gamma * G_{t+1}, restarting at episode boundaries,
  /// as an (M x 1) matrix.
  nn::Matrix discounted_returns(double gamma) const;

  const std::vector<double>& rewards() const { return rewards_; }

  /// Mean per-step reward over everything stored.
  double mean_reward() const;

  /// Mean per-step reward of the most recent (possibly unterminated) episode.
  double last_episode_mean_reward() const;

 private:
  std::vector<std::vector<double>> states_;
  std::vector<std::array<double, 3>> actions_;
  std::vector<std::array<int, 3>> action_indices_;
  std::vector<double> rewards_;
  std::vector<double> log_probs_;
  std::vector<std::size_t> boundaries_;  // indices one past each episode end
};

/// Round-and-clamp a raw continuous action row to a concurrency tuple
/// (production rule of §IV-F: round to integers, clamp to [1, n_max]).
ConcurrencyTuple action_to_tuple(const nn::Matrix& action_row, int max_threads);

class PolicyNetwork;

/// N independent environments for vectorized rollout collection. Env i owns
/// the RNG stream Rng::stream(seed, i), so a VecEnv's trajectory depends only
/// on (seed, N) — never on how env steps are scheduled across pool threads.
class VecEnv {
 public:
  VecEnv(std::vector<std::unique_ptr<Env>> envs, std::uint64_t seed);

  std::size_t size() const { return envs_.size(); }
  Env& env(std::size_t i) { return *envs_[i]; }
  Rng& rng(std::size_t i) { return rngs_[i]; }
  int max_threads() const { return envs_.front()->max_threads(); }
  std::size_t observation_size() const {
    return envs_.front()->observation_size();
  }

 private:
  std::vector<std::unique_ptr<Env>> envs_;
  std::vector<Rng> rngs_;
};

/// Run one episode of up to `steps` steps in every env of `envs`
/// concurrently: reset all envs, then per step batch the policy forward over
/// the active envs, sample one action per env from its own RNG stream, and
/// fan the env steps out over `pool`. Each env's trajectory is appended to
/// `memory` as its own episode (env 0's episode first), with rewards
/// normalized by `r_max`. Returns the per-env mean step reward.
std::vector<double> collect_episodes(VecEnv& envs, const PolicyNetwork& policy,
                                     int steps, double r_max, int max_threads,
                                     ThreadPool& pool, RolloutMemory& memory);

}  // namespace automdt::rl
