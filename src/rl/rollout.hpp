// Episode memory M (Algorithm 2): stores (s, a, r, log pi_old(a|s)) tuples
// collected during one episode and computes the discounted returns
// G_t = r_t + gamma * G_{t+1}.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "nn/matrix.hpp"

namespace automdt::rl {

class RolloutMemory {
 public:
  void clear();
  std::size_t size() const { return rewards_.size(); }
  bool empty() const { return rewards_.empty(); }

  /// Continuous variant: `action` is the raw (pre-rounding) Gaussian sample.
  void add(std::vector<double> state, std::array<double, 3> action,
           double reward, double log_prob);

  /// Discrete variant: per-head category indices.
  void add_discrete(std::vector<double> state, std::array<int, 3> indices,
                    double reward, double log_prob);

  /// Mark the end of an episode. Discounted returns restart at boundaries,
  /// so several episodes can be batched into one PPO update.
  void end_episode() { boundaries_.push_back(rewards_.size()); }

  /// States stacked as an (M x state_dim) matrix.
  nn::Matrix states_matrix() const;

  /// Continuous actions stacked as (M x 3).
  nn::Matrix actions_matrix() const;

  /// First action component only, stacked as (M x 1) — for single-knob
  /// (monolithic) agents that store their scalar action in slot 0.
  nn::Matrix actions_matrix_1d() const;

  /// Discrete action indices, one vector per head (for MultiCategorical).
  std::vector<std::vector<int>> action_indices_per_head() const;

  /// Collection-time log-probabilities as an (M x 1) matrix.
  nn::Matrix log_probs_column() const;

  /// G_t = r_t + gamma * G_{t+1}, restarting at episode boundaries,
  /// as an (M x 1) matrix.
  nn::Matrix discounted_returns(double gamma) const;

  const std::vector<double>& rewards() const { return rewards_; }

  /// Mean per-step reward over everything stored.
  double mean_reward() const;

  /// Mean per-step reward of the most recent (possibly unterminated) episode.
  double last_episode_mean_reward() const;

 private:
  std::vector<std::vector<double>> states_;
  std::vector<std::array<double, 3>> actions_;
  std::vector<std::array<int, 3>> action_indices_;
  std::vector<double> rewards_;
  std::vector<double> log_probs_;
  std::vector<std::size_t> boundaries_;  // indices one past each episode end
};

}  // namespace automdt::rl
