// The PPO actor and critic networks (paper §IV-D.3/4).
//
// PolicyNetwork (actor): state -> Linear(256) -> tanh -> 3 residual blocks
// (Linear/LayerNorm/ReLU x2 + skip) -> tanh -> Linear -> action means; plus a
// trainable, clamped log-standard-deviation shared across the batch. Together
// they parameterize a diagonal Gaussian over the three concurrency values.
//
// ValueNetwork (critic): state -> Linear(256) -> tanh -> 2 residual blocks
// (Tanh activations) -> Linear -> scalar state value.
//
// DiscretePolicyNetwork: same trunk but 3 categorical heads (one per stage,
// n_max classes each) — the action-space ablation the paper reports failing
// (Fig. 4).
#pragma once

#include <memory>

#include "nn/distributions.hpp"
#include "nn/module.hpp"
#include "rl/ppo_config.hpp"

namespace automdt::rl {

class PolicyNetwork : public nn::Module {
 public:
  PolicyNetwork(std::size_t state_dim, std::size_t action_dim,
                const PpoConfig& config, Rng& rng);

  /// Batch forward: states (n x state_dim) -> Gaussian over (n x action_dim).
  nn::DiagonalGaussian forward(const nn::Tensor& states) const;

  /// Convenience for a single state row.
  nn::DiagonalGaussian forward_one(const std::vector<double>& state) const;

  /// Bias the mean head so initial actions center on `v` (thread units); the
  /// trainer sets this to (1 + n_max) / 2 so exploration starts mid-range
  /// instead of pinned at the clamp floor.
  void set_mean_bias(double v);

  std::size_t action_dim() const { return action_dim_; }

 private:
  std::size_t action_dim_;
  double log_std_min_, log_std_max_;
  std::unique_ptr<nn::ResidualMlp> trunk_;
  std::unique_ptr<nn::Linear> mean_head_;
  nn::Parameter* log_std_;
};

class ValueNetwork : public nn::Module {
 public:
  ValueNetwork(std::size_t state_dim, const PpoConfig& config, Rng& rng);

  /// Batch forward: states (n x state_dim) -> values (n x 1).
  nn::Tensor forward(const nn::Tensor& states) const;

  double value_of(const std::vector<double>& state) const;

 private:
  std::unique_ptr<nn::ResidualMlp> trunk_;
  std::unique_ptr<nn::Linear> head_;
};

class DiscretePolicyNetwork : public nn::Module {
 public:
  /// `classes_per_head` = n_max (thread count = class index + 1).
  DiscretePolicyNetwork(std::size_t state_dim, int classes_per_head,
                        const PpoConfig& config, Rng& rng);

  nn::MultiCategorical forward(const nn::Tensor& states) const;
  nn::MultiCategorical forward_one(const std::vector<double>& state) const;

  int classes_per_head() const { return classes_; }

 private:
  int classes_;
  std::unique_ptr<nn::ResidualMlp> trunk_;
  std::vector<std::unique_ptr<nn::Linear>> heads_;
};

/// Stack a single state vector into a (1 x dim) constant tensor.
nn::Tensor state_row(const std::vector<double>& state);

}  // namespace automdt::rl
