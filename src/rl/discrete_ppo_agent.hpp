// Discrete-action PPO — the ablation the paper reports as a negative result
// (§V-A, Fig. 4): "we also experimented with a discrete action space ...
// however, the discrete action space failed miserably."
//
// Each stage gets a categorical head over n_max classes (thread count =
// class + 1). The training loop mirrors PpoAgent's so the comparison in
// bench_fig4_action_space isolates the action-space choice.
#pragma once

#include <memory>

#include "common/env.hpp"
#include "nn/adam.hpp"
#include "nn/serialize.hpp"
#include "rl/networks.hpp"
#include "rl/ppo_agent.hpp"  // TrainResult, EpisodeCallback
#include "rl/ppo_config.hpp"
#include "rl/rollout.hpp"

namespace automdt::rl {

class DiscretePpoAgent {
 public:
  DiscretePpoAgent(std::size_t state_dim, int max_threads,
                   PpoConfig config = {});

  TrainResult train(Env& env, double r_max,
                    const EpisodeCallback& on_episode = nullptr);

  ConcurrencyTuple act(const std::vector<double>& state, Rng& rng,
                       bool deterministic = false) const;

  nn::StateDict state_dict() { return nn::state_dict(*policy_); }

  DiscretePolicyNetwork& policy() { return *policy_; }
  int max_threads() const { return max_threads_; }

 private:
  void update_networks(const RolloutMemory& memory);

  PpoConfig config_;
  int max_threads_;
  Rng rng_;
  std::unique_ptr<DiscretePolicyNetwork> policy_;
  std::unique_ptr<ValueNetwork> value_;
  std::unique_ptr<nn::Adam> optimizer_;
};

}  // namespace automdt::rl
