// Deterministic policy evaluation: run a trained agent against an Env for a
// fixed horizon (several resets) and summarize reward, throughput, and the
// concurrency it settles on. Benches and tests use this instead of ad-hoc
// loops so "how good is this policy" means the same thing everywhere.
#pragma once

#include <functional>

#include "common/env.hpp"
#include "common/stats.hpp"

namespace automdt::rl {

struct EvaluationResult {
  /// Mean per-step reward over all evaluation steps, normalized by r_max.
  double mean_reward = 0.0;
  double reward_stddev = 0.0;
  /// Mean per-stage throughputs over the steady half of each episode.
  StageThroughputs mean_throughput_mbps{};
  /// Mean total thread count over the steady half.
  double mean_total_threads = 0.0;
  /// Most common (modal) tuple observed in the steady half.
  ConcurrencyTuple settled_tuple{};
  int episodes = 0;
  int steps = 0;
};

/// A policy is any state -> tuple function (usually a lambda over an agent's
/// deterministic act()).
using Policy = std::function<ConcurrencyTuple(const std::vector<double>&)>;

struct EvaluationOptions {
  int episodes = 3;
  int steps_per_episode = 30;
  /// Steps at the start of each episode excluded from the steady-state
  /// statistics (ramp/transient).
  int warmup_steps = 10;
};

EvaluationResult evaluate_policy(Env& env, const Policy& policy, double r_max,
                                 Rng& rng, EvaluationOptions options = {});

}  // namespace automdt::rl
