#include "core/automdt.hpp"

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "nn/serialize.hpp"

namespace automdt::core {
namespace {

// Observation scale and R_max travel inside the checkpoint as 1xN meta
// matrices so a saved agent is usable without re-running exploration.
constexpr const char* kMetaScaleKey = "meta.observation_scale";
constexpr const char* kMetaRmaxKey = "meta.r_max";

nn::Matrix scale_to_matrix(const ObservationScale& s) {
  nn::Matrix m(1, 4);
  m(0, 0) = static_cast<double>(s.max_threads);
  m(0, 1) = s.rate_scale_mbps;
  m(0, 2) = s.sender_capacity;
  m(0, 3) = s.receiver_capacity;
  return m;
}

ObservationScale matrix_to_scale(const nn::Matrix& m) {
  if (m.rows() != 1 || m.cols() != 4)
    throw std::runtime_error("bad observation-scale entry in checkpoint");
  ObservationScale s;
  s.max_threads = static_cast<int>(m(0, 0));
  s.rate_scale_mbps = m(0, 1);
  s.sender_capacity = m(0, 2);
  s.receiver_capacity = m(0, 3);
  return s;
}

}  // namespace

AutoMdt AutoMdt::train_offline(Env& real_env, const PipelineConfig& config,
                               OfflineTrainingReport* report) {
  Rng rng(config.seed);

  // §IV-A: 10-minute random-threads exploration + logging.
  probe::Explorer explorer(config.explorer);
  probe::ProbeLog log = explorer.run(real_env, rng);
  probe::LinkEstimates estimates =
      probe::LinkEstimates::from_log(log, config.utility);
  LOG_INFO("exploration done: " << estimates);

  // §IV-C: initialize the dynamics simulator from the estimates.
  sim::SimScenario scenario = probe::make_scenario(
      estimates, config.buffers, config.max_threads, config.utility);

  rl::TrainResult training;
  AutoMdt out = train_on_scenario(scenario, config, &training);

  if (report) {
    report->probe_log = std::move(log);
    report->estimates = estimates;
    report->scenario = scenario;
    report->training = std::move(training);
  }
  return out;
}

AutoMdt AutoMdt::train_on_scenario(const sim::SimScenario& scenario,
                                   const PipelineConfig& config,
                                   rl::TrainResult* training) {
  sim::SimulatorEnv env(scenario, config.sim_options);

  AutoMdt out;
  out.agent_ = std::make_shared<rl::PpoAgent>(kObservationSize,
                                              scenario.max_threads,
                                              config.ppo);
  out.training_scale_ = env.observation_scale();
  out.r_max_ = scenario.theoretical_max_reward();
  if (config.telemetry_registry)
    out.agent_->set_telemetry(config.telemetry_registry,
                              config.telemetry_recorder);
  if (config.trace_exporter)
    out.agent_->set_trace_exporter(config.trace_exporter);

  // §IV-E: PPO training with the R_max-based convergence criterion.
  // num_envs > 1 selects the vectorized collector: N simulator instances of
  // the same scenario stepped concurrently, each on its own RNG stream.
  rl::TrainResult result;
  if (config.ppo.num_envs > 1) {
    std::vector<std::unique_ptr<Env>> envs;
    envs.reserve(static_cast<std::size_t>(config.ppo.num_envs));
    for (int i = 0; i < config.ppo.num_envs; ++i)
      envs.push_back(
          std::make_unique<sim::SimulatorEnv>(scenario, config.sim_options));
    rl::VecEnv vec(std::move(envs), config.ppo.seed);
    result = out.agent_->train(vec, out.r_max_);
  } else {
    result = out.agent_->train(env, out.r_max_);
  }
  LOG_INFO("offline training: " << result.episodes_run << " episodes, best "
                                << result.best_reward << " of R_max, "
                                << (result.converged ? "converged"
                                                     : "episode cap"));
  if (training) *training = std::move(result);
  return out;
}

bool AutoMdt::save(const std::string& path) const {
  nn::StateDict state = agent_->state_dict();
  state.emplace(kMetaScaleKey, scale_to_matrix(training_scale_));
  nn::Matrix rmax(1, 1);
  rmax(0, 0) = r_max_;
  state.emplace(kMetaRmaxKey, rmax);
  return nn::save_state_dict(state, path);
}

AutoMdt AutoMdt::load(const std::string& path, const PipelineConfig& config) {
  nn::StateDict state = nn::load_state_dict_file(path);

  AutoMdt out;
  const auto scale_it = state.find(kMetaScaleKey);
  if (scale_it == state.end())
    throw std::runtime_error("checkpoint missing observation scale: " + path);
  out.training_scale_ = matrix_to_scale(scale_it->second);

  const auto rmax_it = state.find(kMetaRmaxKey);
  out.r_max_ = rmax_it != state.end() ? rmax_it->second(0, 0) : 0.0;

  out.agent_ = std::make_shared<rl::PpoAgent>(
      kObservationSize, out.training_scale_.max_threads, config.ppo);
  out.agent_->load_state_dict(state);
  return out;
}

std::unique_ptr<optimizers::AutoMdtController> AutoMdt::make_controller(
    bool deterministic) const {
  return std::make_unique<optimizers::AutoMdtController>(agent_,
                                                         deterministic);
}

}  // namespace automdt::core
