#include "core/config_bindings.hpp"

#include <set>

#include "common/units.hpp"

namespace automdt::core {
namespace {

void apply_storage(testbed::StorageConfig& s, const Config& c,
                   const std::string& prefix) {
  s.per_thread_mbps = c.get_double(prefix + ".per_thread_mbps",
                                   s.per_thread_mbps);
  s.aggregate_mbps = c.get_double(prefix + ".aggregate_mbps",
                                  s.aggregate_mbps);
  s.contention_knee = static_cast<int>(
      c.get_int(prefix + ".contention_knee", s.contention_knee));
  s.contention_factor = c.get_double(prefix + ".contention_factor",
                                     s.contention_factor);
  s.per_file_overhead_s = c.get_double(prefix + ".per_file_overhead_s",
                                       s.per_file_overhead_s);
}

const std::set<std::string>& known_testbed_keys() {
  static const std::set<std::string> keys = {
      "source.per_thread_mbps", "source.aggregate_mbps",
      "source.contention_knee", "source.contention_factor",
      "source.per_file_overhead_s", "dest.per_thread_mbps",
      "dest.aggregate_mbps", "dest.contention_knee",
      "dest.contention_factor", "dest.per_file_overhead_s",
      "link.per_stream_mbps", "link.aggregate_mbps", "link.rtt_ms",
      "link.contention_knee", "link.contention_factor", "link.jitter",
      "link.background_mbps", "buffers.sender_gib", "buffers.receiver_gib",
      "max_threads", "storage_jitter", "utility.k"};
  return keys;
}

}  // namespace

testbed::TestbedConfig apply_testbed_overrides(testbed::TestbedConfig base,
                                               const Config& config) {
  // Reject unknown testbed-ish keys (anything that is not a ppo.* or
  // engine.* key and not recognized here is almost certainly a typo).
  for (const std::string& key : config.keys()) {
    if (key.rfind("ppo.", 0) == 0) continue;
    if (key.rfind("engine.", 0) == 0) continue;
    if (!known_testbed_keys().count(key))
      throw ConfigError("unknown config key: " + key);
  }

  apply_storage(base.source_storage, config, "source");
  apply_storage(base.dest_storage, config, "dest");

  base.link.per_stream_mbps =
      config.get_double("link.per_stream_mbps", base.link.per_stream_mbps);
  base.link.aggregate_mbps =
      config.get_double("link.aggregate_mbps", base.link.aggregate_mbps);
  base.link.rtt_ms = config.get_double("link.rtt_ms", base.link.rtt_ms);
  base.link.contention_knee = static_cast<int>(
      config.get_int("link.contention_knee", base.link.contention_knee));
  base.link.contention_factor = config.get_double(
      "link.contention_factor", base.link.contention_factor);
  base.link.jitter = config.get_double("link.jitter", base.link.jitter);
  base.link.background_mbps =
      config.get_double("link.background_mbps", base.link.background_mbps);

  if (config.has("buffers.sender_gib"))
    base.sender_buffer_bytes = config.get_double("buffers.sender_gib") * kGiB;
  if (config.has("buffers.receiver_gib"))
    base.receiver_buffer_bytes =
        config.get_double("buffers.receiver_gib") * kGiB;

  base.max_threads =
      static_cast<int>(config.get_int("max_threads", base.max_threads));
  base.storage_jitter =
      config.get_double("storage_jitter", base.storage_jitter);
  base.utility.k = config.get_double("utility.k", base.utility.k);
  return base;
}

rl::PpoConfig apply_ppo_overrides(rl::PpoConfig base, const Config& config) {
  base.max_episodes = static_cast<int>(
      config.get_int("ppo.max_episodes", base.max_episodes));
  base.steps_per_episode = static_cast<int>(
      config.get_int("ppo.steps_per_episode", base.steps_per_episode));
  base.lr = config.get_double("ppo.lr", base.lr);
  base.gamma = config.get_double("ppo.gamma", base.gamma);
  base.clip_epsilon =
      config.get_double("ppo.clip_epsilon", base.clip_epsilon);
  base.entropy_coef =
      config.get_double("ppo.entropy_coef", base.entropy_coef);
  base.update_epochs = static_cast<int>(
      config.get_int("ppo.update_epochs", base.update_epochs));
  base.episodes_per_batch = static_cast<int>(
      config.get_int("ppo.episodes_per_batch", base.episodes_per_batch));
  base.hidden_dim = static_cast<std::size_t>(
      config.get_int("ppo.hidden_dim",
                     static_cast<long long>(base.hidden_dim)));
  base.policy_blocks = static_cast<int>(
      config.get_int("ppo.policy_blocks", base.policy_blocks));
  base.value_blocks = static_cast<int>(
      config.get_int("ppo.value_blocks", base.value_blocks));
  base.stagnation_episodes = static_cast<int>(
      config.get_int("ppo.stagnation_episodes", base.stagnation_episodes));
  base.num_threads = static_cast<int>(
      config.get_int("ppo.num_threads", base.num_threads));
  base.num_envs =
      static_cast<int>(config.get_int("ppo.num_envs", base.num_envs));
  base.seed = static_cast<std::uint64_t>(
      config.get_int("ppo.seed", static_cast<long long>(base.seed)));
  return base;
}

transfer::EngineConfig apply_engine_overrides(transfer::EngineConfig base,
                                              const Config& config) {
  if (config.has("engine.io_backend")) {
    const std::string backend = config.get_string("engine.io_backend");
    if (backend == "uring") {
      base.io_backend = transfer::IoBackend::kUring;
    } else if (backend == "syscall") {
      base.io_backend = transfer::IoBackend::kSyscall;
    } else {
      throw ConfigError("engine.io_backend must be syscall or uring, got: " +
                        backend);
    }
  }
  if (config.has("engine.chunk_kb"))
    base.chunk_bytes = static_cast<std::size_t>(
        config.get_int("engine.chunk_kb")) * 1024;
  base.lock_free_staging =
      config.get_bool("engine.lock_free_staging", base.lock_free_staging);
  base.fill_payload =
      config.get_bool("engine.fill_payload", base.fill_payload);
  base.verify_payload =
      config.get_bool("engine.verify_payload", base.verify_payload);
  base.tcp.sendfile = config.get_bool("engine.sendfile", base.tcp.sendfile);
  base.debug_poison_leases = config.get_bool("engine.debug_poison_leases",
                                             base.debug_poison_leases);
  base.file_io.source_dir =
      config.get_string("engine.source_dir", base.file_io.source_dir);
  base.file_io.sink_dir =
      config.get_string("engine.sink_dir", base.file_io.sink_dir);
  return base;
}

}  // namespace automdt::core
