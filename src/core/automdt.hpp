// AutoMDT public API — the facade a downstream user programs against.
//
// Usage (see examples/quickstart.cpp):
//
//   // 1. Point at a transfer environment (here: the FABRIC-like emulator).
//   auto preset = testbed::fabric_ncsa_tacc();
//   testbed::EmulatedEnvironment env(preset.config, testbed::Dataset::infinite());
//
//   // 2. Offline pipeline: 10-minute random-threads exploration, link
//   //    estimates, simulator construction, PPO training (paper §IV).
//   core::PipelineConfig cfg;
//   core::OfflineTrainingReport report;
//   core::AutoMdt automdt = core::AutoMdt::train_offline(env, cfg, &report);
//
//   // 3. Production: drive a real transfer with the trained controller.
//   testbed::EmulatedEnvironment transfer_env(preset.config,
//                                             testbed::Dataset::paper_fig3());
//   automdt.align_environment(transfer_env);
//   auto controller = automdt.make_controller();
//   Rng rng(7);
//   auto result = optimizers::run_transfer(transfer_env, *controller, rng);
#pragma once

#include <memory>
#include <string>

#include "common/env.hpp"
#include "optimizers/automdt_controller.hpp"
#include "probe/explorer.hpp"
#include "probe/scenario_factory.hpp"
#include "rl/ppo_agent.hpp"
#include "sim/simulator_env.hpp"
#include "testbed/environment.hpp"

namespace automdt::core {

struct PipelineConfig {
  probe::ExplorerOptions explorer{};
  probe::BufferSpec buffers{};
  rl::PpoConfig ppo{};
  sim::SimulatorEnvOptions sim_options{};
  UtilityParams utility{};
  int max_threads = 30;
  std::uint64_t seed = 1234;
  /// Optional training telemetry: when `telemetry_registry` is set the PPO
  /// agent publishes per-update diagnostics (ppo.approx_kl,
  /// ppo.clip_fraction, ppo.entropy, ppo.episode_reward) into it; when
  /// `telemetry_recorder` is also set, one recorder row lands per network
  /// update (`automdt train --telemetry-csv`). Both must outlive training.
  telemetry::MetricsRegistry* telemetry_registry = nullptr;
  telemetry::TimeSeriesRecorder* telemetry_recorder = nullptr;
  /// Optional Chrome-trace span collector (`automdt train --trace-out`):
  /// rollout / GAE / update phases land as spans on "trainer" tracks. Must
  /// outlive training.
  telemetry::TraceExporter* trace_exporter = nullptr;
};

/// Everything the offline pipeline produced, for reporting and benches.
struct OfflineTrainingReport {
  probe::ProbeLog probe_log;
  probe::LinkEstimates estimates;
  sim::SimScenario scenario;
  rl::TrainResult training;
};

class AutoMdt {
 public:
  /// Full offline pipeline (§IV): random-threads exploration against
  /// `real_env`, derive link estimates, build the dynamics simulator, train
  /// the PPO agent in it. `report`, if non-null, receives all intermediates.
  static AutoMdt train_offline(Env& real_env, const PipelineConfig& config,
                               OfflineTrainingReport* report = nullptr);

  /// Train directly on a known simulator scenario (skips exploration; used
  /// when estimates are already available or in tests).
  static AutoMdt train_on_scenario(const sim::SimScenario& scenario,
                                   const PipelineConfig& config,
                                   rl::TrainResult* training = nullptr);

  /// Persist / restore the trained agent plus the observation normalization
  /// it was trained with.
  bool save(const std::string& path) const;
  static AutoMdt load(const std::string& path, const PipelineConfig& config);

  /// Production controller (§IV-F). The returned controller shares the agent.
  std::unique_ptr<optimizers::AutoMdtController> make_controller(
      bool deterministic = false) const;

  /// Production environments must present observations with the scale the
  /// agent was trained under; this applies it.
  void align_environment(testbed::EmulatedEnvironment& env) const {
    env.set_observation_scale(training_scale_);
  }

  const ObservationScale& training_scale() const { return training_scale_; }
  std::shared_ptr<rl::PpoAgent> agent() const { return agent_; }
  double r_max() const { return r_max_; }

 private:
  AutoMdt() = default;

  std::shared_ptr<rl::PpoAgent> agent_;
  ObservationScale training_scale_{};
  double r_max_ = 0.0;
};

}  // namespace automdt::core
