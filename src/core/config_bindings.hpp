// Bind flat Config files to the typed configuration structs, so the CLI and
// deployments can override any scenario / training knob from a text file.
//
// Recognized keys (all optional; unknown keys are rejected so typos fail
// loudly):
//
//   testbed:   source.per_thread_mbps, source.aggregate_mbps,
//              source.contention_knee, source.contention_factor,
//              source.per_file_overhead_s, dest.* (same fields),
//              link.per_stream_mbps, link.aggregate_mbps, link.rtt_ms,
//              link.contention_knee, link.contention_factor, link.jitter,
//              link.background_mbps, buffers.sender_gib,
//              buffers.receiver_gib, max_threads, storage_jitter, utility.k
//
//   ppo:       ppo.max_episodes, ppo.steps_per_episode, ppo.lr, ppo.gamma,
//              ppo.clip_epsilon, ppo.entropy_coef, ppo.update_epochs,
//              ppo.episodes_per_batch, ppo.hidden_dim, ppo.policy_blocks,
//              ppo.value_blocks, ppo.stagnation_episodes, ppo.seed
//
//   engine:    engine.io_backend (syscall|uring), engine.chunk_kb,
//              engine.lock_free_staging, engine.fill_payload,
//              engine.verify_payload, engine.sendfile,
//              engine.debug_poison_leases, engine.source_dir,
//              engine.sink_dir
#pragma once

#include "common/config.hpp"
#include "rl/ppo_config.hpp"
#include "testbed/environment.hpp"
#include "transfer/engine.hpp"

namespace automdt::core {

/// Apply config overrides onto a base testbed config (usually a preset's).
/// Throws ConfigError on unknown testbed.* keys.
testbed::TestbedConfig apply_testbed_overrides(testbed::TestbedConfig base,
                                               const Config& config);

/// Apply ppo.* overrides onto a base PPO config.
rl::PpoConfig apply_ppo_overrides(rl::PpoConfig base, const Config& config);

/// Apply engine.* overrides onto a base transfer-engine config (the real
/// data-plane knobs: I/O backend seam, chunk size, staging backend, file
/// endpoints). Throws ConfigError on an unrecognized engine.io_backend.
transfer::EngineConfig apply_engine_overrides(transfer::EngineConfig base,
                                              const Config& config);

}  // namespace automdt::core
