#include "transfer/real_env.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace automdt::transfer {

RealTransferEnv::RealTransferEnv(RealEnvConfig config)
    : config_(std::move(config)) {
  scale_.max_threads = config_.engine.max_threads;
  // Normalize throughput features against the fastest configured stage cap,
  // or an arbitrary 1 Gbps if everything is unlimited.
  const ConcurrencyTuple full{config_.engine.max_threads,
                              config_.engine.max_threads,
                              config_.engine.max_threads};
  double fastest = 0.0;
  fastest = std::max(fastest, config_.engine.read.rate_for(full.read));
  fastest = std::max(fastest, config_.engine.network.rate_for(full.network));
  fastest = std::max(fastest, config_.engine.write.rate_for(full.write));
  scale_.rate_scale_mbps = fastest > 0.0 ? to_mbps(fastest) : 1000.0;
  scale_.sender_capacity = config_.engine.sender_buffer_bytes;
  scale_.receiver_capacity = config_.engine.receiver_buffer_bytes;
}

RealTransferEnv::~RealTransferEnv() {
  if (session_) session_->stop();
}

std::vector<double> RealTransferEnv::reset(Rng& rng) {
  (void)rng;  // the engine's behaviour is driven by real thread scheduling
  if (session_) session_->stop();
  session_ = std::make_unique<TransferSession>(config_.engine,
                                               config_.file_sizes_bytes);
  last_action_ = ConcurrencyTuple{1, 1, 1};
  session_->start(last_action_);
  last_stats_ = session_->stats();
  elapsed_s_ = 0.0;
  return build_observation(
      scale_, last_action_, StageThroughputs{},
      config_.engine.sender_buffer_bytes,
      config_.engine.receiver_buffer_bytes);
}

StageThroughputs RealTransferEnv::probe_throughputs(const TransferStats& now,
                                                    const TransferStats& before,
                                                    double dt_s) const {
  if (dt_s <= 0.0) return {};
  return {to_mbps((now.bytes_read - before.bytes_read) / dt_s),
          to_mbps((now.bytes_sent - before.bytes_sent) / dt_s),
          to_mbps((now.bytes_written - before.bytes_written) / dt_s)};
}

EnvStep RealTransferEnv::step(const ConcurrencyTuple& action) {
  last_action_ = action.clamped(1, config_.engine.max_threads);
  session_->set_concurrency(last_action_);

  const auto t0 = std::chrono::steady_clock::now();
  // Finish early if the transfer completes mid-interval.
  session_->wait_finished(config_.probe_interval_s);
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  elapsed_s_ += dt;

  const TransferStats now = session_->stats();
  const StageThroughputs tpt = probe_throughputs(now, last_stats_, dt);
  last_stats_ = now;

  const double chunk = config_.engine.chunk_bytes;
  const double sender_free = std::max(
      0.0, config_.engine.sender_buffer_bytes -
               static_cast<double>(now.sender_queue_chunks) * chunk);
  const double receiver_free = std::max(
      0.0, config_.engine.receiver_buffer_bytes -
               static_cast<double>(now.receiver_queue_chunks) * chunk);

  EnvStep out;
  out.observation = build_observation(scale_, last_action_, tpt, sender_free,
                                      receiver_free);
  out.throughputs_mbps = tpt;
  out.reward = total_utility(tpt, last_action_, config_.utility);
  out.done = now.finished;
  return out;
}

}  // namespace automdt::transfer
