#include "transfer/token_bucket.hpp"

#include <algorithm>

namespace automdt::transfer {

TokenBucket::TokenBucket(double rate_bytes_per_s, double burst_bytes)
    : rate_(rate_bytes_per_s),
      burst_(burst_bytes > 0.0 ? burst_bytes
                               : std::max(rate_bytes_per_s * 0.25, 64.0 * 1024)),
      tokens_(burst_),
      last_refill_(Clock::now()),
      throttled_(rate_bytes_per_s > 0.0) {}

void TokenBucket::refill_locked(Clock::time_point now) {
  const double dt = std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  if (rate_ > 0.0) tokens_ = std::min(burst_, tokens_ + rate_ * dt);
}

bool TokenBucket::acquire_locked(double bytes) {
  std::unique_lock lock(mutex_, std::adopt_lock);
  // A request larger than the burst could never be satisfied (tokens cap at
  // burst); widen the bucket so oversized chunks still flow at `rate_`.
  burst_ = std::max(burst_, bytes);
  for (;;) {
    if (shutdown_.load(std::memory_order_relaxed)) return false;
    if (rate_ <= 0.0) return true;  // unlimited
    refill_locked(Clock::now());
    if (tokens_ >= bytes) {
      tokens_ -= bytes;
      return true;
    }
    // Sleep roughly until enough tokens will have accumulated; re-check on
    // wake (rate may have changed, shutdown may have been requested).
    const double deficit = bytes - tokens_;
    const double wait_s = std::clamp(deficit / rate_, 1e-4, 0.25);
    waits_.fetch_add(1, std::memory_order_relaxed);
    cv_.wait_for(lock, std::chrono::duration<double>(wait_s));
  }
}

bool TokenBucket::acquire(double bytes) {
  // Unthrottled fast path: two atomic loads, no mutex, no syscall.
  if (!throttled_.load(std::memory_order_acquire))
    return !shutdown_.load(std::memory_order_acquire);
  mutex_.lock();
  return acquire_locked(bytes);
}

bool TokenBucket::acquire_batch(double total_bytes, int grants) {
  if (grants <= 0) return !shutdown_.load(std::memory_order_acquire);
  if (!throttled_.load(std::memory_order_acquire))
    return !shutdown_.load(std::memory_order_acquire);
  mutex_.lock();
  return acquire_locked(total_bytes);
}

bool TokenBucket::try_acquire(double bytes) {
  if (!throttled_.load(std::memory_order_acquire))
    return !shutdown_.load(std::memory_order_acquire);
  std::lock_guard lock(mutex_);
  if (shutdown_.load(std::memory_order_relaxed)) return false;
  if (rate_ <= 0.0) return true;
  burst_ = std::max(burst_, bytes);
  refill_locked(Clock::now());
  if (tokens_ >= bytes) {
    tokens_ -= bytes;
    return true;
  }
  return false;
}

void TokenBucket::set_rate(double rate_bytes_per_s) {
  {
    std::lock_guard lock(mutex_);
    refill_locked(Clock::now());
    rate_ = rate_bytes_per_s;
    throttled_.store(rate_bytes_per_s > 0.0, std::memory_order_release);
  }
  cv_.notify_all();
}

double TokenBucket::rate() const {
  std::lock_guard lock(mutex_);
  return rate_;
}

void TokenBucket::shutdown() {
  {
    std::lock_guard lock(mutex_);
    shutdown_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
}

}  // namespace automdt::transfer
