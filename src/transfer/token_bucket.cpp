#include "transfer/token_bucket.hpp"

#include <algorithm>

namespace automdt::transfer {

TokenBucket::TokenBucket(double rate_bytes_per_s, double burst_bytes)
    : rate_(rate_bytes_per_s),
      burst_(burst_bytes > 0.0 ? burst_bytes
                               : std::max(rate_bytes_per_s * 0.25, 64.0 * 1024)),
      tokens_(burst_),
      last_refill_(Clock::now()) {}

void TokenBucket::refill_locked(Clock::time_point now) {
  const double dt = std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  if (rate_ > 0.0) tokens_ = std::min(burst_, tokens_ + rate_ * dt);
}

bool TokenBucket::acquire(double bytes) {
  std::unique_lock lock(mutex_);
  // A request larger than the burst could never be satisfied (tokens cap at
  // burst); widen the bucket so oversized chunks still flow at `rate_`.
  burst_ = std::max(burst_, bytes);
  for (;;) {
    if (shutdown_) return false;
    if (rate_ <= 0.0) return true;  // unlimited
    refill_locked(Clock::now());
    if (tokens_ >= bytes) {
      tokens_ -= bytes;
      return true;
    }
    // Sleep roughly until enough tokens will have accumulated; re-check on
    // wake (rate may have changed, shutdown may have been requested).
    const double deficit = bytes - tokens_;
    const double wait_s = std::clamp(deficit / rate_, 1e-4, 0.25);
    cv_.wait_for(lock, std::chrono::duration<double>(wait_s));
  }
}

bool TokenBucket::try_acquire(double bytes) {
  std::lock_guard lock(mutex_);
  if (shutdown_) return false;
  if (rate_ <= 0.0) return true;
  burst_ = std::max(burst_, bytes);
  refill_locked(Clock::now());
  if (tokens_ >= bytes) {
    tokens_ -= bytes;
    return true;
  }
  return false;
}

void TokenBucket::set_rate(double rate_bytes_per_s) {
  {
    std::lock_guard lock(mutex_);
    refill_locked(Clock::now());
    rate_ = rate_bytes_per_s;
  }
  cv_.notify_all();
}

double TokenBucket::rate() const {
  std::lock_guard lock(mutex_);
  return rate_;
}

void TokenBucket::shutdown() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

}  // namespace automdt::transfer
