// In-process RPC channel between the two DTN agents.
//
// Paper §IV-D.1: "Every DTN measures its available buffer space with a system
// call and the receiver sends the result to its peer over the RPC channel."
// In a two-host deployment this is a TCP control connection; here it is an
// in-process duplex message channel with optional simulated one-way latency,
// so the sender-side optimizer sees receiver state that is *slightly stale* —
// the same property a WAN control channel has.
//
// Message types cover the control-plane traffic a modular transfer tool
// needs: buffer status (request/response), concurrency updates pushed from
// the optimizer to the remote stage pools, per-interval throughput reports,
// and shutdown.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <variant>

#include "common/concurrency_tuple.hpp"
#include "transfer/rpc_messages.hpp"

namespace automdt::transfer {

/// One direction of the duplex channel: a latency-enforcing message queue.
/// Messages become visible to receive() only after `latency` has elapsed
/// since send().
class RpcPipe {
 public:
  explicit RpcPipe(double latency_s = 0.0) : latency_s_(latency_s) {}

  void send(RpcMessage message);

  /// Blocks until a message is deliverable or the pipe is closed and
  /// drained. Returns nullopt only in the latter case.
  std::optional<RpcMessage> receive();

  /// Non-blocking: nullopt if nothing is deliverable *yet*.
  std::optional<RpcMessage> try_receive();

  void close();
  bool closed() const;
  std::size_t pending() const;
  double latency_s() const { return latency_s_; }

 private:
  using Clock = std::chrono::steady_clock;
  struct Entry {
    Clock::time_point deliver_at;
    RpcMessage message;
  };

  double latency_s_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Entry> queue_;
  bool closed_ = false;
};

/// The duplex channel: two pipes plus the two endpoints' views.
class RpcChannel {
 public:
  explicit RpcChannel(double latency_s = 0.0)
      : to_receiver_(latency_s), to_sender_(latency_s) {}

  /// Sender-DTN endpoint view.
  void sender_send(RpcMessage m) { to_receiver_.send(std::move(m)); }
  std::optional<RpcMessage> sender_receive() { return to_sender_.receive(); }
  std::optional<RpcMessage> sender_try_receive() {
    return to_sender_.try_receive();
  }

  /// Receiver-DTN endpoint view.
  void receiver_send(RpcMessage m) { to_sender_.send(std::move(m)); }
  std::optional<RpcMessage> receiver_receive() {
    return to_receiver_.receive();
  }
  std::optional<RpcMessage> receiver_try_receive() {
    return to_receiver_.try_receive();
  }

  void close() {
    to_receiver_.close();
    to_sender_.close();
  }

 private:
  RpcPipe to_receiver_;
  RpcPipe to_sender_;
};

/// RpcEndpoint view over one side of a shared in-process RpcChannel — the
/// same object DtnPair used directly before the transport seam existed.
class InProcessRpcEndpoint final : public RpcEndpoint {
 public:
  InProcessRpcEndpoint(std::shared_ptr<RpcChannel> channel, bool sender_side)
      : channel_(std::move(channel)), sender_side_(sender_side) {}

  void send(RpcMessage message) override {
    if (sender_side_)
      channel_->sender_send(std::move(message));
    else
      channel_->receiver_send(std::move(message));
  }
  std::optional<RpcMessage> receive() override {
    return sender_side_ ? channel_->sender_receive()
                        : channel_->receiver_receive();
  }
  std::optional<RpcMessage> try_receive() override {
    return sender_side_ ? channel_->sender_try_receive()
                        : channel_->receiver_try_receive();
  }
  void close() override { channel_->close(); }

 private:
  std::shared_ptr<RpcChannel> channel_;
  bool sender_side_;
};

/// Connected {sender, receiver} endpoints over a fresh in-process channel
/// with `latency_s` one-way delivery latency.
std::pair<std::unique_ptr<RpcEndpoint>, std::unique_ptr<RpcEndpoint>>
make_inprocess_rpc_pair(double latency_s);

}  // namespace automdt::transfer
