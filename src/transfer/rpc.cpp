#include "transfer/rpc.hpp"

namespace automdt::transfer {

void RpcPipe::send(RpcMessage message) {
  const auto deliver_at =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(latency_s_));
  {
    std::lock_guard lock(mutex_);
    if (closed_) return;  // messages to a closed pipe are dropped
    queue_.push_back({deliver_at, std::move(message)});
  }
  cv_.notify_all();
}

std::optional<RpcMessage> RpcPipe::receive() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (!queue_.empty()) {
      const auto now = Clock::now();
      if (queue_.front().deliver_at <= now) {
        RpcMessage out = std::move(queue_.front().message);
        queue_.pop_front();
        return out;
      }
      // Head not deliverable yet: wait until its delivery time (or new
      // state).
      cv_.wait_until(lock, queue_.front().deliver_at);
      continue;
    }
    if (closed_) return std::nullopt;
    cv_.wait(lock);
  }
}

std::optional<RpcMessage> RpcPipe::try_receive() {
  std::lock_guard lock(mutex_);
  if (queue_.empty() || queue_.front().deliver_at > Clock::now())
    return std::nullopt;
  RpcMessage out = std::move(queue_.front().message);
  queue_.pop_front();
  return out;
}

void RpcPipe::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RpcPipe::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::size_t RpcPipe::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::pair<std::unique_ptr<RpcEndpoint>, std::unique_ptr<RpcEndpoint>>
make_inprocess_rpc_pair(double latency_s) {
  auto channel = std::make_shared<RpcChannel>(latency_s);
  return {std::make_unique<InProcessRpcEndpoint>(channel, /*sender_side=*/true),
          std::make_unique<InProcessRpcEndpoint>(channel,
                                                 /*sender_side=*/false)};
}

}  // namespace automdt::transfer
