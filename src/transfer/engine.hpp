// The real threaded transfer engine: a laptop-scale, memory-to-memory
// incarnation of the modular architecture with genuine worker threads.
//
//   reader workers  : claim (file, offset) chunks, fill payloads, rate-limit
//                     through the read bucket, push into the bounded sender
//                     staging queue
//   network workers : pop sender queue -> rate-limit through the network
//                     bucket -> push into the bounded receiver staging queue
//                     (InProcess backend) or serialize the chunk and send it
//                     over the worker's own TCP stream to the receiver-side
//                     acceptor, which decodes and pushes it (Tcp backend)
//   writer workers  : pop receiver queue -> rate-limit through the write
//                     bucket -> verify payload checksum -> count bytes
//
// The network stage is a selectable backend (EngineConfig::backend): the
// default InProcess hand-off is bit-identical to the original engine; Tcp
// moves every chunk through real loopback sockets with length-prefixed,
// checksummed frames (src/net/), one stream per network worker, streams
// parked/resumed live as set_concurrency() retunes n_n.
//
// Hot-path design (DESIGN.md §9): per-chunk coordination cost must be
// dominated by the payload, not the engine. Staging queues are lock-free
// Vyukov rings with a spin-then-park blocking shell (common/mpmc_ring.hpp;
// EngineConfig::lock_free_staging = false keeps the original mutex queue as
// the measurable baseline for bench_engine_hotpath). Chunk claiming is one
// atomic cursor. Token buckets are lock-free when a stage is unthrottled,
// and network workers admit whole coalesced batches with a single bucket
// round-trip. Under the Tcp backend those batches leave as one gathered
// write (writev) per batch, bounded by TcpBackendOptions::max_coalesced_bytes.
//
// Concurrency is *live-tunable*: each stage pre-spawns max_threads workers
// and gates them behind an active-count (workers with id >= active park on a
// condition variable), so set_concurrency() takes effect within one chunk.
// This is how a ConcurrencyController drives real threads in examples and
// integration tests, while the virtual-time emulator handles Gbps-scale
// experiments.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/concurrency_tuple.hpp"
#include "common/mpmc_queue.hpp"
#include "common/mpmc_ring.hpp"
#include "common/units.hpp"
#include "telemetry/bottleneck.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/stage_clock.hpp"
#include "telemetry/trace.hpp"
#include "transfer/token_bucket.hpp"

namespace automdt::net {
class StreamPool;
class StreamAcceptor;
}  // namespace automdt::net

namespace automdt::telemetry {
class ClockModel;
class FlightRecorder;
class TraceExporter;
}  // namespace automdt::telemetry

namespace automdt::transfer {

/// One staged unit of data in flight.
struct Chunk {
  std::uint64_t file_id = 0;
  std::uint64_t offset = 0;
  std::uint32_t size = 0;
  std::uint64_t checksum = 0;
  /// Chunk-lifecycle trace stamp: steady-clock ns at the moment the chunk
  /// entered the staging queue it currently sits in, 0 = not sampled. Set by
  /// the producing stage for 1-in-N chunks (EngineConfig::telemetry), read by
  /// the consuming stage to attribute queue-wait vs service time. Process-
  /// local only — it crosses the TCP wire only when
  /// TelemetryOptions::wire_stamp flags the frame (otherwise the receiver
  /// re-stamps).
  std::uint64_t trace_enqueue_ns = 0;
  /// End-to-end trace origin: steady-clock ns when the reader stage first
  /// touched this chunk (0 = not sampled). Unlike trace_enqueue_ns it is
  /// never re-stamped, so the writer can close an end-to-end span against
  /// it. Under the Tcp backend with wire_stamp on, the receiver shifts the
  /// sender's origin into the local timebase via the clock-sync offset.
  std::uint64_t trace_origin_ns = 0;
  std::vector<std::byte> payload;
  /// Zero-copy alternative to `payload` (io_uring backend): a refcounted
  /// view of the arena block the bytes were read (or received) into. When
  /// valid the lease IS the payload and the vector stays empty; the bytes
  /// are filled exactly once and never memcpy'd as they move reader →
  /// staging ring → net scatter list → writer. Consumers go through
  /// payload_data()/payload_size() so both representations look alike.
  BufferLease lease;

  const std::byte* payload_data() const {
    return lease.valid() ? lease.data() : payload.data();
  }
  std::size_t payload_size() const {
    return lease.valid() ? lease.size() : payload.size();
  }
};

struct StageThrottle {
  double per_thread_bytes_per_s = 0.0;  // <= 0: unlimited
  double aggregate_bytes_per_s = 0.0;   // <= 0: unlimited

  double rate_for(int threads) const {
    double r = per_thread_bytes_per_s > 0.0
                   ? per_thread_bytes_per_s * threads
                   : 0.0;
    if (aggregate_bytes_per_s > 0.0)
      r = r > 0.0 ? std::min(r, aggregate_bytes_per_s)
                  : aggregate_bytes_per_s;
    return r;  // 0 = unlimited
  }
};

/// How chunks cross the network stage.
enum class NetworkBackend {
  kInProcess,  // queue-to-queue hand-off (default; original engine)
  kTcp,        // real loopback TCP streams via src/net/
};

/// How the engine performs bulk I/O — storage reads/writes and the TCP data
/// plane. kUring is a *request*: the session probes the kernel once at
/// construction (net::UringRing::available()) and degrades gracefully to
/// kSyscall when io_uring is missing or disabled; io.backend_uring gauges
/// the outcome and io.backend_fallbacks counts the degradation, so an
/// operator can always tell which backend actually ran.
enum class IoBackend {
  kSyscall,  // pread/pwrite + recv/sendmsg (default; the A/B baseline)
  kUring,    // batched io_uring SQEs, registered buffers, zero-copy leases
};

/// Real-file storage endpoints. Both default empty = the original fully
/// in-memory synthetic dataset. Directories must exist; the session creates
/// (and pattern-fills) its source files at start.
struct FileIoOptions {
  /// Non-empty: readers pread() chunks out of per-file sources in this
  /// directory instead of synthesizing payloads (io_uring backend: batched
  /// READ SQEs into registered arena blocks — one ring submit per batch).
  std::string source_dir;
  /// Non-empty: writers pwrite() chunks into per-file sinks here (io_uring
  /// backend: batched WRITE SQEs).
  std::string sink_dir;
};

/// Tcp-backend knobs. The data plane always listens on `host`; port 0 picks
/// an ephemeral port (the sender side learns it in-process).
struct TcpBackendOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double connect_timeout_s = 2.0;
  int connect_attempts = 4;
  double io_timeout_s = 10.0;
  /// Coalescing bound: a network worker drains up to this many staged bytes
  /// and emits them as one gathered write (one sendmsg instead of 2-3
  /// syscalls per chunk). Also bounds the in-process backend's batched
  /// token-bucket admission. 0 disables coalescing (one chunk per write).
  std::uint32_t max_coalesced_bytes = 1024 * 1024;
  /// Socket tuning applied to both ends of the data plane.
  bool no_delay = true;
  int send_buffer_bytes = 0;  // SO_SNDBUF; 0 = kernel default
  int recv_buffer_bytes = 0;  // SO_RCVBUF; 0 = kernel default
  /// File→socket kernel fast path: when the source is a real file
  /// (FileIoOptions::source_dir) and payload verification is off, network
  /// workers sendfile(2) each chunk straight out of the source fd — the
  /// payload never transits sender user space (frames go out with
  /// kFrameFlagUnchecked / checksum 0, hence the verify_payload gate).
  bool sendfile = false;
  /// Socket→file kernel fast path on the RECEIVE side (the splice twin of
  /// sendfile): with the uring backend, a real file sink, and verification
  /// off, acceptor readers splice(2) inbound kFrameFlagUnchecked payloads
  /// straight into the sink fd and deliver the chunk pre-persisted. Only
  /// such frames qualify, so this activates exactly opposite the sender's
  /// sendfile gate. On by default — it is inert unless those gates align.
  bool splice = true;
};

/// Runtime tracing knobs (the compile-time seam is AUTOMDT_TELEMETRY).
/// Counters and gauges are always on — they are single relaxed RMWs the
/// engine paid before the registry existed. What sampling gates is the
/// per-chunk *trace spans*: clock reads + histogram records for enqueue →
/// dequeue → service timing.
struct TelemetryOptions {
  bool enabled = true;
  /// Trace 1 chunk in N (hdr-style). 0 disables tracing: the per-chunk cost
  /// collapses to one relaxed load in the reader and a stamp==0 test
  /// downstream.
  std::uint32_t sample_every = 128;
  /// Carry sampled chunks' trace stamps across the Tcp data plane (16 extra
  /// header bytes + kFrameFlagTraced on those frames only). Off by default:
  /// the wire format stays byte-identical and the receiver re-stamps. With
  /// it on, sampled chunks gain correlated sender→receiver spans and the
  /// trace.e2e_ns / trace.wire_ns histograms fill in.
  bool wire_stamp = false;
  /// Optional span collector (chrome://tracing export). Not owned; must
  /// outlive the session. Only sampled chunks emit spans, so this is off the
  /// per-chunk hot path.
  telemetry::TraceExporter* exporter = nullptr;
  /// Clock offset receiver→sender for wire-stamped chunks (clock_sync.hpp).
  /// Not owned; null or unsynced reads as offset 0, which is exact for the
  /// single-process loopback deployments.
  const telemetry::ClockModel* clock = nullptr;
  /// Flight recorder for failure-path dumps (payload verify failures, data-
  /// plane send failures). Not owned; null disables.
  telemetry::FlightRecorder* flight = nullptr;
  /// Per-worker stage clocks + online bottleneck attribution (DESIGN.md §14).
  /// Transitions are lazy (recorded only when an operation actually blocks),
  /// so this stays on by default; the flag exists as the A/B seam for the
  /// bench_engine_hotpath overhead column.
  bool stage_clocks = true;
};

/// Fault injection for tests and the CI stall smoke: makes "a stage silently
/// stops making progress" reproducible on demand.
struct FaultOptions {
  /// After this many chunks have been claimed, the reader holding the next
  /// claim sleeps reader_stall_s once before proceeding (0 = off). Other
  /// readers keep draining, so the pipeline visibly stalls just short of
  /// completion — the exact signature the watchdog exists to catch.
  std::uint64_t reader_stall_after_chunks = 0;
  double reader_stall_s = 0.0;
};

struct EngineConfig {
  int max_threads = 8;           // workers pre-spawned per stage
  std::uint32_t chunk_bytes = 256 * 1024;
  double sender_buffer_bytes = 16.0 * kMiB;
  double receiver_buffer_bytes = 16.0 * kMiB;
  StageThrottle read{}, network{}, write{};
  bool fill_payload = true;      // write a pattern + checksum into each chunk
  bool verify_payload = true;    // writers recompute and compare checksums
  /// Staging queues: lock-free ring (default) or the original mutex+condvar
  /// queue, kept selectable as the baseline bench_engine_hotpath measures
  /// the overhead reduction against.
  bool lock_free_staging = true;
  NetworkBackend backend = NetworkBackend::kInProcess;
  TcpBackendOptions tcp{};
  /// I/O backend seam (DESIGN.md §12): kSyscall keeps every byte on the
  /// portable pread/recv/sendmsg paths; kUring routes storage reads, socket
  /// sends/recvs, and storage writes through batched io_uring submission
  /// with registered buffers and the zero-copy lease hot path. A/B default
  /// is kSyscall so existing configs measure against an unchanged baseline.
  IoBackend io_backend = IoBackend::kSyscall;
  FileIoOptions file_io{};
  /// Scribble 0xDD over recycled arena blocks (ArenaPool poison_on_release):
  /// a use-after-release on the lease hot path then flips payload checksums
  /// in plain builds, not just under ASan. Debug aid; off for benchmarks.
  bool debug_poison_leases = false;
  /// Serve-plane identity (src/serve/): a nonzero id makes the TCP data
  /// plane stamp every outgoing chunk frame with the kFrameFlagSession
  /// header extension, so a SessionServer can address this transfer among
  /// many. 0 (default) keeps the legacy byte-identical single-session wire
  /// format — the DtnPair/optimizer special case.
  std::uint32_t session_id = 0;
  TelemetryOptions telemetry{};
  FaultOptions fault{};
};

struct TransferStats {
  /// Registry snapshot sequence number this view was assembled from. Every
  /// field below comes from ONE MetricsRegistry::snapshot() pass (metrics
  /// sampled downstream-first), so the pipeline invariant bytes_written <=
  /// bytes_sent <= bytes_read holds in every stats() result — the old
  /// field-by-field atomic reads could tear across concurrent progress.
  std::uint64_t generation = 0;
  double bytes_read = 0.0;
  double bytes_sent = 0.0;
  double bytes_written = 0.0;
  std::size_t sender_queue_chunks = 0;
  std::size_t receiver_queue_chunks = 0;
  std::uint64_t chunks_written = 0;
  std::uint64_t verify_failures = 0;
  bool finished = false;
  // Staging-queue contention (lock-free staging only; zero for the mutex
  // baseline): spins and condvar parks on each side of each queue.
  MpmcRingCounters sender_queue_counters{};
  MpmcRingCounters receiver_queue_counters{};
  // Tcp backend only (all zero under InProcess): receiver-side stream
  // gauges and data-plane health.
  int net_streams_open = 0;
  int net_streams_parked = 0;
  int net_streams_active = 0;
  std::uint64_t net_frame_errors = 0;
  std::uint64_t net_send_failures = 0;
  // Frame coalescing effectiveness: chunks sent / gathered writes issued
  // = average batch size.
  std::uint64_t net_chunks_coalesced = 0;
  std::uint64_t net_batch_writes = 0;
  // Payload free-list effectiveness (both backends).
  std::uint64_t payload_pool_hits = 0;
  std::uint64_t payload_pool_misses = 0;
  // I/O backend seam: which backend actually runs (1 = io_uring), how many
  // times a uring request degraded to syscalls, and the two per-chunk
  // overhead denominators bench_engine_hotpath reports (data-path syscalls
  // and payload copies; see io.* in telemetry_snapshot()).
  int io_backend_uring = 0;
  std::uint64_t io_backend_fallbacks = 0;
  std::uint64_t io_syscalls = 0;
  std::uint64_t payload_copies = 0;
  // Receive-plane slice of the two denominators above (Tcp backend only):
  // acceptor-side data-path syscalls and payload copies, plus how the
  // zero-copy ingest paths engaged — chunks spliced socket→file and readers
  // currently on the multishot RECV plane. bench_engine_hotpath reports
  // recv_syscalls/chunk and recv_copies/chunk from these.
  std::uint64_t recv_syscalls = 0;
  std::uint64_t recv_copies = 0;
  std::uint64_t recv_splices = 0;
  int recv_multishot_streams = 0;
};

/// The engine's staging buffer behind a one-branch seam: the lock-free ring
/// queue (default) or the original mutex+condvar MpmcQueue baseline. Both
/// share push/pop/try_pop/close semantics; size() is approximate (relaxed)
/// on either path so stats polling never contends with workers.
class StagingQueue {
 public:
  StagingQueue(std::size_t capacity, bool lock_free) {
    if (lock_free)
      ring_ = std::make_unique<MpmcRingQueue<Chunk>>(capacity);
    else
      mutex_ = std::make_unique<MpmcQueue<Chunk>>(capacity);
  }

  bool push(Chunk chunk) {
    return ring_ ? ring_->push(std::move(chunk))
                 : mutex_->push(std::move(chunk));
  }

  bool pop(Chunk& out) {
    if (ring_) return ring_->pop(out);
    auto v = mutex_->pop();
    if (!v) return false;
    out = std::move(*v);
    return true;
  }

  bool try_pop(Chunk& out) {
    if (ring_) return ring_->try_pop(out);
    auto v = mutex_->try_pop();
    if (!v) return false;
    out = std::move(*v);
    return true;
  }

  /// Non-blocking push that moves from `chunk` only on success, so stage
  /// clocks can probe for backpressure before committing to a blocking push.
  bool try_push(Chunk& chunk) {
    return ring_ ? ring_->try_push_inplace(chunk)
                 : mutex_->try_push_inplace(chunk);
  }

  void close() { ring_ ? ring_->close() : mutex_->close(); }
  std::size_t size() const { return ring_ ? ring_->size() : mutex_->size(); }
  std::size_t capacity() const {
    return ring_ ? ring_->capacity() : mutex_->capacity();
  }
  MpmcRingCounters counters() const {
    return ring_ ? ring_->counters() : MpmcRingCounters{};
  }

 private:
  std::unique_ptr<MpmcRingQueue<Chunk>> ring_;
  std::unique_ptr<MpmcQueue<Chunk>> mutex_;
};

class TransferSession {
 public:
  /// `file_sizes_bytes` describes the synthetic source dataset.
  TransferSession(EngineConfig config, std::vector<double> file_sizes_bytes);
  ~TransferSession();

  TransferSession(const TransferSession&) = delete;
  TransferSession& operator=(const TransferSession&) = delete;

  /// Spawn workers and begin transferring with the given concurrency.
  void start(ConcurrencyTuple initial);

  /// Live concurrency update (clamped to [1, max_threads]).
  void set_concurrency(ConcurrencyTuple tuple);
  ConcurrencyTuple concurrency() const;

  TransferStats stats() const;

  /// Full registry dump: every counter/gauge/histogram this session owns, in
  /// registration order. Backs the kStatsSnapshot RPC and `automdt monitor`.
  telemetry::MetricsSnapshot telemetry_snapshot() const;

  /// The session-owned registry (tests, recorders that want to attach).
  telemetry::MetricsRegistry& registry() { return registry_; }

  /// Current utilization evidence ("bottleneck: write | read 0.04 busy ...")
  /// from the online attributor, refreshing it first. Empty when stage
  /// clocks are disabled. Fed to the watchdog as stall-report context.
  std::string bottleneck_report();

  double total_bytes() const { return total_bytes_; }

  /// Block until every chunk is written (or timeout). True on completion.
  bool wait_finished(double timeout_s);

  /// Abort: wake everything, join workers. Idempotent; also run by ~.
  void stop();

 private:
  void reader_loop(int worker_id);
  /// File-source reader: claims a whole batch of chunk tickets and reads
  /// them with one io_uring submit (or scalar preads on the syscall
  /// backend / after a per-worker ring failure).
  void reader_loop_file(int worker_id);
  void network_loop(int worker_id);
  void network_loop_tcp(int worker_id);
  void writer_loop(int worker_id);
  /// File-sink writer on the uring backend: pops a batch and retires it as
  /// one ring of WRITE SQEs, one enter for the lot.
  void writer_loop_uring(int worker_id);
  bool pread_full(int fd, std::byte* dst, std::size_t size,
                  std::uint64_t offset);
  bool pwrite_full(int fd, const std::byte* src, std::size_t size,
                   std::uint64_t offset);
  /// Create + pattern-fill source files, open sink files. True when file
  /// I/O is unconfigured or ready; false on any filesystem failure.
  bool setup_file_io();
  bool wait_for_turn(Stage stage, int worker_id,
                     telemetry::StageClock* clock = nullptr);
  void update_bucket_rates();
  bool start_tcp_backend();
  /// Drain one blocking pop plus whatever is already staged, bounded by the
  /// coalescing budget. Returns false iff the queue closed and drained.
  bool pop_batch(StagingQueue& queue, std::vector<Chunk>& batch,
                 std::uint64_t& total_bytes,
                 telemetry::StageClock* clock = nullptr);
  void register_metrics();

  // Stage-clock seams (DESIGN.md §14). All are no-ops resolving to the plain
  // operation when clocks are off (null clock), and on the unblocked hot
  // path they cost exactly one failed-probe branch: state transitions are
  // recorded only when the operation actually blocks.
  telemetry::StageClock* stage_clock(Stage stage, int worker_id) {
    return stage_clocks_on_ ? &stage_clocks_[static_cast<int>(stage)].slot(
                                  static_cast<std::size_t>(worker_id))
                            : nullptr;
  }
  /// pop that books empty-queue wait as blocked-upstream.
  bool pop_staged(StagingQueue& queue, Chunk& out,
                  telemetry::StageClock* clock);
  /// push that books full-queue wait as blocked-downstream.
  bool push_staged(StagingQueue& queue, Chunk chunk,
                   telemetry::StageClock* clock);
  /// Token-bucket admissions that book throttled waits as blocked-downstream
  /// and additionally accrue stage_throttle_ns_ so the attributor can
  /// separate "waiting on my own rate limit" from real backpressure.
  bool acquire_timed(TokenBucket& bucket, double bytes, Stage stage,
                     telemetry::StageClock* clock);
  bool acquire_batch_timed(TokenBucket& bucket, double total_bytes,
                           int grants, Stage stage,
                           telemetry::StageClock* clock);
  /// Monotone stage-clock + byte-counter totals for the attributor.
  telemetry::PipelineSample pipeline_sample() const;

  EngineConfig config_;

  // Session-owned telemetry plane. Declared before the Counter*/histogram
  // members below so they can never dangle; all progress counters live here
  // and TransferStats is assembled from one snapshot() pass.
  telemetry::MetricsRegistry registry_;
  std::vector<double> file_sizes_;
  double total_bytes_ = 0.0;
  std::uint64_t total_chunks_ = 0;

  // Chunk claiming (readers): one atomic ticket; file_first_chunk_[f] is the
  // global index of file f's first chunk, so a ticket maps back to
  // (file, offset) with a binary search — no claim mutex on the hot path.
  std::atomic<std::uint64_t> claim_cursor_{0};
  std::vector<std::uint64_t> file_first_chunk_;

  // Batched-admission / coalescing bound, in chunks (>= 1).
  std::size_t batch_chunks_ = 1;

  // Lease arenas (io_uring backend; null on kSyscall). Declared BEFORE the
  // staging queues: a queue destroyed with chunks still inside drops their
  // leases, so the arenas must outlive the queues.
  // payload_arena_: reader-side blocks, one chunk each, registered-buffer
  // friendly. recv_arena_: receiver-side blocks holding several coalesced
  // frames each; payloads are carved out as subspan leases.
  std::unique_ptr<ArenaPool> payload_arena_;
  std::unique_ptr<ArenaPool> recv_arena_;

  // Staging queues sized in chunks.
  std::unique_ptr<StagingQueue> sender_queue_;
  std::unique_ptr<StagingQueue> receiver_queue_;

  // Chunk payload free-list: writers release verified payloads, readers
  // (or the Tcp receiver's decoders) acquire them back.
  BufferPool payload_pool_;

  // io_uring backend state (DESIGN.md §12). uring_active_ is the resolved
  // capability probe: config asked for kUring AND the kernel delivered.
  bool uring_active_ = false;
  bool sendfile_on_ = false;  // tcp.sendfile resolved against its gates
  // Real-file endpoints (FileIoOptions); empty = in-memory synthetic data.
  std::vector<int> source_fds_;
  std::vector<int> sink_fds_;
  // io.* denominators: pread/pwrite/storage-ring enters, engine-side payload
  // copies (the net layer counts its own), and uring→syscall degradations.
  std::atomic<std::uint64_t> storage_syscalls_{0};
  std::atomic<std::uint64_t> engine_payload_copies_{0};
  std::atomic<std::uint64_t> io_fallbacks_{0};

  // Tcp backend (null under InProcess). net_ready_ gates the io.* metric
  // callbacks' access to the two pointers below (set with release after both
  // exist; callbacks acquire), since the registry outlives neither.
  std::atomic<bool> net_ready_{false};
  std::unique_ptr<net::StreamPool> stream_pool_;
  std::unique_ptr<net::StreamAcceptor> stream_acceptor_;

  TokenBucket read_bucket_;
  TokenBucket network_bucket_;
  TokenBucket write_bucket_;

  // Per-worker stage clocks, one set per stage sized max_threads (stable
  // slots; workers index by worker_id), plus the per-stage token-bucket wait
  // side-channel and the online bottleneck classifier fed from both
  // (DESIGN.md §14). stage_clocks_on_ resolves telemetry.enabled &&
  // telemetry.stage_clocks once so worker loops test one bool.
  bool stage_clocks_on_ = true;
  telemetry::StageClockSet stage_clocks_[3];
  std::atomic<std::uint64_t> stage_throttle_ns_[3] = {};
  telemetry::BottleneckAttributor attributor_;

  // Live concurrency gate.
  mutable std::mutex gate_mutex_;
  std::condition_variable gate_cv_;
  int active_[3] = {1, 1, 1};

  // Progress counters: registry-owned (same relaxed fetch_add cost as the
  // raw atomics they replaced). Set by register_metrics() in the ctor.
  telemetry::Counter* bytes_read_ = nullptr;
  telemetry::Counter* bytes_sent_ = nullptr;
  telemetry::Counter* bytes_written_ = nullptr;
  telemetry::Counter* chunks_pushed_ = nullptr;
  telemetry::Counter* chunks_forwarded_ = nullptr;
  telemetry::Counter* chunks_written_ = nullptr;
  telemetry::Counter* verify_failures_ = nullptr;

  // Chunk-lifecycle tracing (compiled out entirely under
  // -DAUTOMDT_TELEMETRY=OFF; see telemetry/trace.hpp).
  telemetry::TraceSampler sampler_;
  bool trace_on_ = false;  // telemetry.enabled && sample_every > 0
  bool wire_stamp_on_ = false;  // trace_on_ && telemetry.wire_stamp
  telemetry::LogLinearHistogram* hist_read_service_ = nullptr;
  telemetry::LogLinearHistogram* hist_sender_wait_ = nullptr;
  telemetry::LogLinearHistogram* hist_net_service_ = nullptr;
  telemetry::LogLinearHistogram* hist_recv_wait_ = nullptr;
  telemetry::LogLinearHistogram* hist_write_service_ = nullptr;
  telemetry::LogLinearHistogram* hist_batch_chunks_ = nullptr;
  telemetry::LogLinearHistogram* hist_e2e_ = nullptr;
  telemetry::LogLinearHistogram* hist_wire_ = nullptr;
  telemetry::Counter* trace_skew_ = nullptr;

  // Chrome-trace export tracks (registered once in the ctor when an
  // exporter is configured; emission happens only for sampled chunks).
  int trk_read_ = -1;
  int trk_net_ = -1;
  int trk_write_ = -1;
  int trk_e2e_ = -1;

  // One-shot latch for FaultOptions::reader_stall_after_chunks.
  std::atomic<bool> fault_fired_{false};

  std::atomic<bool> stopping_{false};
  std::atomic<bool> finished_{false};
  std::mutex finish_mutex_;
  std::condition_variable finish_cv_;

  std::vector<std::jthread> workers_;
  bool started_ = false;
};

/// Checksum used for payload verification (FNV-1a over the payload bytes).
std::uint64_t chunk_checksum(const std::vector<std::byte>& payload);
/// Same checksum over a raw byte range (lease-backed payloads).
std::uint64_t chunk_checksum(const std::byte* data, std::size_t size);

}  // namespace automdt::transfer
