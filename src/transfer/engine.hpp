// The real threaded transfer engine: a laptop-scale, memory-to-memory
// incarnation of the modular architecture with genuine worker threads.
//
//   reader workers  : claim (file, offset) chunks, fill payloads, rate-limit
//                     through the read bucket, push into the bounded sender
//                     staging queue
//   network workers : pop sender queue -> rate-limit through the network
//                     bucket -> push into the bounded receiver staging queue
//                     (InProcess backend) or serialize the chunk and send it
//                     over the worker's own TCP stream to the receiver-side
//                     acceptor, which decodes and pushes it (Tcp backend)
//   writer workers  : pop receiver queue -> rate-limit through the write
//                     bucket -> verify payload checksum -> count bytes
//
// The network stage is a selectable backend (EngineConfig::backend): the
// default InProcess hand-off is bit-identical to the original engine; Tcp
// moves every chunk through real loopback sockets with length-prefixed,
// checksummed frames (src/net/), one stream per network worker, streams
// parked/resumed live as set_concurrency() retunes n_n.
//
// Concurrency is *live-tunable*: each stage pre-spawns max_threads workers
// and gates them behind an active-count (workers with id >= active park on a
// condition variable), so set_concurrency() takes effect within one chunk.
// This is how a ConcurrencyController drives real threads in examples and
// integration tests, while the virtual-time emulator handles Gbps-scale
// experiments.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/concurrency_tuple.hpp"
#include "common/mpmc_queue.hpp"
#include "common/units.hpp"
#include "transfer/token_bucket.hpp"

namespace automdt::net {
class StreamPool;
class StreamAcceptor;
}  // namespace automdt::net

namespace automdt::transfer {

/// One staged unit of data in flight.
struct Chunk {
  std::uint64_t file_id = 0;
  std::uint64_t offset = 0;
  std::uint32_t size = 0;
  std::uint64_t checksum = 0;
  std::vector<std::byte> payload;
};

struct StageThrottle {
  double per_thread_bytes_per_s = 0.0;  // <= 0: unlimited
  double aggregate_bytes_per_s = 0.0;   // <= 0: unlimited

  double rate_for(int threads) const {
    double r = per_thread_bytes_per_s > 0.0
                   ? per_thread_bytes_per_s * threads
                   : 0.0;
    if (aggregate_bytes_per_s > 0.0)
      r = r > 0.0 ? std::min(r, aggregate_bytes_per_s)
                  : aggregate_bytes_per_s;
    return r;  // 0 = unlimited
  }
};

/// How chunks cross the network stage.
enum class NetworkBackend {
  kInProcess,  // queue-to-queue hand-off (default; original engine)
  kTcp,        // real loopback TCP streams via src/net/
};

/// Tcp-backend knobs. The data plane always listens on `host`; port 0 picks
/// an ephemeral port (the sender side learns it in-process).
struct TcpBackendOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double connect_timeout_s = 2.0;
  int connect_attempts = 4;
  double io_timeout_s = 10.0;
};

struct EngineConfig {
  int max_threads = 8;           // workers pre-spawned per stage
  std::uint32_t chunk_bytes = 256 * 1024;
  double sender_buffer_bytes = 16.0 * kMiB;
  double receiver_buffer_bytes = 16.0 * kMiB;
  StageThrottle read{}, network{}, write{};
  bool fill_payload = true;      // write a pattern + checksum into each chunk
  bool verify_payload = true;    // writers recompute and compare checksums
  NetworkBackend backend = NetworkBackend::kInProcess;
  TcpBackendOptions tcp{};
};

struct TransferStats {
  double bytes_read = 0.0;
  double bytes_sent = 0.0;
  double bytes_written = 0.0;
  std::size_t sender_queue_chunks = 0;
  std::size_t receiver_queue_chunks = 0;
  std::uint64_t chunks_written = 0;
  std::uint64_t verify_failures = 0;
  bool finished = false;
  // Tcp backend only (all zero under InProcess): receiver-side stream
  // gauges and data-plane health.
  int net_streams_open = 0;
  int net_streams_parked = 0;
  int net_streams_active = 0;
  std::uint64_t net_frame_errors = 0;
  std::uint64_t net_send_failures = 0;
  // Payload free-list effectiveness (both backends).
  std::uint64_t payload_pool_hits = 0;
  std::uint64_t payload_pool_misses = 0;
};

class TransferSession {
 public:
  /// `file_sizes_bytes` describes the synthetic source dataset.
  TransferSession(EngineConfig config, std::vector<double> file_sizes_bytes);
  ~TransferSession();

  TransferSession(const TransferSession&) = delete;
  TransferSession& operator=(const TransferSession&) = delete;

  /// Spawn workers and begin transferring with the given concurrency.
  void start(ConcurrencyTuple initial);

  /// Live concurrency update (clamped to [1, max_threads]).
  void set_concurrency(ConcurrencyTuple tuple);
  ConcurrencyTuple concurrency() const;

  TransferStats stats() const;
  double total_bytes() const { return total_bytes_; }

  /// Block until every chunk is written (or timeout). True on completion.
  bool wait_finished(double timeout_s);

  /// Abort: wake everything, join workers. Idempotent; also run by ~.
  void stop();

 private:
  void reader_loop(int worker_id);
  void network_loop(int worker_id);
  void network_loop_tcp(int worker_id);
  void writer_loop(int worker_id);
  bool wait_for_turn(Stage stage, int worker_id);
  void update_bucket_rates();
  bool start_tcp_backend();

  EngineConfig config_;
  std::vector<double> file_sizes_;
  double total_bytes_ = 0.0;
  std::uint64_t total_chunks_ = 0;

  // Chunk claiming (readers).
  std::mutex claim_mutex_;
  std::size_t claim_file_ = 0;
  double claim_offset_ = 0.0;

  // Staging queues sized in chunks.
  std::unique_ptr<MpmcQueue<Chunk>> sender_queue_;
  std::unique_ptr<MpmcQueue<Chunk>> receiver_queue_;

  // Chunk payload free-list: writers release verified payloads, readers
  // (or the Tcp receiver's decoders) acquire them back.
  BufferPool payload_pool_;

  // Tcp backend (null under InProcess).
  std::unique_ptr<net::StreamPool> stream_pool_;
  std::unique_ptr<net::StreamAcceptor> stream_acceptor_;

  TokenBucket read_bucket_;
  TokenBucket network_bucket_;
  TokenBucket write_bucket_;

  // Live concurrency gate.
  mutable std::mutex gate_mutex_;
  std::condition_variable gate_cv_;
  int active_[3] = {1, 1, 1};

  // Progress counters.
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> chunks_pushed_{0};
  std::atomic<std::uint64_t> chunks_forwarded_{0};
  std::atomic<std::uint64_t> chunks_written_{0};
  std::atomic<std::uint64_t> verify_failures_{0};

  std::atomic<bool> stopping_{false};
  std::atomic<bool> finished_{false};
  std::mutex finish_mutex_;
  std::condition_variable finish_cv_;

  std::vector<std::jthread> workers_;
  bool started_ = false;
};

/// Checksum used for payload verification (FNV-1a over the payload bytes).
std::uint64_t chunk_checksum(const std::vector<std::byte>& payload);

}  // namespace automdt::transfer
