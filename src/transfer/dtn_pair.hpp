// Two-agent DTN deployment over the threaded engine.
//
// In production AutoMDT, the optimizer runs on the *sender* DTN; the receiver
// DTN runs a small agent that (a) answers buffer-status queries over the RPC
// channel (§IV-D.1) and (b) applies concurrency updates to its write workers.
// This component arranges the threaded TransferSession into that shape:
//
//   SenderAgent  — owns the optimizer loop; assembles the 8-feature
//                  observation from local stats plus the receiver's latest
//                  RPC-reported buffer state (which is `rpc_latency` stale),
//   ReceiverAgent — background thread servicing the control channel.
//
// The split is in-process (the engine's staging queues stand in for the two
// hosts' tmpfs), but the control-plane information flow — including the
// staleness a WAN RPC adds — is the deployment's.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "common/env.hpp"
#include "common/utility.hpp"
#include "transfer/engine.hpp"
#include "transfer/rpc.hpp"

namespace automdt::transfer {

struct DtnPairConfig {
  EngineConfig engine{};
  std::vector<double> file_sizes_bytes;
  double probe_interval_s = 0.2;
  double rpc_latency_s = 0.02;  // one-way control-channel latency
  UtilityParams utility{};
};

/// Env implementation whose receiver-side observation features arrive via
/// the RPC channel instead of direct memory access.
class DtnPairEnv final : public Env {
 public:
  explicit DtnPairEnv(DtnPairConfig config);
  ~DtnPairEnv() override;

  std::vector<double> reset(Rng& rng) override;
  EnvStep step(const ConcurrencyTuple& action) override;
  int max_threads() const override { return config_.engine.max_threads; }

  /// Number of buffer-status responses received so far (tests).
  std::uint64_t rpc_responses() const { return rpc_responses_.load(); }

 private:
  void start_receiver_agent();
  void stop_all();
  /// Ask the receiver for buffer state; falls back to the last known value
  /// if the (stale) response has not arrived yet.
  double query_receiver_free_bytes();

  DtnPairConfig config_;
  ObservationScale scale_;
  std::unique_ptr<TransferSession> session_;
  std::unique_ptr<RpcChannel> channel_;
  std::thread receiver_agent_;
  std::atomic<bool> receiver_running_{false};
  std::atomic<std::uint64_t> rpc_responses_{0};
  std::uint64_t next_request_id_ = 1;
  double last_receiver_free_ = 0.0;
  TransferStats last_stats_{};
  ConcurrencyTuple last_action_{1, 1, 1};
};

}  // namespace automdt::transfer
