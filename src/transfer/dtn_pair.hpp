// Two-agent DTN deployment over the threaded engine.
//
// In production AutoMDT, the optimizer runs on the *sender* DTN; the receiver
// DTN runs a small agent that (a) answers buffer-status queries over the RPC
// channel (§IV-D.1) and (b) applies concurrency updates to its write workers.
// This component arranges the threaded TransferSession into that shape:
//
//   SenderAgent  — owns the optimizer loop; assembles the 8-feature
//                  observation from local stats plus the receiver's latest
//                  RPC-reported buffer state (which is `rpc_latency` stale),
//   ReceiverAgent — background thread servicing the control channel.
//
// The control channel is a selectable backend (DtnPairConfig::backend):
// InProcess uses the latency-enforcing duplex deque; Tcp runs the same
// message set over the two ends of a real loopback socket pair
// (net/tcp_transport.hpp), with the rpc_latency applied as a delivery delay
// so the WAN-staleness property is preserved either way. With
// backend = kTcp the engine's data plane also moves chunks over loopback
// TCP streams — the full two-process shape, minus the second process.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "common/env.hpp"
#include "common/utility.hpp"
#include "telemetry/clock_sync.hpp"
#include "transfer/engine.hpp"
#include "transfer/rpc.hpp"

namespace automdt::transfer {

struct DtnPairConfig {
  EngineConfig engine{};
  std::vector<double> file_sizes_bytes;
  double probe_interval_s = 0.2;
  double rpc_latency_s = 0.02;  // one-way control-channel latency
  UtilityParams utility{};
  /// Applied to both planes: the control channel here and the engine's
  /// chunk path (overrides engine.backend so the pair cannot be split).
  NetworkBackend backend = NetworkBackend::kInProcess;
  /// Clock-sync cadence on the control channel (telemetry/clock_sync.hpp):
  /// one round of `clock_sync_samples` request/response round trips at
  /// reset, re-run every `clock_sync_interval_s` of step() time to bound
  /// drift. 0 samples disables the handshake entirely; interval <= 0 syncs
  /// only once at reset.
  double clock_sync_interval_s = 2.0;
  int clock_sync_samples = 4;
};

/// Env implementation whose receiver-side observation features arrive via
/// the RPC channel instead of direct memory access.
class DtnPairEnv final : public Env {
 public:
  explicit DtnPairEnv(DtnPairConfig config);
  ~DtnPairEnv() override;

  std::vector<double> reset(Rng& rng) override;
  EnvStep step(const ConcurrencyTuple& action) override;
  int max_threads() const override { return config_.engine.max_threads; }

  /// Number of buffer-status responses received so far (tests).
  std::uint64_t rpc_responses() const { return rpc_responses_.load(); }
  /// Number of concurrency updates the receiver agent has applied (tests).
  std::uint64_t concurrency_updates() const {
    return concurrency_updates_.load();
  }

  /// Engine introspection (tests: stream gauges over the Tcp backend).
  const TransferSession* session() const { return session_.get(); }

  /// kStatsSnapshot round-trip: ask the receiver agent for its full registry
  /// dump over the control channel. Blocks up to `timeout_s` draining other
  /// control traffic (buffer-status responses are handled as usual); nullopt
  /// on timeout. Monitor/test hook, not part of the optimizer loop.
  std::optional<StatsSnapshotResponse> query_stats_snapshot(double timeout_s);

  /// One clock-sync round over the control channel: clock_sync_samples
  /// request/response round trips, best (min-RTT) sample published into the
  /// clock model. True if at least one valid sample landed within
  /// `timeout_s`. Runs automatically at reset and every
  /// clock_sync_interval_s; exposed for tests.
  bool sync_clock(double timeout_s);

  /// The published sender→receiver offset estimate (engine reads it to
  /// shift wire stamps; tests assert loopback offset ≈ 0 within rtt/2).
  const telemetry::ClockModel& clock() const { return clock_model_; }
  /// Completed sync rounds (at least one valid sample each).
  std::uint64_t clock_syncs() const { return clock_syncs_.load(); }

 private:
  bool open_control_channel();
  void start_receiver_agent();
  void stop_all();
  /// Ask the receiver for buffer state; falls back to the last known value
  /// if the (stale) response has not arrived yet.
  double query_receiver_free_bytes();

  DtnPairConfig config_;
  ObservationScale scale_;
  std::unique_ptr<TransferSession> session_;
  std::unique_ptr<RpcEndpoint> sender_endpoint_;
  std::unique_ptr<RpcEndpoint> receiver_endpoint_;
  std::thread receiver_agent_;
  std::atomic<bool> receiver_running_{false};
  std::atomic<std::uint64_t> rpc_responses_{0};
  std::atomic<std::uint64_t> concurrency_updates_{0};
  std::uint64_t next_request_id_ = 1;
  double last_receiver_free_ = 0.0;
  TransferStats last_stats_{};
  ConcurrencyTuple last_action_{1, 1, 1};

  // Steady-clock offset sender→receiver, estimated over the control channel
  // and consumed by the engine's receiver side for wire-stamped chunks. The
  // model outlives sessions (reset() re-points each new session at it).
  telemetry::ClockModel clock_model_;
  telemetry::ClockSyncEstimator clock_estimator_;
  std::atomic<std::uint64_t> clock_syncs_{0};
  std::chrono::steady_clock::time_point last_clock_sync_{};
};

}  // namespace automdt::transfer
