#include "transfer/dtn_pair.hpp"

#include <algorithm>
#include <chrono>

namespace automdt::transfer {

DtnPairEnv::DtnPairEnv(DtnPairConfig config) : config_(std::move(config)) {
  scale_.max_threads = config_.engine.max_threads;
  const ConcurrencyTuple full{config_.engine.max_threads,
                              config_.engine.max_threads,
                              config_.engine.max_threads};
  double fastest = 0.0;
  fastest = std::max(fastest, config_.engine.read.rate_for(full.read));
  fastest = std::max(fastest, config_.engine.network.rate_for(full.network));
  fastest = std::max(fastest, config_.engine.write.rate_for(full.write));
  scale_.rate_scale_mbps = fastest > 0.0 ? to_mbps(fastest) : 1000.0;
  scale_.sender_capacity = config_.engine.sender_buffer_bytes;
  scale_.receiver_capacity = config_.engine.receiver_buffer_bytes;
  last_receiver_free_ = config_.engine.receiver_buffer_bytes;
}

DtnPairEnv::~DtnPairEnv() { stop_all(); }

void DtnPairEnv::stop_all() {
  if (channel_) channel_->close();
  receiver_running_.store(false);
  if (receiver_agent_.joinable()) receiver_agent_.join();
  if (session_) session_->stop();
}

void DtnPairEnv::start_receiver_agent() {
  receiver_running_.store(true);
  receiver_agent_ = std::thread([this] {
    // The receiver DTN's control loop: service buffer-status queries with a
    // fresh local measurement ("every DTN measures its available buffer
    // space with a system call").
    while (receiver_running_.load()) {
      auto msg = channel_->receiver_receive();
      if (!msg) break;  // channel closed
      if (std::holds_alternative<Shutdown>(*msg)) break;
      if (const auto* req = std::get_if<BufferStatusRequest>(&*msg)) {
        const TransferStats stats = session_->stats();
        const double used = static_cast<double>(stats.receiver_queue_chunks) *
                            config_.engine.chunk_bytes;
        channel_->receiver_send(BufferStatusResponse{
            req->request_id,
            std::max(0.0, config_.engine.receiver_buffer_bytes - used), used,
            0.0});
      }
      // ConcurrencyUpdate messages would retune the write pool on a remote
      // host; in-process the session is shared, so they are accepted as-is.
    }
  });
}

std::vector<double> DtnPairEnv::reset(Rng& rng) {
  (void)rng;
  stop_all();
  session_ = std::make_unique<TransferSession>(config_.engine,
                                               config_.file_sizes_bytes);
  channel_ = std::make_unique<RpcChannel>(config_.rpc_latency_s);
  start_receiver_agent();
  last_action_ = ConcurrencyTuple{1, 1, 1};
  session_->start(last_action_);
  last_stats_ = session_->stats();
  last_receiver_free_ = config_.engine.receiver_buffer_bytes;
  return build_observation(scale_, last_action_, StageThroughputs{},
                           config_.engine.sender_buffer_bytes,
                           last_receiver_free_);
}

double DtnPairEnv::query_receiver_free_bytes() {
  channel_->sender_send(BufferStatusRequest{next_request_id_++});
  // Drain any responses that have arrived (including older ones); the most
  // recent becomes our (slightly stale) view of the receiver buffer.
  while (auto msg = channel_->sender_try_receive()) {
    if (const auto* resp = std::get_if<BufferStatusResponse>(&*msg)) {
      last_receiver_free_ = resp->free_bytes;
      rpc_responses_.fetch_add(1);
    }
  }
  return last_receiver_free_;
}

EnvStep DtnPairEnv::step(const ConcurrencyTuple& action) {
  last_action_ = action.clamped(1, config_.engine.max_threads);
  session_->set_concurrency(last_action_);
  // Tell the receiver agent about the new write concurrency (control-plane
  // traffic a two-host deployment must carry).
  channel_->sender_send(ConcurrencyUpdate{last_action_});

  const auto t0 = std::chrono::steady_clock::now();
  session_->wait_finished(config_.probe_interval_s);
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const TransferStats now = session_->stats();
  StageThroughputs tpt;
  if (dt > 0.0) {
    tpt = {to_mbps((now.bytes_read - last_stats_.bytes_read) / dt),
           to_mbps((now.bytes_sent - last_stats_.bytes_sent) / dt),
           to_mbps((now.bytes_written - last_stats_.bytes_written) / dt)};
  }
  last_stats_ = now;

  const double sender_free = std::max(
      0.0, config_.engine.sender_buffer_bytes -
               static_cast<double>(now.sender_queue_chunks) *
                   config_.engine.chunk_bytes);
  const double receiver_free = query_receiver_free_bytes();

  EnvStep out;
  out.observation = build_observation(scale_, last_action_, tpt, sender_free,
                                      receiver_free);
  out.throughputs_mbps = tpt;
  out.reward = total_utility(tpt, last_action_, config_.utility);
  out.done = now.finished;
  return out;
}

}  // namespace automdt::transfer
