#include "transfer/dtn_pair.hpp"

#include <algorithm>
#include <chrono>

#include "net/socket.hpp"
#include "net/tcp_transport.hpp"
#include "telemetry/stats_server.hpp"
#include "telemetry/trace.hpp"

namespace automdt::transfer {

DtnPairEnv::DtnPairEnv(DtnPairConfig config) : config_(std::move(config)) {
  config_.engine.backend = config_.backend;  // both planes share the backend
  scale_.max_threads = config_.engine.max_threads;
  const ConcurrencyTuple full{config_.engine.max_threads,
                              config_.engine.max_threads,
                              config_.engine.max_threads};
  double fastest = 0.0;
  fastest = std::max(fastest, config_.engine.read.rate_for(full.read));
  fastest = std::max(fastest, config_.engine.network.rate_for(full.network));
  fastest = std::max(fastest, config_.engine.write.rate_for(full.write));
  scale_.rate_scale_mbps = fastest > 0.0 ? to_mbps(fastest) : 1000.0;
  scale_.sender_capacity = config_.engine.sender_buffer_bytes;
  scale_.receiver_capacity = config_.engine.receiver_buffer_bytes;
  last_receiver_free_ = config_.engine.receiver_buffer_bytes;
}

DtnPairEnv::~DtnPairEnv() { stop_all(); }

void DtnPairEnv::stop_all() {
  if (sender_endpoint_) sender_endpoint_->close();
  if (receiver_endpoint_) receiver_endpoint_->close();
  receiver_running_.store(false);
  if (receiver_agent_.joinable()) receiver_agent_.join();
  if (session_) session_->stop();
}

bool DtnPairEnv::open_control_channel() {
  if (config_.backend == NetworkBackend::kInProcess) {
    auto [sender, receiver] = make_inprocess_rpc_pair(config_.rpc_latency_s);
    sender_endpoint_ = std::move(sender);
    receiver_endpoint_ = std::move(receiver);
    return true;
  }
  // Tcp: a real loopback control connection. The receiver agent owns the
  // accepted end, the optimizer the connecting end; rpc_latency becomes a
  // delivery delay so the staleness the optimizer sees is unchanged.
  auto listener = net::Listener::open(config_.engine.tcp.host, /*port=*/0);
  if (!listener) return false;
  net::TcpTransportConfig transport_config;
  transport_config.delivery_delay_s = config_.rpc_latency_s;
  net::ConnectorConfig connector_config;
  connector_config.connect_timeout_s = config_.engine.tcp.connect_timeout_s;
  connector_config.max_attempts = config_.engine.tcp.connect_attempts;
  auto sender = net::TcpTransport::connect(
      config_.engine.tcp.host, listener->port(), connector_config,
      transport_config);
  if (!sender) return false;
  auto accepted = listener->accept(/*timeout_s=*/connector_config
                                       .connect_timeout_s);
  if (!accepted) return false;
  auto receiver =
      net::TcpTransport::adopt(std::move(*accepted), transport_config);
  if (!receiver) return false;
  sender_endpoint_ = std::move(sender);
  receiver_endpoint_ = std::move(receiver);
  return true;
}

void DtnPairEnv::start_receiver_agent() {
  receiver_running_.store(true);
  receiver_agent_ = std::thread([this] {
    // The receiver DTN's control loop: service buffer-status queries with a
    // fresh local measurement ("every DTN measures its available buffer
    // space with a system call").
    while (receiver_running_.load()) {
      auto msg = receiver_endpoint_->receive();
      if (!msg) break;  // channel closed
      if (std::holds_alternative<Shutdown>(*msg)) break;
      if (const auto* req = std::get_if<BufferStatusRequest>(&*msg)) {
        const TransferStats stats = session_->stats();
        const double used = static_cast<double>(stats.receiver_queue_chunks) *
                            config_.engine.chunk_bytes;
        receiver_endpoint_->send(BufferStatusResponse{
            req->request_id,
            std::max(0.0, config_.engine.receiver_buffer_bytes - used), used,
            0.0});
      } else if (std::holds_alternative<ConcurrencyUpdate>(*msg)) {
        // On a remote host this retunes the write pool; in-process the
        // session is shared, so the update is counted as applied.
        concurrency_updates_.fetch_add(1);
      } else if (const auto* stats_req =
                     std::get_if<StatsSnapshotRequest>(&*msg)) {
        // kStatsSnapshot: live-monitoring dump of the session's full
        // telemetry registry, answered over the same control channel.
        const telemetry::MetricsSnapshot snap = session_->telemetry_snapshot();
        receiver_endpoint_->send(
            telemetry::snapshot_to_message(snap, stats_req->request_id));
      } else if (const auto* sync_req = std::get_if<ClockSyncRequest>(&*msg)) {
        // Clock-sync responder: stamp receipt (t1) and send (t2) on the
        // receiver's clock; the requester derives offset and RTT. t1 is
        // taken as early as possible after delivery so responder processing
        // time stays out of the RTT estimate.
        const std::uint64_t t1 = telemetry::now_ns();
        receiver_endpoint_->send(ClockSyncResponse{
            sync_req->request_id, sync_req->t0_ns, t1, telemetry::now_ns()});
      }
    }
  });
}

std::vector<double> DtnPairEnv::reset(Rng& rng) {
  (void)rng;
  stop_all();
  // The engine's receiver side shifts wire stamps through this env-owned
  // clock model; point the new session at it before construction.
  config_.engine.telemetry.clock = &clock_model_;
  session_ = std::make_unique<TransferSession>(config_.engine,
                                               config_.file_sizes_bytes);
  session_->registry().register_callback("clock.offset_ns", [this] {
    return static_cast<double>(clock_model_.offset_ns());
  });
  session_->registry().register_callback("clock.rtt_ns", [this] {
    return static_cast<double>(clock_model_.rtt_ns());
  });
  session_->registry().register_callback("clock.syncs", [this] {
    return static_cast<double>(clock_syncs_.load());
  });
  if (!open_control_channel()) {
    // Control plane unavailable (ephemeral port exhaustion, ...): degrade
    // to the in-process channel rather than crash mid-experiment.
    auto [sender, receiver] = make_inprocess_rpc_pair(config_.rpc_latency_s);
    sender_endpoint_ = std::move(sender);
    receiver_endpoint_ = std::move(receiver);
  }
  start_receiver_agent();
  // Clock-sync handshake before data flows, so the first wire-stamped chunk
  // already lands in a synced timebase.
  if (config_.clock_sync_samples > 0) {
    sync_clock(std::max(1.0, 8.0 * config_.rpc_latency_s *
                                 config_.clock_sync_samples));
    last_clock_sync_ = std::chrono::steady_clock::now();
  }
  last_action_ = ConcurrencyTuple{1, 1, 1};
  session_->start(last_action_);
  last_stats_ = session_->stats();
  last_receiver_free_ = config_.engine.receiver_buffer_bytes;
  return build_observation(scale_, last_action_, StageThroughputs{},
                           config_.engine.sender_buffer_bytes,
                           last_receiver_free_);
}

std::optional<StatsSnapshotResponse> DtnPairEnv::query_stats_snapshot(
    double timeout_s) {
  if (!sender_endpoint_ || !session_) return std::nullopt;
  const std::uint64_t id = next_request_id_++;
  sender_endpoint_->send(StatsSnapshotRequest{id});
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  while (std::chrono::steady_clock::now() < deadline) {
    if (auto msg = sender_endpoint_->try_receive()) {
      if (auto* resp = std::get_if<StatsSnapshotResponse>(&*msg)) {
        if (resp->request_id == id) return std::move(*resp);
      } else if (const auto* buf = std::get_if<BufferStatusResponse>(&*msg)) {
        // Interleaved buffer-status traffic keeps its usual effect.
        last_receiver_free_ = buf->free_bytes;
        rpc_responses_.fetch_add(1);
      }
      continue;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return std::nullopt;
}

bool DtnPairEnv::sync_clock(double timeout_s) {
  if (!sender_endpoint_) return false;
  // Fresh round: re-syncs must track drift, not pin to a historic minimum.
  clock_estimator_.reset();
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  for (int i = 0; i < config_.clock_sync_samples; ++i) {
    const std::uint64_t id = next_request_id_++;
    const std::uint64_t t0 = telemetry::now_ns();
    sender_endpoint_->send(ClockSyncRequest{id, t0});
    bool got_response = false;
    while (!got_response && std::chrono::steady_clock::now() < deadline) {
      auto msg = sender_endpoint_->try_receive();
      if (!msg) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      if (const auto* resp = std::get_if<ClockSyncResponse>(&*msg)) {
        if (resp->request_id != id) continue;  // stale round-trip
        telemetry::ClockSyncSample sample;
        sample.t0_ns = t0;
        sample.t1_ns = resp->t1_ns;
        sample.t2_ns = resp->t2_ns;
        sample.t3_ns = telemetry::now_ns();
        clock_estimator_.add(sample);
        got_response = true;
      } else if (const auto* buf = std::get_if<BufferStatusResponse>(&*msg)) {
        // Interleaved buffer-status traffic keeps its usual effect.
        last_receiver_free_ = buf->free_bytes;
        rpc_responses_.fetch_add(1);
      }
    }
    if (!got_response) break;  // timed out; publish whatever we have
  }
  if (!clock_estimator_.valid()) return false;
  // sample offset = responder − requester = receiver − sender: exactly the
  // shift the engine applies to sender-side wire stamps.
  clock_model_.publish(clock_estimator_.offset_ns(), clock_estimator_.rtt_ns());
  clock_syncs_.fetch_add(1);
  return true;
}

double DtnPairEnv::query_receiver_free_bytes() {
  sender_endpoint_->send(BufferStatusRequest{next_request_id_++});
  // Drain any responses that have arrived (including older ones); the most
  // recent becomes our (slightly stale) view of the receiver buffer.
  while (auto msg = sender_endpoint_->try_receive()) {
    if (const auto* resp = std::get_if<BufferStatusResponse>(&*msg)) {
      last_receiver_free_ = resp->free_bytes;
      rpc_responses_.fetch_add(1);
    }
  }
  return last_receiver_free_;
}

EnvStep DtnPairEnv::step(const ConcurrencyTuple& action) {
  // Periodic clock re-sync: bounds drift between the two agents' steady
  // clocks without adding control traffic to every step.
  if (config_.clock_sync_samples > 0 && config_.clock_sync_interval_s > 0.0) {
    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - last_clock_sync_).count() >=
        config_.clock_sync_interval_s) {
      sync_clock(std::max(0.25, 4.0 * config_.rpc_latency_s *
                                    config_.clock_sync_samples));
      last_clock_sync_ = now;
    }
  }
  last_action_ = action.clamped(1, config_.engine.max_threads);
  session_->set_concurrency(last_action_);
  // Tell the receiver agent about the new write concurrency (control-plane
  // traffic a two-host deployment must carry).
  sender_endpoint_->send(ConcurrencyUpdate{last_action_});

  const auto t0 = std::chrono::steady_clock::now();
  session_->wait_finished(config_.probe_interval_s);
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const TransferStats now = session_->stats();
  StageThroughputs tpt;
  if (dt > 0.0) {
    tpt = {to_mbps((now.bytes_read - last_stats_.bytes_read) / dt),
           to_mbps((now.bytes_sent - last_stats_.bytes_sent) / dt),
           to_mbps((now.bytes_written - last_stats_.bytes_written) / dt)};
  }
  last_stats_ = now;

  const double sender_free = std::max(
      0.0, config_.engine.sender_buffer_bytes -
               static_cast<double>(now.sender_queue_chunks) *
                   config_.engine.chunk_bytes);
  const double receiver_free = query_receiver_free_bytes();

  EnvStep out;
  out.observation = build_observation(scale_, last_action_, tpt, sender_free,
                                      receiver_free);
  out.throughputs_mbps = tpt;
  out.reward = total_utility(tpt, last_action_, config_.utility);
  out.done = now.finished;
  return out;
}

}  // namespace automdt::transfer
