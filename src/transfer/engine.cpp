#include "transfer/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "common/checksum.hpp"
#include "net/stream_pool.hpp"

namespace automdt::transfer {

std::uint64_t chunk_checksum(const std::vector<std::byte>& payload) {
  return fnv1a(payload);
}

TransferSession::TransferSession(EngineConfig config,
                                 std::vector<double> file_sizes_bytes)
    : config_(config),
      file_sizes_(std::move(file_sizes_bytes)),
      payload_pool_(0),  // re-initialized below once queue sizes are known
      read_bucket_(0.0),
      network_bucket_(0.0),
      write_bucket_(0.0) {
  assert(config_.chunk_bytes > 0);
  assert(config_.max_threads >= 1);
  for (double s : file_sizes_) {
    total_bytes_ += s;
    total_chunks_ += static_cast<std::uint64_t>(
        (s + config_.chunk_bytes - 1) / config_.chunk_bytes);
  }
  const auto queue_chunks = [&](double buffer_bytes) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(buffer_bytes / config_.chunk_bytes));
  };
  sender_queue_ =
      std::make_unique<MpmcQueue<Chunk>>(queue_chunks(config_.sender_buffer_bytes));
  receiver_queue_ = std::make_unique<MpmcQueue<Chunk>>(
      queue_chunks(config_.receiver_buffer_bytes));
  // Enough pooled payloads to cover every chunk that can be in flight at
  // once (both staging buffers plus one per worker), bounded so a large
  // buffer config cannot pin unbounded memory.
  const std::size_t in_flight = sender_queue_->capacity() +
                                receiver_queue_->capacity() +
                                static_cast<std::size_t>(config_.max_threads) * 3;
  payload_pool_.set_max_buffers(std::min<std::size_t>(in_flight, 512));
}

TransferSession::~TransferSession() { stop(); }

bool TransferSession::start_tcp_backend() {
  net::StreamAcceptorConfig acceptor_config;
  acceptor_config.host = config_.tcp.host;
  acceptor_config.port = config_.tcp.port;
  acceptor_config.payload_pool = &payload_pool_;
  stream_acceptor_ = std::make_unique<net::StreamAcceptor>(
      acceptor_config, [this](net::WireChunk&& wire) {
        Chunk chunk;
        chunk.file_id = wire.file_id;
        chunk.offset = wire.offset;
        chunk.size = wire.size;
        chunk.checksum = wire.checksum;
        chunk.payload = std::move(wire.payload);
        if (!receiver_queue_->push(std::move(chunk))) return false;
        if (chunks_forwarded_.fetch_add(1) + 1 == total_chunks_) {
          receiver_queue_->close();
        }
        return true;
      });
  if (!stream_acceptor_->start()) {
    stream_acceptor_.reset();
    return false;
  }
  net::StreamPoolConfig pool_config;
  pool_config.host = config_.tcp.host;
  pool_config.port = stream_acceptor_->port();
  pool_config.max_streams = config_.max_threads;
  pool_config.connector.connect_timeout_s = config_.tcp.connect_timeout_s;
  pool_config.connector.max_attempts = config_.tcp.connect_attempts;
  pool_config.io_timeout_s = config_.tcp.io_timeout_s;
  stream_pool_ = std::make_unique<net::StreamPool>(pool_config);
  stream_pool_->set_active(concurrency().network);
  return true;
}

void TransferSession::start(ConcurrencyTuple initial) {
  assert(!started_);
  started_ = true;
  set_concurrency(initial);
  if (total_chunks_ == 0) {
    finished_.store(true);
    sender_queue_->close();
    receiver_queue_->close();
    finish_cv_.notify_all();
    return;
  }
  const bool tcp = config_.backend == NetworkBackend::kTcp;
  if (tcp && !start_tcp_backend()) {
    // Could not bind the data-plane listener (port in use): surface as an
    // immediately-stopped session rather than a hang.
    stop();
    return;
  }
  workers_.reserve(static_cast<std::size_t>(config_.max_threads) * 3);
  for (int i = 0; i < config_.max_threads; ++i)
    workers_.emplace_back([this, i] { reader_loop(i); });
  for (int i = 0; i < config_.max_threads; ++i)
    workers_.emplace_back(
        [this, i, tcp] { tcp ? network_loop_tcp(i) : network_loop(i); });
  for (int i = 0; i < config_.max_threads; ++i)
    workers_.emplace_back([this, i] { writer_loop(i); });
}

void TransferSession::set_concurrency(ConcurrencyTuple tuple) {
  const ConcurrencyTuple t = tuple.clamped(1, config_.max_threads);
  {
    std::lock_guard lock(gate_mutex_);
    active_[0] = t.read;
    active_[1] = t.network;
    active_[2] = t.write;
  }
  gate_cv_.notify_all();
  update_bucket_rates();
  // Tcp backend: park/resume the per-worker data streams so the receiver
  // observes the new n_n as a changed active-stream count.
  if (stream_pool_) stream_pool_->set_active(t.network);
}

ConcurrencyTuple TransferSession::concurrency() const {
  std::lock_guard lock(gate_mutex_);
  return {active_[0], active_[1], active_[2]};
}

void TransferSession::update_bucket_rates() {
  const ConcurrencyTuple t = concurrency();
  read_bucket_.set_rate(config_.read.rate_for(t.read));
  network_bucket_.set_rate(config_.network.rate_for(t.network));
  write_bucket_.set_rate(config_.write.rate_for(t.write));
}

TransferStats TransferSession::stats() const {
  TransferStats s;
  s.bytes_read = static_cast<double>(bytes_read_.load());
  s.bytes_sent = static_cast<double>(bytes_sent_.load());
  s.bytes_written = static_cast<double>(bytes_written_.load());
  s.sender_queue_chunks = sender_queue_->size();
  s.receiver_queue_chunks = receiver_queue_->size();
  s.chunks_written = chunks_written_.load();
  s.verify_failures = verify_failures_.load();
  s.finished = finished_.load();
  if (stream_acceptor_) {
    s.net_streams_open = stream_acceptor_->streams_open();
    s.net_streams_parked = stream_acceptor_->streams_parked();
    s.net_streams_active = stream_acceptor_->streams_active();
    s.net_frame_errors = stream_acceptor_->frame_errors();
  }
  if (stream_pool_) s.net_send_failures = stream_pool_->send_failures();
  s.payload_pool_hits = payload_pool_.hits();
  s.payload_pool_misses = payload_pool_.misses();
  return s;
}

bool TransferSession::wait_finished(double timeout_s) {
  std::unique_lock lock(finish_mutex_);
  return finish_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                             [&] { return finished_.load(); });
}

void TransferSession::stop() {
  if (stopping_.exchange(true)) {
    workers_.clear();  // join if not already joined
    return;
  }
  sender_queue_->close();
  receiver_queue_->close();
  read_bucket_.shutdown();
  network_bucket_.shutdown();
  write_bucket_.shutdown();
  // Wake any network worker blocked in a socket write, then stop the
  // receiver side (its handler exits via the now-closed receiver queue).
  if (stream_pool_) stream_pool_->close();
  if (stream_acceptor_) stream_acceptor_->stop();
  gate_cv_.notify_all();
  finish_cv_.notify_all();
  workers_.clear();  // jthread joins
}

bool TransferSession::wait_for_turn(Stage stage, int worker_id) {
  const int idx = static_cast<int>(stage);
  std::unique_lock lock(gate_mutex_);
  gate_cv_.wait(lock, [&] {
    return stopping_.load() || finished_.load() || worker_id < active_[idx];
  });
  return !stopping_.load() && !finished_.load();
}

void TransferSession::reader_loop(int worker_id) {
  while (wait_for_turn(Stage::kRead, worker_id)) {
    // Claim the next chunk of the dataset.
    Chunk chunk;
    {
      std::lock_guard lock(claim_mutex_);
      if (claim_file_ >= file_sizes_.size()) break;  // all chunks claimed
      const double remaining = file_sizes_[claim_file_] - claim_offset_;
      chunk.file_id = claim_file_;
      chunk.offset = static_cast<std::uint64_t>(claim_offset_);
      chunk.size = static_cast<std::uint32_t>(
          std::min<double>(config_.chunk_bytes, remaining));
      claim_offset_ += chunk.size;
      if (claim_offset_ >= file_sizes_[claim_file_]) {
        ++claim_file_;
        claim_offset_ = 0.0;
      }
    }

    if (!read_bucket_.acquire(chunk.size)) break;

    if (config_.fill_payload) {
      chunk.payload = payload_pool_.acquire(chunk.size);
      // Cheap deterministic pattern derived from (file, offset).
      const auto seed = static_cast<std::uint8_t>(
          chunk.file_id * 131 + chunk.offset / config_.chunk_bytes);
      for (std::size_t i = 0; i < chunk.payload.size(); ++i)
        chunk.payload[i] = static_cast<std::byte>(
            static_cast<std::uint8_t>(seed + i));
      chunk.checksum = chunk_checksum(chunk.payload);
    }

    const std::uint32_t size = chunk.size;
    // Count before publishing: once the chunk is visible downstream the
    // pipeline can finish, and stats() must already include it.
    bytes_read_.fetch_add(size);
    if (!sender_queue_->push(std::move(chunk))) {
      bytes_read_.fetch_sub(size);
      break;
    }
    if (chunks_pushed_.fetch_add(1) + 1 == total_chunks_) {
      sender_queue_->close();  // no more data will be produced
    }
  }
}

void TransferSession::network_loop_tcp(int worker_id) {
  while (wait_for_turn(Stage::kNetwork, worker_id)) {
    std::optional<Chunk> chunk = sender_queue_->pop();
    if (!chunk) break;  // closed and drained
    if (!network_bucket_.acquire(chunk->size)) break;
    const std::uint32_t size = chunk->size;
    net::WireChunk wire;
    wire.file_id = chunk->file_id;
    wire.offset = chunk->offset;
    wire.size = chunk->size;
    wire.checksum = chunk->checksum;
    wire.payload = std::move(chunk->payload);
    // Count before the frame leaves: once the last chunk lands on the
    // receiver the pipeline can finish, and stats() must already show it.
    bytes_sent_.fetch_add(size);
    if (!stream_pool_->send_chunk(worker_id, wire)) {
      bytes_sent_.fetch_sub(size);
      break;
    }
    // The wire copy has left through the socket; recycle the payload.
    payload_pool_.release(std::move(wire.payload));
  }
}

void TransferSession::network_loop(int worker_id) {
  while (wait_for_turn(Stage::kNetwork, worker_id)) {
    std::optional<Chunk> chunk = sender_queue_->pop();
    if (!chunk) break;  // closed and drained
    if (!network_bucket_.acquire(chunk->size)) break;
    const std::uint32_t size = chunk->size;
    bytes_sent_.fetch_add(size);
    if (!receiver_queue_->push(std::move(*chunk))) {
      bytes_sent_.fetch_sub(size);
      break;
    }
    if (chunks_forwarded_.fetch_add(1) + 1 == total_chunks_) {
      receiver_queue_->close();
    }
  }
}

void TransferSession::writer_loop(int worker_id) {
  while (wait_for_turn(Stage::kWrite, worker_id)) {
    std::optional<Chunk> chunk = receiver_queue_->pop();
    if (!chunk) break;
    if (!write_bucket_.acquire(chunk->size)) break;
    if (config_.verify_payload && config_.fill_payload) {
      if (chunk_checksum(chunk->payload) != chunk->checksum)
        verify_failures_.fetch_add(1);
    }
    payload_pool_.release(std::move(chunk->payload));
    bytes_written_.fetch_add(chunk->size);
    if (chunks_written_.fetch_add(1) + 1 == total_chunks_) {
      finished_.store(true);
      gate_cv_.notify_all();
      finish_cv_.notify_all();
    }
  }
}

}  // namespace automdt::transfer
