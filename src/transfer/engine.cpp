#include "transfer/engine.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <string>
#include <thread>

#include "common/checksum.hpp"
#include "common/logging.hpp"
#include "net/stream_pool.hpp"
#include "net/uring.hpp"
#include "telemetry/clock_sync.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/trace_export.hpp"

namespace automdt::transfer {
namespace {

/// Stable cross-host correlation key for one chunk's trace spans: the same
/// (file, offset) names the chunk on the sender and the receiver, so no
/// extra id has to cross the wire.
std::string chunk_trace_id(std::uint64_t file_id, std::uint64_t offset) {
  std::string id = "f";
  id += std::to_string(file_id);
  id += ':';
  id += std::to_string(offset);
  return id;
}

/// Shift a remote (sender-clock) stamp into the local (receiver-clock)
/// timebase: local = remote + offset. Unsigned wraparound implements the
/// signed add.
std::uint64_t shift_ns(std::uint64_t remote_ns, std::int64_t offset_ns) {
  return remote_ns + static_cast<std::uint64_t>(offset_ns);
}

}  // namespace

std::uint64_t chunk_checksum(const std::vector<std::byte>& payload) {
  return fnv1a(payload);
}

std::uint64_t chunk_checksum(const std::byte* data, std::size_t size) {
  return fnv1a(data, size);
}

TransferSession::TransferSession(EngineConfig config,
                                 std::vector<double> file_sizes_bytes)
    : config_(config),
      file_sizes_(std::move(file_sizes_bytes)),
      payload_pool_(0),  // re-initialized below once queue sizes are known
      read_bucket_(0.0),
      network_bucket_(0.0),
      write_bucket_(0.0) {
  assert(config_.chunk_bytes > 0);
  assert(config_.max_threads >= 1);
  file_first_chunk_.reserve(file_sizes_.size() + 1);
  file_first_chunk_.push_back(0);
  for (double s : file_sizes_) {
    total_bytes_ += s;
    total_chunks_ += static_cast<std::uint64_t>(
        (s + config_.chunk_bytes - 1) / config_.chunk_bytes);
    file_first_chunk_.push_back(total_chunks_);
  }
  batch_chunks_ = std::clamp<std::size_t>(
      config_.tcp.max_coalesced_bytes / config_.chunk_bytes, 1, 64);
  const auto queue_chunks = [&](double buffer_bytes) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(buffer_bytes / config_.chunk_bytes));
  };
  sender_queue_ = std::make_unique<StagingQueue>(
      queue_chunks(config_.sender_buffer_bytes), config_.lock_free_staging);
  receiver_queue_ = std::make_unique<StagingQueue>(
      queue_chunks(config_.receiver_buffer_bytes), config_.lock_free_staging);
  // Enough pooled payloads to cover every chunk that can be in flight at
  // once (both staging buffers plus one per worker), bounded so a large
  // buffer config cannot pin unbounded memory.
  const std::size_t in_flight = sender_queue_->capacity() +
                                receiver_queue_->capacity() +
                                static_cast<std::size_t>(config_.max_threads) * 3;
  payload_pool_.set_max_buffers(std::min<std::size_t>(in_flight, 512));
  // I/O backend seam: resolve the kUring *request* against the kernel once,
  // here, so every downstream decision (arena allocation, stream pool
  // config, worker loop selection) keys off one bool and the io.backend_*
  // telemetry always reflects what actually runs.
  if (config_.io_backend == IoBackend::kUring) {
    uring_active_ = net::UringRing::available();
    if (!uring_active_) {
      io_fallbacks_.fetch_add(1);
      LOG_WARN("io_uring requested but unavailable; falling back to the "
               "syscall backend");
    }
  }
  if (uring_active_) {
    // Reader-side payload blocks: one chunk per block, stable addresses for
    // IORING_REGISTER_BUFFERS, bounded like the vector pool.
    payload_arena_ = std::make_unique<ArenaPool>(
        config_.chunk_bytes, std::min<std::size_t>(in_flight, 512),
        config_.debug_poison_leases);
    if (config_.backend == NetworkBackend::kTcp) {
      // Receive blocks hold several coalesced frames each; a block must fit
      // at least one full frame or every chunk pays a boundary copy.
      const std::size_t block_bytes = std::max<std::size_t>(
          2 * (static_cast<std::size_t>(config_.chunk_bytes) + 128),
          256 * 1024);
      const std::size_t block_count = std::clamp<std::size_t>(
          2 * receiver_queue_->capacity() * config_.chunk_bytes / block_bytes +
              4,
          4, 512);
      recv_arena_ = std::make_unique<ArenaPool>(block_bytes, block_count,
                                                config_.debug_poison_leases);
    }
  }
  sendfile_on_ = config_.backend == NetworkBackend::kTcp &&
                 config_.tcp.sendfile && !config_.file_io.source_dir.empty() &&
                 !config_.verify_payload;
  stage_clocks_on_ =
      config_.telemetry.enabled && config_.telemetry.stage_clocks;
  if (stage_clocks_on_)
    for (telemetry::StageClockSet& set : stage_clocks_)
      set.resize(static_cast<std::size_t>(config_.max_threads));
  trace_on_ = telemetry::kTraceCompiledIn && config_.telemetry.enabled &&
              config_.telemetry.sample_every > 0;
  wire_stamp_on_ = trace_on_ && config_.telemetry.wire_stamp;
  sampler_.set_every(trace_on_ ? config_.telemetry.sample_every : 0);
  if (trace_on_ && config_.telemetry.exporter != nullptr) {
    telemetry::TraceExporter& exp = *config_.telemetry.exporter;
    trk_read_ = exp.track("sender", "read");
    trk_net_ = exp.track("sender", "network");
    trk_write_ = exp.track("receiver", "write");
    trk_e2e_ = exp.track("receiver", "e2e");
  }
  register_metrics();
}

void TransferSession::register_metrics() {
  // Registration order IS the sampling order (metrics.hpp memory model), and
  // sampling downstream-first is what makes one snapshot self-consistent:
  // every progress counter is monotone and incremented upstream-first (count-
  // before-push), so a later-sampled upstream counter can only be >= the
  // downstream one already in the snapshot. Hence bytes_written <= bytes_sent
  // <= bytes_read in every stats() view, and finished (sampled first) implies
  // the totals that follow are final.
  registry_.register_callback("engine.finished", [this] {
    return finished_.load() ? 1.0 : 0.0;
  });
  bytes_written_ = registry_.counter("write.bytes");
  chunks_written_ = registry_.counter("write.chunks");
  verify_failures_ = registry_.counter("write.verify_failures");
  const auto queue_metrics = [this](const std::string& prefix,
                                    StagingQueue* queue) {
    registry_.register_callback(prefix + ".chunks", [queue] {
      return static_cast<double>(queue->size());
    });
    registry_.register_callback(prefix + ".capacity", [queue] {
      return static_cast<double>(queue->capacity());
    });
    registry_.register_callback(prefix + ".push_stalls", [queue] {
      return static_cast<double>(queue->counters().push_stalls);
    });
    registry_.register_callback(prefix + ".push_parks", [queue] {
      return static_cast<double>(queue->counters().push_parks);
    });
    registry_.register_callback(prefix + ".pop_stalls", [queue] {
      return static_cast<double>(queue->counters().pop_stalls);
    });
    registry_.register_callback(prefix + ".pop_parks", [queue] {
      return static_cast<double>(queue->counters().pop_parks);
    });
  };
  queue_metrics("receiver_queue", receiver_queue_.get());
  bytes_sent_ = registry_.counter("network.bytes");
  chunks_forwarded_ = registry_.counter("network.chunks");
  queue_metrics("sender_queue", sender_queue_.get());
  bytes_read_ = registry_.counter("read.bytes");
  chunks_pushed_ = registry_.counter("read.chunks");
  registry_.register_callback("pool.payload_hits", [this] {
    return static_cast<double>(payload_pool_.hits());
  });
  registry_.register_callback("pool.payload_misses", [this] {
    return static_cast<double>(payload_pool_.misses());
  });
  // I/O backend seam: which backend actually runs plus the two per-chunk
  // overhead denominators. syscalls_total sums storage I/O (pread/pwrite and
  // storage-ring enters) with the data plane's socket syscalls and ring
  // enters; the net pointers only exist once the Tcp backend is up, hence
  // the net_ready_ acquire gate.
  registry_.register_callback("io.backend_uring", [this] {
    return uring_active_ ? 1.0 : 0.0;
  });
  registry_.register_callback("io.backend_fallbacks", [this] {
    return static_cast<double>(io_fallbacks_.load());
  });
  registry_.register_callback("io.syscalls_total", [this] {
    std::uint64_t total = storage_syscalls_.load();
    if (net_ready_.load(std::memory_order_acquire)) {
      total += stream_pool_->io_syscalls() + stream_acceptor_->io_syscalls();
    }
    return static_cast<double>(total);
  });
  registry_.register_callback("io.payload_copies_total", [this] {
    std::uint64_t total = engine_payload_copies_.load();
    if (net_ready_.load(std::memory_order_acquire))
      total += stream_acceptor_->payload_copies();
    return static_cast<double>(total);
  });
  // Receive-plane slice of the two denominators above, plus how the
  // zero-copy ingest paths engaged: chunks spliced socket→file and readers
  // currently on the multishot RECV plane. All acceptor-side, so they read
  // zero under InProcess and before the Tcp backend is up.
  registry_.register_callback("io.recv_syscalls_total", [this] {
    if (!net_ready_.load(std::memory_order_acquire)) return 0.0;
    return static_cast<double>(stream_acceptor_->io_syscalls());
  });
  registry_.register_callback("io.recv_copies_total", [this] {
    if (!net_ready_.load(std::memory_order_acquire)) return 0.0;
    return static_cast<double>(stream_acceptor_->payload_copies());
  });
  registry_.register_callback("io.recv_splices", [this] {
    if (!net_ready_.load(std::memory_order_acquire)) return 0.0;
    return static_cast<double>(stream_acceptor_->splices());
  });
  registry_.register_callback("io.recv_multishot_streams", [this] {
    if (!net_ready_.load(std::memory_order_acquire)) return 0.0;
    return static_cast<double>(stream_acceptor_->multishot_streams());
  });
  if (uring_active_) {
    registry_.register_callback("pool.arena_heap_fallbacks", [this] {
      return static_cast<double>(
          payload_arena_->heap_fallbacks() +
          (recv_arena_ ? recv_arena_->heap_fallbacks() : 0));
    });
  }
  registry_.register_callback("read.bucket_waits", [this] {
    return static_cast<double>(read_bucket_.waits());
  });
  registry_.register_callback("network.bucket_waits", [this] {
    return static_cast<double>(network_bucket_.waits());
  });
  registry_.register_callback("write.bucket_waits", [this] {
    return static_cast<double>(write_bucket_.waits());
  });
  registry_.register_callback("engine.concurrency_read", [this] {
    return static_cast<double>(concurrency().read);
  });
  registry_.register_callback("engine.concurrency_network", [this] {
    return static_cast<double>(concurrency().network);
  });
  registry_.register_callback("engine.concurrency_write", [this] {
    return static_cast<double>(concurrency().write);
  });
  hist_read_service_ = registry_.histogram("read.service_ns");
  hist_sender_wait_ = registry_.histogram("sender_queue.wait_ns");
  hist_net_service_ = registry_.histogram("network.service_ns");
  hist_recv_wait_ = registry_.histogram("receiver_queue.wait_ns");
  hist_write_service_ = registry_.histogram("write.service_ns");
  hist_batch_chunks_ = registry_.histogram("network.batch_chunks");
  // End-to-end spans: reader origin stamp → writer completion. Under the Tcp
  // backend these only fill in with wire_stamp on (the origin must cross the
  // wire); trace.wire_ns additionally needs the clock-sync offset to be
  // meaningful across real hosts.
  hist_e2e_ = registry_.histogram("trace.e2e_ns");
  hist_wire_ = registry_.histogram("trace.wire_ns");
  trace_skew_ = registry_.counter("trace.clock_skew");

  // Stage clocks + online bottleneck attribution (DESIGN.md §14). All cold:
  // evaluated only at snapshot time, reading relaxed per-worker slots.
  if (!stage_clocks_on_) return;
  for (const Stage stage : kAllStages) {
    const int s = static_cast<int>(stage);
    const std::string prefix = std::string("stage.") + stage_name(stage);
    registry_.register_callback(prefix + ".busy_ns", [this, s] {
      return static_cast<double>(stage_clocks_[s].totals().busy_ns);
    });
    registry_.register_callback(prefix + ".blocked_up_ns", [this, s] {
      return static_cast<double>(stage_clocks_[s].totals().blocked_upstream_ns);
    });
    registry_.register_callback(prefix + ".blocked_down_ns", [this, s] {
      return static_cast<double>(
          stage_clocks_[s].totals().blocked_downstream_ns);
    });
    registry_.register_callback(prefix + ".parked_ns", [this, s] {
      return static_cast<double>(stage_clocks_[s].totals().parked_ns);
    });
    registry_.register_callback(prefix + ".throttle_ns", [this, s] {
      return static_cast<double>(stage_throttle_ns_[s].load());
    });
  }
  // pipeline.bottleneck refreshes the attributor (rate-limited internally);
  // it registers BEFORE the fraction gauges so one snapshot reads one
  // consistent attribution window.
  registry_.register_callback("pipeline.bottleneck", [this] {
    attributor_.update(pipeline_sample(), telemetry::now_ns());
    return static_cast<double>(attributor_.attribution().bottleneck);
  });
  for (const Stage stage : kAllStages) {
    const int s = static_cast<int>(stage);
    const std::string prefix = std::string("stage.") + stage_name(stage);
    registry_.register_callback(prefix + ".busy_frac", [this, s] {
      return attributor_.attribution().stages[s].busy_frac;
    });
    registry_.register_callback(prefix + ".blocked_frac", [this, s] {
      return attributor_.attribution().stages[s].blocked_frac;
    });
    registry_.register_callback(prefix + ".eff_mbps", [this, s] {
      return attributor_.attribution().stages[s].eff_mbps;
    });
  }
}

telemetry::PipelineSample TransferSession::pipeline_sample() const {
  telemetry::PipelineSample sample;
  const std::uint64_t now = telemetry::now_ns();
  const telemetry::Counter* bytes[3] = {bytes_read_, bytes_sent_,
                                        bytes_written_};
  for (int s = 0; s < 3; ++s) {
    sample.stages[s].clocks = stage_clocks_[s].totals(now);
    sample.stages[s].throttle_ns = stage_throttle_ns_[s].load();
    sample.stages[s].bytes = bytes[s] ? bytes[s]->value() : 0;
  }
  // The network stage blocks *inside* the socket layer when the kernel send
  // buffer is full (its workers look busy to their own clock); fold the
  // socket-level POLLOUT wait back into blocked-downstream.
  if (net_ready_.load(std::memory_order_acquire)) {
    const std::uint64_t wait = stream_pool_->send_wait_ns();
    telemetry::StageClockTotals& net = sample.stages[1].clocks;
    net.blocked_downstream_ns += wait;
    net.busy_ns -= std::min(net.busy_ns, wait);
  }
  return sample;
}

std::string TransferSession::bottleneck_report() {
  if (!stage_clocks_on_) return {};
  attributor_.update(pipeline_sample(), telemetry::now_ns());
  return attributor_.describe();
}

TransferSession::~TransferSession() { stop(); }

bool TransferSession::start_tcp_backend() {
  net::SocketOptions socket_options;
  socket_options.no_delay = config_.tcp.no_delay;
  socket_options.send_buffer_bytes = config_.tcp.send_buffer_bytes;
  socket_options.recv_buffer_bytes = config_.tcp.recv_buffer_bytes;
  net::StreamAcceptorConfig acceptor_config;
  acceptor_config.host = config_.tcp.host;
  acceptor_config.port = config_.tcp.port;
  acceptor_config.payload_pool = &payload_pool_;
  acceptor_config.socket = socket_options;
  // Uring backend: frames land in recv-arena blocks and payloads are carved
  // out as leases — the zero-copy receive path.
  acceptor_config.lease_pool = recv_arena_.get();
  acceptor_config.use_uring = uring_active_;
  // Receive-side splice seam (the socket→file twin of sendfile): only
  // unchecked inbound frames qualify, so this can never bypass payload
  // verification — with verify on the sender checksums every frame and the
  // acceptor assembles it in userspace as before. setup_file_io() has
  // already run, so the sink fds referenced here exist for the session's
  // whole life.
  if (uring_active_ && config_.tcp.splice && !sink_fds_.empty() &&
      !config_.verify_payload) {
    acceptor_config.splice_sink = [this](std::uint64_t file_id, std::uint64_t,
                                         std::uint32_t) {
      return file_id < sink_fds_.size()
                 ? sink_fds_[static_cast<std::size_t>(file_id)]
                 : -1;
    };
  }
  stream_acceptor_ = std::make_unique<net::StreamAcceptor>(
      acceptor_config, [this](net::WireChunk&& wire) {
        Chunk chunk;
        chunk.file_id = wire.file_id;
        chunk.offset = wire.offset;
        chunk.size = wire.size;
        chunk.checksum = wire.checksum;
        chunk.payload = std::move(wire.payload);
        chunk.lease = std::move(wire.lease);
        if constexpr (telemetry::kTraceCompiledIn) {
          if (wire.trace_send_ns != 0) {
            // Wire-stamped chunk: the sender's stamps arrived in the traced
            // frame extension. Shift them into the local timebase with the
            // clock-sync offset (0 when unsynced — exact for single-process
            // loopback) and close the wire-latency span here.
            const std::int64_t off =
                config_.telemetry.clock ? config_.telemetry.clock->offset_ns()
                                        : 0;
            const std::uint64_t now = telemetry::now_ns();
            chunk.trace_origin_ns = shift_ns(wire.trace_origin_ns, off);
            chunk.trace_enqueue_ns = now;
            hist_wire_->record(telemetry::span_ns(
                shift_ns(wire.trace_send_ns, off), now, trace_skew_));
          } else if (!wire_stamp_on_ && sampler_.should_sample()) {
            // Untraced frame without wire stamping: sampled chunks are
            // re-chosen and re-stamped here for the receiver-queue-wait /
            // write-service spans (no cross-wire correlation). With wire
            // stamping on, sampling is decided once, on the sender.
            chunk.trace_enqueue_ns = telemetry::now_ns();
          }
        }
        if (!receiver_queue_->push(std::move(chunk))) return false;
        if (chunks_forwarded_->add() == total_chunks_) {
          receiver_queue_->close();
        }
        return true;
      });
  if (!stream_acceptor_->start()) {
    stream_acceptor_.reset();
    return false;
  }
  net::StreamPoolConfig pool_config;
  pool_config.host = config_.tcp.host;
  pool_config.port = stream_acceptor_->port();
  pool_config.max_streams = config_.max_threads;
  pool_config.connector.connect_timeout_s = config_.tcp.connect_timeout_s;
  pool_config.connector.max_attempts = config_.tcp.connect_attempts;
  pool_config.io_timeout_s = config_.tcp.io_timeout_s;
  pool_config.socket = socket_options;
  pool_config.use_uring = uring_active_;
  // Serve-plane addressing: a nonzero session id stamps every chunk frame
  // with the 4-byte header extension; 0 keeps the legacy wire format.
  pool_config.session_id = config_.session_id;
  stream_pool_ = std::make_unique<net::StreamPool>(pool_config);
  stream_pool_->set_active(concurrency().network);
  // Publish both data-plane pointers to the io.* metric callbacks.
  net_ready_.store(true, std::memory_order_release);
  // Data-plane health gauges exist only once the backend does; registered
  // here (before any worker starts) rather than in register_metrics().
  registry_.register_callback("net.streams_open", [this] {
    return static_cast<double>(stream_acceptor_->streams_open());
  });
  registry_.register_callback("net.streams_parked", [this] {
    return static_cast<double>(stream_acceptor_->streams_parked());
  });
  registry_.register_callback("net.streams_active", [this] {
    return static_cast<double>(stream_acceptor_->streams_active());
  });
  registry_.register_callback("net.frame_errors", [this] {
    return static_cast<double>(stream_acceptor_->frame_errors());
  });
  registry_.register_callback("net.send_failures", [this] {
    return static_cast<double>(stream_pool_->send_failures());
  });
  registry_.register_callback("net.chunks_coalesced", [this] {
    return static_cast<double>(stream_pool_->chunks_sent());
  });
  registry_.register_callback("net.batch_writes", [this] {
    return static_cast<double>(stream_pool_->batch_writes());
  });
  return true;
}

void TransferSession::start(ConcurrencyTuple initial) {
  assert(!started_);
  started_ = true;
  set_concurrency(initial);
  if (total_chunks_ == 0) {
    finished_.store(true);
    sender_queue_->close();
    receiver_queue_->close();
    finish_cv_.notify_all();
    return;
  }
  if (!setup_file_io()) {
    // Unusable source/sink directory: surface as an immediately-stopped
    // session rather than a hang (same contract as a dead listener below).
    stop();
    return;
  }
  const bool tcp = config_.backend == NetworkBackend::kTcp;
  if (tcp && !start_tcp_backend()) {
    // Could not bind the data-plane listener (port in use): surface as an
    // immediately-stopped session rather than a hang.
    stop();
    return;
  }
  workers_.reserve(static_cast<std::size_t>(config_.max_threads) * 3);
  const bool file_source = !source_fds_.empty();
  for (int i = 0; i < config_.max_threads; ++i)
    workers_.emplace_back([this, i, file_source] {
      file_source ? reader_loop_file(i) : reader_loop(i);
    });
  for (int i = 0; i < config_.max_threads; ++i)
    workers_.emplace_back(
        [this, i, tcp] { tcp ? network_loop_tcp(i) : network_loop(i); });
  for (int i = 0; i < config_.max_threads; ++i)
    workers_.emplace_back([this, i] { writer_loop(i); });
}

void TransferSession::set_concurrency(ConcurrencyTuple tuple) {
  const ConcurrencyTuple t = tuple.clamped(1, config_.max_threads);
  {
    std::lock_guard lock(gate_mutex_);
    active_[0] = t.read;
    active_[1] = t.network;
    active_[2] = t.write;
  }
  gate_cv_.notify_all();
  update_bucket_rates();
  // Tcp backend: park/resume the per-worker data streams so the receiver
  // observes the new n_n as a changed active-stream count.
  if (stream_pool_) stream_pool_->set_active(t.network);
}

ConcurrencyTuple TransferSession::concurrency() const {
  std::lock_guard lock(gate_mutex_);
  return {active_[0], active_[1], active_[2]};
}

void TransferSession::update_bucket_rates() {
  const ConcurrencyTuple t = concurrency();
  read_bucket_.set_rate(config_.read.rate_for(t.read));
  network_bucket_.set_rate(config_.network.rate_for(t.network));
  write_bucket_.set_rate(config_.write.rate_for(t.write));
}

telemetry::MetricsSnapshot TransferSession::telemetry_snapshot() const {
  return registry_.snapshot();
}

TransferStats TransferSession::stats() const {
  // One snapshot pass assembles the whole struct: cross-field consistency
  // comes from the registry's downstream-first sampling order, not from any
  // lock on the workers (queue sizes remain approximate by design).
  const telemetry::MetricsSnapshot snap = registry_.snapshot();
  const auto u64 = [&snap](std::string_view name) {
    return static_cast<std::uint64_t>(snap.value_or(name));
  };
  TransferStats s;
  s.generation = snap.generation;
  s.finished = snap.value_or("engine.finished") != 0.0;
  s.bytes_written = snap.value_or("write.bytes");
  s.chunks_written = u64("write.chunks");
  s.verify_failures = u64("write.verify_failures");
  s.receiver_queue_chunks = static_cast<std::size_t>(
      snap.value_or("receiver_queue.chunks"));
  s.receiver_queue_counters = {u64("receiver_queue.push_stalls"),
                               u64("receiver_queue.push_parks"),
                               u64("receiver_queue.pop_stalls"),
                               u64("receiver_queue.pop_parks")};
  s.bytes_sent = snap.value_or("network.bytes");
  s.sender_queue_chunks = static_cast<std::size_t>(
      snap.value_or("sender_queue.chunks"));
  s.sender_queue_counters = {u64("sender_queue.push_stalls"),
                             u64("sender_queue.push_parks"),
                             u64("sender_queue.pop_stalls"),
                             u64("sender_queue.pop_parks")};
  s.bytes_read = snap.value_or("read.bytes");
  s.net_streams_open = static_cast<int>(snap.value_or("net.streams_open"));
  s.net_streams_parked = static_cast<int>(snap.value_or("net.streams_parked"));
  s.net_streams_active = static_cast<int>(snap.value_or("net.streams_active"));
  s.net_frame_errors = u64("net.frame_errors");
  s.net_send_failures = u64("net.send_failures");
  s.net_chunks_coalesced = u64("net.chunks_coalesced");
  s.net_batch_writes = u64("net.batch_writes");
  s.payload_pool_hits = u64("pool.payload_hits");
  s.payload_pool_misses = u64("pool.payload_misses");
  s.io_backend_uring = static_cast<int>(snap.value_or("io.backend_uring"));
  s.io_backend_fallbacks = u64("io.backend_fallbacks");
  s.io_syscalls = u64("io.syscalls_total");
  s.payload_copies = u64("io.payload_copies_total");
  s.recv_syscalls = u64("io.recv_syscalls_total");
  s.recv_copies = u64("io.recv_copies_total");
  s.recv_splices = u64("io.recv_splices");
  s.recv_multishot_streams =
      static_cast<int>(snap.value_or("io.recv_multishot_streams"));
  return s;
}

bool TransferSession::wait_finished(double timeout_s) {
  std::unique_lock lock(finish_mutex_);
  return finish_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                             [&] { return finished_.load(); });
}

void TransferSession::stop() {
  if (stopping_.exchange(true)) {
    workers_.clear();  // join if not already joined
    return;
  }
  sender_queue_->close();
  receiver_queue_->close();
  read_bucket_.shutdown();
  network_bucket_.shutdown();
  write_bucket_.shutdown();
  // Wake any network worker blocked in a socket write, then stop the
  // receiver side (its handler exits via the now-closed receiver queue).
  if (stream_pool_) stream_pool_->close();
  if (stream_acceptor_) stream_acceptor_->stop();
  gate_cv_.notify_all();
  finish_cv_.notify_all();
  workers_.clear();  // jthread joins
  // Workers are gone; the file descriptors they read/wrote can close now.
  for (int fd : source_fds_)
    if (fd >= 0) ::close(fd);
  for (int fd : sink_fds_)
    if (fd >= 0) ::close(fd);
  source_fds_.clear();
  sink_fds_.clear();
}

bool TransferSession::wait_for_turn(Stage stage, int worker_id,
                                    telemetry::StageClock* clock) {
  const int idx = static_cast<int>(stage);
  std::unique_lock lock(gate_mutex_);
  const auto turn = [&] {
    return stopping_.load() || finished_.load() || worker_id < active_[idx];
  };
  if (!turn()) {
    // Gated below the active count: deliberately idle, not blocked — the
    // lazy-transition discipline means an ungated worker never gets here.
    if (clock != nullptr) clock->enter(telemetry::WorkerState::kParked);
    gate_cv_.wait(lock, turn);
    if (clock != nullptr) clock->enter(telemetry::WorkerState::kBusy);
  }
  return !stopping_.load() && !finished_.load();
}

bool TransferSession::pop_staged(StagingQueue& queue, Chunk& out,
                                 telemetry::StageClock* clock) {
  if (clock == nullptr) return queue.pop(out);
  if (queue.try_pop(out)) return true;  // hot path: no clock reads
  clock->enter(telemetry::WorkerState::kBlockedUpstream);
  const bool ok = queue.pop(out);
  clock->enter(telemetry::WorkerState::kBusy);
  return ok;
}

bool TransferSession::push_staged(StagingQueue& queue, Chunk chunk,
                                  telemetry::StageClock* clock) {
  if (clock == nullptr) return queue.push(std::move(chunk));
  if (queue.try_push(chunk)) return true;  // moves only on success
  clock->enter(telemetry::WorkerState::kBlockedDownstream);
  const bool ok = queue.push(std::move(chunk));
  clock->enter(telemetry::WorkerState::kBusy);
  return ok;
}

bool TransferSession::acquire_timed(TokenBucket& bucket, double bytes,
                                    Stage stage,
                                    telemetry::StageClock* clock) {
  // Unthrottled buckets keep their lock-free no-clock fast path; a throttled
  // stage is already on a sleeping path, so two clock reads are free there.
  if (clock == nullptr || !bucket.throttled()) return bucket.acquire(bytes);
  const std::uint64_t t0 =
      clock->enter(telemetry::WorkerState::kBlockedDownstream);
  const bool ok = bucket.acquire(bytes);
  const std::uint64_t t1 = clock->enter(telemetry::WorkerState::kBusy);
  stage_throttle_ns_[static_cast<int>(stage)].fetch_add(
      t1 - t0, std::memory_order_relaxed);
  return ok;
}

bool TransferSession::acquire_batch_timed(TokenBucket& bucket,
                                          double total_bytes, int grants,
                                          Stage stage,
                                          telemetry::StageClock* clock) {
  if (clock == nullptr || !bucket.throttled())
    return bucket.acquire_batch(total_bytes, grants);
  const std::uint64_t t0 =
      clock->enter(telemetry::WorkerState::kBlockedDownstream);
  const bool ok = bucket.acquire_batch(total_bytes, grants);
  const std::uint64_t t1 = clock->enter(telemetry::WorkerState::kBusy);
  stage_throttle_ns_[static_cast<int>(stage)].fetch_add(
      t1 - t0, std::memory_order_relaxed);
  return ok;
}

void TransferSession::reader_loop(int worker_id) {
  telemetry::StageClock* clock = stage_clock(Stage::kRead, worker_id);
  if (clock != nullptr) clock->start();
  while (wait_for_turn(Stage::kRead, worker_id, clock)) {
    // Claim the next chunk of the dataset: one atomic ticket, then map the
    // global chunk index back to (file, offset).
    const std::uint64_t idx =
        claim_cursor_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= total_chunks_) break;  // all chunks claimed
    // Fault injection (tests / CI stall smoke): the reader claiming this
    // chunk goes silent once while its siblings drain the rest, so the
    // pipeline stalls just short of completion — the watchdog's signature.
    if (config_.fault.reader_stall_after_chunks > 0 &&
        idx >= config_.fault.reader_stall_after_chunks &&
        !fault_fired_.exchange(true)) {
      LOG_WARN("fault injection: reader stalling "
               << config_.fault.reader_stall_s << "s at chunk " << idx);
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(config_.fault.reader_stall_s));
      while (!stopping_.load() && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (stopping_.load()) break;
    }
    const auto it = std::upper_bound(file_first_chunk_.begin(),
                                     file_first_chunk_.end(), idx);
    const auto file = static_cast<std::size_t>(
        std::distance(file_first_chunk_.begin(), it) - 1);
    Chunk chunk;
    chunk.file_id = file;
    chunk.offset = (idx - file_first_chunk_[file]) * config_.chunk_bytes;
    const double remaining =
        file_sizes_[file] - static_cast<double>(chunk.offset);
    chunk.size = static_cast<std::uint32_t>(
        std::min<double>(config_.chunk_bytes, remaining));

    if (!acquire_timed(read_bucket_, chunk.size, Stage::kRead, clock)) break;

    // Trace span: service time for this stage's real work (payload fill +
    // checksum), then stamp the enqueue instant into the chunk header so the
    // network stage can attribute its queue wait. Unsampled chunks pay one
    // relaxed load here and a zero-test downstream.
    std::uint64_t trace_t0 = 0;
    if constexpr (telemetry::kTraceCompiledIn) {
      if (sampler_.should_sample()) trace_t0 = telemetry::now_ns();
    }

    if (config_.fill_payload) {
      // Cheap deterministic pattern derived from (file, offset).
      const auto seed = static_cast<std::uint8_t>(
          chunk.file_id * 131 + chunk.offset / config_.chunk_bytes);
      if (payload_arena_) {
        // Uring backend: the payload is born in an arena lease and never
        // copied again — the network stage gathers it straight into the
        // socket and the writer releases the same bytes.
        chunk.lease = payload_arena_->acquire();
        chunk.lease.truncate(chunk.size);
        std::byte* data = chunk.lease.data();
        for (std::size_t i = 0; i < chunk.size; ++i)
          data[i] = static_cast<std::byte>(
              static_cast<std::uint8_t>(seed + i));
        chunk.checksum = chunk_checksum(data, chunk.size);
      } else {
        chunk.payload = payload_pool_.acquire(chunk.size);
        for (std::size_t i = 0; i < chunk.payload.size(); ++i)
          chunk.payload[i] = static_cast<std::byte>(
              static_cast<std::uint8_t>(seed + i));
        chunk.checksum = chunk_checksum(chunk.payload);
      }
    }

    if constexpr (telemetry::kTraceCompiledIn) {
      if (trace_t0 != 0) {
        const std::uint64_t now = telemetry::now_ns();
        hist_read_service_->record(
            telemetry::span_ns(trace_t0, now, trace_skew_));
        chunk.trace_enqueue_ns = now;
        chunk.trace_origin_ns = trace_t0;
        if (trk_read_ >= 0) {
          config_.telemetry.exporter->emit(
              trk_read_, "read", trace_t0, now - trace_t0,
              chunk_trace_id(chunk.file_id, chunk.offset));
        }
      }
    }

    const std::uint32_t size = chunk.size;
    // Count before publishing: once the chunk is visible downstream the
    // pipeline can finish, and stats() must already include it.
    bytes_read_->add(size);
    if (!push_staged(*sender_queue_, std::move(chunk), clock)) {
      bytes_read_->sub(size);
      break;
    }
    if (chunks_pushed_->add() == total_chunks_) {
      sender_queue_->close();  // no more data will be produced
    }
  }
  if (clock != nullptr) clock->enter(telemetry::WorkerState::kParked);
}

bool TransferSession::pop_batch(StagingQueue& queue, std::vector<Chunk>& batch,
                                std::uint64_t& total_bytes,
                                telemetry::StageClock* clock) {
  batch.clear();
  total_bytes = 0;
  Chunk first;
  if (!pop_staged(queue, first, clock)) return false;  // closed and drained
  total_bytes += first.size;
  batch.push_back(std::move(first));
  const std::uint64_t byte_budget = config_.tcp.max_coalesced_bytes;
  while (batch.size() < batch_chunks_ && total_bytes < byte_budget) {
    Chunk more;
    if (!queue.try_pop(more)) break;  // nothing else staged right now
    total_bytes += more.size;
    batch.push_back(std::move(more));
  }
  return true;
}

void TransferSession::network_loop_tcp(int worker_id) {
  telemetry::StageClock* clock = stage_clock(Stage::kNetwork, worker_id);
  if (clock != nullptr) clock->start();
  std::vector<Chunk> batch;
  std::vector<net::WireChunk> wires;
  batch.reserve(batch_chunks_);
  wires.reserve(batch_chunks_);
  while (wait_for_turn(Stage::kNetwork, worker_id, clock)) {
    std::uint64_t total = 0;
    if (!pop_batch(*sender_queue_, batch, total, clock)) break;
    // One admission for the whole batch: a single bucket round-trip (none
    // at all when the stage is unthrottled).
    if (!acquire_batch_timed(network_bucket_, static_cast<double>(total),
                             static_cast<int>(batch.size()), Stage::kNetwork,
                             clock)) {
      break;
    }
    if (sendfile_on_) {
      // Kernel fast path: each chunk leaves as a header write plus one
      // sendfile(2) straight out of the source fd — the payload bytes never
      // transit sender user space (so the frames go out unchecked).
      bytes_sent_->add(total);
      bool ok = true;
      for (Chunk& chunk : batch) {
        net::WireChunk meta;
        meta.file_id = chunk.file_id;
        meta.offset = chunk.offset;
        meta.size = chunk.size;
        meta.checksum = chunk.checksum;
        if (!stream_pool_->send_chunk_file(
                worker_id, meta,
                source_fds_[static_cast<std::size_t>(chunk.file_id)])) {
          ok = false;
          break;
        }
      }
      if (!ok) {
        bytes_sent_->sub(total);
        if (!stopping_.load() && config_.telemetry.flight != nullptr)
          config_.telemetry.flight->dump("data-plane send failure");
        break;
      }
      continue;
    }
    // The trace stamp does not cross the wire (the acceptor re-samples), so
    // the sender side closes both spans here: queue wait at pop time,
    // service once the gathered write returns.
    std::uint64_t trace_t0 = 0;
    std::size_t trace_sampled = 0;
    if constexpr (telemetry::kTraceCompiledIn) {
      if (trace_on_) {
        trace_t0 = telemetry::now_ns();
        hist_batch_chunks_->record(batch.size());
        for (const Chunk& chunk : batch) {
          if (chunk.trace_enqueue_ns != 0) {
            ++trace_sampled;
            hist_sender_wait_->record(telemetry::span_ns(
                chunk.trace_enqueue_ns, trace_t0, trace_skew_));
          }
        }
      }
    }
    wires.clear();
    for (Chunk& chunk : batch) {
      net::WireChunk wire;
      wire.file_id = chunk.file_id;
      wire.offset = chunk.offset;
      wire.size = chunk.size;
      wire.checksum = chunk.checksum;
      if constexpr (telemetry::kTraceCompiledIn) {
        // Sampled chunk + wire stamping on: the stamps ride the traced
        // frame extension; trace_send_ns != 0 is what flags the frame.
        if (wire_stamp_on_ && chunk.trace_enqueue_ns != 0) {
          wire.trace_origin_ns = chunk.trace_origin_ns;
          wire.trace_send_ns = telemetry::now_ns();
        }
      }
      wire.payload = std::move(chunk.payload);
      wire.lease = std::move(chunk.lease);
      wires.push_back(std::move(wire));
    }
    // Count before the frames leave: once the last chunk lands on the
    // receiver the pipeline can finish, and stats() must already show it.
    bytes_sent_->add(total);
    if (!stream_pool_->send_chunks(worker_id, wires.data(), wires.size())) {
      bytes_sent_->sub(total);
      if (!stopping_.load() && config_.telemetry.flight != nullptr)
        config_.telemetry.flight->dump("data-plane send failure");
      break;
    }
    if constexpr (telemetry::kTraceCompiledIn) {
      if (trace_sampled != 0) {
        const std::uint64_t now = telemetry::now_ns();
        const std::uint64_t span =
            telemetry::span_ns(trace_t0, now, trace_skew_);
        for (std::size_t i = 0; i < trace_sampled; ++i)
          hist_net_service_->record(span);
        if (trk_net_ >= 0) {
          for (const Chunk& chunk : batch) {
            if (chunk.trace_enqueue_ns != 0) {
              config_.telemetry.exporter->emit(
                  trk_net_, "network", trace_t0, now - trace_t0,
                  chunk_trace_id(chunk.file_id, chunk.offset));
            }
          }
        }
      }
    }
    // The wire bytes have left through the socket; recycle the payloads
    // (a lease drops straight back to its arena).
    for (net::WireChunk& wire : wires) {
      if (wire.lease.valid()) {
        wire.lease.reset();
      } else {
        payload_pool_.release(std::move(wire.payload));
      }
    }
  }
  if (clock != nullptr) clock->enter(telemetry::WorkerState::kParked);
}

void TransferSession::network_loop(int worker_id) {
  telemetry::StageClock* clock = stage_clock(Stage::kNetwork, worker_id);
  if (clock != nullptr) clock->start();
  std::vector<Chunk> batch;
  batch.reserve(batch_chunks_);
  while (wait_for_turn(Stage::kNetwork, worker_id, clock)) {
    std::uint64_t total = 0;
    if (!pop_batch(*sender_queue_, batch, total, clock)) break;
    if (!acquire_batch_timed(network_bucket_, static_cast<double>(total),
                             static_cast<int>(batch.size()), Stage::kNetwork,
                             clock)) {
      break;
    }
    // One clock read covers the whole batch: it closes every sampled
    // chunk's sender-queue wait and opens this stage's service span.
    std::uint64_t trace_t0 = 0;
    if constexpr (telemetry::kTraceCompiledIn) {
      if (trace_on_) {
        trace_t0 = telemetry::now_ns();
        hist_batch_chunks_->record(batch.size());
        for (const Chunk& chunk : batch) {
          if (chunk.trace_enqueue_ns != 0)
            hist_sender_wait_->record(telemetry::span_ns(
                chunk.trace_enqueue_ns, trace_t0, trace_skew_));
        }
      }
    }
    for (Chunk& chunk : batch) {
      if constexpr (telemetry::kTraceCompiledIn) {
        if (chunk.trace_enqueue_ns != 0) {
          const std::uint64_t now = telemetry::now_ns();
          hist_net_service_->record(
              telemetry::span_ns(trace_t0, now, trace_skew_));
          if (trk_net_ >= 0) {
            config_.telemetry.exporter->emit(
                trk_net_, "network", trace_t0, now - trace_t0,
                chunk_trace_id(chunk.file_id, chunk.offset));
          }
          chunk.trace_enqueue_ns = now;  // re-stamp for the writer stage
        }
      }
      const std::uint32_t size = chunk.size;
      bytes_sent_->add(size);
      if (!push_staged(*receiver_queue_, std::move(chunk), clock)) {
        bytes_sent_->sub(size);
        if (clock != nullptr)
          clock->enter(telemetry::WorkerState::kParked);
        return;
      }
      if (chunks_forwarded_->add() == total_chunks_) {
        receiver_queue_->close();
      }
    }
  }
  if (clock != nullptr) clock->enter(telemetry::WorkerState::kParked);
}

void TransferSession::writer_loop(int worker_id) {
  if (uring_active_ && !sink_fds_.empty()) {
    // Sink writes on the uring backend retire as batched WRITE SQEs.
    writer_loop_uring(worker_id);
    return;
  }
  telemetry::StageClock* clock = stage_clock(Stage::kWrite, worker_id);
  if (clock != nullptr) clock->start();
  // Payloads exist (and so can be verified) when the reader filled them or
  // read them from real source files; sendfile'd frames arrive unchecked
  // with no sender-side checksum to verify against.
  const bool verify = config_.verify_payload &&
                      (config_.fill_payload || !source_fds_.empty());
  while (wait_for_turn(Stage::kWrite, worker_id, clock)) {
    Chunk chunk;
    if (!pop_staged(*receiver_queue_, chunk, clock)) break;
    std::uint64_t trace_t0 = 0;
    if constexpr (telemetry::kTraceCompiledIn) {
      if (chunk.trace_enqueue_ns != 0) {
        trace_t0 = telemetry::now_ns();
        hist_recv_wait_->record(telemetry::span_ns(
            chunk.trace_enqueue_ns, trace_t0, trace_skew_));
      }
    }
    if (!acquire_timed(write_bucket_, chunk.size, Stage::kWrite, clock))
      break;
    if (verify) {
      if (chunk_checksum(chunk.payload_data(), chunk.payload_size()) !=
          chunk.checksum) {
        if (verify_failures_->add() == 1 &&
            config_.telemetry.flight != nullptr) {
          // First corruption gets a full dump; the counter tracks the rest.
          config_.telemetry.flight->dump("payload checksum verify failure");
        }
      }
    }
    if (!sink_fds_.empty() &&
        !pwrite_full(sink_fds_[static_cast<std::size_t>(chunk.file_id)],
                     chunk.payload_data(), chunk.payload_size(),
                     chunk.offset)) {
      LOG_WARN("sink pwrite failed for chunk at offset " << chunk.offset);
    }
    if (chunk.lease.valid()) {
      chunk.lease.reset();
    } else {
      payload_pool_.release(std::move(chunk.payload));
    }
    if constexpr (telemetry::kTraceCompiledIn) {
      if (trace_t0 != 0) {
        const std::uint64_t now = telemetry::now_ns();
        hist_write_service_->record(
            telemetry::span_ns(trace_t0, now, trace_skew_));
        const bool have_origin = chunk.trace_origin_ns != 0;
        if (have_origin) {
          hist_e2e_->record(telemetry::span_ns(chunk.trace_origin_ns, now,
                                               trace_skew_));
        }
        if (trk_write_ >= 0) {
          const std::string id =
              chunk_trace_id(chunk.file_id, chunk.offset);
          config_.telemetry.exporter->emit(trk_write_, "write", trace_t0,
                                           now - trace_t0, id);
          if (have_origin && now >= chunk.trace_origin_ns) {
            config_.telemetry.exporter->emit(trk_e2e_, "chunk.e2e",
                                             chunk.trace_origin_ns,
                                             now - chunk.trace_origin_ns, id);
          }
        }
      }
    }
    bytes_written_->add(chunk.size);
    if (chunks_written_->add() == total_chunks_) {
      finished_.store(true);
      gate_cv_.notify_all();
      finish_cv_.notify_all();
    }
  }
  if (clock != nullptr) clock->enter(telemetry::WorkerState::kParked);
}

void TransferSession::reader_loop_file(int worker_id) {
  // Real-file reader (FileIoOptions::source_dir). On the uring backend each
  // iteration claims a batch of chunk tickets, materializes them as arena
  // leases, and retires the whole batch of storage reads with ONE
  // submit-and-wait enter (READ_FIXED SQEs when the lease block is in the
  // registered table). On the syscall backend it claims one chunk at a time
  // and preads it. A ring-level failure degrades this worker to preads for
  // good and counts an io.backend_fallbacks.
  std::unique_ptr<net::UringRing> ring;
  if (uring_active_) {
    ring = net::UringRing::create(
        static_cast<unsigned>(std::max<std::size_t>(8, batch_chunks_ * 2)));
    if (ring && payload_arena_) {
      ring->register_buffers(
          payload_arena_->registered_iovecs(),
          static_cast<unsigned>(payload_arena_->block_count()));
    }
    if (!ring) io_fallbacks_.fetch_add(1);
  }
  std::uint64_t enters_seen = 0;
  std::vector<net::UringRing::Completion> cqes;
  std::vector<std::uint32_t> done;
  const std::uint64_t claim = ring ? batch_chunks_ : 1;
  std::vector<Chunk> batch;
  batch.reserve(static_cast<std::size_t>(claim));
  telemetry::StageClock* clock = stage_clock(Stage::kRead, worker_id);
  if (clock != nullptr) clock->start();
  while (wait_for_turn(Stage::kRead, worker_id, clock)) {
    const std::uint64_t base =
        claim_cursor_.fetch_add(claim, std::memory_order_relaxed);
    if (base >= total_chunks_) break;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(claim, total_chunks_ - base));
    // Fault injection parity with the in-memory reader.
    if (config_.fault.reader_stall_after_chunks > 0 &&
        base + n > config_.fault.reader_stall_after_chunks &&
        !fault_fired_.exchange(true)) {
      LOG_WARN("fault injection: reader stalling "
               << config_.fault.reader_stall_s << "s at chunk " << base);
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(config_.fault.reader_stall_s));
      while (!stopping_.load() && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (stopping_.load()) break;
    }
    batch.clear();
    std::uint64_t total = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t idx = base + j;
      const auto it = std::upper_bound(file_first_chunk_.begin(),
                                       file_first_chunk_.end(), idx);
      const auto file = static_cast<std::size_t>(
          std::distance(file_first_chunk_.begin(), it) - 1);
      Chunk chunk;
      chunk.file_id = file;
      chunk.offset = (idx - file_first_chunk_[file]) * config_.chunk_bytes;
      const double remaining =
          file_sizes_[file] - static_cast<double>(chunk.offset);
      chunk.size = static_cast<std::uint32_t>(
          std::min<double>(config_.chunk_bytes, remaining));
      total += chunk.size;
      batch.push_back(std::move(chunk));
    }
    if (!acquire_batch_timed(read_bucket_, static_cast<double>(total),
                             static_cast<int>(batch.size()), Stage::kRead,
                             clock)) {
      break;
    }
    if (!sendfile_on_) {
      // Materialize payloads: arena leases on the uring backend (filled in
      // place, never copied again), pooled vectors otherwise.
      for (Chunk& chunk : batch) {
        if (payload_arena_) {
          chunk.lease = payload_arena_->acquire();
          chunk.lease.truncate(chunk.size);
        } else {
          chunk.payload = payload_pool_.acquire(chunk.size);
        }
      }
      bool ring_ok = ring != nullptr;
      if (ring) {
        std::size_t prepped = 0;
        for (std::size_t j = 0; j < batch.size(); ++j) {
          Chunk& chunk = batch[j];
          const int fd =
              source_fds_[static_cast<std::size_t>(chunk.file_id)];
          std::byte* data =
              chunk.lease.valid() ? chunk.lease.data() : chunk.payload.data();
          const std::uint32_t buf_index = chunk.lease.registered_index();
          const bool ok =
              ring->buffers_registered() &&
                      buf_index != BufferLease::kUnregistered
                  ? ring->prep_read_fixed(fd, data, chunk.size, chunk.offset,
                                          buf_index, j)
                  : ring->prep_read(fd, data, chunk.size, chunk.offset, j);
          if (!ok) break;
          ++prepped;
        }
        done.assign(batch.size(), 0);
        if (prepped == batch.size() &&
            ring->submit_and_wait(static_cast<unsigned>(prepped), cqes) ==
                static_cast<int>(prepped)) {
          storage_syscalls_.fetch_add(ring->enters() - enters_seen,
                                      std::memory_order_relaxed);
          enters_seen = ring->enters();
          for (const net::UringRing::Completion& c : cqes) {
            if (c.user_data < done.size() && c.res > 0)
              done[static_cast<std::size_t>(c.user_data)] =
                  static_cast<std::uint32_t>(c.res);
          }
          // Short or failed reads finish the scalar way.
          for (std::size_t j = 0; j < batch.size(); ++j) {
            Chunk& chunk = batch[j];
            if (done[j] < chunk.size) {
              std::byte* data = chunk.lease.valid() ? chunk.lease.data()
                                                    : chunk.payload.data();
              pread_full(
                  source_fds_[static_cast<std::size_t>(chunk.file_id)],
                  data + done[j], chunk.size - done[j],
                  chunk.offset + done[j]);
            }
          }
        } else {
          // Ring went bad mid-flight: account its enters, drop to preads for
          // the rest of this worker's life.
          storage_syscalls_.fetch_add(ring->enters() - enters_seen,
                                      std::memory_order_relaxed);
          ring.reset();
          io_fallbacks_.fetch_add(1);
          ring_ok = false;
        }
      }
      if (!ring_ok) {
        for (Chunk& chunk : batch) {
          std::byte* data =
              chunk.lease.valid() ? chunk.lease.data() : chunk.payload.data();
          pread_full(source_fds_[static_cast<std::size_t>(chunk.file_id)],
                     data, chunk.size, chunk.offset);
        }
      }
      if (config_.verify_payload) {
        for (Chunk& chunk : batch)
          chunk.checksum =
              chunk_checksum(chunk.payload_data(), chunk.payload_size());
      }
    }
    // Hand off chunk by chunk with the count-before-push invariant (same
    // contract as reader_loop; trace spans reduce to origin stamps here —
    // the storage read is batch-granular, not per-chunk).
    for (Chunk& chunk : batch) {
      if constexpr (telemetry::kTraceCompiledIn) {
        if (sampler_.should_sample()) {
          const std::uint64_t now = telemetry::now_ns();
          chunk.trace_enqueue_ns = now;
          chunk.trace_origin_ns = now;
        }
      }
      const std::uint32_t size = chunk.size;
      bytes_read_->add(size);
      if (!push_staged(*sender_queue_, std::move(chunk), clock)) {
        bytes_read_->sub(size);
        if (clock != nullptr)
          clock->enter(telemetry::WorkerState::kParked);
        return;
      }
      if (chunks_pushed_->add() == total_chunks_) {
        sender_queue_->close();
      }
    }
  }
  if (clock != nullptr) clock->enter(telemetry::WorkerState::kParked);
}

void TransferSession::writer_loop_uring(int worker_id) {
  // Uring sink writer: each receiver-queue batch retires as one ring of
  // WRITE SQEs and one enter. The arena the inbound leases actually come
  // from (the recv arena under Tcp, the payload arena in process) is
  // registered on this storage ring, so a chunk whose payload still sits in
  // the very block the frame landed in goes out as WRITE_FIXED — receive
  // and sink write share one pinned buffer, no intermediate copy, no
  // per-write page pinning. Short or failed writes — and a dead ring —
  // finish via pwrite.
  std::unique_ptr<net::UringRing> ring = net::UringRing::create(
      static_cast<unsigned>(std::max<std::size_t>(8, batch_chunks_ * 2)));
  if (!ring) io_fallbacks_.fetch_add(1);
  ArenaPool* write_arena =
      recv_arena_ ? recv_arena_.get() : payload_arena_.get();
  if (ring && write_arena &&
      !ring->register_buffers(
          write_arena->registered_iovecs(),
          static_cast<unsigned>(write_arena->block_count()))) {
    write_arena = nullptr;
  }
  std::uint64_t enters_seen = 0;
  std::vector<net::UringRing::Completion> cqes;
  std::vector<Chunk> batch;
  std::vector<std::uint32_t> done;
  batch.reserve(batch_chunks_);
  const bool verify = config_.verify_payload &&
                      (config_.fill_payload || !source_fds_.empty());
  telemetry::StageClock* clock = stage_clock(Stage::kWrite, worker_id);
  if (clock != nullptr) clock->start();
  while (wait_for_turn(Stage::kWrite, worker_id, clock)) {
    std::uint64_t total = 0;
    if (!pop_batch(*receiver_queue_, batch, total, clock)) break;
    if (!acquire_batch_timed(write_bucket_, static_cast<double>(total),
                             static_cast<int>(batch.size()), Stage::kWrite,
                             clock)) {
      break;
    }
    if (verify) {
      for (const Chunk& chunk : batch) {
        if (chunk_checksum(chunk.payload_data(), chunk.payload_size()) !=
            chunk.checksum) {
          if (verify_failures_->add() == 1 &&
              config_.telemetry.flight != nullptr) {
            config_.telemetry.flight->dump("payload checksum verify failure");
          }
        }
      }
    }
    done.assign(batch.size(), 0);
    if (ring) {
      std::size_t prepped = 0;
      for (std::size_t j = 0; j < batch.size(); ++j) {
        const Chunk& chunk = batch[j];
        const int fd = sink_fds_[static_cast<std::size_t>(chunk.file_id)];
        const auto len = static_cast<unsigned>(chunk.payload_size());
        // WRITE_FIXED needs the lease's registered index to be valid against
        // THIS ring's iovec table, so the pool identity check is essential —
        // an in-process payload-arena lease must not reuse a recv-arena slot.
        const std::uint32_t buf_index = chunk.lease.registered_index();
        const bool fixed = ring->buffers_registered() &&
                           chunk.lease.pool() == write_arena &&
                           buf_index != BufferLease::kUnregistered;
        const bool ok =
            fixed ? ring->prep_write_fixed(fd, chunk.payload_data(), len,
                                           chunk.offset, buf_index, j)
                  : ring->prep_write(fd, chunk.payload_data(), len,
                                     chunk.offset, j);
        if (!ok) break;
        ++prepped;
      }
      if (prepped == batch.size() &&
          ring->submit_and_wait(static_cast<unsigned>(prepped), cqes) ==
              static_cast<int>(prepped)) {
        storage_syscalls_.fetch_add(ring->enters() - enters_seen,
                                    std::memory_order_relaxed);
        enters_seen = ring->enters();
        for (const net::UringRing::Completion& c : cqes) {
          if (c.user_data < done.size() && c.res > 0)
            done[static_cast<std::size_t>(c.user_data)] =
                static_cast<std::uint32_t>(c.res);
        }
      } else {
        storage_syscalls_.fetch_add(ring->enters() - enters_seen,
                                    std::memory_order_relaxed);
        ring.reset();
        io_fallbacks_.fetch_add(1);
      }
    }
    for (std::size_t j = 0; j < batch.size(); ++j) {
      Chunk& chunk = batch[j];
      const std::size_t want = chunk.payload_size();
      if (done[j] < want) {
        pwrite_full(sink_fds_[static_cast<std::size_t>(chunk.file_id)],
                    chunk.payload_data() + done[j], want - done[j],
                    chunk.offset + done[j]);
      }
      if (chunk.lease.valid()) {
        chunk.lease.reset();
      } else {
        payload_pool_.release(std::move(chunk.payload));
      }
      bytes_written_->add(chunk.size);
      if (chunks_written_->add() == total_chunks_) {
        finished_.store(true);
        gate_cv_.notify_all();
        finish_cv_.notify_all();
      }
    }
  }
  if (clock != nullptr) clock->enter(telemetry::WorkerState::kParked);
}

bool TransferSession::pread_full(int fd, std::byte* dst, std::size_t size,
                                 std::uint64_t offset) {
  std::size_t filled = 0;
  while (filled < size) {
    storage_syscalls_.fetch_add(1, std::memory_order_relaxed);
    const ssize_t n = ::pread(fd, dst + filled, size - filled,
                              static_cast<off_t>(offset + filled));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // file shorter than the dataset declares
    filled += static_cast<std::size_t>(n);
  }
  return true;
}

bool TransferSession::pwrite_full(int fd, const std::byte* src,
                                  std::size_t size, std::uint64_t offset) {
  std::size_t written = 0;
  while (written < size) {
    storage_syscalls_.fetch_add(1, std::memory_order_relaxed);
    const ssize_t n = ::pwrite(fd, src + written, size - written,
                               static_cast<off_t>(offset + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool TransferSession::setup_file_io() {
  if (config_.file_io.source_dir.empty() && config_.file_io.sink_dir.empty())
    return true;  // in-memory mode: nothing to do
  const std::size_t n_files = file_sizes_.size();
  if (!config_.file_io.source_dir.empty()) {
    // Create the source files with the reader's exact deterministic pattern
    // so the writer-side checksum proves the full storage→wire→storage path.
    source_fds_.assign(n_files, -1);
    std::vector<std::byte> block(config_.chunk_bytes);
    for (std::size_t f = 0; f < n_files; ++f) {
      const std::string path = config_.file_io.source_dir + "/automdt_src_" +
                               std::to_string(f) + ".dat";
      const int wfd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (wfd < 0) {
        LOG_WARN("cannot create source file " << path);
        return false;
      }
      auto remaining = static_cast<std::uint64_t>(file_sizes_[f]);
      std::uint64_t offset = 0;
      bool ok = true;
      while (ok && remaining > 0) {
        const auto len = static_cast<std::size_t>(std::min<std::uint64_t>(
            config_.chunk_bytes, remaining));
        const auto seed = static_cast<std::uint8_t>(
            f * 131 + offset / config_.chunk_bytes);
        for (std::size_t i = 0; i < len; ++i)
          block[i] = static_cast<std::byte>(
              static_cast<std::uint8_t>(seed + i));
        std::size_t filled = 0;
        while (filled < len) {
          const ssize_t w = ::pwrite(wfd, block.data() + filled, len - filled,
                                     static_cast<off_t>(offset + filled));
          if (w < 0) {
            if (errno == EINTR) continue;
            ok = false;
            break;
          }
          filled += static_cast<std::size_t>(w);
        }
        offset += len;
        remaining -= len;
      }
      ::close(wfd);
      if (!ok) return false;
      source_fds_[f] = ::open(path.c_str(), O_RDONLY);
      if (source_fds_[f] < 0) return false;
    }
  }
  if (!config_.file_io.sink_dir.empty()) {
    sink_fds_.assign(n_files, -1);
    for (std::size_t f = 0; f < n_files; ++f) {
      const std::string path = config_.file_io.sink_dir + "/automdt_sink_" +
                               std::to_string(f) + ".out";
      sink_fds_[f] = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (sink_fds_[f] < 0) {
        LOG_WARN("cannot create sink file " << path);
        return false;
      }
    }
  }
  return true;
}

}  // namespace automdt::transfer
