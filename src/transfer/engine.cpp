#include "transfer/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace automdt::transfer {

std::uint64_t chunk_checksum(const std::vector<std::byte>& payload) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::byte b : payload) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001B3ULL;
  }
  return h;
}

TransferSession::TransferSession(EngineConfig config,
                                 std::vector<double> file_sizes_bytes)
    : config_(config),
      file_sizes_(std::move(file_sizes_bytes)),
      read_bucket_(0.0),
      network_bucket_(0.0),
      write_bucket_(0.0) {
  assert(config_.chunk_bytes > 0);
  assert(config_.max_threads >= 1);
  for (double s : file_sizes_) {
    total_bytes_ += s;
    total_chunks_ += static_cast<std::uint64_t>(
        (s + config_.chunk_bytes - 1) / config_.chunk_bytes);
  }
  const auto queue_chunks = [&](double buffer_bytes) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(buffer_bytes / config_.chunk_bytes));
  };
  sender_queue_ =
      std::make_unique<MpmcQueue<Chunk>>(queue_chunks(config_.sender_buffer_bytes));
  receiver_queue_ = std::make_unique<MpmcQueue<Chunk>>(
      queue_chunks(config_.receiver_buffer_bytes));
}

TransferSession::~TransferSession() { stop(); }

void TransferSession::start(ConcurrencyTuple initial) {
  assert(!started_);
  started_ = true;
  set_concurrency(initial);
  if (total_chunks_ == 0) {
    finished_.store(true);
    sender_queue_->close();
    receiver_queue_->close();
    finish_cv_.notify_all();
    return;
  }
  workers_.reserve(static_cast<std::size_t>(config_.max_threads) * 3);
  for (int i = 0; i < config_.max_threads; ++i)
    workers_.emplace_back([this, i] { reader_loop(i); });
  for (int i = 0; i < config_.max_threads; ++i)
    workers_.emplace_back([this, i] { network_loop(i); });
  for (int i = 0; i < config_.max_threads; ++i)
    workers_.emplace_back([this, i] { writer_loop(i); });
}

void TransferSession::set_concurrency(ConcurrencyTuple tuple) {
  const ConcurrencyTuple t = tuple.clamped(1, config_.max_threads);
  {
    std::lock_guard lock(gate_mutex_);
    active_[0] = t.read;
    active_[1] = t.network;
    active_[2] = t.write;
  }
  gate_cv_.notify_all();
  update_bucket_rates();
}

ConcurrencyTuple TransferSession::concurrency() const {
  std::lock_guard lock(gate_mutex_);
  return {active_[0], active_[1], active_[2]};
}

void TransferSession::update_bucket_rates() {
  const ConcurrencyTuple t = concurrency();
  read_bucket_.set_rate(config_.read.rate_for(t.read));
  network_bucket_.set_rate(config_.network.rate_for(t.network));
  write_bucket_.set_rate(config_.write.rate_for(t.write));
}

TransferStats TransferSession::stats() const {
  TransferStats s;
  s.bytes_read = static_cast<double>(bytes_read_.load());
  s.bytes_sent = static_cast<double>(bytes_sent_.load());
  s.bytes_written = static_cast<double>(bytes_written_.load());
  s.sender_queue_chunks = sender_queue_->size();
  s.receiver_queue_chunks = receiver_queue_->size();
  s.chunks_written = chunks_written_.load();
  s.verify_failures = verify_failures_.load();
  s.finished = finished_.load();
  return s;
}

bool TransferSession::wait_finished(double timeout_s) {
  std::unique_lock lock(finish_mutex_);
  return finish_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                             [&] { return finished_.load(); });
}

void TransferSession::stop() {
  if (stopping_.exchange(true)) {
    workers_.clear();  // join if not already joined
    return;
  }
  sender_queue_->close();
  receiver_queue_->close();
  read_bucket_.shutdown();
  network_bucket_.shutdown();
  write_bucket_.shutdown();
  gate_cv_.notify_all();
  finish_cv_.notify_all();
  workers_.clear();  // jthread joins
}

bool TransferSession::wait_for_turn(Stage stage, int worker_id) {
  const int idx = static_cast<int>(stage);
  std::unique_lock lock(gate_mutex_);
  gate_cv_.wait(lock, [&] {
    return stopping_.load() || finished_.load() || worker_id < active_[idx];
  });
  return !stopping_.load() && !finished_.load();
}

void TransferSession::reader_loop(int worker_id) {
  while (wait_for_turn(Stage::kRead, worker_id)) {
    // Claim the next chunk of the dataset.
    Chunk chunk;
    {
      std::lock_guard lock(claim_mutex_);
      if (claim_file_ >= file_sizes_.size()) break;  // all chunks claimed
      const double remaining = file_sizes_[claim_file_] - claim_offset_;
      chunk.file_id = claim_file_;
      chunk.offset = static_cast<std::uint64_t>(claim_offset_);
      chunk.size = static_cast<std::uint32_t>(
          std::min<double>(config_.chunk_bytes, remaining));
      claim_offset_ += chunk.size;
      if (claim_offset_ >= file_sizes_[claim_file_]) {
        ++claim_file_;
        claim_offset_ = 0.0;
      }
    }

    if (!read_bucket_.acquire(chunk.size)) break;

    if (config_.fill_payload) {
      chunk.payload.resize(chunk.size);
      // Cheap deterministic pattern derived from (file, offset).
      const auto seed = static_cast<std::uint8_t>(
          chunk.file_id * 131 + chunk.offset / config_.chunk_bytes);
      for (std::size_t i = 0; i < chunk.payload.size(); ++i)
        chunk.payload[i] = static_cast<std::byte>(
            static_cast<std::uint8_t>(seed + i));
      chunk.checksum = chunk_checksum(chunk.payload);
    }

    const std::uint32_t size = chunk.size;
    // Count before publishing: once the chunk is visible downstream the
    // pipeline can finish, and stats() must already include it.
    bytes_read_.fetch_add(size);
    if (!sender_queue_->push(std::move(chunk))) {
      bytes_read_.fetch_sub(size);
      break;
    }
    if (chunks_pushed_.fetch_add(1) + 1 == total_chunks_) {
      sender_queue_->close();  // no more data will be produced
    }
  }
}

void TransferSession::network_loop(int worker_id) {
  while (wait_for_turn(Stage::kNetwork, worker_id)) {
    std::optional<Chunk> chunk = sender_queue_->pop();
    if (!chunk) break;  // closed and drained
    if (!network_bucket_.acquire(chunk->size)) break;
    const std::uint32_t size = chunk->size;
    bytes_sent_.fetch_add(size);
    if (!receiver_queue_->push(std::move(*chunk))) {
      bytes_sent_.fetch_sub(size);
      break;
    }
    if (chunks_forwarded_.fetch_add(1) + 1 == total_chunks_) {
      receiver_queue_->close();
    }
  }
}

void TransferSession::writer_loop(int worker_id) {
  while (wait_for_turn(Stage::kWrite, worker_id)) {
    std::optional<Chunk> chunk = receiver_queue_->pop();
    if (!chunk) break;
    if (!write_bucket_.acquire(chunk->size)) break;
    if (config_.verify_payload && config_.fill_payload) {
      if (chunk_checksum(chunk->payload) != chunk->checksum)
        verify_failures_.fetch_add(1);
    }
    bytes_written_.fetch_add(chunk->size);
    if (chunks_written_.fetch_add(1) + 1 == total_chunks_) {
      finished_.store(true);
      gate_cv_.notify_all();
      finish_cv_.notify_all();
    }
  }
}

}  // namespace automdt::transfer
