#include "transfer/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "common/checksum.hpp"
#include "net/stream_pool.hpp"

namespace automdt::transfer {

std::uint64_t chunk_checksum(const std::vector<std::byte>& payload) {
  return fnv1a(payload);
}

TransferSession::TransferSession(EngineConfig config,
                                 std::vector<double> file_sizes_bytes)
    : config_(config),
      file_sizes_(std::move(file_sizes_bytes)),
      payload_pool_(0),  // re-initialized below once queue sizes are known
      read_bucket_(0.0),
      network_bucket_(0.0),
      write_bucket_(0.0) {
  assert(config_.chunk_bytes > 0);
  assert(config_.max_threads >= 1);
  file_first_chunk_.reserve(file_sizes_.size() + 1);
  file_first_chunk_.push_back(0);
  for (double s : file_sizes_) {
    total_bytes_ += s;
    total_chunks_ += static_cast<std::uint64_t>(
        (s + config_.chunk_bytes - 1) / config_.chunk_bytes);
    file_first_chunk_.push_back(total_chunks_);
  }
  batch_chunks_ = std::clamp<std::size_t>(
      config_.tcp.max_coalesced_bytes / config_.chunk_bytes, 1, 64);
  const auto queue_chunks = [&](double buffer_bytes) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(buffer_bytes / config_.chunk_bytes));
  };
  sender_queue_ = std::make_unique<StagingQueue>(
      queue_chunks(config_.sender_buffer_bytes), config_.lock_free_staging);
  receiver_queue_ = std::make_unique<StagingQueue>(
      queue_chunks(config_.receiver_buffer_bytes), config_.lock_free_staging);
  // Enough pooled payloads to cover every chunk that can be in flight at
  // once (both staging buffers plus one per worker), bounded so a large
  // buffer config cannot pin unbounded memory.
  const std::size_t in_flight = sender_queue_->capacity() +
                                receiver_queue_->capacity() +
                                static_cast<std::size_t>(config_.max_threads) * 3;
  payload_pool_.set_max_buffers(std::min<std::size_t>(in_flight, 512));
}

TransferSession::~TransferSession() { stop(); }

bool TransferSession::start_tcp_backend() {
  net::SocketOptions socket_options;
  socket_options.no_delay = config_.tcp.no_delay;
  socket_options.send_buffer_bytes = config_.tcp.send_buffer_bytes;
  socket_options.recv_buffer_bytes = config_.tcp.recv_buffer_bytes;
  net::StreamAcceptorConfig acceptor_config;
  acceptor_config.host = config_.tcp.host;
  acceptor_config.port = config_.tcp.port;
  acceptor_config.payload_pool = &payload_pool_;
  acceptor_config.socket = socket_options;
  stream_acceptor_ = std::make_unique<net::StreamAcceptor>(
      acceptor_config, [this](net::WireChunk&& wire) {
        Chunk chunk;
        chunk.file_id = wire.file_id;
        chunk.offset = wire.offset;
        chunk.size = wire.size;
        chunk.checksum = wire.checksum;
        chunk.payload = std::move(wire.payload);
        if (!receiver_queue_->push(std::move(chunk))) return false;
        if (chunks_forwarded_.fetch_add(1) + 1 == total_chunks_) {
          receiver_queue_->close();
        }
        return true;
      });
  if (!stream_acceptor_->start()) {
    stream_acceptor_.reset();
    return false;
  }
  net::StreamPoolConfig pool_config;
  pool_config.host = config_.tcp.host;
  pool_config.port = stream_acceptor_->port();
  pool_config.max_streams = config_.max_threads;
  pool_config.connector.connect_timeout_s = config_.tcp.connect_timeout_s;
  pool_config.connector.max_attempts = config_.tcp.connect_attempts;
  pool_config.io_timeout_s = config_.tcp.io_timeout_s;
  pool_config.socket = socket_options;
  stream_pool_ = std::make_unique<net::StreamPool>(pool_config);
  stream_pool_->set_active(concurrency().network);
  return true;
}

void TransferSession::start(ConcurrencyTuple initial) {
  assert(!started_);
  started_ = true;
  set_concurrency(initial);
  if (total_chunks_ == 0) {
    finished_.store(true);
    sender_queue_->close();
    receiver_queue_->close();
    finish_cv_.notify_all();
    return;
  }
  const bool tcp = config_.backend == NetworkBackend::kTcp;
  if (tcp && !start_tcp_backend()) {
    // Could not bind the data-plane listener (port in use): surface as an
    // immediately-stopped session rather than a hang.
    stop();
    return;
  }
  workers_.reserve(static_cast<std::size_t>(config_.max_threads) * 3);
  for (int i = 0; i < config_.max_threads; ++i)
    workers_.emplace_back([this, i] { reader_loop(i); });
  for (int i = 0; i < config_.max_threads; ++i)
    workers_.emplace_back(
        [this, i, tcp] { tcp ? network_loop_tcp(i) : network_loop(i); });
  for (int i = 0; i < config_.max_threads; ++i)
    workers_.emplace_back([this, i] { writer_loop(i); });
}

void TransferSession::set_concurrency(ConcurrencyTuple tuple) {
  const ConcurrencyTuple t = tuple.clamped(1, config_.max_threads);
  {
    std::lock_guard lock(gate_mutex_);
    active_[0] = t.read;
    active_[1] = t.network;
    active_[2] = t.write;
  }
  gate_cv_.notify_all();
  update_bucket_rates();
  // Tcp backend: park/resume the per-worker data streams so the receiver
  // observes the new n_n as a changed active-stream count.
  if (stream_pool_) stream_pool_->set_active(t.network);
}

ConcurrencyTuple TransferSession::concurrency() const {
  std::lock_guard lock(gate_mutex_);
  return {active_[0], active_[1], active_[2]};
}

void TransferSession::update_bucket_rates() {
  const ConcurrencyTuple t = concurrency();
  read_bucket_.set_rate(config_.read.rate_for(t.read));
  network_bucket_.set_rate(config_.network.rate_for(t.network));
  write_bucket_.set_rate(config_.write.rate_for(t.write));
}

TransferStats TransferSession::stats() const {
  TransferStats s;
  s.bytes_read = static_cast<double>(bytes_read_.load());
  s.bytes_sent = static_cast<double>(bytes_sent_.load());
  s.bytes_written = static_cast<double>(bytes_written_.load());
  // Approximate sizes by design: polling stats must never contend with
  // workers on the staging queues.
  s.sender_queue_chunks = sender_queue_->size();
  s.receiver_queue_chunks = receiver_queue_->size();
  s.sender_queue_counters = sender_queue_->counters();
  s.receiver_queue_counters = receiver_queue_->counters();
  s.chunks_written = chunks_written_.load();
  s.verify_failures = verify_failures_.load();
  s.finished = finished_.load();
  if (stream_acceptor_) {
    s.net_streams_open = stream_acceptor_->streams_open();
    s.net_streams_parked = stream_acceptor_->streams_parked();
    s.net_streams_active = stream_acceptor_->streams_active();
    s.net_frame_errors = stream_acceptor_->frame_errors();
  }
  if (stream_pool_) {
    s.net_send_failures = stream_pool_->send_failures();
    s.net_chunks_coalesced = stream_pool_->chunks_sent();
    s.net_batch_writes = stream_pool_->batch_writes();
  }
  s.payload_pool_hits = payload_pool_.hits();
  s.payload_pool_misses = payload_pool_.misses();
  return s;
}

bool TransferSession::wait_finished(double timeout_s) {
  std::unique_lock lock(finish_mutex_);
  return finish_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                             [&] { return finished_.load(); });
}

void TransferSession::stop() {
  if (stopping_.exchange(true)) {
    workers_.clear();  // join if not already joined
    return;
  }
  sender_queue_->close();
  receiver_queue_->close();
  read_bucket_.shutdown();
  network_bucket_.shutdown();
  write_bucket_.shutdown();
  // Wake any network worker blocked in a socket write, then stop the
  // receiver side (its handler exits via the now-closed receiver queue).
  if (stream_pool_) stream_pool_->close();
  if (stream_acceptor_) stream_acceptor_->stop();
  gate_cv_.notify_all();
  finish_cv_.notify_all();
  workers_.clear();  // jthread joins
}

bool TransferSession::wait_for_turn(Stage stage, int worker_id) {
  const int idx = static_cast<int>(stage);
  std::unique_lock lock(gate_mutex_);
  gate_cv_.wait(lock, [&] {
    return stopping_.load() || finished_.load() || worker_id < active_[idx];
  });
  return !stopping_.load() && !finished_.load();
}

void TransferSession::reader_loop(int worker_id) {
  while (wait_for_turn(Stage::kRead, worker_id)) {
    // Claim the next chunk of the dataset: one atomic ticket, then map the
    // global chunk index back to (file, offset).
    const std::uint64_t idx =
        claim_cursor_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= total_chunks_) break;  // all chunks claimed
    const auto it = std::upper_bound(file_first_chunk_.begin(),
                                     file_first_chunk_.end(), idx);
    const auto file = static_cast<std::size_t>(
        std::distance(file_first_chunk_.begin(), it) - 1);
    Chunk chunk;
    chunk.file_id = file;
    chunk.offset = (idx - file_first_chunk_[file]) * config_.chunk_bytes;
    const double remaining =
        file_sizes_[file] - static_cast<double>(chunk.offset);
    chunk.size = static_cast<std::uint32_t>(
        std::min<double>(config_.chunk_bytes, remaining));

    if (!read_bucket_.acquire(chunk.size)) break;

    if (config_.fill_payload) {
      chunk.payload = payload_pool_.acquire(chunk.size);
      // Cheap deterministic pattern derived from (file, offset).
      const auto seed = static_cast<std::uint8_t>(
          chunk.file_id * 131 + chunk.offset / config_.chunk_bytes);
      for (std::size_t i = 0; i < chunk.payload.size(); ++i)
        chunk.payload[i] = static_cast<std::byte>(
            static_cast<std::uint8_t>(seed + i));
      chunk.checksum = chunk_checksum(chunk.payload);
    }

    const std::uint32_t size = chunk.size;
    // Count before publishing: once the chunk is visible downstream the
    // pipeline can finish, and stats() must already include it.
    bytes_read_.fetch_add(size);
    if (!sender_queue_->push(std::move(chunk))) {
      bytes_read_.fetch_sub(size);
      break;
    }
    if (chunks_pushed_.fetch_add(1) + 1 == total_chunks_) {
      sender_queue_->close();  // no more data will be produced
    }
  }
}

bool TransferSession::pop_batch(StagingQueue& queue, std::vector<Chunk>& batch,
                                std::uint64_t& total_bytes) {
  batch.clear();
  total_bytes = 0;
  Chunk first;
  if (!queue.pop(first)) return false;  // closed and drained
  total_bytes += first.size;
  batch.push_back(std::move(first));
  const std::uint64_t byte_budget = config_.tcp.max_coalesced_bytes;
  while (batch.size() < batch_chunks_ && total_bytes < byte_budget) {
    Chunk more;
    if (!queue.try_pop(more)) break;  // nothing else staged right now
    total_bytes += more.size;
    batch.push_back(std::move(more));
  }
  return true;
}

void TransferSession::network_loop_tcp(int worker_id) {
  std::vector<Chunk> batch;
  std::vector<net::WireChunk> wires;
  batch.reserve(batch_chunks_);
  wires.reserve(batch_chunks_);
  while (wait_for_turn(Stage::kNetwork, worker_id)) {
    std::uint64_t total = 0;
    if (!pop_batch(*sender_queue_, batch, total)) break;
    // One admission for the whole batch: a single bucket round-trip (none
    // at all when the stage is unthrottled).
    if (!network_bucket_.acquire_batch(static_cast<double>(total),
                                       static_cast<int>(batch.size()))) {
      break;
    }
    wires.clear();
    for (Chunk& chunk : batch) {
      net::WireChunk wire;
      wire.file_id = chunk.file_id;
      wire.offset = chunk.offset;
      wire.size = chunk.size;
      wire.checksum = chunk.checksum;
      wire.payload = std::move(chunk.payload);
      wires.push_back(std::move(wire));
    }
    // Count before the frames leave: once the last chunk lands on the
    // receiver the pipeline can finish, and stats() must already show it.
    bytes_sent_.fetch_add(total);
    if (!stream_pool_->send_chunks(worker_id, wires.data(), wires.size())) {
      bytes_sent_.fetch_sub(total);
      break;
    }
    // The wire copies have left through the socket; recycle the payloads.
    for (net::WireChunk& wire : wires)
      payload_pool_.release(std::move(wire.payload));
  }
}

void TransferSession::network_loop(int worker_id) {
  std::vector<Chunk> batch;
  batch.reserve(batch_chunks_);
  while (wait_for_turn(Stage::kNetwork, worker_id)) {
    std::uint64_t total = 0;
    if (!pop_batch(*sender_queue_, batch, total)) break;
    if (!network_bucket_.acquire_batch(static_cast<double>(total),
                                       static_cast<int>(batch.size()))) {
      break;
    }
    for (Chunk& chunk : batch) {
      const std::uint32_t size = chunk.size;
      bytes_sent_.fetch_add(size);
      if (!receiver_queue_->push(std::move(chunk))) {
        bytes_sent_.fetch_sub(size);
        return;
      }
      if (chunks_forwarded_.fetch_add(1) + 1 == total_chunks_) {
        receiver_queue_->close();
      }
    }
  }
}

void TransferSession::writer_loop(int worker_id) {
  while (wait_for_turn(Stage::kWrite, worker_id)) {
    Chunk chunk;
    if (!receiver_queue_->pop(chunk)) break;
    if (!write_bucket_.acquire(chunk.size)) break;
    if (config_.verify_payload && config_.fill_payload) {
      if (chunk_checksum(chunk.payload) != chunk.checksum)
        verify_failures_.fetch_add(1);
    }
    payload_pool_.release(std::move(chunk.payload));
    bytes_written_.fetch_add(chunk.size);
    if (chunks_written_.fetch_add(1) + 1 == total_chunks_) {
      finished_.store(true);
      gate_cv_.notify_all();
      finish_cv_.notify_all();
    }
  }
}

}  // namespace automdt::transfer
