// Thread-safe token-bucket rate limiter (real wall-clock time).
//
// Backs the threaded transfer engine's stage throttles: a stage with n active
// workers at per-thread rate r and aggregate cap B refills at min(n*r, B)
// bytes per second. acquire() blocks the calling worker until the bytes are
// available, which is how a thread "takes d_task seconds" in real time.
//
// Hot-path contract: when the rate is unlimited (<= 0) — the common case for
// every stage that is not the configured bottleneck — acquire()/try_acquire()
// never touch the mutex: they read two atomics and return. acquire_batch()
// amortizes one lock round-trip over a whole coalesced batch of chunk grants
// when the stage *is* throttled.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace automdt::transfer {

class TokenBucket {
 public:
  /// `rate_bytes_per_s` <= 0 means unlimited. `burst_bytes` caps accumulation.
  explicit TokenBucket(double rate_bytes_per_s, double burst_bytes = 0.0);

  /// Block until `bytes` tokens are available, then consume them.
  /// Returns false if the bucket was shut down while waiting.
  /// Lock-free when the rate is unlimited.
  bool acquire(double bytes);

  /// One blocking admission of `total_bytes` covering `grants` chunk-sized
  /// grants: semantically `grants` sequential acquires, but a single lock
  /// round-trip (and none at all when unlimited). The burst widens to cover
  /// the batch so oversized batches still flow at the configured rate.
  bool acquire_batch(double total_bytes, int grants);

  /// Non-blocking variant. Lock-free when the rate is unlimited.
  bool try_acquire(double bytes);

  /// Change the refill rate (e.g. after a concurrency update).
  void set_rate(double rate_bytes_per_s);
  double rate() const;

  /// Wake all waiters and make every future acquire fail.
  void shutdown();

  /// Times a worker actually slept for tokens (throttled slow path only; the
  /// lock-free unlimited path never counts). Telemetry export hook.
  std::uint64_t waits() const {
    return waits_.load(std::memory_order_relaxed);
  }

  /// True when a finite rate is set (acquire may block). Stage clocks use
  /// this to decide whether an acquire is worth timing: the unlimited fast
  /// path stays free of clock reads.
  bool throttled() const {
    return throttled_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  void refill_locked(Clock::time_point now);
  bool acquire_locked(double bytes);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  double rate_;
  double burst_;
  double tokens_;
  Clock::time_point last_refill_;
  // Mirrors of the mutex-guarded state for the lock-free fast path. Written
  // under the mutex, read relaxed/acquire outside it: a worker that races a
  // rate change may over-admit one chunk, which is within the throttle's
  // tolerance (rates are continuous-time targets, not hard budgets).
  std::atomic<bool> throttled_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> waits_{0};
};

}  // namespace automdt::transfer
