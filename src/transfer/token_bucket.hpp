// Thread-safe token-bucket rate limiter (real wall-clock time).
//
// Backs the threaded transfer engine's stage throttles: a stage with n active
// workers at per-thread rate r and aggregate cap B refills at min(n*r, B)
// bytes per second. acquire() blocks the calling worker until the bytes are
// available, which is how a thread "takes d_task seconds" in real time.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace automdt::transfer {

class TokenBucket {
 public:
  /// `rate_bytes_per_s` <= 0 means unlimited. `burst_bytes` caps accumulation.
  explicit TokenBucket(double rate_bytes_per_s, double burst_bytes = 0.0);

  /// Block until `bytes` tokens are available, then consume them.
  /// Returns false if the bucket was shut down while waiting.
  bool acquire(double bytes);

  /// Non-blocking variant.
  bool try_acquire(double bytes);

  /// Change the refill rate (e.g. after a concurrency update).
  void set_rate(double rate_bytes_per_s);
  double rate() const;

  /// Wake all waiters and make every future acquire fail.
  void shutdown();

 private:
  using Clock = std::chrono::steady_clock;

  void refill_locked(Clock::time_point now);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  double rate_;
  double burst_;
  double tokens_;
  Clock::time_point last_refill_;
  bool shutdown_ = false;
};

}  // namespace automdt::transfer
