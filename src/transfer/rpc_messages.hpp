// Control-plane message set exchanged between the two DTN agents, and the
// transport-neutral endpoint interface both backends implement.
//
// Paper §IV-D.1: "Every DTN measures its available buffer space with a system
// call and the receiver sends the result to its peer over the RPC channel."
// The message *set* is transport-independent: the in-process channel
// (transfer/rpc.hpp) delivers it through a latency-enforcing deque, the TCP
// transport (net/tcp_transport.hpp) over a real control connection. This
// header is deliberately free of any transport include so the net layer can
// speak the message set without a library cycle (transfer links net, not the
// other way around).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/concurrency_tuple.hpp"

namespace automdt::transfer {

struct BufferStatusRequest {
  std::uint64_t request_id = 0;
};

struct BufferStatusResponse {
  std::uint64_t request_id = 0;
  double free_bytes = 0.0;
  double used_bytes = 0.0;
  double measured_at_s = 0.0;  // sender-of-message clock, for staleness
};

struct ConcurrencyUpdate {
  ConcurrencyTuple tuple;
};

struct ThroughputReport {
  StageThroughputs throughput_mbps;
  double interval_s = 0.0;
};

struct Shutdown {};

/// kStatsSnapshot: live-monitoring request for the peer's full telemetry
/// registry dump (per-stage byte/chunk counters, queue occupancy gauges,
/// flattened histogram percentiles). Served by the receiver agent on the
/// DtnPair control channel and by telemetry::StatsServer for external
/// monitors (`automdt monitor`).
struct StatsSnapshotRequest {
  std::uint64_t request_id = 0;
};

struct MetricValue {
  std::string name;
  double value = 0.0;
};

struct StatsSnapshotResponse {
  std::uint64_t request_id = 0;
  std::uint64_t generation = 0;  // registry snapshot sequence number
  double uptime_s = 0.0;         // responder registry age at sample time
  std::vector<MetricValue> metrics;  // registration order preserved
};

/// kClockSync*: NTP-style steady-clock offset estimation between the two
/// agents (telemetry/clock_sync.hpp). The requester stamps t0 at send; the
/// responder echoes it back with its own receive (t1) and send (t2) stamps;
/// the requester adds t3 at receipt. All stamps are process-local
/// steady-clock nanoseconds — meaningful only to the clock that produced
/// them, which is exactly what the offset estimator needs.
struct ClockSyncRequest {
  std::uint64_t request_id = 0;
  std::uint64_t t0_ns = 0;  // requester clock: request sent
};

struct ClockSyncResponse {
  std::uint64_t request_id = 0;
  std::uint64_t t0_ns = 0;  // echoed from the request
  std::uint64_t t1_ns = 0;  // responder clock: request received
  std::uint64_t t2_ns = 0;  // responder clock: response sent
};

using RpcMessage = std::variant<BufferStatusRequest, BufferStatusResponse,
                                ConcurrencyUpdate, ThroughputReport,
                                StatsSnapshotRequest, StatsSnapshotResponse,
                                ClockSyncRequest, ClockSyncResponse,
                                Shutdown>;

/// One endpoint of a duplex control channel. Implementations: the in-process
/// RpcChannel views (with simulated one-way latency) and TcpTransport (a real
/// socket, optionally with the same delivery delay for WAN emulation).
class RpcEndpoint {
 public:
  virtual ~RpcEndpoint() = default;

  /// Fire-and-forget; messages to a closed endpoint are dropped.
  virtual void send(RpcMessage message) = 0;

  /// Blocks until a message is deliverable or the channel is closed and
  /// drained. Returns nullopt only in the latter case.
  virtual std::optional<RpcMessage> receive() = 0;

  /// Non-blocking: nullopt if nothing is deliverable *yet*.
  virtual std::optional<RpcMessage> try_receive() = 0;

  /// Close both directions; wakes any blocked receive().
  virtual void close() = 0;
};

}  // namespace automdt::transfer
