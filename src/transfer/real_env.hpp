// RealTransferEnv: the Env interface over the threaded engine, running in
// real wall-clock time. One step() applies a concurrency tuple, sleeps one
// probe interval, and reports the bytes each stage actually moved — i.e. the
// production phase's interaction loop against live threads (paper §IV-F),
// at laptop scale.
//
// Probe intervals default to 200 ms (vs the paper's 1 s) so integration
// tests stay fast; the observation layout matches the virtual environments
// exactly.
#pragma once

#include <memory>

#include "common/env.hpp"
#include "common/utility.hpp"
#include "transfer/engine.hpp"

namespace automdt::transfer {

struct RealEnvConfig {
  EngineConfig engine{};
  std::vector<double> file_sizes_bytes;
  double probe_interval_s = 0.2;
  UtilityParams utility{};
};

class RealTransferEnv final : public Env {
 public:
  explicit RealTransferEnv(RealEnvConfig config);
  ~RealTransferEnv() override;

  std::vector<double> reset(Rng& rng) override;
  EnvStep step(const ConcurrencyTuple& action) override;
  int max_threads() const override { return config_.engine.max_threads; }

  const TransferSession* session() const { return session_.get(); }
  double elapsed_s() const { return elapsed_s_; }

 private:
  StageThroughputs probe_throughputs(const TransferStats& now,
                                     const TransferStats& before,
                                     double dt_s) const;

  RealEnvConfig config_;
  ObservationScale scale_;
  std::unique_ptr<TransferSession> session_;
  TransferStats last_stats_{};
  ConcurrencyTuple last_action_{1, 1, 1};
  double elapsed_s_ = 0.0;
};

}  // namespace automdt::transfer
