#include "serve/session_client.hpp"

#include <utility>
#include <variant>

#include "common/checksum.hpp"
#include "net/stream_pool.hpp"
#include "net/tcp_transport.hpp"
#include "telemetry/trace.hpp"

namespace automdt::serve {

std::unique_ptr<SessionClient> SessionClient::connect(
    const std::string& host, std::uint16_t port, SessionClientConfig config) {
  net::Connector connector(config.connector);
  std::optional<net::Socket> socket = connector.connect(host, port);
  if (!socket) return nullptr;
  socket->set_no_delay();
  return std::unique_ptr<SessionClient>(
      new SessionClient(std::move(*socket), std::move(config)));
}

SessionClient::SessionClient(net::Socket socket, SessionClientConfig config)
    : socket_(std::move(socket)),
      config_(std::move(config)),
      reader_(socket_),
      writer_(socket_) {}

bool SessionClient::pump_one() {
  net::Frame frame;
  if (reader_.read(frame, config_.io_timeout_s) != net::FrameError::kNone)
    return false;
  switch (frame.type) {
    case net::FrameType::kSessionAccept: {
      SessionAccept accept;
      if (decode_session_accept(frame.payload.data(), frame.payload.size(),
                                accept)) {
        OpenReply& reply = open_replies_[accept.client_token];
        reply.accepted = true;
        reply.session_id = accept.session_id;
      }
      break;
    }
    case net::FrameType::kSessionReject: {
      SessionReject reject;
      if (decode_session_reject(frame.payload.data(), frame.payload.size(),
                                reject)) {
        OpenReply& reply = open_replies_[reject.client_token];
        reply.accepted = false;
        reply.reason = reject.reason;
        reply.message = std::move(reject.message);
      }
      break;
    }
    case net::FrameType::kSessionClosed: {
      SessionFinalStats stats;
      if (decode_session_final(frame.payload.data(), frame.payload.size(),
                               stats))
        closed_[frame.session_id] = stats;
      break;
    }
    case net::FrameType::kRpc: {
      std::optional<transfer::RpcMessage> message = net::decode_rpc_message(
          frame.payload.data(), frame.payload.size());
      if (!message) break;
      std::uint64_t id = 0;
      if (const auto* stats =
              std::get_if<transfer::StatsSnapshotResponse>(&*message))
        id = stats->request_id;
      else if (const auto* sync =
                   std::get_if<transfer::ClockSyncResponse>(&*message))
        id = sync->request_id;
      if (id != 0) rpc_replies_.emplace(id, std::move(*message));
      break;
    }
    case net::FrameType::kPong:
      ++pongs_;
      break;
    default:
      break;  // nothing else flows server -> client today
  }
  return true;
}

SessionClient::OpenResult SessionClient::open(const std::string& tenant,
                                              std::uint64_t expected_bytes,
                                              std::uint32_t chunk_bytes) {
  OpenResult result;
  SessionOpenRequest request;
  request.client_token = next_token_++;
  request.expected_bytes = expected_bytes;
  request.chunk_bytes = chunk_bytes;
  request.tenant = tenant;
  if (writer_.write(net::FrameType::kSessionOpen,
                    encode_session_open(request),
                    config_.io_timeout_s) != net::SocketStatus::kOk) {
    result.message = "send failed";
    return result;
  }
  for (;;) {
    auto it = open_replies_.find(request.client_token);
    if (it != open_replies_.end()) {
      if (it->second.accepted) {
        result.session_id = it->second.session_id;
      } else {
        result.reason = it->second.reason;
        result.message = std::move(it->second.message);
      }
      open_replies_.erase(it);
      return result;
    }
    if (!pump_one()) {
      result.message = "timed out waiting for accept/reject";
      return result;
    }
  }
}

bool SessionClient::send_chunk(std::uint32_t session_id, std::uint64_t offset,
                               const std::vector<std::byte>& payload,
                               std::uint64_t file_id) {
  net::WireChunk chunk;
  chunk.file_id = file_id;
  chunk.offset = offset;
  chunk.size = static_cast<std::uint32_t>(payload.size());
  chunk.checksum = fnv1a(payload.data(), payload.size());
  // encode_wire_chunk emits the metadata header only; the payload rides
  // behind it in the same frame (the gather-write the stream pool does).
  net::encode_wire_chunk(chunk, scratch_);
  scratch_.insert(scratch_.end(), payload.begin(), payload.end());
  return writer_.write(net::FrameType::kChunk, scratch_, config_.io_timeout_s,
                       0, session_id) == net::SocketStatus::kOk;
}

bool SessionClient::send_pattern_chunk(std::uint32_t session_id,
                                       std::uint64_t offset,
                                       std::size_t size) {
  std::vector<std::byte> payload(size);
  for (std::size_t i = 0; i < size; ++i)
    payload[i] = static_cast<std::byte>((offset + i) & 0xFF);
  return send_chunk(session_id, offset, payload);
}

std::optional<SessionFinalStats> SessionClient::close_session(
    std::uint32_t session_id) {
  net::Frame frame;
  frame.type = net::FrameType::kSessionClose;
  frame.session_id = session_id;
  if (writer_.write(frame, config_.io_timeout_s) != net::SocketStatus::kOk)
    return std::nullopt;
  for (;;) {
    auto it = closed_.find(session_id);
    if (it != closed_.end()) {
      SessionFinalStats stats = it->second;
      closed_.erase(it);
      return stats;
    }
    if (!pump_one()) return std::nullopt;
  }
}

std::optional<transfer::StatsSnapshotResponse> SessionClient::query_stats() {
  transfer::StatsSnapshotRequest request;
  request.request_id = next_request_id_++;
  std::vector<std::byte> payload;
  net::encode_rpc_message(request, payload);
  if (writer_.write(net::FrameType::kRpc, payload, config_.io_timeout_s) !=
      net::SocketStatus::kOk)
    return std::nullopt;
  for (;;) {
    auto it = rpc_replies_.find(request.request_id);
    if (it != rpc_replies_.end()) {
      auto* response = std::get_if<transfer::StatsSnapshotResponse>(&it->second);
      std::optional<transfer::StatsSnapshotResponse> out;
      if (response != nullptr) out = std::move(*response);
      rpc_replies_.erase(it);
      return out;
    }
    if (!pump_one()) return std::nullopt;
  }
}

bool SessionClient::sync_clock(telemetry::ClockModel& model, int rounds) {
  telemetry::ClockSyncEstimator estimator;
  for (int i = 0; i < rounds; ++i) {
    transfer::ClockSyncRequest request;
    request.request_id = next_request_id_++;
    request.t0_ns = telemetry::now_ns();
    std::vector<std::byte> payload;
    net::encode_rpc_message(request, payload);
    if (writer_.write(net::FrameType::kRpc, payload, config_.io_timeout_s) !=
        net::SocketStatus::kOk)
      return false;
    for (;;) {
      auto it = rpc_replies_.find(request.request_id);
      if (it != rpc_replies_.end()) {
        if (const auto* response =
                std::get_if<transfer::ClockSyncResponse>(&it->second)) {
          telemetry::ClockSyncSample sample;
          sample.t0_ns = response->t0_ns;
          sample.t1_ns = response->t1_ns;
          sample.t2_ns = response->t2_ns;
          sample.t3_ns = telemetry::now_ns();
          estimator.add(sample);
        }
        rpc_replies_.erase(it);
        break;
      }
      if (!pump_one()) return false;
    }
  }
  if (!estimator.valid()) return false;
  model.publish(estimator.offset_ns(), estimator.rtt_ns());
  return true;
}

bool SessionClient::ping() {
  const int before = pongs_;
  if (writer_.write(net::FrameType::kPing, {}, config_.io_timeout_s) !=
      net::SocketStatus::kOk)
    return false;
  while (pongs_ == before) {
    if (!pump_one()) return false;
  }
  return true;
}

}  // namespace automdt::serve
