// Event-driven many-session serve plane (ISSUE: "serve plane" tentpole).
//
// One SessionServer turns the thread-per-stream receiver inside-out: a small
// fixed set of epoll event-loop shards (--event-loops, default 1) owns every
// connection fd, decodes frames where they land, and admits chunk work onto
// one shared MpmcRingQueue worker pool. Shard 0 owns the listener; each new
// connection is pinned to a shard by a consistent hash of the tenant named
// in its first complete frame (kSessionOpen's tenant, "default" otherwise),
// so one tenant's decode burst cannot head-of-line-block other tenants'
// ingest while admission state stays fully shared. Thread count is
// event_loops + worker_threads regardless of how many sessions or
// connections are live — the E2E test drives 32+ sessions through a
// 4-thread pool and asserts the process thread count never follows session
// count.
//
// Per-frame flow (data plane):
//
//   epoll → recv into the connection buffer → decode_frame → session lookup
//   in the connection's OWN id map (single-threaded, no registry lock) →
//   admission gates → work ring → worker verifies + accounts → completion
//   eventfd → event loop finalizes drained sessions.
//
// Admission gates, in order, each remembered across retries so a deferred
// chunk never double-charges an earlier gate:
//
//   1. tenant TokenBucket.try_acquire(bytes)   — fair-share rate
//   2. tenant buffer-byte reservation          — arena/memory quota
//   3. work-ring try_push                      — pool backpressure
//
// A failed gate DEFERS the connection (its fd is masked out of epoll, the
// decoded chunk parked) rather than dropping the chunk; the event loop's tick
// retries parked connections, so quota exhaustion shows up to the peer as
// TCP backpressure — exactly how the single-session engine behaves when its
// staging queues fill. Session opens, by contrast, are rejected explicitly
// (kSessionReject) when the registry or the tenant's session quota is full.
//
// Legacy interop: a connection that never sends session frames (an
// unmodified StreamPool) is bound to one implicit session under the
// "default" tenant on its first data frame, so the serve plane speaks the
// pre-session wire format unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/mpmc_ring.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/stream_pool.hpp"
#include "serve/session.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/stage_clock.hpp"

namespace automdt::serve {

struct SessionServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; read back via port()
  /// Registry capacity: concurrent sessions across all tenants.
  std::size_t max_sessions = 64;
  /// Fixed chunk-processing pool size. Each event loop adds one more thread.
  int worker_threads = 4;
  /// Sharded event loops (--event-loops). Connections are pinned to a loop
  /// by a consistent hash of the tenant named in their first frame, so one
  /// hot tenant's frame decode can no longer head-of-line-block every other
  /// tenant's ingest. Admission state (registry, tenant table, work ring)
  /// stays shared: quota and fair-share semantics are identical at any N.
  int event_loops = 1;
  /// Applied to tenants that never got an explicit configure_tenant() call.
  TenantQuota default_quota{};
  /// Work-ring capacity (chunks admitted but not yet processed).
  std::size_t queue_capacity = 256;
  /// Receive arena backing admitted chunk payloads: block size and count.
  /// block_count 0 disables the arena (payloads ride heap vectors instead).
  std::size_t arena_block_bytes = 256 * 1024;
  std::size_t arena_blocks = 0;
  std::uint32_t max_payload_bytes = net::kDefaultMaxPayloadBytes;
  double io_timeout_s = 10.0;  // control-reply write deadline
  /// Test hook: worker-side per-chunk stall (simulates a wedged verifier so
  /// the watchdog/flight-recorder path has something real to attribute).
  double inject_worker_stall_s = 0.0;
  /// Stall a session id's chunks specifically (0 = stall none / all per
  /// inject_worker_stall_s alone).
  std::uint32_t stall_session_id = 0;
};

class SessionServer {
 public:
  explicit SessionServer(SessionServerConfig config);
  ~SessionServer();

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  /// Pre-declare a tenant's quota (CLI --tenant-quota). Call before start().
  void configure_tenant(const std::string& name, const TenantQuota& quota);

  /// Bind, listen, spawn the event loop + worker pool. False if the port is
  /// taken.
  bool start();
  /// Close every connection, drain nothing further, join all threads.
  void stop();

  std::uint16_t port() const { return port_; }

  SessionRegistry& registry() { return registry_; }
  TenantTable& tenants() { return tenants_; }
  telemetry::MetricsRegistry& metrics() { return metrics_; }
  /// Null when the config disabled the arena.
  ArenaPool* arena() { return arena_.get(); }

  /// Aggregate verified payload bytes across all sessions — the watchdog's
  /// progress counter.
  std::uint64_t total_bytes_ok() const;
  std::uint64_t total_chunks_ok() const;

  /// Watchdog ProgressFn: the aggregate byte counter while any session has
  /// work in flight, nullopt (idle) otherwise.
  std::optional<std::uint64_t> watchdog_progress() const;

  /// Watchdog context_fn: names the session(s) sitting on in-flight work the
  /// longest — "session 3 (tenant acme, 5 in flight, idle 6.1s)" — so a
  /// flight-recorder dump from a many-session process identifies WHICH
  /// session stalled, not just that some aggregate counter stopped. Appends
  /// the pool/loop utilization evidence from the stage clocks, so the dump
  /// also says whether the pool was wedged busy or starving for work.
  std::string stall_report() const;

  /// One-line pool + event-loop utilization summary from the stage clocks,
  /// e.g. "pool busy 0.84 starved 0.16, loops busy 0.02". Empty before any
  /// thread started.
  std::string utilization_report() const;

  int connections() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkItem {
    std::shared_ptr<ServeSession> session;
    net::WireChunk chunk;
    bool unchecked = false;  // frame carried kFrameFlagUnchecked
    /// Owning event loop: the worker nudges this shard's wake_fd when the
    /// session's last in-flight chunk drains.
    std::size_t shard = 0;
  };

  /// One live connection, owned by the event loop thread exclusively.
  struct Conn {
    net::Socket socket;
    std::unique_ptr<net::FrameWriter> writer;
    std::vector<std::byte> rbuf;
    std::size_t rbegin = 0;
    std::size_t rend = 0;
    /// Sessions opened on this connection: the event loop's lock-free lookup
    /// path (single-threaded map, no registry mutex per frame).
    std::unordered_map<std::uint32_t, std::shared_ptr<ServeSession>> sessions;
    /// Implicit session for legacy (flagless) data frames; null until the
    /// first such frame.
    std::shared_ptr<ServeSession> legacy;
    /// Parked chunk waiting on an admission gate; while set the fd is masked
    /// out of epoll and rbuf decoding is paused (per-connection ordering).
    struct Pending {
      std::shared_ptr<ServeSession> session;
      net::WireChunk chunk;
      bool unchecked = false;
      bool rate_ok = false;   // gate 1 already charged
      bool quota_ok = false;  // gate 2 already reserved
    };
    std::optional<Pending> pending;
    bool closing = false;
    /// Tenant-hash routing ran for this connection (first complete frame).
    bool routed = false;
  };

  /// One event loop: epoll fd, wake eventfd, thread, and loop-owned
  /// connection state. Shard 0 additionally owns the listener. The inbox is
  /// the only cross-shard surface: shard 0 parks freshly routed connections
  /// there and nudges wake_fd; the owner adopts them on its next wake.
  struct Shard {
    std::size_t index = 0;
    int epoll_fd = -1;
    int wake_fd = -1;  // eventfd: worker completions, routed conns, stop
    std::thread thread;
    // Loop-owned (only this shard's thread touches these while running).
    std::unordered_map<int, std::unique_ptr<Conn>> conns;
    std::vector<int> deferred;  // fds with a parked chunk
    /// Draining sessions awaiting their last in-flight chunk, with the fd of
    /// the connection that should receive kSessionClosed (-1 once it died).
    std::vector<std::pair<int, std::shared_ptr<ServeSession>>> draining;
    // Cross-shard handoff.
    std::mutex inbox_mutex;
    std::vector<std::unique_ptr<Conn>> inbox;
  };

  void event_loop(Shard& shard);
  void worker_loop(int index);

  void accept_ready(Shard& shard);
  void adopt_routed(Shard& shard);
  /// Tenant-hash target for a connection's first complete frame.
  std::size_t route_target(const net::Frame& frame) const;
  void conn_readable(Shard& shard, Conn& conn);
  /// Decode and dispatch everything buffered; stops at a deferral. May MOVE
  /// the connection to another shard's inbox (tenant routing), after which
  /// the caller must not touch it — it returns immediately when that happens.
  void process_rbuf(Shard& shard, Conn& conn);
  /// Returns false when the connection must close (protocol error / EOF).
  bool dispatch_frame(Shard& shard, Conn& conn, net::Frame& frame);
  void handle_open(Conn& conn, const net::Frame& frame);
  bool handle_chunk(Shard& shard, Conn& conn, const net::Frame& frame);
  void handle_close(Shard& shard, Conn& conn, std::uint32_t session_id);
  void handle_rpc(Conn& conn, const net::Frame& frame);
  /// Run the admission gates over a decoded chunk. True = admitted (pushed);
  /// false = parked in conn.pending.
  bool admit_chunk(Shard& shard, Conn& conn, Conn::Pending&& pending);
  void retry_deferred(Shard& shard);
  /// Finalize every draining session whose in-flight count reached zero.
  /// Runs on every loop wake (workers nudge the eventfd on the last chunk),
  /// and doubles as the tick backstop, so no store-load ordering between a
  /// worker's decrement and the loop's drain check can lose a finalize.
  void sweep_draining(Shard& shard);
  void finalize_session(Conn* conn, const std::shared_ptr<ServeSession>& s);
  void close_conn(Shard& shard, int fd);
  void pause_conn(Shard& shard, Conn& conn);
  void resume_conn(Shard& shard, Conn& conn, int fd);
  void wake_shard(Shard& shard);

  void register_session_callbacks(const std::shared_ptr<ServeSession>& s);

  SessionServerConfig config_;
  telemetry::MetricsRegistry metrics_;
  TenantTable tenants_;
  SessionRegistry registry_;
  std::unique_ptr<ArenaPool> arena_;

  std::optional<net::Listener> listener_;
  std::uint16_t port_ = 0;

  MpmcRingQueue<WorkItem> work_ring_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<int> connections_{0};

  /// Always-on stage clocks (DESIGN.md §14): one per event-loop shard
  /// (parked while waiting in epoll, busy while processing) and one per pool
  /// worker (blocked-upstream while waiting on the work ring, busy while
  /// verifying). Aggregated under serve.loop.* / serve.pool.* callbacks.
  telemetry::StageClockSet loop_clocks_;
  telemetry::StageClockSet pool_clocks_;

  // serve.* aggregates.
  telemetry::Counter& bytes_ok_;
  telemetry::Counter& chunks_ok_;
  telemetry::Counter& verify_failures_;
  telemetry::Counter& rejected_total_;
  telemetry::Counter& legacy_sessions_;
  telemetry::Counter& conns_routed_;
  std::atomic<std::uint64_t> next_legacy_token_{1};
};

}  // namespace automdt::serve
