// Client side of the serve plane: one connection multiplexing any number of
// id-addressed sessions.
//
// Blocking, single-threaded by design — the server side is where the
// concurrency lives. A dispatcher underneath every wait routes interleaved
// replies to their waiters: session accepts/rejects match on the client
// token, kSessionClosed on the header's session id, RPC responses on the
// request id, so replies arriving out of order (a close ack overtaking a
// stats response) never wedge a caller. Tests and the CLI loopback driver
// run one SessionClient per driver thread.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "serve/session.hpp"
#include "telemetry/clock_sync.hpp"
#include "transfer/rpc_messages.hpp"

namespace automdt::serve {

struct SessionClientConfig {
  double io_timeout_s = 10.0;
  net::ConnectorConfig connector{};
};

class SessionClient {
 public:
  static std::unique_ptr<SessionClient> connect(
      const std::string& host, std::uint16_t port,
      SessionClientConfig config = {});

  struct OpenResult {
    std::uint32_t session_id = 0;  // 0 = rejected / failed
    RejectReason reason = RejectReason::kNone;
    std::string message;  // server's rejection text, "" when accepted
    bool ok() const { return session_id != 0; }
  };

  /// Open one session; blocks for the accept/reject round trip.
  OpenResult open(const std::string& tenant, std::uint64_t expected_bytes = 0,
                  std::uint32_t chunk_bytes = 0);

  /// Send one data chunk into `session_id`. The chunk checksum is computed
  /// here (FNV-1a over the payload), so the server's verify path is
  /// exercised end to end.
  bool send_chunk(std::uint32_t session_id, std::uint64_t offset,
                  const std::vector<std::byte>& payload,
                  std::uint64_t file_id = 0);

  /// Convenience for tests/bench: a deterministic pattern payload of `size`
  /// bytes (byte i of a chunk at `offset` is (offset + i) & 0xFF).
  bool send_pattern_chunk(std::uint32_t session_id, std::uint64_t offset,
                          std::size_t size);

  /// Graceful close: sends kSessionClose, waits for the server's drained
  /// kSessionClosed ack carrying the session's final stats.
  std::optional<SessionFinalStats> close_session(std::uint32_t session_id);

  /// kStatsSnapshot over the data connection: the server's full registry,
  /// including every session.<id>.* and tenant.<name>.* metric.
  std::optional<transfer::StatsSnapshotResponse> query_stats();

  /// NTP-style clock sync against the serve process (satellite: the serve
  /// path no longer hardcodes a null clock). Runs `rounds` request/response
  /// exchanges through the min-RTT filter and publishes into `model`.
  bool sync_clock(telemetry::ClockModel& model, int rounds = 4);

  bool ping();

  bool connected() const { return socket_.valid(); }

 private:
  explicit SessionClient(net::Socket socket, SessionClientConfig config);

  /// Read and route one frame; false on timeout/close.
  bool pump_one();

  net::Socket socket_;
  SessionClientConfig config_;
  net::FrameReader reader_;
  net::FrameWriter writer_;
  std::uint64_t next_token_ = 1;
  std::uint64_t next_request_id_ = 1;
  std::vector<std::byte> scratch_;

  // Reply stashes filled by the dispatcher while a caller waits for
  // something else.
  struct OpenReply {
    bool accepted = false;
    std::uint32_t session_id = 0;
    RejectReason reason = RejectReason::kNone;
    std::string message;
  };
  std::map<std::uint64_t, OpenReply> open_replies_;        // by client token
  std::map<std::uint32_t, SessionFinalStats> closed_;      // by session id
  std::map<std::uint64_t, transfer::RpcMessage> rpc_replies_;  // by request id
  int pongs_ = 0;
};

}  // namespace automdt::serve
