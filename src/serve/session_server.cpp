#include "serve/session_server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>
#include <variant>

#include "common/checksum.hpp"
#include "common/logging.hpp"
#include "net/tcp_transport.hpp"
#include "net/wire.hpp"
#include "telemetry/stats_server.hpp"
#include "telemetry/trace.hpp"

namespace automdt::serve {

namespace {

constexpr int kEpollTickMs = 50;
/// Receive chunk per epoll readiness: one recv's worth, grown on demand.
constexpr std::size_t kRecvChunkBytes = 256 * 1024;

/// Mirror of stream_pool.cpp's decode_wire_chunk_meta: metadata fields only,
/// payload left in place so it can be copied once into its final home (arena
/// lease or vector).
bool decode_chunk_meta(const std::byte* data, std::size_t size, bool traced,
                       net::WireChunk& out, std::size_t& payload_at) {
  const std::size_t header_bytes = traced ? net::kWireChunkTracedHeaderBytes
                                          : net::kWireChunkHeaderBytes;
  if (size < header_bytes) return false;
  net::wire::Reader r(data, size);
  out.file_id = r.u64();
  out.offset = r.u64();
  out.size = r.u32();
  out.checksum = r.u64();
  if (traced) {
    out.trace_origin_ns = r.u64();
    out.trace_send_ns = r.u64();
  }
  if (size - header_bytes > out.size) return false;
  payload_at = header_bytes;
  return true;
}

}  // namespace

SessionServer::SessionServer(SessionServerConfig config)
    : config_(std::move(config)),
      tenants_(config_.default_quota, metrics_),
      registry_(config_.max_sessions),
      work_ring_(config_.queue_capacity),
      bytes_ok_(*metrics_.counter("serve.bytes_ok")),
      chunks_ok_(*metrics_.counter("serve.chunks_ok")),
      verify_failures_(*metrics_.counter("serve.verify_failures")),
      rejected_total_(*metrics_.counter("serve.sessions_rejected")),
      legacy_sessions_(*metrics_.counter("serve.legacy_sessions")) {
  if (config_.arena_blocks > 0)
    arena_ = std::make_unique<ArenaPool>(config_.arena_block_bytes,
                                         config_.arena_blocks);
  metrics_.register_callback("serve.sessions_active", [this] {
    return static_cast<double>(registry_.live());
  });
  metrics_.register_callback("serve.sessions_admitted", [this] {
    return static_cast<double>(registry_.admitted_total());
  });
  metrics_.register_callback("serve.worker_threads", [this] {
    return static_cast<double>(config_.worker_threads);
  });
  metrics_.register_callback("serve.queue_depth", [this] {
    return static_cast<double>(work_ring_.size());
  });
  metrics_.register_callback("serve.connections", [this] {
    return static_cast<double>(connections());
  });
  if (arena_) {
    metrics_.register_callback("serve.arena_blocks_free", [this] {
      return static_cast<double>(arena_->blocks_free());
    });
  }
}

SessionServer::~SessionServer() { stop(); }

void SessionServer::configure_tenant(const std::string& name,
                                     const TenantQuota& quota) {
  tenants_.configure(name, quota);
}

bool SessionServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  listener_ = net::Listener::open(config_.host, config_.port);
  if (!listener_) return false;
  port_ = listener_->port();

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
    listener_->close();
    listener_.reset();
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_->fd();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_->fd(), &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { event_loop(); });
  workers_.reserve(static_cast<std::size_t>(config_.worker_threads));
  for (int i = 0; i < config_.worker_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
  return true;
}

void SessionServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  if (loop_thread_.joinable()) loop_thread_.join();
  work_ring_.close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // The event loop has exited: its state is now safe to tear down here.
  conns_.clear();
  deferred_.clear();
  draining_.clear();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  epoll_fd_ = wake_fd_ = -1;
  if (listener_) {
    listener_->close();
    listener_.reset();
  }
}

std::uint64_t SessionServer::total_bytes_ok() const {
  return bytes_ok_.value();
}

std::uint64_t SessionServer::total_chunks_ok() const {
  return chunks_ok_.value();
}

std::optional<std::uint64_t> SessionServer::watchdog_progress() const {
  bool inflight = false;
  for (const auto& s : registry_.list()) {
    if (s->inflight_chunks() > 0) {
      inflight = true;
      break;
    }
  }
  if (!inflight) return std::nullopt;
  // Monotone under any activity a stall would mask: verified chunks and
  // failed verifications both count as the pool making progress.
  return chunks_ok_.value() + verify_failures_.value();
}

std::string SessionServer::stall_report() const {
  struct Stalled {
    std::uint32_t id;
    std::string tenant;
    std::uint64_t inflight;
    double idle_s;
  };
  std::vector<Stalled> stalled;
  const std::uint64_t now = telemetry::now_ns();
  for (const auto& s : registry_.list()) {
    const std::uint64_t inflight = s->inflight_chunks();
    if (inflight == 0) continue;
    const std::uint64_t last = s->last_progress_ns();
    const double idle_s =
        last == 0 || now < last ? 0.0 : static_cast<double>(now - last) / 1e9;
    stalled.push_back({s->id(), s->tenant()->name(), inflight, idle_s});
  }
  if (stalled.empty()) return "";
  std::sort(stalled.begin(), stalled.end(),
            [](const Stalled& a, const Stalled& b) { return a.idle_s > b.idle_s; });
  std::ostringstream os;
  os << "stalled sessions:";
  const std::size_t shown = std::min<std::size_t>(stalled.size(), 4);
  for (std::size_t i = 0; i < shown; ++i) {
    const Stalled& s = stalled[i];
    if (i > 0) os << ",";
    os << " session " << s.id << " (tenant " << s.tenant << ", " << s.inflight
       << " in flight, idle " << s.idle_s << "s)";
  }
  if (stalled.size() > shown) os << ", +" << (stalled.size() - shown) << " more";
  return os.str();
}

// ---------------------------------------------------------------------------
// Event loop.

void SessionServer::event_loop() {
  epoll_event events[64];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, kEpollTickMs);
    if (!running_.load(std::memory_order_acquire)) break;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
      } else if (listener_ && fd == listener_->fd()) {
        accept_ready();
      } else {
        auto it = conns_.find(fd);
        if (it != conns_.end()) conn_readable(*it->second);
      }
    }
    retry_deferred();
    sweep_draining();
  }
  // Connections die with conns_ in stop(); sessions left draining are
  // abandoned — their in-flight work finishes in the pool and the final
  // counters stay queryable through the registry.
}

void SessionServer::accept_ready() {
  // The listener fd polled readable, so this accept returns immediately.
  std::optional<net::Socket> accepted = listener_->accept(0.1);
  if (!accepted) return;
  accepted->set_no_delay();
  auto conn = std::make_unique<Conn>();
  conn->socket = std::move(*accepted);
  conn->writer = std::make_unique<net::FrameWriter>(conn->socket);
  const int fd = conn->socket.fd();
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return;
  conns_.emplace(fd, std::move(conn));
  connections_.fetch_add(1, std::memory_order_relaxed);
}

void SessionServer::conn_readable(Conn& conn) {
  if (conn.pending.has_value()) return;  // paused; the kernel buffers for us
  if (conn.rbuf.size() < conn.rend + kRecvChunkBytes)
    conn.rbuf.resize(conn.rend + kRecvChunkBytes);
  std::size_t received = 0;
  const net::SocketStatus status = conn.socket.read_some(
      conn.rbuf.data() + conn.rend, conn.rbuf.size() - conn.rend, 0.001,
      &received);
  if (status == net::SocketStatus::kTimeout) return;  // spurious readiness
  if (status != net::SocketStatus::kOk || received == 0) {
    close_conn(conn.socket.fd());
    return;
  }
  conn.rend += received;
  process_rbuf(conn);
}

void SessionServer::process_rbuf(Conn& conn) {
  net::Frame frame;
  while (!conn.pending.has_value() && !conn.closing) {
    const net::DecodeResult r =
        net::decode_frame(conn.rbuf.data() + conn.rbegin,
                          conn.rend - conn.rbegin, frame,
                          config_.max_payload_bytes);
    if (r.error == net::FrameError::kNeedMoreData) break;
    if (r.error != net::FrameError::kNone) {
      LOG_WARN("serve: dropping connection on frame error: "
               << net::to_string(r.error));
      conn.closing = true;
      break;
    }
    conn.rbegin += r.consumed;
    if (!dispatch_frame(conn, frame)) conn.closing = true;
  }
  if (conn.closing) {
    close_conn(conn.socket.fd());
    return;
  }
  // Compact the consumed prefix so the buffer never grows without bound.
  if (conn.rbegin > 0) {
    if (conn.rbegin == conn.rend) {
      conn.rbegin = conn.rend = 0;
    } else {
      std::memmove(conn.rbuf.data(), conn.rbuf.data() + conn.rbegin,
                   conn.rend - conn.rbegin);
      conn.rend -= conn.rbegin;
      conn.rbegin = 0;
    }
  }
}

bool SessionServer::dispatch_frame(Conn& conn, net::Frame& frame) {
  switch (frame.type) {
    case net::FrameType::kChunk:
      return handle_chunk(conn, frame);
    case net::FrameType::kSessionOpen:
      handle_open(conn, frame);
      return true;
    case net::FrameType::kSessionClose:
      handle_close(conn, frame.session_id);
      return true;
    case net::FrameType::kRpc:
      handle_rpc(conn, frame);
      return true;
    case net::FrameType::kPing:
      conn.writer->write(net::FrameType::kPong, frame.payload,
                         config_.io_timeout_s);
      return true;
    // Legacy stream-control chatter from an unmodified StreamPool peer: the
    // serve plane has no per-stream parking, so these are harmless no-ops.
    case net::FrameType::kStreamHello:
    case net::FrameType::kStreamPark:
    case net::FrameType::kStreamResume:
      return true;
    default:
      return true;  // forward compatibility: ignore unknown control frames
  }
}

void SessionServer::handle_open(Conn& conn, const net::Frame& frame) {
  SessionOpenRequest open;
  if (!decode_session_open(frame.payload.data(), frame.payload.size(), open)) {
    SessionReject reject;
    reject.reason = RejectReason::kBadRequest;
    reject.message = "malformed kSessionOpen payload";
    rejected_total_.add();
    conn.writer->write(net::FrameType::kSessionReject,
                       encode_session_reject(reject), config_.io_timeout_s);
    return;
  }
  TenantState* tenant = tenants_.get_or_create(open.tenant);
  SessionRegistry::AdmitResult admitted =
      registry_.admit(open, tenant, metrics_);
  if (!admitted.session) {
    tenant->rejects.add();
    rejected_total_.add();
    SessionReject reject;
    reject.client_token = open.client_token;
    reject.reason = admitted.reason;
    reject.message = to_string(admitted.reason);
    conn.writer->write(net::FrameType::kSessionReject,
                       encode_session_reject(reject), config_.io_timeout_s);
    return;
  }
  register_session_callbacks(admitted.session);
  conn.sessions.emplace(admitted.session->id(), admitted.session);
  SessionAccept accept;
  accept.client_token = open.client_token;
  accept.session_id = admitted.session->id();
  conn.writer->write(net::FrameType::kSessionAccept,
                     encode_session_accept(accept), config_.io_timeout_s);
}

bool SessionServer::handle_chunk(Conn& conn, const net::Frame& frame) {
  std::shared_ptr<ServeSession> session;
  if (frame.session_id != 0) {
    auto it = conn.sessions.find(frame.session_id);
    if (it == conn.sessions.end()) {
      // Unknown id on this connection: either a peer bug or a frame for an
      // already-finalized session. Drop the chunk, keep the connection.
      metrics_.counter("serve.unknown_session_frames")->add();
      return true;
    }
    session = it->second;
  } else {
    // Legacy flagless traffic: bind an implicit session on first contact so
    // an unmodified engine/StreamPool sender flows through the same
    // admission, accounting, and telemetry as session-aware peers.
    if (!conn.legacy) {
      SessionOpenRequest open;
      open.client_token =
          next_legacy_token_.fetch_add(1, std::memory_order_relaxed);
      SessionRegistry::AdmitResult admitted = registry_.admit(
          open, tenants_.get_or_create("default"), metrics_);
      if (!admitted.session) {
        LOG_WARN("serve: rejecting legacy connection: "
                 << to_string(admitted.reason));
        return false;  // a legacy peer cannot parse kSessionReject
      }
      register_session_callbacks(admitted.session);
      conn.legacy = admitted.session;
      conn.sessions.emplace(admitted.session->id(), admitted.session);
      legacy_sessions_.add();
    }
    session = conn.legacy;
  }
  if (session->state() >= SessionLifecycle::kDraining) {
    metrics_.counter("serve.late_chunks")->add();
    return true;  // data after close: drop
  }

  Conn::Pending pending;
  pending.session = std::move(session);
  pending.unchecked = (frame.flags & net::kFrameFlagUnchecked) != 0;
  std::size_t payload_at = 0;
  if (!decode_chunk_meta(frame.payload.data(), frame.payload.size(),
                         (frame.flags & net::kFrameFlagTraced) != 0,
                         pending.chunk, payload_at)) {
    LOG_WARN("serve: malformed chunk payload; dropping connection");
    return false;
  }
  pending.chunk.session_id = frame.session_id;
  const std::size_t payload_bytes = frame.payload.size() - payload_at;
  // One copy out of the frame buffer into the chunk's final home: an arena
  // block when configured (so tenant quotas bound real arena usage), a heap
  // vector otherwise.
  if (arena_ && payload_bytes <= arena_->block_bytes()) {
    BufferLease lease = arena_->acquire();
    std::memcpy(lease.data(), frame.payload.data() + payload_at,
                payload_bytes);
    lease.truncate(payload_bytes);
    pending.chunk.lease = std::move(lease);
  } else {
    pending.chunk.payload.assign(frame.payload.begin() + payload_at,
                                 frame.payload.end());
  }

  if (!admit_chunk(conn, std::move(pending))) pause_conn(conn);
  return true;
}

bool SessionServer::admit_chunk(Conn& conn, Conn::Pending&& pending) {
  TenantState* tenant = pending.session->tenant();
  const std::uint64_t bytes = pending.chunk.payload_size();
  if (!pending.rate_ok) {
    if (!tenant->bucket().try_acquire(static_cast<double>(bytes))) {
      tenant->throttle_defers.add();
      conn.pending = std::move(pending);
      return false;
    }
    pending.rate_ok = true;
  }
  if (!pending.quota_ok) {
    if (!tenant->try_reserve_buffer(bytes)) {
      tenant->throttle_defers.add();
      conn.pending = std::move(pending);
      return false;
    }
    pending.quota_ok = true;
  }
  // Single producer: only this thread pushes, so a non-full ring cannot fill
  // before the push lands and the blocking push below never actually blocks.
  if (work_ring_.size() >= work_ring_.capacity()) {
    conn.pending = std::move(pending);
    return false;
  }
  pending.session->mark_active();
  pending.session->add_inflight(bytes);
  pending.session->stamp_progress(telemetry::now_ns());
  tenant->bytes_admitted.add(bytes);
  WorkItem item;
  item.session = std::move(pending.session);
  item.chunk = std::move(pending.chunk);
  item.unchecked = pending.unchecked;
  work_ring_.push(std::move(item));
  return true;
}

void SessionServer::handle_close(Conn& conn, std::uint32_t session_id) {
  auto it = conn.sessions.find(session_id);
  if (it == conn.sessions.end()) return;
  std::shared_ptr<ServeSession> session = it->second;
  if (session->state() >= SessionLifecycle::kDraining) return;
  session->set_state(SessionLifecycle::kDraining);
  draining_.emplace_back(conn.socket.fd(), std::move(session));
  sweep_draining();  // nothing in flight => finalize + reply immediately
}

void SessionServer::handle_rpc(Conn& conn, const net::Frame& frame) {
  const std::uint64_t t1 = telemetry::now_ns();
  std::optional<transfer::RpcMessage> message =
      net::decode_rpc_message(frame.payload.data(), frame.payload.size());
  if (!message) return;
  transfer::RpcMessage reply;
  if (const auto* stats =
          std::get_if<transfer::StatsSnapshotRequest>(&*message)) {
    reply = telemetry::snapshot_to_message(metrics_.snapshot(),
                                           stats->request_id);
  } else if (const auto* sync =
                 std::get_if<transfer::ClockSyncRequest>(&*message)) {
    transfer::ClockSyncResponse response;
    response.request_id = sync->request_id;
    response.t0_ns = sync->t0_ns;
    response.t1_ns = t1;
    response.t2_ns = telemetry::now_ns();
    reply = response;
  } else {
    return;  // not a serve-plane request; ignore
  }
  std::vector<std::byte> payload;
  net::encode_rpc_message(reply, payload);
  conn.writer->write(net::FrameType::kRpc, payload, config_.io_timeout_s);
}

void SessionServer::retry_deferred() {
  if (deferred_.empty()) return;
  // Swap the list out first: a retried connection that re-parks during
  // process_rbuf appends to deferred_ again via pause_conn, which must not
  // invalidate this iteration.
  std::vector<int> work;
  work.swap(deferred_);
  for (int fd : work) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn* conn = it->second.get();
    if (!conn->pending.has_value()) continue;
    Conn::Pending pending = std::move(*conn->pending);
    conn->pending.reset();
    if (admit_chunk(*conn, std::move(pending))) {
      resume_conn(*conn, fd);
      process_rbuf(*conn);  // decode what buffered behind the parked chunk
    } else {
      deferred_.push_back(fd);  // still parked; the fd stays masked
    }
  }
}

void SessionServer::sweep_draining() {
  if (draining_.empty()) return;
  std::vector<std::pair<int, std::shared_ptr<ServeSession>>> still;
  still.reserve(draining_.size());
  for (auto& [fd, session] : draining_) {
    if (session->inflight_chunks() > 0) {
      still.emplace_back(fd, std::move(session));
      continue;
    }
    auto it = conns_.find(fd);
    finalize_session(it != conns_.end() ? it->second.get() : nullptr, session);
  }
  draining_ = std::move(still);
}

void SessionServer::finalize_session(Conn* conn,
                                     const std::shared_ptr<ServeSession>& s) {
  if (!s->claim_finalize()) return;
  s->set_state(SessionLifecycle::kClosed);
  if (conn != nullptr && !s->abandoned()) {
    conn->writer->write(net::FrameType::kSessionClosed,
                        encode_session_final(s->final_stats()),
                        config_.io_timeout_s, 0, s->id());
    conn->sessions.erase(s->id());
    if (conn->legacy && conn->legacy->id() == s->id()) conn->legacy.reset();
  }
  registry_.remove(s->id());
}

void SessionServer::close_conn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  // Undo gates a parked chunk already charged (the rate tokens are sunk cost
  // — the bucket has no refund — but buffer reservations must not leak).
  if (conn.pending.has_value()) {
    if (conn.pending->quota_ok)
      conn.pending->session->tenant()->release_buffer(
          conn.pending->chunk.payload_size());
    conn.pending.reset();
  }
  for (auto& [id, session] : conn.sessions) {
    session->set_abandoned();
    if (session->state() < SessionLifecycle::kDraining) {
      session->set_state(SessionLifecycle::kDraining);
      draining_.emplace_back(-1, session);
    } else {
      // Already draining via handle_close: repoint its reply fd at nothing.
      for (auto& [dfd, dsession] : draining_) {
        if (dsession->id() == id) dfd = -1;
      }
    }
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  conns_.erase(it);
  connections_.fetch_sub(1, std::memory_order_relaxed);
  sweep_draining();
}

void SessionServer::pause_conn(Conn& conn) {
  const int fd = conn.socket.fd();
  epoll_event ev{};
  ev.events = 0;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  deferred_.push_back(fd);
}

void SessionServer::resume_conn(Conn& conn, int fd) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  (void)conn;
}

void SessionServer::register_session_callbacks(
    const std::shared_ptr<ServeSession>& s) {
  // Capturing the shared_ptr keeps closed sessions queryable over
  // kStatsSnapshot after they leave the registry (monitor drill-down into a
  // finished transfer's totals).
  const std::string prefix = "session." + std::to_string(s->id());
  metrics_.register_callback(prefix + ".state", [s] {
    return static_cast<double>(static_cast<std::uint32_t>(s->state()));
  });
  metrics_.register_callback(prefix + ".inflight_chunks", [s] {
    return static_cast<double>(s->inflight_chunks());
  });
}

// ---------------------------------------------------------------------------
// Worker pool.

void SessionServer::worker_loop(int index) {
  (void)index;
  WorkItem item;
  while (work_ring_.pop(item)) {
    ServeSession& session = *item.session;
    if (config_.inject_worker_stall_s > 0.0 &&
        (config_.stall_session_id == 0 ||
         config_.stall_session_id == session.id())) {
      // Simulated wedge, interruptible so teardown never waits out the full
      // stall; the watchdog sees per-session progress stop meanwhile.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(config_.inject_worker_stall_s));
      while (std::chrono::steady_clock::now() < deadline &&
             running_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    const std::size_t bytes = item.chunk.payload_size();
    const bool ok =
        item.unchecked ||
        fnv1a(item.chunk.payload_data(), bytes) == item.chunk.checksum;
    if (ok) {
      session.bytes_ok.add(bytes);
      session.chunks_ok.add();
      bytes_ok_.add(bytes);
      chunks_ok_.add();
    } else {
      session.verify_failures.add();
      verify_failures_.add();
    }
    session.tenant()->release_buffer(bytes);
    item.chunk.lease.reset();
    item.chunk.payload.clear();
    const std::uint64_t remaining = session.release_inflight(bytes);
    session.stamp_progress(telemetry::now_ns());
    if (remaining == 0 &&
        session.state() == SessionLifecycle::kDraining) {
      // Nudge the event loop so the drain sweep runs now, not at the next
      // tick (the sweep itself is the correctness path; this is latency).
      const std::uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    }
  }
}

}  // namespace automdt::serve
